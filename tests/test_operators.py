"""Operator battery: unary and binary predefined semantics + UDFs.

For every family the vectorized implementation must agree with the
per-scalar implementation — the invariant the §II motivation benchmark
relies on (same answer, different cost).
"""

import numpy as np
import pytest

from repro.core import binaryop as B
from repro.core import types as T
from repro.core import unaryop as U
from repro.core.errors import DomainMismatchError, NullPointerError


def _agree_unary(op, samples):
    arr = op.in_type.coerce_array(np.array(samples))
    vec_out = op.vec(arr)
    for k, x in enumerate(arr):
        assert vec_out[k] == op.scalar(x), (op.name, x)


def _agree_binary(op, xs, ys):
    x = op.in1_type.coerce_array(np.array(xs))
    y = op.in2_type.coerce_array(np.array(ys))
    vec_out = op.vec(x, y)
    for k in range(len(x)):
        assert vec_out[k] == op.scalar(x[k], y[k]), (op.name, x[k], y[k])


class TestUnaryFamilies:
    @pytest.mark.parametrize("t", T.PREDEFINED_TYPES, ids=lambda t: t.name)
    def test_identity(self, t):
        _agree_unary(U.IDENTITY[t], [0, 1] if t.is_bool else [0, 1, 2])

    def test_ainv_signed(self):
        op = U.AINV[T.INT32]
        assert op.scalar(5) == -5
        assert op.vec(np.array([3, -4], dtype=np.int32)).tolist() == [-3, 4]

    def test_ainv_unsigned_wraps(self):
        op = U.AINV[T.UINT8]
        out = op.vec(np.array([1, 2], dtype=np.uint8))
        assert out.tolist() == [255, 254]
        assert out.dtype == np.uint8

    def test_minv_float(self):
        op = U.MINV[T.FP64]
        assert op.vec(np.array([2.0, 4.0])).tolist() == [0.5, 0.25]

    def test_minv_integer_truncates(self):
        op = U.MINV[T.INT32]
        assert op.vec(np.array([1, 2, 3], dtype=np.int32)).tolist() == [1, 0, 0]

    def test_minv_zero_does_not_crash(self):
        assert U.MINV[T.INT32].vec(np.array([0], dtype=np.int32))[0] == 0
        out = U.MINV[T.FP64].vec(np.array([0.0]))
        assert np.isinf(out[0])

    def test_lnot_bool_only(self):
        assert U.LNOT[T.BOOL].vec(np.array([True, False])).tolist() == [False, True]
        with pytest.raises(DomainMismatchError):
            U.LNOT[T.FP64]

    def test_abs(self):
        assert U.ABS[T.INT16].vec(np.array([-3, 3], dtype=np.int16)).tolist() == [3, 3]

    def test_bnot_integers_only(self):
        assert U.BNOT[T.UINT8].vec(np.array([0], dtype=np.uint8))[0] == 255
        with pytest.raises(DomainMismatchError):
            U.BNOT[T.FP32]

    def test_typed_instances_exported(self):
        assert U.IDENTITY_FP64 is U.IDENTITY[T.FP64]
        assert U.AINV_INT8.name == "GrB_AINV_INT8"


class TestBinaryFamilies:
    @pytest.mark.parametrize("t", [T.INT32, T.FP64, T.UINT16],
                             ids=lambda t: t.name)
    def test_arith_agree(self, t):
        for fam in (B.PLUS, B.MINUS, B.TIMES, B.MIN, B.MAX):
            _agree_binary(fam[t], [1, 5, 7], [2, 5, 3])

    def test_first_second_oneb(self):
        x = np.array([1.0, 2.0])
        y = np.array([10.0, 20.0])
        assert B.FIRST[T.FP64].vec(x, y).tolist() == [1.0, 2.0]
        assert B.SECOND[T.FP64].vec(x, y).tolist() == [10.0, 20.0]
        assert B.ONEB[T.FP64].vec(x, y).tolist() == [1.0, 1.0]

    def test_plus_int_overflow_wraps(self):
        op = B.PLUS[T.INT32]
        out = op.vec(np.array([2**31 - 1], dtype=np.int32),
                     np.array([1], dtype=np.int32))
        assert out[0] == -(2**31)

    def test_div_by_zero_integer_is_zero(self):
        op = B.DIV[T.INT64]
        out = op.vec(np.array([7, 8]), np.array([0, 2]))
        assert out.tolist() == [0, 4]
        assert op.scalar(7, 0) == 0

    def test_div_by_zero_float_is_inf(self):
        op = B.DIV[T.FP64]
        out = op.vec(np.array([1.0]), np.array([0.0]))
        assert np.isinf(out[0])

    def test_bool_arithmetic_embedding(self):
        # PLUS on BOOL is saturating OR; TIMES is AND; MINUS is XOR.
        tv = np.array([True, True, False])
        fv = np.array([True, False, False])
        assert B.PLUS[T.BOOL].vec(tv, fv).tolist() == [True, True, False]
        assert B.TIMES[T.BOOL].vec(tv, fv).tolist() == [True, False, False]
        assert B.MINUS[T.BOOL].vec(tv, fv).tolist() == [False, True, False]

    @pytest.mark.parametrize(
        "fam,expected",
        [
            (B.EQ, [True, False, False]),
            (B.NE, [False, True, True]),
            (B.GT, [False, True, False]),
            (B.LT, [False, False, True]),
            (B.GE, [True, True, False]),
            (B.LE, [True, False, True]),
        ],
        ids=["EQ", "NE", "GT", "LT", "GE", "LE"],
    )
    def test_comparisons_output_bool(self, fam, expected):
        op = fam[T.INT32]
        assert op.out_type == T.BOOL
        out = op.vec(np.array([5, 6, 2], dtype=np.int32),
                     np.array([5, 3, 4], dtype=np.int32))
        assert out.tolist() == expected

    def test_logical_bool_only(self):
        assert B.LOR[T.BOOL].scalar(True, False) is True
        assert B.LXNOR[T.BOOL].vec(
            np.array([True, False]), np.array([True, True])
        ).tolist() == [True, False]
        with pytest.raises(DomainMismatchError):
            B.LAND[T.INT32]

    def test_bitwise_integers(self):
        assert B.BOR[T.UINT8].scalar(0b1100, 0b1010) == 0b1110
        assert B.BAND[T.UINT8].scalar(0b1100, 0b1010) == 0b1000
        assert B.BXOR[T.UINT8].scalar(0b1100, 0b1010) == 0b0110
        assert B.BXNOR[T.UINT8].vec(
            np.array([0b1100], dtype=np.uint8), np.array([0b1010], dtype=np.uint8)
        )[0] == np.uint8((~0b0110) & 0xFF)
        with pytest.raises(DomainMismatchError):
            B.BOR[T.FP64]

    def test_commutativity_flags(self):
        assert B.PLUS[T.FP64].commutative
        assert not B.MINUS[T.FP64].commutative
        assert not B.FIRST[T.FP64].commutative


class TestUserDefinedOps:
    def test_udf_unary(self):
        op = U.UnaryOp.new(lambda x: x * x + 1, T.INT64, T.INT64, "sq1")
        assert not op.is_builtin
        out = op.vec(np.array([2, 3], dtype=np.int64))
        assert out.tolist() == [5, 10]
        assert out.dtype == np.int64

    def test_udf_binary(self):
        op = B.BinaryOp.new(lambda x, y: x * 10 + y, T.INT64, T.INT64, T.INT64)
        assert op.vec(np.array([1, 2]), np.array([3, 4])).tolist() == [13, 24]

    def test_udf_null_function_rejected(self):
        with pytest.raises(NullPointerError):
            U.UnaryOp.new(None, T.INT64, T.INT64)
        with pytest.raises(NullPointerError):
            B.BinaryOp.new(None, T.INT64, T.INT64, T.INT64)

    def test_udf_cross_domain(self):
        op = B.BinaryOp.new(lambda x, y: float(x) > y, T.BOOL, T.INT64, T.FP64)
        assert op.vec(np.array([3]), np.array([2.5]))[0]

    def test_family_lookup_helpers(self):
        assert T.FP64 in B.PLUS
        assert B.PLUS.get(T.Type.new("X")) is None
        assert len(list(B.PLUS.domains())) == 11

"""Algorithm battery: cross-checked against networkx on random graphs."""

import networkx as nx
import numpy as np
import pytest

from repro.algorithms import (
    bfs_levels,
    bfs_parents,
    connected_components,
    k_truss,
    pagerank,
    sssp,
    triangle_count,
    triangle_count_burkhardt,
)
from repro.core import types as T
from repro.core.errors import InvalidIndexError, InvalidValueError
from repro.generators import erdos_renyi, grid_2d, to_matrix


def _nx_from_triples(n, rows, cols, vals=None, directed=True):
    g = nx.DiGraph() if directed else nx.Graph()
    g.add_nodes_from(range(n))
    if vals is None:
        g.add_edges_from(zip(rows.tolist(), cols.tolist()))
    else:
        g.add_weighted_edges_from(
            zip(rows.tolist(), cols.tolist(), vals.tolist())
        )
    return g


@pytest.fixture(params=[3, 7, 21], ids=lambda s: f"seed{s}")
def digraph(request):
    n, rows, cols, vals = erdos_renyi(40, 0.08, seed=request.param)
    keep = rows != cols
    rows, cols, vals = rows[keep], cols[keep], vals[keep]
    A = to_matrix(40, rows, cols, np.ones(len(rows)), T.BOOL)
    return A, _nx_from_triples(40, rows, cols)


@pytest.fixture(params=[5, 13], ids=lambda s: f"seed{s}")
def ugraph(request):
    n, rows, cols, vals = erdos_renyi(36, 0.09, seed=request.param)
    keep = rows != cols
    rows, cols = rows[keep], cols[keep]
    A = to_matrix(36, rows, cols, np.ones(len(rows)), T.FP64,
                  make_undirected=True)
    return A, _nx_from_triples(36, rows, cols, directed=False)


class TestBFS:
    def test_levels_match_networkx(self, digraph):
        A, g = digraph
        ours = bfs_levels(A, 0).to_dict()
        theirs = nx.single_source_shortest_path_length(g, 0)
        assert {k: int(v) for k, v in ours.items()} == dict(theirs)

    def test_parents_form_valid_bfs_tree(self, digraph):
        A, g = digraph
        levels = {k: int(v) for k, v in bfs_levels(A, 0).to_dict().items()}
        parents = bfs_parents(A, 0).to_dict()
        assert set(parents) == set(levels)
        for child, parent in parents.items():
            parent = int(parent)
            if child == 0:
                assert parent == 0
                continue
            assert g.has_edge(parent, child)
            assert levels[parent] == levels[child] - 1

    def test_source_out_of_range(self, digraph):
        A, _ = digraph
        with pytest.raises(InvalidIndexError):
            bfs_levels(A, 4096)
        with pytest.raises(InvalidIndexError):
            bfs_parents(A, -1)

    def test_isolated_source(self):
        A = to_matrix(4, np.array([1]), np.array([2]), np.ones(1), T.BOOL)
        lv = bfs_levels(A, 0)
        assert lv.to_dict() == {0: 0}


class TestSSSP:
    def test_matches_networkx_dijkstra(self):
        n, rows, cols, vals = erdos_renyi(30, 0.12, seed=2)
        keep = rows != cols
        rows, cols = rows[keep], cols[keep]
        w = 1.0 + np.round(vals[keep] * 9)
        A = to_matrix(30, rows, cols, w, T.FP64)
        g = _nx_from_triples(30, rows, cols, w)
        ours = {k: float(v) for k, v in sssp(A, 0).to_dict().items()}
        theirs = nx.single_source_dijkstra_path_length(g, 0)
        assert ours == {k: float(v) for k, v in theirs.items()}

    def test_max_iters_validation(self):
        A = to_matrix(3, np.array([0]), np.array([1]), np.ones(1), T.FP64)
        with pytest.raises(InvalidValueError):
            sssp(A, 0, max_iters=0)


class TestTriangles:
    def test_matches_networkx(self, ugraph):
        A, g = ugraph
        expected = sum(nx.triangles(g).values()) // 3
        assert triangle_count(A) == expected
        assert triangle_count_burkhardt(A) == expected

    def test_triangle_free_graph(self):
        n, rows, cols, _ = grid_2d(5)
        A = to_matrix(n, rows, cols, np.ones(len(rows)), T.FP64)
        assert triangle_count(A) == 0   # grid graphs are bipartite

    def test_k4(self):
        rows, cols = np.nonzero(~np.eye(4, dtype=bool))
        A = to_matrix(4, rows, cols, np.ones(len(rows)), T.FP64)
        assert triangle_count(A) == 4


class TestComponents:
    def test_matches_networkx(self, ugraph):
        A, g = ugraph
        labels = connected_components(A).to_dict()
        ours = {}
        for v, lbl in labels.items():
            ours.setdefault(int(lbl), set()).add(v)
        theirs = {frozenset(c) for c in nx.connected_components(g)}
        assert {frozenset(c) for c in ours.values()} == theirs

    def test_labels_are_component_minima(self, ugraph):
        A, _ = ugraph
        labels = connected_components(A).to_dict()
        for v, lbl in labels.items():
            assert int(lbl) <= v


class TestPageRank:
    def test_matches_networkx(self, digraph):
        A, g = digraph
        Af = to_matrix(
            A.nrows,
            *(lambda t: (t[0], t[1], np.ones(len(t[0]))))(A.extract_tuples()[:2]),
            T.FP64,
        )
        ours, _ = pagerank(Af, damping=0.85, tol=1e-10, max_iters=200)
        theirs = nx.pagerank(g, alpha=0.85, tol=1e-12, max_iter=500)
        ours_d = {k: float(v) for k, v in ours.to_dict().items()}
        assert ours_d.keys() == theirs.keys()
        for k in theirs:
            assert abs(ours_d[k] - theirs[k]) < 1e-6, k

    def test_ranks_sum_to_one(self, digraph):
        A, _ = digraph
        Af = to_matrix(
            A.nrows,
            *(lambda t: (t[0], t[1], np.ones(len(t[0]))))(A.extract_tuples()[:2]),
            T.FP64,
        )
        ranks, iters = pagerank(Af)
        assert iters >= 1
        total = sum(float(v) for v in ranks.to_dict().values())
        assert abs(total - 1.0) < 1e-9

    def test_damping_validation(self):
        A = to_matrix(3, np.array([0]), np.array([1]), np.ones(1), T.FP64)
        with pytest.raises(InvalidValueError):
            pagerank(A, damping=1.5)


class TestKTruss:
    def test_k3_keeps_triangle_edges_only(self):
        # Triangle 0-1-2 plus a pendant edge 2-3.
        rows = np.array([0, 1, 0, 2, 1, 2, 2, 3])
        cols = np.array([1, 0, 2, 0, 2, 1, 3, 2])
        A = to_matrix(4, rows, cols, np.ones(8), T.FP64)
        kt = k_truss(A, 3)
        keys = set(kt.to_dict())
        assert keys == {(0, 1), (1, 0), (0, 2), (2, 0), (1, 2), (2, 1)}

    def test_k5_truss_of_k5(self):
        rows, cols = np.nonzero(~np.eye(5, dtype=bool))
        A = to_matrix(5, rows, cols, np.ones(len(rows)), T.FP64)
        assert k_truss(A, 5).nvals() == 20
        assert k_truss(A, 3).nvals() == 20

    def test_truss_of_triangle_free_graph_is_empty(self):
        n, rows, cols, _ = grid_2d(4)
        A = to_matrix(n, rows, cols, np.ones(len(rows)), T.FP64)
        assert k_truss(A, 3).nvals() == 0

    def test_k_validation(self):
        A = to_matrix(3, np.array([0]), np.array([1]), np.ones(1), T.FP64)
        with pytest.raises(InvalidValueError):
            k_truss(A, 2)


@pytest.fixture()
def algo_memo_on():
    # Counter asserts need the plumbing on even under the CI ablation
    # matrix (REPRO_RESULT_CACHE=0 / ENGINE_ALGO_MEMO=0 full-suite runs).
    # Eviction is pinned to cost-weighted too: under plain LRU the
    # per-iteration expression stores can push an algo block out of the
    # default-capacity memo, and the zero-setup-kernel warm-call
    # guarantee is specifically a property of the cost policy keeping
    # expensive blocks resident.
    from repro.internals import config

    with config.option("ENGINE_MEMO", True), \
            config.option("ENGINE_ALGO_MEMO", True), \
            config.option("MEMO_EVICTION", "cost"):
        yield


class TestAlgoMemoIncrementality:
    """§III amortized setup: a repeated algorithm call on an unchanged
    graph serves its preprocessing from the context result memo and
    submits **zero** setup kernels the second time around."""

    def _graph(self, ctx):
        from repro.core.context import WaitMode
        from repro.core.matrix import Matrix

        n, rows, cols, _ = erdos_renyi(40, 0.08, seed=3)
        keep = rows != cols
        a = Matrix.new(T.FP64, n, n, ctx)
        a.build(rows[keep], cols[keep], np.ones(int(keep.sum())))
        a.wait(WaitMode.MATERIALIZE)
        return a

    def test_second_pagerank_runs_zero_setup_kernels(self, algo_memo_on):
        from repro.core.context import Context, Mode
        from repro.engine.stats import STATS

        ctx = Context.new(Mode.NONBLOCKING, None, None)
        a = self._graph(ctx)

        STATS.reset()
        r1, it1 = pagerank(a)
        snap1 = STATS.snapshot()
        k1 = sum(snap1["kernel_count"].values())
        # cold call: pattern and degree blocks built and stored (the
        # degree builder hits the just-stored pattern)
        assert snap1["algo_memo_misses"] == 2
        assert snap1["algo_memo_stores"] == 2
        assert snap1["algo_memo_hits"] == 1

        STATS.reset()
        r2, it2 = pagerank(a)
        snap2 = STATS.snapshot()
        k2 = sum(snap2["kernel_count"].values())
        # warm call: both blocks served from the memo, nothing rebuilt
        assert snap2["algo_memo_hits"] == 2
        assert snap2["algo_memo_misses"] == 0
        assert snap2["algo_memo_stores"] == 0
        # ... and the only kernels saved are exactly the setup pair
        # (pattern apply + degree reduce); the iteration count is
        # deterministic, so the delta is exact.
        assert it2 == it1
        assert k2 == k1 - 2
        assert r1.to_dict() == r2.to_dict()

    def test_write_to_graph_rebuilds_blocks(self, algo_memo_on):
        from repro.core.context import Context, Mode, WaitMode
        from repro.engine.stats import STATS

        ctx = Context.new(Mode.NONBLOCKING, None, None)
        a = self._graph(ctx)
        pagerank(a)
        a.set_element(1.0, 0, 1)     # version bump: blocks are stale
        a.wait(WaitMode.MATERIALIZE)
        STATS.reset()
        pagerank(a)
        snap = STATS.snapshot()
        assert snap["algo_memo_hits"] == 1   # nested pattern hit only
        assert snap["algo_memo_misses"] == 2

    def test_algo_memo_knob_disables(self):
        from repro.core.context import Context, Mode
        from repro.engine.stats import STATS
        from repro.internals import config

        ctx = Context.new(Mode.NONBLOCKING, None, None)
        a = self._graph(ctx)
        STATS.reset()
        with config.option("ENGINE_ALGO_MEMO", False):
            r1, _ = pagerank(a)
            r2, _ = pagerank(a)
        snap = STATS.snapshot()
        assert snap["algo_memo_hits"] == 0
        assert snap["algo_memo_stores"] == 0
        assert r1.to_dict() == r2.to_dict()

"""Multithreading battery (§III): thread safety and the Fig. 1 hand-off."""

import threading

import numpy as np

from repro.core import types as T
from repro.core.context import Context, Mode, WaitMode
from repro.core.matrix import Matrix
from repro.core.semiring import PLUS_TIMES_SEMIRING
from repro.core.sequence import error_string, wait
from repro.core.vector import Vector
from repro.ops.mxm import mxm

from .helpers import mat_from_dict

PT = PLUS_TIMES_SEMIRING[T.FP64]


def _run_threads(*targets):
    threads = [threading.Thread(target=t) for t in targets]
    for t in threads:
        t.start()
    for t in threads:
        t.join()


class TestIndependentThreadSafety:
    """§III: independent method calls from multiple threads must return
    the same results as some sequential interleaving."""

    def test_independent_matrices_across_threads(self):
        results = {}
        errors = []

        def worker(tid: int):
            try:
                rng = np.random.default_rng(tid)
                d = {(i, j): float(rng.integers(1, 5))
                     for i in range(12) for j in range(12)
                     if rng.random() < 0.3}
                A = mat_from_dict(d, 12, 12)
                C = Matrix.new(T.FP64, 12, 12)
                mxm(C, None, None, PT, A, A)
                wait(C, WaitMode.MATERIALIZE)
                results[tid] = (C.to_dense(), A.to_dense())
            except Exception as exc:  # pragma: no cover
                errors.append(exc)

        _run_threads(*(lambda tid=k: worker(tid) for k in range(8)))
        assert not errors
        for tid, (got, da) in results.items():
            assert np.allclose(got, da @ da), f"thread {tid} corrupted"

    def test_concurrent_setelement_same_object_serializes(self):
        """Per-object locking: concurrent mutations interleave safely."""
        v = Vector.new(T.INT64, 1024)

        def writer(base: int):
            for i in range(base, 1024, 4):
                v.set_element(i, i)

        _run_threads(*(lambda b=k: writer(b) for k in range(4)))
        wait(v)
        idx, vals = v.extract_tuples()
        assert len(idx) == 1024
        assert np.array_equal(idx, vals)

    def test_concurrent_error_queries_thread_safe(self):
        """§V: two threads may call GrB_error on the same object."""
        m = Matrix.new(T.FP64, 2, 2)
        m.build([0, 0], [0, 0], [1.0, 2.0], dup=None)
        try:
            wait(m)
        except Exception:
            pass
        seen = []

        def reader():
            for _ in range(100):
                seen.append(error_string(m))

        _run_threads(reader, reader)
        assert all("duplicate" in s for s in seen)


class TestFigOnePattern:
    """The Fig. 1 program shape: produce → wait(COMPLETE) → publish →
    consume on another thread after a synchronized-with edge."""

    def test_shared_object_handoff(self):
        n = 24

        def mk(seed):
            return {
                (i, j): float(np.random.default_rng(seed).integers(1, 5))
                for i in range(n) for j in range(n)
                if np.random.default_rng(seed * 977 + i * n + j).random() < 0.2
            }
        a_d, b_d, d_d, e_d, f_d = (mk(s) for s in range(5))
        flag = threading.Event()
        Esh = Matrix.new(T.FP64, n, n)
        Hres = Matrix.new(T.FP64, n, n)
        Dres = Matrix.new(T.FP64, n, n)

        def thread0():
            A = mat_from_dict(a_d, n, n)
            B = mat_from_dict(b_d, n, n)
            D = mat_from_dict(d_d, n, n)
            C = Matrix.new(T.FP64, n, n)
            mxm(C, None, None, PT, A, B)
            mxm(Esh, None, None, PT, D, C)
            wait(Esh, WaitMode.COMPLETE)
            flag.set()                       # release
            mxm(Dres, None, None, PT, A, Esh)
            wait(Dres, WaitMode.COMPLETE)

        def thread1():
            E = mat_from_dict(e_d, n, n)
            F = mat_from_dict(f_d, n, n)
            G = Matrix.new(T.FP64, n, n)
            mxm(G, None, None, PT, E, F)
            flag.wait()                      # acquire
            mxm(Hres, None, None, PT, G, Esh)
            wait(Hres, WaitMode.COMPLETE)

        _run_threads(thread0, thread1)
        wait(Dres, WaitMode.MATERIALIZE)
        wait(Hres, WaitMode.MATERIALIZE)

        # sequential reference
        import numpy as _np
        def to_dense(d):
            out = _np.zeros((n, n))
            for (i, j), v in d.items():
                out[i, j] = v
            return out
        dA, dB, dD, dE, dF = map(to_dense, (a_d, b_d, d_d, e_d, f_d))
        dEsh = dD @ (dA @ dB)
        assert np.allclose(Dres.to_dense(), dA @ dEsh)
        assert np.allclose(Hres.to_dense(), (dE @ dF) @ dEsh)

    def test_repeated_handoffs_stress(self):
        """Run the hand-off pattern repeatedly to shake out races."""
        n = 8
        for trial in range(10):
            flag = threading.Event()
            shared = Vector.new(T.INT64, n)
            result = {}

            def producer():
                for i in range(n):
                    shared.set_element(i * 10, i)
                wait(shared, WaitMode.COMPLETE)
                flag.set()

            def consumer():
                flag.wait()
                result["vals"] = shared.to_dict()

            _run_threads(producer, consumer)
            assert result["vals"] == {i: i * 10 for i in range(n)}

    def test_parallel_contexts_in_threads(self):
        """Each thread works in its own context with its own threads."""
        outs = {}

        def worker(tid):
            ctx = Context.new(Mode.NONBLOCKING, None, {"nthreads": 2})
            d = {(i, (i * 3) % 10): 1.0 + i for i in range(10)}
            A = mat_from_dict(d, 10, 10, ctx=ctx)
            C = Matrix.new(T.FP64, 10, 10, ctx)
            mxm(C, None, None, PT, A, A)
            wait(C)
            outs[tid] = C.to_dense()

        _run_threads(*(lambda k=k: worker(k) for k in range(4)))
        base = next(iter(outs.values()))
        for o in outs.values():
            assert np.allclose(o, base)

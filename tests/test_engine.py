"""The lazy expression-DAG engine: fusion, elision, scheduling, stats.

These tests pin the engine's *observable* contract:

* wait(COMPLETE) and wait(MATERIALIZE) are distinct — COMPLETE may
  legally leave a pure built-in chain deferred (§III completion), while
  MATERIALIZE always leaves the object with concrete storage (§V).
* fusion actually fires on in-place apply/select chains and produces
  results identical to step-by-step execution;
* transpose pairs cancel and value-independent selects hoist ahead of
  maps inside a fused pipeline;
* forcing one object settles exactly the needed subgraph (its inputs),
  not unrelated pending work;
* deferred execution errors surface at the forcing call with the §V
  guarantees intact even through fused pipelines;
* independent chains run concurrently when the context allows it.
"""

import numpy as np
import numpy.testing as npt
import pytest

from repro.core import binaryop as B
from repro.core import indexunaryop as IU
from repro.core import types as T
from repro.core import unaryop as U
from repro.core.context import Context, Mode, WaitMode, default_context
from repro.core.matrix import Matrix
from repro.core.semiring import PLUS_TIMES_SEMIRING
from repro.core.vector import Vector
from repro.engine.stats import STATS
from repro.ops.apply import apply
from repro.ops.ewise import ewise_mult
from repro.ops.mxm import mxm
from repro.ops.select import select
from repro.ops.transpose import transpose


@pytest.fixture(autouse=True)
def fresh_stats():
    STATS.reset()
    yield


def _graph(n=32, seed=0, density=0.1):
    rng = np.random.default_rng(seed)
    d = rng.random((n, n)) * (rng.random((n, n)) < density)
    r, c = np.nonzero(d)
    m = Matrix.new(T.FP64, n, n)
    m.build(r, c, d[r, c])
    m.wait(WaitMode.MATERIALIZE)
    STATS.reset()  # setup noise (the build node) is not under test
    return m


def _mat_eq(a: Matrix, b: Matrix):
    da, db = a._capture(), b._capture()
    npt.assert_array_equal(da.indptr, db.indptr)
    npt.assert_array_equal(da.col_indices, db.col_indices)
    npt.assert_allclose(da.values, db.values)


class TestWaitModes:
    """Satellite: COMPLETE vs MATERIALIZE are observably distinct."""

    def test_complete_defers_pure_builtin_chain(self):
        a = _graph()
        c = Matrix.new(T.FP64, a.nrows, a.ncols)
        apply(c, None, None, U.AINV[T.FP64], a)
        c.wait(WaitMode.COMPLETE)
        assert STATS.snapshot()["completes_deferred"] == 1
        assert not c.is_materialized
        # The deferred kernel never ran.
        assert STATS.snapshot()["nodes_forced"] == 0

    def test_materialize_forces_the_same_chain(self):
        a = _graph()
        c = Matrix.new(T.FP64, a.nrows, a.ncols)
        apply(c, None, None, U.AINV[T.FP64], a)
        c.wait(WaitMode.MATERIALIZE)
        assert c.is_materialized
        assert STATS.snapshot()["completes_deferred"] == 0
        assert STATS.snapshot()["nodes_forced"] >= 1

    def test_complete_forces_chains_that_can_fail(self):
        """mxm can raise an execution error, so COMPLETE may not defer
        it — the §III completion contract requires the error be known."""
        a = _graph()
        c = Matrix.new(T.FP64, a.nrows, a.ncols)
        mxm(c, None, None, PLUS_TIMES_SEMIRING[T.FP64], a, a)
        c.wait(WaitMode.COMPLETE)
        assert STATS.snapshot()["completes_deferred"] == 0
        assert STATS.snapshot()["nodes_forced"] >= 1

    def test_deferred_complete_still_reads_correctly(self):
        a = _graph()
        c = Matrix.new(T.FP64, a.nrows, a.ncols)
        apply(c, None, None, U.AINV[T.FP64], a)
        c.wait(WaitMode.COMPLETE)
        # A value read after the deferred COMPLETE forces and agrees.
        assert c.nvals() == a.nvals()


class TestFusion:
    def test_inplace_chain_fuses_to_one_kernel(self):
        a = _graph()
        c = Matrix.new(T.FP64, a.nrows, a.ncols)
        mxm(c, None, None, PLUS_TIMES_SEMIRING[T.FP64], a, a)
        apply(c, None, None, U.AINV[T.FP64], c)
        select(c, None, None, IU.TRIL, c, 0)
        c.wait(WaitMode.MATERIALIZE)
        snap = STATS.snapshot()
        assert snap["chains_fused"] == 1
        assert snap["nodes_fused"] == 2
        # One fused kernel ran instead of three separate ones.
        assert snap["kernel_count"] == {"fused:select": 1}

    def test_fused_matches_stepwise(self):
        a = _graph(seed=3)
        fused = Matrix.new(T.FP64, a.nrows, a.ncols)
        mxm(fused, None, None, PLUS_TIMES_SEMIRING[T.FP64], a, a)
        apply(fused, None, None, U.AINV[T.FP64], fused)
        select(fused, None, None, IU.TRIL, fused, 0)
        fused.wait(WaitMode.MATERIALIZE)

        step = Matrix.new(T.FP64, a.nrows, a.ncols)
        mxm(step, None, None, PLUS_TIMES_SEMIRING[T.FP64], a, a)
        step.wait(WaitMode.MATERIALIZE)
        step2 = Matrix.new(T.FP64, a.nrows, a.ncols)
        apply(step2, None, None, U.AINV[T.FP64], step)
        step2.wait(WaitMode.MATERIALIZE)
        step3 = Matrix.new(T.FP64, a.nrows, a.ncols)
        select(step3, None, None, IU.TRIL, step2, 0)
        step3.wait(WaitMode.MATERIALIZE)
        _mat_eq(fused, step3)

    def test_select_hoists_ahead_of_map(self):
        """TRIL is value-independent: the fused pipeline filters first so
        the map touches fewer stored values."""
        a = _graph()
        c = Matrix.new(T.FP64, a.nrows, a.ncols)
        apply(c, None, None, U.AINV[T.FP64], a)
        select(c, None, None, IU.TRIL, c, 0)
        c.wait(WaitMode.MATERIALIZE)
        assert STATS.snapshot()["selects_hoisted"] == 1

    def test_value_select_does_not_hoist(self):
        a = _graph()
        c = Matrix.new(T.FP64, a.nrows, a.ncols)
        apply(c, None, None, U.AINV[T.FP64], a)
        select(c, None, None, IU.VALUELT[T.FP64], c, 0.0)
        c.wait(WaitMode.MATERIALIZE)
        assert STATS.snapshot()["selects_hoisted"] == 0
        # Sanity: AINV flips signs, so "< 0" keeps what was "> 0".
        d = a._capture()
        assert c.nvals() == int((d.values > 0).sum())

    def test_double_transpose_elides(self):
        a = _graph(seed=5)
        c = Matrix.new(T.FP64, a.nrows, a.ncols)
        apply(c, None, None, U.AINV[T.FP64], a)
        transpose(c, None, None, c)
        transpose(c, None, None, c)
        select(c, None, None, IU.TRIL, c, 0)
        c.wait(WaitMode.MATERIALIZE)
        assert STATS.snapshot()["transposes_elided"] == 1

        ref = Matrix.new(T.FP64, a.nrows, a.ncols)
        apply(ref, None, None, U.AINV[T.FP64], a)
        ref.wait(WaitMode.MATERIALIZE)
        ref2 = Matrix.new(T.FP64, a.nrows, a.ncols)
        select(ref2, None, None, IU.TRIL, ref, 0)
        ref2.wait(WaitMode.MATERIALIZE)
        _mat_eq(c, ref2)

    def test_select_after_ewise_mult_fuses(self):
        a, b = _graph(seed=6), _graph(seed=7)
        c = Matrix.new(T.FP64, a.nrows, a.ncols)
        ewise_mult(c, None, None, B.TIMES[T.FP64], a, b)
        select(c, None, None, IU.TRIU, c, 0)
        c.wait(WaitMode.MATERIALIZE)
        snap = STATS.snapshot()
        assert snap["chains_fused"] == 1 and snap["nodes_fused"] == 1

    def test_cross_object_producer_not_elided(self):
        """A producer still visible as another object's tail must run —
        its owner can be read later."""
        a = _graph(seed=8)
        mid = Matrix.new(T.FP64, a.nrows, a.ncols)
        apply(mid, None, None, U.AINV[T.FP64], a)
        out = Matrix.new(T.FP64, a.nrows, a.ncols)
        select(out, None, None, IU.TRIL, mid, 0)
        out.wait(WaitMode.MATERIALIZE)
        assert STATS.snapshot()["chains_fused"] == 0
        # mid is intact and readable.
        assert mid.nvals() == a.nvals()

    def test_masked_consumer_does_not_fuse(self):
        """A masked write-back is impure — it merges with the carrier —
        so the producer under it must run as a standalone kernel."""
        a = _graph(seed=9)
        rr, cc, _ = a.extract_tuples()
        keep = rr >= cc
        m = Matrix.new(T.BOOL, a.nrows, a.ncols)
        m.build(rr[keep], cc[keep], np.ones(int(keep.sum()), bool))
        m.wait(WaitMode.MATERIALIZE)
        STATS.reset()

        c = Matrix.new(T.FP64, a.nrows, a.ncols)
        apply(c, None, None, U.AINV[T.FP64], a)
        select(c, m, None, IU.TRIL, c, 0)
        c.wait(WaitMode.MATERIALIZE)
        assert STATS.snapshot()["chains_fused"] == 0

        # Same two steps with a forced boundary in between agree exactly.
        ref = Matrix.new(T.FP64, a.nrows, a.ncols)
        apply(ref, None, None, U.AINV[T.FP64], a)
        ref.wait(WaitMode.MATERIALIZE)
        select(ref, m, None, IU.TRIL, ref, 0)
        ref.wait(WaitMode.MATERIALIZE)
        _mat_eq(c, ref)


class TestForcingScope:
    def test_force_settles_only_the_needed_subgraph(self):
        a = _graph()
        wanted = Matrix.new(T.FP64, a.nrows, a.ncols)
        apply(wanted, None, None, U.AINV[T.FP64], a)
        unrelated = Matrix.new(T.FP64, a.nrows, a.ncols)
        mxm(unrelated, None, None, PLUS_TIMES_SEMIRING[T.FP64], a, a)
        wanted.wait(WaitMode.MATERIALIZE)
        snap = STATS.snapshot()
        # The mxm on `unrelated` stayed pending.
        assert "mxm" not in snap["kernel_count"]
        assert not unrelated.is_materialized

    def test_force_pulls_in_producing_inputs(self):
        a = _graph()
        mid = Matrix.new(T.FP64, a.nrows, a.ncols)
        mxm(mid, None, None, PLUS_TIMES_SEMIRING[T.FP64], a, a)
        out = Matrix.new(T.FP64, a.nrows, a.ncols)
        apply(out, None, None, U.AINV[T.FP64], mid)
        out.wait(WaitMode.MATERIALIZE)
        snap = STATS.snapshot()
        assert snap["kernel_count"].get("mxm") == 1
        # mid's chain was settled as a side effect of forcing out.
        assert mid._tail is None or mid._tail.result is not None


class TestErrorSemantics:
    def test_error_through_fused_chain(self):
        """A failing UDF inside a fused pipeline surfaces at the wait
        with the §V wrapping and leaves the pre-failure carrier."""
        from repro.core.errors import PanicError

        def boom(x):
            raise RuntimeError("kaput")

        bad = U.UnaryOp.new(boom, T.FP64, T.FP64, name="boom")
        a = _graph()
        c = Matrix.new(T.FP64, a.nrows, a.ncols)
        apply(c, None, None, U.AINV[T.FP64], a)
        apply(c, None, None, bad, c)
        with pytest.raises(PanicError, match="user-defined function raised"):
            c.wait(WaitMode.MATERIALIZE)
        assert "boom" in c.error() or "apply" in c.error()
        # Error surfaces exactly once; afterwards the object is usable.
        c.wait(WaitMode.MATERIALIZE)

    def test_failed_node_fails_dependents_without_running_them(self):
        from repro.core.errors import DuplicateIndexError

        bad = Matrix.new(T.FP64, 4, 4)
        bad.build([0, 0], [0, 0], [1.0, 2.0], dup=None)
        out = Matrix.new(T.FP64, 4, 4)
        apply(out, None, None, U.AINV[T.FP64], bad)
        with pytest.raises(DuplicateIndexError):
            out.wait(WaitMode.MATERIALIZE)
        # The apply kernel never ran on poisoned input.
        assert "apply" not in STATS.snapshot()["kernel_count"]


class TestScheduler:
    def test_independent_chains_run_in_parallel_batches(self):
        ctx = Context.new(Mode.NONBLOCKING, None, {"nthreads": 4})
        a = _mk_ctx_graph(ctx)
        outs = []
        for k in range(4):
            c = Matrix.new(T.FP64, a.nrows, a.ncols, ctx)
            apply(c, None, None, B.TIMES[T.FP64], a, float(k + 1))
            outs.append(c)
        lhs = Matrix.new(T.FP64, a.nrows, a.ncols, ctx)
        ewise_mult(lhs, None, None, B.PLUS[T.FP64], outs[0], outs[1])
        rhs = Matrix.new(T.FP64, a.nrows, a.ncols, ctx)
        ewise_mult(rhs, None, None, B.PLUS[T.FP64], outs[2], outs[3])
        final = Matrix.new(T.FP64, a.nrows, a.ncols, ctx)
        ewise_mult(final, None, None, B.TIMES[T.FP64], lhs, rhs)
        final.wait(WaitMode.MATERIALIZE)
        snap = STATS.snapshot()
        assert snap["parallel_batches"] >= 1
        assert snap["parallel_nodes"] >= 2
        # Correctness under concurrency: (1+2)*(3+4) = 21 x a^2 values.
        da = a._capture()
        df = final._capture()
        npt.assert_allclose(df.values, 21.0 * da.values * da.values)

    def test_single_thread_context_stays_serial(self):
        a = _graph()
        c = Matrix.new(T.FP64, a.nrows, a.ncols)
        d = Matrix.new(T.FP64, a.nrows, a.ncols)
        apply(c, None, None, U.AINV[T.FP64], a)
        apply(d, None, None, U.AINV[T.FP64], a)
        e = Matrix.new(T.FP64, a.nrows, a.ncols)
        ewise_mult(e, None, None, B.PLUS[T.FP64], c, d)
        e.wait(WaitMode.MATERIALIZE)
        assert STATS.snapshot()["parallel_batches"] == 0


def _mk_ctx_graph(ctx, n=48, seed=1):
    rng = np.random.default_rng(seed)
    d = rng.random((n, n)) * (rng.random((n, n)) < 0.1)
    r, c = np.nonzero(d)
    m = Matrix.new(T.FP64, n, n, ctx)
    m.build(r, c, d[r, c])
    m.wait(WaitMode.MATERIALIZE)
    return m


class TestStatsSurface:
    def test_context_engine_stats(self):
        ctx = default_context()
        snap = ctx.engine_stats()
        assert set(snap) >= {"nodes_built", "nodes_fused", "forces"}

    def test_vector_pipeline_fusion(self):
        v = Vector.new(T.FP64, 100)
        v.build(np.arange(0, 100, 3), np.arange(0, 100, 3, dtype=float))
        v.wait(WaitMode.MATERIALIZE)
        STATS.reset()
        w = Vector.new(T.FP64, 100)
        apply(w, None, None, B.TIMES[T.FP64], v, 2.0)
        apply(w, None, None, U.AINV[T.FP64], w)
        apply(w, None, None, B.PLUS[T.FP64], w, 1.0)
        w.wait(WaitMode.MATERIALIZE)
        snap = STATS.snapshot()
        assert snap["chains_fused"] == 1 and snap["nodes_fused"] == 2
        got = dict(zip(*w.extract_tuples()))
        expect = {int(i): -(2.0 * i) + 1.0 for i in range(0, 100, 3)}
        assert got == pytest.approx(expect)

"""apply (all four flavours, §VIII-B) and select (§VIII-C) batteries."""

import pytest

from repro.core import binaryop as B
from repro.core import indexunaryop as IU
from repro.core import types as T
from repro.core import unaryop as U
from repro.core.descriptor import DESC_R, DESC_T0
from repro.core.errors import (
    DimensionMismatchError,
    DomainMismatchError,
    EmptyObjectError,
)
from repro.core.matrix import Matrix
from repro.core.scalar import Scalar
from repro.core.vector import Vector
from repro.ops.apply import apply
from repro.ops.select import select

from .helpers import (
    assert_mat_equal,
    assert_vec_equal,
    mat_from_dict,
    mat_to_dict,
    vec_from_dict,
)
from .reference import ref_write_back

A_D = {(0, 1): 2.0, (1, 0): -3.0, (1, 2): 4.0, (2, 2): -5.0}
U_D = {0: 2.0, 2: -3.0, 4: 4.0}


class TestUnaryApply:
    def test_matrix_unary(self):
        C = Matrix.new(T.FP64, 3, 3)
        apply(C, None, None, U.ABS[T.FP64], mat_from_dict(A_D, 3, 3))
        assert_mat_equal(C, {k: abs(v) for k, v in A_D.items()}, "abs")

    def test_vector_unary(self):
        w = Vector.new(T.FP64, 5)
        apply(w, None, None, U.AINV[T.FP64], vec_from_dict(U_D, 5))
        assert_vec_equal(w, {k: -v for k, v in U_D.items()}, "ainv")

    def test_output_domain_cast(self):
        C = Matrix.new(T.INT32, 3, 3)
        apply(C, None, None, U.IDENTITY[T.FP64], mat_from_dict(A_D, 3, 3))
        assert_mat_equal(C, {k: int(v) for k, v in A_D.items()}, "cast")

    def test_apply_with_transpose_desc(self):
        at = {(j, i): v for (i, j), v in A_D.items()}
        C = Matrix.new(T.FP64, 3, 3)
        apply(C, None, None, U.ABS[T.FP64], mat_from_dict(at, 3, 3),
              desc=DESC_T0)
        assert_mat_equal(C, {k: abs(v) for k, v in A_D.items()}, "T0")

    def test_apply_desc_positional_style(self):
        """C calling style: apply(w, mask, accum, op, u, desc)."""
        C = Matrix.new(T.FP64, 3, 3)
        apply(C, None, None, U.ABS[T.FP64], mat_from_dict(A_D, 3, 3), DESC_R)
        assert C.nvals() == len(A_D)

    def test_udf_unary_per_element(self):
        op = U.UnaryOp.new(lambda x: x * 2 + 1, T.FP64, T.FP64)
        w = Vector.new(T.FP64, 5)
        apply(w, None, None, op, vec_from_dict(U_D, 5))
        assert_vec_equal(w, {k: v * 2 + 1 for k, v in U_D.items()}, "udf")

    def test_mask_accum(self):
        c0 = {(0, 1): 100.0}
        mask = {(0, 1): True, (1, 0): True}
        C = mat_from_dict(c0, 3, 3)
        apply(C, mat_from_dict(mask, 3, 3, T.BOOL), B.PLUS[T.FP64],
              U.ABS[T.FP64], mat_from_dict(A_D, 3, 3))
        t = {k: abs(v) for k, v in A_D.items()}
        assert_mat_equal(C, ref_write_back(c0, t, mask, lambda x, y: x + y),
                         "mask accum")


class TestBindApply:
    def test_bind2nd_matrix(self):
        C = Matrix.new(T.FP64, 3, 3)
        apply(C, None, None, B.TIMES[T.FP64], mat_from_dict(A_D, 3, 3), 10.0)
        assert_mat_equal(C, {k: v * 10 for k, v in A_D.items()}, "bind2nd")

    def test_bind1st_matrix(self):
        C = Matrix.new(T.FP64, 3, 3)
        apply(C, None, None, B.MINUS[T.FP64], 10.0, mat_from_dict(A_D, 3, 3))
        assert_mat_equal(C, {k: 10 - v for k, v in A_D.items()}, "bind1st")

    def test_bind_vector_both_sides(self):
        w1 = Vector.new(T.FP64, 5)
        apply(w1, None, None, B.MINUS[T.FP64], vec_from_dict(U_D, 5), 1.0)
        assert_vec_equal(w1, {k: v - 1 for k, v in U_D.items()}, "v bind2nd")
        w2 = Vector.new(T.FP64, 5)
        apply(w2, None, None, B.MINUS[T.FP64], 1.0, vec_from_dict(U_D, 5))
        assert_vec_equal(w2, {k: 1 - v for k, v in U_D.items()}, "v bind1st")

    def test_bind_scalar_may_be_grb_scalar(self):
        """Table II: GrB_apply(…, GrB_Scalar, …)."""
        s = Scalar.new(T.FP64)
        s.set_element(3.0)
        w = Vector.new(T.FP64, 5)
        apply(w, None, None, B.TIMES[T.FP64], vec_from_dict(U_D, 5), s)
        assert_vec_equal(w, {k: v * 3 for k, v in U_D.items()}, "GrB_Scalar")

    def test_bind_empty_scalar_is_empty_object_error(self):
        s = Scalar.new(T.FP64)
        w = Vector.new(T.FP64, 5)
        with pytest.raises(EmptyObjectError):
            apply(w, None, None, B.TIMES[T.FP64], vec_from_dict(U_D, 5), s)

    def test_bind_with_two_containers_rejected(self):
        u = vec_from_dict(U_D, 5)
        w = Vector.new(T.FP64, 5)
        with pytest.raises(DomainMismatchError):
            apply(w, None, None, B.TIMES[T.FP64], u, u)

    def test_comparison_bind_gives_bool(self):
        w = Vector.new(T.BOOL, 5)
        apply(w, None, None, B.GT[T.FP64], vec_from_dict(U_D, 5), 0.0)
        assert_vec_equal(w, {k: v > 0 for k, v in U_D.items()}, "gt0")


class TestIndexApply:
    def test_matrix_index_apply_formula(self):
        """§VIII-B: C⟨M,r⟩ = C ⊙ f(A, ind(A), 2, s)."""
        C = Matrix.new(T.INT64, 3, 3)
        apply(C, None, None, IU.ROWINDEX[T.INT64], mat_from_dict(A_D, 3, 3), 7)
        assert_mat_equal(C, {k: k[0] + 7 for k in A_D}, "rowindex")

    def test_transposed_input_uses_post_transpose_indices(self):
        """§VIII-B: with A transposed, indices are post-transpose."""
        at = {(j, i): v for (i, j), v in A_D.items()}
        C = Matrix.new(T.INT64, 3, 3)
        apply(C, None, None, IU.COLINDEX[T.INT64], mat_from_dict(at, 3, 3),
              0, desc=DESC_T0)
        assert_mat_equal(C, {k: k[1] for k in A_D}, "T0 colindex")

    def test_vector_index_apply_sees_column_zero(self):
        op = IU.IndexUnaryOp.new(lambda v, i, j, s: i * 100 + j + s,
                                 T.INT64, T.FP64, T.INT64)
        w = Vector.new(T.INT64, 5)
        apply(w, None, None, op, vec_from_dict(U_D, 5), 1)
        assert_vec_equal(w, {k: k * 100 + 1 for k in U_D}, "vec index")

    def test_index_apply_scalar_arg_grb_scalar(self):
        s = Scalar.new(T.INT64)
        s.set_element(5)
        C = Matrix.new(T.INT64, 3, 3)
        apply(C, None, None, IU.ROWINDEX[T.INT64], mat_from_dict(A_D, 3, 3), s)
        assert_mat_equal(C, {k: k[0] + 5 for k in A_D}, "scalar s")


class TestSelect:
    def test_paper_example_shape(self):
        """Fig. 3's select: user-defined triu-and-greater operator."""
        op = IU.IndexUnaryOp.new(
            lambda v, i, j, s: (j > i) and (v > s), T.BOOL, T.FP64, T.FP64,
            name="my_triu_gt",
        )
        C = Matrix.new(T.FP64, 3, 3)
        select(C, None, None, op, mat_from_dict(A_D, 3, 3), 0.0)
        assert mat_to_dict(C) == {
            k: v for k, v in A_D.items() if k[1] > k[0] and v > 0
        }

    def test_select_keeps_values_unchanged(self):
        C = Matrix.new(T.FP64, 3, 3)
        select(C, None, None, IU.VALUELT[T.FP64], mat_from_dict(A_D, 3, 3), 0.0)
        assert_mat_equal(C, {k: v for k, v in A_D.items() if v < 0}, "vals")

    def test_select_on_vector(self):
        w = Vector.new(T.FP64, 5)
        select(w, None, None, IU.VALUEGT[T.FP64], vec_from_dict(U_D, 5), 0.0)
        assert_vec_equal(w, {k: v for k, v in U_D.items() if v > 0}, "vsel")

    def test_select_with_transpose(self):
        at = {(j, i): v for (i, j), v in A_D.items()}
        C = Matrix.new(T.FP64, 3, 3)
        select(C, None, None, IU.TRIL, mat_from_dict(at, 3, 3), 0, desc=DESC_T0)
        assert_mat_equal(C, {k: v for k, v in A_D.items() if k[1] <= k[0]},
                         "T0 tril")

    def test_select_mask_accum_write_back(self):
        c0 = {(1, 0): 50.0, (2, 2): 60.0}
        mask = {(1, 0): True, (2, 2): True, (0, 1): True}
        C = mat_from_dict(c0, 3, 3)
        select(C, mat_from_dict(mask, 3, 3, T.BOOL), B.PLUS[T.FP64],
               IU.VALUELT[T.FP64], mat_from_dict(A_D, 3, 3), 0.0)
        t = {k: v for k, v in A_D.items() if v < 0}
        assert_mat_equal(C, ref_write_back(c0, t, mask, lambda x, y: x + y),
                         "select mask accum")

    def test_select_requires_bool_predefined(self):
        C = Matrix.new(T.INT64, 3, 3)
        with pytest.raises(DomainMismatchError):
            select(C, None, None, IU.ROWINDEX[T.INT64],
                   mat_from_dict(A_D, 3, 3), 0)

    def test_select_requires_indexunaryop(self):
        C = Matrix.new(T.FP64, 3, 3)
        with pytest.raises(DomainMismatchError):
            select(C, None, None, U.ABS[T.FP64], mat_from_dict(A_D, 3, 3), 0)

    def test_select_empty_scalar_rejected(self):
        C = Matrix.new(T.FP64, 3, 3)
        with pytest.raises(EmptyObjectError):
            select(C, None, None, IU.VALUEGT[T.FP64],
                   mat_from_dict(A_D, 3, 3), Scalar.new(T.FP64))

    def test_select_shape_check(self):
        C = Matrix.new(T.FP64, 2, 2)
        with pytest.raises(DimensionMismatchError):
            select(C, None, None, IU.TRIL, mat_from_dict(A_D, 3, 3), 0)

    def test_select_all_and_none(self):
        A = mat_from_dict(A_D, 3, 3)
        C = Matrix.new(T.FP64, 3, 3)
        select(C, None, None, IU.VALUENE[T.FP64], A, 123456.0)
        assert C.nvals() == len(A_D)
        C2 = Matrix.new(T.FP64, 3, 3)
        select(C2, None, None, IU.VALUEEQ[T.FP64], A, 123456.0)
        assert C2.nvals() == 0

"""eWiseAdd / eWiseMult battery: union vs intersection, op kinds, masks."""

import pytest

from repro.core import binaryop as B
from repro.core import monoid as M
from repro.core import semiring as S
from repro.core import types as T
from repro.core.descriptor import DESC_R, DESC_T0
from repro.core.errors import DimensionMismatchError, DomainMismatchError
from repro.core.matrix import Matrix
from repro.core.vector import Vector
from repro.ops.ewise import ewise_add, ewise_mult

from .helpers import (
    assert_mat_equal,
    assert_vec_equal,
    mat_from_dict,
    vec_from_dict,
)
from .reference import ref_ewise_add, ref_ewise_mult, ref_write_back

A_D = {(0, 0): 1.0, (0, 2): 2.0, (1, 1): 3.0, (2, 0): 4.0}
B_D = {(0, 0): 10.0, (1, 1): 20.0, (1, 2): 30.0, (2, 2): 40.0}


class TestMatrixEwise:
    def test_add_is_union_with_passthrough(self):
        A = mat_from_dict(A_D, 3, 3)
        Bm = mat_from_dict(B_D, 3, 3)
        C = Matrix.new(T.FP64, 3, 3)
        ewise_add(C, None, None, B.PLUS[T.FP64], A, Bm)
        assert_mat_equal(C, ref_ewise_add(A_D, B_D, lambda x, y: x + y), "add")

    def test_mult_is_intersection(self):
        A = mat_from_dict(A_D, 3, 3)
        Bm = mat_from_dict(B_D, 3, 3)
        C = Matrix.new(T.FP64, 3, 3)
        ewise_mult(C, None, None, B.TIMES[T.FP64], A, Bm)
        assert_mat_equal(C, ref_ewise_mult(A_D, B_D, lambda x, y: x * y), "mult")

    def test_add_with_non_commutative_op_order(self):
        A = mat_from_dict(A_D, 3, 3)
        Bm = mat_from_dict(B_D, 3, 3)
        C = Matrix.new(T.FP64, 3, 3)
        ewise_add(C, None, None, B.MINUS[T.FP64], A, Bm)
        assert_mat_equal(C, ref_ewise_add(A_D, B_D, lambda x, y: x - y), "minus")

    def test_op_may_be_monoid_or_semiring(self):
        A = mat_from_dict(A_D, 3, 3)
        Bm = mat_from_dict(B_D, 3, 3)
        expected_add = ref_ewise_add(A_D, B_D, lambda x, y: x + y)

        C1 = Matrix.new(T.FP64, 3, 3)
        ewise_add(C1, None, None, M.PLUS_MONOID[T.FP64], A, Bm)
        assert_mat_equal(C1, expected_add, "monoid add")

        # Semiring: eWiseAdd uses the add monoid, eWiseMult the multiply op.
        C2 = Matrix.new(T.FP64, 3, 3)
        ewise_add(C2, None, None, S.PLUS_TIMES_SEMIRING[T.FP64], A, Bm)
        assert_mat_equal(C2, expected_add, "semiring add")

        C3 = Matrix.new(T.FP64, 3, 3)
        ewise_mult(C3, None, None, S.PLUS_TIMES_SEMIRING[T.FP64], A, Bm)
        assert_mat_equal(C3, ref_ewise_mult(A_D, B_D, lambda x, y: x * y),
                         "semiring mult")

    def test_rejects_other_op_kinds(self):
        A = mat_from_dict(A_D, 3, 3)
        C = Matrix.new(T.FP64, 3, 3)
        with pytest.raises(DomainMismatchError):
            ewise_add(C, None, None, "PLUS", A, A)

    def test_transpose_first_input(self):
        at = {(j, i): v for (i, j), v in A_D.items()}
        At = mat_from_dict(at, 3, 3)
        Bm = mat_from_dict(B_D, 3, 3)
        C = Matrix.new(T.FP64, 3, 3)
        ewise_add(C, None, None, B.PLUS[T.FP64], At, Bm, desc=DESC_T0)
        assert_mat_equal(C, ref_ewise_add(A_D, B_D, lambda x, y: x + y), "T0")

    def test_mask_and_replace(self):
        A = mat_from_dict(A_D, 3, 3)
        Bm = mat_from_dict(B_D, 3, 3)
        c0 = {(2, 2): 99.0, (0, 0): 5.0}
        mask = {(0, 0): True, (1, 1): True}
        C = mat_from_dict(c0, 3, 3)
        Mk = mat_from_dict(mask, 3, 3, T.BOOL)
        ewise_add(C, Mk, None, B.PLUS[T.FP64], A, Bm, desc=DESC_R)
        t = ref_ewise_add(A_D, B_D, lambda x, y: x + y)
        assert_mat_equal(C, ref_write_back(c0, t, mask, None, replace=True),
                         "mask replace")

    def test_comparison_op_gives_bool_matrix(self):
        A = mat_from_dict(A_D, 3, 3)
        Bm = mat_from_dict(B_D, 3, 3)
        C = Matrix.new(T.BOOL, 3, 3)
        ewise_mult(C, None, None, B.LT[T.FP64], A, Bm)
        expected = ref_ewise_mult(A_D, B_D, lambda x, y: x < y)
        assert_mat_equal(C, expected, "lt")

    def test_shape_mismatch(self):
        A = Matrix.new(T.FP64, 2, 3)
        Bm = Matrix.new(T.FP64, 3, 2)
        C = Matrix.new(T.FP64, 2, 3)
        with pytest.raises(DimensionMismatchError):
            ewise_add(C, None, None, B.PLUS[T.FP64], A, Bm)

    def test_empty_operands(self):
        A = mat_from_dict(A_D, 3, 3)
        E = Matrix.new(T.FP64, 3, 3)
        C = Matrix.new(T.FP64, 3, 3)
        ewise_add(C, None, None, B.PLUS[T.FP64], A, E)
        assert_mat_equal(C, A_D, "add empty")
        C2 = Matrix.new(T.FP64, 3, 3)
        ewise_mult(C2, None, None, B.TIMES[T.FP64], A, E)
        assert C2.nvals() == 0


class TestVectorEwise:
    U_D = {0: 1.0, 2: 2.0, 4: 3.0}
    V_D = {0: 10.0, 3: 20.0, 4: 30.0}

    def test_add_union(self):
        u = vec_from_dict(self.U_D, 5)
        v = vec_from_dict(self.V_D, 5)
        w = Vector.new(T.FP64, 5)
        ewise_add(w, None, None, B.PLUS[T.FP64], u, v)
        assert_vec_equal(w, ref_ewise_add(self.U_D, self.V_D,
                                          lambda x, y: x + y), "vadd")

    def test_mult_intersection(self):
        u = vec_from_dict(self.U_D, 5)
        v = vec_from_dict(self.V_D, 5)
        w = Vector.new(T.FP64, 5)
        ewise_mult(w, None, None, B.TIMES[T.FP64], u, v)
        assert_vec_equal(w, {0: 10.0, 4: 90.0}, "vmult")

    def test_vector_mask_comp(self):
        from repro.core.descriptor import DESC_C
        u = vec_from_dict(self.U_D, 5)
        v = vec_from_dict(self.V_D, 5)
        mask = {0: True, 4: True}
        w = Vector.new(T.FP64, 5)
        Mv = vec_from_dict(mask, 5, T.BOOL)
        ewise_add(w, Mv, None, B.PLUS[T.FP64], u, v, desc=DESC_C)
        t = ref_ewise_add(self.U_D, self.V_D, lambda x, y: x + y)
        assert_vec_equal(w, ref_write_back({}, t, mask, None, complement=True),
                         "vmask comp")

    def test_same_vector_both_sides(self):
        u = vec_from_dict(self.U_D, 5)
        w = Vector.new(T.FP64, 5)
        ewise_add(w, None, None, B.PLUS[T.FP64], u, u)
        assert_vec_equal(w, {k: 2 * v for k, v in self.U_D.items()}, "u+u")

    def test_size_mismatch(self):
        u = Vector.new(T.FP64, 4)
        v = Vector.new(T.FP64, 5)
        w = Vector.new(T.FP64, 4)
        with pytest.raises(DimensionMismatchError):
            ewise_mult(w, None, None, B.TIMES[T.FP64], u, v)

    def test_int_udf_op(self):
        op = B.BinaryOp.new(lambda x, y: max(x, y) - min(x, y),
                            T.INT64, T.INT64, T.INT64, "absdiff")
        u = vec_from_dict({0: 5, 1: 2}, 3, T.INT64)
        v = vec_from_dict({0: 3, 2: 9}, 3, T.INT64)
        w = Vector.new(T.INT64, 3)
        ewise_add(w, None, None, op, u, v)
        assert_vec_equal(w, {0: 2, 1: 2, 2: 9}, "udf")

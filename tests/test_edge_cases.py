"""Edge-case battery: degenerate shapes, empty structures, deep chains."""

import pytest

from repro.core import binaryop as B
from repro.core import monoid as M
from repro.core import semiring as S
from repro.core import types as T
from repro.core.context import Context, Mode
from repro.core.descriptor import DESC_C, DESC_R, DESC_RC, DESC_S
from repro.core.errors import UninitializedObjectError
from repro.core.indexunaryop import TRIL
from repro.core.matrix import Matrix
from repro.core.scalar import Scalar
from repro.core.vector import Vector
from repro.ops.apply import apply
from repro.ops.assign import assign
from repro.ops.ewise import ewise_add, ewise_mult
from repro.ops.extract import extract
from repro.ops.kronecker import kronecker
from repro.ops.mxm import mxm
from repro.ops.reduce import reduce, reduce_scalar
from repro.ops.select import select
from repro.ops.transpose import transpose

from .helpers import mat_from_dict, mat_to_dict, vec_from_dict


class TestDegenerateShapes:
    def test_zero_dim_matrix_ops(self):
        a = Matrix.new(T.FP64, 0, 0)
        c = Matrix.new(T.FP64, 0, 0)
        mxm(c, None, None, S.PLUS_TIMES_SEMIRING[T.FP64], a, a)
        ewise_add(c, None, None, B.PLUS[T.FP64], a, a)
        transpose(c, None, None, a)
        select(c, None, None, TRIL, a, 0)
        assert c.nvals() == 0

    def test_zero_by_n_matrix(self):
        a = Matrix.new(T.FP64, 0, 5)
        b = Matrix.new(T.FP64, 5, 3)
        b.set_element(1.0, 2, 2)
        c = Matrix.new(T.FP64, 0, 3)
        mxm(c, None, None, S.PLUS_TIMES_SEMIRING[T.FP64], a, b)
        assert c.nvals() == 0

    def test_zero_size_vector(self):
        v = Vector.new(T.FP64, 0)
        assert reduce_scalar(M.PLUS_MONOID[T.FP64], v) == 0.0
        w = Vector.new(T.FP64, 0)
        ewise_mult(w, None, None, B.TIMES[T.FP64], v, v)
        assert w.nvals() == 0

    def test_one_by_one(self):
        a = mat_from_dict({(0, 0): 3.0}, 1, 1)
        c = Matrix.new(T.FP64, 1, 1)
        mxm(c, None, None, S.PLUS_TIMES_SEMIRING[T.FP64], a, a)
        assert c.extract_element(0, 0) == 9.0

    def test_kron_with_one_by_one_identity(self):
        a = mat_from_dict({(0, 0): 1.0}, 1, 1)
        b = mat_from_dict({(0, 1): 2.0, (1, 0): 3.0}, 2, 2)
        c = Matrix.new(T.FP64, 2, 2)
        kronecker(c, None, None, B.TIMES[T.FP64], a, b)
        assert mat_to_dict(c) == mat_to_dict(b)

    def test_extract_with_empty_index_list(self):
        a = mat_from_dict({(0, 0): 1.0}, 3, 3)
        c = Matrix.new(T.FP64, 0, 0)
        extract(c, None, None, a, [], [])
        assert c.nvals() == 0

    def test_assign_with_empty_index_list(self):
        w = vec_from_dict({0: 1.0}, 3)
        u = Vector.new(T.FP64, 0)
        assign(w, None, None, u, [])
        assert w.to_dict() == {0: 1.0}

    def test_resize_to_zero_then_back(self):
        m = mat_from_dict({(1, 1): 5.0}, 3, 3)
        m.resize(0, 0)
        assert m.nvals() == 0
        m.resize(2, 2)
        assert m.shape == (2, 2) and m.nvals() == 0


class TestMaskCorners:
    def test_empty_mask_blocks_everything(self):
        a = mat_from_dict({(0, 0): 1.0}, 2, 2)
        mask = Matrix.new(T.BOOL, 2, 2)
        c = mat_from_dict({(1, 1): 9.0}, 2, 2)
        ewise_add(c, mask, None, B.PLUS[T.FP64], a, a)
        assert mat_to_dict(c) == {(1, 1): 9.0}   # nothing written

    def test_empty_mask_with_replace_clears(self):
        a = mat_from_dict({(0, 0): 1.0}, 2, 2)
        mask = Matrix.new(T.BOOL, 2, 2)
        c = mat_from_dict({(1, 1): 9.0}, 2, 2)
        ewise_add(c, mask, None, B.PLUS[T.FP64], a, a, desc=DESC_R)
        assert c.nvals() == 0

    def test_complement_of_empty_mask_is_everything(self):
        a = mat_from_dict({(0, 0): 1.0}, 2, 2)
        mask = Matrix.new(T.BOOL, 2, 2)
        c = Matrix.new(T.FP64, 2, 2)
        ewise_add(c, mask, None, B.PLUS[T.FP64], a, a, desc=DESC_C)
        assert mat_to_dict(c) == {(0, 0): 2.0}

    def test_all_false_valued_mask_vs_structure(self):
        a = mat_from_dict({(0, 0): 1.0, (1, 1): 2.0}, 2, 2)
        mask = mat_from_dict({(0, 0): False, (1, 1): False}, 2, 2, T.BOOL)
        c1 = Matrix.new(T.FP64, 2, 2)
        ewise_add(c1, mask, None, B.PLUS[T.FP64], a, a)
        assert c1.nvals() == 0                     # valued: all false
        c2 = Matrix.new(T.FP64, 2, 2)
        ewise_add(c2, mask, None, B.PLUS[T.FP64], a, a, desc=DESC_S)
        assert c2.nvals() == 2                     # structural: stored = true

    def test_nonbool_valued_mask_casts(self):
        """A numeric mask counts entries with value != 0."""
        a = mat_from_dict({(0, 0): 1.0, (1, 1): 2.0}, 2, 2)
        mask = mat_from_dict({(0, 0): 0.0, (1, 1): 7.0}, 2, 2, T.FP64)
        c = Matrix.new(T.FP64, 2, 2)
        ewise_add(c, mask, None, B.PLUS[T.FP64], a, a)
        assert set(mat_to_dict(c)) == {(1, 1)}

    def test_complement_and_replace_together(self):
        a = mat_from_dict({(0, 0): 1.0, (0, 1): 2.0}, 2, 2)
        mask = mat_from_dict({(0, 0): True}, 2, 2, T.BOOL)
        c = mat_from_dict({(0, 0): 50.0, (1, 1): 60.0}, 2, 2)
        ewise_add(c, mask, None, B.PLUS[T.FP64], a, a, desc=DESC_RC)
        # complement(mask) = everything but (0,0); replace drops old c.
        assert mat_to_dict(c) == {(0, 1): 4.0}


class TestCastingThroughOps:
    def test_accum_with_cross_type_result(self):
        c = Matrix.new(T.INT64, 2, 2)
        c.set_element(10, 0, 0)
        a = mat_from_dict({(0, 0): 2.5}, 2, 2)
        ewise_add(c, None, B.PLUS[T.FP64], B.PLUS[T.FP64], a, a)
        assert c.extract_element(0, 0) == 15   # 10 + (2.5+2.5), cast to int

    def test_bool_output_of_numeric_semiring(self):
        a = mat_from_dict({(0, 1): 2.0, (1, 0): 2.0}, 2, 2)
        c = Matrix.new(T.BOOL, 2, 2)
        mxm(c, None, None, S.PLUS_TIMES_SEMIRING[T.FP64], a, a)
        assert mat_to_dict(c) == {(0, 0): True, (1, 1): True}

    def test_float_to_int_truncation_on_write(self):
        u = vec_from_dict({0: 2.9}, 2)
        w = Vector.new(T.INT8, 2)
        apply(w, None, None, B.TIMES[T.FP64], u, 1.0)
        assert w.extract_element(0) == 2


class TestDeepChains:
    def test_long_deferred_chain(self):
        ctx = Context.new(Mode.NONBLOCKING, None, None)
        a = mat_from_dict({(0, 0): 1.0}, 2, 2, ctx=ctx)
        c = Matrix.new(T.FP64, 2, 2, ctx)
        for _ in range(50):
            mxm(c, None, B.PLUS[T.FP64], S.PLUS_TIMES_SEMIRING[T.FP64], a, a)
        assert not c.is_materialized
        c.wait()
        assert c.extract_element(0, 0) == 50.0

    def test_interleaved_ops_many_objects(self):
        ctx = Context.new(Mode.NONBLOCKING, None, None)
        vs = [Vector.new(T.INT64, 4, ctx) for _ in range(10)]
        for k, v in enumerate(vs):
            v.set_element(k, k % 4)
        for k in range(1, 10):
            ewise_add(vs[k], None, None, B.PLUS[T.INT64], vs[k], vs[k - 1])
        vs[-1].wait()
        total = sum(vs[-1].to_dict().values())
        assert total == sum(range(10))

    def test_scalar_chain(self):
        ctx = Context.new(Mode.NONBLOCKING, None, None)
        s = Scalar.new(T.INT64, ctx)
        for k in range(20):
            s.set_element(k)
        s.clear()
        s.set_element(99)
        assert s.extract_element() == 99


class TestFreedObjects:
    def test_every_method_rejects_freed_matrix(self):
        m = mat_from_dict({(0, 0): 1.0}, 2, 2)
        m.free()
        for call in (
            lambda: m.nvals(),
            lambda: m.dup(),
            lambda: m.set_element(1.0, 0, 0),
            lambda: m.extract_tuples(),
            lambda: m.clear(),
            lambda: m.wait(),
        ):
            with pytest.raises(UninitializedObjectError):
                call()

    def test_freed_input_to_operation(self):
        a = mat_from_dict({(0, 0): 1.0}, 2, 2)
        c = Matrix.new(T.FP64, 2, 2)
        a.free()
        with pytest.raises(UninitializedObjectError):
            mxm(c, None, None, S.PLUS_TIMES_SEMIRING[T.FP64], a, a)

    def test_double_free_is_harmless(self):
        m = Matrix.new(T.FP64, 2, 2)
        m.free()
        m.free()   # idempotent, like GrB_free on an already-freed handle


class TestSelfReferentialOps:
    def test_output_equals_mask(self):
        """C⟨C⟩ = A ⊕ A with C as its own structural mask."""
        a = mat_from_dict({(0, 0): 1.0, (1, 1): 2.0}, 2, 2)
        c = mat_from_dict({(0, 0): 9.0}, 2, 2)
        ewise_add(c, c, None, B.PLUS[T.FP64], a, a, desc=DESC_S)
        assert mat_to_dict(c) == {(0, 0): 2.0}

    def test_vector_output_is_both_inputs(self):
        v = vec_from_dict({0: 2.0, 1: 3.0}, 3)
        ewise_mult(v, None, None, B.TIMES[T.FP64], v, v)
        assert v.to_dict() == {0: 4.0, 1: 9.0}

    def test_reduce_scalar_accum_into_itself_repeatedly(self):
        v = vec_from_dict({0: 1.0, 1: 2.0}, 3)
        s = Scalar.new(T.FP64)
        s.set_element(0.0)
        for _ in range(3):
            reduce(s, B.PLUS[T.FP64], M.PLUS_MONOID[T.FP64], v)
        assert s.extract_element() == 9.0

"""Type-system battery: predefined domains, promotion, UDTs, casts."""

import numpy as np
import pytest

from repro.core import types as T
from repro.core.errors import DomainMismatchError


class TestPredefinedDomains:
    def test_eleven_predefined_types(self):
        assert len(T.PREDEFINED_TYPES) == 11

    @pytest.mark.parametrize("t", T.PREDEFINED_TYPES, ids=lambda t: t.name)
    def test_spec_name_prefix(self, t):
        assert t.name.startswith("GrB_")
        assert not t.is_udt

    @pytest.mark.parametrize(
        "t,dtype",
        [
            (T.BOOL, np.bool_), (T.INT8, np.int8), (T.INT16, np.int16),
            (T.INT32, np.int32), (T.INT64, np.int64), (T.UINT8, np.uint8),
            (T.UINT16, np.uint16), (T.UINT32, np.uint32),
            (T.UINT64, np.uint64), (T.FP32, np.float32), (T.FP64, np.float64),
        ],
        ids=lambda x: getattr(x, "name", getattr(x, "__name__", str(x))),
    )
    def test_dtype_mapping(self, t, dtype):
        assert t.np_dtype == np.dtype(dtype)
        assert T.from_dtype(dtype) is t

    def test_from_name(self):
        assert T.from_name("GrB_FP64") is T.FP64
        with pytest.raises(DomainMismatchError):
            T.from_name("GrB_COMPLEX")

    def test_sizes_match_c(self):
        assert T.INT8.size == 1
        assert T.INT64.size == 8
        assert T.FP32.size == 4

    def test_kind_predicates(self):
        assert T.BOOL.is_bool and not T.BOOL.is_integer
        assert T.UINT16.is_integer and not T.UINT16.is_float
        assert T.FP32.is_float

    def test_groupings_are_disjoint_and_complete(self):
        assert set(T.NUMERIC_TYPES) | {T.BOOL} == set(T.PREDEFINED_TYPES)
        assert set(T.SIGNED_INTEGER_TYPES) & set(T.UNSIGNED_INTEGER_TYPES) == set()


class TestCoercion:
    def test_coerce_scalar_casts(self):
        assert T.INT32.coerce_scalar(3.9) == 3
        assert isinstance(T.INT32.coerce_scalar(3.9), np.int32)
        assert T.BOOL.coerce_scalar(2) is np.bool_(True)

    def test_coerce_array_noop_when_same_dtype(self):
        arr = np.array([1.0, 2.0])
        assert T.FP64.coerce_array(arr) is arr

    def test_coerce_array_casts(self):
        out = T.INT8.coerce_array(np.array([1.5, 2.5]))
        assert out.dtype == np.int8

    def test_zeros_and_empty(self):
        assert T.FP32.zeros(3).tolist() == [0.0, 0.0, 0.0]
        assert len(T.INT64.empty(5)) == 5


class TestPromotion:
    def test_same_type_identity(self):
        assert T.common_type(T.INT32, T.INT32) is T.INT32

    @pytest.mark.parametrize(
        "a,b,expected",
        [
            (T.INT8, T.INT32, T.INT32),
            (T.INT32, T.FP32, T.FP64),
            (T.UINT8, T.INT8, T.INT16),
            (T.BOOL, T.INT8, T.INT8),
            (T.FP32, T.FP64, T.FP64),
        ],
    )
    def test_c_style_promotion(self, a, b, expected):
        assert T.common_type(a, b) == expected

    def test_cast_allowed_between_builtins(self):
        assert T.cast_allowed(T.FP64, T.INT8)
        assert T.cast_allowed(T.BOOL, T.UINT64)


class TestUserDefinedTypes:
    def test_new_udt(self):
        udt = T.Type.new("Complex128", size=16)
        assert udt.is_udt
        assert udt.np_dtype == np.dtype(object)
        assert udt.size == 16

    def test_udt_requires_name(self):
        from repro.core.errors import NullPointerError
        with pytest.raises(NullPointerError):
            T.Type.new("")

    def test_udt_identity_equality(self):
        a = T.Type.new("A")
        b = T.Type.new("A")
        assert a == a
        assert a != b  # UDTs compare by identity, not name

    def test_udt_never_promotes(self):
        udt = T.Type.new("Pair")
        with pytest.raises(DomainMismatchError):
            T.common_type(udt, T.FP64)
        assert T.common_type(udt, udt) is udt
        assert not T.cast_allowed(udt, T.FP64)

    def test_udt_cast_hook(self):
        udt = T.Type.new("Point", cast=lambda v: tuple(v))
        assert udt.coerce_scalar([1, 2]) == (1, 2)

    def test_udt_coerce_array_to_object(self):
        udt = T.Type.new("Box")
        out = udt.coerce_array(np.array([1, 2, 3]))
        assert out.dtype == object


class TestInference:
    def test_pyvalue_inference(self):
        assert T.type_from_pyvalue(True) is T.BOOL
        assert T.type_from_pyvalue(7) is T.INT64
        assert T.type_from_pyvalue(1.5) is T.FP64
        assert T.type_from_pyvalue(np.float32(1)) is T.FP32

    def test_pyvalue_inference_rejects_unknown(self):
        with pytest.raises(DomainMismatchError):
            T.type_from_pyvalue("nope")

    def test_suffixes(self):
        assert T.suffix_of(T.UINT32) == "UINT32"
        with pytest.raises(DomainMismatchError):
            T.suffix_of(T.Type.new("X"))

"""Every shipped example must run clean (subprocess smoke tests).

The examples are the user-facing reproduction of the paper's figures;
if one rots, the repo's claim rots with it.  Each runs as a fresh
interpreter (its own GrB_init/GrB_finalize lifecycle) with scaled-down
arguments where the script accepts them.
"""

import subprocess
import sys
from pathlib import Path

import pytest

EXAMPLES = Path(__file__).resolve().parent.parent / "examples"


def _run(script: str, *args: str) -> subprocess.CompletedProcess:
    return subprocess.run(
        [sys.executable, str(EXAMPLES / script), *args],
        capture_output=True, text=True, timeout=240,
    )


@pytest.mark.parametrize(
    "script,args,expect",
    [
        ("quickstart.py", (), "deferred execution error"),
        ("fig1_two_thread_pipeline.py", (),
         "matches sequential execution"),
        ("fig2_context_hierarchy.py", (), "GrB_finalize freed every context"),
        ("fig3_select_apply.py", (), "apply preserved all"),
        ("triangle_census.py", ("7",), "triangles ="),
        ("bfs_roadmap.py", ("16",), "connected components: 1"),
        ("serialization_pipeline.py", (), "bit-identical"),
        ("distributed_bfs.py", (), "match single-node BFS"),
        ("pythonic_analytics.py", (), "sssp from hub"),
        ("sparse_dnn.py", ("256", "4"), "inference:"),
        ("serve_demo.py", (), "serve demo: OK"),
    ],
    ids=lambda x: x if isinstance(x, str) and x.endswith(".py") else "",
)
def test_example_runs_clean(script, args, expect):
    proc = _run(script, *args)
    assert proc.returncode == 0, (
        f"{script} failed:\nstdout:\n{proc.stdout}\nstderr:\n{proc.stderr}"
    )
    assert expect in proc.stdout, (
        f"{script} output missing {expect!r}:\n{proc.stdout}"
    )


def test_example_inventory_complete():
    """Every example on disk is exercised above."""
    on_disk = {p.name for p in EXAMPLES.glob("*.py")}
    tested = {
        "quickstart.py", "fig1_two_thread_pipeline.py",
        "fig2_context_hierarchy.py", "fig3_select_apply.py",
        "triangle_census.py", "bfs_roadmap.py",
        "serialization_pipeline.py", "distributed_bfs.py",
        "pythonic_analytics.py", "sparse_dnn.py",
        "serve_demo.py",
    }
    assert on_disk == tested, (
        f"untested examples: {on_disk - tested}; stale: {tested - on_disk}"
    )

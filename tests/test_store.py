"""The persistent warm-start store (:mod:`repro.store`).

A second *process* (or a fresh Context standing in for one) computing
the same graph must find the algorithm blocks a previous run persisted
— keyed on content, not process-local identity — and the store must be
impossible to distinguish from "slower" on every failure path: corrupt
entries, injected I/O faults, eviction races, and the ablated knob all
degrade to a cold rebuild of the exact same answer.

Battery:

* cross-context warm start (zero algo-memo misses, exact parity);
* the real thing: a **subprocess** serves pagerank with zero setup
  kernels from a store its parent seeded;
* key soundness — format-policy flips and graph writes miss, ``warm:*``
  fixpoints never persist;
* LRU-by-atime eviction under ``STORE_MAX_BYTES``;
* injected ``store.read`` / ``store.write`` faults (miss / skipped
  persist, never an error);
* Hypothesis corruption fuzz over the entry envelope (bit flips,
  truncation → counted miss, quarantined file);
* the calibration sidecar round trip and its seeding into the cost
  model and memo-admission EWMA.
"""

import json
import os
import subprocess
import sys
import threading

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.algorithms import pagerank
from repro.core import types as T
from repro.core.context import Context, Mode, WaitMode
from repro.core.matrix import Matrix
from repro.engine.stats import STATS
from repro.faults import PLANE, configure_from_env
from repro.faults.plane import FaultSpec
from repro.generators import erdos_renyi
from repro.internals import config
from repro.store import WarmStore, tier

SETTINGS = settings(
    max_examples=60,
    deadline=None,
    suppress_health_check=[HealthCheck.function_scoped_fixture],
)

#: Format-policy knobs pinned for every test: the store key embeds the
#: fingerprint, so the battery must not depend on the ambient ablation
#: row's policy.
_PINNED_FORMAT = (("FORMAT_AUTO", True),
                  ("FORMAT_DCSR_MIN_ROWS", 1 << 20),
                  ("FORMAT_DCSR_FACTOR", 16))


@pytest.fixture(autouse=True)
def store_on(tmp_path):
    """Pin the whole warm-start stack on (the suite also runs under
    ablation rows like ``REPRO_STORE=0``) and root the store in a fresh
    temp dir so every test starts cold on disk."""
    pins = [config.option("ENGINE_MEMO", True),
            config.option("ENGINE_ALGO_MEMO", True),
            config.option("MEMO_EVICTION", "cost"),
            config.option("STORE_ENABLE", True),
            config.option("STORE_DIR", str(tmp_path / "store"))]
    pins += [config.option(k, v) for k, v in _PINNED_FORMAT]
    for p in pins:
        p.__enter__()
    STATS.reset()
    yield tmp_path / "store"
    for p in reversed(pins):
        p.__exit__(None, None, None)
    PLANE.disable()
    configure_from_env()


def _graph(ctx, seed=3):
    n, rows, cols, _ = erdos_renyi(40, 0.08, seed=seed)
    keep = rows != cols
    a = Matrix.new(T.FP64, n, n, ctx)
    a.build(rows[keep], cols[keep], np.ones(int(keep.sum())))
    a.wait(WaitMode.MATERIALIZE)
    return a


def _fresh_ctx():
    return Context.new(Mode.NONBLOCKING, None, None)


# ---------------------------------------------------------------------------
# Warm start across contexts (the in-process restart proxy)
# ---------------------------------------------------------------------------


class TestWarmStart:
    def test_cold_run_persists_setup_blocks(self, store_on):
        a = _graph(_fresh_ctx())
        pagerank(a)
        snap = STATS.snapshot()
        # pattern matrix + degree vector, both admitted to disk
        assert snap["store_stores"] == 2
        assert snap["store_hits"] == 0
        assert WarmStore(str(store_on)).entry_count() == 2

    def test_fresh_context_serves_from_disk(self, store_on):
        r1, it1 = pagerank(_graph(_fresh_ctx()))
        STATS.reset()
        # a fresh Context is a stand-in for a fresh process: new uids,
        # empty memo — only the disk tier can connect the two runs.
        r2, it2 = pagerank(_graph(_fresh_ctx()))
        snap = STATS.snapshot()
        assert snap["algo_memo_misses"] == 0
        assert snap["store_hits"] == 2
        assert snap["store_misses"] == 0
        assert snap["store_stores"] == 0       # probe-hit never re-persists
        assert it2 == it1
        assert r1.to_dict() == r2.to_dict()

    def test_disk_hit_reenters_memo(self, store_on):
        """A store hit is re-inserted in the in-memory memo: the second
        call in the *same* fresh context hits memory, not disk."""
        pagerank(_graph(_fresh_ctx()))
        ctx = _fresh_ctx()
        a = _graph(ctx)
        STATS.reset()
        pagerank(a)
        assert STATS.snapshot()["store_hits"] == 2
        STATS.reset()
        pagerank(a)
        snap = STATS.snapshot()
        assert snap["algo_memo_hits"] == 2
        assert snap["store_hits"] == 0

    def test_store_disabled_is_bit_identical_and_diskless(self, store_on):
        with config.option("STORE_ENABLE", False):
            assert tier.active_store() is None
            r1, it1 = pagerank(_graph(_fresh_ctx()))
            r2, it2 = pagerank(_graph(_fresh_ctx()))
        snap = STATS.snapshot()
        assert snap["store_stores"] == 0 and snap["store_hits"] == 0
        assert not (store_on / "entries").exists()
        assert it1 == it2 and r1.to_dict() == r2.to_dict()

    def test_graph_write_changes_digest_and_misses(self, store_on):
        ctx = _fresh_ctx()
        a = _graph(ctx)
        pagerank(a)
        # a *content* change (all edges are 1.0, this one becomes 7.0):
        # the new digest keys both blocks somewhere else on disk
        a.set_element(7.0, 0, 1)
        a.wait(WaitMode.MATERIALIZE)
        STATS.reset()
        pagerank(a)
        snap = STATS.snapshot()
        assert snap["store_hits"] == 0
        assert snap["store_misses"] >= 1

    def test_identical_content_rewrite_still_hits(self, store_on):
        """The flip side of content addressing: a version bump that
        leaves the bytes identical (rewriting an existing 1.0 edge)
        re-derives the *same* digest and keeps serving from disk."""
        ctx = _fresh_ctx()
        a = _graph(ctx)
        pagerank(a)
        r, c = int(a.extract_tuples()[0][0]), int(a.extract_tuples()[1][0])
        a.set_element(1.0, r, c)
        a.wait(WaitMode.MATERIALIZE)
        STATS.reset()
        pagerank(a)
        assert STATS.snapshot()["store_hits"] == 2


# ---------------------------------------------------------------------------
# The real acceptance gate: a second *process*
# ---------------------------------------------------------------------------


_CHILD = """\
import json
import numpy as np
from repro.internals import config
for k, v in {pins}:
    config.set_option(k, v)
config.set_option("STORE_ENABLE", True)
config.set_option("STORE_DIR", {root!r})
from repro.algorithms import pagerank
from repro.core import types as T
from repro.core.context import Context, Mode, WaitMode, init
from repro.core.matrix import Matrix
from repro.engine.stats import STATS
from repro.generators import erdos_renyi

init(Mode.NONBLOCKING)
n, rows, cols, _ = erdos_renyi(40, 0.08, seed=3)
keep = rows != cols
ctx = Context.new(Mode.NONBLOCKING, None, None)
a = Matrix.new(T.FP64, n, n, ctx)
a.build(rows[keep], cols[keep], np.ones(int(keep.sum())))
a.wait(WaitMode.MATERIALIZE)
STATS.reset()
ranks, iters = pagerank(a)
snap = STATS.snapshot()
print(json.dumps({{
    "algo_memo_misses": snap["algo_memo_misses"],
    "store_hits": snap["store_hits"],
    "iters": iters,
    "ranks": sorted((int(i), float(v)) for i, v in ranks.to_dict().items()),
}}))
"""


class TestSecondProcess:
    def test_child_process_starts_warm(self, store_on):
        """The pinned cross-process guarantee: a subprocess sharing only
        the store directory answers pagerank with **zero** algo-memo
        misses — every setup block comes off disk."""
        r1, it1 = pagerank(_graph(_fresh_ctx()))
        import pathlib

        import repro

        script = _CHILD.format(pins=list(_PINNED_FORMAT),
                               root=str(store_on))
        src = str(pathlib.Path(repro.__file__).resolve().parents[1])
        env = dict(os.environ)
        env["PYTHONPATH"] = os.pathsep.join(
            [src] + [p for p in env.get("PYTHONPATH", "").split(os.pathsep)
                     if p])
        # hermetic against the ablation matrix: the child pins via
        # set_option above, but stale env flags must not re-disable
        for stale in ("REPRO_STORE", "REPRO_STORE_DIR", "ENGINE_ALGO_MEMO",
                      "REPRO_RESULT_CACHE", "ENGINE_MEMO", "FORMAT_AUTO"):
            env.pop(stale, None)
        out = subprocess.run(
            [sys.executable, "-c", script], env=env,
            capture_output=True, text=True, timeout=120,
        )
        assert out.returncode == 0, out.stderr
        got = json.loads(out.stdout.strip().splitlines()[-1])
        assert got["algo_memo_misses"] == 0
        assert got["store_hits"] == 2
        assert got["iters"] == it1
        want = sorted([int(i), float(v)] for i, v in r1.to_dict().items())
        assert got["ranks"] == want      # bit-exact, JSON lists both sides


# ---------------------------------------------------------------------------
# Key soundness
# ---------------------------------------------------------------------------


class TestKeys:
    def test_format_policy_flip_changes_key(self, store_on):
        ctx = _fresh_ctx()
        a = _graph(ctx)
        pagerank(a)
        from repro.algorithms._blocks import _key

        k_auto = tier.store_key(_key(a, "pattern", ("FP64",)))
        assert k_auto is not None
        with config.option("FORMAT_AUTO", False):
            k_flipped = tier.store_key(_key(a, "pattern", ("FP64",)))
        assert k_flipped is not None and k_flipped != k_auto

    def test_policy_flip_misses_on_disk(self, store_on):
        pagerank(_graph(_fresh_ctx()))
        STATS.reset()
        with config.option("FORMAT_DCSR_FACTOR", 17):
            pagerank(_graph(_fresh_ctx()))
        snap = STATS.snapshot()
        assert snap["store_hits"] == 0
        assert snap["store_misses"] >= 2   # probed, keyed differently

    def test_warm_fixpoints_never_persist(self, store_on):
        ctx = _fresh_ctx()
        a = _graph(ctx)
        tier.ensure_digest(a)
        from repro.algorithms._blocks import _key

        assert tier.store_key(_key(a, "warm:pagerank", ())) is None

    def test_unregistered_and_malformed_keys(self, store_on):
        assert tier.store_key(("algo", "pattern", (10**9, 0), (), ())) is None
        assert tier.store_key(("op", "mxm", 1, 2, 3)) is None
        assert tier.store_key("not-a-tuple") is None
        ctx = _fresh_ctx()
        a = _graph(ctx)
        tier.ensure_digest(a)
        with a._lock:
            vkey = (a._uid, a._version)
        # non-JSON params are unkeyable, not misfiled
        assert tier.store_key(("algo", "x", vkey, (object(),), ())) is None

    def test_digest_tracks_version(self, store_on):
        ctx = _fresh_ctx()
        a = _graph(ctx)
        tier.ensure_digest(a)
        with a._lock:
            uid, v0 = a._uid, a._version
        d0 = tier.digest_for(uid, v0)
        assert d0 is not None
        a.set_element(2.0, 1, 0)
        a.wait(WaitMode.MATERIALIZE)
        with a._lock:
            v1 = a._version
        assert v1 != v0
        assert tier.digest_for(uid, v1) is None     # not yet re-registered
        tier.ensure_digest(a)
        d1 = tier.digest_for(uid, v1)
        assert d1 is not None and d1 != d0


# ---------------------------------------------------------------------------
# Eviction
# ---------------------------------------------------------------------------


class TestEviction:
    def _fill(self, store, n=8, size=2048):
        from repro.formats.serialize import carrier_serialize

        from .helpers import vec_from_dict

        for i in range(n):
            carrier = vec_from_dict(
                {j: float(i + j) for j in range(size // 16)}, size
            )._capture()
            assert store.put(f"{i:032x}", carrier_serialize(carrier),
                             cost_ms=5.0)
        return store

    def test_budget_enforced_lru(self, store_on):
        import time

        store = WarmStore(str(store_on))
        with config.option("STORE_MAX_BYTES", 1 << 30):
            self._fill(store)
        # age every entry into the past (filesystem timestamp ticks can
        # be coarser than this test's write loop) ...
        base = time.time() - 1000.0
        for i in range(8):
            p = store._entry_path(f"{i:032x}")
            os.utime(p, (base + i, base + i))
        per_entry = store.total_bytes() // store.entry_count()
        budget = per_entry * 3 + per_entry // 2
        with config.option("STORE_MAX_BYTES", budget):
            # ... then *read* the two oldest: a hit refreshes atime, so
            # LRU must now keep exactly them
            for i in range(2):
                assert store.get(f"{i:032x}") is not None
            evicted = store.evict()
        assert evicted > 0
        assert store.total_bytes() <= budget
        assert STATS.snapshot()["store_evictions"] == evicted
        # the freshly-touched entries survived
        assert store.contains(f"{0:032x}")
        assert store.contains(f"{1:032x}")

    def test_zero_budget_disables_eviction(self, store_on):
        store = WarmStore(str(store_on))
        with config.option("STORE_MAX_BYTES", 0):
            self._fill(store, n=4)
            assert store.evict() == 0
        assert store.entry_count() == 4

    def test_put_evicts_behind_itself(self, store_on):
        from repro.formats.serialize import carrier_serialize

        from .helpers import vec_from_dict

        store = WarmStore(str(store_on))
        with config.option("STORE_MAX_BYTES", 1 << 30):
            self._fill(store, n=2)
        budget = store.total_bytes()   # exactly two entries' worth
        big = vec_from_dict({j: float(j) for j in range(256)},
                            4096)._capture()
        with config.option("STORE_MAX_BYTES", budget):
            # a third entry pushes past the budget: put evicts behind
            # itself without being asked
            assert store.put("ff" * 16, carrier_serialize(big), cost_ms=9.0)
        assert store.total_bytes() <= budget


# ---------------------------------------------------------------------------
# Fault injection on the store sites
# ---------------------------------------------------------------------------


class TestFaults:
    def test_read_faults_degrade_to_cold_rebuild(self, store_on):
        r1, it1 = pagerank(_graph(_fresh_ctx()))
        PLANE.configure(7, [FaultSpec(site="store.read", rate=1.0)])
        try:
            STATS.reset()
            r2, it2 = pagerank(_graph(_fresh_ctx()))
        finally:
            PLANE.disable()
            configure_from_env()
        snap = STATS.snapshot()
        assert snap["store_hits"] == 0
        assert snap["store_misses"] >= 2
        assert snap["store_corrupt"] == 0      # a fault is not corruption
        assert snap["algo_memo_misses"] == 2   # rebuilt cold, correctly
        assert it2 == it1 and r1.to_dict() == r2.to_dict()

    def test_write_faults_skip_persist(self, store_on):
        PLANE.configure(7, [FaultSpec(site="store.write", rate=1.0)])
        try:
            STATS.reset()
            r1, _ = pagerank(_graph(_fresh_ctx()))
        finally:
            PLANE.disable()
            configure_from_env()
        snap = STATS.snapshot()
        assert snap["store_stores"] == 0
        assert WarmStore(str(store_on)).entry_count() == 0
        # and the algorithm itself was untouched
        assert snap["algo_memo_stores"] == 2
        r2, _ = pagerank(_graph(_fresh_ctx()))
        assert r1.to_dict() == r2.to_dict()


# ---------------------------------------------------------------------------
# Corruption fuzz over the entry envelope
# ---------------------------------------------------------------------------


def _seeded_entry(root):
    """One real entry on disk; returns (store, path, framed bytes)."""
    from repro.formats.serialize import carrier_serialize

    from .helpers import mat_from_dict

    store = WarmStore(str(root))
    carrier = mat_from_dict(
        {(0, 0): 1.5, (1, 2): -2.25, (3, 1): 4.0}, 4, 4)._capture()
    key = "ab" * 16
    path = store._entry_path(key)
    # Hypothesis reuses the fixture dir across examples: start clean so
    # every example mutates a freshly-framed entry.
    path.unlink(missing_ok=True)
    assert store.put(key, carrier_serialize(carrier), cost_ms=3.25)
    return store, key, path, path.read_bytes()


class TestCorruptionFuzz:
    @SETTINGS
    @given(data=st.data())
    def test_single_byte_flip_is_a_counted_miss(self, data, store_on):
        store, key, path, blob = _seeded_entry(store_on)
        mutated = bytearray(blob)
        pos = data.draw(st.integers(0, len(blob) - 1))
        mutated[pos] ^= data.draw(st.integers(1, 255))
        path.write_bytes(bytes(mutated))
        before = STATS.snapshot()
        out = store.get(key)
        after = STATS.snapshot()
        if out is None:
            # corrupt: counted, quarantined — the next probe is clean
            assert after["store_corrupt"] == before["store_corrupt"] + 1
            assert after["store_misses"] == before["store_misses"] + 1
            assert not path.exists()
        else:
            # astronomically unlikely double-checksum collision: the
            # accepted carrier must still be internally valid
            carrier, cost_ms = out
            carrier.check()
            assert cost_ms >= 0.0

    @SETTINGS
    @given(cut=st.integers(0, 400))
    def test_truncation_is_a_counted_miss(self, cut, store_on):
        store, key, path, blob = _seeded_entry(store_on)
        path.write_bytes(blob[: min(cut, len(blob) - 1)])
        before = STATS.snapshot()["store_corrupt"]
        assert store.get(key) is None
        assert STATS.snapshot()["store_corrupt"] == before + 1
        assert not path.exists()

    def test_intact_entry_round_trips(self, store_on):
        store, key, path, _ = _seeded_entry(store_on)
        out = store.get(key)
        assert out is not None
        carrier, cost_ms = out
        assert carrier.nvals == 3
        assert cost_ms == pytest.approx(3.25)
        assert STATS.snapshot()["store_corrupt"] == 0


# ---------------------------------------------------------------------------
# Concurrency
# ---------------------------------------------------------------------------


class TestConcurrency:
    def test_readers_writers_evictors_never_error(self, store_on):
        """Hammer one store from reader, writer, and evictor threads:
        every outcome is a hit, a miss, or a skipped persist — never an
        exception, never an invalid carrier."""
        from repro.formats.serialize import carrier_serialize

        from .helpers import vec_from_dict

        store = WarmStore(str(store_on))
        blobs = {
            f"{i:032x}": carrier_serialize(
                vec_from_dict({j: float(j) for j in range(32)},
                              64)._capture())
            for i in range(6)
        }
        errors = []
        stop = threading.Event()

        def writer():
            try:
                while not stop.is_set():
                    for k, b in blobs.items():
                        store.put(k, b, cost_ms=1.0)
            except Exception as exc:          # pragma: no cover
                errors.append(exc)

        def reader():
            try:
                while not stop.is_set():
                    for k in blobs:
                        out = store.get(k)
                        if out is not None:
                            out[0].check()
            except Exception as exc:          # pragma: no cover
                errors.append(exc)

        def evictor():
            try:
                while not stop.is_set():
                    store.evict(max_bytes=sum(
                        len(b) for b in blobs.values()) // 2)
            except Exception as exc:          # pragma: no cover
                errors.append(exc)

        threads = [threading.Thread(target=f)
                   for f in (writer, writer, reader, reader, evictor)]
        for t in threads:
            t.start()
        import time
        time.sleep(0.4)
        stop.set()
        for t in threads:
            t.join(timeout=10)
        assert not errors
        # the store is still coherent: everything on disk decodes
        for k in blobs:
            out = store.get(k)
            if out is not None:
                out[0].check()


# ---------------------------------------------------------------------------
# Calibration sidecar
# ---------------------------------------------------------------------------


class TestCalibration:
    def test_sidecar_round_trip(self, store_on):
        store = WarmStore(str(store_on))
        payload = {"rates": {"mxm": 12.5}, "partitions": {"4": [1000, 0.01]},
                   "admission": {"overhead_ms": 0.8, "samples": 5}}
        assert store.save_calibration(payload)
        got = store.load_calibration()
        assert got is not None
        assert got["rates"] == {"mxm": 12.5}
        assert got["admission"]["samples"] == 5

    def test_corrupt_sidecar_is_a_cold_start(self, store_on):
        store = WarmStore(str(store_on))
        store.root.mkdir(parents=True, exist_ok=True)
        (store.root / "calibration.json").write_text("{nope")
        assert store.load_calibration() is None
        (store.root / "calibration.json").write_text('["wrong shape"]')
        assert store.load_calibration() is None
        (store.root / "calibration.json").write_text('{"format": 99}')
        assert store.load_calibration() is None

    def test_save_calibration_captures_live_state(self, store_on):
        from repro.engine import memo as memo_mod

        pagerank(_graph(_fresh_ctx()))          # generate some admission data
        assert tier.save_calibration()
        data = WarmStore(str(store_on)).load_calibration()
        assert data is not None
        assert isinstance(data.get("rates"), dict)
        assert isinstance(data.get("partitions"), dict)
        adm = data.get("admission")
        assert isinstance(adm, dict) and "overhead_ms" in adm
        assert adm == memo_mod.export_admission()

    def test_first_open_seeds_admission_ewma(self, tmp_path, store_on):
        from repro.engine import memo as memo_mod

        root = tmp_path / "seeded"              # a dir never opened before
        WarmStore(str(root)).save_calibration(
            {"admission": {"overhead_ms": 1.25, "samples": 4}})
        STATS.reset()                           # clears the live EWMA
        assert memo_mod.commit_overhead_ms() == 0.0
        with config.option("STORE_DIR", str(root)):
            assert tier.active_store() is not None
        assert memo_mod.commit_overhead_ms() == pytest.approx(1.25)
        STATS.reset()                           # leave no prior behind
        assert memo_mod.commit_overhead_ms() == 0.0

    def test_first_open_seeds_partition_samples(self, tmp_path, store_on):
        from repro.engine.passes import cost

        root = tmp_path / "seeded-parts"
        WarmStore(str(root)).save_calibration(
            {"partitions": {"4": [50000, 0.002], "8": [50000, 0.0015],
                            "bogus": "skip", "1": [10, 0.1]}})
        STATS.reset()
        with config.option("STORE_DIR", str(root)):
            assert tier.active_store() is not None
            exported = cost.export_partition_samples()
        assert exported.get("4") == [50000.0, 0.002]
        assert exported.get("8") == [50000.0, 0.0015]
        assert "1" not in exported              # nblocks < 2 rejected
        STATS.reset()

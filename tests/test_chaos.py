"""Chaos testing: long random operation sequences vs the dict model.

A driver keeps a GraphBLAS matrix and a dictionary model side by side,
applies hundreds of randomly-chosen operations (mutations, masked
eWise, select, apply, assign, extract, transpose, mxm, accumulation)
to both, and compares after every step.  Catches interaction bugs that
single-operation batteries structurally cannot (state carried between
operations, nonblocking sequence interleavings, mask/accum chains).
"""

import numpy as np
import pytest

from repro.core import binaryop as B
from repro.core import semiring as S
from repro.core import types as T
from repro.core.context import Context, Mode
from repro.core.descriptor import Descriptor
from repro.core.indexunaryop import OFFDIAG, TRIL, TRIU, VALUEGT
from repro.core.matrix import Matrix
from repro.ops.apply import apply
from repro.ops.assign import assign
from repro.ops.ewise import ewise_add, ewise_mult
from repro.ops.extract import extract
from repro.ops.mxm import mxm
from repro.ops.select import select
from repro.ops.transpose import transpose

from .helpers import mat_to_dict
from .reference import (
    ref_ewise_add,
    ref_ewise_mult,
    ref_mxm,
    ref_select,
    ref_transpose,
    ref_write_back,
)

N = 5


class ChaosDriver:
    def __init__(self, seed: int, mode: Mode):
        self.rng = np.random.default_rng(seed)
        self.ctx = Context.new(mode, None, None)
        self.m = Matrix.new(T.FP64, N, N, self.ctx)
        self.model: dict = {}
        self.ops = [
            self.op_set, self.op_remove, self.op_ewise_add,
            self.op_ewise_mult, self.op_select, self.op_apply_bind,
            self.op_assign_scalar, self.op_transpose, self.op_mxm,
            self.op_extract_self, self.op_clear,
        ]

    # -- random ingredients ---------------------------------------------------

    def _coord(self):
        return int(self.rng.integers(N)), int(self.rng.integers(N))

    def _random_operand(self):
        d = {}
        for i in range(N):
            for j in range(N):
                if self.rng.random() < 0.3:
                    d[(i, j)] = float(self.rng.integers(1, 6))
        other = Matrix.new(T.FP64, N, N, self.ctx)
        if d:
            rows, cols = zip(*d.keys())
            other.build(list(rows), list(cols), list(d.values()))
        return other, d

    def _random_mask(self):
        if self.rng.random() < 0.4:
            return None, None
        d = {}
        for i in range(N):
            for j in range(N):
                if self.rng.random() < 0.4:
                    d[(i, j)] = bool(self.rng.random() < 0.7)
        mask = Matrix.new(T.BOOL, N, N, self.ctx)
        if d:
            rows, cols = zip(*d.keys())
            mask.build(list(rows), list(cols), list(d.values()))
        return mask, d

    def _random_desc(self):
        kw = {}
        if self.rng.random() < 0.3:
            kw["replace"] = True
        if self.rng.random() < 0.3:
            kw["structure"] = True
        if self.rng.random() < 0.2:
            kw["comp"] = True
        desc = Descriptor(**kw) if kw else None
        return desc, kw

    def _accum(self):
        return (B.PLUS[T.FP64], lambda x, y: x + y) \
            if self.rng.random() < 0.4 else (None, None)

    def _write_back(self, t_dict, mask_d, accum_fn, kw):
        return ref_write_back(
            self.model, t_dict, mask_d, accum_fn,
            complement=kw.get("comp", False),
            structure=kw.get("structure", False),
            replace=kw.get("replace", False),
        )

    # -- operations (each mutates both sides) -----------------------------------

    def op_set(self):
        i, j = self._coord()
        v = float(self.rng.integers(1, 9))
        self.m.set_element(v, i, j)
        self.model[(i, j)] = v

    def op_remove(self):
        i, j = self._coord()
        self.m.remove_element(i, j)
        self.model.pop((i, j), None)

    def op_clear(self):
        self.m.clear()
        self.model = {}

    def op_ewise_add(self):
        other, d = self._random_operand()
        mask, mask_d = self._random_mask()
        desc, kw = self._random_desc()
        accum, accum_fn = self._accum()
        ewise_add(self.m, mask, accum, B.PLUS[T.FP64], self.m, other,
                  desc=desc)
        t = ref_ewise_add(self.model, d, lambda x, y: x + y)
        self.model = self._write_back(t, mask_d, accum_fn, kw)

    def op_ewise_mult(self):
        other, d = self._random_operand()
        ewise_mult(self.m, None, None, B.TIMES[T.FP64], self.m, other)
        self.model = ref_ewise_mult(self.model, d, lambda x, y: x * y)

    def op_select(self):
        op, pred, s = {
            0: (TRIL, lambda v, i, j, sc: j <= i + sc, 0),
            1: (TRIU, lambda v, i, j, sc: j >= i + sc, 1),
            2: (OFFDIAG, lambda v, i, j, sc: j != i + sc, 0),
            3: (VALUEGT[T.FP64], lambda v, i, j, sc: v > sc, 2.0),
        }[int(self.rng.integers(4))]
        select(self.m, None, None, op, self.m, s)
        self.model = ref_select(self.model, pred, s, is_matrix=True)

    def op_apply_bind(self):
        c = float(self.rng.integers(1, 4))
        apply(self.m, None, None, B.PLUS[T.FP64], self.m, c)
        self.model = {k: v + c for k, v in self.model.items()}

    def op_assign_scalar(self):
        rows = sorted(self.rng.choice(N, size=2, replace=False).tolist())
        cols = sorted(self.rng.choice(N, size=2, replace=False).tolist())
        v = float(self.rng.integers(1, 9))
        assign(self.m, None, None, v, rows, cols)
        for key in [(i, j) for i in rows for j in cols]:
            self.model.pop(key, None)
        for i in rows:
            for j in cols:
                self.model[(i, j)] = v

    def op_transpose(self):
        out = Matrix.new(T.FP64, N, N, self.ctx)
        transpose(out, None, None, self.m)
        self.m = out
        self.model = ref_transpose(self.model)

    def op_mxm(self):
        other, d = self._random_operand()
        mask, mask_d = self._random_mask()
        desc, kw = self._random_desc()
        mxm(self.m, mask, None, S.PLUS_TIMES_SEMIRING[T.FP64],
            self.m, other, desc=desc)
        t = ref_mxm(self.model, d, lambda x, y: x + y,
                    lambda x, y: x * y, 0.0)
        accum_fn = None
        self.model = self._write_back(t, mask_d, accum_fn, kw)

    def op_extract_self(self):
        idx = sorted(self.rng.choice(N, size=N, replace=False).tolist())
        out = Matrix.new(T.FP64, N, N, self.ctx)
        extract(out, None, None, self.m, idx, idx)
        self.m = out
        self.model = {
            (oi, oj): self.model[(i, j)]
            for oi, i in enumerate(idx)
            for oj, j in enumerate(idx)
            if (i, j) in self.model
        }

    # -- the loop --------------------------------------------------------------

    def run(self, steps: int) -> None:
        for step in range(steps):
            op = self.ops[int(self.rng.integers(len(self.ops)))]
            op()
            got = mat_to_dict(self.m)
            want = {k: pytest.approx(v) for k, v in self.model.items()}
            assert got == want, (
                f"diverged after step {step} ({op.__name__}): "
                f"got {got}, want {self.model}"
            )


@pytest.mark.parametrize("seed", [11, 23, 37, 59, 101],
                         ids=lambda s: f"seed{s}")
@pytest.mark.parametrize("mode", [Mode.BLOCKING, Mode.NONBLOCKING],
                         ids=["blocking", "nonblocking"])
def test_chaos_sequences(seed, mode):
    ChaosDriver(seed, mode).run(steps=120)


def test_chaos_long_nonblocking_run():
    """One long soak in the mode with the most machinery."""
    ChaosDriver(7, Mode.NONBLOCKING).run(steps=400)


# ---------------------------------------------------------------------------
# Fault-schedule chaos harness (§V resilience invariants)
# ---------------------------------------------------------------------------
#
# Random op programs under random fault schedules, checked against the
# fault-free blocking run of the same program.  The §V invariant:
# every run either produces *exactly* the fault-free result (faults
# absorbed by retry / fallback) or raises the correct deferred
# ExecutionError with ``error(obj)`` populated and the object left at a
# previously-materialized state.

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core.context import WaitMode
from repro.core.errors import (
    ExecutionError,
    InsufficientSpaceError,
    OutOfMemoryError,
)
from repro.core.sequence import wait
from repro.engine.stats import STATS
from repro.faults import PLANE, FaultSpec, configure_from_env, suspended
from repro.validate import check_object


def _plane_reset():
    """Drop the test's schedule; re-arm ambient env chaos if CI set it."""
    PLANE.disable()
    configure_from_env()

_INIT = {(0, 1): 2.0, (1, 2): 3.0, (2, 0): 4.0, (3, 3): 1.0, (4, 2): 2.0}
_N_OPS = 6


def _fresh_chaos_matrix(ctx):
    m = Matrix.new(T.FP64, N, N, ctx)
    rows, cols = zip(*_INIT.keys())
    m.build(list(rows), list(cols), list(_INIT.values()))
    wait(m, WaitMode.MATERIALIZE)
    return m


def _chaos_operand(ctx, prng):
    d = {(i, j): float(prng.integers(1, 5))
         for i in range(N) for j in range(N) if prng.random() < 0.35}
    other = Matrix.new(T.FP64, N, N, ctx)
    if d:
        rows, cols = zip(*d.keys())
        other.build(list(rows), list(cols), list(d.values()))
    wait(other, WaitMode.MATERIALIZE)
    return other


def _fault_apply_op(m, ctx, code, prng):
    """Apply program op *code* in place on *m*.

    Operand construction is always fault-free (``suspended``): the
    schedules target the program's own kernels, not scaffolding.
    """
    if code in (0, 1, 2):
        with suspended():
            other = _chaos_operand(ctx, prng)
    if code == 0:
        mxm(m, None, None, S.PLUS_TIMES_SEMIRING[T.FP64], m, other)
    elif code == 1:
        ewise_add(m, None, None, B.PLUS[T.FP64], m, other)
    elif code == 2:
        ewise_mult(m, None, None, B.TIMES[T.FP64], m, other)
    elif code == 3:
        select(m, None, None, TRIU, m, int(prng.integers(-1, 2)))
    elif code == 4:
        apply(m, None, None, B.PLUS[T.FP64], m, float(prng.integers(1, 4)))
    else:
        rows = sorted(prng.choice(N, size=2, replace=False).tolist())
        cols = sorted(prng.choice(N, size=2, replace=False).tolist())
        assign(m, None, None, float(prng.integers(1, 9)), rows, cols)


def _reference_states(program):
    """Fault-free blocking run; state snapshot after every step."""
    with suspended():
        ctx = Context.new(Mode.BLOCKING, None, None)
        m = _fresh_chaos_matrix(ctx)
        states = [mat_to_dict(m)]
        for code, pseed in program:
            _fault_apply_op(m, ctx, code, np.random.default_rng(pseed))
            states.append(mat_to_dict(m))
    return states


_PROGRAMS = st.lists(
    st.tuples(st.integers(0, _N_OPS - 1), st.integers(0, 2 ** 16)),
    min_size=2, max_size=6,
)

_CHAOS_SETTINGS = dict(
    deadline=None,
    derandomize=True,  # CI must not explore fresh schedules per run
    suppress_health_check=[
        HealthCheck.function_scoped_fixture,
        HealthCheck.too_slow,
    ],
)


@settings(max_examples=120, **_CHAOS_SETTINGS)
@given(
    program=_PROGRAMS,
    seed=st.integers(0, 2 ** 16),
    rate=st.sampled_from([0.05, 0.15, 0.4, 1.0]),
    mode=st.sampled_from([Mode.BLOCKING, Mode.NONBLOCKING]),
)
def test_chaos_fault_schedule_stepwise(program, seed, rate, mode):
    """Persistent faults, materializing after every step: each step
    either matches the fault-free reference or fails cleanly with the
    object at the previous step's state."""
    states = _reference_states(program)
    ctx = Context.new(mode, None, None)
    with suspended():
        m = _fresh_chaos_matrix(ctx)
    PLANE.configure(seed, [
        FaultSpec(site="kernel.*", rate=rate, error=OutOfMemoryError),
    ])
    try:
        for k, (code, pseed) in enumerate(program, start=1):
            try:
                _fault_apply_op(m, ctx, code, np.random.default_rng(pseed))
                wait(m, WaitMode.MATERIALIZE)
            except ExecutionError as exc:
                PLANE.disable()
                assert getattr(exc, "injected", False)
                assert mat_to_dict(m) == states[k - 1], (
                    f"failed step {k} did not preserve pre-op state"
                )
                assert m.error() != ""
                check_object(m)
                return
            assert mat_to_dict(m) == states[k], (
                f"survived step {k} but diverged from fault-free run"
            )
    finally:
        _plane_reset()


@settings(max_examples=60, **_CHAOS_SETTINGS)
@given(
    program=_PROGRAMS,
    seed=st.integers(0, 2 ** 16),
    rate=st.sampled_from([0.1, 0.3, 1.0]),
)
def test_chaos_fault_schedule_deferred(program, seed, rate):
    """Persistent faults with one forcing call at the end of the whole
    nonblocking chain: either the exact fault-free result, or a deferred
    error with the object at *some* previously-materialized program
    state (a prefix of the fault-free run)."""
    states = _reference_states(program)
    ctx = Context.new(Mode.NONBLOCKING, None, None)
    with suspended():
        m = _fresh_chaos_matrix(ctx)
    PLANE.configure(seed, [
        FaultSpec(site="kernel.*", rate=rate, error=InsufficientSpaceError),
    ])
    try:
        for code, pseed in program:
            _fault_apply_op(m, ctx, code, np.random.default_rng(pseed))
        try:
            wait(m)
        except ExecutionError:
            PLANE.disable()
            assert m.error() != ""
            assert mat_to_dict(m) in states, (
                "post-failure state is not any materialized program state"
            )
            check_object(m)
            return
        PLANE.disable()
        assert mat_to_dict(m) == states[-1]
    finally:
        _plane_reset()


@settings(max_examples=40, **_CHAOS_SETTINGS)
@given(
    program=_PROGRAMS,
    seed=st.integers(0, 2 ** 16),
    max_hits=st.integers(1, 2),
    mode=st.sampled_from([Mode.BLOCKING, Mode.NONBLOCKING]),
)
def test_chaos_transient_recovery(program, seed, max_hits, mode):
    """Transient faults within the retry budget are invisible: the run
    must always equal the fault-free reference, and any injection must
    show up as a recovery in the counters."""
    states = _reference_states(program)
    ctx = Context.new(mode, None, None)
    with suspended():
        m = _fresh_chaos_matrix(ctx)
    before = STATS.snapshot()
    PLANE.configure(seed, [
        FaultSpec(site="kernel.*", rate=1.0, transient=True,
                  max_hits=max_hits),
    ])
    try:
        for k, (code, pseed) in enumerate(program, start=1):
            _fault_apply_op(m, ctx, code, np.random.default_rng(pseed))
            wait(m, WaitMode.MATERIALIZE)
            assert mat_to_dict(m) == states[k]
    finally:
        _plane_reset()
    after = STATS.snapshot()
    injected = after["faults_injected"] - before["faults_injected"]
    assert injected >= 1  # rate=1.0: the very first kernel visit faults
    assert after["retries_recovered"] > before["retries_recovered"]
    assert m.error() == ""

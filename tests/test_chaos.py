"""Chaos testing: long random operation sequences vs the dict model.

A driver keeps a GraphBLAS matrix and a dictionary model side by side,
applies hundreds of randomly-chosen operations (mutations, masked
eWise, select, apply, assign, extract, transpose, mxm, accumulation)
to both, and compares after every step.  Catches interaction bugs that
single-operation batteries structurally cannot (state carried between
operations, nonblocking sequence interleavings, mask/accum chains).
"""

import numpy as np
import pytest

from repro.core import binaryop as B
from repro.core import semiring as S
from repro.core import types as T
from repro.core.context import Context, Mode
from repro.core.descriptor import Descriptor
from repro.core.indexunaryop import OFFDIAG, TRIL, TRIU, VALUEGT
from repro.core.matrix import Matrix
from repro.ops.apply import apply
from repro.ops.assign import assign
from repro.ops.ewise import ewise_add, ewise_mult
from repro.ops.extract import extract
from repro.ops.mxm import mxm
from repro.ops.select import select
from repro.ops.transpose import transpose

from .helpers import mat_to_dict
from .reference import (
    ref_ewise_add,
    ref_ewise_mult,
    ref_mxm,
    ref_select,
    ref_transpose,
    ref_write_back,
)

N = 5


class ChaosDriver:
    def __init__(self, seed: int, mode: Mode):
        self.rng = np.random.default_rng(seed)
        self.ctx = Context.new(mode, None, None)
        self.m = Matrix.new(T.FP64, N, N, self.ctx)
        self.model: dict = {}
        self.ops = [
            self.op_set, self.op_remove, self.op_ewise_add,
            self.op_ewise_mult, self.op_select, self.op_apply_bind,
            self.op_assign_scalar, self.op_transpose, self.op_mxm,
            self.op_extract_self, self.op_clear,
        ]

    # -- random ingredients ---------------------------------------------------

    def _coord(self):
        return int(self.rng.integers(N)), int(self.rng.integers(N))

    def _random_operand(self):
        d = {}
        for i in range(N):
            for j in range(N):
                if self.rng.random() < 0.3:
                    d[(i, j)] = float(self.rng.integers(1, 6))
        other = Matrix.new(T.FP64, N, N, self.ctx)
        if d:
            rows, cols = zip(*d.keys())
            other.build(list(rows), list(cols), list(d.values()))
        return other, d

    def _random_mask(self):
        if self.rng.random() < 0.4:
            return None, None
        d = {}
        for i in range(N):
            for j in range(N):
                if self.rng.random() < 0.4:
                    d[(i, j)] = bool(self.rng.random() < 0.7)
        mask = Matrix.new(T.BOOL, N, N, self.ctx)
        if d:
            rows, cols = zip(*d.keys())
            mask.build(list(rows), list(cols), list(d.values()))
        return mask, d

    def _random_desc(self):
        kw = {}
        if self.rng.random() < 0.3:
            kw["replace"] = True
        if self.rng.random() < 0.3:
            kw["structure"] = True
        if self.rng.random() < 0.2:
            kw["comp"] = True
        desc = Descriptor(**kw) if kw else None
        return desc, kw

    def _accum(self):
        return (B.PLUS[T.FP64], lambda x, y: x + y) \
            if self.rng.random() < 0.4 else (None, None)

    def _write_back(self, t_dict, mask_d, accum_fn, kw):
        return ref_write_back(
            self.model, t_dict, mask_d, accum_fn,
            complement=kw.get("comp", False),
            structure=kw.get("structure", False),
            replace=kw.get("replace", False),
        )

    # -- operations (each mutates both sides) -----------------------------------

    def op_set(self):
        i, j = self._coord()
        v = float(self.rng.integers(1, 9))
        self.m.set_element(v, i, j)
        self.model[(i, j)] = v

    def op_remove(self):
        i, j = self._coord()
        self.m.remove_element(i, j)
        self.model.pop((i, j), None)

    def op_clear(self):
        self.m.clear()
        self.model = {}

    def op_ewise_add(self):
        other, d = self._random_operand()
        mask, mask_d = self._random_mask()
        desc, kw = self._random_desc()
        accum, accum_fn = self._accum()
        ewise_add(self.m, mask, accum, B.PLUS[T.FP64], self.m, other,
                  desc=desc)
        t = ref_ewise_add(self.model, d, lambda x, y: x + y)
        self.model = self._write_back(t, mask_d, accum_fn, kw)

    def op_ewise_mult(self):
        other, d = self._random_operand()
        ewise_mult(self.m, None, None, B.TIMES[T.FP64], self.m, other)
        self.model = ref_ewise_mult(self.model, d, lambda x, y: x * y)

    def op_select(self):
        op, pred, s = {
            0: (TRIL, lambda v, i, j, sc: j <= i + sc, 0),
            1: (TRIU, lambda v, i, j, sc: j >= i + sc, 1),
            2: (OFFDIAG, lambda v, i, j, sc: j != i + sc, 0),
            3: (VALUEGT[T.FP64], lambda v, i, j, sc: v > sc, 2.0),
        }[int(self.rng.integers(4))]
        select(self.m, None, None, op, self.m, s)
        self.model = ref_select(self.model, pred, s, is_matrix=True)

    def op_apply_bind(self):
        c = float(self.rng.integers(1, 4))
        apply(self.m, None, None, B.PLUS[T.FP64], self.m, c)
        self.model = {k: v + c for k, v in self.model.items()}

    def op_assign_scalar(self):
        rows = sorted(self.rng.choice(N, size=2, replace=False).tolist())
        cols = sorted(self.rng.choice(N, size=2, replace=False).tolist())
        v = float(self.rng.integers(1, 9))
        assign(self.m, None, None, v, rows, cols)
        for key in [(i, j) for i in rows for j in cols]:
            self.model.pop(key, None)
        for i in rows:
            for j in cols:
                self.model[(i, j)] = v

    def op_transpose(self):
        out = Matrix.new(T.FP64, N, N, self.ctx)
        transpose(out, None, None, self.m)
        self.m = out
        self.model = ref_transpose(self.model)

    def op_mxm(self):
        other, d = self._random_operand()
        mask, mask_d = self._random_mask()
        desc, kw = self._random_desc()
        mxm(self.m, mask, None, S.PLUS_TIMES_SEMIRING[T.FP64],
            self.m, other, desc=desc)
        t = ref_mxm(self.model, d, lambda x, y: x + y,
                    lambda x, y: x * y, 0.0)
        accum_fn = None
        self.model = self._write_back(t, mask_d, accum_fn, kw)

    def op_extract_self(self):
        idx = sorted(self.rng.choice(N, size=N, replace=False).tolist())
        out = Matrix.new(T.FP64, N, N, self.ctx)
        extract(out, None, None, self.m, idx, idx)
        self.m = out
        self.model = {
            (oi, oj): self.model[(i, j)]
            for oi, i in enumerate(idx)
            for oj, j in enumerate(idx)
            if (i, j) in self.model
        }

    # -- the loop --------------------------------------------------------------

    def run(self, steps: int) -> None:
        for step in range(steps):
            op = self.ops[int(self.rng.integers(len(self.ops)))]
            op()
            got = mat_to_dict(self.m)
            want = {k: pytest.approx(v) for k, v in self.model.items()}
            assert got == want, (
                f"diverged after step {step} ({op.__name__}): "
                f"got {got}, want {self.model}"
            )


@pytest.mark.parametrize("seed", [11, 23, 37, 59, 101],
                         ids=lambda s: f"seed{s}")
@pytest.mark.parametrize("mode", [Mode.BLOCKING, Mode.NONBLOCKING],
                         ids=["blocking", "nonblocking"])
def test_chaos_sequences(seed, mode):
    ChaosDriver(seed, mode).run(steps=120)


def test_chaos_long_nonblocking_run():
    """One long soak in the mode with the most machinery."""
    ChaosDriver(7, Mode.NONBLOCKING).run(steps=400)

"""Serialize/deserialize battery (§VII-B): opacity, protocol, corruption."""

import pytest

from repro.core import types as T
from repro.core.errors import InsufficientSpaceError, InvalidObjectError
from repro.core.matrix import Matrix
from repro.core.vector import Vector
from repro.formats import (
    matrix_deserialize,
    matrix_serialize,
    matrix_serialize_size,
    vector_deserialize,
    vector_serialize,
    vector_serialize_size,
)

from .helpers import mat_from_dict, mat_to_dict, vec_from_dict, vec_to_dict

A_D = {(0, 0): 1.5, (0, 2): -2.0, (1, 1): 3.25, (2, 3): 5.0}
U_D = {0: 1.0, 4: -4.0, 7: 7.5}


class TestMatrixSerialize:
    def test_roundtrip(self):
        A = mat_from_dict(A_D, 3, 4)
        blob = matrix_serialize(A)
        B = matrix_deserialize(blob)
        assert B.shape == (3, 4) and B.type is T.FP64
        assert mat_to_dict(B) == A_D

    def test_serialize_size_matches(self):
        """§VII-B protocol: serializeSize returns the needed byte count."""
        A = mat_from_dict(A_D, 3, 4)
        assert matrix_serialize_size(A) == len(matrix_serialize(A))

    def test_user_buffer_flow(self):
        A = mat_from_dict(A_D, 3, 4)
        size = matrix_serialize_size(A)
        buf = bytearray(size + 10)           # oversize is fine
        blob = matrix_serialize(A, buf)
        assert matrix_deserialize(blob).nvals() == len(A_D)

    def test_undersized_buffer(self):
        A = mat_from_dict(A_D, 3, 4)
        with pytest.raises(InsufficientSpaceError):
            matrix_serialize(A, bytearray(4))

    def test_empty_matrix_roundtrip(self):
        A = Matrix.new(T.INT8, 5, 7)
        B = matrix_deserialize(matrix_serialize(A))
        assert B.shape == (5, 7) and B.nvals() == 0 and B.type is T.INT8

    @pytest.mark.parametrize("t", [T.BOOL, T.INT8, T.UINT64, T.FP32],
                             ids=lambda t: t.name)
    def test_every_builtin_domain(self, t):
        A = Matrix.new(t, 2, 2)
        A.set_element(1, 0, 1)
        B = matrix_deserialize(matrix_serialize(A))
        assert B.type is t and B.extract_element(0, 1) == 1

    def test_corruption_detected(self):
        blob = bytearray(matrix_serialize(mat_from_dict(A_D, 3, 4)))
        blob[len(blob) // 2] ^= 0x5A
        with pytest.raises(InvalidObjectError):
            matrix_deserialize(bytes(blob))

    def test_truncation_detected(self):
        blob = matrix_serialize(mat_from_dict(A_D, 3, 4))
        with pytest.raises(InvalidObjectError):
            matrix_deserialize(blob[:8])

    def test_not_a_blob_detected(self):
        with pytest.raises(InvalidObjectError):
            matrix_deserialize(b"definitely not a graphblas object blob")

    def test_kind_mismatch_detected(self):
        """A vector blob does not deserialize as a matrix."""
        blob = vector_serialize(vec_from_dict(U_D, 8))
        with pytest.raises(InvalidObjectError):
            matrix_deserialize(blob)

    def test_stream_is_opaque_but_stable(self):
        """Same object serializes to the same bytes (deterministic)."""
        A = mat_from_dict(A_D, 3, 4)
        assert matrix_serialize(A) == matrix_serialize(A)


class TestVectorSerialize:
    def test_roundtrip(self):
        u = vec_from_dict(U_D, 8)
        v = vector_deserialize(vector_serialize(u))
        assert v.size == 8 and vec_to_dict(v) == U_D

    def test_size_protocol(self):
        u = vec_from_dict(U_D, 8)
        assert vector_serialize_size(u) == len(vector_serialize(u))

    def test_buffer_too_small(self):
        with pytest.raises(InsufficientSpaceError):
            vector_serialize(vec_from_dict(U_D, 8), bytearray(2))

    def test_empty_vector(self):
        v = vector_deserialize(vector_serialize(Vector.new(T.BOOL, 3)))
        assert v.size == 3 and v.nvals() == 0

    def test_corruption(self):
        blob = bytearray(vector_serialize(vec_from_dict(U_D, 8)))
        blob[-1] ^= 0xFF
        with pytest.raises(InvalidObjectError):
            vector_deserialize(bytes(blob))

    def test_serialize_forces_pending_sequence(self):
        from repro.core.context import Context, Mode
        ctx = Context.new(Mode.NONBLOCKING, None, None)
        v = Vector.new(T.FP64, 4, ctx)
        v.set_element(2.5, 1)
        blob = vector_serialize(v)       # forces
        assert vec_to_dict(vector_deserialize(blob)) == {1: 2.5}

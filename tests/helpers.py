"""Construction/comparison helpers shared by the test modules."""

from __future__ import annotations

import numpy as np

from repro.core import types as T
from repro.core.matrix import Matrix
from repro.core.vector import Vector

__all__ = [
    "mat_from_dict",
    "vec_from_dict",
    "mat_to_dict",
    "vec_to_dict",
    "assert_mat_equal",
    "assert_vec_equal",
    "random_dict_matrix",
    "random_dict_vector",
]


def mat_from_dict(d: dict, nrows: int, ncols: int, t=T.FP64, ctx=None) -> Matrix:
    m = Matrix.new(t, nrows, ncols, ctx)
    if d:
        rows, cols = zip(*d.keys())
        m.build(list(rows), list(cols), list(d.values()), None)
    m.wait()
    return m


def vec_from_dict(d: dict, size: int, t=T.FP64, ctx=None) -> Vector:
    v = Vector.new(t, size, ctx)
    if d:
        v.build(list(d.keys()), list(d.values()), None)
    v.wait()
    return v


def mat_to_dict(m: Matrix) -> dict:
    rows, cols, vals = m.extract_tuples()
    return {(int(i), int(j)): v for i, j, v in zip(rows, cols, vals)}


def vec_to_dict(v: Vector) -> dict:
    idx, vals = v.extract_tuples()
    return {int(i): val for i, val in zip(idx, vals)}


def _values_close(a, b) -> bool:
    try:
        return bool(np.isclose(float(a), float(b), rtol=1e-9, atol=1e-12))
    except (TypeError, ValueError):
        return a == b


def assert_mat_equal(m: Matrix, expected: dict, label: str = "") -> None:
    got = mat_to_dict(m)
    assert set(got) == set(expected), (
        f"{label} pattern mismatch: extra={set(got) - set(expected)}, "
        f"missing={set(expected) - set(got)}"
    )
    for key in expected:
        assert _values_close(got[key], expected[key]), (
            f"{label} value at {key}: got {got[key]!r}, want {expected[key]!r}"
        )


def assert_vec_equal(v: Vector, expected: dict, label: str = "") -> None:
    got = vec_to_dict(v)
    assert set(got) == set(expected), (
        f"{label} pattern mismatch: extra={set(got) - set(expected)}, "
        f"missing={set(expected) - set(got)}"
    )
    for key in expected:
        assert _values_close(got[key], expected[key]), (
            f"{label} value at {key}: got {got[key]!r}, want {expected[key]!r}"
        )


def random_dict_matrix(rng, nrows, ncols, density=0.3, *, low=1, high=9) -> dict:
    d = {}
    for i in range(nrows):
        for j in range(ncols):
            if rng.random() < density:
                d[(i, j)] = float(rng.integers(low, high))
    return d


def random_dict_vector(rng, size, density=0.4, *, low=1, high=9) -> dict:
    return {
        i: float(rng.integers(low, high))
        for i in range(size)
        if rng.random() < density
    }

"""mxm / mxv / vxm battery: semirings, masks, accumulators, transposes."""

import numpy as np
import pytest

from repro.core import binaryop as B
from repro.core import semiring as S
from repro.core import types as T
from repro.core.context import Context, Mode
from repro.core.descriptor import (
    DESC_C,
    DESC_R,
    DESC_RC,
    DESC_S,
    DESC_T0,
    DESC_T0T1,
    DESC_T1,
)
from repro.core.errors import DimensionMismatchError, DomainMismatchError
from repro.core.matrix import Matrix
from repro.core.vector import Vector
from repro.ops.mxm import mxm, mxv, vxm

from .helpers import (
    assert_mat_equal,
    assert_vec_equal,
    mat_from_dict,
    mat_to_dict,
    vec_from_dict,
)
from .reference import ref_mxm, ref_mxv, ref_vxm, ref_write_back

PT = S.PLUS_TIMES_SEMIRING[T.FP64]


@pytest.fixture
def abc():
    rng = np.random.default_rng(5)
    a = {(i, j): float(rng.integers(1, 5))
         for i in range(6) for j in range(7) if rng.random() < 0.4}
    b = {(i, j): float(rng.integers(1, 5))
         for i in range(7) for j in range(5) if rng.random() < 0.4}
    return a, b


class TestMxm:
    def test_plus_times_matches_reference(self, abc):
        a, b = abc
        A = mat_from_dict(a, 6, 7)
        Bm = mat_from_dict(b, 7, 5)
        C = Matrix.new(T.FP64, 6, 5)
        mxm(C, None, None, PT, A, Bm)
        expected = ref_mxm(a, b, lambda x, y: x + y, lambda x, y: x * y, 0.0)
        assert_mat_equal(C, expected, "mxm")

    def test_min_plus_semiring(self, abc):
        a, b = abc
        A = mat_from_dict(a, 6, 7)
        Bm = mat_from_dict(b, 7, 5)
        C = Matrix.new(T.FP64, 6, 5)
        mxm(C, None, None, S.MIN_PLUS_SEMIRING[T.FP64], A, Bm)
        expected = ref_mxm(a, b, min, lambda x, y: x + y, np.inf)
        assert_mat_equal(C, expected, "min_plus")

    def test_bool_lor_land(self):
        a = {(0, 1): True, (1, 2): True}
        b = {(1, 0): True, (2, 2): True}
        A = mat_from_dict(a, 3, 3, T.BOOL)
        Bm = mat_from_dict(b, 3, 3, T.BOOL)
        C = Matrix.new(T.BOOL, 3, 3)
        mxm(C, None, None, S.LOR_LAND_SEMIRING_BOOL, A, Bm)
        assert mat_to_dict(C) == {(0, 0): True, (1, 2): True}

    def test_transpose_inputs(self, abc):
        a, b = abc
        A = mat_from_dict(a, 6, 7)
        Bm = mat_from_dict(b, 7, 5)
        at = {(j, i): v for (i, j), v in a.items()}
        bt = {(j, i): v for (i, j), v in b.items()}
        At = mat_from_dict(at, 7, 6)
        Bt = mat_from_dict(bt, 5, 7)
        expected = ref_mxm(a, b, lambda x, y: x + y, lambda x, y: x * y, 0.0)

        C1 = Matrix.new(T.FP64, 6, 5)
        mxm(C1, None, None, PT, At, Bm, desc=DESC_T0)
        assert_mat_equal(C1, expected, "T0")

        C2 = Matrix.new(T.FP64, 6, 5)
        mxm(C2, None, None, PT, A, Bt, desc=DESC_T1)
        assert_mat_equal(C2, expected, "T1")

        C3 = Matrix.new(T.FP64, 6, 5)
        mxm(C3, None, None, PT, At, Bt, desc=DESC_T0T1)
        assert_mat_equal(C3, expected, "T0T1")

    def test_mask_valued_and_complement(self, abc):
        a, b = abc
        A = mat_from_dict(a, 6, 7)
        Bm = mat_from_dict(b, 7, 5)
        mask = {(i, j): (i + j) % 2 == 0 for i in range(6) for j in range(5)}
        Mk = mat_from_dict(mask, 6, 5, T.BOOL)
        t = ref_mxm(a, b, lambda x, y: x + y, lambda x, y: x * y, 0.0)

        C = Matrix.new(T.FP64, 6, 5)
        mxm(C, Mk, None, PT, A, Bm)
        assert_mat_equal(C, ref_write_back({}, t, mask, None), "mask")

        Cc = Matrix.new(T.FP64, 6, 5)
        mxm(Cc, Mk, None, PT, A, Bm, desc=DESC_C)
        assert_mat_equal(Cc, ref_write_back({}, t, mask, None, complement=True),
                         "comp mask")

    def test_structural_mask_ignores_false_values(self, abc):
        a, b = abc
        A = mat_from_dict(a, 6, 7)
        Bm = mat_from_dict(b, 7, 5)
        mask = {(0, 0): False, (1, 1): True}   # both count structurally
        Mk = mat_from_dict(mask, 6, 5, T.BOOL)
        t = ref_mxm(a, b, lambda x, y: x + y, lambda x, y: x * y, 0.0)
        C = Matrix.new(T.FP64, 6, 5)
        mxm(C, Mk, None, PT, A, Bm, desc=DESC_S)
        assert_mat_equal(C, ref_write_back({}, t, mask, None, structure=True),
                         "structure")

    def test_accumulate_and_replace(self, abc):
        a, b = abc
        A = mat_from_dict(a, 6, 7)
        Bm = mat_from_dict(b, 7, 5)
        c0 = {(0, 0): 100.0, (5, 4): 50.0, (2, 2): 7.0}
        t = ref_mxm(a, b, lambda x, y: x + y, lambda x, y: x * y, 0.0)

        C = mat_from_dict(c0, 6, 5)
        mxm(C, None, B.PLUS[T.FP64], PT, A, Bm)
        assert_mat_equal(C, ref_write_back(c0, t, None, lambda x, y: x + y),
                         "accum")

        mask = {(0, 0): True}
        Mk = mat_from_dict(mask, 6, 5, T.BOOL)
        Cr = mat_from_dict(c0, 6, 5)
        mxm(Cr, Mk, B.PLUS[T.FP64], PT, A, Bm, desc=DESC_R)
        assert_mat_equal(
            Cr,
            ref_write_back(c0, t, mask, lambda x, y: x + y, replace=True),
            "accum+replace",
        )

    def test_replace_with_complement_of_missing_mask_clears(self, abc):
        a, b = abc
        A = mat_from_dict(a, 6, 7)
        Bm = mat_from_dict(b, 7, 5)
        C = mat_from_dict({(0, 0): 1.0}, 6, 5)
        mxm(C, None, None, PT, A, Bm, desc=DESC_RC)
        assert C.nvals() == 0

    def test_dimension_mismatches(self):
        A = Matrix.new(T.FP64, 3, 4)
        Bm = Matrix.new(T.FP64, 5, 2)
        C = Matrix.new(T.FP64, 3, 2)
        with pytest.raises(DimensionMismatchError):
            mxm(C, None, None, PT, A, Bm)
        C2 = Matrix.new(T.FP64, 9, 9)
        B2 = Matrix.new(T.FP64, 4, 2)
        with pytest.raises(DimensionMismatchError):
            mxm(C2, None, None, PT, A, B2)
        Mk = Matrix.new(T.BOOL, 1, 1)
        C3 = Matrix.new(T.FP64, 3, 2)
        with pytest.raises(DimensionMismatchError):
            mxm(C3, Mk, None, PT, A, B2)

    def test_semiring_type_check(self):
        A = Matrix.new(T.FP64, 2, 2)
        C = Matrix.new(T.FP64, 2, 2)
        with pytest.raises(DomainMismatchError):
            mxm(C, None, None, B.PLUS[T.FP64], A, A)  # binop is not a semiring

    def test_output_casts_to_its_domain(self, abc):
        a, b = abc
        A = mat_from_dict(a, 6, 7)
        Bm = mat_from_dict(b, 7, 5)
        C = Matrix.new(T.INT64, 6, 5)     # integer output of FP64 semiring
        mxm(C, None, None, PT, A, Bm)
        expected = {
            k: int(v)
            for k, v in ref_mxm(a, b, lambda x, y: x + y,
                                lambda x, y: x * y, 0.0).items()
        }
        assert_mat_equal(C, expected, "cast")

    def test_parallel_context_matches_serial(self, abc):
        a, b = abc
        ctx = Context.new(Mode.NONBLOCKING, None, {"nthreads": 4})
        A = mat_from_dict(a, 6, 7, ctx=ctx)
        Bm = mat_from_dict(b, 7, 5, ctx=ctx)
        C = Matrix.new(T.FP64, 6, 5, ctx)
        mxm(C, None, None, PT, A, Bm)
        expected = ref_mxm(a, b, lambda x, y: x + y, lambda x, y: x * y, 0.0)
        assert_mat_equal(C, expected, "parallel")

    def test_same_object_as_both_inputs(self):
        a = {(0, 1): 2.0, (1, 0): 3.0}
        A = mat_from_dict(a, 2, 2)
        C = Matrix.new(T.FP64, 2, 2)
        mxm(C, None, None, PT, A, A)
        assert mat_to_dict(C) == {(0, 0): 6.0, (1, 1): 6.0}

    def test_output_can_be_an_input(self):
        """C = C*B with C as input: captured before the write."""
        c0 = {(0, 0): 1.0, (0, 1): 2.0, (1, 1): 3.0}
        C = mat_from_dict(c0, 2, 2)
        Bm = mat_from_dict({(0, 0): 1.0, (1, 1): 1.0}, 2, 2)  # identity
        mxm(C, None, None, PT, C, Bm)
        assert_mat_equal(C, c0, "self-mxm")


class TestMxvVxm:
    def test_mxv_matches_reference(self, abc):
        a, _ = abc
        u = {1: 2.0, 3: 1.0, 6: 4.0}
        A = mat_from_dict(a, 6, 7)
        U = vec_from_dict(u, 7)
        w = Vector.new(T.FP64, 6)
        mxv(w, None, None, PT, A, U)
        assert_vec_equal(w, ref_mxv(a, u, lambda x, y: x + y,
                                    lambda x, y: x * y), "mxv")

    def test_vxm_matches_reference(self, abc):
        a, _ = abc
        u = {0: 1.0, 2: 3.0, 5: 2.0}
        A = mat_from_dict(a, 6, 7)
        U = vec_from_dict(u, 6)
        w = Vector.new(T.FP64, 7)
        vxm(w, None, None, PT, U, A)
        assert_vec_equal(w, ref_vxm(u, a, lambda x, y: x + y,
                                    lambda x, y: x * y), "vxm")

    def test_mxv_transpose_equals_vxm(self, abc):
        a, _ = abc
        u = {0: 1.0, 2: 3.0, 5: 2.0}
        A = mat_from_dict(a, 6, 7)
        U = vec_from_dict(u, 6)
        w1 = Vector.new(T.FP64, 7)
        mxv(w1, None, None, PT, A, U, desc=DESC_T0)
        w2 = Vector.new(T.FP64, 7)
        vxm(w2, None, None, PT, U, A)
        assert_vec_equal(w1, {k: v for k, v in
                              ref_vxm(u, a, lambda x, y: x + y,
                                      lambda x, y: x * y).items()}, "Aᵀu")
        ui1, uv1 = w1.extract_tuples()
        ui2, uv2 = w2.extract_tuples()
        assert ui1.tolist() == ui2.tolist()
        assert np.allclose(uv1, uv2)

    def test_mxv_mask_accum(self, abc):
        a, _ = abc
        u = {1: 2.0, 3: 1.0}
        w0 = {0: 9.0, 5: 9.0}
        mask = {0: True, 1: True, 2: True}
        A = mat_from_dict(a, 6, 7)
        U = vec_from_dict(u, 7)
        W = vec_from_dict(w0, 6)
        Mv = vec_from_dict(mask, 6, T.BOOL)
        mxv(W, Mv, B.PLUS[T.FP64], PT, A, U)
        t = ref_mxv(a, u, lambda x, y: x + y, lambda x, y: x * y)
        assert_vec_equal(W, ref_write_back(w0, t, mask, lambda x, y: x + y),
                         "mxv mask accum")

    def test_mxv_dimension_checks(self):
        A = Matrix.new(T.FP64, 3, 4)
        u = Vector.new(T.FP64, 9)
        w = Vector.new(T.FP64, 3)
        with pytest.raises(DimensionMismatchError):
            mxv(w, None, None, PT, A, u)
        u2 = Vector.new(T.FP64, 4)
        w2 = Vector.new(T.FP64, 5)
        with pytest.raises(DimensionMismatchError):
            mxv(w2, None, None, PT, A, u2)

    def test_vxm_transpose1(self, abc):
        a, _ = abc
        u = {1: 2.0, 3: 1.0, 6: 4.0}
        A = mat_from_dict(a, 6, 7)
        U = vec_from_dict(u, 7)
        w = Vector.new(T.FP64, 6)
        vxm(w, None, None, PT, U, A, desc=DESC_T1)   # u'Aᵀ == Au
        assert_vec_equal(w, ref_mxv(a, u, lambda x, y: x + y,
                                    lambda x, y: x * y), "vxm T1")

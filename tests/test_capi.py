"""The GrB_-prefixed C-spelling surface: names, signatures, figure usage."""


from repro import capi


class TestSpellings:
    def test_core_lifecycle_names(self):
        for name in ("GrB_init", "GrB_finalize", "GrB_wait", "GrB_error",
                     "GrB_getVersion", "GrB_free"):
            assert hasattr(capi, name), name

    def test_mode_constants(self):
        assert int(capi.GrB_NONBLOCKING) == 0
        assert int(capi.GrB_BLOCKING) == 1
        assert int(capi.GrB_COMPLETE) == 0
        assert int(capi.GrB_MATERIALIZE) == 1
        assert capi.GrB_NULL is None
        assert capi.GrB_ALL is None

    def test_fig2_context_surface(self):
        for name in ("GrB_Context_new", "GrB_Context_switch",
                     "GrB_Matrix_new", "GrB_Vector_new"):
            assert hasattr(capi, name), name

    def test_operation_names(self):
        for name in ("GrB_mxm", "GrB_mxv", "GrB_vxm", "GrB_eWiseAdd",
                     "GrB_eWiseMult", "GrB_extract", "GrB_assign",
                     "GrB_Row_assign", "GrB_Col_assign", "GrB_apply",
                     "GrB_select", "GrB_reduce", "GrB_transpose",
                     "GrB_kronecker"):
            assert hasattr(capi, name), name

    def test_table1_scalar_surface(self):
        for name in ("GrB_Scalar_new", "GrB_Scalar_dup", "GrB_Scalar_clear",
                     "GrB_Scalar_nvals", "GrB_Scalar_setElement",
                     "GrB_Scalar_extractElement"):
            assert hasattr(capi, name), name

    def test_data_transfer_surface(self):
        for name in ("GrB_Matrix_import", "GrB_Matrix_export",
                     "GrB_Matrix_exportSize", "GrB_Matrix_exportHint",
                     "GrB_Matrix_serialize", "GrB_Matrix_serializeSize",
                     "GrB_Matrix_deserialize", "GrB_Vector_import",
                     "GrB_Vector_export", "GrB_Vector_serialize"):
            assert hasattr(capi, name), name

    def test_predefined_objects_carry_c_names(self):
        assert capi.GrB_PLUS_INT32.name == "GrB_PLUS_INT32"
        assert capi.GrB_PLUS_TIMES_SEMIRING_FP64.name == \
            "GrB_PLUS_TIMES_SEMIRING_FP64"
        assert capi.GrB_TRIL.name == "GrB_TRIL"
        assert capi.GrB_MIN_MONOID_FP32.name == "GrB_MIN_MONOID_FP32"
        assert capi.GrB_BOOL.name == "GrB_BOOL"

    def test_descriptor_constants(self):
        assert capi.GrB_DESC_RSC.replace
        assert capi.GrB_DESC_RSC.mask_structure
        assert capi.GrB_DESC_RSC.mask_complement
        assert capi.GrB_DESC_T0.transpose0

    def test_op_constructors(self):
        for name in ("GrB_Type_new", "GrB_UnaryOp_new", "GrB_BinaryOp_new",
                     "GrB_IndexUnaryOp_new", "GrB_Monoid_new",
                     "GrB_Semiring_new", "GrB_Descriptor_new"):
            assert hasattr(capi, name), name


class TestUsage:
    def test_paper_style_program(self):
        """A Fig. 1-shaped single-thread program in C spelling."""
        from repro.core.context import finalize, is_initialized
        if is_initialized():
            finalize()
        capi.GrB_init(capi.GrB_NONBLOCKING)
        A = capi.GrB_Matrix_new(capi.GrB_FP64, 3, 3)
        capi.GrB_Matrix_build(A, [0, 1, 2], [1, 2, 0], [1.0, 2.0, 3.0])
        C = capi.GrB_Matrix_new(capi.GrB_FP64, 3, 3)
        capi.GrB_mxm(C, capi.GrB_NULL, capi.GrB_NULL,
                     capi.GrB_PLUS_TIMES_SEMIRING_FP64, A, A)
        capi.GrB_wait(C, capi.GrB_COMPLETE)
        assert capi.GrB_Matrix_nvals(C) == 3
        assert capi.GrB_error(C) == ""
        capi.GrB_free(C)
        capi.GrB_finalize()

    def test_element_and_tuple_helpers(self):
        v = capi.GrB_Vector_new(capi.GrB_INT64, 4)
        capi.GrB_Vector_setElement(v, 9, 2)
        assert capi.GrB_Vector_extractElement(v, 2) == 9
        idx, vals = capi.GrB_Vector_extractTuples(v)
        assert idx.tolist() == [2] and vals.tolist() == [9]
        capi.GrB_Vector_removeElement(v, 2)
        assert capi.GrB_Vector_nvals(v) == 0
        assert capi.GrB_Vector_size(v) == 4

    def test_matrix_shape_helpers(self):
        m = capi.GrB_Matrix_new(capi.GrB_FP32, 3, 5)
        assert capi.GrB_Matrix_nrows(m) == 3
        assert capi.GrB_Matrix_ncols(m) == 5
        capi.GrB_Matrix_resize(m, 2, 2)
        assert capi.GrB_Matrix_nrows(m) == 2

    def test_diag_helper(self):
        v = capi.GrB_Vector_new(capi.GrB_FP64, 2)
        capi.GrB_Vector_setElement(v, 3.0, 1)
        d = capi.GrB_Matrix_diag(v)
        assert capi.GrB_Matrix_extractElement(d, 1, 1) == 3.0


class TestThinAliasCoverage:
    """Every thin GrB_ alias does what its spec name says (one call each)."""

    def test_dup_aliases(self):
        m = capi.GrB_Matrix_new(capi.GrB_FP64, 2, 2)
        capi.GrB_Matrix_setElement(m, 1.5, 0, 0)
        d = capi.GrB_Matrix_dup(m)
        assert capi.GrB_Matrix_extractElement(d, 0, 0) == 1.5
        v = capi.GrB_Vector_new(capi.GrB_FP64, 3)
        capi.GrB_Vector_setElement(v, 2.5, 1)
        dv = capi.GrB_Vector_dup(v)
        assert capi.GrB_Vector_extractElement(dv, 1) == 2.5

    def test_vector_build_and_clear(self):
        v = capi.GrB_Vector_new(capi.GrB_INT64, 4)
        capi.GrB_Vector_build(v, [0, 2], [10, 20])
        assert capi.GrB_Vector_nvals(v) == 2
        capi.GrB_Vector_clear(v)
        assert capi.GrB_Vector_nvals(v) == 0
        capi.GrB_Vector_resize(v, 9)
        assert capi.GrB_Vector_size(v) == 9

    def test_matrix_tuples_remove_clear(self):
        m = capi.GrB_Matrix_new(capi.GrB_FP64, 2, 2)
        capi.GrB_Matrix_build(m, [0, 1], [1, 0], [1.0, 2.0])
        rows, cols, vals = capi.GrB_Matrix_extractTuples(m)
        assert rows.tolist() == [0, 1] and vals.tolist() == [1.0, 2.0]
        capi.GrB_Matrix_removeElement(m, 0, 1)
        assert capi.GrB_Matrix_nvals(m) == 1
        capi.GrB_Matrix_clear(m)
        assert capi.GrB_Matrix_nvals(m) == 0

    def test_scalar_is_empty_helper(self):
        s = capi.GrB_Scalar_new(capi.GrB_FP64)
        assert s.is_empty()
        capi.GrB_Scalar_setElement(s, 1.0)
        assert not s.is_empty()

    def test_context_introspection_helpers(self):
        from repro.core.context import Context, Mode
        ctx = Context.new(Mode.NONBLOCKING, None, {"nthreads": 3})
        ctx.check_valid()                  # no raise while alive
        assert ctx.exec_spec() == {"nthreads": 3}
        child = Context.new(Mode.NONBLOCKING, ctx, None)
        assert child.effective("nthreads", 1) == 3
        assert child.effective("bogus", "dflt") == "dflt"

"""Property-based tests (hypothesis): the sparse implementation against
the dense reference interpreter, plus structural invariants.
"""

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core import binaryop as B
from repro.core import indexunaryop as IU
from repro.core import monoid as M
from repro.core import semiring as S
from repro.core import types as T
from repro.core.matrix import Matrix
from repro.core.vector import Vector
from repro.formats import (
    Format,
    matrix_deserialize,
    matrix_export,
    matrix_import,
    matrix_serialize,
)
from repro.ops.apply import apply
from repro.ops.ewise import ewise_add, ewise_mult
from repro.ops.extract import extract
from repro.ops.mxm import mxm, mxv
from repro.ops.reduce import reduce_scalar
from repro.ops.select import select
from repro.ops.transpose import transpose

from .helpers import (
    assert_mat_equal,
    assert_vec_equal,
    mat_from_dict,
    mat_to_dict,
    vec_from_dict,
)
from .reference import (
    ref_ewise_add,
    ref_ewise_mult,
    ref_mxm,
    ref_mxv,
    ref_select,
    ref_transpose,
    ref_write_back,
)

SETTINGS = settings(
    max_examples=40,
    deadline=None,
    suppress_health_check=[HealthCheck.function_scoped_fixture],
)


def dict_matrix(nrows=5, ncols=5, values=st.integers(1, 9)):
    keys = st.tuples(st.integers(0, nrows - 1), st.integers(0, ncols - 1))
    return st.dictionaries(keys, values.map(float), max_size=nrows * ncols)


def dict_vector(size=8, values=st.integers(1, 9)):
    return st.dictionaries(st.integers(0, size - 1), values.map(float),
                           max_size=size)


class TestMxmProperties:
    @SETTINGS
    @given(a=dict_matrix(4, 5), b=dict_matrix(5, 3))
    def test_plus_times_vs_reference(self, a, b):
        C = Matrix.new(T.FP64, 4, 3)
        mxm(C, None, None, S.PLUS_TIMES_SEMIRING[T.FP64],
            mat_from_dict(a, 4, 5), mat_from_dict(b, 5, 3))
        expected = ref_mxm(a, b, lambda x, y: x + y, lambda x, y: x * y, 0.0)
        assert_mat_equal(C, expected)

    @SETTINGS
    @given(a=dict_matrix(4, 4), b=dict_matrix(4, 4))
    def test_min_plus_vs_reference(self, a, b):
        C = Matrix.new(T.FP64, 4, 4)
        mxm(C, None, None, S.MIN_PLUS_SEMIRING[T.FP64],
            mat_from_dict(a, 4, 4), mat_from_dict(b, 4, 4))
        expected = ref_mxm(a, b, min, lambda x, y: x + y, None)
        assert_mat_equal(C, expected)

    @SETTINGS
    @given(a=dict_matrix(4, 4), u=dict_vector(4))
    def test_mxv_vs_reference(self, a, u):
        w = Vector.new(T.FP64, 4)
        mxv(w, None, None, S.PLUS_TIMES_SEMIRING[T.FP64],
            mat_from_dict(a, 4, 4), vec_from_dict(u, 4))
        assert_vec_equal(w, ref_mxv(a, u, lambda x, y: x + y,
                                    lambda x, y: x * y))

    @SETTINGS
    @given(a=dict_matrix(4, 4), b=dict_matrix(4, 4), c=dict_matrix(4, 4))
    def test_mxm_associativity(self, a, b, c):
        """(AB)C == A(BC) over integer-valued PLUS_TIMES."""
        A, Bm, Cm = (mat_from_dict(d, 4, 4) for d in (a, b, c))
        sr = S.PLUS_TIMES_SEMIRING[T.FP64]
        AB = Matrix.new(T.FP64, 4, 4)
        mxm(AB, None, None, sr, A, Bm)
        AB_C = Matrix.new(T.FP64, 4, 4)
        mxm(AB_C, None, None, sr, AB, Cm)
        BC = Matrix.new(T.FP64, 4, 4)
        mxm(BC, None, None, sr, Bm, Cm)
        A_BC = Matrix.new(T.FP64, 4, 4)
        mxm(A_BC, None, None, sr, A, BC)
        assert mat_to_dict(AB_C) == mat_to_dict(A_BC)


class TestEwiseProperties:
    @SETTINGS
    @given(a=dict_matrix(), b=dict_matrix())
    def test_add_vs_reference(self, a, b):
        C = Matrix.new(T.FP64, 5, 5)
        ewise_add(C, None, None, B.PLUS[T.FP64],
                  mat_from_dict(a, 5, 5), mat_from_dict(b, 5, 5))
        assert_mat_equal(C, ref_ewise_add(a, b, lambda x, y: x + y))

    @SETTINGS
    @given(a=dict_matrix(), b=dict_matrix())
    def test_mult_vs_reference(self, a, b):
        C = Matrix.new(T.FP64, 5, 5)
        ewise_mult(C, None, None, B.TIMES[T.FP64],
                   mat_from_dict(a, 5, 5), mat_from_dict(b, 5, 5))
        assert_mat_equal(C, ref_ewise_mult(a, b, lambda x, y: x * y))

    @SETTINGS
    @given(a=dict_matrix(), b=dict_matrix())
    def test_add_commutes_mult_commutes(self, a, b):
        C1 = Matrix.new(T.FP64, 5, 5)
        ewise_add(C1, None, None, B.PLUS[T.FP64],
                  mat_from_dict(a, 5, 5), mat_from_dict(b, 5, 5))
        C2 = Matrix.new(T.FP64, 5, 5)
        ewise_add(C2, None, None, B.PLUS[T.FP64],
                  mat_from_dict(b, 5, 5), mat_from_dict(a, 5, 5))
        assert mat_to_dict(C1) == mat_to_dict(C2)

    @SETTINGS
    @given(a=dict_matrix())
    def test_mult_with_self_squares(self, a):
        C = Matrix.new(T.FP64, 5, 5)
        A = mat_from_dict(a, 5, 5)
        ewise_mult(C, None, None, B.TIMES[T.FP64], A, A)
        assert_mat_equal(C, {k: v * v for k, v in a.items()})


class TestMaskWriteBackProperties:
    @SETTINGS
    @given(
        a=dict_matrix(4, 4), b=dict_matrix(4, 4), c=dict_matrix(4, 4),
        mask=st.dictionaries(
            st.tuples(st.integers(0, 3), st.integers(0, 3)),
            st.booleans(), max_size=16,
        ),
        complement=st.booleans(),
        structure=st.booleans(),
        replace=st.booleans(),
        use_accum=st.booleans(),
    )
    def test_full_write_back_rule(self, a, b, c, mask, complement,
                                  structure, replace, use_accum):
        """The crown property: every descriptor/mask/accum combination of
        an eWiseAdd matches the reference write-back rule."""
        from repro.core.descriptor import Descriptor
        kw = {}
        if complement:
            kw["comp"] = True
        if structure:
            kw["structure"] = True
        if replace:
            kw["replace"] = True
        desc = Descriptor(**kw) if kw else None

        C = mat_from_dict(c, 4, 4)
        ewise_add(C, mat_from_dict(mask, 4, 4, T.BOOL) if mask else None,
                  B.PLUS[T.FP64] if use_accum else None,
                  B.PLUS[T.FP64],
                  mat_from_dict(a, 4, 4), mat_from_dict(b, 4, 4),
                  desc=desc)
        t = ref_ewise_add(a, b, lambda x, y: x + y)
        expected = ref_write_back(
            c, t, mask if mask else None,
            (lambda x, y: x + y) if use_accum else None,
            complement=complement, structure=structure, replace=replace,
        )
        assert_mat_equal(C, expected)


class TestSelectApplyProperties:
    @SETTINGS
    @given(a=dict_matrix(5, 5), s=st.integers(-4, 4))
    def test_tril_triu_partition(self, a, s):
        A = mat_from_dict(a, 5, 5)
        lo = Matrix.new(T.FP64, 5, 5)
        select(lo, None, None, IU.TRIL, A, s)
        hi = Matrix.new(T.FP64, 5, 5)
        select(hi, None, None, IU.TRIU, A, s + 1)
        keys = set(mat_to_dict(lo)) | set(mat_to_dict(hi))
        overlap = set(mat_to_dict(lo)) & set(mat_to_dict(hi))
        assert keys == set(a) and not overlap

    @SETTINGS
    @given(a=dict_matrix(5, 5), s=st.floats(0, 10))
    def test_value_select_vs_reference(self, a, s):
        A = mat_from_dict(a, 5, 5)
        out = Matrix.new(T.FP64, 5, 5)
        select(out, None, None, IU.VALUEGT[T.FP64], A, s)
        expected = ref_select(a, lambda v, i, j, sc: v > sc, s, is_matrix=True)
        assert_mat_equal(out, expected)

    @SETTINGS
    @given(a=dict_matrix(5, 5))
    def test_select_is_subset_preserving_values(self, a):
        A = mat_from_dict(a, 5, 5)
        out = Matrix.new(T.FP64, 5, 5)
        select(out, None, None, IU.OFFDIAG, A, 0)
        got = mat_to_dict(out)
        assert set(got) <= set(a)
        for k, v in got.items():
            assert v == a[k]

    @SETTINGS
    @given(a=dict_matrix(5, 5), s=st.integers(0, 5))
    def test_apply_rowindex_formula(self, a, s):
        A = mat_from_dict(a, 5, 5)
        out = Matrix.new(T.INT64, 5, 5)
        apply(out, None, None, IU.ROWINDEX[T.INT64], A, s)
        assert mat_to_dict(out) == {k: k[0] + s for k in a}

    @SETTINGS
    @given(a=dict_matrix(5, 5))
    def test_apply_preserves_structure(self, a):
        from repro.core.unaryop import AINV
        A = mat_from_dict(a, 5, 5)
        out = Matrix.new(T.FP64, 5, 5)
        apply(out, None, None, AINV[T.FP64], A)
        assert set(mat_to_dict(out)) == set(a)


class TestStructuralProperties:
    @SETTINGS
    @given(a=dict_matrix(5, 4))
    def test_transpose_involution(self, a):
        A = mat_from_dict(a, 5, 4)
        At = Matrix.new(T.FP64, 4, 5)
        transpose(At, None, None, A)
        Att = Matrix.new(T.FP64, 5, 4)
        transpose(Att, None, None, At)
        assert mat_to_dict(Att) == mat_to_dict(A)
        assert mat_to_dict(At) == ref_transpose(a)

    @SETTINGS
    @given(a=dict_matrix(5, 5))
    def test_reduce_equals_sum_of_values(self, a):
        A = mat_from_dict(a, 5, 5)
        got = reduce_scalar(M.PLUS_MONOID[T.FP64], A)
        assert got == pytest.approx(sum(a.values()))

    @SETTINGS
    @given(a=dict_matrix(5, 5))
    def test_csr_invariants_always_hold(self, a):
        A = mat_from_dict(a, 5, 5)
        A._capture().check()

    @SETTINGS
    @given(a=dict_matrix(5, 5))
    def test_serialize_roundtrip(self, a):
        A = mat_from_dict(a, 5, 5)
        back = matrix_deserialize(matrix_serialize(A))
        assert mat_to_dict(back) == a

    @SETTINGS
    @given(a=dict_matrix(4, 6), fmt=st.sampled_from([
        Format.CSR_MATRIX, Format.CSC_MATRIX, Format.COO_MATRIX,
        Format.DENSE_ROW_MATRIX, Format.DENSE_COL_MATRIX,
    ]))
    def test_import_export_roundtrip_all_formats(self, a, fmt):
        A = mat_from_dict(a, 4, 6)
        ip, ind, vals = matrix_export(A, fmt)
        back = matrix_import(T.FP64, 4, 6, ip, ind, vals, fmt)
        assert np.allclose(back.to_dense(), A.to_dense())

    @SETTINGS
    @given(
        u=dict_vector(8),
        indices=st.lists(st.integers(0, 7), min_size=1, max_size=10),
    )
    def test_extract_then_gather_matches_dense(self, u, indices):
        U = vec_from_dict(u, 8)
        w = Vector.new(T.FP64, len(indices))
        extract(w, None, None, U, indices)
        dense = np.zeros(8)
        stored = np.zeros(8, dtype=bool)
        for k, v in u.items():
            dense[k] = v
            stored[k] = True
        got = w.to_dict()
        for out_pos, src in enumerate(indices):
            if stored[src]:
                assert got[out_pos] == dense[src]
            else:
                assert out_pos not in got


class TestPushdownEquivalence:
    """The kernel mask push-down must be invisible: identical results
    with the optimization on and off, for every mask flavour."""

    @SETTINGS
    @given(
        a=dict_matrix(4, 4), b=dict_matrix(4, 4),
        mask=st.dictionaries(
            st.tuples(st.integers(0, 3), st.integers(0, 3)),
            st.booleans(), max_size=16,
        ),
        complement=st.booleans(),
        structure=st.booleans(),
        replace=st.booleans(),
    )
    def test_masked_mxm_pushdown_invisible(self, a, b, mask, complement,
                                           structure, replace):
        from repro.core.descriptor import Descriptor
        from repro.internals import config
        kw = {}
        if complement:
            kw["comp"] = True
        if structure:
            kw["structure"] = True
        if replace:
            kw["replace"] = True
        desc = Descriptor(**kw) if kw else None
        Mk = mat_from_dict(mask, 4, 4, T.BOOL) if mask else None
        outs = []
        for opt in (True, False):
            with config.option("MASK_PUSHDOWN", opt):
                C = Matrix.new(T.FP64, 4, 4)
                mxm(C, Mk, None, S.PLUS_TIMES_SEMIRING[T.FP64],
                    mat_from_dict(a, 4, 4), mat_from_dict(b, 4, 4),
                    desc=desc)
                outs.append(mat_to_dict(C))
        assert outs[0] == outs[1]

    @SETTINGS
    @given(
        a=dict_matrix(4, 4), u=dict_vector(4),
        mask=st.dictionaries(st.integers(0, 3), st.booleans(), max_size=4),
        complement=st.booleans(),
        structure=st.booleans(),
    )
    def test_masked_mxv_pushdown_invisible(self, a, u, mask, complement,
                                           structure):
        from repro.core.descriptor import Descriptor
        from repro.internals import config
        kw = {}
        if complement:
            kw["comp"] = True
        if structure:
            kw["structure"] = True
        desc = Descriptor(**kw) if kw else None
        Mv = vec_from_dict(mask, 4, T.BOOL) if mask else None
        outs = []
        for opt in (True, False):
            with config.option("MASK_PUSHDOWN", opt):
                w = Vector.new(T.FP64, 4)
                mxv(w, Mv, None, S.PLUS_TIMES_SEMIRING[T.FP64],
                    mat_from_dict(a, 4, 4), vec_from_dict(u, 4), desc=desc)
                outs.append(w.to_dict())
        assert outs[0] == outs[1]


class TestAssignProperties:
    @SETTINGS
    @given(
        c=dict_matrix(5, 5),
        a=dict_matrix(3, 2),
        data=st.data(),
        use_accum=st.booleans(),
    )
    def test_assign_vs_reference(self, c, a, data, use_accum):
        from repro.ops.assign import assign as _assign
        from .reference import ref_assign
        I = data.draw(st.permutations(range(5)))[:3]
        J = data.draw(st.permutations(range(5)))[:2]
        C = mat_from_dict(c, 5, 5)
        A = mat_from_dict(a, 3, 2)
        _assign(C, None, B.PLUS[T.FP64] if use_accum else None, A,
                list(I), list(J))
        expected = ref_assign(
            c, a, list(I), list(J),
            (lambda x, y: x + y) if use_accum else None, 5, 5,
        )
        assert_mat_equal(C, expected)

    @SETTINGS
    @given(c=dict_matrix(4, 4), a=dict_matrix(4, 4))
    def test_assign_all_all_without_accum_replaces(self, c, a):
        from repro.ops.assign import assign as _assign
        C = mat_from_dict(c, 4, 4)
        _assign(C, None, None, mat_from_dict(a, 4, 4), None, None)
        assert mat_to_dict(C) == a

    @SETTINGS
    @given(
        u=dict_vector(6),
        data=st.data(),
        fill=st.integers(1, 9).map(float),
    )
    def test_vector_scalar_fill_vs_model(self, u, data, fill):
        from repro.ops.assign import assign as _assign
        I = data.draw(st.permutations(range(6)))[:3]
        w = vec_from_dict(u, 6)
        _assign(w, None, None, fill, list(I))
        expected = dict(u)
        for i in I:
            expected[i] = fill
        assert_vec_equal(w, expected)


class TestBuildProperties:
    @SETTINGS
    @given(
        entries=st.lists(
            st.tuples(st.integers(0, 5), st.integers(0, 5),
                      st.integers(1, 9)),
            max_size=30,
        )
    )
    def test_build_plus_dup_equals_dict_sum(self, entries):
        m = Matrix.new(T.INT64, 6, 6)
        if entries:
            rows, cols, vals = zip(*entries)
            m.build(list(rows), list(cols), list(vals), dup=B.PLUS[T.INT64])
        expected = {}
        for i, j, v in entries:
            expected[(i, j)] = expected.get((i, j), 0) + v
        assert m.to_dict() == expected

    @SETTINGS
    @given(
        entries=st.lists(
            st.tuples(st.integers(0, 5), st.integers(0, 5),
                      st.integers(1, 9)),
            max_size=30,
        )
    )
    def test_build_second_dup_is_last_wins(self, entries):
        m = Matrix.new(T.INT64, 6, 6)
        if entries:
            rows, cols, vals = zip(*entries)
            m.build(list(rows), list(cols), list(vals),
                    dup=B.SECOND[T.INT64])
        expected = {}
        for i, j, v in entries:
            expected[(i, j)] = v
        assert m.to_dict() == expected

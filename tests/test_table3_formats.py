"""Experiment T3 conformance: every Table III format imports/exports
faithfully, plus exportSize / exportHint / the three-call protocol."""

import numpy as np
import pytest

from repro.core import types as T
from repro.core.errors import (
    DimensionMismatchError,
    InsufficientSpaceError,
    InvalidValueError,
    NoValue,
)
from repro.formats import (
    Format,
    matrix_export,
    matrix_export_hint,
    matrix_export_size,
    matrix_import,
    vector_export,
    vector_export_hint,
    vector_export_size,
    vector_import,
)

from .helpers import mat_from_dict, mat_to_dict, vec_from_dict, vec_to_dict

A_D = {(0, 0): 1.0, (0, 2): 2.0, (1, 1): 3.0, (2, 0): 4.0, (2, 3): 5.0}
DENSE = np.array([
    [1.0, 0.0, 2.0, 0.0],
    [0.0, 3.0, 0.0, 0.0],
    [4.0, 0.0, 0.0, 5.0],
])


class TestFormatEnum:
    """§IX: GrB_Format values are explicitly specified."""

    def test_explicit_values(self):
        assert Format.CSR_MATRIX == 0
        assert Format.CSC_MATRIX == 1
        assert Format.COO_MATRIX == 2
        assert Format.DENSE_ROW_MATRIX == 3
        assert Format.DENSE_COL_MATRIX == 4
        assert Format.SPARSE_VECTOR == 5
        assert Format.DENSE_VECTOR == 6

    def test_matrix_vector_partition(self):
        from repro.formats import MATRIX_FORMATS, VECTOR_FORMATS
        assert MATRIX_FORMATS | VECTOR_FORMATS == set(Format)
        assert MATRIX_FORMATS & VECTOR_FORMATS == set()


class TestMatrixImport:
    def test_csr_import(self):
        m = matrix_import(
            T.FP64, 3, 4,
            [0, 2, 3, 5], [0, 2, 1, 0, 3], [1.0, 2.0, 3.0, 4.0, 5.0],
            Format.CSR_MATRIX,
        )
        assert mat_to_dict(m) == A_D

    def test_csr_unsorted_rows_allowed(self):
        """Table III: row elements need not be sorted by column index."""
        m = matrix_import(
            T.FP64, 3, 4,
            [0, 2, 3, 5], [2, 0, 1, 3, 0], [2.0, 1.0, 3.0, 5.0, 4.0],
            Format.CSR_MATRIX,
        )
        assert mat_to_dict(m) == A_D

    def test_csc_import(self):
        m = matrix_import(
            T.FP64, 3, 4,
            [0, 2, 3, 4, 5], [0, 2, 1, 0, 2], [1.0, 4.0, 3.0, 2.0, 5.0],
            Format.CSC_MATRIX,
        )
        assert mat_to_dict(m) == A_D

    def test_coo_import_table_iii_slots(self):
        """Table III COO: indptr = column indices, indices = row indices."""
        cols = [0, 2, 1, 0, 3]
        rows = [0, 0, 1, 2, 2]
        m = matrix_import(T.FP64, 3, 4, cols, rows,
                          [1.0, 2.0, 3.0, 4.0, 5.0], Format.COO_MATRIX)
        assert mat_to_dict(m) == A_D

    def test_coo_any_order(self):
        """Table III: COO elements need not be sorted in any order."""
        m = matrix_import(T.FP64, 3, 4,
                          [3, 0, 2, 1, 0],      # cols
                          [2, 2, 0, 1, 0],      # rows
                          [5.0, 4.0, 2.0, 3.0, 1.0], Format.COO_MATRIX)
        assert mat_to_dict(m) == A_D

    def test_dense_row_import(self):
        m = matrix_import(T.FP64, 3, 4, None, None, DENSE.reshape(-1),
                          Format.DENSE_ROW_MATRIX)
        # Dense import stores every position, including zeros.
        assert m.nvals() == 12
        assert np.allclose(m.to_dense(), DENSE)

    def test_dense_col_import(self):
        m = matrix_import(T.FP64, 3, 4, None, None,
                          DENSE.reshape(-1, order="F"),
                          Format.DENSE_COL_MATRIX)
        assert np.allclose(m.to_dense(), DENSE)

    def test_import_validation(self):
        with pytest.raises(DimensionMismatchError):
            matrix_import(T.FP64, 3, 4, [0, 1], [0], [1.0], Format.CSR_MATRIX)
        with pytest.raises(InvalidValueError):
            matrix_import(T.FP64, 3, 4, [0, 1, 1, 1], [0], [1.0, 2.0],
                          Format.CSR_MATRIX)
        with pytest.raises(DimensionMismatchError):
            matrix_import(T.FP64, 3, 4, None, None, [1.0], Format.DENSE_ROW_MATRIX)
        with pytest.raises(InvalidValueError):
            matrix_import(T.FP64, 3, 4, [0], [0], [1.0], Format.SPARSE_VECTOR)

    def test_import_copies_arrays(self):
        vals = np.array([1.0, 2.0, 3.0, 4.0, 5.0])
        m = matrix_import(T.FP64, 3, 4, [0, 2, 3, 5], [0, 2, 1, 0, 3],
                          vals, Format.CSR_MATRIX)
        vals[0] = 99.0
        assert m.extract_element(0, 0) == 1.0


class TestMatrixExport:
    def test_export_size_per_format(self):
        A = mat_from_dict(A_D, 3, 4)
        assert matrix_export_size(A, Format.CSR_MATRIX) == (4, 5, 5)
        assert matrix_export_size(A, Format.CSC_MATRIX) == (5, 5, 5)
        assert matrix_export_size(A, Format.COO_MATRIX) == (5, 5, 5)
        assert matrix_export_size(A, Format.DENSE_ROW_MATRIX) == (0, 0, 12)

    @pytest.mark.parametrize("fmt", [
        Format.CSR_MATRIX, Format.CSC_MATRIX, Format.COO_MATRIX,
        Format.DENSE_ROW_MATRIX, Format.DENSE_COL_MATRIX,
    ], ids=lambda f: f.name)
    def test_roundtrip_every_matrix_format(self, fmt):
        A = mat_from_dict(A_D, 3, 4)
        ip, ind, vals = matrix_export(A, fmt)
        back = matrix_import(T.FP64, 3, 4, ip, ind, vals, fmt)
        assert np.allclose(back.to_dense(), A.to_dense())

    def test_three_call_protocol_with_user_buffers(self):
        """§VII-A: exportSize → user allocates → export fills."""
        A = mat_from_dict(A_D, 3, 4)
        sizes = matrix_export_size(A, Format.CSR_MATRIX)
        ip = np.zeros(sizes[0], dtype=np.int64)
        ind = np.zeros(sizes[1], dtype=np.int64)
        vals = np.zeros(sizes[2], dtype=np.float64)
        matrix_export(A, Format.CSR_MATRIX, ip, ind, vals)
        assert ip.tolist() == [0, 2, 3, 5]
        assert ind.tolist() == [0, 2, 1, 0, 3]

    def test_undersized_buffer_is_insufficient_space(self):
        A = mat_from_dict(A_D, 3, 4)
        with pytest.raises(InsufficientSpaceError):
            matrix_export(A, Format.CSR_MATRIX,
                          np.zeros(1, dtype=np.int64), None, None)

    def test_dense_export_unused_slots_none(self):
        """Table III: dense formats leave indptr/indices unused (NULL)."""
        A = mat_from_dict(A_D, 3, 4)
        ip, ind, vals = matrix_export(A, Format.DENSE_ROW_MATRIX)
        assert ip is None and ind is None
        assert np.allclose(np.reshape(vals, (3, 4)), DENSE)

    def test_export_hint_is_csr(self):
        """Our storage is CSR, so the hint is CSR."""
        A = mat_from_dict(A_D, 3, 4)
        assert matrix_export_hint(A) == Format.CSR_MATRIX

    def test_export_hint_refusal_is_no_value(self):
        """§VII-A: an implementation may refuse with GrB_NO_VALUE."""
        A = mat_from_dict(A_D, 3, 4)
        with pytest.raises(NoValue):
            matrix_export_hint(A, refuse=True)

    def test_vector_format_rejected_for_matrix(self):
        A = mat_from_dict(A_D, 3, 4)
        with pytest.raises(InvalidValueError):
            matrix_export(A, Format.DENSE_VECTOR)


class TestVectorFormats:
    U_D = {1: 10.0, 3: 30.0}

    def test_sparse_vector_roundtrip(self):
        u = vec_from_dict(self.U_D, 5)
        idx, vals = vector_export(u, Format.SPARSE_VECTOR)
        back = vector_import(T.FP64, 5, idx, vals, Format.SPARSE_VECTOR)
        assert vec_to_dict(back) == self.U_D

    def test_dense_vector_roundtrip(self):
        u = vec_from_dict(self.U_D, 5)
        idx, vals = vector_export(u, Format.DENSE_VECTOR)
        assert idx is None
        assert vals.tolist() == [0.0, 10.0, 0.0, 30.0, 0.0]
        back = vector_import(T.FP64, 5, None, vals, Format.DENSE_VECTOR)
        assert back.nvals() == 5      # dense import stores everything
        assert back.extract_element(3) == 30.0

    def test_vector_export_size(self):
        u = vec_from_dict(self.U_D, 5)
        assert vector_export_size(u, Format.SPARSE_VECTOR) == (2, 2)
        assert vector_export_size(u, Format.DENSE_VECTOR) == (0, 5)

    def test_vector_export_hint(self):
        u = vec_from_dict(self.U_D, 5)
        assert vector_export_hint(u) == Format.SPARSE_VECTOR
        with pytest.raises(NoValue):
            vector_export_hint(u, refuse=True)

    def test_vector_import_validation(self):
        with pytest.raises(InvalidValueError):
            vector_import(T.FP64, 5, [0, 1], [1.0], Format.SPARSE_VECTOR)
        with pytest.raises(DimensionMismatchError):
            vector_import(T.FP64, 5, None, [1.0], Format.DENSE_VECTOR)
        with pytest.raises(InvalidValueError):
            vector_import(T.FP64, 5, [0], [1.0], Format.CSR_MATRIX)

    def test_typed_imports(self):
        m = matrix_import(T.INT32, 2, 2, [0, 1, 2], [0, 1], [1.7, 2.9],
                          Format.CSR_MATRIX)
        assert m.type is T.INT32
        assert m.extract_element(0, 0) == 1

"""extract and assign batteries: all variants, region semantics, masks."""

import pytest

from repro.core import binaryop as B
from repro.core import types as T
from repro.core.descriptor import DESC_R, DESC_S, DESC_T0
from repro.core.errors import (
    DimensionMismatchError,
    DomainMismatchError,
    InvalidIndexError,
)
from repro.core.matrix import Matrix
from repro.core.scalar import Scalar
from repro.core.vector import Vector
from repro.ops.assign import assign, assign_col, assign_row
from repro.ops.extract import ALL, extract

from .helpers import (
    assert_mat_equal,
    assert_vec_equal,
    mat_from_dict,
    vec_from_dict,
)
from .reference import ref_assign, ref_extract

A_D = {
    (0, 0): 1.0, (0, 2): 2.0, (1, 1): 3.0,
    (2, 0): 4.0, (2, 3): 5.0, (3, 2): 6.0,
}
U_D = {0: 10.0, 2: 20.0, 3: 30.0}


class TestVectorExtract:
    def test_basic(self):
        u = vec_from_dict(U_D, 5)
        w = Vector.new(T.FP64, 3)
        extract(w, None, None, u, [2, 0, 4])
        assert_vec_equal(w, {0: 20.0, 1: 10.0}, "perm")

    def test_all(self):
        u = vec_from_dict(U_D, 5)
        w = Vector.new(T.FP64, 5)
        extract(w, None, None, u, ALL)
        assert_vec_equal(w, U_D, "all")

    def test_duplicate_indices_allowed(self):
        u = vec_from_dict(U_D, 5)
        w = Vector.new(T.FP64, 4)
        extract(w, None, None, u, [0, 0, 3, 3])
        assert_vec_equal(w, {0: 10.0, 1: 10.0, 2: 30.0, 3: 30.0}, "dups")

    def test_out_of_range_index(self):
        u = vec_from_dict(U_D, 5)
        w = Vector.new(T.FP64, 1)
        with pytest.raises(InvalidIndexError):
            extract(w, None, None, u, [7])
            w.wait()

    def test_size_must_match_index_count(self):
        u = vec_from_dict(U_D, 5)
        w = Vector.new(T.FP64, 9)
        with pytest.raises(DimensionMismatchError):
            extract(w, None, None, u, [0, 1])


class TestMatrixExtract:
    def test_matches_reference(self):
        A = mat_from_dict(A_D, 4, 4)
        C = Matrix.new(T.FP64, 3, 2)
        I, J = [2, 0, 3], [0, 2]
        extract(C, None, None, A, I, J)
        assert_mat_equal(C, ref_extract(A_D, I, J, 4, 4), "IJ")

    def test_all_rows_subset_cols(self):
        A = mat_from_dict(A_D, 4, 4)
        C = Matrix.new(T.FP64, 4, 2)
        extract(C, None, None, A, ALL, [2, 3])
        assert_mat_equal(C, ref_extract(A_D, None, [2, 3], 4, 4), "ALL,J")

    def test_duplicate_rows_and_cols(self):
        A = mat_from_dict(A_D, 4, 4)
        C = Matrix.new(T.FP64, 2, 2)
        extract(C, None, None, A, [0, 0], [2, 2])
        assert_mat_equal(C, ref_extract(A_D, [0, 0], [2, 2], 4, 4), "dups")

    def test_transpose_then_extract(self):
        A = mat_from_dict(A_D, 4, 4)
        at = {(j, i): v for (i, j), v in A_D.items()}
        C = Matrix.new(T.FP64, 2, 2)
        extract(C, None, None, A, [0, 2], [2, 0], desc=DESC_T0)
        assert_mat_equal(C, ref_extract(at, [0, 2], [2, 0], 4, 4), "T0")

    def test_col_extract(self):
        A = mat_from_dict(A_D, 4, 4)
        w = Vector.new(T.FP64, 4)
        extract(w, None, None, A, ALL, 2)
        assert_vec_equal(w, {0: 2.0, 3: 6.0}, "col2")

    def test_col_extract_with_row_subset(self):
        A = mat_from_dict(A_D, 4, 4)
        w = Vector.new(T.FP64, 2)
        extract(w, None, None, A, [3, 1], 2)
        assert_vec_equal(w, {0: 6.0}, "col2 rows")

    def test_row_extract_via_transpose(self):
        """Row i extraction = Col_extract with DESC_T0 (spec idiom)."""
        A = mat_from_dict(A_D, 4, 4)
        w = Vector.new(T.FP64, 4)
        extract(w, None, None, A, ALL, 2, desc=DESC_T0)
        assert_vec_equal(w, {0: 4.0, 3: 5.0}, "row2")

    def test_extract_with_mask(self):
        A = mat_from_dict(A_D, 4, 4)
        mask = {(0, 0): True}
        C = Matrix.new(T.FP64, 4, 4)
        extract(C, mat_from_dict(mask, 4, 4, T.BOOL), None, A, ALL, ALL)
        assert_mat_equal(C, {(0, 0): 1.0}, "masked")

    def test_bad_variant_rejected(self):
        u = vec_from_dict(U_D, 5)
        C = Matrix.new(T.FP64, 2, 2)
        with pytest.raises(DomainMismatchError):
            extract(C, None, None, u, [0, 1], [0, 1])


class TestVectorAssign:
    def test_overwrite_region(self):
        w = vec_from_dict({0: 1.0, 1: 2.0, 2: 3.0, 4: 9.0}, 5)
        u = vec_from_dict({0: 100.0}, 2)          # element for position I[0]=1
        assign(w, None, None, u, [1, 2])
        # region {1,2} overwritten: 1 -> 100, 2 erased; outside untouched
        assert_vec_equal(w, {0: 1.0, 1: 100.0, 4: 9.0}, "region")

    def test_assign_all_replaces_whole_vector(self):
        w = vec_from_dict({0: 1.0, 3: 4.0}, 4)
        u = vec_from_dict({2: 7.0}, 4)
        assign(w, None, None, u, ALL)
        assert_vec_equal(w, {2: 7.0}, "ALL")

    def test_assign_with_accum_merges(self):
        w = vec_from_dict({1: 5.0, 2: 6.0}, 5)
        u = vec_from_dict({0: 1.0}, 2)
        assign(w, None, B.PLUS[T.FP64], u, [1, 2])
        assert_vec_equal(w, {1: 6.0, 2: 6.0}, "accum")

    def test_duplicate_indices_rejected(self):
        w = Vector.new(T.FP64, 5)
        u = Vector.new(T.FP64, 2)
        with pytest.raises(InvalidIndexError):
            assign(w, None, None, u, [1, 1])
            w.wait()

    def test_scalar_fill(self):
        w = vec_from_dict({0: 1.0}, 4)
        assign(w, None, None, 7.5, [1, 3])
        assert_vec_equal(w, {0: 1.0, 1: 7.5, 3: 7.5}, "fill")

    def test_scalar_fill_all_densifies(self):
        w = Vector.new(T.FP64, 4)
        assign(w, None, None, 2.0, ALL)
        assert w.nvals() == 4

    def test_empty_scalar_deletes_region(self):
        """Table II scalar variant with an empty GrB_Scalar clears."""
        w = vec_from_dict({0: 1.0, 1: 2.0, 2: 3.0}, 4)
        assign(w, None, None, Scalar.new(T.FP64), [0, 2])
        assert_vec_equal(w, {1: 2.0}, "delete")

    def test_empty_scalar_with_accum_is_noop(self):
        w = vec_from_dict({0: 1.0}, 4)
        assign(w, None, B.PLUS[T.FP64], Scalar.new(T.FP64), ALL)
        assert_vec_equal(w, {0: 1.0}, "noop")

    def test_masked_scalar_fill(self):
        w = Vector.new(T.FP64, 5)
        mask = vec_from_dict({1: True, 3: True}, 5, T.BOOL)
        assign(w, mask, None, 4.0, ALL, desc=DESC_S)
        assert_vec_equal(w, {1: 4.0, 3: 4.0}, "masked fill")


class TestMatrixAssign:
    def test_matches_reference_no_accum(self):
        c0 = dict(A_D)
        a = {(0, 0): 100.0, (1, 1): 200.0}
        C = mat_from_dict(c0, 4, 4)
        A = mat_from_dict(a, 2, 2)
        I, J = [1, 2], [0, 3]
        assign(C, None, None, A, I, J)
        assert_mat_equal(C, ref_assign(c0, a, I, J, None, 4, 4), "assign")

    def test_matches_reference_with_accum(self):
        c0 = dict(A_D)
        a = {(0, 0): 100.0, (1, 1): 200.0}
        C = mat_from_dict(c0, 4, 4)
        A = mat_from_dict(a, 2, 2)
        I, J = [2, 3], [0, 2]
        assign(C, None, B.PLUS[T.FP64], A, I, J)
        assert_mat_equal(
            C, ref_assign(c0, a, I, J, lambda x, y: x + y, 4, 4), "accum"
        )

    def test_assign_all_all(self):
        C = mat_from_dict(A_D, 4, 4)
        A = mat_from_dict({(3, 3): 1.0}, 4, 4)
        assign(C, None, None, A, ALL, ALL)
        assert_mat_equal(C, {(3, 3): 1.0}, "ALL ALL")

    def test_shape_mismatch(self):
        C = Matrix.new(T.FP64, 4, 4)
        A = Matrix.new(T.FP64, 3, 3)
        with pytest.raises(DimensionMismatchError):
            assign(C, None, None, A, [0, 1], [0, 1])

    def test_scalar_fill_region(self):
        C = mat_from_dict(A_D, 4, 4)
        assign(C, None, None, 9.0, [0, 1], [1, 2])
        expected = dict(A_D)
        for i in (0, 1):
            for j in (1, 2):
                expected[(i, j)] = 9.0
        # region positions not previously stored also get 9.0; previously
        # stored region entries overwritten; (0,0) etc untouched.
        expected.pop((0, 2), None)
        expected[(0, 2)] = 9.0
        assert_mat_equal(C, expected, "scalar region")

    def test_scalar_empty_deletes_region(self):
        C = mat_from_dict(A_D, 4, 4)
        assign(C, None, None, Scalar.new(T.FP64), [0, 2], ALL)
        assert_mat_equal(
            C, {k: v for k, v in A_D.items() if k[0] not in (0, 2)}, "del"
        )

    def test_masked_assign_spans_whole_output(self):
        c0 = {(0, 0): 1.0, (3, 3): 2.0}
        C = mat_from_dict(c0, 4, 4)
        A = mat_from_dict({(0, 0): 9.0}, 1, 1)
        mask = {(0, 0): True}   # only (0,0) writable
        assign(C, mat_from_dict(mask, 4, 4, T.BOOL), None, A, [0], [0],
               desc=DESC_R)     # replace clears everything outside the mask
        assert_mat_equal(C, {(0, 0): 9.0}, "mask replace")

    def test_row_assign(self):
        C = mat_from_dict(A_D, 4, 4)
        u = vec_from_dict({0: 50.0, 1: 60.0}, 2)
        assign_row(C, None, None, u, 2, [1, 3])
        expected = dict(A_D)
        expected.pop((2, 3))
        expected[(2, 1)] = 50.0
        expected[(2, 3)] = 60.0
        # (2,0) is outside region J=[1,3]: kept
        assert_mat_equal(C, expected, "row assign")

    def test_row_assign_all_cols_overwrites_row(self):
        C = mat_from_dict(A_D, 4, 4)
        u = vec_from_dict({1: 7.0}, 4)
        assign_row(C, None, None, u, 2, ALL)
        expected = {k: v for k, v in A_D.items() if k[0] != 2}
        expected[(2, 1)] = 7.0
        assert_mat_equal(C, expected, "row ALL")

    def test_col_assign(self):
        C = mat_from_dict(A_D, 4, 4)
        u = vec_from_dict({0: 70.0}, 4)
        assign_col(C, None, None, u, ALL, 2)
        expected = {k: v for k, v in A_D.items() if k[1] != 2}
        expected[(0, 2)] = 70.0
        assert_mat_equal(C, expected, "col ALL")

    def test_row_assign_with_row_scoped_mask(self):
        """Row_assign's vector mask spans just the row (length ncols)."""
        C = mat_from_dict(A_D, 4, 4)
        u = vec_from_dict({0: 1.0, 1: 2.0, 2: 3.0, 3: 4.0}, 4)
        mask = vec_from_dict({0: True, 2: True}, 4, T.BOOL)
        assign_row(C, mask, None, u, 0, ALL)
        expected = dict(A_D)
        expected[(0, 0)] = 1.0   # mask true
        expected[(0, 2)] = 3.0   # mask true
        # (0, 1)/(0, 3) mask false: old content kept (none existed at (0,1))
        assert_mat_equal(C, expected, "row mask")

    def test_polymorphic_dispatch_row_vs_col(self):
        C = mat_from_dict(A_D, 4, 4)
        u = vec_from_dict({0: 1.0}, 4)
        assign(C, None, None, u, 1, ALL)      # int row => Row_assign
        assert C.extract_element(1, 0) == 1.0
        C2 = mat_from_dict(A_D, 4, 4)
        assign(C2, None, None, u, ALL, 1)     # int col => Col_assign
        assert C2.extract_element(0, 1) == 1.0

    def test_ambiguous_row_col_dispatch_rejected(self):
        C = mat_from_dict(A_D, 4, 4)
        u = vec_from_dict({0: 1.0}, 1)
        with pytest.raises(DomainMismatchError):
            assign(C, None, None, u, 1, 1)

"""Error-model battery (§V, §IX): explicit Info values, error taxonomy."""

import pytest

from repro.core import errors as E
from repro.core.info import (
    API_ERRORS,
    EXECUTION_ERRORS,
    Info,
    is_api_error,
    is_execution_error,
)


class TestExplicitEnumValues:
    """§IX: enumerations must specify their values so programs can link."""

    def test_success_and_no_value(self):
        assert Info.SUCCESS == 0
        assert Info.NO_VALUE == 1

    @pytest.mark.parametrize(
        "member,value",
        [
            (Info.UNINITIALIZED_OBJECT, 2),
            (Info.NULL_POINTER, 3),
            (Info.INVALID_VALUE, 4),
            (Info.INVALID_INDEX, 5),
            (Info.DOMAIN_MISMATCH, 6),
            (Info.DIMENSION_MISMATCH, 7),
            (Info.OUTPUT_NOT_EMPTY, 8),
            (Info.NOT_IMPLEMENTED, 9),
            (Info.PANIC, 101),
            (Info.OUT_OF_MEMORY, 102),
            (Info.INSUFFICIENT_SPACE, 103),
            (Info.INVALID_OBJECT, 104),
            (Info.INDEX_OUT_OF_BOUNDS, 105),
            (Info.EMPTY_OBJECT, 106),
        ],
    )
    def test_values_are_pinned(self, member, value):
        assert int(member) == value

    def test_values_unique(self):
        values = [int(m) for m in Info]
        assert len(values) == len(set(values))


class TestTaxonomy:
    def test_api_and_execution_disjoint(self):
        assert API_ERRORS & EXECUTION_ERRORS == frozenset()

    def test_success_in_neither(self):
        assert not is_api_error(Info.SUCCESS)
        assert not is_execution_error(Info.SUCCESS)
        assert not is_api_error(Info.NO_VALUE)

    def test_predicates(self):
        assert is_api_error(Info.DIMENSION_MISMATCH)
        assert is_execution_error(Info.INDEX_OUT_OF_BOUNDS)
        assert not is_execution_error(Info.DIMENSION_MISMATCH)


class TestExceptionClasses:
    @pytest.mark.parametrize(
        "cls,info",
        [
            (E.NullPointerError, Info.NULL_POINTER),
            (E.InvalidValueError, Info.INVALID_VALUE),
            (E.InvalidIndexError, Info.INVALID_INDEX),
            (E.DomainMismatchError, Info.DOMAIN_MISMATCH),
            (E.DimensionMismatchError, Info.DIMENSION_MISMATCH),
            (E.OutputNotEmptyError, Info.OUTPUT_NOT_EMPTY),
            (E.NotImplementedGrBError, Info.NOT_IMPLEMENTED),
            (E.UninitializedObjectError, Info.UNINITIALIZED_OBJECT),
        ],
    )
    def test_api_error_subclasses(self, cls, info):
        exc = cls("boom")
        assert isinstance(exc, E.ApiError)
        assert not isinstance(exc, E.ExecutionError)
        assert exc.info == info
        assert exc.message == "boom"

    @pytest.mark.parametrize(
        "cls,info",
        [
            (E.PanicError, Info.PANIC),
            (E.OutOfMemoryError, Info.OUT_OF_MEMORY),
            (E.InsufficientSpaceError, Info.INSUFFICIENT_SPACE),
            (E.InvalidObjectError, Info.INVALID_OBJECT),
            (E.IndexOutOfBoundsError, Info.INDEX_OUT_OF_BOUNDS),
            (E.EmptyObjectError, Info.EMPTY_OBJECT),
        ],
    )
    def test_execution_error_subclasses(self, cls, info):
        exc = cls()
        assert isinstance(exc, E.ExecutionError)
        assert not isinstance(exc, E.ApiError)
        assert exc.info == info

    def test_duplicate_index_is_execution_error(self):
        """§IX: NULL-dup duplicates are an execution error."""
        exc = E.DuplicateIndexError("dup")
        assert isinstance(exc, E.ExecutionError)

    def test_no_value_is_not_a_graphblas_error(self):
        assert not isinstance(E.NoValue("x"), E.GraphBLASError)
        assert E.NoValue.info == Info.NO_VALUE

    def test_factories(self):
        assert isinstance(
            E.api_error_for(Info.DOMAIN_MISMATCH, "m"), E.DomainMismatchError
        )
        assert isinstance(
            E.execution_error_for(Info.PANIC, "m"), E.PanicError
        )
        with pytest.raises(ValueError):
            E.api_error_for(Info.PANIC)
        with pytest.raises(ValueError):
            E.execution_error_for(Info.DOMAIN_MISMATCH)

    def test_all_graphblas_errors_carry_info(self):
        exc = E.GraphBLASError("x", Info.PANIC)
        assert exc.info == Info.PANIC


class TestInfoRoundTrip:
    """Regression for the code<->class mapping, both directions, for
    every registered execution error — including the §IX special case
    where GrB_INVALID_VALUE maps to DuplicateIndexError."""

    def test_every_exec_code_round_trips(self):
        for info, cls in E._EXEC_BY_INFO.items():
            exc = E.execution_error_for(info, "msg")
            assert type(exc) is cls
            assert exc.info == info          # class -> code
            assert cls.info == info or info == Info.INVALID_VALUE

    def test_duplicate_index_round_trip(self):
        # code -> class
        exc = E.execution_error_for(Info.INVALID_VALUE, "dup at (0,0)")
        assert type(exc) is E.DuplicateIndexError
        assert isinstance(exc, E.ExecutionError)
        # class -> code
        assert E.DuplicateIndexError("x").info == Info.INVALID_VALUE

    def test_invalid_value_stays_api_error_on_api_side(self):
        """The same code means InvalidValueError when raised as an API
        error — the dual mapping must not leak across factories."""
        exc = E.api_error_for(Info.INVALID_VALUE, "bad arg")
        assert type(exc) is E.InvalidValueError
        assert not isinstance(exc, E.ExecutionError)

    def test_every_api_code_round_trips(self):
        for info, cls in E._API_BY_INFO.items():
            exc = E.api_error_for(info, "msg")
            assert type(exc) is cls
            assert exc.info == info


class TestTimeoutCode:
    """§V extension: the serving layer's GrB_TIMEOUT (Info.TIMEOUT=107)
    is a *transient* execution error, and every cancellation-adjacent
    exception maps onto it consistently (asyncio or not)."""

    def test_timeout_is_execution_error_and_transient(self):
        assert int(Info.TIMEOUT) == 107
        assert is_execution_error(Info.TIMEOUT)
        assert not is_api_error(Info.TIMEOUT)
        exc = E.TimeoutExpiredError("deadline")
        assert exc.transient
        assert isinstance(exc, E.ExecutionError)

    def test_timeout_round_trips_both_directions(self):
        # code -> class
        exc = E.execution_error_for(Info.TIMEOUT, "deadline expired")
        assert type(exc) is E.TimeoutExpiredError
        # class -> code
        assert E.TimeoutExpiredError("x").info == Info.TIMEOUT

    def test_cancellation_exceptions_map_to_timeout(self):
        import asyncio

        from repro.engine.cancel import as_execution_error

        for raw in (asyncio.CancelledError(), TimeoutError("t"),
                    asyncio.TimeoutError()):
            mapped = as_execution_error(raw, "q")
            assert type(mapped) is E.TimeoutExpiredError
            assert mapped.info == Info.TIMEOUT
            assert mapped.transient

    def test_unknown_exceptions_map_to_panic(self):
        from repro.engine.cancel import as_execution_error

        mapped = as_execution_error(ValueError("surprise"), "q")
        assert type(mapped) is E.PanicError
        assert mapped.info == Info.PANIC
        assert not getattr(mapped, "transient", False)

    def test_execution_errors_pass_through_unchanged(self):
        from repro.engine.cancel import as_execution_error

        original = E.OutOfMemoryError("oom")
        assert as_execution_error(original, "q") is original

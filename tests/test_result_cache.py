"""The cross-forcing result cache and its soundness boundaries (PR-4).

The memo's contract (:mod:`repro.engine.memo`): a re-submitted pure
built-in computation over *unchanged committed inputs* republishes the
cached carrier through the transactional commit gate instead of
re-running its kernel — and it must be impossible to observe the
difference except in the counters.  This battery checks:

* hit / miss / store counters and the single-kernel guarantee;
* eager invalidation on input writes and entry drop on ``GrB_free``;
* the no-serve boundaries: different descriptor, different context
  (hence different mode), masked (impure) consumers, ablated knob;
* the LRU capacity bound with eviction;
* freed objects' carriers (and mask-key caches) stay gc-collectable —
  the memo holds strong references only while the owner is alive;
* §V under chaos: with the memo on and transient faults injected, a
  program still produces exactly the fault-free blocking result;
* Hypothesis mode parity for the masked eWiseMult-over-mxm chains the
  eWise pushdown rewrites.
"""

import gc
import weakref

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core import binaryop as B
from repro.core import types as T
from repro.core import unaryop as U
from repro.core.context import Context, Mode, WaitMode
from repro.core.descriptor import DESC_R, DESC_RSC, DESC_T0
from repro.core.matrix import Matrix
from repro.core.semiring import PLUS_TIMES_SEMIRING
from repro.engine.stats import STATS
from repro.faults import PLANE, configure_from_env, enable_chaos
from repro.internals import config
from repro.ops.apply import apply
from repro.ops.ewise import ewise_mult
from repro.ops.mxm import mxm

from .helpers import mat_to_dict

N = 16


@pytest.fixture(autouse=True)
def clean_stats():
    # These tests exercise the memo itself, so they must run with it on
    # even under the CI ablation matrix (REPRO_RESULT_CACHE=0); the
    # ablation-behavior test flips the knob off explicitly.
    with config.option("ENGINE_MEMO", True):
        STATS.reset()
        yield
    PLANE.disable()
    configure_from_env()


def _nb():
    return Context.new(Mode.NONBLOCKING, None, None)


def _bl():
    return Context.new(Mode.BLOCKING, None, None)


def _graph(ctx, seed=0, n=N, density=0.25):
    rng = np.random.default_rng(seed)
    d = rng.random((n, n)) * (rng.random((n, n)) < density)
    r, c = np.nonzero(d)
    m = Matrix.new(T.FP64, n, n, ctx)
    m.build(r, c, d[r, c])
    m.wait(WaitMode.MATERIALIZE)
    return m


def _sr():
    return PLUS_TIMES_SEMIRING[T.FP64]


def _product(ctx, a, b=None, desc=None):
    c = Matrix.new(T.FP64, a.nrows, a.ncols, ctx)
    mxm(c, None, None, _sr(), a, b if b is not None else a, desc)
    c.wait(WaitMode.MATERIALIZE)
    return c


# ---------------------------------------------------------------------------
# Hit / miss / store / single kernel
# ---------------------------------------------------------------------------


class TestHitMiss:
    def test_resubmitted_product_runs_one_kernel(self):
        ctx = _nb()
        a = _graph(ctx)
        c1 = _product(ctx, a)
        c2 = _product(ctx, a)
        snap = ctx.engine_stats()
        assert snap["kernel_count"].get("mxm", 0) == 1
        assert snap["memo_stores"] == 1
        assert snap["memo_hits"] == 1
        assert snap["memo_reused"] == 1
        assert mat_to_dict(c1) == mat_to_dict(c2)
        # and the shared value is the real product
        bl = _bl()
        oracle = _product(bl, _graph(bl))
        assert mat_to_dict(c2) == mat_to_dict(oracle)

    def test_first_forcing_is_a_miss_and_a_store(self):
        ctx = _nb()
        a = _graph(ctx, seed=1)
        _product(ctx, a)
        snap = ctx.engine_stats()
        assert snap["memo_misses"] >= 1
        assert snap["memo_stores"] == 1
        assert snap["memo_hits"] == 0
        assert snap["memo_entries"] == 1

    def test_hit_survives_writes_to_the_output(self):
        # Re-submitting C = A ⊕.⊗ A overwrites C; that write must not
        # invalidate the entry keyed on A (the output is not a value
        # dependency), or the second submission could never hit.
        ctx = _nb()
        a = _graph(ctx, seed=2)
        c = Matrix.new(T.FP64, N, N, ctx)
        for _ in range(3):
            mxm(c, None, None, _sr(), a, a)
            c.wait(WaitMode.MATERIALIZE)
        snap = ctx.engine_stats()
        assert snap["kernel_count"].get("mxm", 0) == 1
        assert snap["memo_reused"] == 2


# ---------------------------------------------------------------------------
# Invalidation
# ---------------------------------------------------------------------------


class TestInvalidation:
    def test_input_write_invalidates(self):
        ctx = _nb()
        a = _graph(ctx, seed=3)
        _product(ctx, a)
        a.set_element(7.5, 0, 0)
        a.wait(WaitMode.MATERIALIZE)
        c2 = _product(ctx, a)
        snap = ctx.engine_stats()
        assert snap["kernel_count"].get("mxm", 0) == 2
        assert snap["memo_invalidations"] >= 1
        assert snap["memo_reused"] == 0
        # value reflects the new A, not the stale product
        bl = _bl()
        a_bl = _graph(bl, seed=3)
        a_bl.set_element(7.5, 0, 0)
        a_bl.wait(WaitMode.MATERIALIZE)
        assert mat_to_dict(c2) == mat_to_dict(_product(bl, a_bl))

    def test_free_of_cached_output_drops_entry(self):
        ctx = _nb()
        a = _graph(ctx, seed=4)
        c1 = _product(ctx, a)
        c1.free()
        _product(ctx, a)
        snap = ctx.engine_stats()
        # no republish of a freed object's carrier
        assert snap["kernel_count"].get("mxm", 0) == 2
        assert snap["memo_reused"] == 0

    def test_free_of_input_drops_entry(self):
        ctx = _nb()
        a = _graph(ctx, seed=5)
        _product(ctx, a)
        assert ctx.engine_stats()["memo_entries"] == 1
        a.free()
        assert ctx.engine_stats()["memo_entries"] == 0


# ---------------------------------------------------------------------------
# No-serve boundaries
# ---------------------------------------------------------------------------


class TestNoServe:
    def test_descriptor_difference_misses(self):
        ctx = _nb()
        a = _graph(ctx, seed=6)
        _product(ctx, a)
        c2 = _product(ctx, a, desc=DESC_T0)
        snap = ctx.engine_stats()
        assert snap["kernel_count"].get("mxm", 0) == 2
        assert snap["memo_reused"] == 0
        bl = _bl()
        assert mat_to_dict(c2) == mat_to_dict(
            _product(bl, _graph(bl, seed=6), desc=DESC_T0))

    def test_cross_context_no_serve(self):
        ctx1, ctx2 = _nb(), _nb()
        _product(ctx1, _graph(ctx1, seed=7))
        _product(ctx2, _graph(ctx2, seed=7))
        snap = ctx1.engine_stats()
        assert snap["kernel_count"].get("mxm", 0) == 2
        assert snap["memo_reused"] == 0

    def test_masked_product_never_eligible(self):
        ctx = _nb()
        a = _graph(ctx, seed=8)
        m = _graph(ctx, seed=9)
        for _ in range(2):
            c = Matrix.new(T.FP64, N, N, ctx)
            mxm(c, m, None, _sr(), a, a)
            c.wait(WaitMode.MATERIALIZE)
        snap = ctx.engine_stats()
        assert snap["kernel_count"].get("mxm", 0) == 2
        assert snap["memo_stores"] == 0

    def test_ablation_knob_disables(self):
        ctx = _nb()
        a = _graph(ctx, seed=10)
        with config.option("ENGINE_MEMO", False):
            _product(ctx, a)
            _product(ctx, a)
        snap = ctx.engine_stats()
        assert snap["kernel_count"].get("mxm", 0) == 2
        assert snap["memo_stores"] == 0
        assert snap["memo_hits"] == 0


# ---------------------------------------------------------------------------
# LRU bound
# ---------------------------------------------------------------------------


class TestLRUBound:
    def test_capacity_bound_evicts_lru(self):
        # Pinned to the legacy policy: this battery asserts the exact
        # recency order, which the default cost policy deliberately
        # reweights.  Doubles as the MEMO_EVICTION=lru compatibility
        # check (the CI ablation matrix runs the whole suite this way).
        ctx = _nb()
        a = _graph(ctx, seed=11)
        b = _graph(ctx, seed=12)
        with config.option("MEMO_CAPACITY", 2), \
                config.option("MEMO_EVICTION", "lru"):
            _product(ctx, a, a)
            _product(ctx, a, b)
            _product(ctx, b, b)   # evicts the (a, a) entry
            snap = ctx.engine_stats()
            assert snap["memo_entries"] <= 2
            assert snap["memo_evictions"] >= 1
            _product(ctx, a, a)   # evicted: must re-run
        snap = ctx.engine_stats()
        assert snap["kernel_count"].get("mxm", 0) == 4
        assert snap["memo_reused"] == 0


# ---------------------------------------------------------------------------
# Eviction policy (MEMO_EVICTION): cost-weighted vs legacy recency
# ---------------------------------------------------------------------------


class TestEvictionPolicy:
    """Direct :class:`ResultMemo` battery — controlled ``cost_ms`` values
    make the policy's choices deterministic.  Uids are far above any the
    handle counter will mint, so the tracked-uid fast path stays clean."""

    U = 10 ** 9

    @staticmethod
    def _memo(capacity):
        from repro.engine.memo import ResultMemo
        return ResultMemo(capacity=capacity)

    def test_lru_policy_evicts_oldest_regardless_of_cost(self):
        memo = self._memo(2)
        with config.option("MEMO_EVICTION", "lru"):
            memo.store(("t", 1), "expensive", (self.U + 1,), cost_ms=100.0)
            memo.store(("t", 2), "cheap", (self.U + 2,), cost_ms=0.0)
            memo.store(("t", 3), "cheap", (self.U + 3,), cost_ms=0.0)
            assert memo.lookup(("t", 1)) is None, "lru must ignore cost"
            assert memo.lookup(("t", 2)) == "cheap"
            assert memo.lookup(("t", 3)) == "cheap"

    def test_cost_policy_keeps_expensive_entry_under_pressure(self):
        memo = self._memo(2)
        with config.option("MEMO_EVICTION", "cost"):
            memo.store(("t", 1), "expensive", (self.U + 1,), cost_ms=100.0)
            memo.store(("t", 2), "cheap", (self.U + 2,), cost_ms=0.001)
            memo.store(("t", 3), "cheap", (self.U + 3,), cost_ms=0.001)
            # The SpGEMM-sized entry survives even though it is oldest;
            # the newer-but-trivial entry was the victim.
            assert memo.lookup(("t", 1)) == "expensive"
            assert memo.lookup(("t", 3)) == "cheap"
            assert memo.lookup(("t", 2)) is None

    def test_fresh_store_never_evicts_itself(self):
        memo = self._memo(1)
        with config.option("MEMO_EVICTION", "cost"):
            memo.store(("t", 1), "expensive", (self.U + 1,), cost_ms=1000.0)
            memo.store(("t", 2), "cheap", (self.U + 2,), cost_ms=0.0)
            # The just-stored entry is exempt from victim selection, or
            # a cold cheap store could bounce straight off the cache.
            assert memo.lookup(("t", 2)) == "cheap"
            assert memo.lookup(("t", 1)) is None

    def test_recency_decay_retires_stale_expensive_entry(self):
        memo = self._memo(2)
        with config.option("MEMO_EVICTION", "cost"):
            memo.store(("t", "stale"), "old", (self.U + 1,), cost_ms=1.0)
            memo.store(("t", "hot"), "hot", (self.U + 2,), cost_ms=0.5)
            # Age the stale entry far past the half-life (= capacity
            # touches) by hammering the hot one.
            for _ in range(64):
                assert memo.lookup(("t", "hot")) == "hot"
            memo.store(("t", "new"), "new", (self.U + 3,), cost_ms=0.4)
            assert memo.lookup(("t", "stale")) is None, \
                "an untouched entry must eventually yield, however costly"
            assert memo.lookup(("t", "hot")) == "hot"

    def test_eviction_counter_and_entry_bookkeeping(self):
        STATS.reset()
        memo = self._memo(2)
        with config.option("MEMO_EVICTION", "cost"):
            for i in range(5):
                memo.store(("t", i), f"c{i}", (self.U + i,), cost_ms=float(i))
        assert len(memo) == 2
        snap = STATS.snapshot()
        assert snap["memo_evictions"] == 3
        assert snap["memo_stores"] == 5
        # invalidation indexes shrank with the evictions: no leak of
        # by-dep buckets for evicted keys
        assert memo.lookup(("t", 4)) == "c4"   # highest cost survives
        assert memo.lookup(("t", 3)) == "c3"


# ---------------------------------------------------------------------------
# Collectability after GrB_free
# ---------------------------------------------------------------------------


class TestCollectability:
    def test_freed_output_carrier_is_collectable(self):
        ctx = _nb()
        a = _graph(ctx, seed=13)
        c = _product(ctx, a)
        wr = weakref.ref(c._data)
        assert ctx.engine_stats()["memo_entries"] == 1
        c.free()
        del c
        gc.collect()
        assert wr() is None, "memo retained a freed object's carrier"

    def test_freed_mask_keys_cache_is_collectable(self):
        # maskaccum caches a mask's key set *on* the carrier, so the
        # cache can only die with the carrier — make sure nothing else
        # (memo included) pins a freed mask.
        ctx = _nb()
        a = _graph(ctx, seed=14)
        m = _graph(ctx, seed=15)
        c = Matrix.new(T.FP64, N, N, ctx)
        mxm(c, m, None, _sr(), a, a)
        c.wait(WaitMode.MATERIALIZE)
        wr = weakref.ref(m._data)
        m.free()
        del m
        gc.collect()
        assert wr() is None, "a freed mask's carrier is still referenced"

    def test_context_free_clears_memo(self):
        ctx = _nb()
        a = _graph(ctx, seed=16)
        c = _product(ctx, a)
        wr = weakref.ref(c._data)
        assert len(ctx.result_memo(create=False)) == 1
        c.free()
        a.free()
        ctx.free()
        del c, a
        gc.collect()
        assert wr() is None


# ---------------------------------------------------------------------------
# Chaos: memo + transient faults still match the blocking oracle
# ---------------------------------------------------------------------------


class TestChaosProperty:
    def _program(self, ctx):
        a = _graph(ctx, seed=17)
        out = []
        c1 = _product(ctx, a)
        out.append(mat_to_dict(c1))
        c2 = _product(ctx, a)          # memo-eligible re-submission
        out.append(mat_to_dict(c2))
        a.set_element(3.25, 1, 1)      # invalidate, then recompute
        a.wait(WaitMode.MATERIALIZE)
        c3 = _product(ctx, a)
        out.append(mat_to_dict(c3))
        return out

    def test_chaos_run_matches_fault_free_blocking(self):
        oracle = self._program(_bl())
        enable_chaos(1234, rate=0.25)
        try:
            got = self._program(_nb())
        finally:
            PLANE.disable()
        assert got == oracle


# ---------------------------------------------------------------------------
# Cost-model visibility rides along with the memo counters
# ---------------------------------------------------------------------------


class TestCostInstants:
    @pytest.fixture(autouse=True)
    def _costmodel_on(self):
        # Cost instants only fire when the arbitration pass sees a
        # pushdown-vs-fusion conflict, so both knobs must be on — the
        # CI ablation matrix exports each of them off in turn.
        with config.option("ENGINE_COSTMODEL", True), \
                config.option("ENGINE_PUSHDOWN", True):
            yield

    def test_conflict_decision_emits_cost_instant(self):
        ctx = _nb()
        a = _graph(ctx, seed=18)
        m = _graph(ctx, seed=19)
        c = Matrix.new(T.FP64, N, N, ctx)
        mxm(c, None, None, _sr(), a, a)
        apply(c, m, None, U.IDENTITY[T.FP64], c, DESC_R)
        c.wait(WaitMode.MATERIALIZE)
        snap = ctx.engine_stats(include_spans=True)
        assert snap["cost_decisions"] >= 1
        assert any(
            ev.get("name", "").startswith("cost:")
            for ev in snap["trace_events"]
        ), "cost decisions must be visible in the trace"


# ---------------------------------------------------------------------------
# Hypothesis: mode parity for masked eWiseMult-over-mxm chains
# ---------------------------------------------------------------------------

_COORD = st.tuples(st.integers(0, 5), st.integers(0, 5))
_VALS = st.floats(min_value=-4, max_value=4,
                  allow_nan=False, allow_subnormal=False)
_SPARSE = st.dictionaries(_COORD, _VALS, max_size=12)


def _from_dict(ctx, d, n=6):
    m = Matrix.new(T.FP64, n, n, ctx)
    if d:
        rows, cols = zip(*d.keys())
        m.build(list(rows), list(cols), list(d.values()))
    m.wait(WaitMode.MATERIALIZE)
    return m


class TestModeParityHypothesis:
    @settings(max_examples=30, deadline=None,
              suppress_health_check=[HealthCheck.too_slow])
    @given(a=_SPARSE, b=_SPARSE, mask=_SPARSE, complement=st.booleans())
    def test_masked_ewise_mult_over_mxm_parity(self, a, b, mask, complement):
        desc = DESC_RSC if complement else DESC_R

        def run(ctx):
            am = _from_dict(ctx, a)
            bm = _from_dict(ctx, b)
            mm = _from_dict(ctx, mask)
            c = Matrix.new(T.FP64, 6, 6, ctx)
            mxm(c, None, None, _sr(), am, am)
            ewise_mult(c, mm, None, B.TIMES[T.FP64], c, bm, desc)
            c.wait(WaitMode.MATERIALIZE)
            return mat_to_dict(c)

        assert run(_nb()) == run(_bl())


# ---------------------------------------------------------------------------
# Admission policy (MEMO_ADMISSION): skip stores cheaper than a republish
# ---------------------------------------------------------------------------


class TestMemoAdmission:
    """Cost-model-driven admission: an *estimated* store whose rebuild
    savings undercut the measured republish overhead is a strict loss
    and is skipped.  Direct battery over :mod:`repro.engine.memo`'s
    overhead EWMA plus the ``store(..., estimated=True)`` gate."""

    U = 2 * 10 ** 9

    @pytest.fixture(autouse=True)
    def admission_on(self):
        # Pinned on so the battery holds under the MEMO_ADMISSION=0
        # ablation job; the knob test flips it off explicitly.
        with config.option("MEMO_ADMISSION", True):
            yield

    @staticmethod
    def _memo(capacity=8):
        from repro.engine.memo import ResultMemo
        return ResultMemo(capacity=capacity)

    def test_overhead_ewma_tracks_measured_commits(self):
        from repro.engine.memo import commit_overhead_ms, record_commit_ms
        assert commit_overhead_ms() == 0.0  # evidence-gated: starts cold
        record_commit_ms(2.0)
        assert commit_overhead_ms() == pytest.approx(2.0)  # first sample
        record_commit_ms(4.0)  # then EWMA (alpha=0.3)
        assert commit_overhead_ms() == pytest.approx(2.0 + 0.3 * 2.0)

    def test_stats_reset_clears_the_overhead_average(self):
        from repro.engine.memo import commit_overhead_ms, record_commit_ms
        record_commit_ms(5.0)
        assert commit_overhead_ms() > 0.0
        STATS.reset()
        assert commit_overhead_ms() == 0.0

    def test_cheap_estimated_store_skipped_once_overhead_known(self):
        from repro.engine.memo import record_commit_ms
        memo = self._memo()
        record_commit_ms(3.0)
        before = STATS.snapshot()["memo_admission_skips"]
        memo.store(("t", 1), "cheap", (self.U + 1,),
                   cost_ms=0.5, estimated=True)
        assert memo.lookup(("t", 1)) is None
        assert STATS.snapshot()["memo_admission_skips"] == before + 1
        # A store whose savings beat the overhead is admitted.
        memo.store(("t", 2), "worth-it", (self.U + 2,),
                   cost_ms=9.0, estimated=True)
        assert memo.lookup(("t", 2)) == "worth-it"

    def test_nothing_skipped_before_overhead_is_measured(self):
        memo = self._memo()
        memo.store(("t", 1), "v", (self.U + 1,),
                   cost_ms=0.001, estimated=True)
        assert memo.lookup(("t", 1)) == "v"
        assert STATS.snapshot()["memo_admission_skips"] == 0

    def test_measured_stores_bypass_the_gate(self):
        # Algorithm building blocks store *measured* build times
        # (estimated=False): never gated, however cheap.
        from repro.engine.memo import record_commit_ms
        memo = self._memo()
        record_commit_ms(50.0)
        memo.store(("t", 1), "measured", (self.U + 1,), cost_ms=0.01)
        assert memo.lookup(("t", 1)) == "measured"

    def test_zero_cost_estimate_is_always_admitted(self):
        # cost_ms == 0 means "no estimate", not "free to rebuild".
        from repro.engine.memo import record_commit_ms
        memo = self._memo()
        record_commit_ms(50.0)
        memo.store(("t", 1), "v", (self.U + 1,), cost_ms=0.0,
                   estimated=True)
        assert memo.lookup(("t", 1)) == "v"

    def test_knob_disables_the_gate(self):
        from repro.engine.memo import record_commit_ms
        memo = self._memo()
        record_commit_ms(10.0)
        with config.option("MEMO_ADMISSION", False):
            memo.store(("t", 1), "v", (self.U + 1,),
                       cost_ms=0.5, estimated=True)
        assert memo.lookup(("t", 1)) == "v"
        assert STATS.snapshot()["memo_admission_skips"] == 0

    def test_republish_feeds_the_overhead_average(self):
        # End to end: a real memo hit measures its republish wall and
        # feeds the admission model.
        from repro.engine.memo import commit_overhead_ms
        ctx = _nb()
        a = _graph(ctx, seed=3)
        _product(ctx, a)
        assert commit_overhead_ms() == 0.0
        _product(ctx, a)  # second forcing republishes from the memo
        assert STATS.snapshot()["memo_reused"] == 1
        assert commit_overhead_ms() > 0.0

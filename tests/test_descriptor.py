"""Descriptor battery: fields, values, ALREADY_SET, predefined constants."""

import pytest

from repro.core import descriptor as D
from repro.core.errors import ApiError, InvalidValueError
from repro.core.info import Info


class TestEnumValues:
    def test_field_values_pinned(self):
        assert D.DescField.OUTP == 0
        assert D.DescField.MASK == 1
        assert D.DescField.INP0 == 2
        assert D.DescField.INP1 == 3

    def test_value_values_pinned(self):
        assert D.DescValue.DEFAULT == 0
        assert D.DescValue.REPLACE == 1
        assert D.DescValue.COMP == 2
        assert D.DescValue.TRAN == 3
        assert D.DescValue.STRUCTURE == 4


class TestSetGet:
    def test_default_descriptor(self):
        d = D.Descriptor.new()
        assert not d.replace and not d.mask_complement
        assert not d.mask_structure and not d.transpose0 and not d.transpose1
        assert d.get(D.DescField.OUTP) == D.DescValue.DEFAULT

    def test_set_each_field(self):
        d = D.Descriptor.new()
        d.set(D.DescField.OUTP, D.DescValue.REPLACE)
        d.set(D.DescField.INP0, D.DescValue.TRAN)
        d.set(D.DescField.INP1, D.DescValue.TRAN)
        d.set(D.DescField.MASK, D.DescValue.COMP)
        assert d.replace and d.transpose0 and d.transpose1 and d.mask_complement

    def test_mask_comp_and_structure_combine(self):
        d = D.Descriptor.new()
        d.set(D.DescField.MASK, D.DescValue.COMP)
        d.set(D.DescField.MASK, D.DescValue.STRUCTURE)
        assert d.mask_complement and d.mask_structure

    def test_already_set_error(self):
        d = D.Descriptor.new()
        d.set(D.DescField.OUTP, D.DescValue.REPLACE)
        with pytest.raises(ApiError) as ei:
            d.set(D.DescField.OUTP, D.DescValue.REPLACE)
        assert ei.value.info == Info.ALREADY_SET

    def test_same_mask_value_twice_is_already_set(self):
        d = D.Descriptor.new()
        d.set(D.DescField.MASK, D.DescValue.COMP)
        with pytest.raises(ApiError):
            d.set(D.DescField.MASK, D.DescValue.COMP)

    def test_default_clears(self):
        d = D.Descriptor.new()
        d.set(D.DescField.OUTP, D.DescValue.REPLACE)
        d.set(D.DescField.OUTP, D.DescValue.DEFAULT)
        assert not d.replace

    @pytest.mark.parametrize(
        "field,value",
        [
            (D.DescField.OUTP, D.DescValue.TRAN),
            (D.DescField.MASK, D.DescValue.REPLACE),
            (D.DescField.INP0, D.DescValue.COMP),
            (D.DescField.INP1, D.DescValue.STRUCTURE),
        ],
    )
    def test_invalid_value_for_field(self, field, value):
        d = D.Descriptor.new()
        with pytest.raises(InvalidValueError):
            d.set(field, value)


class TestPredefined:
    @pytest.mark.parametrize(
        "desc,flags",
        [
            (D.DESC_T0, "t0"),
            (D.DESC_T1, "t1"),
            (D.DESC_T0T1, "t0 t1"),
            (D.DESC_C, "c"),
            (D.DESC_S, "s"),
            (D.DESC_SC, "s c"),
            (D.DESC_R, "r"),
            (D.DESC_RT0, "r t0"),
            (D.DESC_RT1, "r t1"),
            (D.DESC_RT0T1, "r t0 t1"),
            (D.DESC_RC, "r c"),
            (D.DESC_RS, "r s"),
            (D.DESC_RSC, "r s c"),
        ],
        ids=lambda x: x if isinstance(x, str) else x.name,
    )
    def test_predefined_flag_combinations(self, desc, flags):
        want = set(flags.split())
        assert desc.replace == ("r" in want)
        assert desc.mask_complement == ("c" in want)
        assert desc.mask_structure == ("s" in want)
        assert desc.transpose0 == ("t0" in want)
        assert desc.transpose1 == ("t1" in want)

    def test_predefined_are_immutable(self):
        with pytest.raises(InvalidValueError):
            D.DESC_T0.set(D.DescField.OUTP, D.DescValue.REPLACE)

    def test_null_desc_is_all_defaults(self):
        d = D.NULL_DESC
        assert not any([d.replace, d.mask_complement, d.mask_structure,
                        d.transpose0, d.transpose1])

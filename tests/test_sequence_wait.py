"""Experiment F1/§V conformance: sequences, completion, deferred errors."""

import pytest

from repro.core import binaryop as B
from repro.core import types as T
from repro.core.context import Context, Mode, WaitMode
from repro.core.errors import (
    DimensionMismatchError,
    DuplicateIndexError,
    IndexOutOfBoundsError,
)
from repro.core.matrix import Matrix
from repro.core.semiring import PLUS_TIMES_SEMIRING
from repro.core.sequence import error_string, wait
from repro.core.vector import Vector
from repro.ops.mxm import mxm

from .helpers import mat_from_dict


@pytest.fixture
def nb():
    return Context.new(Mode.NONBLOCKING, None, None)


@pytest.fixture
def bl():
    return Context.new(Mode.BLOCKING, None, None)


class TestDeferral:
    def test_operations_defer_in_nonblocking(self, nb):
        A = mat_from_dict({(0, 0): 2.0}, 2, 2, ctx=nb)
        C = Matrix.new(T.FP64, 2, 2, nb)
        mxm(C, None, None, PLUS_TIMES_SEMIRING[T.FP64], A, A)
        assert not C.is_materialized
        wait(C, WaitMode.COMPLETE)
        assert C.nvals() == 1

    def test_wait_mode_enum_values(self):
        assert WaitMode.COMPLETE == 0
        assert WaitMode.MATERIALIZE == 1

    def test_sequence_order_preserved(self, nb):
        """Multiple deferred ops on one object run in program order."""
        v = Vector.new(T.INT64, 3, nb)
        v.set_element(1, 0)
        v.set_element(2, 0)     # overwrites
        v.set_element(3, 1)
        v.remove_element(1)
        wait(v)
        assert v.to_dict() == {0: 2}

    def test_accumulation_chain_defers_and_composes(self, nb):
        A = mat_from_dict({(0, 0): 1.0}, 2, 2, ctx=nb)
        C = Matrix.new(T.FP64, 2, 2, nb)
        mxm(C, None, None, PLUS_TIMES_SEMIRING[T.FP64], A, A)
        mxm(C, None, B.PLUS[T.FP64], PLUS_TIMES_SEMIRING[T.FP64], A, A)
        mxm(C, None, B.PLUS[T.FP64], PLUS_TIMES_SEMIRING[T.FP64], A, A)
        assert not C.is_materialized
        wait(C)
        assert C.extract_element(0, 0) == 3.0

    def test_reading_forces(self, nb):
        v = Vector.new(T.INT64, 3, nb)
        v.set_element(7, 1)
        # nvals is a value-reading method: it forces the sequence.
        assert v.nvals() == 1

    def test_use_as_input_forces(self, nb):
        A = Matrix.new(T.FP64, 2, 2, nb)
        A.set_element(3.0, 0, 0)        # pending
        C = Matrix.new(T.FP64, 2, 2, nb)
        mxm(C, None, None, PLUS_TIMES_SEMIRING[T.FP64], A, A)
        wait(C)
        assert C.extract_element(0, 0) == 9.0

    def test_blocking_mode_never_pends(self, bl):
        A = mat_from_dict({(0, 0): 2.0}, 2, 2, ctx=bl)
        C = Matrix.new(T.FP64, 2, 2, bl)
        mxm(C, None, None, PLUS_TIMES_SEMIRING[T.FP64], A, A)
        assert C.is_materialized

    def test_capture_snapshot_semantics(self, nb):
        """An input mutated after the call does not change the result."""
        A = mat_from_dict({(0, 0): 2.0}, 2, 2, ctx=nb)
        C = Matrix.new(T.FP64, 2, 2, nb)
        mxm(C, None, None, PLUS_TIMES_SEMIRING[T.FP64], A, A)
        A.set_element(100.0, 0, 0)      # after the call
        wait(C)
        assert C.extract_element(0, 0) == 4.0


class TestErrorModel:
    def test_api_errors_never_deferred(self, nb):
        """§V: API errors are raised at the call, even in nonblocking
        mode, and modify nothing."""
        A = Matrix.new(T.FP64, 2, 3, nb)
        C = Matrix.new(T.FP64, 2, 2, nb)
        with pytest.raises(DimensionMismatchError):
            mxm(C, None, None, PLUS_TIMES_SEMIRING[T.FP64], A, A)
        assert C.is_materialized        # nothing was enqueued
        assert C.nvals() == 0

    def test_execution_error_deferred_to_wait(self, nb):
        m = Matrix.new(T.FP64, 2, 2, nb)
        m.build([0, 0], [0, 0], [1.0, 2.0], dup=None)
        # Not raised yet:
        assert error_string(m) == ""
        with pytest.raises(DuplicateIndexError):
            wait(m, WaitMode.MATERIALIZE)

    def test_execution_error_immediate_in_blocking(self, bl):
        m = Matrix.new(T.FP64, 2, 2, bl)
        with pytest.raises(DuplicateIndexError):
            m.build([0, 0], [0, 0], [1.0, 2.0], dup=None)

    def test_error_string_recorded(self, nb):
        """§V: GrB_error returns an implementation-defined string."""
        m = Matrix.new(T.FP64, 2, 2, nb)
        m.build([0], [9], [1.0])
        with pytest.raises(IndexOutOfBoundsError):
            m.nvals()
        assert "out of range" in error_string(m)

    def test_error_surfaces_once_then_state_remains(self, nb):
        m = Matrix.new(T.FP64, 2, 2, nb)
        m.build([0, 0], [0, 0], [1.0, 2.0], dup=None)
        with pytest.raises(DuplicateIndexError):
            wait(m)
        # After surfacing, the object is usable again; its state is the
        # pre-failure state (defined by our implementation; the spec
        # leaves it undefined).
        wait(m, WaitMode.MATERIALIZE)
        assert m.nvals() == 0
        assert error_string(m) != ""

    def test_failed_op_drops_rest_of_sequence(self, nb):
        v = Vector.new(T.FP64, 3, nb)
        v.build([9], [1.0])            # will fail
        v.set_element(5.0, 0)          # queued after the failure
        with pytest.raises(IndexOutOfBoundsError):
            wait(v)
        assert v.nvals() == 0          # the set_element was dropped (§V)

    def test_materialize_also_completes(self, nb):
        """GrB_wait(obj, MATERIALIZE) always includes COMPLETE (§V)."""
        v = Vector.new(T.FP64, 3, nb)
        v.set_element(1.0, 0)
        wait(v, WaitMode.MATERIALIZE)
        assert v.is_materialized

    def test_complete_then_materialize_split(self, nb):
        """§V: a thread can COMPLETE, another can continue and MATERIALIZE."""
        v = Vector.new(T.FP64, 3, nb)
        v.set_element(1.0, 0)
        wait(v, WaitMode.COMPLETE)
        v.set_element(2.0, 1)          # sequence continues
        wait(v, WaitMode.MATERIALIZE)
        assert v.to_dict() == {0: 1.0, 1: 2.0}

    def test_error_default_is_empty_string(self, nb):
        assert error_string(Matrix.new(T.FP64, 2, 2, nb)) == ""

"""The nonpolymorphic typed surface, and the §VI variant-count argument."""

import pytest

from repro import capi_typed as ct
from repro.core import monoid as M
from repro.core import types as T
from repro.core.errors import DomainMismatchError, NoValue
from repro.core.indexunaryop import VALUEGT
from repro.core.binaryop import TIMES
from repro.core.matrix import Matrix
from repro.core.scalar import Scalar
from repro.core.vector import Vector


class TestTypedElementAccess:
    def test_matrix_set_extract_every_domain(self):
        for t in T.PREDEFINED_TYPES:
            sfx = T.suffix_of(t)
            m = Matrix.new(t, 2, 2)
            setter = getattr(ct, f"GrB_Matrix_setElement_{sfx}")
            getter = getattr(ct, f"GrB_Matrix_extractElement_{sfx}")
            setter(m, 1, 0, 1)
            assert getter(m, 0, 1) == 1

    def test_vector_typed_roundtrip(self):
        v = Vector.new(T.INT16, 4)
        ct.GrB_Vector_setElement_INT16(v, 300, 2)
        assert ct.GrB_Vector_extractElement_INT16(v, 2) == 300

    def test_scalar_typed_roundtrip(self):
        s = Scalar.new(T.FP32)
        ct.GrB_Scalar_setElement_FP32(s, 1.5)
        assert ct.GrB_Scalar_extractElement_FP32(s) == 1.5

    def test_out_of_range_is_domain_mismatch(self):
        """C's static typing, emulated: INT8 cannot hold 1000."""
        m = Matrix.new(T.INT8, 2, 2)
        with pytest.raises(DomainMismatchError):
            ct.GrB_Matrix_setElement_INT8(m, 1000, 0, 0)

    def test_fractional_into_integer_variant_rejected(self):
        v = Vector.new(T.INT32, 2)
        with pytest.raises(DomainMismatchError):
            ct.GrB_Vector_setElement_INT32(v, 2.5, 0)
        ct.GrB_Vector_setElement_INT32(v, 2.0, 0)   # integral float ok
        assert ct.GrB_Vector_extractElement_INT32(v, 0) == 2

    def test_missing_element_no_value(self):
        m = Matrix.new(T.FP64, 2, 2)
        with pytest.raises(NoValue):
            ct.GrB_Matrix_extractElement_FP64(m, 0, 0)

    def test_string_rejected(self):
        s = Scalar.new(T.FP64)
        with pytest.raises(DomainMismatchError):
            ct.GrB_Scalar_setElement_FP64(s, "nope")


class TestTypedOperations:
    def test_typed_reduce(self):
        m = Matrix.new(T.FP64, 2, 2)
        m.set_element(1.5, 0, 0)
        m.set_element(2.5, 1, 1)
        assert ct.GrB_Matrix_reduce_FP64(M.PLUS_MONOID[T.FP64], m) == 4.0
        # cast on the way out
        assert ct.GrB_Matrix_reduce_INT64(M.PLUS_MONOID[T.FP64], m) == 4

    def test_typed_reduce_empty_gives_identity(self):
        m = Matrix.new(T.FP64, 2, 2)
        assert ct.GrB_Matrix_reduce_FP64(M.PLUS_MONOID[T.FP64], m) == 0.0

    def test_typed_assign(self):
        v = Vector.new(T.FP64, 4)
        ct.GrB_Vector_assign_FP64(v, None, None, 2.5, [0, 2])
        assert v.to_dict() == {0: 2.5, 2: 2.5}

    def test_typed_apply_bind(self):
        v = Vector.new(T.FP64, 3)
        v.set_element(4.0, 1)
        out = Vector.new(T.FP64, 3)
        ct.GrB_Vector_apply_BinaryOp2nd_FP64(
            out, None, None, TIMES[T.FP64], v, 10.0)
        assert out.extract_element(1) == 40.0
        out2 = Vector.new(T.FP64, 3)
        ct.GrB_Vector_apply_BinaryOp1st_FP64(
            out2, None, None, TIMES[T.FP64], 10.0, v)
        assert out2.extract_element(1) == 40.0

    def test_typed_select(self):
        m = Matrix.new(T.FP64, 2, 2)
        m.set_element(1.0, 0, 0)
        m.set_element(5.0, 1, 1)
        out = Matrix.new(T.FP64, 2, 2)
        ct.GrB_Matrix_select_FP64(out, None, None, VALUEGT[T.FP64], m, 2.0)
        assert out.to_dict() == {(1, 1): 5.0}


class TestVariantCensus:
    """§VI: 'they significantly reduce the number of nonpolymorphic
    variants' — quantified."""

    def test_eleven_variants_per_element_method(self):
        census = ct.variant_census()
        assert census["GrB_Matrix_setElement"] == 11
        assert census["GrB_Vector_extractElement"] == 11
        assert census["GrB_Scalar_setElement"] == 11
        assert census["GrB_Matrix_reduce"] == 11

    def test_total_explosion(self):
        """The typed surface generated here alone exceeds 150 functions;
        the GrB_Scalar forms of Table II replace each family with one."""
        total = sum(ct.variant_census().values())
        assert total >= 150
        families = len(ct.variant_census())
        assert total == families * 11

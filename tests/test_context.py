"""Experiment F2 conformance: the §IV / Fig. 2 context surface."""

import pytest

from repro.core import types as T
from repro.core.context import (
    Context,
    Mode,
    context_switch,
    default_context,
    finalize,
    get_version,
    init,
    is_initialized,
)
from repro.core.errors import (
    InvalidValueError,
    PanicError,
    UninitializedObjectError,
)
from repro.core.matrix import Matrix
from repro.core.semiring import PLUS_TIMES_SEMIRING
from repro.core.vector import Vector
from repro.ops.mxm import mxm


class TestLifecycle:
    def test_init_gives_top_level_context(self):
        # conftest already initialized; restart to observe the object
        finalize()
        top = init(Mode.BLOCKING)
        assert top.parent is None
        assert top.mode == Mode.BLOCKING
        assert top.depth == 0
        assert default_context() is top

    def test_double_init_is_panic(self):
        with pytest.raises(PanicError):
            init()

    def test_finalize_without_init_is_panic(self):
        finalize()
        with pytest.raises(PanicError):
            finalize()
        init()   # restore for the fixture's teardown

    def test_method_before_init_is_panic(self):
        finalize()
        with pytest.raises(PanicError):
            Matrix.new(T.FP64, 2, 2)
        init()

    def test_finalize_frees_all_contexts(self):
        ctx = Context.new(Mode.NONBLOCKING, None, None)
        finalize()
        assert ctx.is_freed
        assert not is_initialized()
        init()

    def test_get_version(self):
        assert get_version() == (2, 0)

    def test_mode_enum_values(self):
        assert Mode.NONBLOCKING == 0
        assert Mode.BLOCKING == 1


class TestHierarchy:
    def test_new_nests_under_top_by_default(self):
        """Fig. 2: parent=GrB_NULL means the top-level context."""
        ctx = Context.new(Mode.NONBLOCKING, None, None)
        assert ctx.parent is default_context()
        assert ctx.depth == 1

    def test_explicit_parent(self):
        p = Context.new(Mode.NONBLOCKING, None, {"nthreads": 8})
        c = Context.new(Mode.BLOCKING, p, None)
        assert c.parent is p
        assert c.depth == 2
        assert p.is_ancestor_of(c)
        assert not c.is_ancestor_of(p)

    def test_exec_spec_inheritance(self):
        p = Context.new(Mode.NONBLOCKING, None, {"nthreads": 8, "chunk_rows": 64})
        c = Context.new(Mode.NONBLOCKING, p, {"nthreads": 2})
        assert c.nthreads == 2          # own value wins
        assert c.chunk_rows == 64       # inherited from parent
        assert p.nthreads == 8

    def test_default_exec_values(self):
        ctx = Context.new(Mode.NONBLOCKING, None, None)
        assert ctx.nthreads == 1
        assert ctx.chunk_rows == 1

    def test_exec_spec_validation(self):
        with pytest.raises(InvalidValueError):
            Context.new(Mode.NONBLOCKING, None, {"nthreads": 0})
        with pytest.raises(InvalidValueError):
            Context.new(Mode.NONBLOCKING, None, {"bogus_key": 1})

    def test_context_new_before_init_is_panic(self):
        finalize()
        with pytest.raises(PanicError):
            Context.new(Mode.NONBLOCKING, None, None)
        init()

    def test_new_under_freed_parent_rejected(self):
        p = Context.new(Mode.NONBLOCKING, None, None)
        p.free()
        with pytest.raises(UninitializedObjectError):
            Context.new(Mode.NONBLOCKING, p, None)


class TestObjectBinding:
    def test_constructors_take_context(self):
        """Fig. 2: GrB_Matrix_new / GrB_Vector_new carry a ctx argument."""
        ctx = Context.new(Mode.NONBLOCKING, None, None)
        m = Matrix.new(T.FP64, 2, 2, ctx)
        v = Vector.new(T.FP64, 2, ctx)
        assert m.context is ctx and v.context is ctx

    def test_default_context_binding(self):
        m = Matrix.new(T.FP64, 2, 2)
        assert m.context is default_context()

    def test_mixed_contexts_rejected(self):
        """§IV: all objects in a method must share a context."""
        c1 = Context.new(Mode.NONBLOCKING, None, None)
        c2 = Context.new(Mode.NONBLOCKING, None, None)
        A = Matrix.new(T.FP64, 2, 2, c1)
        B = Matrix.new(T.FP64, 2, 2, c2)
        C = Matrix.new(T.FP64, 2, 2, c1)
        with pytest.raises(InvalidValueError):
            mxm(C, None, None, PLUS_TIMES_SEMIRING[T.FP64], A, B)

    def test_context_switch_rehomes(self):
        """Fig. 2: GrB_Context_switch(<GrB Object>*, newCtx)."""
        c1 = Context.new(Mode.NONBLOCKING, None, None)
        c2 = Context.new(Mode.NONBLOCKING, None, None)
        A = Matrix.new(T.FP64, 2, 2, c1)
        B = Matrix.new(T.FP64, 2, 2, c2)
        C = Matrix.new(T.FP64, 2, 2, c1)
        context_switch(B, c1)
        assert B.context is c1
        mxm(C, None, None, PLUS_TIMES_SEMIRING[T.FP64], A, B)  # now fine

    def test_switch_to_freed_context_rejected(self):
        ctx = Context.new(Mode.NONBLOCKING, None, None)
        A = Matrix.new(T.FP64, 2, 2)
        ctx.free()
        with pytest.raises(UninitializedObjectError):
            context_switch(A, ctx)

    def test_creating_object_in_freed_context_rejected(self):
        ctx = Context.new(Mode.NONBLOCKING, None, None)
        ctx.free()
        with pytest.raises(UninitializedObjectError):
            Matrix.new(T.FP64, 2, 2, ctx)

    def test_free_cascades_to_children(self):
        p = Context.new(Mode.NONBLOCKING, None, None)
        c = Context.new(Mode.NONBLOCKING, p, None)
        p.free()
        assert c.is_freed


class TestModeSemantics:
    def test_blocking_context_runs_eagerly(self):
        ctx = Context.new(Mode.BLOCKING, None, None)
        m = Matrix.new(T.FP64, 2, 2, ctx)
        m.set_element(1.0, 0, 0)
        assert m.is_materialized

    def test_nonblocking_context_defers(self):
        ctx = Context.new(Mode.NONBLOCKING, None, None)
        m = Matrix.new(T.FP64, 2, 2, ctx)
        m.set_element(1.0, 0, 0)
        assert not m.is_materialized

    def test_parallel_context_produces_identical_results(self):
        import numpy as np
        from repro.generators import random_matrix_data
        rows, cols, vals = random_matrix_data(40, 40, 0.1, seed=9)
        serial = Context.new(Mode.NONBLOCKING, None, {"nthreads": 1})
        wide = Context.new(Mode.NONBLOCKING, None, {"nthreads": 4})
        outs = []
        for ctx in (serial, wide):
            A = Matrix.new(T.FP64, 40, 40, ctx)
            A.build(rows, cols, vals)
            C = Matrix.new(T.FP64, 40, 40, ctx)
            mxm(C, None, None, PLUS_TIMES_SEMIRING[T.FP64], A, A)
            outs.append(C.to_dense())
        assert np.allclose(outs[0], outs[1])

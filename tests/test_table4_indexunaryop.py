"""Experiment T4 conformance: every predefined index-unary operator
(Table IV) behaves as specified, on matrices and (where defined) vectors.
"""

import numpy as np
import pytest

from repro.core import indexunaryop as IU
from repro.core import types as T
from repro.core.errors import DomainMismatchError
from repro.core.matrix import Matrix
from repro.core.vector import Vector
from repro.ops.apply import apply
from repro.ops.select import select

from .helpers import mat_from_dict, mat_to_dict, vec_from_dict, vec_to_dict

# A 4x4 test pattern covering diagonal, both triangles, and value range.
A_D = {
    (0, 0): 5.0, (0, 2): 1.0, (0, 3): 8.0,
    (1, 1): 2.0, (2, 0): 7.0, (2, 2): 3.0,
    (3, 1): 6.0, (3, 3): 4.0,
}


def _mat():
    return mat_from_dict(A_D, 4, 4)


def _select_keys(op, s):
    out = Matrix.new(T.FP64, 4, 4)
    select(out, None, None, op, _mat(), s)
    return set(mat_to_dict(out))


class TestPositionalIndexOps:
    """ROWINDEX / COLINDEX / DIAGINDEX 'replace with … plus s'."""

    @pytest.mark.parametrize("t", [T.INT32, T.INT64], ids=lambda t: t.name)
    def test_rowindex(self, t):
        out = Matrix.new(t, 4, 4)
        apply(out, None, None, IU.ROWINDEX[t], _mat(), 2)
        assert mat_to_dict(out) == {k: k[0] + 2 for k in A_D}

    def test_colindex(self):
        out = Matrix.new(T.INT64, 4, 4)
        apply(out, None, None, IU.COLINDEX[T.INT64], _mat(), 0)
        assert mat_to_dict(out) == {k: k[1] for k in A_D}

    def test_diagindex(self):
        out = Matrix.new(T.INT64, 4, 4)
        apply(out, None, None, IU.DIAGINDEX[T.INT64], _mat(), 0)
        assert mat_to_dict(out) == {k: k[1] - k[0] for k in A_D}

    def test_rowindex_on_vector(self):
        u = vec_from_dict({1: 9.0, 3: 7.0}, 5)
        out = Vector.new(T.INT64, 5)
        apply(out, None, None, IU.ROWINDEX[T.INT64], u, 10)
        assert vec_to_dict(out) == {1: 11, 3: 13}

    def test_colindex_on_vector_rejected(self):
        """Table IV: COLINDEX/DIAGINDEX access indices[1] — matrices only.
        The paper calls vector use undefined; we define it as an error."""
        u = vec_from_dict({0: 1.0}, 3)
        out = Vector.new(T.INT64, 3)
        with pytest.raises(DomainMismatchError):
            apply(out, None, None, IU.COLINDEX[T.INT64], u, 0)
        with pytest.raises(DomainMismatchError):
            apply(out, None, None, IU.DIAGINDEX[T.INT64], u, 0)


class TestPositionalSelectors:
    def test_tril_zero(self):
        assert _select_keys(IU.TRIL, 0) == {k for k in A_D if k[1] <= k[0]}

    def test_tril_offsets(self):
        assert _select_keys(IU.TRIL, -1) == {k for k in A_D if k[1] <= k[0] - 1}
        assert _select_keys(IU.TRIL, 2) == {k for k in A_D if k[1] <= k[0] + 2}

    def test_triu(self):
        assert _select_keys(IU.TRIU, 0) == {k for k in A_D if k[1] >= k[0]}
        assert _select_keys(IU.TRIU, 1) == {k for k in A_D if k[1] >= k[0] + 1}

    def test_diag_and_offdiag_partition(self):
        diag = _select_keys(IU.DIAG, 0)
        off = _select_keys(IU.OFFDIAG, 0)
        assert diag == {k for k in A_D if k[0] == k[1]}
        assert diag | off == set(A_D) and diag & off == set()

    def test_diag_offset(self):
        assert _select_keys(IU.DIAG, 2) == {k for k in A_D if k[1] == k[0] + 2}

    def test_row_col_band_selectors(self):
        assert _select_keys(IU.ROWLE, 1) == {k for k in A_D if k[0] <= 1}
        assert _select_keys(IU.ROWGT, 1) == {k for k in A_D if k[0] > 1}
        assert _select_keys(IU.COLLE, 2) == {k for k in A_D if k[1] <= 2}
        assert _select_keys(IU.COLGT, 2) == {k for k in A_D if k[1] > 2}

    def test_rowle_rowgt_on_vectors(self):
        u = vec_from_dict({0: 1.0, 2: 2.0, 4: 3.0}, 5)
        out = Vector.new(T.FP64, 5)
        select(out, None, None, IU.ROWLE, u, 2)
        assert set(vec_to_dict(out)) == {0, 2}
        out2 = Vector.new(T.FP64, 5)
        select(out2, None, None, IU.ROWGT, u, 2)
        assert set(vec_to_dict(out2)) == {4}

    def test_tril_on_vector_rejected(self):
        u = vec_from_dict({0: 1.0}, 3)
        out = Vector.new(T.FP64, 3)
        with pytest.raises(DomainMismatchError):
            select(out, None, None, IU.TRIL, u, 0)


class TestValueComparators:
    @pytest.mark.parametrize(
        "fam,pred",
        [
            (IU.VALUEEQ, lambda v, s: v == s),
            (IU.VALUENE, lambda v, s: v != s),
            (IU.VALUELT, lambda v, s: v < s),
            (IU.VALUELE, lambda v, s: v <= s),
            (IU.VALUEGT, lambda v, s: v > s),
            (IU.VALUEGE, lambda v, s: v >= s),
        ],
        ids=["EQ", "NE", "LT", "LE", "GT", "GE"],
    )
    def test_value_selects(self, fam, pred):
        s = 4.0
        assert _select_keys(fam[T.FP64], s) == \
            {k for k, v in A_D.items() if pred(v, s)}

    def test_value_ops_work_on_vectors(self):
        u = vec_from_dict({0: 1.0, 1: 5.0, 2: 3.0}, 3)
        out = Vector.new(T.FP64, 3)
        select(out, None, None, IU.VALUEGT[T.FP64], u, 2.0)
        assert set(vec_to_dict(out)) == {1, 2}

    def test_value_ops_typed_per_domain(self):
        with pytest.raises(DomainMismatchError):
            IU.VALUEEQ[T.Type.new("X")]
        assert IU.VALUEGE[T.INT8].in_type is T.INT8


class TestOperatorObjects:
    def test_table_has_seventeen_families(self):
        assert len(IU.PREDEFINED_INDEXUNARY) == 17

    def test_names_match_spec(self):
        assert IU.TRIL.name == "GrB_TRIL"
        assert IU.ROWINDEX[T.INT32].name == "GrB_ROWINDEX_INT32"
        assert IU.VALUEEQ[T.FP32].name == "GrB_VALUEEQ_FP32"

    def test_selectors_return_bool(self):
        for op in (IU.TRIL, IU.TRIU, IU.DIAG, IU.OFFDIAG, IU.ROWLE,
                   IU.ROWGT, IU.COLLE, IU.COLGT):
            assert op.out_type is T.BOOL
            assert not op.uses_value

    def test_index_ops_scalar_vs_vec_agree(self):
        rows = np.array([0, 1, 2], dtype=np.int64)
        cols = np.array([2, 1, 0], dtype=np.int64)
        vals = np.array([1.0, 2.0, 3.0])
        for op in (IU.TRIL, IU.TRIU, IU.DIAG, IU.OFFDIAG,
                   IU.DIAGINDEX[T.INT64], IU.VALUEGT[T.FP64]):
            vec_out = op.vec(vals, rows, cols, 0)
            for k in range(3):
                assert vec_out[k] == op.scalar(vals[k], rows[k], cols[k], 0), op.name

    def test_udf_index_op(self):
        op = IU.IndexUnaryOp.new(
            lambda v, i, j, s: v * (i + j) + s, T.FP64, T.FP64, T.FP64,
        )
        out = Matrix.new(T.FP64, 4, 4)
        apply(out, None, None, op, _mat(), 1.0)
        assert mat_to_dict(out) == {
            k: v * (k[0] + k[1]) + 1.0 for k, v in A_D.items()
        }

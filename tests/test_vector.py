"""Vector object battery: constructors, element access, build rules."""

import pytest

from repro.core import binaryop as B
from repro.core import types as T
from repro.core.errors import (
    DuplicateIndexError,
    IndexOutOfBoundsError,
    InvalidIndexError,
    InvalidValueError,
    NoValue,
    OutputNotEmptyError,
    UninitializedObjectError,
)
from repro.core.scalar import Scalar
from repro.core.vector import Vector


class TestConstruction:
    def test_new(self):
        v = Vector.new(T.FP64, 10)
        assert v.size == 10 and v.nvals() == 0 and v.type is T.FP64

    def test_new_zero_size_allowed(self):
        assert Vector.new(T.FP64, 0).size == 0

    def test_new_negative_size_rejected(self):
        with pytest.raises(InvalidValueError):
            Vector.new(T.FP64, -1)

    def test_dup_is_independent(self):
        v = Vector.new(T.INT64, 5)
        v.set_element(7, 2)
        w = v.dup()
        w.set_element(9, 2)
        assert v.extract_element(2) == 7
        assert w.extract_element(2) == 9


class TestBuild:
    def test_build_sorted_output(self):
        v = Vector.new(T.FP64, 10)
        v.build([5, 1, 7], [50.0, 10.0, 70.0])
        idx, vals = v.extract_tuples()
        assert idx.tolist() == [1, 5, 7]
        assert vals.tolist() == [10.0, 50.0, 70.0]

    def test_build_with_dup_folds_in_input_order(self):
        v = Vector.new(T.INT64, 4)
        # dup MINUS is order-sensitive: ((10 - 3) - 2) = 5
        v.build([1, 1, 1], [10, 3, 2], dup=B.MINUS[T.INT64])
        assert v.extract_element(1) == 5

    def test_build_null_dup_duplicates_error(self):
        """§IX: dup=GrB_NULL makes duplicates an execution error."""
        v = Vector.new(T.FP64, 4)
        v.build([0, 0], [1.0, 2.0], dup=None)
        with pytest.raises(DuplicateIndexError):
            v.wait()

    def test_build_on_nonempty_is_output_not_empty(self):
        v = Vector.new(T.FP64, 4)
        v.set_element(1.0, 0)
        with pytest.raises(OutputNotEmptyError):
            v.build([1], [2.0])

    def test_build_out_of_bounds_is_execution_error(self):
        v = Vector.new(T.FP64, 4)
        v.build([9], [1.0])
        with pytest.raises(IndexOutOfBoundsError):
            v.wait()

    def test_build_length_mismatch(self):
        v = Vector.new(T.FP64, 4)
        with pytest.raises(InvalidValueError):
            v.build([1, 2], [1.0])

    def test_build_after_clear_is_allowed(self):
        v = Vector.new(T.FP64, 4)
        v.build([1], [1.0])
        v.clear()
        v.build([2], [2.0])
        assert v.to_dict() == {2: 2.0}


class TestElementAccess:
    def test_set_get_roundtrip(self):
        v = Vector.new(T.INT32, 8)
        v.set_element(5, 3)
        assert v.extract_element(3) == 5

    def test_set_overwrites(self):
        v = Vector.new(T.INT32, 8)
        v.set_element(5, 3)
        v.set_element(6, 3)
        assert v.extract_element(3) == 6
        assert v.nvals() == 1

    def test_set_keeps_sorted_invariant(self):
        v = Vector.new(T.INT32, 8)
        for i in (5, 1, 7, 3):
            v.set_element(i, i)
        idx, _ = v.extract_tuples()
        assert idx.tolist() == [1, 3, 5, 7]

    def test_set_element_grb_scalar(self):
        s = Scalar.new(T.INT32)
        s.set_element(11)
        v = Vector.new(T.INT32, 4)
        v.set_element(s, 0)
        assert v.extract_element(0) == 11

    def test_set_element_empty_scalar_removes(self):
        v = Vector.new(T.INT32, 4)
        v.set_element(1, 0)
        v.set_element(Scalar.new(T.INT32), 0)
        assert v.nvals() == 0

    def test_extract_missing_is_no_value(self):
        v = Vector.new(T.FP64, 4)
        with pytest.raises(NoValue):
            v.extract_element(2)

    def test_extract_into_grb_scalar_variant(self):
        """Table II: extractElement(GrB_Scalar, Vector, Index) — a missing
        element yields an empty scalar, not an error (§VI)."""
        v = Vector.new(T.FP64, 4)
        v.set_element(2.5, 1)
        out = Scalar.new(T.FP64)
        v.extract_element(1, out)
        assert out.extract_element() == 2.5
        v.extract_element(2, out)
        assert out.nvals() == 0

    def test_index_bounds_are_api_errors(self):
        v = Vector.new(T.FP64, 4)
        with pytest.raises(InvalidIndexError):
            v.set_element(1.0, 4)
        with pytest.raises(InvalidIndexError):
            v.extract_element(-1)
        with pytest.raises(InvalidIndexError):
            v.remove_element(99)

    def test_remove_element(self):
        v = Vector.new(T.FP64, 4)
        v.set_element(1.0, 1)
        v.set_element(2.0, 2)
        v.remove_element(1)
        assert v.to_dict() == {2: 2.0}

    def test_remove_missing_is_noop(self):
        v = Vector.new(T.FP64, 4)
        v.set_element(1.0, 1)
        v.remove_element(2)
        assert v.nvals() == 1


class TestShapeOps:
    def test_clear_preserves_size_and_type(self):
        v = Vector.new(T.INT16, 6)
        v.set_element(1, 0)
        v.clear()
        assert v.size == 6 and v.nvals() == 0 and v.type is T.INT16

    def test_resize_grow_keeps_elements(self):
        v = Vector.new(T.FP64, 4)
        v.set_element(1.0, 3)
        v.resize(10)
        assert v.size == 10
        assert v.extract_element(3) == 1.0

    def test_resize_shrink_drops_out_of_range(self):
        v = Vector.new(T.FP64, 10)
        v.set_element(1.0, 2)
        v.set_element(2.0, 8)
        v.resize(5)
        assert v.to_dict() == {2: 1.0}

    def test_free(self):
        v = Vector.new(T.FP64, 4)
        v.free()
        with pytest.raises(UninitializedObjectError):
            v.nvals()

    def test_extract_tuples_returns_copies(self):
        v = Vector.new(T.FP64, 4)
        v.set_element(1.0, 1)
        idx, vals = v.extract_tuples()
        idx[0] = 99
        vals[0] = 99.0
        assert v.extract_element(1) == 1.0

    def test_len_is_size(self):
        assert len(Vector.new(T.FP64, 7)) == 7

"""Astronomically-shaped containers and the exact-key fallback.

``GrB_Index`` is 64-bit.  Columns and vector sizes here go to 2^61 —
pushing the pair-key encoding ``row * ncols + col`` past int64 so the
exact (object-key) fallback path runs under real operations.  Row
counts are capped by the documented CSR limit (the dense row pointer);
exceeding it is a defined ``GrB_OUT_OF_MEMORY``, not a crash.
"""

import numpy as np
import pytest

from repro.core import binaryop as B
from repro.core import monoid as M
from repro.core import semiring as S
from repro.core import types as T
from repro.core.errors import OutOfMemoryError
from repro.core.indexunaryop import COLGT
from repro.core.matrix import Matrix
from repro.core.vector import Vector
from repro.internals.containers import MAX_NROWS, pair_keys
from repro.ops.apply import apply
from repro.ops.ewise import ewise_add, ewise_mult
from repro.ops.extract import extract
from repro.ops.mxm import mxm, vxm
from repro.ops.reduce import reduce_scalar
from repro.ops.select import select

WIDE = 1 << 61   # 8 rows x 2^61 cols: keys overflow int64 -> object path


def _wide_matrix(entries: dict, nrows: int = 8) -> Matrix:
    m = Matrix.new(T.FP64, nrows, WIDE)
    rows, cols = zip(*entries.keys())
    m.build(list(rows), list(cols), list(entries.values()))
    m.wait()
    return m


ENTRIES = {
    (0, 0): 1.0,
    (0, WIDE - 1): 2.0,
    (3, 7): 3.0,
    (7, WIDE - 1): 4.0,
    (7, 0): 5.0,
}


class TestKeyFallback:
    def test_pair_keys_switch_to_objects(self):
        rows = np.array([7], dtype=np.int64)
        cols = np.array([WIDE - 1], dtype=np.int64)
        keys = pair_keys(rows, cols, WIDE)
        assert keys.dtype == object
        assert keys[0] == 7 * WIDE + WIDE - 1

    def test_small_shapes_stay_int64(self):
        keys = pair_keys(np.array([1]), np.array([2]), 100)
        assert keys.dtype == np.int64


class TestWideMatrices:
    def test_build_and_read_back(self):
        m = _wide_matrix(ENTRIES)
        assert m.nvals() == len(ENTRIES)
        assert m.to_dict() == ENTRIES
        assert m.extract_element(0, WIDE - 1) == 2.0

    def test_set_element_at_extreme_column(self):
        m = Matrix.new(T.FP64, 2, WIDE)
        m.set_element(9.5, 1, WIDE - 1)
        assert m.extract_element(1, WIDE - 1) == 9.5

    def test_ewise_union_object_keys(self):
        a = _wide_matrix(ENTRIES)
        b = _wide_matrix({(0, 0): 10.0, (5, 5): 20.0})
        c = Matrix.new(T.FP64, 8, WIDE)
        ewise_add(c, None, None, B.PLUS[T.FP64], a, b)
        got = c.to_dict()
        assert got[(0, 0)] == 11.0
        assert got[(5, 5)] == 20.0
        assert got[(7, 0)] == 5.0

    def test_ewise_intersection_object_keys(self):
        a = _wide_matrix(ENTRIES)
        b = _wide_matrix({(0, 0): 2.0, (7, WIDE - 1): 3.0, (1, 1): 9.0})
        c = Matrix.new(T.FP64, 8, WIDE)
        ewise_mult(c, None, None, B.TIMES[T.FP64], a, b)
        assert c.to_dict() == {(0, 0): 2.0, (7, WIDE - 1): 12.0}

    def test_mxm_into_wide_output(self):
        a = Matrix.new(T.FP64, 4, 4)
        a.build([0, 3], [2, 2], [2.0, 4.0])
        b = Matrix.new(T.FP64, 4, WIDE)
        b.build([2], [WIDE - 1], [10.0])
        c = Matrix.new(T.FP64, 4, WIDE)
        mxm(c, None, None, S.PLUS_TIMES_SEMIRING[T.FP64], a, b)
        assert c.to_dict() == {(0, WIDE - 1): 20.0, (3, WIDE - 1): 40.0}

    def test_masked_mxm_pushdown_object_keys(self):
        from repro.core.descriptor import DESC_S
        a = Matrix.new(T.FP64, 4, 4)
        a.build([0, 1], [2, 2], [2.0, 4.0])
        b = Matrix.new(T.FP64, 4, WIDE)
        b.build([2, 2], [0, WIDE - 1], [10.0, 20.0])
        mask = Matrix.new(T.BOOL, 4, WIDE)
        mask.set_element(True, 0, WIDE - 1)
        c = Matrix.new(T.FP64, 4, WIDE)
        mxm(c, mask, None, S.PLUS_TIMES_SEMIRING[T.FP64], a, b, desc=DESC_S)
        assert c.to_dict() == {(0, WIDE - 1): 40.0}

    def test_select_and_apply_on_wide(self):
        m = _wide_matrix(ENTRIES)
        right = Matrix.new(T.FP64, 8, WIDE)
        select(right, None, None, COLGT, m, 10)
        assert set(right.to_dict()) == \
            {k for k in ENTRIES if k[1] > 10}
        doubled = Matrix.new(T.FP64, 8, WIDE)
        apply(doubled, None, None, B.TIMES[T.FP64], m, 2.0)
        assert doubled.extract_element(7, WIDE - 1) == 8.0

    def test_reduce_scalar_wide(self):
        m = _wide_matrix(ENTRIES)
        assert reduce_scalar(M.PLUS_MONOID[T.FP64], m) == \
            pytest.approx(sum(ENTRIES.values()))

    def test_extract_corners(self):
        m = _wide_matrix(ENTRIES)
        sub = Matrix.new(T.FP64, 2, 2)
        extract(sub, None, None, m, [0, 7], [0, WIDE - 1])
        assert sub.to_dict() == {(0, 0): 1.0, (0, 1): 2.0,
                                 (1, 0): 5.0, (1, 1): 4.0}

    def test_serialize_roundtrip_wide(self):
        from repro.formats import matrix_deserialize, matrix_serialize
        m = _wide_matrix(ENTRIES)
        back = matrix_deserialize(matrix_serialize(m))
        assert back.to_dict() == ENTRIES
        assert back.ncols == WIDE


class TestHugeVectors:
    HUGE = 1 << 60

    def test_sparse_vector_at_extremes(self):
        v = Vector.new(T.FP64, self.HUGE)
        v.set_element(1.0, 0)
        v.set_element(2.0, self.HUGE - 1)
        assert v.nvals() == 2
        assert v.extract_element(self.HUGE - 1) == 2.0

    def test_vxm_into_huge_output(self):
        a = Matrix.new(T.FP64, 4, WIDE)
        a.build([1], [WIDE - 1], [3.0])
        u = Vector.new(T.FP64, 4)
        u.set_element(2.0, 1)
        w = Vector.new(T.FP64, WIDE)
        vxm(w, None, None, S.PLUS_TIMES_SEMIRING[T.FP64], u, a)
        assert w.to_dict() == {WIDE - 1: 6.0}

    def test_huge_vector_ewise(self):
        u = Vector.new(T.FP64, self.HUGE)
        u.set_element(1.0, self.HUGE - 2)
        v = Vector.new(T.FP64, self.HUGE)
        v.set_element(2.0, self.HUGE - 2)
        w = Vector.new(T.FP64, self.HUGE)
        ewise_mult(w, None, None, B.TIMES[T.FP64], u, v)
        assert w.to_dict() == {self.HUGE - 2: 2.0}


class TestRowLimit:
    def test_exceeding_nrows_is_defined_out_of_memory(self):
        """With the hypersparse tier disabled (``FORMAT_AUTO=0``), a row
        count past the CSR pointer limit is still the defined
        ``GrB_OUT_OF_MEMORY`` — never a MemoryError crash."""
        from repro.internals import config

        with config.option("FORMAT_AUTO", 0):
            with pytest.raises(OutOfMemoryError) as ei:
                Matrix.new(T.FP64, MAX_NROWS + 1, 4)
        assert "hypersparse" in str(ei.value)

    def test_exceeding_nrows_defaults_to_hypersparse(self):
        """With ``FORMAT_AUTO`` on (the default — pinned here so the
        ``FORMAT_AUTO=0`` CI ablation doesn't flip it), the same shape
        simply constructs on the DCSR carrier — O(nnz) memory, no
        limit."""
        from repro.internals import config

        with config.option("FORMAT_AUTO", 1):
            m = Matrix.new(T.FP64, MAX_NROWS + 1, 4)
            m.set_element(1.5, MAX_NROWS, 3)
            assert m.nvals() == 1
            assert m.extract_element(MAX_NROWS, 3) == 1.5

    def test_limit_is_generous_for_real_graphs(self):
        assert MAX_NROWS >= 100_000_000

"""Algebraic laws of the GraphBLAS operations (hypothesis).

These are the identities the linear-algebraic formulation of graph
algorithms *relies on* — if any fails, algorithms built on the API are
silently wrong even when individual kernels look right.
"""

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core import binaryop as B
from repro.core import monoid as M
from repro.core import semiring as S
from repro.core import types as T
from repro.core.descriptor import DESC_T0, DESC_T1
from repro.core.matrix import Matrix
from repro.core.vector import Vector
from repro.ops.ewise import ewise_add, ewise_mult
from repro.ops.mxm import mxm, mxv, vxm
from repro.ops.reduce import reduce_scalar, reduce_to_vector
from repro.ops.transpose import transpose

from .helpers import mat_from_dict, mat_to_dict, vec_from_dict

SETTINGS = settings(
    max_examples=30,
    deadline=None,
    suppress_health_check=[HealthCheck.function_scoped_fixture],
)

# Integer values keep every law exact (no float rounding).
def dmat(n=4, m=4):
    return st.dictionaries(
        st.tuples(st.integers(0, n - 1), st.integers(0, m - 1)),
        st.integers(0, 7).map(float), max_size=n * m,
    )


def dvec(n=4):
    return st.dictionaries(st.integers(0, n - 1),
                           st.integers(0, 7).map(float), max_size=n)


def _mm(a, b, sr=S.PLUS_TIMES_SEMIRING[T.FP64], n=4):
    c = Matrix.new(T.FP64, n, n)
    mxm(c, None, None, sr, a, b)
    return c


class TestSemiringLaws:
    @SETTINGS
    @given(a=dmat(), b=dmat(), c=dmat())
    def test_left_distributivity(self, a, b, c):
        """A(B ⊕ C) = AB ⊕ AC over PLUS_TIMES."""
        A, Bm, Cm = (mat_from_dict(d, 4, 4) for d in (a, b, c))
        bc = Matrix.new(T.FP64, 4, 4)
        ewise_add(bc, None, None, B.PLUS[T.FP64], Bm, Cm)
        lhs = _mm(A, bc)
        ab, ac = _mm(A, Bm), _mm(A, Cm)
        rhs = Matrix.new(T.FP64, 4, 4)
        ewise_add(rhs, None, None, B.PLUS[T.FP64], ab, ac)
        assert mat_to_dict(lhs) == mat_to_dict(rhs)

    @SETTINGS
    @given(a=dmat(), b=dmat(), c=dmat())
    def test_right_distributivity(self, a, b, c):
        """(B ⊕ C)A = BA ⊕ CA."""
        A, Bm, Cm = (mat_from_dict(d, 4, 4) for d in (a, b, c))
        bc = Matrix.new(T.FP64, 4, 4)
        ewise_add(bc, None, None, B.PLUS[T.FP64], Bm, Cm)
        lhs = _mm(bc, A)
        rhs = Matrix.new(T.FP64, 4, 4)
        ewise_add(rhs, None, None, B.PLUS[T.FP64], _mm(Bm, A), _mm(Cm, A))
        assert mat_to_dict(lhs) == mat_to_dict(rhs)

    @SETTINGS
    @given(a=dmat())
    def test_identity_matrix(self, a):
        """AI = IA = A over PLUS_TIMES."""
        A = mat_from_dict(a, 4, 4)
        eye = mat_from_dict({(i, i): 1.0 for i in range(4)}, 4, 4)
        assert mat_to_dict(_mm(A, eye)) == a
        assert mat_to_dict(_mm(eye, A)) == a

    @SETTINGS
    @given(a=dmat(), b=dmat())
    def test_transpose_antihomomorphism(self, a, b):
        """(AB)ᵀ = BᵀAᵀ."""
        A = mat_from_dict(a, 4, 4)
        Bm = mat_from_dict(b, 4, 4)
        ab_t = Matrix.new(T.FP64, 4, 4)
        transpose(ab_t, None, None, _mm(A, Bm))
        # BᵀAᵀ via descriptor transposes:
        rhs = Matrix.new(T.FP64, 4, 4)
        mxm(rhs, None, None, S.PLUS_TIMES_SEMIRING[T.FP64], Bm, A,
            desc=_DESC_TT)
        assert mat_to_dict(ab_t) == mat_to_dict(rhs)

    @SETTINGS
    @given(a=dmat(), u=dvec())
    def test_mxv_is_vxm_of_transpose(self, a, u):
        """A·u = (u'·Aᵀ)'."""
        A = mat_from_dict(a, 4, 4)
        U = vec_from_dict(u, 4)
        w1 = Vector.new(T.FP64, 4)
        mxv(w1, None, None, S.PLUS_TIMES_SEMIRING[T.FP64], A, U)
        w2 = Vector.new(T.FP64, 4)
        vxm(w2, None, None, S.PLUS_TIMES_SEMIRING[T.FP64], U, A,
            desc=DESC_T1)
        assert w1.to_dict() == w2.to_dict()

    @SETTINGS
    @given(a=dmat(), b=dmat())
    def test_min_plus_associates_with_itself(self, a, b):
        """min-plus products compose (the SSSP algebra is sound)."""
        A = mat_from_dict(a, 4, 4)
        Bm = mat_from_dict(b, 4, 4)
        sr = S.MIN_PLUS_SEMIRING[T.FP64]
        ab = _mm(A, Bm, sr)
        aab = _mm(A, ab, sr)
        aa = _mm(A, A, sr)
        aab2 = _mm(aa, Bm, sr)
        assert mat_to_dict(aab) == mat_to_dict(aab2)


from repro.core.descriptor import Descriptor as _Descriptor  # noqa: E402

_DESC_TT = _Descriptor(tran0=True, tran1=True)._freeze()


class TestMonoidLaws:
    @SETTINGS
    @given(vals=st.lists(st.integers(-50, 50), max_size=20),
           fam=st.sampled_from(["PLUS", "MIN", "MAX", "TIMES"]))
    def test_reduce_invariant_under_permutation(self, vals, fam):
        monoid = getattr(M, f"{fam}_MONOID")[T.INT64]
        arr = np.array(vals, dtype=np.int64)
        fwd = monoid.reduce_array(arr)
        rev = monoid.reduce_array(arr[::-1].copy())
        assert fwd == rev

    @SETTINGS
    @given(vals=st.lists(st.integers(-50, 50), min_size=1, max_size=20))
    def test_identity_is_neutral(self, vals):
        m = M.PLUS_MONOID[T.INT64]
        arr = np.array(vals + [int(m.identity)], dtype=np.int64)
        assert m.reduce_array(arr) == m.reduce_array(
            np.array(vals, dtype=np.int64))

    @SETTINGS
    @given(a=dmat())
    def test_matrix_reduce_equals_row_then_scalar(self, a):
        """Reducing all of A == reducing its row-reduction."""
        A = mat_from_dict(a, 4, 4)
        direct = reduce_scalar(M.PLUS_MONOID[T.FP64], A)
        rows = Vector.new(T.FP64, 4)
        reduce_to_vector(rows, None, None, M.PLUS_MONOID[T.FP64], A)
        staged = reduce_scalar(M.PLUS_MONOID[T.FP64], rows)
        assert direct == pytest.approx(staged)

    @SETTINGS
    @given(a=dmat())
    def test_row_reduce_of_transpose_is_col_reduce(self, a):
        A = mat_from_dict(a, 4, 4)
        by_desc = Vector.new(T.FP64, 4)
        reduce_to_vector(by_desc, None, None, M.PLUS_MONOID[T.FP64], A,
                         desc=DESC_T0)
        At = Matrix.new(T.FP64, 4, 4)
        transpose(At, None, None, A)
        by_mat = Vector.new(T.FP64, 4)
        reduce_to_vector(by_mat, None, None, M.PLUS_MONOID[T.FP64], At)
        assert by_desc.to_dict() == by_mat.to_dict()


class TestEwiseLaws:
    @SETTINGS
    @given(a=dmat(), b=dmat(), c=dmat())
    def test_ewise_add_associative(self, a, b, c):
        A, Bm, Cm = (mat_from_dict(d, 4, 4) for d in (a, b, c))
        ab = Matrix.new(T.FP64, 4, 4)
        ewise_add(ab, None, None, B.PLUS[T.FP64], A, Bm)
        ab_c = Matrix.new(T.FP64, 4, 4)
        ewise_add(ab_c, None, None, B.PLUS[T.FP64], ab, Cm)
        bc = Matrix.new(T.FP64, 4, 4)
        ewise_add(bc, None, None, B.PLUS[T.FP64], Bm, Cm)
        a_bc = Matrix.new(T.FP64, 4, 4)
        ewise_add(a_bc, None, None, B.PLUS[T.FP64], A, bc)
        assert mat_to_dict(ab_c) == mat_to_dict(a_bc)

    @SETTINGS
    @given(a=dmat(), b=dmat())
    def test_mult_pattern_is_intersection_add_is_union(self, a, b):
        A, Bm = mat_from_dict(a, 4, 4), mat_from_dict(b, 4, 4)
        add = Matrix.new(T.FP64, 4, 4)
        ewise_add(add, None, None, B.PLUS[T.FP64], A, Bm)
        mult = Matrix.new(T.FP64, 4, 4)
        ewise_mult(mult, None, None, B.TIMES[T.FP64], A, Bm)
        assert set(mat_to_dict(add)) == set(a) | set(b)
        assert set(mat_to_dict(mult)) == set(a) & set(b)

    @SETTINGS
    @given(a=dmat())
    def test_add_with_empty_is_identity(self, a):
        A = mat_from_dict(a, 4, 4)
        E = Matrix.new(T.FP64, 4, 4)
        out = Matrix.new(T.FP64, 4, 4)
        ewise_add(out, None, None, B.PLUS[T.FP64], A, E)
        assert mat_to_dict(out) == a

"""The hypersparse extension: 2^60-row matrices via compact row storage."""

import numpy as np
import pytest

from repro.core import types as T
from repro.core.errors import DimensionMismatchError, InvalidIndexError, NoValue
from repro.core.indexunaryop import ROWGT, ROWLE, TRIL, VALUEGT
from repro.core.matrix import Matrix
from repro.core.monoid import PLUS_MONOID
from repro.core.semiring import PLUS_TIMES_SEMIRING
from repro.core.unaryop import AINV
from repro.core.vector import Vector
from repro.extensions import HyperMatrix

TALL = 1 << 58   # far beyond the ordinary CSR row limit
ENTRIES = {
    (0, 0): 1.0,
    (5, 2): 2.0,
    (TALL // 2, 1): 3.0,
    (TALL - 1, 0): 4.0,
    (TALL - 1, 3): 5.0,
}


def _tall() -> HyperMatrix:
    rows, cols = zip(*ENTRIES.keys())
    return HyperMatrix.from_triples(
        T.FP64, TALL, 4, list(rows), list(cols), list(ENTRIES.values()),
    )


class TestConstruction:
    def test_from_triples_roundtrip(self):
        h = _tall()
        assert h.shape == (TALL, 4)
        assert h.nvals() == len(ENTRIES)
        assert h.nonempty_rows == 4     # two entries share row TALL-1
        assert h.to_dict() == ENTRIES

    def test_element_access(self):
        h = _tall()
        assert h.extract_element(TALL - 1, 3) == 5.0
        with pytest.raises(NoValue):
            h.extract_element(17, 0)       # row not stored
        with pytest.raises(NoValue):
            h.extract_element(5, 3)        # row stored, column not
        with pytest.raises(InvalidIndexError):
            h.extract_element(TALL, 0)

    def test_row_bounds_checked(self):
        with pytest.raises(InvalidIndexError):
            HyperMatrix.from_triples(T.FP64, 10, 4, [10], [0], [1.0])

    def test_empty(self):
        h = HyperMatrix(T.FP64, TALL, 4)
        assert h.nvals() == 0 and h.nonempty_rows == 0


class TestOperations:
    def test_mxv_global_rows(self):
        h = _tall()
        u = Vector.new(T.FP64, 4)
        u.set_element(10.0, 0)
        u.set_element(100.0, 1)
        got = h.mxv(u, PLUS_TIMES_SEMIRING[T.FP64])
        assert got == {0: 10.0, TALL // 2: 300.0, TALL - 1: 40.0}

    def test_vxm_from_sparse_pattern(self):
        h = _tall()
        w = h.vxm({TALL - 1: 2.0, 5: 1.0}, PLUS_TIMES_SEMIRING[T.FP64])
        assert w.to_dict() == {0: 8.0, 2: 2.0, 3: 10.0}

    def test_vxm_ignores_rows_not_stored(self):
        h = _tall()
        w = h.vxm({17: 100.0}, PLUS_TIMES_SEMIRING[T.FP64])
        assert w.nvals() == 0

    def test_mxm_same_rows(self):
        h = _tall()
        b = Matrix.new(T.FP64, 4, 2)
        b.build([0, 1], [0, 1], [10.0, 20.0])
        c = h.mxm_same_rows(b, PLUS_TIMES_SEMIRING[T.FP64])
        assert c.to_dict() == {
            (0, 0): 10.0, (TALL // 2, 1): 60.0, (TALL - 1, 0): 40.0,
        }
        assert c.nrows == TALL

    def test_mxm_dimension_check(self):
        h = _tall()
        with pytest.raises(DimensionMismatchError):
            h.mxm_same_rows(Matrix.new(T.FP64, 9, 2),
                            PLUS_TIMES_SEMIRING[T.FP64])

    def test_select_sees_global_row_indices(self):
        h = _tall()
        upper = h.select(ROWLE, 5)            # keep rows <= 5 (global!)
        assert set(upper.to_dict()) == {(0, 0), (5, 2)}
        lower = h.select(ROWGT, 5)
        assert set(lower.to_dict()) == \
            {k for k in ENTRIES if k[0] > 5}

    def test_select_tril_with_global_rows(self):
        h = _tall()
        lo = h.select(TRIL, 0)                 # j <= i at global scale
        assert set(lo.to_dict()) == {k for k in ENTRIES if k[1] <= k[0]}

    def test_select_value_and_prune(self):
        h = _tall()
        big = h.select(VALUEGT[T.FP64], 3.5)
        assert big.to_dict() == {k: v for k, v in ENTRIES.items() if v > 3.5}
        # rows that lost all entries were pruned from storage
        assert big.nonempty_rows == 1

    def test_apply(self):
        h = _tall()
        neg = h.apply(AINV[T.FP64])
        assert neg.to_dict() == {k: -v for k, v in ENTRIES.items()}

    def test_reduce_rows_and_scalar(self):
        h = _tall()
        sums = h.reduce_rows(PLUS_MONOID[T.FP64])
        assert sums == {0: 1.0, 5: 2.0, TALL // 2: 3.0, TALL - 1: 9.0}
        assert h.reduce_scalar(PLUS_MONOID[T.FP64]) == \
            pytest.approx(sum(ENTRIES.values()))

    def test_transpose_to_ordinary_matrix(self):
        h = _tall()
        t = h.transpose_to_matrix()
        assert t.shape == (4, TALL)
        assert t.to_dict() == {(j, i): v for (i, j), v in ENTRIES.items()}

    def test_agrees_with_ordinary_matrix_when_small(self):
        """On small shapes the extension must equal the spec core."""
        rng = np.random.default_rng(3)
        d = {(int(i), int(j)): float(rng.integers(1, 9))
             for i in rng.integers(0, 30, 12)
             for j in rng.integers(0, 6, 1)}
        rows, cols = zip(*d.keys())
        h = HyperMatrix.from_triples(T.FP64, 30, 6, list(rows), list(cols),
                                     list(d.values()))
        m = Matrix.new(T.FP64, 30, 6)
        m.build(list(rows), list(cols), list(d.values()))
        u = Vector.new(T.FP64, 6)
        for j in range(6):
            u.set_element(float(j + 1), j)
        from repro.ops.mxm import mxv
        w = Vector.new(T.FP64, 30)
        mxv(w, None, None, PLUS_TIMES_SEMIRING[T.FP64], m, u)
        assert h.mxv(u, PLUS_TIMES_SEMIRING[T.FP64]) == \
            {int(k): v for k, v in w.to_dict().items()}

"""Unit battery for the perf gate's ratio checks and drift rule.

``tools/bench_gate.py`` is CI's arbiter of planner performance; its two
failure modes (per-run ratio regression vs the committed baseline, and
sustained monotonic drift across the persistent history) are pure
functions over dicts — tested here without running any benchmark.
"""

import importlib.util
import json
import subprocess
import sys
from pathlib import Path

ROOT = Path(__file__).resolve().parent.parent

_spec = importlib.util.spec_from_file_location(
    "bench_gate", ROOT / "tools" / "bench_gate.py"
)
bench_gate = importlib.util.module_from_spec(_spec)
_spec.loader.exec_module(bench_gate)


def _results(mm=0.5, cse=0.8, algo=0.1, serve=0.4, p99=0.5, recov=0.5,
             hyp=0.01, batch=0.6, warm=0.2, ingest=0.3, store=0.3):
    """A full fresh/baseline results dict with the given gated ratios
    (blocking_ms pinned to 100 so ratio == optimized ms / 100)."""
    return {
        "masked_mxm": {
            "blocking_ms": 100.0, "nb_pushed_ms": mm * 100.0,
            "masks_pushed": 5,
        },
        "dup_subexpression": {
            "blocking_ms": 100.0, "nb_cse_ms": cse * 100.0,
            "cse_reused": 5,
        },
        "repeated_algorithm": {
            "blocking_ms": 100.0, "nb_warm_ms": algo * 100.0,
            "algo_memo_hits": 10,
        },
        "serving": {
            "blocking_ms": 100.0, "nb_batched_ms": serve * 100.0,
            "serve_batched_queries": 24,
        },
        "serving_p99": {
            "blocking_ms": 100.0, "nb_batched_ms": p99 * 100.0,
            "serve_batches": 6,
        },
        "recovery": {
            "blocking_ms": 100.0, "nb_warm_ms": recov * 100.0,
            "restored_graphs": 1,
        },
        "hypersparse_mxv": {
            "blocking_ms": 100.0, "nb_dcsr_ms": hyp * 100.0,
            "format_dcsr_commits": 3,
        },
        "op_batching": {
            "blocking_ms": 100.0, "nb_batched_ms": batch * 100.0,
            "engine_batched_ops": 48,
        },
        "streaming_pagerank": {
            "blocking_ms": 100.0, "nb_warm_ms": warm * 100.0,
            "memo_delta_patches": 3,
        },
        "streaming_ingest": {
            "blocking_ms": 100.0, "nb_batched_ms": ingest * 100.0,
            "ingest_batches": 3,
        },
        "store": {
            "blocking_ms": 100.0, "nb_warm_ms": store * 100.0,
            "store_hits": 2,
        },
    }


def _history(series, metric="repeated_algorithm.nb_warm_ms"):
    return {"runs": [{metric: r} for r in series]}


class TestRatioGate:
    def test_within_tolerance_passes(self):
        assert bench_gate.check(_results(), _results(), 0.25) == []

    def test_regressed_ratio_fails(self):
        fresh = _results(algo=0.2)       # 2x the baseline ratio
        failures = bench_gate.check(fresh, _results(), 0.25)
        assert any("repeated_algorithm" in f for f in failures)

    def test_counter_not_fired_fails(self):
        fresh = _results()
        fresh["repeated_algorithm"]["algo_memo_hits"] = 0
        failures = bench_gate.check(fresh, _results(), 0.25)
        assert any("never fired" in f for f in failures)

    def test_fresh_ratios_covers_every_gated_metric(self):
        ratios = bench_gate.fresh_ratios(_results())
        assert set(ratios) == {
            f"{w}.{k}" for w, k, _ in bench_gate.GATED
        }


class TestDriftRule:
    def test_short_history_never_drifts(self):
        h = _history([0.1, 0.2, 0.4, 0.8])          # 4 < window
        assert bench_gate.check_drift(h, window=5, limit=0.10) == []

    def test_monotonic_creep_beyond_limit_fails(self):
        h = _history([0.10, 0.105, 0.108, 0.11, 0.115])   # +15%, no dip
        failures = bench_gate.check_drift(h, window=5, limit=0.10)
        assert len(failures) == 1
        assert "drifted" in failures[0]

    def test_any_dip_resets_the_rule(self):
        h = _history([0.10, 0.105, 0.09, 0.11, 0.115])    # one improvement
        assert bench_gate.check_drift(h, window=5, limit=0.10) == []

    def test_monotonic_but_within_limit_passes(self):
        h = _history([0.10, 0.101, 0.102, 0.103, 0.105])  # +5% only
        assert bench_gate.check_drift(h, window=5, limit=0.10) == []

    def test_flat_history_passes(self):
        h = _history([0.1] * 8)
        assert bench_gate.check_drift(h, window=5, limit=0.10) == []

    def test_only_the_window_tail_counts(self):
        # Ancient growth followed by a stable tail must not fire.
        h = _history([0.01, 0.02, 0.1, 0.1, 0.1, 0.1, 0.1])
        assert bench_gate.check_drift(h, window=5, limit=0.10) == []

    def test_append_history_accumulates_rounded_runs(self):
        h = {}
        bench_gate.append_history(h, {"m": 0.123456789})
        bench_gate.append_history(h, {"m": 0.2})
        assert h == {"runs": [{"m": 0.123457}, {"m": 0.2}]}


class TestCliHistory:
    def test_history_file_roundtrip_and_drift_exit(self, tmp_path):
        fresh = tmp_path / "fresh.json"
        base = tmp_path / "base.json"
        hist = tmp_path / "hist" / "ratios.json"
        base.write_text(json.dumps(_results()))
        # Hermetic serving inputs so a stray BENCH_serving.json in the
        # working directory can't leak into the subprocess runs.
        serving = tmp_path / "serving.json"
        serving.write_text(json.dumps(
            {k: _results()[k] for k in ("serving", "serving_p99")}
        ))
        hyper = tmp_path / "hypersparse.json"
        hyper.write_text(json.dumps(
            {k: _results()[k] for k in ("hypersparse_mxv", "op_batching")}
        ))
        streaming = tmp_path / "streaming.json"
        streaming.write_text(json.dumps(
            {k: _results()[k]
             for k in ("streaming_pagerank", "streaming_ingest")}
        ))
        store = tmp_path / "store.json"
        store.write_text(json.dumps({"store": _results()["store"]}))

        def run(algo):
            fresh.write_text(json.dumps(_results(algo=algo)))
            return subprocess.run(
                [sys.executable, str(ROOT / "tools" / "bench_gate.py"),
                 "--fresh", str(fresh), "--baseline", str(base),
                 "--fresh-serving", str(serving),
                 "--baseline-serving", str(serving),
                 "--fresh-hypersparse", str(hyper),
                 "--baseline-hypersparse", str(hyper),
                 "--fresh-streaming", str(streaming),
                 "--baseline-streaming", str(streaming),
                 "--fresh-store", str(store),
                 "--baseline-store", str(store),
                 "--tolerance", "10.0",          # per-run gate out of the way
                 "--append-history", str(hist)],
                capture_output=True, text=True,
            )

        # Four monotonically growing runs: not enough history to drift.
        for algo in (0.10, 0.105, 0.108, 0.11):
            assert run(algo).returncode == 0
        # The fifth completes a monotonic +15% window: drift failure.
        proc = run(0.115)
        assert proc.returncode == 1
        assert "drifted" in proc.stderr
        history = json.loads(hist.read_text())
        assert len(history["runs"]) == 5


class TestHistoryRobustness:
    """A clean first run must be a no-op, not a hard error: CI's cache
    restore can hand the gate an absent, empty, or arbitrarily mangled
    history file, and none of those should fail the gate before a
    single ratio is compared."""

    def _load(self, tmp_path, content=None):
        path = tmp_path / "ratios.json"
        if content is not None:
            path.write_text(content)
        return bench_gate._load_history(path)

    def test_absent_file_starts_fresh(self, tmp_path):
        assert self._load(tmp_path) == {}

    def test_empty_file_starts_fresh(self, tmp_path):
        assert self._load(tmp_path, "") == {}

    def test_json_null_starts_fresh(self, tmp_path):
        assert self._load(tmp_path, "null") == {}

    def test_json_array_starts_fresh(self, tmp_path):
        assert self._load(tmp_path, "[]") == {}

    def test_json_scalar_starts_fresh(self, tmp_path):
        assert self._load(tmp_path, "42") == {}

    def test_malformed_runs_starts_fresh(self, tmp_path):
        assert self._load(tmp_path, '{"runs": "nope"}') == {}
        assert self._load(tmp_path, '{"runs": [1, 2]}') == {}

    def test_well_formed_history_is_kept(self, tmp_path):
        h = {"runs": [{"m": 0.1}, {"m": 0.2}]}
        assert self._load(tmp_path, json.dumps(h)) == h

    def test_cli_survives_mangled_restored_history(self, tmp_path):
        """End to end: the gate exits 0 on a mangled history and leaves
        a well-formed single-run file behind (the CI first-run path)."""
        fresh = tmp_path / "fresh.json"
        base = tmp_path / "base.json"
        fresh.write_text(json.dumps(_results()))
        base.write_text(json.dumps(_results()))
        absent = tmp_path / "absent.json"
        for mangled in ("", "null", "[]", '{"runs": 7}'):
            hist = tmp_path / "ratios.json"
            hist.write_text(mangled)
            proc = subprocess.run(
                [sys.executable, str(ROOT / "tools" / "bench_gate.py"),
                 "--fresh", str(fresh), "--baseline", str(base),
                 "--fresh-serving", str(absent),
                 "--fresh-recovery", str(absent),
                 "--fresh-hypersparse", str(absent),
                 "--fresh-streaming", str(absent),
                 "--fresh-store", str(absent),
                 "--append-history", str(hist)],
                capture_output=True, text=True,
            )
            assert proc.returncode == 0, proc.stderr
            assert "starting fresh" in proc.stdout
            assert len(json.loads(hist.read_text())["runs"]) == 1

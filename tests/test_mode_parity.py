"""Mode transparency: BLOCKING and NONBLOCKING give identical results.

The spec's nonblocking mode is purely an execution-policy freedom — any
observable difference between modes (other than *when* errors surface)
is a bug.  This battery runs representative pipelines in both modes and
compares final states exactly, using the parametrized ``mode_ctx``
fixture.
"""

import numpy as np
import pytest

from repro.core import binaryop as B
from repro.core import monoid as M
from repro.core import semiring as S
from repro.core import types as T
from repro.core.context import Context, Mode
from repro.core.descriptor import DESC_RSC, DESC_S
from repro.core.matrix import Matrix
from repro.core.vector import Vector
from repro.ops.apply import apply
from repro.ops.assign import assign
from repro.ops.ewise import ewise_add, ewise_mult
from repro.ops.extract import extract
from repro.ops.mxm import mxm
from repro.ops.reduce import reduce_scalar
from repro.ops.select import select
from repro.ops.transpose import transpose


def _both_modes(pipeline):
    """Run `pipeline(ctx) -> comparable` in both modes; assert equal."""
    results = []
    for mode in (Mode.BLOCKING, Mode.NONBLOCKING):
        ctx = Context.new(mode, None, None)
        results.append(pipeline(ctx))
    assert results[0] == results[1]
    return results[0]


def _graph(ctx, seed=3, n=20):
    rng = np.random.default_rng(seed)
    d = rng.random((n, n)) * (rng.random((n, n)) < 0.2)
    r, c = np.nonzero(d)
    m = Matrix.new(T.FP64, n, n, ctx)
    m.build(r, c, d[r, c])
    return m, n


class TestModeParity:
    def test_mxm_chain(self):
        def pipeline(ctx):
            a, n = _graph(ctx)
            c = Matrix.new(T.FP64, n, n, ctx)
            mxm(c, None, None, S.PLUS_TIMES_SEMIRING[T.FP64], a, a)
            mxm(c, None, B.PLUS[T.FP64], S.PLUS_TIMES_SEMIRING[T.FP64], a, a)
            return sorted(c.to_dict().items())
        _both_modes(pipeline)

    def test_masked_pipeline(self):
        def pipeline(ctx):
            a, n = _graph(ctx, seed=7)
            from repro.core.indexunaryop import TRIL
            low = Matrix.new(T.FP64, n, n, ctx)
            select(low, None, None, TRIL, a, -1)
            c = Matrix.new(T.FP64, n, n, ctx)
            mxm(c, low, None, S.PLUS_TIMES_SEMIRING[T.FP64], low, low,
                desc=DESC_S)
            return reduce_scalar(M.PLUS_MONOID[T.FP64], c)
        _both_modes(pipeline)

    def test_element_mutation_interleaving(self):
        def pipeline(ctx):
            v = Vector.new(T.INT64, 16, ctx)
            for i in range(16):
                v.set_element(i * i, i)
            for i in range(0, 16, 2):
                v.remove_element(i)
            v.set_element(-1, 0)
            return sorted(v.to_dict().items())
        _both_modes(pipeline)

    def test_bfs_in_both_modes(self):
        def pipeline(ctx):
            rng = np.random.default_rng(11)
            n = 30
            d = rng.random((n, n)) < 0.1
            r, c = np.nonzero(d)
            a = Matrix.new(T.BOOL, n, n, ctx)
            a.build(r, c, np.ones(len(r), bool))
            levels = Vector.new(T.INT64, n, ctx)
            frontier = Vector.new(T.BOOL, n, ctx)
            frontier.set_element(True, 0)
            depth = 0
            from repro.ops.mxm import vxm
            from repro.core.semiring import LOR_LAND_SEMIRING_BOOL
            while frontier.nvals():
                assign(levels, frontier, None, depth, None, desc=DESC_S)
                vxm(frontier, levels, None, LOR_LAND_SEMIRING_BOOL,
                    frontier, a, desc=DESC_RSC)
                depth += 1
            return sorted(levels.to_dict().items())
        _both_modes(pipeline)

    def test_extract_assign_roundtrip(self):
        def pipeline(ctx):
            a, n = _graph(ctx, seed=5)
            sub = Matrix.new(T.FP64, 5, 5, ctx)
            extract(sub, None, None, a, list(range(5)), list(range(5)))
            c = Matrix.new(T.FP64, n, n, ctx)
            assign(c, None, None, sub, list(range(5)), list(range(5)))
            return sorted(c.to_dict().items())
        _both_modes(pipeline)

    def test_apply_transpose_reduce(self):
        def pipeline(ctx):
            a, n = _graph(ctx, seed=9)
            at = Matrix.new(T.FP64, n, n, ctx)
            transpose(at, None, None, a)
            doubled = Matrix.new(T.FP64, n, n, ctx)
            apply(doubled, None, None, B.TIMES[T.FP64], at, 2.0)
            return reduce_scalar(M.PLUS_MONOID[T.FP64], doubled)
        _both_modes(pipeline)

    def test_error_timing_differs_but_state_agrees(self):
        """The one sanctioned difference: *when* the error surfaces."""
        from repro.core.errors import DuplicateIndexError

        # Blocking: raises at build.
        bl = Context.new(Mode.BLOCKING, None, None)
        m1 = Matrix.new(T.FP64, 2, 2, bl)
        with pytest.raises(DuplicateIndexError):
            m1.build([0, 0], [0, 0], [1.0, 2.0], dup=None)

        # Nonblocking: raises at the forcing call.
        nb = Context.new(Mode.NONBLOCKING, None, None)
        m2 = Matrix.new(T.FP64, 2, 2, nb)
        m2.build([0, 0], [0, 0], [1.0, 2.0], dup=None)
        with pytest.raises(DuplicateIndexError):
            m2.wait()

        # Final state agrees: both empty, both with error text.
        assert m1.nvals() == m2.nvals() == 0
        assert "duplicate" in m1.error() and "duplicate" in m2.error()

    def test_mode_ctx_fixture(self, mode_ctx):
        """The shared fixture exposes both modes to any battery."""
        v = Vector.new(T.FP64, 3, mode_ctx)
        v.set_element(1.0, 0)
        expected_materialized = mode_ctx.mode == Mode.BLOCKING
        assert v.is_materialized == expected_materialized
        assert v.extract_element(0) == 1.0


# ---------------------------------------------------------------------------
# Property-based parity: random op chains, both modes, exact agreement.
# ---------------------------------------------------------------------------

from hypothesis import HealthCheck, given, settings  # noqa: E402
from hypothesis import strategies as st  # noqa: E402

from repro.core.context import WaitMode  # noqa: E402
from repro.core.errors import GraphBLASError  # noqa: E402
from repro.core.indexunaryop import TRIL, TRIU, VALUEGT  # noqa: E402
from repro.core.unaryop import AINV, UnaryOp  # noqa: E402

_N = 8

#: Op menu for generated chains.  Each entry takes (c, a, ctx, p) where
#: ``p`` is a small integer parameter from the strategy.
_OP_NAMES = (
    "apply_ainv",
    "apply_times",
    "select_tril",
    "select_triu",
    "select_valuegt",
    "transpose",
    "ewise_mult",
    "ewise_add",
    "mxm",
    "mxm_masked_rsc",
    "apply_masked_rsc",
    "dup_mxm_sum",
    "set_element",
    "remove_element",
    "clear",
    "assign_scalar",
    "wait_complete",
    "wait_materialize",
    "read_nvals",
)

_chain = st.lists(
    st.tuples(st.sampled_from(_OP_NAMES), st.integers(0, _N * _N - 1)),
    min_size=1, max_size=10,
)


def _apply_op(name, p, c, a, ctx):
    if name == "apply_ainv":
        apply(c, None, None, AINV[T.FP64], c)
    elif name == "apply_times":
        apply(c, None, None, B.TIMES[T.FP64], c, float((p % 5) - 2))
    elif name == "select_tril":
        select(c, None, None, TRIL, c, (p % 5) - 2)
    elif name == "select_triu":
        select(c, None, None, TRIU, c, (p % 5) - 2)
    elif name == "select_valuegt":
        select(c, None, None, VALUEGT[T.FP64], c, (p % 7) / 7.0 - 0.5)
    elif name == "transpose":
        transpose(c, None, None, c)
    elif name == "ewise_mult":
        ewise_mult(c, None, None, B.TIMES[T.FP64], c, a)
    elif name == "ewise_add":
        ewise_add(c, None, None, B.PLUS[T.FP64], c, a)
    elif name == "mxm":
        mxm(c, None, None, S.PLUS_TIMES_SEMIRING[T.FP64], c, a)
    elif name == "mxm_masked_rsc":
        # Masked in-place product: the planner's mask-pushdown shape.
        mxm(c, a, None, S.PLUS_TIMES_SEMIRING[T.FP64], c, a, desc=DESC_RSC)
    elif name == "apply_masked_rsc":
        # Masked in-place map right after whatever produced c — when the
        # producer is an unreferenced mxm this pushes; otherwise the
        # legality guards must refuse without changing the result.
        apply(c, a, None, AINV[T.FP64], c, DESC_RSC)
    elif name == "dup_mxm_sum":
        # Textually repeated subexpression: hash-cons CSE shares one
        # kernel between t1 and t2 in nonblocking mode.
        t1 = Matrix.new(T.FP64, _N, _N, ctx)
        mxm(t1, None, None, S.PLUS_TIMES_SEMIRING[T.FP64], c, a)
        t2 = Matrix.new(T.FP64, _N, _N, ctx)
        mxm(t2, None, None, S.PLUS_TIMES_SEMIRING[T.FP64], c, a)
        ewise_add(c, None, None, B.PLUS[T.FP64], t1, t2)
    elif name == "set_element":
        c.set_element(float(p), p // _N, p % _N)
    elif name == "remove_element":
        c.remove_element(p // _N, p % _N)
    elif name == "clear":
        c.clear()
    elif name == "assign_scalar":
        assign(c, None, None, float(p), [p // _N], [p % _N])
    elif name == "wait_complete":
        c.wait(WaitMode.COMPLETE)
    elif name == "wait_materialize":
        c.wait(WaitMode.MATERIALIZE)
    elif name == "read_nvals":
        c.nvals()
    else:  # pragma: no cover - menu is exhaustive
        raise AssertionError(name)


def _run_chain(ctx, ops):
    a, _ = _graph(ctx, seed=13, n=_N)
    c = Matrix.new(T.FP64, _N, _N, ctx)
    mxm(c, None, None, S.PLUS_TIMES_SEMIRING[T.FP64], a, a)
    for name, p in ops:
        _apply_op(name, p, c, a, ctx)
    c.wait(WaitMode.MATERIALIZE)
    return sorted(c.to_dict().items())


class TestModeParityProperties:
    @settings(max_examples=40, deadline=None,
              suppress_health_check=[HealthCheck.function_scoped_fixture])
    @given(ops=_chain)
    def test_random_chain_parity(self, ops):
        """Any generated op chain gives bit-identical results in both
        modes — deferral, fusion, and elision are unobservable."""
        results = [_run_chain(Context.new(mode, None, None), ops)
                   for mode in (Mode.BLOCKING, Mode.NONBLOCKING)]
        assert results[0] == results[1]

    @settings(max_examples=20, deadline=None,
              suppress_health_check=[HealthCheck.function_scoped_fixture])
    @given(ops=_chain)
    def test_error_parity(self, ops):
        """A failing op at the end of any chain leaves the same error
        text and the same final state in both modes; only the raise
        site differs (§V)."""

        def boom(x):
            raise ValueError("deliberate failure")

        bad = UnaryOp.new(boom, T.FP64, T.FP64, name="boom")

        outcomes = []
        for mode in (Mode.BLOCKING, Mode.NONBLOCKING):
            ctx = Context.new(mode, None, None)
            a, _ = _graph(ctx, seed=13, n=_N)
            c = Matrix.new(T.FP64, _N, _N, ctx)
            mxm(c, None, None, S.PLUS_TIMES_SEMIRING[T.FP64], a, a)
            for name, p in ops:
                _apply_op(name, p, c, a, ctx)
            err = None
            try:
                apply(c, None, None, bad, c)
                c.wait(WaitMode.MATERIALIZE)
            except GraphBLASError as exc:
                err = type(exc).__name__
            outcomes.append((err, c.error(), sorted(c.to_dict().items())))
        assert outcomes[0] == outcomes[1]

    @settings(max_examples=15, deadline=None,
              suppress_health_check=[HealthCheck.function_scoped_fixture])
    @given(ops=_chain, seed=st.integers(0, 2**20))
    def test_chaos_chain_parity(self, ops, seed):
        """Low-probability transient faults at every kernel — plus
        non-transient faults at every planner pass boundary — must be
        absorbed without changing any chain's result: retries recover
        the kernels, and a faulted pass is skipped, degrading the plan,
        never the answer.

        ``max_hits`` caps kernel injections at the retry budget:
        Hypothesis *searches* the seed space, so without a cap it
        eventually finds a seed whose keyed hash fires on every retry
        of one kernel and the fault legitimately surfaces (a different
        §V contract than the absorption this test pins).
        """
        from repro.faults.plane import PLANE, FaultSpec
        from repro.internals import config

        oracle = _run_chain(Context.new(Mode.BLOCKING, None, None), ops)
        retry_budget = int(config.get_option("RETRY_MAX"))
        PLANE.configure(
            seed,
            [FaultSpec(site="kernel.*", rate=0.05, transient=True,
                       max_hits=retry_budget),
             FaultSpec(site="planner.*", rate=0.25)],
            armed_only=True,
        )
        try:
            got = _run_chain(Context.new(Mode.NONBLOCKING, None, None), ops)
        finally:
            PLANE.disable()
        assert got == oracle

"""Sparse DNN inference (Graph Challenge workload) battery."""

import numpy as np
import pytest

from repro.algorithms import random_sparse_network, sparse_dnn_inference
from repro.core import types as T
from repro.core.errors import InvalidValueError
from repro.core.matrix import Matrix

NEURONS, BATCH = 128, 16


def _input_batch(seed=0, per_row=12):
    rng = np.random.default_rng(seed)
    y0 = Matrix.new(T.FP64, BATCH, NEURONS)
    rows = np.repeat(np.arange(BATCH), per_row)
    cols = rng.integers(0, NEURONS, BATCH * per_row)
    from repro.core.binaryop import PLUS
    y0.build(rows, cols, np.ones(BATCH * per_row), PLUS[T.FP64])
    y0.wait()
    return y0


def _dense_reference(y0, weights, biases, cap):
    """NumPy model of the same semantics.

    With a strictly negative bias the sparse convention (bias applied
    to stored z entries only) and the dense convention agree: z = 0
    positions get ``bias < 0`` and die in the ReLU either way.
    """
    y = y0.to_dense()
    for w, b in zip(weights, biases):
        z = y @ w.to_dense() + b
        z = np.where(y @ (w.to_dense() != 0).astype(float) > 0, z, 0.0)
        z = np.maximum(z, 0.0)
        # select keeps strictly-positive entries
        z = np.where(z > 0, z, 0.0)
        if cap is not None:
            z = np.minimum(z, cap)
        y = z
    return y


class TestSparseDnn:
    def test_matches_dense_reference(self):
        weights, biases = random_sparse_network(NEURONS, 4, seed=3)
        y0 = _input_batch()
        out = sparse_dnn_inference(y0, weights, biases, cap=1.0)
        ref = _dense_reference(y0, weights, biases, cap=1.0)
        assert np.allclose(out.to_dense(), ref)

    def test_activations_bounded_and_positive(self):
        weights, biases = random_sparse_network(NEURONS, 6, seed=1)
        out = sparse_dnn_inference(_input_batch(), weights, biases, cap=1.0)
        _, _, vals = out.extract_tuples()
        assert len(vals) > 0
        assert (vals > 0).all() and (vals <= 1.0).all()

    def test_deterministic(self):
        weights, biases = random_sparse_network(NEURONS, 5, seed=7)
        a = sparse_dnn_inference(_input_batch(), weights, biases)
        b = sparse_dnn_inference(_input_batch(), weights, biases)
        assert a.to_dict() == b.to_dict()

    def test_relu_is_a_select(self):
        """A layer with all-negative products produces an empty batch."""
        w = Matrix.new(T.FP64, NEURONS, NEURONS)
        w.build(np.arange(NEURONS), np.arange(NEURONS),
                np.full(NEURONS, -1.0))
        out = sparse_dnn_inference(_input_batch(), [w], [0.0])
        assert out.nvals() == 0

    def test_cap_none_disables_saturation(self):
        w = Matrix.new(T.FP64, NEURONS, NEURONS)
        w.build(np.arange(NEURONS), np.arange(NEURONS),
                np.full(NEURONS, 100.0))
        out = sparse_dnn_inference(_input_batch(), [w], [0.0], cap=None)
        _, _, vals = out.extract_tuples()
        assert vals.max() >= 100.0   # duplicate input hits can stack to 200
        capped = sparse_dnn_inference(_input_batch(), [w], [0.0], cap=50.0)
        assert capped.extract_tuples()[2].max() == 50.0

    def test_validation(self):
        weights, biases = random_sparse_network(NEURONS, 2)
        with pytest.raises(InvalidValueError):
            sparse_dnn_inference(_input_batch(), weights, biases[:1])
        bad = Matrix.new(T.FP64, 3, 3)
        with pytest.raises(InvalidValueError):
            sparse_dnn_inference(_input_batch(), [bad], [0.0])
        with pytest.raises(InvalidValueError):
            random_sparse_network(4, 1, fanin=99)

    def test_batch_rows_independent(self):
        """Each batch row's activations depend only on its own inputs."""
        weights, biases = random_sparse_network(NEURONS, 3, seed=5)
        full = sparse_dnn_inference(_input_batch(seed=2), weights, biases)
        # run a single row through alone
        y0 = _input_batch(seed=2)
        row0 = Matrix.new(T.FP64, 1, NEURONS)
        rows, cols, vals = y0.extract_tuples()
        keep = rows == 0
        row0.build(rows[keep], cols[keep], vals[keep])
        single = sparse_dnn_inference(row0, weights, biases)
        full_row0 = {j: v for (i, j), v in full.to_dict().items() if i == 0}
        single_row = {j: v for (i, j), v in single.to_dict().items()}
        assert full_row0 == single_row

"""Multi-source BFS battery: batched frontiers equal single-source runs."""

import networkx as nx
import numpy as np
import pytest

from repro.algorithms import all_pairs_levels, bfs_levels, msbfs_levels
from repro.core import types as T
from repro.core.errors import InvalidIndexError, InvalidValueError
from repro.generators import erdos_renyi, grid_2d, path_graph, to_matrix


def _graph(n=35, p=0.1, seed=4):
    _, rows, cols, _ = erdos_renyi(n, p, seed=seed)
    keep = rows != cols
    rows, cols = rows[keep], cols[keep]
    return to_matrix(n, rows, cols, np.ones(len(rows), bool), T.BOOL)


class TestMsbfs:
    @pytest.mark.parametrize("seed", [1, 8], ids=lambda s: f"seed{s}")
    def test_each_row_matches_single_source(self, seed):
        A = _graph(seed=seed)
        sources = [0, 3, 9, 20]
        lv = msbfs_levels(A, sources)
        assert lv.shape == (len(sources), A.nrows)
        per_row: dict[int, dict] = {r: {} for r in range(len(sources))}
        for (r, v), d in lv.to_dict().items():
            per_row[r][v] = d
        for row, s in enumerate(sources):
            assert per_row[row] == bfs_levels(A, s).to_dict()

    def test_duplicate_sources_give_identical_rows(self):
        A = _graph()
        lv = msbfs_levels(A, [1, 1])
        rows: dict[int, dict] = {0: {}, 1: {}}
        for (r, v), d in lv.to_dict().items():
            rows[int(r)][int(v)] = int(d)
        assert rows[0] == rows[1]

    def test_single_source_degenerate(self):
        n, rows, cols, vals = path_graph(6)
        A = to_matrix(n, rows, cols, vals, T.BOOL)
        lv = msbfs_levels(A, [0])
        assert {j: int(v) for (i, j), v in lv.to_dict().items()} == \
            {j: j for j in range(6)}

    def test_validation(self):
        A = _graph()
        with pytest.raises(InvalidValueError):
            msbfs_levels(A, [])
        with pytest.raises(InvalidIndexError):
            msbfs_levels(A, [10_000])

    def test_unreachable_vertices_absent(self):
        A = to_matrix(5, np.array([0]), np.array([1]), np.ones(1, bool),
                      T.BOOL)
        lv = msbfs_levels(A, [0, 4])
        d = lv.to_dict()
        assert d == {(0, 0): 0, (0, 1): 1, (1, 4): 0}


class TestAllPairs:
    def test_matches_networkx_all_pairs(self):
        A = _graph(n=25, seed=2)
        rows, cols, _ = A.extract_tuples()
        g = nx.DiGraph()
        g.add_nodes_from(range(25))
        g.add_edges_from(zip(rows.tolist(), cols.tolist()))
        ours = all_pairs_levels(A, batch=7)
        got: dict[int, dict] = {}
        for (s, v), d in ours.to_dict().items():
            got.setdefault(int(s), {})[int(v)] = int(d)
        for s, lengths in nx.all_pairs_shortest_path_length(g):
            assert got.get(s, {}) == dict(lengths)

    def test_batch_size_invariance(self):
        A = _graph(n=20, seed=5)
        a1 = all_pairs_levels(A, batch=1)
        a7 = all_pairs_levels(A, batch=7)
        a99 = all_pairs_levels(A, batch=99)
        assert a1.to_dict() == a7.to_dict() == a99.to_dict()

    def test_batch_validation(self):
        with pytest.raises(InvalidValueError):
            all_pairs_levels(_graph(), batch=0)

    def test_grid_eccentricity(self):
        n, rows, cols, _ = grid_2d(5)
        A = to_matrix(n, rows, cols, np.ones(len(rows), bool), T.BOOL)
        ap = all_pairs_levels(A)
        diam = max(int(v) for v in ap.to_dict().values())
        assert diam == 8   # grid diameter = 2*(side-1)

"""Experiment T2 conformance: every Table II row accepts a GrB_Scalar.

Table II lists the methods "to be extended with GrB_Scalar variants in
GraphBLAS 2.0 and beyond"; this battery calls each row with an actual
``Scalar`` argument and checks the §VI semantics.
"""


from repro.core import binaryop as B
from repro.core import monoid as M
from repro.core import types as T
from repro.core.indexunaryop import VALUEGT
from repro.core.matrix import Matrix
from repro.core.monoid import Monoid
from repro.core.scalar import Scalar
from repro.core.vector import Vector
from repro.ops.apply import apply
from repro.ops.assign import assign
from repro.ops.reduce import reduce
from repro.ops.select import select

from .helpers import mat_from_dict, vec_from_dict


def _scalar(value, t=T.FP64):
    s = Scalar.new(t)
    s.set_element(value)
    return s


class TestTableTwoRows:
    def test_monoid_new_scalar(self):
        """GrB_Monoid_new(GrB_Monoid*, GrB_BinaryOp, GrB_Scalar)"""
        m = Monoid.new(B.PLUS[T.FP64], _scalar(0.0))
        assert m.identity == 0.0

    def test_vector_set_element_scalar(self):
        """GrB_Vector_setElement(GrB_Vector, GrB_Scalar, GrB_Index)"""
        v = Vector.new(T.FP64, 3)
        v.set_element(_scalar(2.5), 1)
        assert v.extract_element(1) == 2.5

    def test_vector_extract_element_scalar(self):
        """GrB_Vector_extractElement(GrB_Scalar, GrB_Vector, GrB_Index)"""
        v = vec_from_dict({1: 4.0}, 3)
        out = Scalar.new(T.FP64)
        v.extract_element(1, out)
        assert out.extract_element() == 4.0

    def test_matrix_set_element_scalar(self):
        """GrB_Matrix_setElement(GrB_Matrix, GrB_Scalar, i, j)"""
        m = Matrix.new(T.FP64, 2, 2)
        m.set_element(_scalar(7.0), 1, 0)
        assert m.extract_element(1, 0) == 7.0

    def test_matrix_extract_element_scalar(self):
        """GrB_Matrix_extractElement(GrB_Scalar, GrB_Matrix, i, j)"""
        m = mat_from_dict({(0, 1): 3.0}, 2, 2)
        out = Scalar.new(T.FP64)
        m.extract_element(0, 1, out)
        assert out.extract_element() == 3.0

    def test_vector_assign_scalar(self):
        """GrB_assign(Vector, ..., GrB_Scalar, I, ...)"""
        w = Vector.new(T.FP64, 4)
        assign(w, None, None, _scalar(1.5), [0, 2])
        assert w.to_dict() == {0: 1.5, 2: 1.5}

    def test_matrix_assign_scalar(self):
        """GrB_assign(Matrix, ..., GrB_Scalar, I, J, ...)"""
        c = Matrix.new(T.FP64, 3, 3)
        assign(c, None, None, _scalar(2.0), [0], [1, 2])
        assert c.to_dict() == {(0, 1): 2.0, (0, 2): 2.0}

    def test_vector_apply_bind1st_scalar(self):
        """GrB_apply(Vector, ..., BinaryOp, GrB_Scalar, Vector, ...)"""
        u = vec_from_dict({0: 4.0}, 2)
        w = Vector.new(T.FP64, 2)
        apply(w, None, None, B.MINUS[T.FP64], _scalar(10.0), u)
        assert w.extract_element(0) == 6.0

    def test_vector_apply_bind2nd_scalar(self):
        """GrB_apply(Vector, ..., BinaryOp, Vector, GrB_Scalar, ...)"""
        u = vec_from_dict({0: 4.0}, 2)
        w = Vector.new(T.FP64, 2)
        apply(w, None, None, B.MINUS[T.FP64], u, _scalar(1.0))
        assert w.extract_element(0) == 3.0

    def test_matrix_apply_bind1st_scalar(self):
        a = mat_from_dict({(0, 0): 4.0}, 2, 2)
        c = Matrix.new(T.FP64, 2, 2)
        apply(c, None, None, B.DIV[T.FP64], _scalar(8.0), a)
        assert c.extract_element(0, 0) == 2.0

    def test_matrix_apply_bind2nd_scalar(self):
        a = mat_from_dict({(0, 0): 4.0}, 2, 2)
        c = Matrix.new(T.FP64, 2, 2)
        apply(c, None, None, B.DIV[T.FP64], a, _scalar(2.0))
        assert c.extract_element(0, 0) == 2.0

    def test_vector_apply_indexop_scalar(self):
        """GrB_apply(Vector, ..., IndexUnaryOp, Vector, GrB_Scalar, ...)"""
        from repro.core.indexunaryop import ROWINDEX
        u = vec_from_dict({2: 9.0}, 4)
        w = Vector.new(T.INT64, 4)
        apply(w, None, None, ROWINDEX[T.INT64], u, _scalar(5, T.INT64))
        assert w.extract_element(2) == 7

    def test_matrix_apply_indexop_scalar(self):
        from repro.core.indexunaryop import COLINDEX
        a = mat_from_dict({(0, 2): 9.0}, 3, 3)
        c = Matrix.new(T.INT64, 3, 3)
        apply(c, None, None, COLINDEX[T.INT64], a, _scalar(1, T.INT64))
        assert c.extract_element(0, 2) == 3

    def test_vector_select_scalar(self):
        """GrB_select(Vector, ..., IndexUnaryOp, Vector, GrB_Scalar, ...)"""
        u = vec_from_dict({0: 1.0, 1: 5.0}, 2)
        w = Vector.new(T.FP64, 2)
        select(w, None, None, VALUEGT[T.FP64], u, _scalar(2.0))
        assert w.to_dict() == {1: 5.0}

    def test_matrix_select_scalar(self):
        a = mat_from_dict({(0, 0): 1.0, (1, 1): 5.0}, 2, 2)
        c = Matrix.new(T.FP64, 2, 2)
        select(c, None, None, VALUEGT[T.FP64], a, _scalar(2.0))
        assert c.to_dict() == {(1, 1): 5.0}

    def test_reduce_scalar_monoid_vector(self):
        """GrB_reduce(GrB_Scalar, accum, Monoid, Vector, desc)"""
        u = vec_from_dict({0: 1.0, 1: 2.0}, 3)
        s = Scalar.new(T.FP64)
        reduce(s, None, M.PLUS_MONOID[T.FP64], u)
        assert s.extract_element() == 3.0

    def test_reduce_scalar_binop_vector(self):
        """GrB_reduce(GrB_Scalar, accum, BinaryOp, Vector, desc)"""
        u = vec_from_dict({0: 1.0, 1: 2.0}, 3)
        s = Scalar.new(T.FP64)
        reduce(s, None, B.MAX[T.FP64], u)
        assert s.extract_element() == 2.0

    def test_reduce_scalar_monoid_matrix(self):
        a = mat_from_dict({(0, 0): 1.0, (1, 1): 2.0}, 2, 2)
        s = Scalar.new(T.FP64)
        reduce(s, None, M.PLUS_MONOID[T.FP64], a)
        assert s.extract_element() == 3.0

    def test_reduce_scalar_binop_matrix(self):
        a = mat_from_dict({(0, 0): 1.0, (1, 1): 2.0}, 2, 2)
        s = Scalar.new(T.FP64)
        reduce(s, None, B.MIN[T.FP64], a)
        assert s.extract_element() == 1.0

"""Compat battery: 1.X idioms equal their 2.0 counterparts (the §II claim
is about *cost*, not results — results must match exactly)."""

import numpy as np
import pytest

from repro import compat
from repro.compat.migration import reduce_scalar_1x, wait_all_1x
from repro.core import indexunaryop as IU
from repro.core import monoid as M
from repro.core import types as T
from repro.core.context import Context, Mode
from repro.core.matrix import Matrix
from repro.generators import rmat, to_matrix
from repro.ops.apply import apply
from repro.ops.select import select

from .helpers import mat_to_dict


@pytest.fixture
def graph():
    n, rows, cols, vals = rmat(5, 4, seed=3)
    return to_matrix(n, rows, cols, vals, T.FP64, no_self_loops=True)


class TestPackedIdioms:
    def test_pack_roundtrip(self, graph):
        packed = compat.pack_index_matrix(graph)
        assert packed.nvals() == graph.nvals()
        back = compat.unpack_index_matrix(packed, T.FP64)
        assert np.allclose(back.to_dense(), graph.to_dense())

    def test_packed_values_carry_indices(self, graph):
        packed = compat.pack_index_matrix(graph)
        for (i, j), (pi, pj, v) in packed.to_dict().items():
            assert (pi, pj) == (i, j)

    def test_select_triu_matches_20(self, graph):
        s = 0.5
        packed = compat.pack_index_matrix(graph)
        old = compat.select_triu_value_packed_1x(packed, s, T.FP64)
        new_triu = Matrix.new(T.FP64, graph.nrows, graph.ncols)
        select(new_triu, None, None, IU.TRIU, graph, 1)
        new = Matrix.new(T.FP64, graph.nrows, graph.ncols)
        select(new, None, None, IU.VALUEGT[T.FP64], new_triu, s)
        assert mat_to_dict(old) == mat_to_dict(new)

    def test_apply_colindex_matches_20(self, graph):
        packed = compat.pack_index_matrix(graph)
        old = compat.apply_colindex_packed_1x(packed, 1)
        new = Matrix.new(T.INT64, graph.nrows, graph.ncols)
        apply(new, None, None, IU.COLINDEX[T.INT64], graph, 1)
        assert mat_to_dict(old) == mat_to_dict(new)

    def test_apply_rowindex_matches_20(self, graph):
        packed = compat.pack_index_matrix(graph)
        old = compat.apply_rowindex_packed_1x(packed, 0)
        new = Matrix.new(T.INT64, graph.nrows, graph.ncols)
        apply(new, None, None, IU.ROWINDEX[T.INT64], graph, 0)
        assert mat_to_dict(old) == mat_to_dict(new)

    def test_extract_filter_build_matches_select(self, graph):
        old = compat.extract_filter_build_select(
            graph, lambda v, i, j: (j <= i) & (v > 0.2)
        )
        mid = Matrix.new(T.FP64, graph.nrows, graph.ncols)
        select(mid, None, None, IU.TRIL, graph, 0)
        new = Matrix.new(T.FP64, graph.nrows, graph.ncols)
        select(new, None, None, IU.VALUEGT[T.FP64], mid, 0.2)
        assert mat_to_dict(old) == mat_to_dict(new)


class TestMigrationShims:
    def test_incompatibility_list_covers_paper_sections(self):
        areas = {b.area for b in compat.incompatibilities()}
        assert {"wait", "error model", "build dup", "enumerations",
                "reduce to scalar", "constructors", "multithreading"} <= areas
        sections = {b.paper_section for b in compat.incompatibilities()}
        assert any("IX" in s for s in sections)
        assert any("IV" in s for s in sections)

    def test_wait_all_shim(self):
        ctx = Context.new(Mode.NONBLOCKING, None, None)
        ms = [Matrix.new(T.FP64, 2, 2, ctx) for _ in range(3)]
        for k, m in enumerate(ms):
            m.set_element(float(k), 0, 0)
        assert not any(m.is_materialized for m in ms)
        wait_all_1x(ms)
        assert all(m.is_materialized for m in ms)

    def test_reduce_scalar_1x_identity_on_empty(self):
        empty = Matrix.new(T.FP64, 2, 2)
        assert reduce_scalar_1x(M.PLUS_MONOID[T.FP64], empty) == 0.0
        assert reduce_scalar_1x(M.MIN_MONOID[T.FP64], empty) == np.inf

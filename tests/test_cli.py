"""The ``python -m repro`` CLI."""

import io

import pytest

from repro.cli import build_parser, main

from .helpers import mat_from_dict


def _run(argv) -> tuple[int, str]:
    out = io.StringIO()
    code = main(argv, out=out)
    return code, out.getvalue()


class TestCli:
    def test_info(self):
        code, text = _run(["info"])
        assert code == 0
        assert "GraphBLAS C API 2.0" in text
        assert "predefined types:      11" in text
        assert "index-unary families:  17" in text

    def test_selftest(self):
        code, text = _run(["selftest"])
        assert code == 0
        assert "5/5" in text

    def test_trace_out_writes_chrome_trace_json(self, tmp_path):
        import json

        path = tmp_path / "trace.json"
        code, text = _run(["--trace-out", str(path), "selftest"])
        assert code == 0
        assert f"trace events to {path}" in text
        doc = json.loads(path.read_text())
        assert isinstance(doc["traceEvents"], list)
        phases = {e["ph"] for e in doc["traceEvents"]}
        assert "X" in phases  # at least one complete event (a kernel)

    @pytest.mark.parametrize(
        "name", ["bfs", "triangles", "pagerank", "sssp", "components"]
    )
    def test_demos(self, name):
        code, text = _run(["demo", name, "--scale", "6", "--seed", "3"])
        assert code == 0
        assert name in text

    def test_mm_info(self, tmp_path):
        from repro.io import mmwrite
        m = mat_from_dict({(0, 0): 1.5, (2, 1): 2.0, (1, 1): -3.0}, 3, 3)
        path = tmp_path / "g.mtx"
        mmwrite(path, m)
        code, text = _run(["mm-info", str(path)])
        assert code == 0
        assert "3 x 3, nvals=3" in text
        assert "self-loops: 2" in text

    def test_serve(self):
        code, text = _run(["serve", "--scale", "6", "--tenants", "2",
                           "--queries", "8"])
        assert code == 0
        assert "served 8/8 queries" in text
        # Per-tenant stat lines from the hierarchical contexts.
        assert "tenant-0" in text and "tenant-1" in text

    def test_serve_checkpoint_cold_then_warm(self, tmp_path):
        ckpt = str(tmp_path / "ckpt")
        code, text = _run(["serve", "--scale", "6", "--tenants", "2",
                           "--queries", "8", "--checkpoint-dir", ckpt,
                           "--deadline-ms", "30000"])
        assert code == 0
        assert "checkpoint gen 1" in text
        # Second run restores from the checkpoint instead of rebuilding.
        code, text = _run(["serve", "--scale", "6", "--tenants", "2",
                           "--queries", "8", "--checkpoint-dir", ckpt])
        assert code == 0
        assert "warm restart" in text
        assert "served 8/8 queries" in text
        assert "checkpoint gen 2" in text

    def test_parser_rejects_unknown_demo(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["demo", "nonsense"])

    def test_parser_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

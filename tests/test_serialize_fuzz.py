"""Serialization fuzzing: mutated blobs never crash, never corrupt.

Security/robustness property of the §VII-B opaque stream: any byte
mutation either still deserializes to a *valid* object (checksum
collision — astronomically unlikely but defined) or raises
``InvalidObjectError``.  It must never raise anything else, never
segfault-style explode, and never return an object that fails its own
invariant check.
"""

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core.errors import InvalidObjectError
from repro.formats import (
    matrix_deserialize,
    matrix_serialize,
    vector_deserialize,
    vector_serialize,
)
from repro.validate import check_object

from .helpers import mat_from_dict, vec_from_dict

SETTINGS = settings(
    max_examples=80,
    deadline=None,
    suppress_health_check=[HealthCheck.function_scoped_fixture],
)

A_D = {(0, 0): 1.5, (1, 2): -2.25, (3, 1): 4.0, (3, 3): 0.5}


def _blob() -> bytes:
    return matrix_serialize(mat_from_dict(A_D, 4, 4))


class TestMutationFuzz:
    @SETTINGS
    @given(data=st.data())
    def test_single_byte_flip(self, data):
        blob = bytearray(_blob())
        pos = data.draw(st.integers(0, len(blob) - 1))
        bit = data.draw(st.integers(0, 7))
        blob[pos] ^= 1 << bit
        try:
            out = matrix_deserialize(bytes(blob))
        except InvalidObjectError:
            return
        check_object(out)   # if accepted, it must be internally valid

    @SETTINGS
    @given(cut=st.integers(0, 200))
    def test_truncation(self, cut):
        blob = _blob()
        prefix = blob[: min(cut, len(blob) - 1)]
        with pytest.raises(InvalidObjectError):
            matrix_deserialize(prefix)

    @SETTINGS
    @given(junk=st.binary(min_size=0, max_size=300))
    def test_arbitrary_bytes(self, junk):
        try:
            out = matrix_deserialize(junk)
        except InvalidObjectError:
            return
        check_object(out)

    @SETTINGS
    @given(extra=st.binary(min_size=1, max_size=50))
    def test_trailing_garbage_detected(self, extra):
        """Appending bytes breaks the checksum: detected."""
        blob = _blob() + extra
        with pytest.raises(InvalidObjectError):
            matrix_deserialize(blob)

    @SETTINGS
    @given(data=st.data())
    def test_vector_blob_mutations(self, data):
        blob = bytearray(vector_serialize(vec_from_dict({1: 2.5, 4: 7.0}, 8)))
        pos = data.draw(st.integers(0, len(blob) - 1))
        blob[pos] ^= data.draw(st.integers(1, 255))
        try:
            out = vector_deserialize(bytes(blob))
        except InvalidObjectError:
            return
        check_object(out)

    def test_cross_kind_confusion_rejected(self):
        v_blob = vector_serialize(vec_from_dict({0: 1.0}, 2))
        m_blob = _blob()
        with pytest.raises(InvalidObjectError):
            matrix_deserialize(v_blob)
        with pytest.raises(InvalidObjectError):
            vector_deserialize(m_blob)

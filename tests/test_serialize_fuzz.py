"""Serialization fuzzing: mutated blobs never crash, never corrupt.

Security/robustness property of the §VII-B opaque stream: any byte
mutation either still deserializes to a *valid* object (checksum
collision — astronomically unlikely but defined) or raises
``InvalidObjectError``.  It must never raise anything else, never
segfault-style explode, and never return an object that fails its own
invariant check.
"""

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core.errors import InvalidObjectError
from repro.formats import (
    matrix_deserialize,
    matrix_serialize,
    vector_deserialize,
    vector_serialize,
)
from repro.validate import check_object

from .helpers import mat_from_dict, vec_from_dict

SETTINGS = settings(
    max_examples=80,
    deadline=None,
    suppress_health_check=[HealthCheck.function_scoped_fixture],
)

A_D = {(0, 0): 1.5, (1, 2): -2.25, (3, 1): 4.0, (3, 3): 0.5}


def _blob() -> bytes:
    return matrix_serialize(mat_from_dict(A_D, 4, 4))


class TestMutationFuzz:
    @SETTINGS
    @given(data=st.data())
    def test_single_byte_flip(self, data):
        blob = bytearray(_blob())
        pos = data.draw(st.integers(0, len(blob) - 1))
        bit = data.draw(st.integers(0, 7))
        blob[pos] ^= 1 << bit
        try:
            out = matrix_deserialize(bytes(blob))
        except InvalidObjectError:
            return
        check_object(out)   # if accepted, it must be internally valid

    @SETTINGS
    @given(cut=st.integers(0, 200))
    def test_truncation(self, cut):
        blob = _blob()
        prefix = blob[: min(cut, len(blob) - 1)]
        with pytest.raises(InvalidObjectError):
            matrix_deserialize(prefix)

    @SETTINGS
    @given(junk=st.binary(min_size=0, max_size=300))
    def test_arbitrary_bytes(self, junk):
        try:
            out = matrix_deserialize(junk)
        except InvalidObjectError:
            return
        check_object(out)

    @SETTINGS
    @given(extra=st.binary(min_size=1, max_size=50))
    def test_trailing_garbage_detected(self, extra):
        """Appending bytes breaks the checksum: detected."""
        blob = _blob() + extra
        with pytest.raises(InvalidObjectError):
            matrix_deserialize(blob)

    @SETTINGS
    @given(data=st.data())
    def test_vector_blob_mutations(self, data):
        blob = bytearray(vector_serialize(vec_from_dict({1: 2.5, 4: 7.0}, 8)))
        pos = data.draw(st.integers(0, len(blob) - 1))
        blob[pos] ^= data.draw(st.integers(1, 255))
        try:
            out = vector_deserialize(bytes(blob))
        except InvalidObjectError:
            return
        check_object(out)

    def test_cross_kind_confusion_rejected(self):
        v_blob = vector_serialize(vec_from_dict({0: 1.0}, 2))
        m_blob = _blob()
        with pytest.raises(InvalidObjectError):
            matrix_deserialize(v_blob)
        with pytest.raises(InvalidObjectError):
            vector_deserialize(m_blob)


# ---------------------------------------------------------------------------
# Durability-plane records (checkpoint blobs + write-ahead journal)
# ---------------------------------------------------------------------------

class TestJournalRecordFuzz:
    """The journal's framing must honour the same contract as §VII
    blobs: any byte mutation either parses to an intact record or is
    rejected — in strict mode with ``InvalidObjectError``, in replay
    mode by stopping at the frame (torn-tail semantics).  Never any
    other exception, never a half-parsed record."""

    @staticmethod
    def _record() -> bytes:
        from repro.serve.recovery import OP_MUTATE, pack_record

        import numpy as np

        body = (np.arange(3, dtype=np.int64).tobytes()
                + np.arange(3, dtype=np.int64).tobytes()
                + np.ones(3).tobytes())
        return pack_record(
            OP_MUTATE, {"graph": "g", "n": 3, "vtype": "FP64", "seq": 7}, body
        )

    @SETTINGS
    @given(data=st.data())
    def test_single_byte_flip(self, data):
        from repro.serve.recovery import iter_records

        blob = bytearray(self._record())
        pos = data.draw(st.integers(0, len(blob) - 1))
        blob[pos] ^= data.draw(st.integers(1, 255))
        try:
            out = list(iter_records(bytes(blob), strict=True))
        except InvalidObjectError:
            # Replay mode must degrade to a clean stop, not an error.
            assert list(iter_records(bytes(blob))) == []
            return
        # Checksum collision survivors must still be whole records.
        for op, header, body in out:
            assert isinstance(header, dict)
            assert isinstance(body, bytes)

    @SETTINGS
    @given(cut=st.integers(0, 120))
    def test_truncation_is_torn_tail(self, cut):
        from repro.serve.recovery import iter_records

        blob = self._record()
        prefix = blob[: min(cut, len(blob) - 1)]
        assert list(iter_records(prefix)) == []
        if prefix:
            with pytest.raises(InvalidObjectError):
                list(iter_records(prefix, strict=True))

    @SETTINGS
    @given(junk=st.binary(min_size=0, max_size=200))
    def test_arbitrary_bytes_never_crash(self, junk):
        from repro.serve.recovery import iter_records

        list(iter_records(junk))   # must not raise in replay mode
        try:
            list(iter_records(junk, strict=True))
        except InvalidObjectError:
            pass

    def test_journal_round_trip_after_checkpoint_blob(self, tmp_path):
        """End-to-end: a carrier serialized as a checkpoint blob and a
        journal record wrapping it survive a file round trip."""
        from repro.formats.serialize import (
            blob_digest,
            carrier_deserialize,
            carrier_serialize,
        )
        from repro.serve.recovery import OP_REGISTER, iter_records, pack_record

        carrier = mat_from_dict(A_D, 4, 4)._capture()
        blob = carrier_serialize(carrier)
        rec = pack_record(
            OP_REGISTER, {"graph": "g", "digest": blob_digest(blob), "seq": 1},
            blob,
        )
        path = tmp_path / "journal.rjl"
        path.write_bytes(rec)
        [(op, header, body)] = list(iter_records(path.read_bytes()))
        assert op == OP_REGISTER
        assert header["digest"] == blob_digest(body)
        out = carrier_deserialize(body)
        assert out.nvals == carrier.nvals


class TestGoldenJournal:
    """A committed golden journal fixture: the on-disk format is a
    compatibility surface — if this test breaks, the format changed
    and needs a version bump, not a fixture refresh."""

    GOLDEN = "data/golden_journal_v1.rjl"

    def test_golden_fixture_replays(self):
        import pathlib

        from repro.serve.recovery import OP_MUTATE, OP_REGISTER, iter_records

        blob = (pathlib.Path(__file__).parent / self.GOLDEN).read_bytes()
        records = list(iter_records(blob, strict=True))
        assert [op for op, _, _ in records] == [OP_REGISTER, OP_MUTATE]
        reg_header = records[0][1]
        assert reg_header["graph"] == "g" and reg_header["seq"] == 1
        from repro.formats.serialize import carrier_deserialize

        carrier = carrier_deserialize(records[0][2])
        assert (carrier.nrows, carrier.ncols, carrier.nvals) == (4, 4, 4)
        mut_header = records[1][1]
        assert mut_header["vtype"] == "FP64" and mut_header["n"] == 2

    def test_golden_fixture_is_previous_version(self):
        """The journal fixture's embedded carrier blob predates the
        hypersparse tier (stream version 2): loading it IS the
        old-version canary — v3 writers must keep reading v2 blobs."""
        import pathlib

        from repro.formats.serialize import _PREFIX
        from repro.serve.recovery import iter_records

        blob = (pathlib.Path(__file__).parent / self.GOLDEN).read_bytes()
        records = list(iter_records(blob, strict=True))
        version = _PREFIX.unpack_from(records[0][2], 0)[1]
        assert version == 2


class TestGoldenDcsr:
    """Committed v3 hypersparse blob: the DCSR wire section (kind 3,
    ``nrr`` header, compressed row list) is a compatibility surface
    from this version on — a break needs a version bump, not a fixture
    refresh."""

    GOLDEN = "data/golden_dcsr_v3.bin"

    def test_golden_dcsr_fixture_loads(self):
        import pathlib

        from repro.formats.serialize import (
            _KIND_DCSR_MATRIX,
            _PREFIX,
            carrier_deserialize,
            carrier_serialize,
        )
        from repro.internals.containers import DcsrData

        blob = (pathlib.Path(__file__).parent / self.GOLDEN).read_bytes()
        magic, version, kind, _, _, _ = _PREFIX.unpack_from(blob, 0)
        assert version == 3 and kind == _KIND_DCSR_MATRIX
        d = carrier_deserialize(blob)
        assert isinstance(d, DcsrData)
        assert (d.nrows, d.ncols, d.nvals) == (1 << 40, 16, 6)
        assert d.row_ids.tolist() == [3, 1 << 20, 1 << 35, (1 << 40) - 1]
        assert d.values.tolist() == [1.5, -2.25, 3.0, 0.5, 4.0, -8.125]
        # Writer determinism: re-encoding reproduces the fixture bytes.
        assert carrier_serialize(d) == blob

    def test_dcsr_blob_mutations_never_crash(self):
        """The fuzz contract extends to the new kind: any single-byte
        flip either still decodes to a valid carrier or raises
        INVALID_OBJECT."""
        import pathlib

        from repro.formats.serialize import carrier_deserialize

        blob = (pathlib.Path(__file__).parent / self.GOLDEN).read_bytes()
        for pos in range(len(blob)):
            mutated = bytearray(blob)
            mutated[pos] ^= 0x41
            try:
                out = carrier_deserialize(bytes(mutated))
            except InvalidObjectError:
                continue
            out.check()

"""Matrix object battery: constructors, element access, build rules, diag."""

import pytest

from repro.core import binaryop as B
from repro.core import types as T
from repro.core.errors import (
    DuplicateIndexError,
    IndexOutOfBoundsError,
    InvalidIndexError,
    InvalidValueError,
    NoValue,
    OutputNotEmptyError,
    UninitializedObjectError,
)
from repro.core.matrix import Matrix
from repro.core.scalar import Scalar
from repro.core.vector import Vector


class TestConstruction:
    def test_new(self):
        m = Matrix.new(T.FP64, 3, 5)
        assert m.shape == (3, 5) and m.nvals() == 0

    def test_negative_shape_rejected(self):
        with pytest.raises(InvalidValueError):
            Matrix.new(T.FP64, -1, 2)

    def test_dup_independent(self):
        m = Matrix.new(T.INT64, 3, 3)
        m.set_element(1, 0, 0)
        d = m.dup()
        d.set_element(2, 0, 0)
        assert m.extract_element(0, 0) == 1

    def test_diag_main(self):
        v = Vector.new(T.FP64, 3)
        v.build([0, 2], [5.0, 7.0])
        m = Matrix.diag(v)
        assert m.shape == (3, 3)
        assert m.to_dict() == {(0, 0): 5.0, (2, 2): 7.0}

    def test_diag_offset(self):
        v = Vector.new(T.FP64, 2)
        v.build([0, 1], [1.0, 2.0])
        up = Matrix.diag(v, 1)
        assert up.shape == (3, 3)
        assert up.to_dict() == {(0, 1): 1.0, (1, 2): 2.0}
        lo = Matrix.diag(v, -1)
        assert lo.to_dict() == {(1, 0): 1.0, (2, 1): 2.0}


class TestBuild:
    def test_build_row_major_sorted(self):
        m = Matrix.new(T.FP64, 3, 3)
        m.build([2, 0, 0], [1, 2, 0], [21.0, 2.0, 0.5])
        rows, cols, vals = m.extract_tuples()
        assert rows.tolist() == [0, 0, 2]
        assert cols.tolist() == [0, 2, 1]
        assert vals.tolist() == [0.5, 2.0, 21.0]

    def test_build_dup_plus(self):
        m = Matrix.new(T.INT64, 2, 2)
        m.build([0, 0, 1], [1, 1, 0], [3, 4, 5], dup=B.PLUS[T.INT64])
        assert m.to_dict() == {(0, 1): 7, (1, 0): 5}

    def test_build_dup_first_keeps_first_in_input_order(self):
        m = Matrix.new(T.INT64, 2, 2)
        m.build([0, 0], [1, 1], [3, 4], dup=B.FIRST[T.INT64])
        assert m.extract_element(0, 1) == 3

    def test_build_dup_second_keeps_last(self):
        m = Matrix.new(T.INT64, 2, 2)
        m.build([0, 0], [1, 1], [3, 4], dup=B.SECOND[T.INT64])
        assert m.extract_element(0, 1) == 4

    def test_build_null_dup_duplicates_deferred_error(self):
        m = Matrix.new(T.FP64, 2, 2)
        m.build([0, 0], [1, 1], [1.0, 2.0], dup=None)
        with pytest.raises(DuplicateIndexError):
            m.nvals()     # any value-reading method forces the sequence
        assert "duplicate" in m.error()

    def test_build_bounds_execution_error(self):
        m = Matrix.new(T.FP64, 2, 2)
        m.build([0], [5], [1.0])
        with pytest.raises(IndexOutOfBoundsError):
            m.wait()

    def test_build_nonempty_rejected(self):
        m = Matrix.new(T.FP64, 2, 2)
        m.set_element(1.0, 0, 0)
        with pytest.raises(OutputNotEmptyError):
            m.build([1], [1], [1.0])


class TestElementAccess:
    def test_set_get(self):
        m = Matrix.new(T.INT32, 4, 4)
        m.set_element(9, 2, 3)
        assert m.extract_element(2, 3) == 9

    def test_set_preserves_csr_invariants(self):
        m = Matrix.new(T.INT32, 4, 4)
        for i, j in ((2, 3), (0, 1), (2, 0), (3, 3), (0, 0)):
            m.set_element(i * 10 + j, i, j)
        m.wait()
        m._capture().check()
        assert m.nvals() == 5

    def test_set_element_grb_scalar_and_empty(self):
        s = Scalar.new(T.INT32)
        s.set_element(5)
        m = Matrix.new(T.INT32, 2, 2)
        m.set_element(s, 0, 0)
        assert m.extract_element(0, 0) == 5
        m.set_element(Scalar.new(T.INT32), 0, 0)   # empty deletes
        assert m.nvals() == 0

    def test_extract_missing_no_value(self):
        m = Matrix.new(T.FP64, 2, 2)
        with pytest.raises(NoValue):
            m.extract_element(0, 0)

    def test_extract_into_scalar_variant(self):
        m = Matrix.new(T.FP64, 2, 2)
        m.set_element(1.5, 1, 0)
        out = Scalar.new(T.FP64)
        m.extract_element(1, 0, out)
        assert out.extract_element() == 1.5
        m.extract_element(0, 0, out)
        assert out.nvals() == 0

    def test_remove_element(self):
        m = Matrix.new(T.FP64, 2, 2)
        m.set_element(1.0, 0, 0)
        m.set_element(2.0, 0, 1)
        m.remove_element(0, 0)
        assert m.to_dict() == {(0, 1): 2.0}
        m.remove_element(1, 1)  # no-op
        assert m.nvals() == 1

    def test_coordinate_bounds_api_errors(self):
        m = Matrix.new(T.FP64, 2, 3)
        for bad in ((2, 0), (0, 3), (-1, 0), (0, -1)):
            with pytest.raises(InvalidIndexError):
                m.set_element(1.0, *bad)
            with pytest.raises(InvalidIndexError):
                m.extract_element(*bad)


class TestShapeOps:
    def test_clear(self):
        m = Matrix.new(T.FP64, 2, 2)
        m.set_element(1.0, 0, 0)
        m.clear()
        assert m.nvals() == 0 and m.shape == (2, 2)

    def test_resize_shrink(self):
        m = Matrix.new(T.FP64, 4, 4)
        m.set_element(1.0, 0, 0)
        m.set_element(2.0, 3, 3)
        m.set_element(3.0, 1, 3)
        m.resize(2, 2)
        assert m.shape == (2, 2)
        assert m.to_dict() == {(0, 0): 1.0}

    def test_resize_grow(self):
        m = Matrix.new(T.FP64, 2, 2)
        m.set_element(1.0, 1, 1)
        m.resize(5, 5)
        assert m.extract_element(1, 1) == 1.0
        m.set_element(2.0, 4, 4)
        assert m.nvals() == 2

    def test_free(self):
        m = Matrix.new(T.FP64, 2, 2)
        m.free()
        with pytest.raises(UninitializedObjectError):
            m.nvals()

    def test_to_dense_and_dict_agree(self):
        m = Matrix.new(T.FP64, 2, 3)
        m.set_element(4.0, 1, 2)
        dense = m.to_dense()
        assert dense[1, 2] == 4.0
        assert dense.shape == (2, 3)
        assert m.to_dict() == {(1, 2): 4.0}

"""Distributed-simulation battery: SPMD equality with single-node results."""

import numpy as np
import pytest

from repro.core import types as T
from repro.core.context import default_context
from repro.core.errors import InvalidValueError
from repro.core.semiring import PLUS_TIMES_SEMIRING
from repro.distributed import (
    Cluster,
    DistMatrix,
    DistVector,
    RankHome,
    block_bounds,
    dist_bfs_levels,
    dist_mxm,
    dist_mxv,
    dist_vxm,
)
from repro.generators import rmat


def _spmd_graph(scale=6, seed=9):
    n, rows, cols, vals = rmat(scale, 6, seed=seed)
    keep = rows != cols
    return n, rows[keep], cols[keep], vals[keep]


def _dense(n, rows, cols, vals):
    out = np.zeros((n, n))
    out[rows, cols] = vals   # later duplicates overwrite
    return out


class TestCommunicator:
    def test_point_to_point(self):
        cluster = Cluster(2)

        def prog(comm):
            if comm.rank == 0:
                comm.send(1, np.arange(5))
                return None
            return comm.recv(source=0)

        results = cluster.run(prog)
        assert results[1].tolist() == [0, 1, 2, 3, 4]
        assert cluster.stats.messages >= 1

    def test_tagged_out_of_order_recv(self):
        cluster = Cluster(2)

        def prog(comm):
            if comm.rank == 0:
                comm.send(1, "a", tag=1)
                comm.send(1, "b", tag=2)
                return None
            second = comm.recv(source=0, tag=2)
            first = comm.recv(source=0, tag=1)
            return (first, second)

        assert cluster.run(prog)[1] == ("a", "b")

    def test_bcast(self):
        cluster = Cluster(4)
        out = cluster.run(
            lambda comm: comm.bcast("hello" if comm.rank == 2 else None,
                                    root=2)
        )
        assert out == ["hello"] * 4

    def test_allgather(self):
        cluster = Cluster(3)
        out = cluster.run(lambda comm: comm.allgather(comm.rank * 10))
        assert out == [[0, 10, 20]] * 3

    def test_allreduce(self):
        cluster = Cluster(4)
        out = cluster.run(
            lambda comm: comm.allreduce(comm.rank + 1, lambda a, b: a + b)
        )
        assert out == [10] * 4

    def test_stats_accumulate(self):
        cluster = Cluster(2)
        cluster.run(lambda comm: comm.allgather(np.zeros(100)))
        snap = cluster.stats.snapshot()
        assert snap["bytes"] >= 800
        assert snap["collectives"] == 2

    def test_rank_error_propagates(self):
        cluster = Cluster(2)

        def prog(comm):
            if comm.rank == 1:
                raise ValueError("rank 1 exploded")
            comm.barrier()

        with pytest.raises(ValueError):
            cluster.run(prog)

    def test_invalid_sizes(self):
        with pytest.raises(InvalidValueError):
            Cluster(0)
        cluster = Cluster(1)
        with pytest.raises(InvalidValueError):
            cluster.run(lambda comm: comm.send(5, "x"))


class TestBlocks:
    def test_block_bounds_cover(self):
        b = block_bounds(10, 3)
        assert b[0] == 0 and b[-1] == 10
        assert all(b[i] <= b[i + 1] for i in range(3))

    def test_dist_matrix_scatter(self):
        n, rows, cols, vals = _spmd_graph()
        cluster = Cluster(3)
        top = default_context()

        def prog(comm):
            home = RankHome.create(comm.rank, top)
            a = DistMatrix.from_triples(home, n, n, comm.size, T.FP64,
                                        rows, cols, vals,
                                        dup=None if False else _dup())
            return a.local_nvals()

        local_counts = cluster.run(prog)
        # Every edge lives on exactly one rank.
        full = _to_single(n, rows, cols, vals)
        assert sum(local_counts) == full.nvals()

    def test_dist_vector_from_dense(self):
        cluster = Cluster(4)
        dense = np.array([1.0, 0, 2.0, 0, 0, 3.0, 0, 4.0])
        top = default_context()

        def prog(comm):
            home = RankHome.create(comm.rank, top)
            v = DistVector.from_global_dense(home, dense, comm.size, T.FP64)
            return v.local_tuples()

        parts = cluster.run(prog)
        got = {}
        for idx, vals in parts:
            got.update(dict(zip(idx.tolist(), vals.tolist())))
        assert got == {0: 1.0, 2: 2.0, 5: 3.0, 7: 4.0}


def _dup():
    from repro.core.binaryop import MAX
    from repro.core import types as _T
    return MAX[_T.FP64]


def _to_single(n, rows, cols, vals, t=T.FP64):
    from repro.core.matrix import Matrix
    m = Matrix.new(t, n, n)
    m.build(rows, cols, vals, _dup())
    m.wait()
    return m


class TestDistOps:
    @pytest.mark.parametrize("nranks", [1, 2, 4], ids=lambda n: f"p{n}")
    def test_dist_mxv_matches_single_node(self, nranks):
        n, rows, cols, vals = _spmd_graph()
        rng = np.random.default_rng(0)
        x = rng.random(n) * (rng.random(n) < 0.5)
        single = _to_single(n, rows, cols, vals)
        from repro.core.vector import Vector
        from repro.ops.mxm import mxv
        xv = Vector.new(T.FP64, n)
        nz = np.flatnonzero(x)
        xv.build(nz, x[nz])
        expect = Vector.new(T.FP64, n)
        mxv(expect, None, None, PLUS_TIMES_SEMIRING[T.FP64], single, xv)
        expected = expect.to_dict()

        cluster = Cluster(nranks)
        top = default_context()

        def prog(comm):
            home = RankHome.create(comm.rank, top)
            a = DistMatrix.from_triples(home, n, n, comm.size, T.FP64,
                                        rows, cols, vals, _dup())
            u = DistVector.from_global_dense(home, x, comm.size, T.FP64)
            w = dist_mxv(comm, a, u, PLUS_TIMES_SEMIRING[T.FP64])
            return w.local_tuples()

        got = {}
        for idx, vv in cluster.run(prog):
            got.update({int(i): v for i, v in zip(idx, vv)})
        assert set(got) == set(expected)
        for k in expected:
            assert got[k] == pytest.approx(expected[k])

    @pytest.mark.parametrize("nranks", [2, 3], ids=lambda n: f"p{n}")
    def test_dist_vxm_matches_single_node(self, nranks):
        n, rows, cols, vals = _spmd_graph(scale=5)
        rng = np.random.default_rng(1)
        x = rng.random(n) * (rng.random(n) < 0.5)
        single = _to_single(n, rows, cols, vals)
        from repro.core.vector import Vector
        from repro.ops.mxm import vxm
        xv = Vector.new(T.FP64, n)
        nz = np.flatnonzero(x)
        xv.build(nz, x[nz])
        expect = Vector.new(T.FP64, n)
        vxm(expect, None, None, PLUS_TIMES_SEMIRING[T.FP64], xv, single)
        expected = {k: pytest.approx(v) for k, v in expect.to_dict().items()}

        cluster = Cluster(nranks)
        top = default_context()

        def prog(comm):
            home = RankHome.create(comm.rank, top)
            a = DistMatrix.from_triples(home, n, n, comm.size, T.FP64,
                                        rows, cols, vals, _dup())
            u = DistVector.from_global_dense(home, x, comm.size, T.FP64)
            w = dist_vxm(comm, u, a, PLUS_TIMES_SEMIRING[T.FP64])
            return w.local_tuples()

        got = {}
        for idx, vv in cluster.run(prog):
            got.update({int(i): v for i, v in zip(idx, vv)})
        assert got == expected

    @pytest.mark.parametrize("nranks", [2, 4], ids=lambda n: f"p{n}")
    def test_dist_mxm_matches_single_node(self, nranks):
        n, rows, cols, vals = _spmd_graph(scale=5)
        single = _to_single(n, rows, cols, vals)
        from repro.core.matrix import Matrix
        from repro.ops.mxm import mxm
        expect = Matrix.new(T.FP64, n, n)
        mxm(expect, None, None, PLUS_TIMES_SEMIRING[T.FP64], single, single)
        expected = expect.to_dict()

        cluster = Cluster(nranks)
        top = default_context()

        def prog(comm):
            home = RankHome.create(comm.rank, top)
            a = DistMatrix.from_triples(home, n, n, comm.size, T.FP64,
                                        rows, cols, vals, _dup())
            c = dist_mxm(comm, a, a, PLUS_TIMES_SEMIRING[T.FP64])
            r, cc, vv = c.local.extract_tuples()
            lo, _ = c.row_range
            return r + lo, cc, vv

        got = {}
        for r, cc, vv in cluster.run(prog):
            got.update({(int(i), int(j)): v for i, j, v in zip(r, cc, vv)})
        assert set(got) == set(expected)
        for k in expected:
            assert got[k] == pytest.approx(expected[k])

    @pytest.mark.parametrize("nranks", [1, 3], ids=lambda n: f"p{n}")
    def test_dist_bfs_matches_single_node(self, nranks):
        n, rows, cols, vals = _spmd_graph(scale=6, seed=4)
        from repro.algorithms import bfs_levels
        single = _to_single(n, rows, cols, np.ones(len(rows)), T.BOOL)
        expected = {int(k): int(v)
                    for k, v in bfs_levels(single, 0).to_dict().items()}

        cluster = Cluster(nranks)
        top = default_context()

        def prog(comm):
            home = RankHome.create(comm.rank, top)
            a = DistMatrix.from_triples(
                home, n, n, comm.size, T.BOOL,
                rows, cols, np.ones(len(rows), dtype=bool),
                _bool_dup(),
            )
            lv = dist_bfs_levels(comm, a, 0)
            return lv.local_tuples()

        got = {}
        for idx, vv in cluster.run(prog):
            got.update({int(i): int(v) for i, v in zip(idx, vv)})
        assert got == expected

    def test_rank_contexts_are_nested(self):
        cluster = Cluster(2)
        top = default_context()

        def prog(comm):
            home = RankHome.create(comm.rank, top, nthreads=2)
            return (home.context.parent is top, home.context.nthreads)

        assert cluster.run(prog) == [(True, 2), (True, 2)]

    def test_communication_volume_grows_with_ranks(self):
        """The 1-D mxv trade: allgather volume scales with p."""
        n, rows, cols, vals = _spmd_graph(scale=6)
        x = np.ones(n)
        volumes = []
        for p in (2, 4):
            cluster = Cluster(p)
            top = default_context()

            def prog(comm):
                home = RankHome.create(comm.rank, top)
                a = DistMatrix.from_triples(home, n, n, comm.size, T.FP64,
                                            rows, cols, vals, _dup())
                u = DistVector.from_global_dense(home, x, comm.size, T.FP64)
                dist_mxv(comm, a, u, PLUS_TIMES_SEMIRING[T.FP64])

            cluster.run(prog)
            volumes.append(cluster.stats.snapshot()["bytes"])
        assert volumes[1] > volumes[0]


def _bool_dup():
    from repro.core.binaryop import LOR
    from repro.core import types as _T
    return LOR[_T.BOOL]


# ---------------------------------------------------------------------------
# Comm-layer fault tolerance (timeouts, drops, retries, degradation)
# ---------------------------------------------------------------------------

from repro.core.errors import OutOfMemoryError, PanicError  # noqa: E402
from repro.engine.stats import STATS  # noqa: E402
from repro.faults import PLANE, FaultSpec, configure_from_env  # noqa: E402
from repro.internals import config  # noqa: E402


@pytest.fixture(autouse=True)
def _plane_off():
    PLANE.disable()
    yield
    PLANE.disable()
    configure_from_env()  # re-arm ambient env chaos if CI set it


def _stat(name):
    return STATS.snapshot()[name]


class TestCommFaultTolerance:
    def test_dead_rank_mid_allreduce_surfaces_panic(self):
        """The satellite scenario: one rank dies before joining the
        collective; survivors must get GrB_PANIC within the timeout,
        not a deadlock, and the cluster turns unhealthy."""
        cluster = Cluster(3)
        before = _stat("comm_timeouts")

        def prog(comm):
            if comm.rank == 2:
                return None  # dies without ever entering the collective
            return comm.allreduce(comm.rank + 1, lambda a, b: a + b,
                                  timeout=0.3)

        with config.option("COMM_TIMEOUT", 0.3):
            with pytest.raises(PanicError, match="presumed dead"):
                cluster.run(prog)
        assert not cluster.healthy
        assert _stat("comm_timeouts") > before

    def test_recv_timeout_is_panic_not_deadlock(self):
        cluster = Cluster(2)

        def prog(comm):
            if comm.rank == 1:
                return comm.recv(source=0, timeout=0.2)  # nothing coming
            return None

        with pytest.raises(PanicError, match="recv"):
            cluster.run(prog)
        assert cluster.stats.snapshot()["timeouts"] >= 1

    def test_dropped_message_times_out_receiver(self):
        cluster = Cluster(2)
        PLANE.configure(1, [FaultSpec(site="comm.drop", kind="drop",
                                      max_hits=1)])

        def prog(comm):
            if comm.rank == 0:
                comm.send(1, "swallowed by the wire")
                return None
            return comm.recv(source=0, timeout=0.2)

        with pytest.raises(PanicError):
            cluster.run(prog)
        PLANE.disable()
        assert cluster.stats.snapshot()["drops"] == 1
        assert PLANE.dropped == 1

    def test_transient_send_fault_retried_inline(self):
        cluster = Cluster(2)
        before = _stat("retries_recovered")
        PLANE.configure(1, [FaultSpec(site="comm.send", transient=True,
                                      max_hits=1)])

        def prog(comm):
            if comm.rank == 0:
                comm.send(1, np.arange(3))
                return None
            return comm.recv(source=0)

        results = cluster.run(prog)
        PLANE.disable()
        assert results[1].tolist() == [0, 1, 2]
        assert cluster.healthy
        assert _stat("retries_recovered") == before + 1

    def test_slow_collective_spec_still_correct(self):
        cluster = Cluster(2)
        PLANE.configure(1, [FaultSpec(site="comm.collective", kind="slow",
                                      delay=0.01)])
        out = cluster.run(
            lambda comm: comm.allreduce(comm.rank + 1, lambda a, b: a + b)
        )
        PLANE.disable()
        assert out == [3, 3]
        assert PLANE.snapshot()["injected_total"] >= 1

    def test_run_resilient_transient_revive_and_retry(self):
        cluster = Cluster(2)
        before = _stat("retries_recovered")
        crashed = []

        def prog(comm):
            if comm.rank == 1 and not crashed:
                crashed.append(True)
                exc = OutOfMemoryError("transient rank blip")
                exc.transient = True
                raise exc
            return comm.allgather(comm.rank)

        out = cluster.run_resilient(prog)
        assert out == [[0, 1], [0, 1]]
        assert cluster.healthy  # revived
        assert _stat("retries_recovered") == before + 1

    def test_run_resilient_persistent_degrades_to_local(self):
        cluster = Cluster(2)
        before = _stat("degraded_local")

        def prog(comm):
            raise PanicError("rank wedged for good")

        out = cluster.run_resilient(prog, local_fallback=lambda: "local")
        assert out == "local"
        assert not cluster.healthy
        assert _stat("degraded_local") == before + 1
        # while unhealthy, further resilient runs degrade immediately
        out2 = cluster.run_resilient(lambda comm: comm.allgather(1),
                                     local_fallback=lambda: "local2")
        assert out2 == "local2"
        # a persistent failure with no fallback propagates
        cluster.revive()
        with pytest.raises(PanicError):
            cluster.run_resilient(prog)

    def test_revive_preserves_counters(self):
        cluster = Cluster(2)
        cluster.run(lambda comm: comm.allgather(comm.rank))
        bytes_before = cluster.stats.snapshot()["bytes"]
        assert bytes_before > 0
        cluster._healthy = False
        cluster.revive()
        assert cluster.healthy
        assert cluster.stats.snapshot()["bytes"] == bytes_before

    def test_faulted_dist_mxv_still_matches_single_node(self):
        """End to end: transient comm faults under a real distributed
        op must not change the numbers."""
        n, rows, cols, vals = _spmd_graph(scale=5)
        x = np.ones(n)
        single = _to_single(n, rows, cols, vals)
        from repro.core.vector import Vector
        from repro.ops.mxm import mxv
        xv = Vector.new(T.FP64, n)
        xv.build(np.arange(n), x)
        expect = Vector.new(T.FP64, n)
        mxv(expect, None, None, PLUS_TIMES_SEMIRING[T.FP64], single, xv)
        expected = expect.to_dict()

        cluster = Cluster(2)
        top = default_context()
        PLANE.configure(6, [FaultSpec(site="comm.collective", transient=True,
                                      max_hits=2)])

        def prog(comm):
            home = RankHome.create(comm.rank, top)
            a = DistMatrix.from_triples(home, n, n, comm.size, T.FP64,
                                        rows, cols, vals, _dup())
            u = DistVector.from_global_dense(home, x, comm.size, T.FP64)
            w = dist_mxv(comm, a, u, PLUS_TIMES_SEMIRING[T.FP64])
            return w.local_tuples()

        got = {}
        for idx, vv in cluster.run(prog):
            got.update({int(i): v for i, v in zip(idx, vv)})
        PLANE.disable()
        assert set(got) == set(expected)
        for k in expected:
            assert got[k] == pytest.approx(expected[k])

"""The hypersparse (DCSR) carrier tier: round trips, parity, soundness.

Battery structure:

* format round trips — COO↔DCSR↔CSR conversions preserve the value
  stream and the DCSR invariants at dimensions up to 2^32, with O(nnz)
  allocation (Hypothesis);
* dispatch coverage — every registered kernel family declares its
  native formats (``assign`` included, since the region rewrite went
  format-polymorphic); the ``as_csr`` escape hatch still counts;
* kernel parity — every family's DCSR path produces results identical
  to the CSR oracle, driven through the public ops surface with the
  format policy forced each way;
* memo/checkpoint soundness — flipping the format knobs invalidates
  structurally-keyed algo-memo blocks instead of serving a carrier
  shaped under the other policy, and a hypersparse graph survives
  checkpoint/restore byte-identically.
"""

import contextlib

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core import binaryop as B
from repro.core import monoid as M
from repro.core import semiring as S
from repro.core import types as T
from repro.core.descriptor import DESC_T0
from repro.core.indexunaryop import TRIL
from repro.core.matrix import Matrix
from repro.core.vector import Vector
from repro.engine.stats import STATS
from repro.internals import config
from repro.internals.containers import (
    DcsrData,
    MatData,
    coo_to_csr,
    coo_to_dcsr,
    dcsr_from_csr,
)
from repro.internals.dispatch import registered_formats
from repro.ops.apply import apply
from repro.ops.assign import assign
from repro.ops.ewise import ewise_add, ewise_mult
from repro.ops.extract import extract
from repro.ops.kronecker import kronecker
from repro.ops.mxm import mxm, mxv, vxm
from repro.ops.reduce import reduce_scalar, reduce_to_vector
from repro.ops.select import select
from repro.ops.transpose import transpose

from .helpers import mat_from_dict, mat_to_dict, random_dict_matrix, vec_from_dict

HUGE = 1 << 32   # past any dense row pointer; nnz stays <= 10^3

SETTINGS = settings(
    max_examples=60,
    deadline=None,
    suppress_health_check=[HealthCheck.function_scoped_fixture],
)


@contextlib.contextmanager
def force_dcsr():
    """Make the commit-time policy choose DCSR for every matrix."""
    with config.option("FORMAT_AUTO", 1), \
            config.option("FORMAT_DCSR_MIN_ROWS", 0), \
            config.option("FORMAT_DCSR_FACTOR", 0):
        yield


@contextlib.contextmanager
def force_csr():
    """Pin everything to CSR (the pre-hypersparse oracle)."""
    with config.option("FORMAT_AUTO", 0):
        yield


@st.composite
def coo_triples(draw, max_dim=HUGE, max_nnz=50):
    nrows = draw(st.integers(1, max_dim))
    ncols = draw(st.integers(1, max_dim))
    n = draw(st.integers(0, max_nnz))
    pairs = draw(st.lists(
        st.tuples(st.integers(0, nrows - 1), st.integers(0, ncols - 1)),
        min_size=n, max_size=n, unique=True,
    ))
    vals = [float(i + 1) for i in range(len(pairs))]
    return nrows, ncols, pairs, vals


def _sorted_stream(pairs, vals):
    order = sorted(range(len(pairs)), key=lambda i: pairs[i])
    return ([pairs[i][0] for i in order], [pairs[i][1] for i in order],
            [vals[i] for i in order])


# ---------------------------------------------------------------------------
# Round trips
# ---------------------------------------------------------------------------

class TestRoundTrips:
    @SETTINGS
    @given(t=coo_triples())
    def test_coo_to_dcsr_round_trip(self, t):
        nrows, ncols, pairs, vals = t
        rows = np.array([p[0] for p in pairs], dtype=np.int64)
        cols = np.array([p[1] for p in pairs], dtype=np.int64)
        d = coo_to_dcsr(nrows, ncols, T.FP64, rows, cols, np.array(vals))
        d.check()
        # O(nnz) representation: no array scales with nrows.
        assert len(d.indptr) == len(d.row_ids) + 1 <= len(pairs) + 1
        sr, sc, sv = _sorted_stream(pairs, vals)
        assert d.row_indices().tolist() == sr
        assert d.col_indices.tolist() == sc
        assert d.values.tolist() == sv

    @SETTINGS
    @given(t=coo_triples(max_dim=1 << 10))
    def test_dcsr_csr_conversions_agree(self, t):
        nrows, ncols, pairs, vals = t
        rows = np.array([p[0] for p in pairs], dtype=np.int64)
        cols = np.array([p[1] for p in pairs], dtype=np.int64)
        vals = np.array(vals)
        csr = coo_to_csr(nrows, ncols, T.FP64, rows, cols, vals)
        dcsr = coo_to_dcsr(nrows, ncols, T.FP64, rows, cols, vals)
        packed = dcsr_from_csr(csr)
        assert packed.row_ids.tolist() == dcsr.row_ids.tolist()
        assert packed.indptr.tolist() == dcsr.indptr.tolist()
        assert packed.col_indices.tolist() == dcsr.col_indices.tolist()
        assert packed.values.tolist() == dcsr.values.tolist()
        back = dcsr.to_csr()
        assert back.indptr.tolist() == csr.indptr.tolist()
        assert back.col_indices.tolist() == csr.col_indices.tolist()
        assert back.values.tolist() == csr.values.tolist()

    @SETTINGS
    @given(t=coo_triples())
    def test_serialize_round_trip_hypersparse(self, t):
        from repro.formats.serialize import carrier_deserialize, carrier_serialize

        nrows, ncols, pairs, vals = t
        rows = np.array([p[0] for p in pairs], dtype=np.int64)
        cols = np.array([p[1] for p in pairs], dtype=np.int64)
        d = coo_to_dcsr(nrows, ncols, T.FP64, rows, cols, np.array(vals))
        blob = carrier_serialize(d)
        out = carrier_deserialize(blob)
        assert isinstance(out, DcsrData)
        assert (out.nrows, out.ncols, out.nvals) == (nrows, ncols, len(pairs))
        assert out.row_ids.tolist() == d.row_ids.tolist()
        assert out.values.tolist() == d.values.tolist()
        # Deterministic encoding: re-serialization is byte-identical.
        assert carrier_serialize(out) == blob

    def test_thousand_nnz_at_2_32(self):
        """The acceptance shape: 2^32-row matrix, 10^3 entries, full
        handle-level round trip plus an mxv against a dict oracle.

        ``FORMAT_AUTO`` is pinned on (not assumed): past ``MAX_NROWS``
        the shape only exists on the DCSR carrier, so the test must
        hold under the ``FORMAT_AUTO=0`` CI ablation too."""
        with config.option("FORMAT_AUTO", 1):
            rng = np.random.default_rng(7)
            rows = np.unique(rng.integers(0, HUGE, 1000, dtype=np.int64))
            cols = rng.integers(0, HUGE, len(rows), dtype=np.int64)
            vals = rng.random(len(rows))
            m = Matrix.new(T.FP64, HUGE, HUGE)
            m.build(rows, cols, vals)
            assert m.nvals() == len(rows)
            assert isinstance(m._capture(), DcsrData)
            got = m.to_dict()
            assert got == {(int(i), int(j)): pytest.approx(v)
                           for i, j, v in zip(rows, cols, vals)}
            u = Vector.new(T.FP64, HUGE)
            for j in np.unique(cols)[:50]:
                u.set_element(2.0, int(j))
            w = Vector.new(T.FP64, HUGE)
            mxv(w, None, None, S.PLUS_TIMES_SEMIRING[T.FP64], m, u)
            keep = np.isin(cols, np.unique(cols)[:50])
            want = {}
            for i, v in zip(rows[keep], vals[keep]):
                want[int(i)] = want.get(int(i), 0.0) + 2.0 * v
            got_w = w.to_dict()
            assert set(got_w) == set(want)
            for k, v in want.items():
                assert got_w[k] == pytest.approx(v)


# ---------------------------------------------------------------------------
# Dispatch coverage
# ---------------------------------------------------------------------------

class TestDispatchCoverage:
    NATIVE_BOTH = (
        "mxm", "mxv", "mxv_multi", "vxm",
        "ewise_intersect", "ewise_union",
        "apply", "apply_index", "select", "pipeline",
        "reduce_rows", "build", "mask_write_back",
        "extract", "extract_col", "kron", "assign",
    )

    def test_every_family_handles_both_formats(self):
        for family in self.NATIVE_BOTH:
            assert registered_formats(family) == ("csr", "dcsr"), family

    def test_assign_stays_hypersparse(self):
        """The region rewrite is native: no densify, output keeps DCSR."""
        with force_dcsr():
            c = mat_from_dict({(0, 0): 1.0, (2, 1): 2.0}, 4, 4)
            assert isinstance(c._capture(), DcsrData)
            before = STATS.snapshot().get("format_densify_fallbacks", 0)
            a = mat_from_dict({(0, 0): 9.0}, 2, 2)
            assign(c, None, None, a, [0, 2], [0, 1])
            c.wait()
            after = STATS.snapshot().get("format_densify_fallbacks", 0)
            assert after == before
            assert isinstance(c._capture(), DcsrData)
            # (2,1) sits inside the region and A is empty there:
            # unaccumulated assign overwrites the region.
            assert mat_to_dict(c) == {(0, 0): 9.0}

    def test_densify_fallback_is_counted(self):
        """as_csr remains the audited escape hatch for CSR-only kernels."""
        from repro.internals.dispatch import as_csr

        d = coo_to_dcsr(
            4, 4, T.FP64,
            np.array([0, 2]), np.array([0, 1]), np.array([1.0, 2.0]),
        )
        before = STATS.snapshot().get("format_densify_fallbacks", 0)
        out = as_csr(d, "test_family")
        after = STATS.snapshot().get("format_densify_fallbacks", 0)
        assert after == before + 1
        assert isinstance(out, MatData)
        assert out.nvals == 2


# ---------------------------------------------------------------------------
# Kernel parity: DCSR path vs the CSR oracle
# ---------------------------------------------------------------------------

def _both_formats(run):
    """Run the same op sequence with the policy forced each way and
    compare the results (dicts / scalars)."""
    with force_csr():
        want = run()
    with force_dcsr():
        got = run()
    assert got == want
    return want


class TestKernelParity:
    """Each case builds its inputs and reads its outputs inside the
    format regime, so every build/commit/kernel runs on that format."""

    A = {(0, 0): 1.0, (0, 3): 2.0, (2, 1): 3.0, (5, 5): 4.0, (5, 0): 5.0}
    B2 = {(0, 1): 1.5, (1, 4): 2.5, (2, 1): -3.0, (4, 4): 1.0, (5, 5): 2.0}

    def test_policy_engages(self):
        with force_dcsr():
            assert isinstance(mat_from_dict(self.A, 6, 6)._capture(), DcsrData)
        with force_csr():
            assert isinstance(mat_from_dict(self.A, 6, 6)._capture(), MatData)

    def test_mxm(self):
        def run():
            a = mat_from_dict(self.A, 6, 6)
            b = mat_from_dict(self.B2, 6, 6)
            c = Matrix.new(T.FP64, 6, 6)
            mxm(c, None, None, S.PLUS_TIMES_SEMIRING[T.FP64], a, b)
            return mat_to_dict(c)
        _both_formats(run)

    def test_mxm_transposed_and_masked(self):
        def run():
            a = mat_from_dict(self.A, 6, 6)
            b = mat_from_dict(self.B2, 6, 6)
            mask = mat_from_dict({(3, 1): 1.0, (0, 1): 1.0}, 6, 6, t=T.BOOL)
            c = Matrix.new(T.FP64, 6, 6)
            mxm(c, mask, None, S.PLUS_TIMES_SEMIRING[T.FP64], a, b,
                desc=DESC_T0)
            return mat_to_dict(c)
        _both_formats(run)

    def test_mxv_and_vxm(self):
        def run():
            a = mat_from_dict(self.A, 6, 6)
            u = vec_from_dict({0: 2.0, 3: 1.0, 5: 4.0}, 6)
            w = Vector.new(T.FP64, 6)
            mxv(w, None, None, S.PLUS_TIMES_SEMIRING[T.FP64], a, u)
            w2 = Vector.new(T.FP64, 6)
            vxm(w2, None, None, S.PLUS_TIMES_SEMIRING[T.FP64], u, a)
            return (w.to_dict(), w2.to_dict())
        _both_formats(run)

    def test_ewise_union_and_intersect(self):
        def run():
            a = mat_from_dict(self.A, 6, 6)
            b = mat_from_dict(self.B2, 6, 6)
            u = Matrix.new(T.FP64, 6, 6)
            ewise_add(u, None, None, B.PLUS[T.FP64], a, b)
            i = Matrix.new(T.FP64, 6, 6)
            ewise_mult(i, None, None, B.TIMES[T.FP64], a, b)
            return (mat_to_dict(u), mat_to_dict(i))
        _both_formats(run)

    def test_apply_select_reduce(self):
        def run():
            a = mat_from_dict(self.A, 6, 6)
            doubled = Matrix.new(T.FP64, 6, 6)
            apply(doubled, None, None, B.TIMES[T.FP64], a, 2.0)
            low = Matrix.new(T.FP64, 6, 6)
            select(low, None, None, TRIL, a, 0)
            deg = Vector.new(T.FP64, 6)
            reduce_to_vector(deg, None, None, M.PLUS_MONOID[T.FP64], a)
            total = reduce_scalar(M.PLUS_MONOID[T.FP64], a)
            return (mat_to_dict(doubled), mat_to_dict(low),
                    deg.to_dict(), total)
        _both_formats(run)

    def test_extract_and_transpose(self):
        def run():
            a = mat_from_dict(self.A, 6, 6)
            sub = Matrix.new(T.FP64, 3, 3)
            extract(sub, None, None, a, [0, 2, 5], [0, 1, 5])
            tr = Matrix.new(T.FP64, 6, 6)
            transpose(tr, None, None, a)
            return (mat_to_dict(sub), mat_to_dict(tr))
        _both_formats(run)

    def test_assign_densify_parity(self):
        def run():
            c = mat_from_dict(self.A, 6, 6)
            a = mat_from_dict({(0, 0): 7.0, (1, 1): 8.0}, 2, 2)
            assign(c, None, None, a, [1, 4], [2, 3])
            return mat_to_dict(c)
        _both_formats(run)

    def test_kronecker(self):
        def run():
            a = mat_from_dict({(0, 1): 2.0, (1, 0): 3.0}, 2, 2)
            b = mat_from_dict({(0, 0): 1.0, (1, 1): 5.0}, 2, 2)
            c = Matrix.new(T.FP64, 4, 4)
            kronecker(c, None, None, B.TIMES[T.FP64], a, b)
            return mat_to_dict(c)
        _both_formats(run)

    def test_element_ops(self):
        def run():
            m = mat_from_dict(self.A, 6, 6)
            m.set_element(9.0, 3, 3)    # new row for the DCSR carrier
            m.set_element(-1.0, 0, 0)   # overwrite
            m.remove_element(5, 0)
            m.remove_element(2, 1)      # row becomes empty
            m.resize(5, 5)
            return mat_to_dict(m)
        _both_formats(run)

    def test_random_battery(self):
        rng = np.random.default_rng(11)
        for trial in range(5):
            d1 = random_dict_matrix(rng, 12, 12, density=0.08)
            d2 = random_dict_matrix(rng, 12, 12, density=0.08)

            def run():
                a = mat_from_dict(d1, 12, 12)
                b = mat_from_dict(d2, 12, 12)
                c = Matrix.new(T.FP64, 12, 12)
                mxm(c, None, None, S.PLUS_TIMES_SEMIRING[T.FP64], a, b)
                u = Matrix.new(T.FP64, 12, 12)
                ewise_add(u, None, None, B.PLUS[T.FP64], c, a)
                return mat_to_dict(u)

            _both_formats(run)


# ---------------------------------------------------------------------------
# Memo & checkpoint soundness across format-policy flips
# ---------------------------------------------------------------------------

class TestFormatSoundness:
    def test_algo_memo_key_carries_policy_fingerprint(self):
        from repro.algorithms._blocks import _format_fingerprint

        base = _format_fingerprint()
        with force_dcsr():
            assert _format_fingerprint() != base
        assert _format_fingerprint() == base

    def test_policy_flip_invalidates_memoized_blocks(self):
        """A block memoized under one format policy must not be served
        under another — the key fingerprint forces a rebuild."""
        from repro.algorithms._blocks import pattern_matrix

        with config.option("ENGINE_ALGO_MEMO", True):
            a = mat_from_dict(self.GRAPH, 8, 8)
            pattern_matrix(a)                       # miss: builds + stores
            before = STATS.snapshot()
            pattern_matrix(a)                       # hit under same policy
            mid = STATS.snapshot()
            assert mid.get("algo_memo_hits", 0) > \
                before.get("algo_memo_hits", 0)
            with force_dcsr():
                pattern_matrix(a)                   # policy flipped: miss
                after = STATS.snapshot()
            assert after.get("algo_memo_misses", 0) > \
                mid.get("algo_memo_misses", 0)

    GRAPH = {(0, 1): 1.0, (1, 2): 1.0, (2, 0): 1.0, (3, 3): 1.0}

    def test_commit_repacks_format_on_policy_change(self):
        """The same committed handle migrates CSR→DCSR through the
        commit gate when a write lands under the flipped policy."""
        m = mat_from_dict(self.GRAPH, 8, 8)
        assert isinstance(m._capture(), MatData)
        with force_dcsr():
            m.set_element(5.0, 7, 7)
            assert isinstance(m._capture(), DcsrData)
        m.set_element(6.0, 6, 6)
        assert isinstance(m._capture(), MatData)
        assert m.to_dict()[(7, 7)] == 5.0

    def test_checkpoint_restore_byte_identical_hypersparse(self, tmp_path):
        """A hypersparse resident graph survives checkpoint + journal
        replay with a byte-identical carrier (DCSR blobs flow through
        the §VII stream in both directions)."""
        from repro.formats.serialize import carrier_serialize
        from repro.serve import GraphService

        with force_dcsr():
            svc = GraphService(checkpoint_dir=str(tmp_path))
            g = mat_from_dict(self.GRAPH, 8, 8)
            svc.register_graph("g", g)
            svc.mutate_graph("g", [4, 7], [5, 0], [2.0, 3.0])
            svc.checkpoint()
            svc.mutate_graph("g", [0], [7], [9.0])   # journaled post-snapshot
            live = svc._graphs["g"]
            assert isinstance(live, DcsrData)
            live_blob = carrier_serialize(live)
            svc.close()

            restored = GraphService.restore(str(tmp_path))
            back = restored._graphs["g"]
            assert isinstance(back, DcsrData)
            assert carrier_serialize(back) == live_blob
            restored.close()

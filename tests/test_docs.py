"""Documentation stays honest: tutorial code runs, docs reference real things."""

import re
import subprocess
import sys
from pathlib import Path

import pytest

ROOT = Path(__file__).resolve().parent.parent


class TestTutorial:
    def test_all_code_blocks_execute(self):
        """Concatenate every ```python block in the tutorial and run it."""
        text = (ROOT / "docs" / "tutorial.md").read_text()
        blocks = re.findall(r"```python\n(.*?)```", text, re.S)
        assert len(blocks) >= 8
        program = "\n".join(blocks)
        proc = subprocess.run(
            [sys.executable, "-c", program],
            capture_output=True, text=True, timeout=120,
        )
        assert proc.returncode == 0, proc.stderr


class TestDocsReferenceRealArtifacts:
    @pytest.mark.parametrize("doc", ["README.md", "DESIGN.md",
                                     "EXPERIMENTS.md",
                                     "docs/architecture.md",
                                     "docs/tutorial.md",
                                     "docs/spec_mapping.md"])
    def test_doc_exists_and_nonempty(self, doc):
        path = ROOT / doc
        assert path.exists(), doc
        assert len(path.read_text()) > 500

    def test_design_module_paths_exist(self):
        """Every src path named in DESIGN.md's inventory exists."""
        text = (ROOT / "DESIGN.md").read_text()
        paths = set(re.findall(r"`(src/repro/[\w/]+\.py)`", text))
        paths |= {p.rstrip("/") for p in
                  re.findall(r"`(src/repro/[\w/]+/)`", text)}
        assert len(paths) >= 15
        for p in paths:
            target = ROOT / p
            glob_ok = any(ROOT.glob(p.replace("*", "**")))
            assert target.exists() or glob_ok or "*" in p, p

    def test_design_bench_targets_exist(self):
        """Every bench target named in DESIGN.md's experiment index exists."""
        text = (ROOT / "DESIGN.md").read_text()
        targets = set(re.findall(r"benchmarks/(bench_\w+\.py)", text))
        assert len(targets) >= 10
        for t in targets:
            assert (ROOT / "benchmarks" / t).exists(), t

    def test_experiments_covers_every_table_and_figure(self):
        text = (ROOT / "EXPERIMENTS.md").read_text()
        for artifact in ("T1", "T2", "T3", "T4", "F1", "F2", "F3",
                         "M1", "M2", "A1", "AB1", "D1"):
            assert f"## {artifact}" in text or f"| {artifact} |" in text, \
                artifact

    def test_readme_modules_exist(self):
        text = (ROOT / "README.md").read_text()
        for mod in re.findall(r"^  (\w+)/\s", text, re.M):
            assert (ROOT / "src" / "repro" / mod).is_dir() or \
                (ROOT / mod).is_dir(), mod

    def test_spec_mapping_is_fresh(self):
        """Regenerating the symbol map produces the committed content."""
        proc = subprocess.run(
            [sys.executable, str(ROOT / "tools" / "gen_spec_map.py")],
            capture_output=True, text=True, timeout=60,
        )
        assert proc.returncode == 0, proc.stderr
        # the generator rewrites the file in place; if it differed the
        # repo copy was stale — git-style check via content stability
        text = (ROOT / "docs" / "spec_mapping.md").read_text()
        assert "symbols total" in text

"""User-defined types end to end: containers, UDF operators, semirings.

UDTs exercise the generic (per-element) kernel paths everywhere — the
same code the §II motivation benchmark measures — so this battery
doubles as a correctness check for the slow paths.
"""

import numpy as np
import pytest

from repro.core import types as T
from repro.core.binaryop import BinaryOp
from repro.core.errors import DomainMismatchError
from repro.core.indexunaryop import IndexUnaryOp
from repro.core.matrix import Matrix
from repro.core.monoid import Monoid
from repro.core.scalar import Scalar
from repro.core.semiring import Semiring
from repro.core.unaryop import UnaryOp
from repro.core.vector import Vector
from repro.ops.apply import apply
from repro.ops.ewise import ewise_add
from repro.ops.mxm import mxm, mxv
from repro.ops.reduce import reduce
from repro.ops.select import select
from repro.ops.transpose import transpose

# A 2-D point domain with component-wise arithmetic.
POINT = T.Type.new("Point2D", size=16, cast=lambda v: (float(v[0]), float(v[1])))

P_ADD = BinaryOp.new(
    lambda a, b: (a[0] + b[0], a[1] + b[1]), POINT, POINT, POINT, "p_add"
)
P_SCALE_SUM = BinaryOp.new(
    lambda a, b: (a[0] * b[0] + a[1] * b[1]), T.FP64, POINT, POINT, "p_dot"
)
P_MONOID = Monoid.new(P_ADD, (0.0, 0.0))


def _pvec(d, size=5):
    v = Vector.new(POINT, size)
    for i, p in d.items():
        v.set_element(p, i)
    v.wait()
    return v


def _pmat(d, nrows=3, ncols=3):
    m = Matrix.new(POINT, nrows, ncols)
    for (i, j), p in d.items():
        m.set_element(p, i, j)
    m.wait()
    return m


class TestUdtContainers:
    def test_scalar_vector_matrix_hold_tuples(self):
        s = Scalar.new(POINT)
        s.set_element((1, 2))
        assert s.extract_element() == (1.0, 2.0)
        v = _pvec({0: (1, 1), 3: (2, 5)})
        assert v.extract_element(3) == (2.0, 5.0)
        m = _pmat({(0, 1): (3, 4)})
        assert m.extract_element(0, 1) == (3.0, 4.0)

    def test_build_with_udt_values(self):
        m = Matrix.new(POINT, 2, 2)
        vals = np.empty(2, dtype=object)
        vals[0] = (1.0, 0.0)
        vals[1] = (0.0, 1.0)
        m.build([0, 1], [1, 0], vals)
        assert m.extract_element(0, 1) == (1.0, 0.0)

    def test_build_with_udf_dup(self):
        m = Matrix.new(POINT, 2, 2)
        vals = np.empty(3, dtype=object)
        vals[:] = [(1.0, 1.0), (2.0, 2.0), (5.0, 0.0)]
        m.build([0, 0, 1], [0, 0, 1], vals, dup=P_ADD)
        assert m.extract_element(0, 0) == (3.0, 3.0)

    def test_dup_and_serialize_restrictions(self):
        from repro.core.errors import InvalidObjectError
        from repro.formats import matrix_serialize
        m = _pmat({(0, 0): (1, 2)})
        with pytest.raises(InvalidObjectError):
            matrix_serialize(m)

    def test_no_implicit_cast_to_udt(self):
        m = _pmat({(0, 0): (1, 2)})
        out = Matrix.new(T.FP64, 3, 3)
        with pytest.raises(DomainMismatchError):
            # FP64 output of a POINT->POINT op: no cast exists
            op = UnaryOp.new(lambda p: p, POINT, POINT)
            apply(out, None, None, op, m)
            out.wait()
            T.common_type(POINT, T.FP64)


class TestUdtOperators:
    def test_unary_apply(self):
        flip = UnaryOp.new(lambda p: (p[1], p[0]), POINT, POINT, "flip")
        v = _pvec({1: (3, 4)})
        out = Vector.new(POINT, 5)
        apply(out, None, None, flip, v)
        assert out.extract_element(1) == (4.0, 3.0)

    def test_unary_apply_udt_to_builtin(self):
        norm2 = UnaryOp.new(lambda p: p[0] ** 2 + p[1] ** 2, T.FP64, POINT)
        v = _pvec({2: (3, 4)})
        out = Vector.new(T.FP64, 5)
        apply(out, None, None, norm2, v)
        assert out.extract_element(2) == 25.0

    def test_ewise_add_with_udt_op(self):
        u = _pvec({0: (1, 2), 1: (5, 5)})
        v = _pvec({1: (1, 1), 3: (7, 0)})
        w = Vector.new(POINT, 5)
        ewise_add(w, None, None, P_ADD, u, v)
        assert w.to_dict() == {
            0: (1.0, 2.0), 1: (6.0, 6.0), 3: (7.0, 0.0)
        }

    def test_index_unary_select_on_udt(self):
        in_box = IndexUnaryOp.new(
            lambda p, i, j, s: abs(p[0]) <= s and abs(p[1]) <= s,
            T.BOOL, POINT, T.FP64,
        )
        m = _pmat({(0, 0): (1, 1), (1, 2): (9, 0), (2, 2): (0.5, -0.5)})
        out = Matrix.new(POINT, 3, 3)
        select(out, None, None, in_box, m, 1.0)
        assert set(out.to_dict()) == {(0, 0), (2, 2)}

    def test_udt_monoid_reduce_to_scalar(self):
        v = _pvec({0: (1, 2), 4: (3, 4)})
        s = Scalar.new(POINT)
        reduce(s, None, P_MONOID, v)
        assert s.extract_element() == (4.0, 6.0)

    def test_transpose_preserves_udt(self):
        m = _pmat({(0, 2): (1, 2)})
        out = Matrix.new(POINT, 3, 3)
        transpose(out, None, None, m)
        assert out.extract_element(2, 0) == (1.0, 2.0)


class TestUdtSemiring:
    def test_point_dot_semiring_mxv(self):
        """⊕ = FP64 plus, ⊗ = point dot-product: POINT x POINT -> FP64."""
        from repro.core.monoid import PLUS_MONOID
        sr = Semiring.new(PLUS_MONOID[T.FP64], P_SCALE_SUM, "dot")
        m = _pmat({(0, 0): (1, 0), (0, 1): (0, 2)}, 2, 2)
        u = Vector.new(POINT, 2)
        u.set_element((5, 5), 0)
        u.set_element((3, 3), 1)
        w = Vector.new(T.FP64, 2)
        mxv(w, None, None, sr, m, u)
        # (1,0)·(5,5) + (0,2)·(3,3) = 5 + 6 = 11
        assert w.extract_element(0) == 11.0

    def test_udt_mxm(self):
        from repro.core.monoid import PLUS_MONOID
        sr = Semiring.new(PLUS_MONOID[T.FP64], P_SCALE_SUM, "dot")
        a = _pmat({(0, 0): (1, 2)}, 2, 2)
        b = _pmat({(0, 1): (3, 4)}, 2, 2)
        c = Matrix.new(T.FP64, 2, 2)
        mxm(c, None, None, sr, a, b)
        assert c.to_dict() == {(0, 1): 11.0}

    def test_mismatched_udt_semiring_rejected(self):
        other = T.Type.new("Other")
        with pytest.raises(DomainMismatchError):
            Monoid.new(BinaryOp.new(lambda a, b: a, other, POINT, POINT), None)

"""Streaming delta ingest + incremental recomputation: parity harness.

The one property everything below enforces: **a warm (delta-patched)
answer is indistinguishable from a cold rebuild.**  The batteries:

* ``Matrix.update_batch`` — merge semantics vs a from-scratch rebuild
  over random bases and batches (Hypothesis), last-write-wins,
  validation, ack counts;
* the memo patch tier — derived blocks (degree, pattern, tril) are
  *updated* from the write set, not dropped, and match a rebuild;
* warm fixpoint algorithms — pagerank / components / triangles after
  random symmetric delta schedules equal the ``ENGINE_DELTA=0`` cold
  oracle on an identical graph;
* the serving layer — ingest buffering, one journal record per flush,
  in-place view patching, restore parity;
* soundness under chaos — transient kernel faults during the delta
  path never yield a wrong (vs. merely recomputed) answer;
* the ``ENGINE_DELTA=0`` ablation — everything still *works* with the
  tier off, it just recomputes.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.algorithms import connected_components, pagerank, triangle_count
from repro.core import types as T
from repro.core.binaryop import SECOND
from repro.core.context import Context, Mode
from repro.core.errors import InvalidIndexError, InvalidValueError
from repro.core.matrix import Matrix
from repro.faults import PLANE, enable_chaos
from repro.internals import config
from repro.engine.stats import STATS

from .helpers import mat_to_dict

SETTINGS = settings(
    max_examples=40,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)

N = 24


@pytest.fixture()
def delta_on():
    # Counter asserts (memo_delta_patches, algo_warm_hits,
    # serve_views_patched) need the whole plumbing on even under the CI
    # ablation matrix (ENGINE_DELTA=0 / ENGINE_ALGO_MEMO=0 /
    # REPRO_RESULT_CACHE=0 full-suite runs); eviction is pinned so LRU
    # can't push a warm block out mid-test.
    with config.option("ENGINE_MEMO", True), \
            config.option("ENGINE_ALGO_MEMO", True), \
            config.option("ENGINE_DELTA", True), \
            config.option("MEMO_EVICTION", "cost"):
        yield


def _ctx(mode=Mode.NONBLOCKING):
    return Context.new(mode, None, None)


def _mat(d: dict, n: int = N, ctx=None, t=T.FP64) -> Matrix:
    m = Matrix.new(t, n, n, ctx)
    if d:
        rows, cols = zip(*d.keys())
        m.build(list(rows), list(cols), list(d.values()), dup=SECOND[t])
    m.wait()
    return m


@st.composite
def base_and_batches(draw):
    """A random base dict plus 1-3 random write batches (with dups)."""
    base = draw(st.dictionaries(
        st.tuples(st.integers(0, N - 1), st.integers(0, N - 1)),
        st.floats(-50, 50, allow_nan=False, width=32),
        max_size=60,
    ))
    batches = draw(st.lists(
        st.lists(
            st.tuples(st.integers(0, N - 1), st.integers(0, N - 1),
                      st.floats(-50, 50, allow_nan=False, width=32)),
            max_size=25,
        ),
        min_size=1, max_size=3,
    ))
    return base, batches


@st.composite
def sym_graph_and_deltas(draw):
    """A random symmetric loop-free graph plus symmetric edge deltas."""
    pairs = draw(st.sets(
        st.tuples(st.integers(0, N - 1), st.integers(0, N - 1)),
        min_size=4, max_size=50,
    ))
    base = set()
    for (i, j) in pairs:
        if i != j:
            base.add((min(i, j), max(i, j)))
    deltas = draw(st.lists(
        st.sets(st.tuples(st.integers(0, N - 1), st.integers(0, N - 1)),
                min_size=1, max_size=6),
        min_size=1, max_size=3,
    ))
    clean = []
    for d in deltas:
        clean.append({(min(i, j), max(i, j)) for (i, j) in d if i != j})
    return sorted(base), [sorted(d) for d in clean if d]


def _sym_arrays(pairs):
    """Undirected pair list -> symmetric COO arrays."""
    r = np.array([p[0] for p in pairs] + [p[1] for p in pairs], dtype=np.int64)
    c = np.array([p[1] for p in pairs] + [p[0] for p in pairs], dtype=np.int64)
    return r, c, np.ones(len(r))


# ---------------------------------------------------------------------------
# Matrix.update_batch semantics
# ---------------------------------------------------------------------------

class TestUpdateBatch:
    @SETTINGS
    @given(base_and_batches())
    def test_matches_from_scratch_rebuild(self, case):
        base, batches = case
        ctx = _ctx()
        m = _mat(dict(base), ctx=ctx)
        model = dict(base)
        for batch in batches:
            rows = [e[0] for e in batch]
            cols = [e[1] for e in batch]
            vals = [e[2] for e in batch]
            before = set(model)
            ack = m.update_batch(rows, cols, vals)
            for i, j, v in batch:           # last write wins, like the ack
                model[(i, j)] = v
            assert ack["nvals"] == len(model)
            assert ack["inserted"] == len(set(model) - before)
            assert ack["inserted"] + ack["updated"] == len(
                {(i, j) for i, j, _ in batch}
            )
        got = mat_to_dict(m)
        assert set(got) == set(model)
        for k, v in model.items():
            assert got[k] == pytest.approx(v)

    def test_empty_batch_is_noop(self):
        ctx = _ctx()
        m = _mat({(0, 1): 2.0}, ctx=ctx)
        version = m._version
        ack = m.update_batch([], [], [])
        assert ack == {"inserted": 0, "updated": 0, "nvals": 1}
        assert m._version == version          # no commit, no invalidation

    def test_bounds_and_length_validation(self):
        ctx = _ctx()
        m = _mat({(0, 1): 2.0}, ctx=ctx)
        with pytest.raises(InvalidIndexError):
            m.update_batch([N], [0], [1.0])
        with pytest.raises(InvalidValueError):
            m.update_batch([0, 1], [0], [1.0])
        assert mat_to_dict(m) == {(0, 1): 2.0}   # failed writes change nothing

    def test_works_in_blocking_mode(self):
        ctx = _ctx(Mode.BLOCKING)
        m = _mat({(0, 0): 1.0}, ctx=ctx)
        m.update_batch([0, 1], [0, 1], [5.0, 6.0])
        assert mat_to_dict(m) == {(0, 0): 5.0, (1, 1): 6.0}


# ---------------------------------------------------------------------------
# The memo patch tier: blocks updated, not dropped
# ---------------------------------------------------------------------------

class TestPatchTier:
    def _warm_graph(self, ctx):
        pairs = [(i, i + 1) for i in range(10)] + [(0, 5), (2, 9)]
        r, c, v = _sym_arrays(pairs)
        m = Matrix.new(T.FP64, N, N, ctx)
        m.build(r, c, v, dup=SECOND[T.FP64])
        m.wait()
        return m

    def test_symmetric_delta_patches_blocks(self, delta_on):
        ctx = _ctx()
        m = self._warm_graph(ctx)
        pagerank(m, tol=1e-4)
        triangle_count(m)
        connected_components(m)
        before = STATS.snapshot()
        m.update_batch(*_sym_arrays([(3, 12)]))
        after = STATS.snapshot()
        patched = after.get("memo_delta_patches", 0) - before.get("memo_delta_patches", 0)
        assert patched > 0
        warm_before = after.get("algo_warm_hits", 0)
        pagerank(m, tol=1e-4)
        triangle_count(m)
        connected_components(m)
        assert STATS.snapshot().get("algo_warm_hits", 0) > warm_before

    def test_patched_answers_match_cold_oracle(self):
        ctx = _ctx()
        m = self._warm_graph(ctx)
        pr0, _ = pagerank(m, tol=1e-5)
        triangle_count(m)
        connected_components(m)
        delta = [(1, 8), (4, 11), (0, 9)]
        m.update_batch(*_sym_arrays(delta))
        pr, _ = pagerank(m, tol=1e-5)
        tc = triangle_count(m)
        cc = connected_components(m)
        with config.option("ENGINE_DELTA", 0):
            oracle = Matrix.from_data(m._capture(), ctx)
            pr_c, _ = pagerank(oracle, tol=1e-5)
            tc_c = triangle_count(oracle)
            cc_c = connected_components(oracle)
        warm, cold = pr.to_dict(), pr_c.to_dict()
        assert set(warm) == set(cold)
        assert all(warm[k] == pytest.approx(cold[k], abs=5e-5) for k in warm)
        assert tc == tc_c
        assert cc.to_dict() == cc_c.to_dict()

    def test_delta_off_drops_instead_of_patching(self):
        ctx = _ctx()
        with config.option("ENGINE_DELTA", 0):
            m = self._warm_graph(ctx)
            pagerank(m, tol=1e-4)
            before = STATS.snapshot()
            m.update_batch(*_sym_arrays([(3, 12)]))
            after = STATS.snapshot()
            assert after.get("memo_delta_patches", 0) == before.get("memo_delta_patches", 0)
            # still correct, just recomputed
            pr, _ = pagerank(m, tol=1e-4)
            assert after.get("algo_warm_hits", 0) == STATS.snapshot().get("algo_warm_hits", 0)

    def test_asymmetric_delta_falls_back_cold(self):
        """A directed write breaks the undirected rules' precondition:
        the entries must drop and the next call recomputes — exactly."""
        ctx = _ctx()
        m = self._warm_graph(ctx)
        triangle_count(m)
        connected_components(m)
        m.update_batch([2], [13], [1.0])      # one direction only
        tc = triangle_count(m)
        with config.option("ENGINE_DELTA", 0):
            oracle = Matrix.from_data(m._capture(), ctx)
            assert tc == triangle_count(oracle)


# ---------------------------------------------------------------------------
# Warm fixpoints across random delta schedules (the core parity property)
# ---------------------------------------------------------------------------

class TestWarmAlgorithmParity:
    @SETTINGS
    @given(sym_graph_and_deltas())
    def test_incremental_equals_cold(self, case):
        base, deltas = case
        ctx = _ctx()
        m = Matrix.new(T.FP64, N, N, ctx)
        r, c, v = _sym_arrays(base)
        m.build(r, c, v, dup=SECOND[T.FP64])
        m.wait()
        # Prime the warm blocks, then stream the schedule through.
        pagerank(m, tol=1e-5)
        triangle_count(m)
        connected_components(m)
        for d in deltas:
            m.update_batch(*_sym_arrays(d))
        pr, _ = pagerank(m, tol=1e-5)
        tc = triangle_count(m)
        cc = connected_components(m)
        with config.option("ENGINE_DELTA", 0):
            oracle = Matrix.from_data(m._capture(), ctx)
            pr_c, _ = pagerank(oracle, tol=1e-5)
            tc_c = triangle_count(oracle)
            cc_c = connected_components(oracle)
        warm, cold = pr.to_dict(), pr_c.to_dict()
        assert set(warm) == set(cold)
        assert all(warm[k] == pytest.approx(cold[k], abs=5e-5) for k in warm)
        assert tc == tc_c
        assert cc.to_dict() == cc_c.to_dict()


# ---------------------------------------------------------------------------
# Serving: ingest buffering, journal coalescing, view patching
# ---------------------------------------------------------------------------

class TestServiceIngest:
    def _service(self, tmp_path=None):
        from repro.serve.service import GraphService

        svc = GraphService(
            Mode.NONBLOCKING, name="svc-stream",
            checkpoint_dir=str(tmp_path) if tmp_path else None,
        )
        pairs = [(i, i + 1) for i in range(12)] + [(0, 6), (3, 10)]
        r, c, v = _sym_arrays(pairs)
        m = Matrix.new(T.FP64, N, N, svc.root)
        m.build(r, c, v, dup=SECOND[T.FP64])
        svc.register_graph("g", m)
        return svc

    def test_buffer_and_explicit_flush(self):
        svc = self._service()
        try:
            ack = svc.ingest_edges("g", [1], [7], [1.0])
            assert ack == {"name": "g", "accepted": 1, "pending": 1,
                           "durable": False}
            before_gen = svc.graph_generation("g")
            assert svc.flush_ingest() == {"g": 1}
            assert svc.graph_generation("g") == before_gen + 1
            assert svc.flush_ingest() == {}       # idempotent
        finally:
            svc.close()

    def test_auto_flush_at_batch_limit(self):
        svc = self._service()
        try:
            with config.option("INGEST_BATCH", 3):
                before = STATS.snapshot().get("ingest_batches", 0)
                acks = [svc.ingest_edges("g", [i], [i + 2], [1.0])
                        for i in range(3)]
                assert [a["durable"] for a in acks] == [False, False, True]
                assert STATS.snapshot().get("ingest_batches", 0) == before + 1
        finally:
            svc.close()

    def test_flush_is_one_journal_record(self, tmp_path):
        svc = self._service(tmp_path)
        try:
            before = STATS.snapshot().get("journal_appends", 0)
            for i in range(8):
                svc.ingest_edges("g", [i], [i + 4], [float(i)])
            svc.flush_ingest()
            assert STATS.snapshot().get("journal_appends", 0) == before + 1
        finally:
            svc.close()

    def test_mutate_flushes_buffered_ingest_first(self):
        """Write order: buffered edges land before the mutation, so a
        mutate of the same key wins."""
        svc = self._service()
        try:
            svc.ingest_edges("g", [2], [9], [111.0])
            svc.mutate_graph("g", [2], [9], [222.0])
            carrier = svc._graphs["g"]
            d = {(int(i), int(j)): float(x) for i, j, x in
                 zip(carrier.row_indices(), carrier.col_indices, carrier.values)}
            assert d[(2, 9)] == 222.0
        finally:
            svc.close()

    def test_restore_replays_flushed_ingest(self, tmp_path):
        svc = self._service(tmp_path)
        try:
            for i in range(5):
                svc.ingest_edges("g", [i], [i + 5], [float(i + 1)])
        finally:
            svc.close()       # close flushes — accepted edges are durable
        from repro.serve.service import GraphService

        svc2 = GraphService.restore(str(tmp_path), name="svc-replay")
        try:
            carrier = svc2._graphs["g"]
            d = {(int(i), int(j)): float(x) for i, j, x in
                 zip(carrier.row_indices(), carrier.col_indices, carrier.values)}
            for i in range(5):
                assert d[(i, i + 5)] == float(i + 1)
        finally:
            svc2.close()

    def test_view_patched_in_place(self, delta_on):
        svc = self._service()
        try:
            sess = svc.open_session("tenant-a")
            v1 = sess.view("g")
            pagerank(v1, tol=1e-4)
            before = STATS.snapshot().get("serve_views_patched", 0)
            svc.mutate_graph("g", *_sym_arrays([(4, 13)]))
            v2 = sess.view("g")
            assert v2 is v1                      # same object, same uid
            assert STATS.snapshot().get("serve_views_patched", 0) == before + 1
            # and the patched view serves the new value
            d = mat_to_dict(v2)
            assert (4, 13) in d and (13, 4) in d
        finally:
            svc.close()

    def test_view_refetches_with_delta_off(self):
        svc = self._service()
        try:
            with config.option("ENGINE_DELTA", 0):
                sess = svc.open_session("tenant-b")
                v1 = sess.view("g")
                svc.mutate_graph("g", *_sym_arrays([(4, 13)]))
                v2 = sess.view("g")
                assert v2 is not v1
                d = mat_to_dict(v2)
                assert (4, 13) in d
        finally:
            svc.close()

    def test_ingest_validates_on_admission(self):
        svc = self._service()
        try:
            with pytest.raises(Exception):
                svc.ingest_edges("g", [N + 3], [0], [1.0])
            with pytest.raises(InvalidValueError):
                svc.ingest_edges("missing", [0], [0], [1.0])
            assert svc.flush_ingest() == {}       # nothing buffered
        finally:
            svc.close()


# ---------------------------------------------------------------------------
# Chaos: transient faults during the delta path never corrupt state
# ---------------------------------------------------------------------------

class TestStreamingUnderChaos:
    def test_update_batch_and_warm_queries_exact_under_chaos(self, delta_on):
        ctx = _ctx()
        pairs = [(i, i + 1) for i in range(10)] + [(0, 5)]
        m = Matrix.new(T.FP64, N, N, ctx)
        r, c, v = _sym_arrays(pairs)
        m.build(r, c, v, dup=SECOND[T.FP64])
        m.wait()
        pagerank(m, tol=1e-4)
        triangle_count(m)
        enable_chaos(99, rate=0.25)
        try:
            for k in range(4):
                m.update_batch(*_sym_arrays([(k, k + 7)]))
            pr, _ = pagerank(m, tol=1e-4)
            tc = triangle_count(m)
        finally:
            PLANE.disable()
        with config.option("ENGINE_DELTA", 0):
            oracle = Matrix.from_data(m._capture(), ctx)
            pr_c, _ = pagerank(oracle, tol=1e-4)
            assert tc == triangle_count(oracle)
        warm, cold = pr.to_dict(), pr_c.to_dict()
        assert set(warm) == set(cold)
        assert all(warm[k] == pytest.approx(cold[k], abs=5e-4) for k in warm)

"""Workload generator battery: determinism, shape, statistical sanity."""

import numpy as np
import pytest

from repro.core import types as T
from repro.generators import (
    erdos_renyi,
    grid_2d,
    path_graph,
    random_matrix_data,
    ring_graph,
    rmat,
    to_matrix,
)


class TestRmat:
    def test_shape_and_counts(self):
        n, rows, cols, vals = rmat(8, 4, seed=1)
        assert n == 256
        assert len(rows) == len(cols) == len(vals) == 4 * 256
        assert rows.min() >= 0 and rows.max() < n
        assert cols.min() >= 0 and cols.max() < n

    def test_deterministic_per_seed(self):
        a = rmat(7, 8, seed=5)
        b = rmat(7, 8, seed=5)
        assert np.array_equal(a[1], b[1]) and np.array_equal(a[2], b[2])
        c = rmat(7, 8, seed=6)
        assert not np.array_equal(a[1], c[1])

    def test_skewed_degree_distribution(self):
        """RMAT's defining property: heavier-tailed than uniform."""
        n, rows, _, _ = rmat(10, 16, seed=2)
        deg = np.bincount(rows, minlength=n)
        n2, rows2, _, _ = erdos_renyi(1024, 16 / 1024, seed=2)
        deg2 = np.bincount(rows2, minlength=n2)
        assert deg.max() > 2 * deg2.max()

    def test_weight_kinds(self):
        _, _, _, w1 = rmat(5, 4, weights="ones")
        assert np.all(w1 == 1.0)
        _, _, _, w2 = rmat(5, 4, weights="int")
        assert np.all(w2 >= 1)
        with pytest.raises(ValueError):
            rmat(5, 4, weights="bogus")


class TestOtherGenerators:
    def test_erdos_renyi_density(self):
        n, rows, cols, _ = erdos_renyi(200, 0.05, seed=1)
        got = len(rows) / (n * n)
        assert 0.04 < got < 0.06
        # positions strictly increasing => no duplicates
        flat = rows * n + cols
        assert np.all(np.diff(flat) > 0)

    def test_grid_2d_edge_count(self):
        n, rows, cols, _ = grid_2d(10)
        assert n == 100
        assert len(rows) == 2 * 2 * 10 * 9   # both directions, two axes

    def test_grid_edges_are_neighbours(self):
        side = 6
        _, rows, cols, _ = grid_2d(side)
        r1, c1 = np.divmod(rows, side)
        r2, c2 = np.divmod(cols, side)
        assert np.all(np.abs(r1 - r2) + np.abs(c1 - c2) == 1)

    def test_path_and_ring(self):
        n, r, c, v = path_graph(5)
        assert len(r) == 4 and np.all(c == r + 1)
        n, r, c, v = ring_graph(5)
        assert len(r) == 5 and c[-1] == 0

    def test_random_matrix_data_no_duplicates(self):
        rows, cols, vals = random_matrix_data(20, 30, 0.2, seed=4)
        flat = rows * 30 + cols
        assert len(np.unique(flat)) == len(flat)
        assert len(vals) == len(rows)


class TestToMatrix:
    def test_basic_build(self):
        m = to_matrix(4, [0, 1], [1, 2], [1.0, 2.0], T.FP64)
        assert m.nvals() == 2 and m.type is T.FP64

    def test_no_self_loops(self):
        m = to_matrix(4, [0, 1, 2], [0, 2, 2], [1.0, 2.0, 3.0], T.FP64,
                      no_self_loops=True)
        assert set(m.to_dict()) == {(1, 2)}

    def test_make_undirected_symmetrizes(self):
        m = to_matrix(4, [0], [1], [5.0], T.FP64, make_undirected=True)
        d = m.to_dict()
        assert d[(0, 1)] == 5.0 and d[(1, 0)] == 5.0

    def test_dedup_folds_duplicates(self):
        m = to_matrix(4, [0, 0], [1, 1], [2.0, 7.0], T.FP64)
        assert m.extract_element(0, 1) == 7.0   # MAX dedup

    def test_rectangular(self):
        m = to_matrix(3, [0], [4], [1.0], T.FP64, ncols=6)
        assert m.shape == (3, 6)

    def test_bool_matrix(self):
        m = to_matrix(3, [0, 1], [1, 2], [True, True], T.BOOL)
        assert m.type is T.BOOL

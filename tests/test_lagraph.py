"""The LAGraph-style Graph wrapper: cached properties + dispatch."""

import numpy as np
import pytest

from repro.core import types as T
from repro.core.errors import InvalidValueError
from repro.core.matrix import Matrix
from repro.lagraph import Graph, GraphKind

TRIANGLE = ([0, 1, 2], [1, 2, 0])      # directed 3-cycle


def _cycle(n=3):
    rows = list(range(n))
    cols = [(i + 1) % n for i in rows]
    return Graph.from_edges(rows, cols, None, n, kind="directed")


class TestConstruction:
    def test_from_edges_directed(self):
        g = _cycle(4)
        assert g.n == 4 and g.nedges == 4
        assert g.kind == GraphKind.DIRECTED

    def test_from_edges_undirected_symmetrizes(self):
        g = Graph.from_edges([0], [1], [2.5], 3, kind="undirected")
        assert g.a.nvals() == 2
        assert g.nedges == 1      # undirected edge counted once
        assert g.is_symmetric()

    def test_no_self_loops_flag(self):
        g = Graph.from_edges([0, 1], [0, 2], None, 3, no_self_loops=True)
        assert g.a.nvals() == 1

    def test_nonsquare_rejected(self):
        m = Matrix.new(T.FP64, 2, 3)
        with pytest.raises(InvalidValueError):
            Graph(m)


class TestCachedProperties:
    def test_degrees(self):
        g = Graph.from_edges([0, 0, 1], [1, 2, 2], None, 3)
        assert g.out_degree().to_dict() == {0: 2, 1: 1}
        assert g.in_degree().to_dict() == {1: 1, 2: 2}

    def test_transposed_cached_and_correct(self):
        g = _cycle()
        at1 = g.transposed()
        at2 = g.transposed()
        assert at1 is at2            # cached
        assert at1.to_dict() == {(1, 0): 1.0, (2, 1): 1.0, (0, 2): 1.0}

    def test_pattern_is_int_ones(self):
        g = Graph.from_edges([0], [1], [7.5], 2)
        p = g.pattern()
        assert p.type is T.INT64 and p.extract_element(0, 1) == 1

    def test_is_symmetric(self):
        assert not _cycle().is_symmetric()
        g = Graph.from_edges([0, 1], [1, 0], [3.0, 3.0], 2)
        assert g.is_symmetric()

    def test_value_asymmetry_detected(self):
        g = Graph.from_edges([0, 1], [1, 0], [3.0, 4.0], 2)
        assert not g.is_symmetric()

    def test_nself_loops(self):
        g = Graph.from_edges([0, 1, 1], [0, 1, 2], None, 3)
        assert g.nself_loops() == 2

    def test_invalidate_clears_cache(self):
        g = _cycle()
        g.out_degree()
        assert g._cache
        g.invalidate()
        assert not g._cache

    def test_set_matrix_invalidates(self):
        g = _cycle()
        g.transposed()
        m = Matrix.new(T.FP64, 2, 2)
        g.set_matrix(m)
        assert g.n == 2 and not g._cache


class TestDispatch:
    def test_bfs_and_sssp(self):
        g = _cycle(5)
        lv = g.bfs_levels(0)
        assert lv.to_dict() == {0: 0, 1: 1, 2: 2, 3: 3, 4: 4}
        assert len(g.bfs_parents(0).to_dict()) == 5
        d = g.sssp(0)
        assert d.to_dict()[4] == 4.0

    def test_triangle_count_undirected(self):
        rows, cols = np.nonzero(~np.eye(4, dtype=bool))
        g = Graph.from_edges(rows, cols, None, 4, kind="undirected")
        # from_edges symmetrized an already-symmetric list: dedup by MAX
        assert g.triangle_count() == 4

    def test_triangle_count_rejects_directed_asymmetric(self):
        with pytest.raises(InvalidValueError):
            _cycle().triangle_count()

    def test_triangle_count_allows_symmetric_directed(self):
        g = Graph.from_edges([0, 1], [1, 0], None, 2, kind="directed")
        assert g.triangle_count() == 0

    def test_components_and_pagerank(self):
        g = _cycle(6)
        cc = g.connected_components()
        assert len(set(int(v) for v in cc.to_dict().values())) == 1
        ranks, iters = g.pagerank()
        assert abs(sum(float(v) for v in ranks.to_dict().values()) - 1) < 1e-9

    def test_ktruss(self):
        rows, cols = np.nonzero(~np.eye(5, dtype=bool))
        g = Graph.from_edges(rows, cols, None, 5, kind="undirected")
        assert g.k_truss(5).nvals() == 20

"""Experiment T1 conformance: the full Table I GrB_Scalar surface (§VI).

Every row of Table I gets a behavioural test, plus the semantics the
section ascribes to scalars: emptiness, typed-at-creation, deferral.
"""

import pytest

from repro.core import types as T
from repro.core.context import Context, Mode, WaitMode
from repro.core.errors import NoValue, NullPointerError, UninitializedObjectError
from repro.core.scalar import Scalar


class TestTableOneSurface:
    def test_new_creates_empty_of_domain(self):
        """GrB_Scalar_new(GrB_Scalar*, GrB_Type)"""
        s = Scalar.new(T.INT32)
        assert s.type is T.INT32
        assert s.nvals() == 0

    def test_new_rejects_null_type(self):
        with pytest.raises(NullPointerError):
            Scalar.new(None)

    def test_dup_copies_value_and_type(self):
        """GrB_Scalar_dup(GrB_Scalar*, const GrB_Scalar)"""
        s = Scalar.new(T.FP64)
        s.set_element(2.5)
        d = s.dup()
        assert d.type is T.FP64
        assert d.extract_element() == 2.5
        # Independent: mutating the dup leaves the original alone.
        d.set_element(9.0)
        assert s.extract_element() == 2.5

    def test_dup_of_empty_is_empty(self):
        assert Scalar.new(T.BOOL).dup().nvals() == 0

    def test_clear_empties(self):
        """GrB_Scalar_clear(GrB_Scalar)"""
        s = Scalar.new(T.INT64)
        s.set_element(7)
        s.clear()
        assert s.nvals() == 0

    def test_nvals_zero_or_one(self):
        """GrB_Scalar_nvals(GrB_Index*, const GrB_Scalar)"""
        s = Scalar.new(T.INT64)
        assert s.nvals() == 0
        s.set_element(1)
        assert s.nvals() == 1
        s.set_element(2)   # still one element
        assert s.nvals() == 1

    def test_set_element_casts_to_domain(self):
        """GrB_Scalar_setElement(GrB_Scalar, <type>)"""
        s = Scalar.new(T.INT8)
        s.set_element(3.9)
        assert s.extract_element() == 3

    def test_set_element_from_scalar_uniform_argument(self):
        """§VI: the scalar argument is always a GrB_Scalar in Table II
        variants — setElement accepts one."""
        src = Scalar.new(T.FP64)
        src.set_element(4.5)
        dst = Scalar.new(T.FP64)
        dst.set_element(src)
        assert dst.extract_element() == 4.5

    def test_set_element_from_empty_scalar_clears(self):
        src = Scalar.new(T.FP64)
        dst = Scalar.new(T.FP64)
        dst.set_element(1.0)
        dst.set_element(src)
        assert dst.nvals() == 0

    def test_extract_element_present(self):
        """GrB_Scalar_extractElement(<type>*, const GrB_Scalar)"""
        s = Scalar.new(T.UINT32)
        s.set_element(42)
        assert s.extract_element() == 42

    def test_extract_element_missing_is_no_value(self):
        """§VI: extracting from an empty scalar reports GrB_NO_VALUE."""
        with pytest.raises(NoValue):
            Scalar.new(T.FP32).extract_element()


class TestScalarSemantics:
    def test_udt_scalar(self):
        udt = T.Type.new("Pair")
        s = Scalar.new(udt)
        s.set_element((1, 2))
        assert s.extract_element() == (1, 2)

    def test_value_or_default(self):
        s = Scalar.new(T.FP64)
        assert s.value_or(-1.0) == -1.0
        s.set_element(3.0)
        assert s.value_or(-1.0) == 3.0

    def test_deferred_in_nonblocking_context(self):
        ctx = Context.new(Mode.NONBLOCKING, None, None)
        s = Scalar.new(T.INT64, ctx)
        s.set_element(5)
        assert not s.is_materialized     # still pending
        s.wait(WaitMode.MATERIALIZE)
        assert s.is_materialized
        assert s.extract_element() == 5

    def test_eager_in_blocking_context(self):
        ctx = Context.new(Mode.BLOCKING, None, None)
        s = Scalar.new(T.INT64, ctx)
        s.set_element(5)
        assert s.is_materialized

    def test_free_then_use_is_uninitialized(self):
        s = Scalar.new(T.INT64)
        s.free()
        with pytest.raises(UninitializedObjectError):
            s.nvals()

    def test_error_string_default_empty(self):
        """§V: an empty error string is always legal; default is empty."""
        assert Scalar.new(T.INT64).error() == ""

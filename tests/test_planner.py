"""The multi-pass planner: CSE, mask pushdown, pass faults, tracing.

PR-3 rebuilt the lazy engine's planner as a pipeline of passes
(``normalize → cse → pushdown → fuse → schedule``) over one immutable
plan IR.  This battery checks each pass's *observable* contract:

* hash-cons CSE publishes one kernel result through every duplicate
  node (``kernel_count`` stays honest — reuse is not a kernel);
* mask pushdown filters inside the producing mxm-family kernel only
  when provably legal, and falls back to the unfiltered §V outcome
  when the optimized chain fails;
* a fault at any pass boundary skips that pass (the previous IR stays
  valid) and the forcing still completes with exact results;
* every pass and kernel records a span that round-trips through the
  Chrome-trace JSON writer.
"""

import json

import numpy as np
import pytest

from repro.core import binaryop as B
from repro.core import types as T
from repro.core import unaryop as U
from repro.core.context import Context, Mode, WaitMode, default_context
from repro.core.descriptor import DESC_RSC, DESC_SC
from repro.core.matrix import Matrix
from repro.core.semiring import PLUS_TIMES_SEMIRING
from repro.core.vector import Vector
from repro.engine.stats import STATS
from repro.faults.plane import PLANE, FaultSpec
from repro.internals import config
from repro.ops.apply import apply
from repro.ops.ewise import ewise_add
from repro.ops.mxm import mxm, vxm

from .helpers import mat_to_dict

N = 24


@pytest.fixture(autouse=True)
def clean_plane_and_stats():
    # This module asserts the CSE / pushdown pass counters, so pin both
    # passes on: the CI ablation matrix runs the whole suite with each
    # knob exported off, and these contracts are knob-on behaviour (the
    # explicit knob tests below override with their own inner option()).
    STATS.reset()
    with config.option("ENGINE_CSE", True), \
            config.option("ENGINE_PUSHDOWN", True):
        yield
    PLANE.disable()


def _graph(ctx, seed=0, n=N, density=0.2, t=T.FP64):
    rng = np.random.default_rng(seed)
    d = rng.random((n, n)) * (rng.random((n, n)) < density)
    r, c = np.nonzero(d)
    m = Matrix.new(t, n, n, ctx)
    m.build(r, c, d[r, c])
    m.wait(WaitMode.MATERIALIZE)
    return m


def _sr():
    return PLUS_TIMES_SEMIRING[T.FP64]


def _blocking_oracle(pipeline):
    ctx = Context.new(Mode.BLOCKING, None, None)
    return pipeline(ctx)


def _nonblocking(pipeline):
    ctx = Context.new(Mode.NONBLOCKING, None, None)
    STATS.reset()
    return pipeline(ctx)


# ---------------------------------------------------------------------------
# CSE
# ---------------------------------------------------------------------------


def _dup_mxm_pipeline(ctx):
    """sum = (A @ A) + (A @ A): the duplicate pair forces together."""
    a = _graph(ctx)
    x1 = Matrix.new(T.FP64, N, N, ctx)
    mxm(x1, None, None, _sr(), a, a)
    x2 = Matrix.new(T.FP64, N, N, ctx)
    mxm(x2, None, None, _sr(), a, a)
    s = Matrix.new(T.FP64, N, N, ctx)
    ewise_add(s, None, None, B.PLUS[T.FP64], x1, x2)
    s.wait(WaitMode.MATERIALIZE)
    return mat_to_dict(s)


class TestCSE:
    def test_duplicate_mxm_runs_one_kernel(self):
        oracle = _blocking_oracle(_dup_mxm_pipeline)
        got = _nonblocking(_dup_mxm_pipeline)
        assert got == oracle
        snap = default_context().engine_stats()
        assert snap["cse_hits"] == 1
        assert snap["cse_reused"] == 1
        # The whole point: the duplicate publishes a shared result, it
        # does not run (or count as) a second kernel.
        assert snap["kernel_count"].get("mxm") == 1

    def test_transitive_cse_three_duplicates(self):
        def pipeline(ctx):
            a = _graph(ctx, seed=2)
            outs = []
            for _ in range(3):
                x = Matrix.new(T.FP64, N, N, ctx)
                mxm(x, None, None, _sr(), a, a)
                outs.append(x)
            s = Matrix.new(T.FP64, N, N, ctx)
            ewise_add(s, None, None, B.PLUS[T.FP64], outs[0], outs[1])
            ewise_add(s, None, B.PLUS[T.FP64], B.PLUS[T.FP64], s, outs[2])
            s.wait(WaitMode.MATERIALIZE)
            return mat_to_dict(s)

        oracle = _blocking_oracle(pipeline)
        assert _nonblocking(pipeline) == oracle
        snap = default_context().engine_stats()
        assert snap["cse_hits"] == 2
        assert snap["cse_reused"] == 2
        assert snap["kernel_count"].get("mxm") == 1

    def test_distinct_expressions_do_not_alias(self):
        def pipeline(ctx):
            a = _graph(ctx, seed=3)
            b2 = _graph(ctx, seed=4)
            x1 = Matrix.new(T.FP64, N, N, ctx)
            mxm(x1, None, None, _sr(), a, a)
            x2 = Matrix.new(T.FP64, N, N, ctx)
            mxm(x2, None, None, _sr(), a, b2)  # different rhs
            s = Matrix.new(T.FP64, N, N, ctx)
            ewise_add(s, None, None, B.PLUS[T.FP64], x1, x2)
            s.wait(WaitMode.MATERIALIZE)
            return mat_to_dict(s)

        oracle = _blocking_oracle(pipeline)
        assert _nonblocking(pipeline) == oracle
        snap = default_context().engine_stats()
        assert snap["cse_hits"] == 0
        assert snap["kernel_count"].get("mxm") == 2

    def test_user_defined_op_is_not_cse_safe(self):
        from repro.core.unaryop import UnaryOp

        twice = UnaryOp.new(lambda x: 2.0 * x, T.FP64, T.FP64, name="twice")

        def pipeline(ctx):
            a = _graph(ctx, seed=5)
            x1 = Matrix.new(T.FP64, N, N, ctx)
            apply(x1, None, None, twice, a)
            x2 = Matrix.new(T.FP64, N, N, ctx)
            apply(x2, None, None, twice, a)
            s = Matrix.new(T.FP64, N, N, ctx)
            ewise_add(s, None, None, B.PLUS[T.FP64], x1, x2)
            s.wait(WaitMode.MATERIALIZE)
            return mat_to_dict(s)

        oracle = _blocking_oracle(pipeline)
        assert _nonblocking(pipeline) == oracle
        # No structural key for user-defined operators: identity-based
        # hash-consing must not assume they are value-pure.
        assert default_context().engine_stats()["cse_hits"] == 0

    def test_engine_cse_option_disables_the_pass(self):
        oracle = _blocking_oracle(_dup_mxm_pipeline)
        with config.option("ENGINE_CSE", False):
            got = _nonblocking(_dup_mxm_pipeline)
        assert got == oracle
        snap = default_context().engine_stats()
        assert snap["cse_hits"] == 0
        assert snap["kernel_count"].get("mxm") == 2

    def test_rep_failure_falls_back_to_own_kernel(self):
        """If the representative's kernel fails, the duplicate runs its
        own kernel instead of publishing a missing result (§V: each
        output carries its own fate)."""
        from repro.core.errors import OutOfMemoryError

        ctx = Context.new(Mode.NONBLOCKING, None, None)
        a = _graph(ctx, seed=6)
        x1 = Matrix.new(T.FP64, N, N, ctx)
        mxm(x1, None, None, _sr(), a, a)
        x2 = Matrix.new(T.FP64, N, N, ctx)
        mxm(x2, None, None, _sr(), a, a)
        s = Matrix.new(T.FP64, N, N, ctx)
        ewise_add(s, None, None, B.PLUS[T.FP64], x1, x2)
        STATS.reset()
        PLANE.configure(1, [FaultSpec(site="kernel.mxm", max_hits=1)])
        with pytest.raises(OutOfMemoryError):
            s.wait(WaitMode.MATERIALIZE)
        PLANE.disable()
        snap = default_context().engine_stats()
        assert snap["cse_fallbacks"] == 1
        # Exactly one of the duplicates failed; the other fell back to
        # its own kernel and holds the true product.
        states = sorted((x1.error() == "", x2.error() == ""))
        assert states == [False, True]
        ok = x1 if x1.error() == "" else x2
        bad = x2 if ok is x1 else x1
        assert ok.nvals() > 0
        assert bad.nvals() == 0  # pre-failure state: the empty matrix


# ---------------------------------------------------------------------------
# Mask pushdown
# ---------------------------------------------------------------------------


def _pushdown_pipeline(desc):
    def pipeline(ctx):
        a = _graph(ctx, seed=7)
        m = _graph(ctx, seed=8, density=0.4)
        c = Matrix.new(T.FP64, N, N, ctx)
        mxm(c, None, None, _sr(), a, a)
        apply(c, m, None, U.IDENTITY[T.FP64], c, desc)
        c.wait(WaitMode.MATERIALIZE)
        return mat_to_dict(c)

    return pipeline


class TestMaskPushdown:
    def test_inplace_masked_consumer_pushes(self):
        pipeline = _pushdown_pipeline(DESC_RSC)
        oracle = _blocking_oracle(pipeline)
        assert _nonblocking(pipeline) == oracle
        snap = default_context().engine_stats()
        assert snap["masks_pushed"] == 1
        assert snap["pushdown_fallbacks"] == 0
        # The consumer keeps its full write-back.
        assert snap["kernel_count"].get("apply") == 1

    def test_no_push_without_replace(self):
        """In-place consumer without REPLACE: write-back merges old C —
        the producer's own unfiltered value — at mask-false positions,
        so filtering the producer would be wrong.  The pass must refuse
        (and the result must still be exact)."""
        pipeline = _pushdown_pipeline(DESC_SC)
        oracle = _blocking_oracle(pipeline)
        assert _nonblocking(pipeline) == oracle
        assert default_context().engine_stats()["masks_pushed"] == 0

    def test_no_push_when_producer_is_live_tail(self):
        """The producer's unfiltered value stays observable through its
        own handle, so the mask must not leak into it."""

        def pipeline(ctx):
            a = _graph(ctx, seed=9)
            m = _graph(ctx, seed=10, density=0.4)
            y = Matrix.new(T.FP64, N, N, ctx)
            mxm(y, None, None, _sr(), a, a)
            out = Matrix.new(T.FP64, N, N, ctx)
            apply(out, m, None, U.IDENTITY[T.FP64], y, DESC_RSC)
            out.wait(WaitMode.MATERIALIZE)
            return mat_to_dict(out), mat_to_dict(y)

        oracle = _blocking_oracle(pipeline)
        assert _nonblocking(pipeline) == oracle
        assert default_context().engine_stats()["masks_pushed"] == 0

    def test_vector_pushdown_bfs_shape(self):
        """vxm producer + complemented structural vector mask — the BFS
        'unvisited frontier expansion' shape."""

        def pipeline(ctx):
            a = _graph(ctx, seed=11, density=0.3)
            u = Vector.new(T.FP64, N, ctx)
            for i in range(0, N, 3):
                u.set_element(1.0, i)
            visited = Vector.new(T.BOOL, N, ctx)
            for i in range(0, N, 2):
                visited.set_element(True, i)
            visited.wait(WaitMode.MATERIALIZE)
            w = Vector.new(T.FP64, N, ctx)
            vxm(w, None, None, _sr(), u, a)
            apply(w, visited, None, U.IDENTITY[T.FP64], w, DESC_RSC)
            w.wait(WaitMode.MATERIALIZE)
            return sorted(w.to_dict().items())

        oracle = _blocking_oracle(pipeline)
        assert _nonblocking(pipeline) == oracle
        assert default_context().engine_stats()["masks_pushed"] == 1

    def test_pushed_producer_failure_reruns_unfiltered(self):
        """A pushed kernel that faults re-runs with the filter stripped;
        the chain's outcome is exactly the unoptimized one."""
        pipeline = _pushdown_pipeline(DESC_RSC)
        oracle = _blocking_oracle(pipeline)
        ctx = Context.new(Mode.NONBLOCKING, None, None)
        a = _graph(ctx, seed=7)
        m = _graph(ctx, seed=8, density=0.4)
        c = Matrix.new(T.FP64, N, N, ctx)
        mxm(c, None, None, _sr(), a, a)
        apply(c, m, None, U.IDENTITY[T.FP64], c, DESC_RSC)
        STATS.reset()
        PLANE.configure(1, [FaultSpec(site="kernel.mxm", max_hits=1)])
        c.wait(WaitMode.MATERIALIZE)
        PLANE.disable()
        snap = default_context().engine_stats()
        assert snap["masks_pushed"] == 1
        assert snap["pushdown_fallbacks"] >= 1
        assert mat_to_dict(c) == oracle

    def test_pushed_consumer_failure_restores_producer(self):
        """The *consumer* of a pushed mask faults after the producer
        committed a filtered carrier: the fallback must recompute the
        producer clean before re-running the consumer, or the §V
        pre-failure walk would observe a filtered intermediate."""
        pipeline = _pushdown_pipeline(DESC_RSC)
        oracle = _blocking_oracle(pipeline)
        ctx = Context.new(Mode.NONBLOCKING, None, None)
        a = _graph(ctx, seed=7)
        m = _graph(ctx, seed=8, density=0.4)
        c = Matrix.new(T.FP64, N, N, ctx)
        mxm(c, None, None, _sr(), a, a)
        apply(c, m, None, U.IDENTITY[T.FP64], c, DESC_RSC)
        STATS.reset()
        PLANE.configure(1, [FaultSpec(site="kernel.pipeline", max_hits=1)])
        c.wait(WaitMode.MATERIALIZE)
        PLANE.disable()
        snap = default_context().engine_stats()
        assert snap["pushdown_fallbacks"] >= 1
        assert mat_to_dict(c) == oracle


# ---------------------------------------------------------------------------
# Planner pass faults
# ---------------------------------------------------------------------------


class TestPlannerPassFaults:
    def test_faulted_pass_is_skipped_not_fatal(self):
        oracle = _blocking_oracle(_dup_mxm_pipeline)
        ctx = Context.new(Mode.NONBLOCKING, None, None)
        STATS.reset()
        PLANE.configure(3, [FaultSpec(site="planner.cse", rate=1.0)])
        got = _dup_mxm_pipeline(ctx)
        PLANE.disable()
        assert got == oracle
        snap = default_context().engine_stats()
        # The pass never ran, so no aliases — but nothing broke either.
        assert snap["cse_hits"] == 0
        assert snap["kernel_count"].get("mxm") == 2
        assert snap["planner_pass_failures"] >= 1
        assert snap["planner_faults"].get("planner.cse", 0) >= 1

    def test_every_pass_faulted_still_exact(self):
        """With the whole planner on fire, forcing degrades to plain
        topological execution — and stays exact."""
        pipeline = _pushdown_pipeline(DESC_RSC)
        oracle = _blocking_oracle(pipeline)
        PLANE.configure(4, [FaultSpec(site="planner.*", rate=1.0)])
        got = _nonblocking(pipeline)
        PLANE.disable()
        assert got == oracle
        snap = default_context().engine_stats()
        assert snap["planner_pass_failures"] >= 5
        assert snap["masks_pushed"] == 0
        assert snap["chains_fused"] == 0

    def test_pass_fault_counters_per_site(self):
        PLANE.configure(5, [FaultSpec(site="planner.fuse", rate=1.0)])
        ctx = Context.new(Mode.NONBLOCKING, None, None)
        a = _graph(ctx, seed=12)
        c = Matrix.new(T.FP64, N, N, ctx)
        mxm(c, None, None, _sr(), a, a)
        apply(c, None, None, U.AINV[T.FP64], c)
        c.wait(WaitMode.MATERIALIZE)
        PLANE.disable()
        faults = default_context().engine_stats()["planner_faults"]
        assert set(faults) == {"planner.fuse"}
        assert faults["planner.fuse"] >= 1


# ---------------------------------------------------------------------------
# Spans and Chrome-trace output
# ---------------------------------------------------------------------------


class TestTracing:
    def _workload(self):
        ctx = Context.new(Mode.NONBLOCKING, None, None)
        _dup_mxm_pipeline(ctx)
        pipeline = _pushdown_pipeline(DESC_RSC)
        pipeline(ctx)

    def test_spans_cover_passes_kernels_and_forces(self):
        STATS.reset()
        self._workload()
        events = STATS.trace_events()
        cats = {e.get("cat") for e in events if e.get("ph") == "X"}
        assert {"planner", "kernel", "force"} <= cats
        names = {e["name"] for e in events}
        for p in ("normalize", "cse", "pushdown", "fuse", "schedule"):
            assert f"planner.{p}" in names
        # Decision instants ride along.
        assert any(e.get("ph") == "i" for e in events)

    def test_trace_events_are_chrome_trace_shaped(self):
        STATS.reset()
        self._workload()
        events = STATS.trace_events()
        assert events[0]["ph"] == "M"  # thread-name metadata first
        for e in events:
            assert "name" in e and "pid" in e and "ph" in e
            if e["ph"] == "X":
                assert e["ts"] >= 0 and e["dur"] >= 0
        json.dumps(events)  # must be serializable as-is

    def test_write_trace_round_trips(self, tmp_path):
        STATS.reset()
        self._workload()
        path = tmp_path / "trace.json"
        n = STATS.write_trace(str(path))
        assert n > 0
        doc = json.loads(path.read_text())
        assert isinstance(doc["traceEvents"], list)
        assert doc["displayTimeUnit"] == "ms"
        spans = [e for e in doc["traceEvents"] if e["ph"] == "X"]
        assert len(spans) >= n - len(doc["traceEvents"]) + len(spans)
        assert any(e["name"].startswith("force:") for e in spans)

    def test_engine_stats_exposes_spans_on_request(self):
        STATS.reset()
        self._workload()
        ctx = default_context()
        assert "trace_events" not in ctx.engine_stats()
        snap = ctx.engine_stats(include_spans=True)
        assert len(snap["trace_events"]) == snap["spans_recorded"] + 1
        assert snap["spans_recorded"] > 0

    def test_reset_clears_spans(self):
        self._workload()
        STATS.reset()
        assert STATS.trace_events() == []
        assert STATS.snapshot()["spans_recorded"] == 0


# ---------------------------------------------------------------------------
# Structural keys (hash-cons identity)
# ---------------------------------------------------------------------------


class TestStructuralKeys:
    def _tail(self, obj):
        return obj._tail

    def test_equal_expressions_equal_keys(self):
        from repro.engine.dag import structural_key

        ctx = Context.new(Mode.NONBLOCKING, None, None)
        a = _graph(ctx, seed=13)
        x1 = Matrix.new(T.FP64, N, N, ctx)
        mxm(x1, None, None, _sr(), a, a)
        x2 = Matrix.new(T.FP64, N, N, ctx)
        mxm(x2, None, None, _sr(), a, a)
        k1 = structural_key(self._tail(x1))
        k2 = structural_key(self._tail(x2))
        assert k1 is not None and k1 == k2

    def test_different_inputs_different_keys(self):
        from repro.engine.dag import structural_key

        ctx = Context.new(Mode.NONBLOCKING, None, None)
        a = _graph(ctx, seed=13)
        b2 = _graph(ctx, seed=14)
        x1 = Matrix.new(T.FP64, N, N, ctx)
        mxm(x1, None, None, _sr(), a, a)
        x2 = Matrix.new(T.FP64, N, N, ctx)
        mxm(x2, None, None, _sr(), a, b2)
        assert structural_key(self._tail(x1)) != structural_key(self._tail(x2))

    def test_canon_map_routes_through_aliases(self):
        from repro.engine.dag import structural_key

        ctx = Context.new(Mode.NONBLOCKING, None, None)
        a = _graph(ctx, seed=13)
        x1 = Matrix.new(T.FP64, N, N, ctx)
        mxm(x1, None, None, _sr(), a, a)
        x2 = Matrix.new(T.FP64, N, N, ctx)
        mxm(x2, None, None, _sr(), a, a)
        y1 = Matrix.new(T.FP64, N, N, ctx)
        ewise_add(y1, None, None, B.PLUS[T.FP64], x1, x1)
        y2 = Matrix.new(T.FP64, N, N, ctx)
        ewise_add(y2, None, None, B.PLUS[T.FP64], x2, x2)
        n1, n2 = self._tail(x1), self._tail(x2)
        # Without canon the consumers hash differently (different input
        # node identities); with x2 canonicalized to x1 they agree.
        assert structural_key(self._tail(y1)) != structural_key(self._tail(y2))
        canon = {id(n2): id(n1)}
        assert (structural_key(self._tail(y1), canon)
                == structural_key(self._tail(y2), canon))

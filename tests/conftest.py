"""Shared fixtures: library lifecycle and mode parametrization."""

from __future__ import annotations

import pytest

from repro.core import context as ctx_mod
from repro.core.context import Mode, finalize, init, is_initialized


@pytest.fixture(autouse=True)
def grb_session():
    """Init before / finalize after every test (the spec lifecycle).

    Tests that manage the lifecycle themselves (test_context) finalize
    and re-init; this fixture just guarantees a clean slate.
    """
    if is_initialized():
        finalize()
    init(Mode.NONBLOCKING)
    yield
    if is_initialized():
        finalize()


@pytest.fixture(params=[Mode.BLOCKING, Mode.NONBLOCKING],
                ids=["blocking", "nonblocking"])
def mode_ctx(request):
    """A context in each execution mode, for mode-sensitive batteries."""
    return ctx_mod.Context.new(request.param, None, None)

"""I/O battery: Matrix Market and edge-list round-trips."""

import pytest

from repro.core import types as T
from repro.core.errors import InvalidObjectError, InvalidValueError
from repro.io import (
    mmread,
    mmread_string,
    mmwrite,
    mmwrite_string,
    read_edgelist,
    write_edgelist,
)

from .helpers import mat_from_dict, mat_to_dict

A_D = {(0, 0): 1.5, (0, 2): 2.0, (2, 1): -3.25}


class TestMatrixMarketRead:
    def test_real_general(self):
        text = (
            "%%MatrixMarket matrix coordinate real general\n"
            "% a comment\n"
            "3 3 3\n"
            "1 1 1.5\n"
            "1 3 2.0\n"
            "3 2 -3.25\n"
        )
        m = mmread_string(text)
        assert m.type is T.FP64
        assert mat_to_dict(m) == A_D

    def test_integer_field(self):
        text = (
            "%%MatrixMarket matrix coordinate integer general\n"
            "2 2 2\n1 2 7\n2 1 -4\n"
        )
        m = mmread_string(text)
        assert m.type is T.INT64
        assert mat_to_dict(m) == {(0, 1): 7, (1, 0): -4}

    def test_pattern_field(self):
        text = (
            "%%MatrixMarket matrix coordinate pattern general\n"
            "2 3 2\n1 2\n2 3\n"
        )
        m = mmread_string(text)
        assert m.type is T.BOOL
        assert set(mat_to_dict(m)) == {(0, 1), (1, 2)}

    def test_symmetric_expansion(self):
        text = (
            "%%MatrixMarket matrix coordinate real symmetric\n"
            "3 3 2\n2 1 5.0\n3 3 1.0\n"
        )
        m = mmread_string(text)
        assert mat_to_dict(m) == {(1, 0): 5.0, (0, 1): 5.0, (2, 2): 1.0}

    def test_skew_symmetric_expansion(self):
        text = (
            "%%MatrixMarket matrix coordinate real skew-symmetric\n"
            "2 2 1\n2 1 4.0\n"
        )
        m = mmread_string(text)
        assert mat_to_dict(m) == {(1, 0): 4.0, (0, 1): -4.0}

    def test_type_override(self):
        text = (
            "%%MatrixMarket matrix coordinate real general\n"
            "2 2 1\n1 1 2.9\n"
        )
        m = mmread_string(text, T.INT32)
        assert m.type is T.INT32 and m.extract_element(0, 0) == 2

    def test_bad_banner(self):
        with pytest.raises(InvalidObjectError):
            mmread_string("%%NotMatrixMarket x y z w\n1 1 0\n")

    def test_unsupported_variants(self):
        with pytest.raises(InvalidValueError):
            mmread_string("%%MatrixMarket matrix array real general\n")
        with pytest.raises(InvalidValueError):
            mmread_string(
                "%%MatrixMarket matrix coordinate complex general\n")
        with pytest.raises(InvalidValueError):
            mmread_string(
                "%%MatrixMarket matrix coordinate real hermitian\n")

    def test_malformed_entries(self):
        with pytest.raises(InvalidObjectError):
            mmread_string(
                "%%MatrixMarket matrix coordinate real general\nbogus\n")
        with pytest.raises(InvalidObjectError):
            mmread_string(
                "%%MatrixMarket matrix coordinate real general\n2 2 1\n1\n")


class TestMatrixMarketWrite:
    def test_roundtrip_real(self):
        m = mat_from_dict(A_D, 3, 3)
        text = mmwrite_string(m, comment="unit test")
        assert text.startswith("%%MatrixMarket matrix coordinate real general")
        assert "% unit test" in text
        back = mmread_string(text)
        assert mat_to_dict(back) == A_D

    def test_roundtrip_pattern(self):
        m = mat_from_dict({(0, 1): True, (1, 0): True}, 2, 2, T.BOOL)
        back = mmread_string(mmwrite_string(m))
        assert back.type is T.BOOL
        assert set(mat_to_dict(back)) == {(0, 1), (1, 0)}

    def test_roundtrip_integer(self):
        m = mat_from_dict({(1, 1): 42}, 2, 2, T.INT16)
        text = mmwrite_string(m)
        assert "integer" in text.splitlines()[0]
        assert mat_to_dict(mmread_string(text)) == {(1, 1): 42}

    def test_file_roundtrip(self, tmp_path):
        m = mat_from_dict(A_D, 3, 3)
        path = tmp_path / "a.mtx"
        mmwrite(path, m)
        back = mmread(path)
        assert mat_to_dict(back) == A_D

    def test_empty_matrix(self, tmp_path):
        from repro.core.matrix import Matrix
        m = Matrix.new(T.FP64, 4, 5)
        path = tmp_path / "e.mtx"
        mmwrite(path, m)
        back = mmread(path)
        assert back.shape == (4, 5) and back.nvals() == 0

    def test_precision_preserved(self):
        m = mat_from_dict({(0, 0): 1.0 / 3.0}, 1, 1)
        back = mmread_string(mmwrite_string(m))
        assert back.extract_element(0, 0) == 1.0 / 3.0


class TestEdgeList:
    def test_read_basic(self, tmp_path):
        p = tmp_path / "g.el"
        p.write_text("# comment\n0 1 2.5\n1 2\n% other comment\n2 0 7\n")
        m, ids = read_edgelist(p)
        assert ids is None
        assert mat_to_dict(m) == {(0, 1): 2.5, (1, 2): 1.0, (2, 0): 7.0}

    def test_relabel_compacts(self, tmp_path):
        p = tmp_path / "g.el"
        p.write_text("10 20\n20 30\n")
        m, ids = read_edgelist(p, relabel=True)
        assert ids.tolist() == [10, 20, 30]
        assert m.nrows == 3
        assert set(mat_to_dict(m)) == {(0, 1), (1, 2)}

    def test_undirected(self, tmp_path):
        p = tmp_path / "g.el"
        p.write_text("0 1 3.0\n")
        m, _ = read_edgelist(p, make_undirected=True)
        assert mat_to_dict(m) == {(0, 1): 3.0, (1, 0): 3.0}

    def test_write_read_roundtrip(self, tmp_path):
        m = mat_from_dict(A_D, 3, 3)
        p = tmp_path / "out.el"
        write_edgelist(p, m)
        back, _ = read_edgelist(p)
        assert mat_to_dict(back) == A_D

    def test_malformed_line(self, tmp_path):
        p = tmp_path / "bad.el"
        p.write_text("0\n")
        with pytest.raises(InvalidObjectError):
            read_edgelist(p)

    def test_empty_file(self, tmp_path):
        p = tmp_path / "empty.el"
        p.write_text("# nothing\n")
        m, _ = read_edgelist(p)
        assert m.nrows == 0 and m.nvals() == 0


class TestGrbFiles:
    def test_matrix_save_load_roundtrip(self, tmp_path):
        from repro.io import load, save
        m = mat_from_dict(A_D, 3, 3)
        path = tmp_path / "m.grb"
        nbytes = save(path, m)
        assert nbytes == path.stat().st_size
        back = load(path)
        assert mat_to_dict(back) == A_D

    def test_vector_save_load_roundtrip(self, tmp_path):
        from repro.core import types as T2
        from repro.core.vector import Vector
        from repro.io import load, save
        v = Vector.new(T2.INT32, 5)
        v.set_element(7, 3)
        path = tmp_path / "v.grb"
        save(path, v)
        back = load(path)
        assert back.to_dict() == {3: 7}
        assert back.type is T2.INT32

    def test_load_rejects_garbage(self, tmp_path):
        from repro.io import load
        path = tmp_path / "junk.grb"
        path.write_bytes(b"this is not a graphblas file at all")
        with pytest.raises(InvalidObjectError):
            load(path)
        path.write_bytes(b"x")
        with pytest.raises(InvalidObjectError):
            load(path)

    def test_save_rejects_non_container(self, tmp_path):
        from repro.io import save
        with pytest.raises(InvalidObjectError):
            save(tmp_path / "x.grb", "nope")

"""Failure injection: user-defined operators that misbehave (§V PANIC).

In C, a user function that crashes inside a kernel is undefined
behaviour; this implementation defines it: the invocation reports
``GrB_PANIC`` like any execution error — deferred in nonblocking mode,
recorded for ``GrB_error`` — and the output object keeps its
pre-failure state.
"""

import pytest

from repro.core import types as T
from repro.core.binaryop import BinaryOp, PLUS
from repro.core.context import Context, Mode
from repro.core.errors import PanicError
from repro.core.indexunaryop import IndexUnaryOp
from repro.core.monoid import Monoid
from repro.core.semiring import Semiring
from repro.core.unaryop import UnaryOp
from repro.core.matrix import Matrix
from repro.core.vector import Vector
from repro.ops.apply import apply
from repro.ops.ewise import ewise_add
from repro.ops.mxm import mxm
from repro.ops.select import select

from .helpers import mat_from_dict, vec_from_dict


def _bomb_unary():
    def f(x):
        raise RuntimeError("boom in unary")
    return UnaryOp.new(f, T.FP64, T.FP64, "bomb")


class TestUdfExceptions:
    def test_unary_udf_exception_becomes_panic(self):
        u = vec_from_dict({0: 1.0}, 3)
        w = Vector.new(T.FP64, 3)
        with pytest.raises(PanicError) as ei:
            apply(w, None, None, _bomb_unary(), u)
            w.wait()
        assert "boom in unary" in str(ei.value)

    def test_panic_deferred_in_nonblocking(self):
        ctx = Context.new(Mode.NONBLOCKING, None, None)
        u = vec_from_dict({0: 1.0}, 3, ctx=ctx)
        w = Vector.new(T.FP64, 3, ctx)
        apply(w, None, None, _bomb_unary(), u)      # no raise yet
        with pytest.raises(PanicError):
            w.wait()
        assert "boom" in w.error()

    def test_output_keeps_pre_failure_state(self):
        ctx = Context.new(Mode.NONBLOCKING, None, None)
        u = vec_from_dict({0: 1.0}, 3, ctx=ctx)
        w = Vector.new(T.FP64, 3, ctx)
        w.set_element(42.0, 1)
        apply(w, None, None, _bomb_unary(), u)
        with pytest.raises(PanicError):
            w.wait()
        assert w.to_dict() == {1: 42.0}

    def test_binary_udf_exception_in_ewise(self):
        def f(x, y):
            raise ValueError("bad pair")
        op = BinaryOp.new(f, T.FP64, T.FP64, T.FP64)
        a = mat_from_dict({(0, 0): 1.0}, 2, 2)
        c = Matrix.new(T.FP64, 2, 2)
        with pytest.raises(PanicError):
            ewise_add(c, None, None, op, a, a)
            c.wait()

    def test_udf_semiring_exception_in_mxm(self):
        def bad_mult(x, y):
            raise ZeroDivisionError("mult exploded")
        mult = BinaryOp.new(bad_mult, T.FP64, T.FP64, T.FP64)
        add = Monoid.new(PLUS[T.FP64], 0.0)
        sr = Semiring.new(add, mult)
        a = mat_from_dict({(0, 0): 1.0, (0, 1): 2.0}, 2, 2)
        c = Matrix.new(T.FP64, 2, 2)
        with pytest.raises(PanicError):
            mxm(c, None, None, sr, a, a)
            c.wait()

    def test_index_udf_exception_in_select(self):
        def f(v, i, j, s):
            raise KeyError("select predicate died")
        op = IndexUnaryOp.new(f, T.BOOL, T.FP64, T.FP64)
        a = mat_from_dict({(0, 0): 1.0}, 2, 2)
        c = Matrix.new(T.FP64, 2, 2)
        with pytest.raises(PanicError):
            select(c, None, None, op, a, 0.0)
            c.wait()

    def test_udf_returning_garbage_type(self):
        op = UnaryOp.new(lambda x: "not a number", T.FP64, T.FP64)
        u = vec_from_dict({0: 1.0}, 2)
        w = Vector.new(T.FP64, 2)
        with pytest.raises(PanicError):
            apply(w, None, None, op, u)
            w.wait()

    def test_object_usable_after_panic(self):
        ctx = Context.new(Mode.NONBLOCKING, None, None)
        u = vec_from_dict({0: 2.0}, 3, ctx=ctx)
        w = Vector.new(T.FP64, 3, ctx)
        apply(w, None, None, _bomb_unary(), u)
        with pytest.raises(PanicError):
            w.wait()
        # Recover: run a healthy operation on the same object.
        apply(w, None, None, PLUS[T.FP64], u, 1.0)
        w.wait()
        assert w.to_dict() == {0: 3.0}
        assert "boom" in w.error()    # history preserved for GrB_error


class TestConcurrentErrorReads:
    def test_error_readable_while_chain_fails(self):
        """``GrB_error`` is thread-safe (§V): readers polling
        ``error(obj)`` while another thread forces a failing deferred
        chain must only ever observe the empty string or the final
        message — never garbage or an exception."""
        import threading

        ctx = Context.new(Mode.NONBLOCKING, None, None)
        u = vec_from_dict({0: 1.0, 1: 2.0}, 4, ctx=ctx)
        w = Vector.new(T.FP64, 4, ctx)
        # A chain with healthy links before the bomb, so forcing does
        # real work while the readers poll.
        apply(w, None, None, PLUS[T.FP64], u, 1.0)
        apply(w, None, None, PLUS[T.FP64], w, 1.0)
        apply(w, None, None, _bomb_unary(), w)

        start = threading.Barrier(5)
        stop = threading.Event()
        seen: list[set] = [set() for _ in range(3)]
        oops: list[BaseException] = []

        def reader(k):
            start.wait()
            while not stop.is_set():
                try:
                    seen[k].add(w.error())
                except BaseException as exc:  # noqa: BLE001
                    oops.append(exc)
                    return

        def forcer():
            start.wait()
            with pytest.raises(PanicError):
                w.wait()
            stop.set()

        threads = [threading.Thread(target=reader, args=(k,))
                   for k in range(3)]
        threads.append(threading.Thread(target=forcer))
        for t in threads:
            t.start()
        start.wait()
        for t in threads:
            t.join(timeout=30)
        assert not oops, f"error() raised concurrently: {oops!r}"
        final = w.error()
        assert "boom" in final
        observed = set().union(*seen)
        assert observed <= {"", final}, f"unexpected values: {observed}"
        # and the text stays stable on repeated reads
        assert w.error() == final

"""A tiny dense-dictionary GraphBLAS interpreter used as a test oracle.

Implements the mathematical definitions naively over ``{(i, j): value}``
maps — O(everything), obviously correct.  Property tests compare the
sparse implementation's results against this model for random inputs,
masks, accumulators, and descriptor settings.
"""

from __future__ import annotations

from typing import Any, Callable

__all__ = [
    "RefVec",
    "RefMat",
    "ref_mxm",
    "ref_mxv",
    "ref_vxm",
    "ref_ewise_add",
    "ref_ewise_mult",
    "ref_select",
    "ref_apply_index",
    "ref_write_back",
    "ref_transpose",
    "ref_extract",
    "ref_assign",
    "ref_kron",
]

RefVec = dict  # {i: value}
RefMat = dict  # {(i, j): value}


def ref_transpose(a: RefMat) -> RefMat:
    return {(j, i): v for (i, j), v in a.items()}


def ref_mxm(a: RefMat, b: RefMat, add: Callable, mult: Callable,
            identity: Any) -> RefMat:
    out: RefMat = {}
    b_by_row: dict[int, list] = {}
    for (k, j), v in b.items():
        b_by_row.setdefault(k, []).append((j, v))
    for (i, k), av in a.items():
        for j, bv in b_by_row.get(k, ()):
            prod = mult(av, bv)
            out[(i, j)] = add(out[(i, j)], prod) if (i, j) in out else prod
    return out


def ref_mxv(a: RefMat, u: RefVec, add: Callable, mult: Callable) -> RefVec:
    out: RefVec = {}
    for (i, k), av in a.items():
        if k in u:
            prod = mult(av, u[k])
            out[i] = add(out[i], prod) if i in out else prod
    return out


def ref_vxm(u: RefVec, a: RefMat, add: Callable, mult: Callable) -> RefVec:
    out: RefVec = {}
    for (k, j), av in a.items():
        if k in u:
            prod = mult(u[k], av)
            out[j] = add(out[j], prod) if j in out else prod
    return out


def ref_ewise_add(a: dict, b: dict, op: Callable) -> dict:
    out = dict(a)
    for key, bv in b.items():
        out[key] = op(a[key], bv) if key in a else bv
    return out


def ref_ewise_mult(a: dict, b: dict, op: Callable) -> dict:
    return {key: op(av, b[key]) for key, av in a.items() if key in b}


def ref_select(a: dict, pred: Callable, s: Any, *, is_matrix: bool) -> dict:
    if is_matrix:
        return {k: v for k, v in a.items() if pred(v, k[0], k[1], s)}
    return {k: v for k, v in a.items() if pred(v, k, 0, s)}


def ref_apply_index(a: dict, fn: Callable, s: Any, *, is_matrix: bool) -> dict:
    if is_matrix:
        return {k: fn(v, k[0], k[1], s) for k, v in a.items()}
    return {k: fn(v, k, 0, s) for k, v in a.items()}


def ref_write_back(
    c: dict,
    t: dict,
    mask: dict | None,
    accum: Callable | None,
    *,
    complement: bool = False,
    structure: bool = False,
    replace: bool = False,
) -> dict:
    """The full C⟨M, r⟩ = C ⊙ T rule over dictionaries."""
    if accum is None:
        z = dict(t)
    else:
        z = dict(c)
        for key, tv in t.items():
            z[key] = accum(c[key], tv) if key in c else tv

    def mask_true(key) -> bool:
        if mask is None:
            base = True
        elif structure:
            base = key in mask
        else:
            base = bool(mask.get(key, False))
        return (not base) if complement else base

    out = {}
    for key, zv in z.items():
        if mask_true(key):
            out[key] = zv
    if not replace:
        for key, cv in c.items():
            if not mask_true(key):
                out[key] = cv
    return out


def ref_extract(a: RefMat, I: list | None, J: list | None,
                nrows: int, ncols: int) -> RefMat:
    rows = list(range(nrows)) if I is None else list(I)
    cols = list(range(ncols)) if J is None else list(J)
    out: RefMat = {}
    for oi, i in enumerate(rows):
        for oj, j in enumerate(cols):
            if (i, j) in a:
                out[(oi, oj)] = a[(i, j)]
    return out


def ref_assign(c: RefMat, a: RefMat, I: list | None, J: list | None,
               accum: Callable | None, nrows: int, ncols: int) -> RefMat:
    rows = list(range(nrows)) if I is None else list(I)
    cols = list(range(ncols)) if J is None else list(J)
    region = {(i, j) for i in rows for j in cols}
    mapped = {
        (rows[ai], cols[aj]): v for (ai, aj), v in a.items()
    }
    out = dict(c)
    if accum is None:
        for key in region:
            out.pop(key, None)
        out.update(mapped)
    else:
        for key, v in mapped.items():
            out[key] = accum(c[key], v) if key in c else v
    return out


def ref_kron(a: RefMat, b: RefMat, op: Callable,
             b_nrows: int, b_ncols: int) -> RefMat:
    out: RefMat = {}
    for (i, j), av in a.items():
        for (k, l), bv in b.items():
            out[(i * b_nrows + k, j * b_ncols + l)] = op(av, bv)
    return out

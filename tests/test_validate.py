"""describe/check_object introspection utilities."""

import numpy as np
import pytest

from repro.core import types as T
from repro.core.context import Context, Mode, default_context
from repro.core.descriptor import DESC_RSC
from repro.core.errors import InvalidObjectError
from repro.core.matrix import Matrix
from repro.core.scalar import Scalar
from repro.internals.containers import MatData, VecData
from repro.validate import check_object, describe

from .helpers import mat_from_dict, vec_from_dict


class TestDescribe:
    def test_matrix_description(self):
        m = mat_from_dict({(0, 1): 2.5}, 2, 3)
        text = describe(m)
        assert "GrB_Matrix" in text
        assert "GrB_FP64" in text and "2 x 3" in text
        assert "(0, 1): 2.5" in text

    def test_vector_and_scalar(self):
        v = vec_from_dict({1: 7.0}, 4)
        assert "size 4" in describe(v)
        s = Scalar.new(T.INT32)
        s.set_element(9)
        s.wait()
        assert "value: " in describe(s)

    def test_pending_not_forced_by_default(self):
        ctx = Context.new(Mode.NONBLOCKING, None, None)
        m = Matrix.new(T.FP64, 2, 2, ctx)
        m.set_element(1.0, 0, 0)
        text = describe(m)
        assert "pending" in text
        assert not m.is_materialized       # describing did not force
        forced = describe(m, force=True)
        assert "entries" in forced

    def test_error_state_shown(self):
        m = Matrix.new(T.FP64, 2, 2)
        m.build([0, 0], [0, 0], [1.0, 2.0], dup=None)
        try:
            m.wait()
        except Exception:
            pass
        assert "last error" in describe(m)

    def test_descriptor_and_context(self):
        assert "GrB_Descriptor" in describe(DESC_RSC)
        text = describe(default_context())
        assert "GrB_Context" in text and "nthreads" in text

    def test_long_entry_list_truncated(self):
        m = mat_from_dict({(0, j): float(j) for j in range(20)}, 1, 20)
        assert "(+12)" in describe(m)


class TestCheckObject:
    def test_valid_objects_pass(self):
        check_object(mat_from_dict({(0, 0): 1.0}, 2, 2))
        check_object(vec_from_dict({0: 1.0}, 2))
        s = Scalar.new(T.FP64)
        check_object(s)

    def test_corrupt_matrix_detected(self):
        m = mat_from_dict({(0, 0): 1.0, (1, 1): 2.0}, 2, 2)
        good = m._capture()
        # Forge an indptr that disagrees with the entry count.
        bad = MatData(2, 2, good.type,
                      np.array([0, 1, 1], dtype=np.int64),
                      good.col_indices, good.values)
        m._data = bad
        with pytest.raises(InvalidObjectError):
            check_object(m)

    def test_corrupt_vector_detected(self):
        v = vec_from_dict({0: 1.0, 1: 2.0}, 4)
        good = v._capture()
        bad = VecData(4, good.type,
                      np.array([3, 1], dtype=np.int64), good.values)
        v._data = bad
        with pytest.raises(InvalidObjectError):
            check_object(v)

    def test_unknown_object_rejected(self):
        with pytest.raises(InvalidObjectError):
            check_object("not a graphblas object")

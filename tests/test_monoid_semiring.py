"""Monoid and semiring battery: identities, reductions, construction rules."""

import numpy as np
import pytest

from repro.core import binaryop as B
from repro.core import monoid as M
from repro.core import semiring as S
from repro.core import types as T
from repro.core.errors import DomainMismatchError, NullPointerError
from repro.core.scalar import Scalar


class TestPredefinedMonoids:
    @pytest.mark.parametrize("t", T.NUMERIC_TYPES, ids=lambda t: t.name)
    def test_plus_identity_zero(self, t):
        m = M.PLUS_MONOID[t]
        assert m.identity == 0
        assert m.reduce_array(t.coerce_array(np.array([]))) == 0

    def test_times_identity_one(self):
        assert M.TIMES_MONOID[T.INT32].identity == 1

    def test_min_max_identities(self):
        assert M.MIN_MONOID[T.FP64].identity == np.inf
        assert M.MAX_MONOID[T.FP64].identity == -np.inf
        assert M.MIN_MONOID[T.INT8].identity == 127
        assert M.MAX_MONOID[T.UINT16].identity == 0

    def test_terminal_values(self):
        assert M.MIN_MONOID[T.INT32].terminal == np.iinfo(np.int32).min
        assert M.LOR_MONOID_BOOL.terminal is np.bool_(True)
        assert M.LAND_MONOID_BOOL.terminal is np.bool_(False)
        assert M.PLUS_MONOID[T.FP64].terminal is None

    def test_bool_monoids(self):
        arr = np.array([True, False, True])
        assert M.LOR_MONOID_BOOL.reduce_array(arr)
        assert not M.LAND_MONOID_BOOL.reduce_array(arr)
        assert not M.LXOR_MONOID_BOOL.reduce_array(arr)  # two trues cancel
        assert M.LXNOR_MONOID_BOOL.identity is np.bool_(True)

    def test_bool_has_no_plus_monoid(self):
        with pytest.raises(DomainMismatchError):
            M.PLUS_MONOID[T.BOOL]


class TestReduction:
    def test_reduce_array(self):
        m = M.PLUS_MONOID[T.INT64]
        assert m.reduce_array(np.arange(10)) == 45

    def test_reduceat_segments(self):
        m = M.MAX_MONOID[T.INT64]
        vals = np.array([3, 1, 4, 1, 5, 9, 2, 6])
        out = m.reduceat(vals, np.array([0, 3, 5]))
        assert out.tolist() == [4, 5, 9]

    def test_reduceat_empty(self):
        m = M.PLUS_MONOID[T.FP64]
        assert len(m.reduceat(np.array([]), np.array([], dtype=np.int64))) == 0

    def test_udf_monoid_reduces_with_loop(self):
        op = B.BinaryOp.new(lambda x, y: x * 10 + y, T.INT64, T.INT64, T.INT64)
        m = M.Monoid.new(op, 0)
        assert not m.is_builtin
        assert m.reduce_array(np.array([1, 2, 3], dtype=np.int64)) == 123
        out = m.reduceat(np.array([1, 2, 3, 4], dtype=np.int64),
                         np.array([0, 2]))
        assert out.tolist() == [12, 34]

    def test_combine(self):
        m = M.MIN_MONOID[T.FP64]
        out = m.combine(np.array([1.0, 5.0]), np.array([3.0, 2.0]))
        assert out.tolist() == [1.0, 2.0]


class TestMonoidConstruction:
    def test_new_with_plain_identity(self):
        m = M.Monoid.new(B.PLUS[T.FP32], 0.0, "my_plus")
        assert m.type == T.FP32
        assert m.name == "my_plus"

    def test_new_with_grb_scalar_identity(self):
        """Table II: GrB_Monoid_new(GrB_Monoid*, GrB_BinaryOp, GrB_Scalar)."""
        s = Scalar.new(T.FP64)
        s.set_element(1.0)
        m = M.Monoid.new(B.TIMES[T.FP64], s)
        assert m.identity == 1.0

    def test_new_rejects_non_endomorphic_op(self):
        with pytest.raises(DomainMismatchError):
            M.Monoid.new(B.EQ[T.FP64], True)  # FP64 x FP64 -> BOOL

    def test_new_rejects_null_op(self):
        with pytest.raises(NullPointerError):
            M.Monoid.new(None, 0)


class TestSemirings:
    def test_predefined_families_exist(self):
        assert S.PLUS_TIMES_SEMIRING[T.FP64].name == \
            "GrB_PLUS_TIMES_SEMIRING_FP64"
        assert S.MIN_PLUS_SEMIRING[T.INT32].add is M.MIN_MONOID[T.INT32]
        assert S.MIN_PLUS_SEMIRING[T.INT32].mult is B.PLUS[T.INT32]

    def test_bool_semirings(self):
        assert S.LOR_LAND_SEMIRING_BOOL.add is M.LOR_MONOID_BOOL
        assert S.LXNOR_LOR_SEMIRING_BOOL.mult is B.LOR[T.BOOL]

    def test_type_accessors(self):
        sr = S.MAX_SECOND_SEMIRING[T.FP32]
        assert sr.out_type == T.FP32
        assert sr.in1_type == T.FP32 and sr.in2_type == T.FP32

    def test_new_enforces_domain_rule(self):
        """Spec: multiply output domain must equal monoid domain."""
        with pytest.raises(DomainMismatchError):
            S.Semiring.new(M.PLUS_MONOID[T.FP64], B.PLUS[T.INT32])

    def test_new_custom(self):
        sr = S.Semiring.new(M.MAX_MONOID[T.INT64], B.PLUS[T.INT64], "maxplus")
        assert sr.name == "maxplus"

    def test_new_rejects_null(self):
        with pytest.raises(NullPointerError):
            S.Semiring.new(None, B.PLUS[T.FP64])

    def test_fourteen_numeric_families(self):
        assert len(S.PREDEFINED_SEMIRINGS) == 14
        for fam in S.PREDEFINED_SEMIRINGS.values():
            assert len(list(fam.domains())) == 10  # numeric domains

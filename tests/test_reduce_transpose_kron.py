"""reduce (all variants, §VI/Table II), transpose, and kronecker batteries."""

import numpy as np
import pytest

from repro.core import binaryop as B
from repro.core import monoid as M
from repro.core import semiring as S
from repro.core import types as T
from repro.core.descriptor import DESC_T0
from repro.core.errors import DimensionMismatchError, DomainMismatchError
from repro.core.matrix import Matrix
from repro.core.scalar import Scalar
from repro.core.vector import Vector
from repro.ops.kronecker import kronecker
from repro.ops.reduce import reduce, reduce_scalar, reduce_to_vector
from repro.ops.transpose import transpose

from .helpers import (
    assert_mat_equal,
    assert_vec_equal,
    mat_from_dict,
    vec_from_dict,
)
from .reference import ref_kron, ref_transpose, ref_write_back

A_D = {(0, 0): 1.0, (0, 2): 2.0, (1, 1): 3.0, (2, 0): 4.0, (2, 2): 5.0}


class TestReduceToVector:
    def test_row_reduce(self):
        A = mat_from_dict(A_D, 3, 3)
        w = Vector.new(T.FP64, 3)
        reduce_to_vector(w, None, None, M.PLUS_MONOID[T.FP64], A)
        assert_vec_equal(w, {0: 3.0, 1: 3.0, 2: 9.0}, "rows")

    def test_empty_rows_absent(self):
        A = mat_from_dict({(0, 0): 1.0, (2, 2): 2.0}, 4, 4)
        w = Vector.new(T.FP64, 4)
        reduce_to_vector(w, None, None, M.PLUS_MONOID[T.FP64], A)
        assert set(w.to_dict()) == {0, 2}

    def test_column_reduce_via_transpose(self):
        A = mat_from_dict(A_D, 3, 3)
        w = Vector.new(T.FP64, 3)
        reduce_to_vector(w, None, None, M.PLUS_MONOID[T.FP64], A, desc=DESC_T0)
        assert_vec_equal(w, {0: 5.0, 1: 3.0, 2: 7.0}, "cols")

    def test_min_monoid_reduce(self):
        A = mat_from_dict(A_D, 3, 3)
        w = Vector.new(T.FP64, 3)
        reduce_to_vector(w, None, None, M.MIN_MONOID[T.FP64], A)
        assert_vec_equal(w, {0: 1.0, 1: 3.0, 2: 4.0}, "min")

    def test_reduce_mask_accum(self):
        A = mat_from_dict(A_D, 3, 3)
        w0 = {0: 10.0}
        mask = {0: True, 1: True}
        w = vec_from_dict(w0, 3)
        reduce_to_vector(w, vec_from_dict(mask, 3, T.BOOL), B.PLUS[T.FP64],
                         M.PLUS_MONOID[T.FP64], A)
        t = {0: 3.0, 1: 3.0, 2: 9.0}
        assert_vec_equal(w, ref_write_back(w0, t, mask, lambda x, y: x + y),
                         "mask accum")

    def test_requires_monoid(self):
        A = mat_from_dict(A_D, 3, 3)
        w = Vector.new(T.FP64, 3)
        with pytest.raises(DomainMismatchError):
            reduce_to_vector(w, None, None, B.PLUS[T.FP64], A)


class TestReduceToScalar:
    def test_typed_variant_returns_value(self):
        A = mat_from_dict(A_D, 3, 3)
        assert reduce_scalar(M.PLUS_MONOID[T.FP64], A) == 15.0

    def test_typed_variant_empty_returns_identity(self):
        """1.X behaviour: empty reduce gives the monoid identity."""
        A = Matrix.new(T.FP64, 3, 3)
        assert reduce_scalar(M.PLUS_MONOID[T.FP64], A) == 0.0
        assert reduce_scalar(M.MIN_MONOID[T.FP64], A) == np.inf

    def test_vector_reduce(self):
        u = vec_from_dict({0: 1.0, 3: 4.0}, 5)
        assert reduce_scalar(M.MAX_MONOID[T.FP64], u) == 4.0

    def test_grb_scalar_variant_empty_gives_empty(self):
        """§VI: the GrB_Scalar variant returns an empty container, not
        the identity, when there is nothing to reduce."""
        A = Matrix.new(T.FP64, 3, 3)
        s = Scalar.new(T.FP64)
        reduce(s, None, M.PLUS_MONOID[T.FP64], A)
        assert s.nvals() == 0

    def test_grb_scalar_variant_value(self):
        A = mat_from_dict(A_D, 3, 3)
        s = Scalar.new(T.FP64)
        reduce(s, None, M.PLUS_MONOID[T.FP64], A)
        assert s.extract_element() == 15.0

    def test_grb_scalar_variant_with_binop(self):
        """§VI: 'we can now define reduction to scalar that takes
        GrB_BinaryOp as the reducing function.'"""
        A = mat_from_dict(A_D, 3, 3)
        s = Scalar.new(T.FP64)
        reduce(s, None, B.MAX[T.FP64], A)
        assert s.extract_element() == 5.0

    def test_binop_reduce_empty_gives_empty(self):
        s = Scalar.new(T.FP64)
        reduce(s, None, B.PLUS[T.FP64], Matrix.new(T.FP64, 2, 2))
        assert s.nvals() == 0

    def test_binop_must_be_endomorphic(self):
        A = mat_from_dict(A_D, 3, 3)
        s = Scalar.new(T.BOOL)
        with pytest.raises(DomainMismatchError):
            reduce(s, None, B.LT[T.FP64], A)

    def test_scalar_reduce_with_accum(self):
        A = mat_from_dict(A_D, 3, 3)
        s = Scalar.new(T.FP64)
        s.set_element(100.0)
        reduce(s, B.PLUS[T.FP64], M.PLUS_MONOID[T.FP64], A)
        assert s.extract_element() == 115.0

    def test_scalar_reduce_accum_on_empty_input_keeps_target(self):
        s = Scalar.new(T.FP64)
        s.set_element(100.0)
        reduce(s, B.PLUS[T.FP64], M.PLUS_MONOID[T.FP64],
               Matrix.new(T.FP64, 2, 2))
        assert s.extract_element() == 100.0

    def test_polymorphic_monoid_first_form(self):
        A = mat_from_dict(A_D, 3, 3)
        assert reduce(M.PLUS_MONOID[T.FP64], A) == 15.0


class TestTranspose:
    def test_basic(self):
        A = mat_from_dict(A_D, 3, 4)
        C = Matrix.new(T.FP64, 4, 3)
        transpose(C, None, None, A)
        assert_mat_equal(C, ref_transpose(A_D), "T")

    def test_double_transpose_is_identity(self):
        A = mat_from_dict(A_D, 3, 4)
        C = Matrix.new(T.FP64, 4, 3)
        transpose(C, None, None, A)
        D = Matrix.new(T.FP64, 3, 4)
        transpose(D, None, None, C)
        assert_mat_equal(D, A_D, "TT")

    def test_desc_t0_makes_it_a_copy(self):
        """The spec corner: transpose of the transposed input is A."""
        A = mat_from_dict(A_D, 3, 4)
        C = Matrix.new(T.FP64, 3, 4)
        transpose(C, None, None, A, desc=DESC_T0)
        assert_mat_equal(C, A_D, "T∘T")

    def test_shape_check(self):
        A = mat_from_dict(A_D, 3, 4)
        C = Matrix.new(T.FP64, 3, 4)
        with pytest.raises(DimensionMismatchError):
            transpose(C, None, None, A)

    def test_masked_accumulated_transpose(self):
        A = mat_from_dict(A_D, 3, 3)
        c0 = {(2, 0): 10.0}
        mask = {(2, 0): True, (0, 0): True}
        C = mat_from_dict(c0, 3, 3)
        transpose(C, mat_from_dict(mask, 3, 3, T.BOOL), B.PLUS[T.FP64], A)
        t = ref_transpose(A_D)
        assert_mat_equal(C, ref_write_back(c0, t, mask, lambda x, y: x + y),
                         "masked T")


class TestKronecker:
    B_D = {(0, 1): 10.0, (1, 0): 20.0}

    def test_matches_reference_and_numpy(self):
        A = mat_from_dict(A_D, 3, 3)
        Bm = mat_from_dict(self.B_D, 2, 2)
        C = Matrix.new(T.FP64, 6, 6)
        kronecker(C, None, None, B.TIMES[T.FP64], A, Bm)
        assert_mat_equal(C, ref_kron(A_D, self.B_D, lambda x, y: x * y, 2, 2),
                         "kron")
        assert np.allclose(C.to_dense(), np.kron(A.to_dense(), Bm.to_dense()))

    def test_kron_with_plus_op(self):
        A = mat_from_dict({(0, 0): 1.0}, 1, 1)
        Bm = mat_from_dict(self.B_D, 2, 2)
        C = Matrix.new(T.FP64, 2, 2)
        kronecker(C, None, None, B.PLUS[T.FP64], A, Bm)
        assert_mat_equal(C, {k: v + 1 for k, v in self.B_D.items()}, "plus")

    def test_kron_semiring_uses_mult(self):
        A = mat_from_dict({(0, 0): 2.0}, 1, 1)
        Bm = mat_from_dict(self.B_D, 2, 2)
        C = Matrix.new(T.FP64, 2, 2)
        kronecker(C, None, None, S.PLUS_TIMES_SEMIRING[T.FP64], A, Bm)
        assert_mat_equal(C, {k: v * 2 for k, v in self.B_D.items()}, "sr")

    def test_kron_shape_check(self):
        A = Matrix.new(T.FP64, 2, 2)
        Bm = Matrix.new(T.FP64, 3, 3)
        C = Matrix.new(T.FP64, 5, 5)
        with pytest.raises(DimensionMismatchError):
            kronecker(C, None, None, B.TIMES[T.FP64], A, Bm)

    def test_kron_transpose_inputs(self):
        at = {(j, i): v for (i, j), v in A_D.items()}
        A_t = mat_from_dict(at, 3, 3)
        Bm = mat_from_dict(self.B_D, 2, 2)
        C = Matrix.new(T.FP64, 6, 6)
        kronecker(C, None, None, B.TIMES[T.FP64], A_t, Bm, desc=DESC_T0)
        assert_mat_equal(C, ref_kron(A_D, self.B_D, lambda x, y: x * y, 2, 2),
                         "kron T0")

    def test_kron_empty(self):
        A = Matrix.new(T.FP64, 2, 2)
        Bm = mat_from_dict(self.B_D, 2, 2)
        C = Matrix.new(T.FP64, 4, 4)
        kronecker(C, None, None, B.TIMES[T.FP64], A, Bm)
        assert C.nvals() == 0

"""Kernel-layer unit battery: carriers, build, parallel plumbing."""

import numpy as np
import pytest

from repro.core import binaryop as B
from repro.core import semiring as S
from repro.core import types as T
from repro.core.errors import DuplicateIndexError, IndexOutOfBoundsError
from repro.internals import parallel
from repro.internals.build import build_matrix, build_vector, dedup_sorted
from repro.internals.containers import (
    VecData,
    coo_to_csr,
    csr_to_coo_rows,
    empty_mat,
    empty_vec,
    pair_keys,
)


class TestContainers:
    def test_empty_constructors(self):
        v = empty_vec(5, T.FP64)
        v.check()
        assert v.nvals == 0 and v.size == 5
        m = empty_mat(3, 4, T.INT32)
        m.check()
        assert m.nvals == 0 and (m.nrows, m.ncols) == (3, 4)

    def test_coo_to_csr_sorts(self):
        m = coo_to_csr(3, 3, T.FP64,
                       np.array([2, 0, 0]), np.array([1, 2, 0]),
                       np.array([3.0, 2.0, 1.0]))
        m.check()
        assert m.indptr.tolist() == [0, 2, 2, 3]
        assert m.col_indices.tolist() == [0, 2, 1]

    def test_row_expansion_roundtrip(self):
        m = coo_to_csr(4, 4, T.FP64,
                       np.array([0, 0, 2, 3]), np.array([1, 3, 0, 2]),
                       np.ones(4))
        rows = csr_to_coo_rows(m.indptr, m.nrows)
        assert rows.tolist() == [0, 0, 2, 3]

    def test_transpose_involution(self):
        m = coo_to_csr(3, 5, T.FP64,
                       np.array([0, 1, 2]), np.array([4, 0, 2]),
                       np.array([1.0, 2.0, 3.0]))
        tt = m.transpose().transpose()
        assert np.array_equal(tt.indptr, m.indptr)
        assert np.array_equal(tt.col_indices, m.col_indices)
        assert np.array_equal(tt.values, m.values)

    def test_pair_keys_int64(self):
        keys = pair_keys(np.array([0, 1]), np.array([2, 3]), 10)
        assert keys.tolist() == [2, 13]
        assert keys.dtype == np.int64

    def test_pair_keys_overflow_fallback(self):
        """Huge shapes switch to exact object keys instead of overflowing."""
        big = 2 ** 40
        keys = pair_keys(np.array([big], dtype=np.int64),
                         np.array([big - 1], dtype=np.int64), 2 ** 41)
        assert keys.dtype == object
        assert keys[0] == big * 2 ** 41 + big - 1

    def test_astype(self):
        v = VecData(3, T.FP64, np.array([1], dtype=np.int64), np.array([2.5]))
        w = v.astype(T.INT32)
        assert w.values.dtype == np.int32 and w.values[0] == 2
        assert v.astype(T.FP64) is v

    def test_to_dense(self):
        v = VecData(3, T.FP64, np.array([1], dtype=np.int64), np.array([2.5]))
        assert v.to_dense().tolist() == [0.0, 2.5, 0.0]


class TestBuildKernels:
    def test_dedup_sorted_no_dups_passthrough(self):
        keys = np.array([1, 3, 5])
        vals = np.array([1.0, 2.0, 3.0])
        k, v = dedup_sorted(keys, vals, None, T.FP64)
        assert k is keys

    def test_dedup_sorted_folds_left_to_right(self):
        keys = np.array([1, 1, 1, 2])
        vals = np.array([8.0, 4.0, 2.0, 9.0])
        k, v = dedup_sorted(keys, vals, B.DIV[T.FP64], T.FP64)
        assert k.tolist() == [1, 2]
        assert v.tolist() == [1.0, 9.0]   # (8/4)/2

    def test_dedup_sorted_null_dup_raises(self):
        with pytest.raises(DuplicateIndexError):
            dedup_sorted(np.array([1, 1]), np.array([1.0, 2.0]), None, T.FP64)

    def test_build_vector_scalar_broadcast(self):
        v = build_vector(5, T.FP64, [1, 3], np.asarray(7.0), None)
        assert v.values.tolist() == [7.0, 7.0]

    def test_build_matrix_bounds(self):
        with pytest.raises(IndexOutOfBoundsError):
            build_matrix(2, 2, T.FP64, [0], [5], [1.0], None)
        with pytest.raises(IndexOutOfBoundsError):
            build_matrix(2, 2, T.FP64, [-1], [0], [1.0], None)

    def test_build_matrix_udf_dup(self):
        op = B.BinaryOp.new(lambda x, y: x * 100 + y, T.INT64, T.INT64, T.INT64)
        m = build_matrix(2, 2, T.INT64, [0, 0, 0], [0, 0, 0], [1, 2, 3], op)
        assert m.values[0] == 10203


class TestParallel:
    def test_row_blocks_cover_exactly(self):
        blocks = parallel.row_blocks(10, 3)
        assert blocks[0][0] == 0 and blocks[-1][1] == 10
        covered = sum(hi - lo for lo, hi in blocks)
        assert covered == 10

    def test_row_blocks_more_threads_than_rows(self):
        blocks = parallel.row_blocks(2, 8)
        assert len(blocks) == 2

    def test_row_blocks_empty_matrix(self):
        assert parallel.row_blocks(0, 4) == []

    def test_concat_row_blocks(self):
        a = coo_to_csr(2, 3, T.FP64, np.array([0, 1]), np.array([0, 2]),
                       np.array([1.0, 2.0]))
        b = coo_to_csr(1, 3, T.FP64, np.array([0]), np.array([1]),
                       np.array([3.0]))
        m = parallel.concat_row_blocks([a, b], 3)
        m.check()
        assert m.nrows == 3
        assert m.to_dense()[2, 1] == 3.0

    @pytest.mark.parametrize("nthreads", [1, 2, 4, 7])
    def test_parallel_mxm_matches_serial(self, nthreads):
        rng = np.random.default_rng(0)
        d = rng.random((17, 13)) * (rng.random((17, 13)) < 0.3)
        e = rng.random((13, 11)) * (rng.random((13, 11)) < 0.3)
        r, c = np.nonzero(d)
        A = coo_to_csr(17, 13, T.FP64, r, c, d[r, c])
        r, c = np.nonzero(e)
        Bm = coo_to_csr(13, 11, T.FP64, r, c, e[r, c])
        out = parallel.parallel_mxm(A, Bm, S.PLUS_TIMES_SEMIRING[T.FP64],
                                    nthreads)
        out.check()
        assert np.allclose(out.to_dense(), d @ e)

    def test_parallel_mxm_empty_result(self):
        A = empty_mat(4, 4, T.FP64)
        out = parallel.parallel_mxm(A, A, S.PLUS_TIMES_SEMIRING[T.FP64], 4)
        assert out.nvals == 0

    def test_chunk_rows_limits_split(self):
        """chunk_rows from the exec spec bounds the block granularity."""
        rng = np.random.default_rng(3)
        d = rng.random((16, 16)) * (rng.random((16, 16)) < 0.3)
        r, c = np.nonzero(d)
        A = coo_to_csr(16, 16, T.FP64, r, c, d[r, c])
        # chunk_rows=16 forces a single block even with 8 threads.
        out = parallel.parallel_mxm(
            A, A, S.PLUS_TIMES_SEMIRING[T.FP64], 8, chunk_rows=16)
        out.check()
        assert np.allclose(out.to_dense(), d @ d)
        # chunk_rows=4 allows at most 4 blocks; results identical.
        out2 = parallel.parallel_mxm(
            A, A, S.PLUS_TIMES_SEMIRING[T.FP64], 8, chunk_rows=4)
        assert np.allclose(out2.to_dense(), d @ d)

    def test_chunk_rows_through_context(self):
        from repro.core.context import Context, Mode
        from repro.core.matrix import Matrix
        from repro.ops.mxm import mxm as op_mxm
        ctx = Context.new(Mode.NONBLOCKING, None,
                          {"nthreads": 8, "chunk_rows": 1024})
        rng = np.random.default_rng(5)
        d = rng.random((12, 12)) * (rng.random((12, 12)) < 0.4)
        r, c = np.nonzero(d)
        A = Matrix.new(T.FP64, 12, 12, ctx)
        A.build(r, c, d[r, c])
        C = Matrix.new(T.FP64, 12, 12, ctx)
        op_mxm(C, None, None, S.PLUS_TIMES_SEMIRING[T.FP64], A, A)
        assert np.allclose(C.to_dense(), d @ d)

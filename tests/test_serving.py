"""The multi-tenant serving layer (:mod:`repro.serve`).

Battery structure:

* resource-spec split of :class:`Context` (memo quota, fault domain);
* service/session basics (resident graphs, zero-copy views, lifecycle);
* tenant isolation — free, memo pressure, and degradation in one
  tenant never perturb a sibling's results or memo entries;
* admission-control rejection semantics (typed, transient, immediate);
* batcher grouping + parity of coalesced execution vs serial per-query
  dispatch;
* a chaos property: seeded faults targeted at one tenant's fault
  domain, fault-free oracle parity in the other;
* a thread-safety stress over concurrent sessions (satellite: guarded
  per-Context bookkeeping).
"""

import asyncio
import threading

import numpy as np
import pytest

from repro.algorithms import bfs_levels, pagerank, triangle_count
from repro.core import binaryop as B
from repro.core import types as T
from repro.core.context import Context, Mode, ResourceSpec
from repro.core.errors import (
    InsufficientSpaceError,
    InvalidValueError,
)
from repro.core.matrix import Matrix
from repro.core.semiring import PLUS_TIMES_SEMIRING
from repro.core.sequence import wait
from repro.core.types import INT64
from repro.engine.stats import STATS
from repro.faults.plane import PLANE, FaultSpec, configure_from_env
from repro.internals import config
from repro.ops.ewise import ewise_add
from repro.ops.mxm import mxm
from repro.serve import (
    AdmissionController,
    GraphServer,
    GraphService,
    Query,
    ServiceOverloadError,
    coalesce,
)


def ring_graph(n: int = 48, chord: int = 7) -> Matrix:
    """Symmetric ring-with-chords graph: connected, deterministic."""
    rows = np.arange(n)
    r = np.concatenate([rows, (rows + 1) % n, rows, (rows + chord) % n])
    c = np.concatenate([(rows + 1) % n, rows, (rows + chord) % n, rows])
    a = Matrix.new(INT64, n, n)
    a.build(r, c, np.ones(len(r), dtype=np.int64), dup=lambda x, y: x)
    a.wait()
    return a


@pytest.fixture(autouse=True)
def serving_knobs():
    # These tests exercise the batcher and per-tenant memos directly,
    # so they pin the knobs on even under the CI ablation matrix
    # (REPRO_SERVE_BATCH=0 etc.); the knob-behavior tests flip them
    # off explicitly.
    with config.option("SERVE_BATCH", True), \
            config.option("ENGINE_MEMO", True), \
            config.option("ENGINE_ALGO_MEMO", True):
        yield
    PLANE.disable()
    configure_from_env()


@pytest.fixture
def service():
    svc = GraphService()
    svc.register_graph("g", ring_graph())
    yield svc
    svc.close()


# -- the Context split: resource spec vs session state ------------------------


class TestResourceSpec:
    def test_new_spec_keys_resolve_through_ancestors(self):
        parent = Context.new(Mode.NONBLOCKING, exec_spec={
            "memo_capacity": 9, "fault_domain": "team-a"})
        child = Context.new(Mode.NONBLOCKING, parent=parent)
        assert child.memo_capacity == 9
        assert child.fault_domain == "team-a"
        override = Context.new(
            Mode.NONBLOCKING, parent=parent,
            exec_spec={"fault_domain": "team-b"})
        assert override.fault_domain == "team-b"
        assert override.memo_capacity == 9

    def test_defaults_are_none(self):
        ctx = Context.new(Mode.NONBLOCKING)
        assert ctx.memo_capacity is None
        assert ctx.fault_domain is None

    def test_spec_validation(self):
        with pytest.raises(InvalidValueError):
            ResourceSpec({"memo_capacity": 0})
        with pytest.raises(InvalidValueError):
            ResourceSpec({"fault_domain": ""})
        with pytest.raises(InvalidValueError):
            ResourceSpec({"quota": 3})
        assert ResourceSpec({"nthreads": 2}).get("nthreads") == 2

    def test_context_accepts_resource_spec_object(self):
        spec = ResourceSpec({"nthreads": 2, "memo_capacity": 4})
        ctx = Context.new(Mode.NONBLOCKING, exec_spec=spec)
        assert ctx.nthreads == 2
        assert ctx.exec_spec() == {"nthreads": 2, "memo_capacity": 4}

    def test_memo_capacity_bounds_the_context_memo(self):
        ctx = Context.new(Mode.NONBLOCKING, exec_spec={"memo_capacity": 3})
        assert ctx.result_memo().capacity == 3
        default = Context.new(Mode.NONBLOCKING)
        assert default.result_memo().capacity == \
            config.get_option("MEMO_CAPACITY")


# -- service + session basics -------------------------------------------------


class TestService:
    def test_register_and_views_share_the_carrier(self, service):
        meta = service.graphs()["g"]
        assert meta["nrows"] == 48
        s = service.open_session("t", memo_capacity=4)
        view = s.view("g")
        assert view.context is s.ctx
        assert view._data is service._graphs["g"]  # zero-copy
        assert s.ctx.fault_domain == "t"
        assert s.ctx.memo_capacity == 4

    def test_resident_snapshot_survives_later_writes(self, service):
        a = ring_graph(8, 3)
        service.register_graph("snap", a)
        before = service.graphs()["snap"]["nvals"]
        a.set_element(1, 0, 4)  # write AFTER registration
        a.wait()
        assert service.graphs()["snap"]["nvals"] == before

    def test_unknown_graph_rejected(self, service):
        s = service.open_session("t")
        with pytest.raises(InvalidValueError):
            service.execute(s, Query.make("triangles", "nope"))

    def test_duplicate_tenant_rejected(self, service):
        service.open_session("t")
        with pytest.raises(InvalidValueError):
            service.open_session("t")

    def test_close_frees_the_tenant_context(self, service):
        s = service.open_session("t")
        ctx = s.ctx
        s.close()
        assert ctx.is_freed
        assert "t" not in service.sessions()
        # The tenant name is reusable after close.
        service.open_session("t")

    def test_query_validation(self):
        with pytest.raises(InvalidValueError):
            Query.make("bfs", "g")               # bfs needs a source
        with pytest.raises(InvalidValueError):
            Query.make("triangles", "g", 3)      # triangles takes none
        with pytest.raises(InvalidValueError):
            Query.make("sssp", "g")              # unknown kind

    def test_single_query_parity_and_plain_data(self, service):
        a = ring_graph()
        s = service.open_session("t")
        res = service.execute(s, Query.make("bfs", "g", 5))
        oracle = {int(k): int(v) for k, v in
                  bfs_levels(a, 5).to_dict().items()}
        assert res.value == oracle
        assert all(type(k) is int and type(v) is int
                   for k, v in res.value.items())
        tri = service.execute(s, Query.make("triangles", "g"))
        assert tri.value == int(triangle_count(a))
        pr = service.execute(s, Query.make("pagerank", "g", tol=1e-7))
        ranks, _ = pagerank(a, tol=1e-7)
        want = {int(k): float(v) for k, v in ranks.to_dict().items()}
        assert pr.value["ranks"] == pytest.approx(want)


# -- tenant isolation ---------------------------------------------------------


class TestTenantIsolation:
    def test_free_of_one_tenant_leaves_sibling_serving(self, service):
        a_sess = service.open_session("a")
        b_sess = service.open_session("b")
        service.execute(b_sess, Query.make("bfs", "g", 0))
        before = b_sess.stats()["memo_entries"]
        a_sess.close()
        assert b_sess.stats()["memo_entries"] == before
        res = service.execute(b_sess, Query.make("bfs", "g", 1))
        oracle = {int(k): int(v) for k, v in
                  bfs_levels(ring_graph(), 1).to_dict().items()}
        assert res.value == oracle

    def test_memo_pressure_in_one_tenant_spares_the_sibling(self, service):
        a_sess = service.open_session("a", memo_capacity=2)
        b_sess = service.open_session("b", memo_capacity=16)
        service.execute(b_sess, Query.make("triangles", "g"))
        b_entries = b_sess.stats()["memo_entries"]
        assert b_entries > 0
        # Thrash tenant a's tiny memo with distinct queries.
        for src in range(6):
            service.execute(a_sess, Query.make("bfs", "g", src))
        assert len(a_sess.ctx.result_memo()) <= 2
        assert b_sess.stats()["memo_entries"] == b_entries

    def test_degradation_is_tenant_local(self, service):
        a_sess = service.open_session("a", nthreads=4)
        b_sess = service.open_session("b", nthreads=4)
        threshold = config.get_option("DEGRADE_WORKER_FAULTS")
        for _ in range(threshold):
            a_sess.ctx.record_worker_fault()
        assert a_sess.is_degraded
        assert not b_sess.is_degraded
        assert b_sess.ctx.nthreads == 4
        # Both still answer correctly; a's queries just run serial.
        oracle = {int(k): int(v) for k, v in
                  bfs_levels(ring_graph(), 2).to_dict().items()}
        assert service.execute(
            a_sess, Query.make("bfs", "g", 2)).value == oracle
        assert service.execute(
            b_sess, Query.make("bfs", "g", 2)).value == oracle
        assert a_sess.stats()["worker_faults"] == threshold
        assert b_sess.stats()["worker_faults"] == 0

    def test_per_tenant_stats_rollup(self, service):
        busy = service.open_session("busy")
        idle = service.open_session("idle")
        service.execute(busy, Query.make("triangles", "g"))
        busy_snap = busy.stats()
        idle_snap = idle.stats()
        assert busy_snap["kernels"] > 0
        assert busy_snap["kernel_time_ms"] > 0
        assert busy_snap["queries_completed"] == 1
        assert idle_snap["kernels"] == 0
        assert idle_snap["queries_completed"] == 0
        # The rollup also surfaces through Context.engine_stats().
        snap = busy.ctx.engine_stats()
        assert snap["tenant"]["kernels"] == busy_snap["kernels"]
        assert snap["fault_domain"] == "busy"


# -- admission control --------------------------------------------------------


class TestAdmission:
    def test_tenant_cap_and_queue_full(self):
        adm = AdmissionController(max_pending=3, per_tenant=2)
        adm.try_admit("a")
        adm.try_admit("a")
        with pytest.raises(ServiceOverloadError) as exc_info:
            adm.try_admit("a")
        assert exc_info.value.reason == "tenant-cap"
        adm.try_admit("b")
        with pytest.raises(ServiceOverloadError) as exc_info:
            adm.try_admit("c")
        assert exc_info.value.reason == "queue-full"
        adm.release("a")
        adm.try_admit("c")  # slot freed
        snap = adm.snapshot()
        assert snap["rejected_total"] == 2
        assert snap["rejected_by_tenant"] == {"a": 1, "c": 1}

    def test_rejection_is_typed_and_transient(self):
        adm = AdmissionController(max_pending=1, per_tenant=1)
        adm.try_admit("a")
        with pytest.raises(InsufficientSpaceError) as exc_info:
            adm.try_admit("b")
        assert exc_info.value.transient is True
        assert isinstance(exc_info.value, ServiceOverloadError)

    def test_server_sheds_under_flood_then_recovers(self, service):
        s = service.open_session("t")
        base = STATS.snapshot()

        async def flood():
            async with GraphServer(
                service, max_pending=32, per_tenant=3, batch_window=4,
            ) as server:
                jobs = [
                    server.submit(s, Query.make("bfs", "g", i))
                    for i in range(10)
                ]
                results = await asyncio.gather(*jobs,
                                               return_exceptions=True)
                # After the flood drains, the tenant is admitted again.
                retry = await server.submit(s, Query.make("bfs", "g", 0))
                return results, retry

        results, retry = asyncio.run(flood())
        shed = [r for r in results if isinstance(r, ServiceOverloadError)]
        served = [r for r in results if not isinstance(r, BaseException)]
        assert len(shed) + len(served) == 10
        assert shed, "flood above the tenant cap must shed"
        assert all(r.reason == "tenant-cap" for r in shed)
        oracle = {int(k): int(v) for k, v in
                  bfs_levels(ring_graph(), 0).to_dict().items()}
        assert retry.value == oracle
        snap = STATS.snapshot()
        assert snap["serve_rejected"] - base["serve_rejected"] == len(shed)
        assert snap["serve_completed"] - base["serve_completed"] \
            >= len(served)


# -- the batcher --------------------------------------------------------------


class TestBatcher:
    def _entries(self, service):
        a_sess = service.open_session("a")
        b_sess = service.open_session("b")
        return a_sess, b_sess, [
            (a_sess, Query.make("bfs", "g", 0)),
            (b_sess, Query.make("bfs", "g", 7)),
            (a_sess, Query.make("triangles", "g")),
            (b_sess, Query.make("triangles", "g")),
            (a_sess, Query.make("pagerank", "g", tol=1e-4)),
        ]

    def test_grouping(self, service):
        _, _, entries = self._entries(service)
        base = STATS.snapshot()
        groups = coalesce(entries)
        modes = sorted(g.mode for g in groups)
        assert modes == ["dedup", "msbfs", "single"]
        by_mode = {g.mode: g for g in groups}
        assert len(by_mode["msbfs"].entries) == 2
        assert len(by_mode["dedup"].entries) == 2
        snap = STATS.snapshot()
        assert snap["serve_batches"] - base["serve_batches"] == 2
        assert snap["serve_batched_queries"] \
            - base["serve_batched_queries"] == 4

    def test_knob_disables_coalescing(self, service):
        _, _, entries = self._entries(service)
        base = STATS.snapshot()["serve_batches"]
        with config.option("SERVE_BATCH", False):
            groups = coalesce(entries)
        assert all(g.mode == "single" for g in groups)
        assert STATS.snapshot()["serve_batches"] == base

    def test_degraded_tenant_excluded_from_shared_groups(self, service):
        a_sess, _, entries = self._entries(service)
        for _ in range(config.get_option("DEGRADE_WORKER_FAULTS")):
            a_sess.ctx.record_worker_fault()
        groups = coalesce(entries)
        for g in groups:
            if len(g.entries) > 1:
                assert all(s is not a_sess for _, s, _ in g.entries)

    def test_batched_parity_vs_serial(self, service):
        a = ring_graph()
        a_sess, b_sess, entries = self._entries(service)
        results = service.execute_window(entries)
        assert not any(isinstance(r, Exception) for r in results)
        # Riders of shared groups are marked; answers match serial.
        assert results[0].batched and results[1].batched
        assert results[2].batched and results[3].batched
        assert not results[4].batched
        for res, (_, query) in zip(results[:2], entries[:2]):
            oracle = {int(k): int(v) for k, v in
                      bfs_levels(a, query.source).to_dict().items()}
            assert res.value == oracle
        assert results[2].value == results[3].value == int(triangle_count(a))
        serial = b_sess.run(Query.make("pagerank", "g", tol=1e-4))
        assert results[4].value["ranks"] == \
            pytest.approx(serial.value["ranks"])
        # Tenant rollups saw the batched completions.
        assert a_sess.stats()["queries_batched"] == 2
        assert b_sess.stats()["queries_batched"] == 2

    def test_window_falls_back_per_query_on_missing_graph(self, service):
        a_sess = service.open_session("a")
        b_sess = service.open_session("b")
        entries = [
            (a_sess, Query.make("bfs", "gone", 0)),
            (b_sess, Query.make("bfs", "gone", 1)),
            (b_sess, Query.make("triangles", "g")),
        ]
        results = service.execute_window(entries)
        assert isinstance(results[0], InvalidValueError)
        assert isinstance(results[1], InvalidValueError)
        assert results[2].value == int(triangle_count(ring_graph()))

    def test_server_batches_concurrent_load(self, service):
        a = ring_graph()
        sessions = [service.open_session(f"t{i}") for i in range(3)]

        async def load():
            async with GraphServer(service, batch_window=8) as server:
                jobs = [
                    server.submit(sessions[i % 3], Query.make("bfs", "g", i))
                    for i in range(9)
                ]
                return await asyncio.gather(*jobs)

        results = asyncio.run(load())
        for i, res in enumerate(results):
            oracle = {int(k): int(v) for k, v in
                      bfs_levels(a, i).to_dict().items()}
            assert res.value == oracle
            assert res.total_ms >= res.latency_ms >= 0.0
        assert any(r.batched for r in results)
        assert STATS.snapshot()["serve_batches"] >= 1


# -- chaos: faults scoped to one tenant's domain ------------------------------


def diamond(ctx):
    """Two independent mxm chains joined by an eWise add — the shape
    whose forcing has two concurrently-ready nodes, so it flows through
    the engine's worker pool (where ``scheduler.worker`` faults land)."""
    def _mat(d):
        m = Matrix.new(T.FP64, 4, 4, ctx)
        r, c = zip(*d)
        m.build(np.array(r), np.array(c), np.array(list(d.values())))
        return m

    a = _mat({(0, 1): 2.0, (1, 2): 3.0, (2, 0): 4.0, (3, 3): 1.0})
    b = _mat({(0, 0): 1.0, (1, 1): 2.0, (2, 3): 3.0})
    c = Matrix.new(T.FP64, 4, 4, ctx)
    d = Matrix.new(T.FP64, 4, 4, ctx)
    e = Matrix.new(T.FP64, 4, 4, ctx)
    pt = PLUS_TIMES_SEMIRING[T.FP64]
    mxm(c, None, None, pt, a, a)
    mxm(d, None, None, pt, b, b)
    ewise_add(e, None, None, B.PLUS[T.FP64], c, d)
    wait(e)
    return e.to_dict()


class TestServingChaos:
    def test_targeted_faults_respect_the_domain_boundary(self, service):
        chaos = service.open_session("chaos", nthreads=4)
        calm = service.open_session("calm", nthreads=4)
        oracle = diamond(Context.new(Mode.NONBLOCKING))
        PLANE.configure(seed=7, specs=[
            FaultSpec(site="scheduler.worker", rate=1.0, max_hits=1,
                      where={"domain": "chaos"}),
        ])
        try:
            # Both tenants run the same parallel program under targeted
            # chaos; answers stay exact either way.
            assert diamond(chaos.ctx) == oracle
            assert diamond(calm.ctx) == oracle
            snap = PLANE.snapshot()
        finally:
            PLANE.disable()
        # Every injection landed in the chaos tenant's domain.
        assert snap["injected_total"] >= 1
        assert snap["by_domain"].get("chaos", 0) == snap["injected_total"]
        assert "calm" not in snap["by_domain"]
        assert chaos.stats()["worker_faults"] == snap["injected_total"]
        assert calm.stats()["worker_faults"] == 0
        assert not calm.is_degraded

    def test_crashed_tenant_degrades_alone_and_keeps_serving(self, service):
        chaos = service.open_session("chaos", nthreads=4)
        calm = service.open_session("calm", nthreads=4)
        oracle = diamond(Context.new(Mode.NONBLOCKING))
        threshold = config.get_option("DEGRADE_WORKER_FAULTS")
        PLANE.configure(seed=11, specs=[
            FaultSpec(site="scheduler.worker", rate=1.0,
                      max_hits=threshold,
                      where={"domain": "chaos"}),
        ])
        try:
            for _ in range(threshold + 1):
                assert diamond(chaos.ctx) == oracle
        finally:
            PLANE.disable()
        assert chaos.is_degraded, "persistent targeted faults must degrade"
        assert not calm.is_degraded
        # The degraded tenant is still serving (serially), still exact;
        # the sibling keeps its parallel share.
        want = {int(k): int(v) for k, v in
                bfs_levels(ring_graph(), 9).to_dict().items()}
        assert service.execute(chaos, Query.make("bfs", "g", 9)).value \
            == want
        assert service.execute(calm, Query.make("bfs", "g", 9)).value \
            == want
        assert chaos.stats()["degraded"] and not calm.stats()["degraded"]


# -- thread safety under concurrent sessions ----------------------------------


class TestConcurrentSessions:
    def test_stress_many_tenants_in_parallel(self, service):
        """Satellite regression: per-Context bookkeeping (stats rollup,
        memo, latency record) must stay consistent under concurrent
        sessions hammering the service from their own threads."""
        a = ring_graph()
        oracles = {
            src: {int(k): int(v) for k, v in
                  bfs_levels(a, src).to_dict().items()}
            for src in range(8)
        }
        tri = int(triangle_count(a))
        n_tenants, per_tenant = 4, 10
        sessions = [
            service.open_session(f"t{i}", nthreads=2, memo_capacity=8)
            for i in range(n_tenants)
        ]
        errors: list = []

        def tenant_load(idx: int) -> None:
            sess = sessions[idx]
            try:
                for j in range(per_tenant):
                    if j % 3 == 2:
                        res = service.execute(
                            sess, Query.make("triangles", "g"))
                        assert res.value == tri
                    else:
                        src = (idx * 3 + j) % 8
                        res = service.execute(
                            sess, Query.make("bfs", "g", src))
                        assert res.value == oracles[src]
                    # Concurrent introspection must not corrupt state.
                    sess.stats()
                    sess.ctx.engine_stats()
            except Exception as exc:  # pragma: no cover - failure path
                errors.append(exc)

        threads = [
            threading.Thread(target=tenant_load, args=(i,))
            for i in range(n_tenants)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert not errors
        for sess in sessions:
            snap = sess.stats()
            assert snap["queries_completed"] == per_tenant
            assert snap["queries_recorded"] == per_tenant
            assert snap["kernels"] > 0
        total = sum(s.stats()["queries_completed"] for s in sessions)
        assert total == n_tenants * per_tenant

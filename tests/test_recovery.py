"""The durability & recovery plane (:mod:`repro.serve.recovery` et al.).

Battery structure:

* journal framing — pack/iter round trip, torn-tail tolerance, strict
  rejection of corruption;
* ``apply_edges`` — idempotent last-write-wins upsert semantics (the
  property journal replay's exactness rests on);
* checkpoint/restore — snapshot + journal replay reproduces the live
  service's carriers bit for bit, warm blocks and calibration ride
  along;
* the hard-kill chaos harness — a Hypothesis property that crash-kills
  the service at *every* kernel / commit / journal / checkpoint
  boundary in turn and asserts the restored replica matches a
  never-crashed oracle with zero lost acknowledged mutations;
* query deadlines — expired queries stop within one kernel boundary
  with the transient ``GrB_TIMEOUT``, carriers stay last-committed,
  the admission slot frees immediately;
* per-tenant circuit breakers — trip, typed transient shed, half-open
  probe, recovery restoring the context;
* server shutdown — bounded drain, typed rejection, no leaked tasks.
"""

import asyncio
import tempfile
import time

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core.errors import (
    IndexOutOfBoundsError,
    InvalidObjectError,
    TimeoutExpiredError,
)
from repro.core.info import Info
from repro.core.matrix import Matrix
from repro.core.types import FP64, INT64
from repro.engine import cancel
from repro.engine.stats import STATS
from repro.faults.plane import PLANE, FaultSpec, SimulatedCrash
from repro.internals import config
from repro.serve import (
    GraphServer,
    GraphService,
    Query,
    ServiceShutdownError,
    TenantBreakerOpenError,
)
from repro.serve.recovery import (
    OP_MUTATE,
    apply_edges,
    iter_records,
    pack_record,
)


def ring(n: int = 32, chord: int = 5, t=INT64) -> Matrix:
    rows = np.arange(n)
    r = np.concatenate([rows, (rows + chord) % n])
    c = np.concatenate([(rows + 1) % n, rows])
    a = Matrix.new(t, n, n)
    a.build(r, c, np.ones(len(r), dtype=t.np_dtype), dup=lambda x, y: x)
    a.wait()
    return a


def carrier_tuples(d):
    return d.row_indices(), d.col_indices, d.values


def assert_carriers_equal(a, b):
    assert a.nrows == b.nrows and a.ncols == b.ncols
    ra, ca, va = carrier_tuples(a)
    rb, cb, vb = carrier_tuples(b)
    np.testing.assert_array_equal(ra, rb)
    np.testing.assert_array_equal(ca, cb)
    np.testing.assert_array_equal(va, vb)


@pytest.fixture(autouse=True)
def _clean_plane():
    yield
    PLANE.disable()


# ---------------------------------------------------------------------------
# Journal framing
# ---------------------------------------------------------------------------

class TestJournalFraming:
    def test_round_trip(self):
        recs = [
            pack_record(OP_MUTATE, {"graph": "g", "seq": i}, bytes([i] * i))
            for i in range(1, 5)
        ]
        out = list(iter_records(b"".join(recs)))
        assert [h["seq"] for _, h, _ in out] == [1, 2, 3, 4]
        assert [b for _, _, b in out] == [bytes([i] * i) for i in range(1, 5)]

    def test_torn_tail_stops_replay(self):
        a = pack_record(OP_MUTATE, {"seq": 1}, b"x" * 8)
        b = pack_record(OP_MUTATE, {"seq": 2}, b"y" * 8)
        torn = a + b[: len(b) - 3]
        out = list(iter_records(torn))
        assert [h["seq"] for _, h, _ in out] == [1]

    def test_strict_raises_on_corruption(self):
        blob = bytearray(pack_record(OP_MUTATE, {"seq": 1}, b"z" * 16))
        blob[len(blob) - 4] ^= 0xFF
        with pytest.raises(InvalidObjectError):
            list(iter_records(bytes(blob), strict=True))

    def test_mid_stream_corruption_tolerant_stop(self):
        a = pack_record(OP_MUTATE, {"seq": 1}, b"x")
        b = bytearray(pack_record(OP_MUTATE, {"seq": 2}, b"y"))
        b[10] ^= 0x40
        c = pack_record(OP_MUTATE, {"seq": 3}, b"z")
        out = list(iter_records(a + bytes(b) + c))
        # Replay stops at the first bad frame: record 3 was written
        # after it, which cannot happen for an append-only journal's
        # acked prefix — treating it as tail-garbage is the safe read.
        assert [h["seq"] for _, h, _ in out] == [1]


# ---------------------------------------------------------------------------
# apply_edges
# ---------------------------------------------------------------------------

class TestApplyEdges:
    def test_upsert_and_last_write_wins(self):
        base = ring(8, 3, FP64)._capture()
        out = apply_edges(base, [0, 0, 2], [5, 5, 2], [1.0, 9.0, 4.0])
        r, c, v = carrier_tuples(out)
        d = {(int(i), int(j)): float(x) for i, j, x in zip(r, c, v)}
        assert d[(0, 5)] == 9.0          # within-batch last write wins
        assert d[(2, 2)] == 4.0
        # existing edge overwritten, not duplicated
        out2 = apply_edges(out, [0], [1], [7.0])
        assert out2.nvals == out.nvals
        d2 = {(int(i), int(j)): float(x)
              for i, j, x in zip(*carrier_tuples(out2))}
        assert d2[(0, 1)] == 7.0

    def test_replay_is_idempotent_per_batch(self):
        base = ring(8, 3, FP64)._capture()
        once = apply_edges(base, [1, 2], [3, 4], [5.0, 6.0])
        twice = apply_edges(once, [1, 2], [3, 4], [5.0, 6.0])
        assert_carriers_equal(once, twice)

    def test_bounds_checked(self):
        base = ring(8, 3, FP64)._capture()
        with pytest.raises(IndexOutOfBoundsError):
            apply_edges(base, [8], [0], [1.0])


# ---------------------------------------------------------------------------
# Checkpoint / restore
# ---------------------------------------------------------------------------

class TestCheckpointRestore:
    def test_snapshot_plus_journal_round_trip(self, tmp_path):
        svc = GraphService(checkpoint_dir=str(tmp_path))
        svc.register_graph("g", ring(24, 5, FP64))
        svc.register_graph("h", ring(12, 3, FP64))
        svc.mutate_graph("g", [0, 1], [7, 8], [2.0, 3.0])
        svc.checkpoint()                       # folds journal into snapshot
        svc.mutate_graph("g", [2], [9], [4.0])  # lives only in the journal
        expect_g = svc._graphs["g"]
        expect_h = svc._graphs["h"]
        svc.close()

        restored = GraphService.restore(str(tmp_path))
        assert set(restored.graphs()) == {"g", "h"}
        assert_carriers_equal(restored._graphs["g"], expect_g)
        assert_carriers_equal(restored._graphs["h"], expect_h)
        s = restored.open_session("t")
        out = s.run(Query.make("bfs", "g", source=0))
        assert out.value[0] == 0
        restored.close()

    def test_restore_without_checkpoint_replays_registrations(self, tmp_path):
        svc = GraphService(checkpoint_dir=str(tmp_path))
        svc.register_graph("g", ring(16, 3, FP64))
        svc.mutate_graph("g", [5], [1], [9.0])
        expect = svc._graphs["g"]
        svc.close()                             # never checkpointed
        restored = GraphService.restore(str(tmp_path))
        assert_carriers_equal(restored._graphs["g"], expect)
        restored.close()

    def test_warm_blocks_and_calibration_rehydrate(self, tmp_path):
        with config.option("ENGINE_ALGO_MEMO", True):
            svc = GraphService(checkpoint_dir=str(tmp_path))
            svc.register_graph("g", ring(24, 5))
            s = svc.open_session("t")
            s.run(Query.make("pagerank", "g"))   # builds memo blocks
            man = svc.checkpoint()
            assert len(man["blocks"]) > 0
            svc.close()

            before = STATS.snapshot()["algo_memo_hits"]
            restored = GraphService.restore(str(tmp_path))
            assert STATS.snapshot()["restored_blocks"] > 0
            s2 = restored.open_session("t")
            s2.run(Query.make("pagerank", "g"))
            after = STATS.snapshot()["algo_memo_hits"]
            assert after > before  # restored blocks served the cold query
            restored.close()

    def test_mutation_durable_before_ack(self, tmp_path):
        # The WAL property, observed from outside: after mutate_graph
        # returns, a brand-new store on the same directory already
        # replays the write — durability preceded the ack.
        svc = GraphService(checkpoint_dir=str(tmp_path))
        svc.register_graph("g", ring(8, 3, FP64))
        svc.mutate_graph("g", [4], [0], [8.0])
        expect = svc._graphs["g"]
        restored = GraphService.restore(str(tmp_path))
        assert_carriers_equal(restored._graphs["g"], expect)
        restored.close()
        svc.close()


# ---------------------------------------------------------------------------
# Hard-kill chaos: crash at every boundary, recover, compare to oracle
# ---------------------------------------------------------------------------

CRASH_SITES = (
    "journal.append",
    "journal.commit",
    "checkpoint.write",
    "kernel.*",
    "txn.commit",
)

MUTATIONS = (
    ([0, 3], [5, 1], [2.0, 3.0]),
    ([2], [2], [4.0]),
    ([1, 4], [0, 4], [5.0, 6.0]),
)


class TestKillAtEveryBoundary:
    @settings(
        max_examples=40, deadline=None,
        suppress_health_check=[HealthCheck.function_scoped_fixture],
    )
    @given(
        site=st.sampled_from(CRASH_SITES),
        skip=st.integers(0, 6),
        mid_checkpoint=st.booleans(),
        run_query=st.booleans(),
    )
    def test_recovery_parity(self, site, skip, mid_checkpoint, run_query):
        workdir = tempfile.mkdtemp(prefix="repro-kill-")
        base = ring(16, 3, FP64)
        base_carrier = base._capture()

        svc = GraphService(checkpoint_dir=workdir)
        acked = 0
        crashed = False
        PLANE.configure(
            11, [FaultSpec(site=site, kind="crash", rate=1.0, skip=skip)]
        )
        try:
            svc.register_graph("g", base)
            registered = True
            for i, (r, c, v) in enumerate(MUTATIONS):
                if mid_checkpoint and i == 1:
                    svc.checkpoint()
                if run_query and i == 1:
                    s = svc.open_session(f"t{i}")
                    s.run(Query.make("bfs", "g", source=0))
                svc.mutate_graph("g", r, c, v)
                acked += 1
        except SimulatedCrash:
            crashed = True
            registered = acked >= 0 and "g" in svc._graphs or False
        finally:
            PLANE.disable()
            if svc._store is not None:
                svc._store.close()

        # The never-crashed oracle: the acked prefix applied purely,
        # with an at-least-once window of exactly the one in-flight
        # mutation (journaled at the instant of the kill but not acked).
        states = [base_carrier]
        for r, c, v in MUTATIONS:
            states.append(apply_edges(states[-1], r, c, v))
        allowed = {acked}
        if crashed and acked < len(MUTATIONS):
            allowed.add(acked + 1)

        restored = GraphService.restore(workdir)
        if "g" not in restored._graphs:
            # Killed before the registration was ever journaled — there
            # was no acknowledged state to lose.
            assert crashed and acked == 0
            restored.close()
            return
        got = restored._graphs["g"]
        matched = None
        for n in sorted(allowed):
            r, c, v = carrier_tuples(states[n])
            rg, cg, vg = carrier_tuples(got)
            if (np.array_equal(r, rg) and np.array_equal(c, cg)
                    and np.array_equal(v, vg)):
                matched = n
                break
        assert matched is not None, (
            f"restored state matches no acked prefix: acked={acked} "
            f"allowed={allowed} site={site} skip={skip}"
        )
        # Query parity against a never-crashed replica of that state.
        s = restored.open_session("t")
        got_bfs = s.run(Query.make("bfs", "g", source=0)).value
        oracle_svc = GraphService(name="oracle")
        oracle_svc._publish_carrier("g", states[matched])
        os_ = oracle_svc.open_session("t")
        want_bfs = os_.run(Query.make("bfs", "g", source=0)).value
        assert got_bfs == want_bfs
        oracle_svc.close()
        restored.close()


# ---------------------------------------------------------------------------
# Deadlines & cancellation
# ---------------------------------------------------------------------------

class TestDeadlines:
    def test_expired_deadline_raises_transient_timeout(self, tmp_path):
        svc = GraphService()
        svc.register_graph("g", ring(48, 7))
        s = svc.open_session("t")
        with pytest.raises(TimeoutExpiredError) as exc:
            s.run(Query.make("pagerank", "g", deadline_ms=1e-4))
        assert exc.value.transient
        assert exc.value.info == Info.TIMEOUT
        assert s.ctx.local_stats().snapshot()["queries_timeout"] == 1
        # Carriers stay last-committed: the same session keeps serving.
        assert s.run(Query.make("triangles", "g")).value >= 0
        svc.close()

    def test_cancel_stops_within_one_kernel_boundary(self):
        svc = GraphService()
        svc.register_graph("g", ring(48, 7))
        s = svc.open_session("t")
        token = cancel.CancelToken.after_ms(None, label="t:pagerank")
        token.cancel("client abandoned")
        before = sum(STATS.snapshot()["kernel_count"].values())
        with pytest.raises(TimeoutExpiredError):
            s.run(Query.make("pagerank", "g"), token=token)
        after = sum(STATS.snapshot()["kernel_count"].values())
        # Cancelled before dispatch: not a single kernel may start.
        assert after == before
        assert STATS.snapshot()["cancel_stops"] >= 1
        svc.close()

    def test_config_default_deadline_applies(self):
        svc = GraphService()
        svc.register_graph("g", ring(48, 7))
        s = svc.open_session("t")
        with config.option("QUERY_DEADLINE_MS", 1e-4):
            with pytest.raises(TimeoutExpiredError):
                s.run(Query.make("pagerank", "g"))
        svc.close()

    def test_server_deadline_frees_slot_immediately(self):
        async def main():
            svc = GraphService()
            svc.register_graph("g", ring(48, 7))
            s = svc.open_session("t")
            server = GraphServer(svc, max_pending=2, per_tenant=2)
            async with server:
                with pytest.raises(TimeoutExpiredError):
                    await server.submit(
                        s, Query.make("pagerank", "g", deadline_ms=1e-4)
                    )
                # The slot is reusable at once: both slots free.
                snap = server.admission.snapshot()
                assert snap["pending"] == 0
                out = await server.submit(s, Query.make("triangles", "g"))
                assert out.value >= 0
            svc.close()

        asyncio.run(main())

    def test_deadline_not_part_of_dedup_key(self):
        a = Query.make("bfs", "g", source=1, deadline_ms=5.0)
        b = Query.make("bfs", "g", source=1, deadline_ms=500.0)
        assert a.dedup_key == b.dedup_key


# ---------------------------------------------------------------------------
# Circuit breakers
# ---------------------------------------------------------------------------

def _fail_queries(server, session, n):
    async def go():
        for _ in range(n):
            with pytest.raises(Exception):
                await server.submit(
                    session, Query.make("bfs", "missing", source=0)
                )
    return go


class TestCircuitBreakers:
    def test_full_lifecycle(self):
        async def main():
            svc = GraphService()
            svc.register_graph("g", ring(24, 5))
            s = svc.open_session("t1")
            other = svc.open_session("t2")
            with config.option("BREAKER_THRESHOLD", 3), \
                    config.option("BREAKER_COOLDOWN", 0.1):
                async with GraphServer(svc) as server:
                    await _fail_queries(server, s, 3)()
                    assert svc.health.breaker("t1").snapshot()["state"] == "open"
                    # Open: typed, transient, immediate shed.
                    with pytest.raises(TenantBreakerOpenError) as exc:
                        await server.submit(s, Query.make("triangles", "g"))
                    assert exc.value.transient
                    assert exc.value.tenant == "t1"
                    # Sibling tenant entirely unaffected.
                    out = await server.submit(
                        other, Query.make("triangles", "g")
                    )
                    assert out.value >= 0
                    # Half-open after the cooldown: one probe recovers.
                    await asyncio.sleep(0.15)
                    out = await server.submit(s, Query.make("triangles", "g"))
                    assert out.value >= 0
                    snap = svc.health.breaker("t1").snapshot()
                    assert snap["state"] == "closed"
                    assert snap["trips"] == 1 and snap["recoveries"] == 1
            svc.close()

        asyncio.run(main())

    def test_failed_probe_reopens(self):
        async def main():
            svc = GraphService()
            svc.register_graph("g", ring(24, 5))
            s = svc.open_session("t1")
            with config.option("BREAKER_THRESHOLD", 2), \
                    config.option("BREAKER_COOLDOWN", 0.05):
                async with GraphServer(svc) as server:
                    await _fail_queries(server, s, 2)()
                    await asyncio.sleep(0.08)
                    await _fail_queries(server, s, 1)()   # failing probe
                    assert svc.health.breaker("t1").snapshot()["state"] == "open"
            svc.close()

        asyncio.run(main())

    def test_recovery_restores_degraded_context(self):
        svc = GraphService()
        svc.register_graph("g", ring(24, 5))
        s = svc.open_session("t1")
        with config.option("DEGRADE_WORKER_FAULTS", 1):
            s.ctx.record_worker_fault()   # serial demotion, as faults do
        assert s.ctx.is_degraded
        with config.option("BREAKER_THRESHOLD", 1), \
                config.option("BREAKER_COOLDOWN", 0.01):
            with pytest.raises(Exception):
                s.run(Query.make("bfs", "missing", source=0))
            assert svc.health.breaker("t1").snapshot()["state"] == "open"
            time.sleep(0.02)
            assert svc.health.admit("t1") == "probe"
            s.run(Query.make("triangles", "g"))
        assert not s.ctx.is_degraded   # recovery undid the demotion
        svc.close()

    def test_threshold_zero_disables(self):
        svc = GraphService()
        svc.register_graph("g", ring(24, 5))
        s = svc.open_session("t1")
        with config.option("BREAKER_THRESHOLD", 0):
            for _ in range(8):
                with pytest.raises(Exception):
                    s.run(Query.make("bfs", "missing", source=0))
            assert svc.health.admit("t1") == "ok"
        svc.close()


# ---------------------------------------------------------------------------
# Server shutdown semantics
# ---------------------------------------------------------------------------

class TestShutdown:
    def test_submit_before_start_is_typed(self):
        async def main():
            svc = GraphService()
            svc.register_graph("g", ring(16, 3))
            s = svc.open_session("t")
            server = GraphServer(svc)
            with pytest.raises(ServiceShutdownError) as exc:
                await server.submit(s, Query.make("triangles", "g"))
            assert exc.value.transient
            svc.close()

        asyncio.run(main())

    def test_submit_after_stop_is_typed_and_no_tasks_leak(self):
        async def main():
            svc = GraphService()
            svc.register_graph("g", ring(16, 3))
            s = svc.open_session("t")
            server = GraphServer(svc)
            await server.start()
            out = await server.submit(s, Query.make("triangles", "g"))
            assert out.value >= 0
            await server.stop(grace=2.0)
            with pytest.raises(ServiceShutdownError):
                await server.submit(s, Query.make("triangles", "g"))
            pending = [
                t for t in asyncio.all_tasks()
                if t is not asyncio.current_task()
            ]
            assert pending == []
            svc.close()

        asyncio.run(main())

    def test_stop_drains_inflight_work(self):
        async def main():
            svc = GraphService()
            svc.register_graph("g", ring(24, 5))
            s = svc.open_session("t")
            server = GraphServer(svc, batch_window=4)
            await server.start()
            futs = [
                asyncio.ensure_future(
                    server.submit(s, Query.make("bfs", "g", source=i))
                )
                for i in range(4)
            ]
            await asyncio.sleep(0)   # let submissions enqueue
            await server.stop(grace=5.0)
            done = await asyncio.gather(*futs, return_exceptions=True)
            for res in done:
                # Every future resolved: a result or a typed rejection.
                assert not isinstance(res, BaseException) or isinstance(
                    res, ServiceShutdownError
                )
            assert server.admission.snapshot()["pending"] == 0
            svc.close()

        asyncio.run(main())

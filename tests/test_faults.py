"""Fault-injection plane + resilience machinery (§V stress tests).

Covers the plane itself (determinism, gating, spec matching), the
retry envelope, the transactional commit gate, scheduler worker-crash
absorption with per-Context degradation, and the parallel-path
serial fallback.
"""

import numpy as np
import pytest

from repro.core import types as T
from repro.core.context import Context, Mode, WaitMode
from repro.core.errors import (
    InsufficientSpaceError,
    InvalidObjectError,
    OutOfMemoryError,
    PanicError,
)
from repro.core.matrix import Matrix
from repro.core.semiring import PLUS_TIMES_SEMIRING
from repro.core.sequence import wait
from repro.engine import txn
from repro.engine.stats import STATS
from repro.faults import (
    PLANE,
    SITES,
    FaultPlane,
    FaultSpec,
    enable_chaos,
    is_transient,
    maybe_inject,
    should_drop,
    suspended,
    with_retry,
)
from repro.faults.plane import configure_from_env
from repro.internals import config
from repro.internals.containers import MatData, VecData
from repro.internals.parallel import parallel_mxm
from repro.ops.mxm import mxm
from repro.validate import check_object

from .helpers import mat_from_dict

PT = PLUS_TIMES_SEMIRING[T.FP64]


@pytest.fixture(autouse=True)
def _plane_off():
    """Each test gets a quiet plane; ambient env chaos re-arms after."""
    PLANE.disable()
    yield
    PLANE.disable()
    configure_from_env()


def _stat(name):
    return STATS.snapshot()[name]


def _mat(d, n=4, ctx=None):
    return mat_from_dict(d, n, n, ctx=ctx)


D1 = {(0, 1): 2.0, (1, 2): 3.0, (2, 0): 4.0, (3, 3): 1.0}


# -- the plane itself ---------------------------------------------------------


class TestFaultPlane:
    def test_inactive_is_noop(self):
        maybe_inject("kernel.mxm")  # must not raise
        assert not should_drop("comm.drop")

    def test_spec_validation(self):
        with pytest.raises(ValueError):
            FaultSpec(site="x", kind="explode")
        with pytest.raises(ValueError):
            FaultSpec(site="x", rate=1.5)

    def test_error_injection_and_metadata(self):
        p = FaultPlane()
        p.configure(1, [FaultSpec(site="kernel.*", error=InsufficientSpaceError,
                                  transient=True)])
        with pytest.raises(InsufficientSpaceError) as ei:
            p.fire("kernel.mxm")
        assert ei.value.transient is True
        assert ei.value.injected is True
        assert "kernel.mxm" in str(ei.value)
        assert p.snapshot()["injected"] == {"kernel.mxm": 1}

    def test_pattern_and_where_matching(self):
        p = FaultPlane()
        p.configure(1, [FaultSpec(site="comm.*", where={"rank": 1},
                                  error=PanicError)])
        p.fire("comm.send", rank=0)          # wrong rank: no injection
        p.fire("kernel.mxm", rank=1)         # wrong site: no injection
        with pytest.raises(PanicError):
            p.fire("comm.send", rank=1)

    def test_max_hits_bounds_injections(self):
        p = FaultPlane()
        p.configure(1, [FaultSpec(site="s", max_hits=2)])
        for _ in range(2):
            with pytest.raises(OutOfMemoryError):
                p.fire("s")
        p.fire("s")  # budget spent: silent
        assert p.snapshot()["injected_total"] == 2

    def test_deterministic_across_planes(self):
        """Same seed + schedule + visit sequence => same decisions."""
        def pattern(seed):
            p = FaultPlane()
            p.configure(seed, [FaultSpec(site="k", rate=0.5)])
            out = []
            for _ in range(40):
                try:
                    p.fire("k")
                    out.append(0)
                except OutOfMemoryError:
                    out.append(1)
            return out

        assert pattern(7) == pattern(7)
        assert pattern(7) != pattern(8)  # and the seed matters
        assert 0 < sum(pattern(7)) < 40  # rate actually thins

    def test_drop_kind(self):
        p = FaultPlane()
        p.configure(1, [FaultSpec(site="comm.drop", kind="drop")])
        assert p.fire("comm.drop") == "drop"
        assert p.dropped == 1

    def test_slow_kind_sleeps_and_counts(self):
        p = FaultPlane()
        p.configure(1, [FaultSpec(site="s", kind="slow", delay=0.0)])
        assert p.fire("s") is None
        assert p.snapshot()["injected"] == {"s": 1}

    def test_armed_only_gates_bare_calls(self):
        enable_chaos(3, rate=1.0)  # armed_only=True
        maybe_inject("kernel.mxm")  # unarmed: must not raise
        with pytest.raises(OutOfMemoryError):
            with_retry(lambda: maybe_inject("kernel.mxm"))

    def test_suspended_context_manager(self):
        PLANE.configure(1, [FaultSpec(site="s")])
        with suspended():
            maybe_inject("s")  # inactive inside
        with pytest.raises(OutOfMemoryError):
            maybe_inject("s")

    def test_configure_from_env(self):
        assert not configure_from_env({})
        assert configure_from_env({
            "REPRO_CHAOS_SEED": "11",
            "REPRO_CHAOS_RATE": "1.0",
            "REPRO_CHAOS_SITES": "kernel.mxm",
            "REPRO_CHAOS_ERROR": "InsufficientSpaceError",
        })
        assert PLANE.active and PLANE.armed_only
        with pytest.raises(InsufficientSpaceError) as ei:
            with_retry(lambda: maybe_inject("kernel.mxm"))
        assert is_transient(ei.value)

    def test_site_registry_names_are_hierarchical(self):
        assert "kernel.mxm" in SITES
        assert all("." in s for s in SITES)


# -- retry envelope -----------------------------------------------------------


class TestRetry:
    def test_transient_recovers_and_counts(self):
        calls = []
        before = {k: _stat(k) for k in ("retries", "retries_recovered")}

        def flaky():
            calls.append(1)
            if len(calls) < 3:
                raise OutOfMemoryError("transient blip")
            return "ok"

        assert with_retry(flaky) == "ok"
        assert len(calls) == 3
        assert _stat("retries") == before["retries"] + 2
        assert _stat("retries_recovered") == before["retries_recovered"] + 1

    def test_persistent_not_retried(self):
        calls = []

        def broken():
            calls.append(1)
            raise PanicError("wedged")

        with pytest.raises(PanicError):
            with_retry(broken)
        assert len(calls) == 1

    def test_budget_exhaustion(self):
        before = _stat("retries_exhausted")
        with config.option("RETRY_MAX", 2), config.option("RETRY_BASE_DELAY", 0.0):
            calls = []

            def always():
                calls.append(1)
                raise OutOfMemoryError("never clears")

            with pytest.raises(OutOfMemoryError):
                with_retry(always)
            assert len(calls) == 3  # 1 first attempt + 2 retries
        assert _stat("retries_exhausted") == before + 1

    def test_explicit_transient_attr_wins(self):
        exc = PanicError("but retryable")
        exc.transient = True
        assert is_transient(exc)
        exc2 = OutOfMemoryError("but hopeless")
        exc2.transient = False
        assert not is_transient(exc2)


# -- transactional commit -----------------------------------------------------


class TestTxnCommit:
    def test_valid_carriers_pass_through(self):
        m = MatData(2, 2, T.FP64, np.array([0, 1, 2]), np.array([0, 1]),
                    np.array([1.0, 2.0]))
        assert txn.commit("mxm", m) is m
        v = VecData(3, T.FP64, np.array([1]), np.array([5.0]))
        assert txn.commit("assign", v) is v
        assert txn.commit("reduce", 42.0) == 42.0  # scalars pass through

    def test_corrupt_matrix_refused(self):
        bad = MatData(2, 2, T.FP64, np.array([0, 1]),  # indptr too short
                      np.array([0, 1]), np.array([1.0, 2.0]))
        with pytest.raises(InvalidObjectError, match="corrupt scratch"):
            txn.commit("mxm", bad)
        bad2 = MatData(2, 2, T.FP64, np.array([0, 1, 1]),  # span mismatch
                       np.array([0, 1]), np.array([1.0, 2.0]))
        with pytest.raises(InvalidObjectError):
            txn.commit("mxm", bad2)

    def test_corrupt_vector_refused(self):
        bad = VecData(3, T.FP64, np.array([0, 1]), np.array([5.0]))
        with pytest.raises(InvalidObjectError):
            txn.commit("assign", bad)

    def test_commit_site_fault_leaves_blocking_object_unchanged(self):
        """§V transactional guarantee, blocking mode: a fault at the
        commit gate aborts before the reference store."""
        ctx = Context.new(Mode.BLOCKING, None, None)
        m = _mat(D1, ctx=ctx)
        before = m.to_dict()
        PLANE.configure(1, [FaultSpec(site="txn.commit", error=PanicError,
                                      where={"label": "mxm"})])
        other = Matrix.new(T.FP64, 4, 4, ctx)
        with suspended():
            o = _mat({(0, 0): 1.0}, ctx=ctx)
        with pytest.raises(PanicError):
            mxm(m, None, None, PT, m, o)
        PLANE.disable()
        assert m.to_dict() == before
        assert "injected" in m.error()
        check_object(m)
        del other

    def test_commit_site_fault_nonblocking_pre_op_state(self):
        ctx = Context.new(Mode.NONBLOCKING, None, None)
        m = _mat(D1, ctx=ctx)
        wait(m, WaitMode.MATERIALIZE)
        before = m.to_dict()
        with suspended():
            o = _mat({(1, 1): 2.0}, ctx=ctx)
        PLANE.configure(1, [FaultSpec(site="txn.commit", error=PanicError,
                                      where={"label": "mxm"})])
        mxm(m, None, None, PT, m, o)
        with pytest.raises(PanicError):
            wait(m, WaitMode.MATERIALIZE)
        PLANE.disable()
        assert m.to_dict() == before
        assert m.error() != ""
        check_object(m)


# -- kernel sites through the ops layer ---------------------------------------


class TestKernelSiteResilience:
    @pytest.mark.parametrize("mode", [Mode.BLOCKING, Mode.NONBLOCKING],
                             ids=["blocking", "nonblocking"])
    def test_transient_kernel_fault_recovered_exactly(self, mode):
        ctx = Context.new(mode, None, None)
        a = _mat(D1, ctx=ctx)
        c = Matrix.new(T.FP64, 4, 4, ctx)
        with suspended():
            ref = _mat(D1, ctx=ctx)
            r = Matrix.new(T.FP64, 4, 4, ctx)
            mxm(r, None, None, PT, ref, ref)
            wait(r)
            expected = r.to_dict()
        before = _stat("retries_recovered")
        PLANE.configure(5, [FaultSpec(site="kernel.mxm", transient=True,
                                      max_hits=2)])
        mxm(c, None, None, PT, a, a)
        wait(c)
        PLANE.disable()
        assert c.to_dict() == expected
        assert _stat("retries_recovered") >= before + 1

    def test_persistent_kernel_fault_defers_with_pre_op_state(self):
        ctx = Context.new(Mode.NONBLOCKING, None, None)
        m = _mat(D1, ctx=ctx)
        wait(m, WaitMode.MATERIALIZE)
        before_d = m.to_dict()
        before_stat = _stat("errors_deferred")
        with suspended():
            o = _mat({(2, 2): 1.0}, ctx=ctx)
        PLANE.configure(5, [FaultSpec(site="kernel.mxm",
                                      error=InsufficientSpaceError)])
        mxm(m, None, None, PT, m, o)
        with pytest.raises(InsufficientSpaceError):
            wait(m)
        PLANE.disable()
        assert m.to_dict() == before_d
        assert "injected persistent fault" in m.error()
        assert _stat("errors_deferred") == before_stat + 1
        check_object(m)


# -- scheduler worker crashes + degradation -----------------------------------


def _two_source_program(ctx):
    """A diamond whose forcing has two independent ready nodes (the two
    builds) — the shape that exercises the parallel dispatcher."""
    a = _mat(D1, ctx=ctx)
    b = _mat({(0, 0): 1.0, (1, 1): 2.0, (2, 3): 3.0}, ctx=ctx)
    c = Matrix.new(T.FP64, 4, 4, ctx)
    d = Matrix.new(T.FP64, 4, 4, ctx)
    e = Matrix.new(T.FP64, 4, 4, ctx)
    mxm(c, None, None, PT, a, a)
    mxm(d, None, None, PT, b, b)
    from repro.ops.ewise import ewise_add
    import repro.core.binaryop as B

    ewise_add(e, None, None, B.PLUS[T.FP64], c, d)
    return e


class TestWorkerCrashAbsorption:
    def test_crash_absorbed_and_result_correct(self):
        ctx = Context.new(Mode.NONBLOCKING, None, {"nthreads": 2})
        with suspended():
            ref = _two_source_program(ctx)
            wait(ref)
            expected = ref.to_dict()
        before = _stat("worker_faults")
        PLANE.configure(3, [FaultSpec(site="scheduler.worker", max_hits=1,
                                      error=PanicError)])
        e = _two_source_program(ctx)
        wait(e)
        PLANE.disable()
        assert e.to_dict() == expected
        assert _stat("worker_faults") == before + 1
        assert not ctx.is_degraded  # one fault is below the threshold

    def test_repeated_crashes_degrade_context_to_serial(self):
        ctx = Context.new(Mode.NONBLOCKING, None, {"nthreads": 4})
        before = _stat("degraded_serial")
        with config.option("DEGRADE_WORKER_FAULTS", 2):
            assert not ctx.record_worker_fault()
            assert not ctx.is_degraded
            assert ctx.record_worker_fault()  # crosses the threshold
        assert ctx.is_degraded
        assert ctx.record_worker_fault() is False  # only flips once
        # degraded contexts cap the scheduler at one node
        from repro.engine.scheduler import _node_cap

        m = Matrix.new(T.FP64, 2, 2, ctx)
        m.set_element(1.0, 0, 0)
        assert _node_cap(m._tail) == 1
        wait(m)
        ctx.restore()
        assert not ctx.is_degraded
        assert _stat("degraded_serial") == before

    def test_degraded_end_to_end_still_correct(self):
        ctx = Context.new(Mode.NONBLOCKING, None, {"nthreads": 2})
        with suspended():
            ref = _two_source_program(ctx)
            wait(ref)
            expected = ref.to_dict()
        before = _stat("degraded_serial")
        with config.option("DEGRADE_WORKER_FAULTS", 2):
            PLANE.configure(9, [FaultSpec(site="scheduler.worker", max_hits=2,
                                          error=PanicError)])
            e = _two_source_program(ctx)
            wait(e)
            PLANE.disable()
        assert e.to_dict() == expected
        assert ctx.is_degraded
        assert _stat("degraded_serial") == before + 1
        # and degraded execution remains correct
        e2 = _two_source_program(ctx)
        wait(e2)
        assert e2.to_dict() == expected


# -- parallel batch path ------------------------------------------------------


class TestParallelDegradation:
    def _operands(self):
        rng = np.random.default_rng(0)
        d = {(i, j): float(rng.integers(1, 5))
             for i in range(16) for j in range(16) if rng.random() < 0.4}
        with suspended():
            a = _mat(d, n=16)
        wait(a, WaitMode.MATERIALIZE)
        return a._data

    def test_persistent_fault_falls_back_to_serial(self):
        a = self._operands()
        from repro.internals.mxm import mxm as kernel_mxm

        with suspended():
            expected = kernel_mxm(a, a, PT)
        before = _stat("degraded_serial")
        PLANE.configure(2, [FaultSpec(site="parallel.worker",
                                      error=PanicError)])
        got = parallel_mxm(a, a, PT, 4, chunk_rows=1)
        PLANE.disable()
        assert _stat("degraded_serial") == before + 1
        assert np.array_equal(got.indptr, expected.indptr)
        assert np.array_equal(got.col_indices, expected.col_indices)
        assert np.allclose(got.values, expected.values)

    def test_transient_fault_retried_at_node_level(self):
        ctx = Context.new(Mode.NONBLOCKING, None, {"nthreads": 4})
        rng = np.random.default_rng(1)
        d = {(i, j): float(rng.integers(1, 5))
             for i in range(16) for j in range(16) if rng.random() < 0.4}
        with suspended():
            a = _mat(d, n=16, ctx=ctx)
            ref = Matrix.new(T.FP64, 16, 16, ctx)
            mxm(ref, None, None, PT, a, a)
            wait(ref)
            expected = ref.to_dict()
        before = _stat("retries_recovered")
        c = Matrix.new(T.FP64, 16, 16, ctx)
        PLANE.configure(4, [FaultSpec(site="parallel.worker", transient=True,
                                      max_hits=1)])
        # The reference run above committed the same A ⊕.⊗ A in this
        # context: keep the result memo out of the way so the kernel
        # (and the injected fault) actually re-runs.
        with config.option("ENGINE_MEMO", False):
            mxm(c, None, None, PT, a, a)
            wait(c)
        PLANE.disable()
        assert c.to_dict() == expected
        assert _stat("retries_recovered") >= before + 1


# -- surfacing ----------------------------------------------------------------


class TestObservability:
    def test_engine_stats_exposes_fault_counters(self):
        ctx = Context.new(Mode.NONBLOCKING, None, None)
        PLANE.configure(1, [FaultSpec(site="nowhere.real")])
        snap = ctx.engine_stats()
        for key in ("faults_injected", "retries", "retries_recovered",
                    "worker_faults", "degraded_serial", "degraded_local",
                    "comm_timeouts", "fault_sites", "context_degraded"):
            assert key in snap
        assert snap["context_degraded"] is False

    def test_cli_chaos_flag(self, capsys):
        from repro.cli import main
        from repro.core.context import finalize, is_initialized

        if is_initialized():
            finalize()
        import io

        out = io.StringIO()
        rc = main(["--chaos", "7", "--chaos-rate", "0.3", "selftest"], out=out)
        assert rc == 0
        text = out.getvalue()
        assert "selftest: 5/5" in text
        assert "fault plane: seed=7" in text
        assert not PLANE.active  # CLI turns the plane off afterwards


class TestPoolAfterFree:
    def test_deferred_forcing_after_free_does_not_resurrect_pool(self):
        # Regression: ``worker_pool()`` used to rebuild a fresh executor
        # when called after ``free()`` (the release path had already
        # shut the old one down), leaking threads nothing would ever
        # join.  A deferred forcing that outlives the context must now
        # degrade to the serial kernel instead.
        ctx = Context.new(Mode.NONBLOCKING, None, {"nthreads": 4})
        rng = np.random.default_rng(2)
        d = {(i, j): float(rng.integers(1, 5))
             for i in range(16) for j in range(16) if rng.random() < 0.4}
        a = _mat(d, n=16, ctx=ctx)
        ref = Matrix.new(T.FP64, 16, 16, ctx)
        mxm(ref, None, None, PT, a, a)
        wait(ref)
        expected = ref.to_dict()
        c = Matrix.new(T.FP64, 16, 16, ctx)
        with config.option("ENGINE_MEMO", False):
            mxm(c, None, None, PT, a, a)     # deferred
            before = _stat("degraded_serial")
            ctx.free()                       # pool finalized, work in flight
            assert ctx.worker_pool() is None
            wait(c)                          # forcing outlives the context
        assert _stat("degraded_serial") == before + 1
        assert c.to_dict() == expected
        assert ctx._pool is None, "free() left a resurrectable worker pool"

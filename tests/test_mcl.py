"""Markov clustering battery."""

import numpy as np
import pytest

from repro.algorithms import markov_clustering
from repro.core import types as T
from repro.core.errors import InvalidValueError
from repro.generators import to_matrix


def _cliques(sizes, bridges=()):
    """Disjoint cliques plus optional single bridge edges."""
    edges = []
    base = 0
    blocks = []
    for s in sizes:
        blocks.append(set(range(base, base + s)))
        for i in range(s):
            for j in range(s):
                if i != j:
                    edges.append((base + i, base + j))
        base += s
    for u, v in bridges:
        edges += [(u, v), (v, u)]
    rows, cols = zip(*edges)
    n = base
    return to_matrix(n, np.array(rows), np.array(cols),
                     np.ones(len(rows)), T.FP64), blocks


def _clusters(labels):
    out = {}
    for v, lbl in labels.items():
        out.setdefault(lbl, set()).add(v)
    return set(frozenset(c) for c in out.values())


class TestMCL:
    def test_two_bridged_cliques_split(self):
        a, blocks = _cliques([4, 4], bridges=[(3, 4)])
        labels, flow = markov_clustering(a)
        assert _clusters(labels) == {frozenset(b) for b in blocks}

    def test_three_cliques_chain(self):
        a, blocks = _cliques([4, 5, 4], bridges=[(3, 4), (8, 9)])
        labels, _ = markov_clustering(a)
        assert _clusters(labels) == {frozenset(b) for b in blocks}

    def test_disconnected_components_stay_separate(self):
        a, blocks = _cliques([3, 3])
        labels, _ = markov_clustering(a)
        assert _clusters(labels) == {frozenset(b) for b in blocks}

    def test_single_clique_is_one_cluster(self):
        a, blocks = _cliques([6])
        labels, _ = markov_clustering(a)
        assert _clusters(labels) == {frozenset(blocks[0])}

    def test_every_vertex_labeled(self):
        a, _ = _cliques([4, 4], bridges=[(3, 4)])
        labels, _ = markov_clustering(a)
        assert set(labels) == set(range(8))

    def test_flow_matrix_is_column_stochastic(self):
        a, _ = _cliques([4, 4], bridges=[(3, 4)])
        _, flow = markov_clustering(a)
        dense = flow.to_dense()
        sums = dense.sum(axis=0)
        nonzero_cols = sums > 0
        assert np.allclose(sums[nonzero_cols], 1.0)

    def test_deterministic(self):
        a, _ = _cliques([4, 4], bridges=[(3, 4)])
        l1, _ = markov_clustering(a)
        l2, _ = markov_clustering(a)
        assert l1 == l2

    def test_validation(self):
        a, _ = _cliques([3])
        with pytest.raises(InvalidValueError):
            markov_clustering(a, inflation=1.0)
        with pytest.raises(InvalidValueError):
            markov_clustering(a, prune=2.0)

    def test_higher_inflation_never_coarser(self):
        """More inflation ⇒ at least as many clusters (MCL's dial)."""
        a, _ = _cliques([4, 4], bridges=[(3, 4)])
        lo, _ = markov_clustering(a, inflation=1.3, max_iters=80)
        hi, _ = markov_clustering(a, inflation=3.0)
        assert len(_clusters(hi)) >= len(_clusters(lo))

"""The pygraphblas-style Pythonic layer: operators lower to spec ops."""

import numpy as np
import pytest

from repro.core import types as T
from repro.core.indexunaryop import TRIL, VALUEGT
from repro.core.monoid import MAX_MONOID, PLUS_MONOID
from repro.core.semiring import MIN_PLUS_SEMIRING
from repro.core.unaryop import UnaryOp
from repro.pythonic import PM, PV, current_semiring, semiring

A_D = {(0, 0): 1.0, (0, 2): 2.0, (1, 1): 3.0, (2, 0): 4.0}
B_D = {(0, 1): 10.0, (1, 1): 20.0, (2, 2): 30.0}
U_D = {0: 1.0, 2: 5.0}


class TestConstruction:
    def test_from_dict(self):
        a = PM.from_dict(A_D, 3, 3)
        assert a.shape == (3, 3)
        assert a.nvals == len(A_D)
        v = PV.from_dict(U_D, 4)
        assert v.size == 4 and v.nvals == 2

    def test_new(self):
        assert PM.new(T.INT32, 2, 5).type is T.INT32
        assert len(PV.new(T.BOOL, 7)) == 7


class TestElementAccess:
    def test_scalar_get_set_del(self):
        a = PM.from_dict(A_D, 3, 3)
        assert a[0, 2] == 2.0
        assert a[2, 2] is None          # absent → None, not an exception
        a[2, 2] = 9.0
        assert a[2, 2] == 9.0
        del a[2, 2]
        assert a[2, 2] is None

    def test_vector_get_set(self):
        v = PV.from_dict(U_D, 4)
        assert v[2] == 5.0 and v[1] is None
        v[1] = 7.0
        assert v[1] == 7.0

    def test_submatrix_slicing(self):
        a = PM.from_dict(A_D, 3, 3)
        sub = a[[0, 2], [0, 2]]
        assert sub.to_dict() == {(0, 0): 1.0, (0, 1): 2.0, (1, 0): 4.0}
        full = a[:, :]
        assert full.to_dict() == A_D

    def test_row_and_column_vectors(self):
        a = PM.from_dict(A_D, 3, 3)
        row0 = a[0, :]
        assert row0.to_dict() == {0: 1.0, 2: 2.0}
        col0 = a[:, 0]
        assert col0.to_dict() == {0: 1.0, 2: 4.0}

    def test_region_assign(self):
        a = PM.from_dict(A_D, 3, 3)
        b = PM.from_dict({(0, 0): 99.0}, 1, 1)
        a[[1], [1]] = b
        assert a[1, 1] == 99.0

    def test_scalar_region_fill(self):
        v = PV.new(T.FP64, 4)
        v[[0, 3]] = 2.5
        assert v.to_dict() == {0: 2.5, 3: 2.5}

    def test_vector_slice_extract(self):
        v = PV.from_dict({0: 1.0, 2: 3.0, 3: 4.0}, 5)
        assert v[1:4].to_dict() == {1: 3.0, 2: 4.0}


class TestAlgebra:
    def test_matmul_matrix(self):
        a = PM.from_dict(A_D, 3, 3)
        b = PM.from_dict(B_D, 3, 3)
        c = a @ b
        assert np.allclose(c.to_dense(), a.to_dense() @ b.to_dense())

    def test_matmul_vector_both_sides(self):
        a = PM.from_dict(A_D, 3, 3)
        v = PV.from_dict({0: 1.0, 1: 2.0, 2: 3.0}, 3)
        dv = np.array([1.0, 2.0, 3.0])
        got = (a @ v).to_dict()
        want = a.to_dense() @ dv
        for i, val in got.items():
            assert val == pytest.approx(want[i])
        got2 = (v @ a).to_dict()
        want2 = dv @ a.to_dense()
        for i, val in got2.items():
            assert val == pytest.approx(want2[i])

    def test_semiring_context_manager(self):
        a = PM.from_dict({(0, 1): 2.0, (1, 2): 3.0}, 3, 3)
        with semiring(MIN_PLUS_SEMIRING[T.FP64]):
            c = a @ a
        assert c.to_dict() == {(0, 2): 5.0}

    def test_semiring_context_nests_and_restores(self):
        assert current_semiring(T.FP64).name == "GrB_PLUS_TIMES_SEMIRING_FP64"
        with semiring(MIN_PLUS_SEMIRING[T.FP64]):
            assert current_semiring(T.FP64).name == \
                "GrB_MIN_PLUS_SEMIRING_FP64"
            with semiring(MIN_PLUS_SEMIRING[T.FP32]):
                assert current_semiring(T.FP64).name == \
                    "GrB_MIN_PLUS_SEMIRING_FP32"
            assert current_semiring(T.FP64).name == \
                "GrB_MIN_PLUS_SEMIRING_FP64"
        assert current_semiring(T.FP64).name == "GrB_PLUS_TIMES_SEMIRING_FP64"

    def test_bool_default_semiring(self):
        a = PM.from_dict({(0, 1): True, (1, 2): True}, 3, 3, T.BOOL)
        c = a @ a
        assert c.to_dict() == {(0, 2): True}

    def test_add_and_mult(self):
        a = PM.from_dict(A_D, 3, 3)
        b = PM.from_dict(B_D, 3, 3)
        assert (a + b).nvals == len(set(A_D) | set(B_D))
        assert (a * b).nvals == len(set(A_D) & set(B_D))

    def test_or_uses_ambient_add(self):
        u = PV.from_dict({0: 5.0}, 3)
        v = PV.from_dict({0: 2.0}, 3)
        with semiring(MIN_PLUS_SEMIRING[T.FP64]):
            w = u | v
        assert w[0] == 2.0    # MIN

    def test_scalar_multiplication(self):
        a = PM.from_dict(A_D, 3, 3)
        assert (2 * a)[0, 2] == 4.0
        assert (a * 2)[2, 0] == 8.0
        v = PV.from_dict(U_D, 4)
        assert (3 * v)[2] == 15.0

    def test_negation_and_abs(self):
        a = PM.from_dict(A_D, 3, 3)
        assert (-a)[0, 0] == -1.0
        assert abs(-a)[0, 0] == 1.0
        v = PV.from_dict(U_D, 4)
        assert (-v)[2] == -5.0

    def test_transpose_property(self):
        a = PM.from_dict(A_D, 3, 3)
        assert a.T.to_dict() == {(j, i): v for (i, j), v in A_D.items()}
        assert a.T.T.to_dict() == A_D

    def test_sssp_in_pythonic_style(self):
        """The one-liner the layer exists for."""
        from repro.generators import path_graph
        n, rows, cols, _ = path_graph(5)
        a = PM.from_dict(
            {(int(i), int(j)): float(i + 1) for i, j in zip(rows, cols)},
            5, 5,
        )
        d = PV.from_dict({0: 0.0}, 5)
        with semiring(MIN_PLUS_SEMIRING[T.FP64]):
            for _ in range(4):
                d = (d @ a) | d
        assert d.to_dict() == {0: 0.0, 1: 1.0, 2: 3.0, 3: 6.0, 4: 10.0}


class TestNamedOps:
    def test_select(self):
        a = PM.from_dict(A_D, 3, 3)
        assert set(a.select(TRIL, 0).to_dict()) == \
            {k for k in A_D if k[1] <= k[0]}
        v = PV.from_dict(U_D, 4)
        assert v.select(VALUEGT[T.FP64], 2.0).to_dict() == {2: 5.0}

    def test_apply_unary_and_bound(self):
        a = PM.from_dict(A_D, 3, 3)
        doubled = a.apply(UnaryOp.new(lambda x: 2 * x, T.FP64, T.FP64))
        assert doubled[2, 0] == 8.0

    def test_reduce(self):
        a = PM.from_dict(A_D, 3, 3)
        assert a.reduce(PLUS_MONOID[T.FP64]) == sum(A_D.values())
        v = PV.from_dict(U_D, 4)
        assert v.reduce(MAX_MONOID[T.FP64]) == 5.0

    def test_wrappers_share_underlying_objects(self):
        a = PM.from_dict(A_D, 3, 3)
        a.m.set_element(42.0, 2, 2)    # mutate through the raw handle
        assert a[2, 2] == 42.0

"""Extended-algorithm battery: BC, MIS, k-core, clustering coefficients,
all cross-checked against networkx."""

import networkx as nx
import numpy as np
import pytest

from repro.algorithms import (
    betweenness_centrality,
    core_numbers,
    k_core,
    local_clustering_coefficient,
    maximal_independent_set,
)
from repro.core import types as T
from repro.core.errors import InvalidIndexError, InvalidValueError
from repro.generators import erdos_renyi, to_matrix


def _digraph(n=30, p=0.1, seed=7):
    _, rows, cols, _ = erdos_renyi(n, p, seed=seed)
    keep = rows != cols
    rows, cols = rows[keep], cols[keep]
    A = to_matrix(n, rows, cols, np.ones(len(rows)), T.FP64)
    g = nx.DiGraph()
    g.add_nodes_from(range(n))
    g.add_edges_from(zip(rows.tolist(), cols.tolist()))
    return A, g


def _ugraph(n=30, p=0.1, seed=7):
    _, rows, cols, _ = erdos_renyi(n, p, seed=seed)
    keep = rows != cols
    rows, cols = rows[keep], cols[keep]
    A = to_matrix(n, rows, cols, np.ones(len(rows)), T.FP64,
                  make_undirected=True)
    g = nx.Graph()
    g.add_nodes_from(range(n))
    g.add_edges_from(zip(rows.tolist(), cols.tolist()))
    return A, g


class TestBetweenness:
    @pytest.mark.parametrize("seed", [3, 11], ids=lambda s: f"seed{s}")
    def test_exact_matches_networkx(self, seed):
        A, g = _digraph(seed=seed)
        ours = {int(k): float(v)
                for k, v in betweenness_centrality(A).to_dict().items()}
        theirs = nx.betweenness_centrality(g, normalized=False)
        for k, v in theirs.items():
            assert ours.get(k, 0.0) == pytest.approx(v), k

    def test_path_graph_is_quadratic_interior(self):
        from repro.generators import path_graph
        n, rows, cols, vals = path_graph(5)
        A = to_matrix(n, rows, cols, vals, T.FP64)
        bc = {int(k): float(v)
              for k, v in betweenness_centrality(A).to_dict().items()}
        # directed path 0→1→2→3→4: vertex i lies on i*(4-i) shortest paths
        for i in range(5):
            assert bc.get(i, 0.0) == pytest.approx(i * (4 - i))

    def test_sampled_sources_subset(self):
        A, g = _digraph(seed=5)
        full = betweenness_centrality(A)
        sampled = betweenness_centrality(A, sources=[0, 1, 2])
        assert sum(sampled.to_dict().values()) <= \
            sum(full.to_dict().values()) + 1e-9

    def test_source_validation(self):
        A, _ = _digraph()
        with pytest.raises(InvalidIndexError):
            betweenness_centrality(A, sources=[999])


class TestMIS:
    @pytest.mark.parametrize("seed", [1, 9, 17], ids=lambda s: f"seed{s}")
    def test_independent_and_maximal(self, seed):
        A, g = _ugraph(seed=seed)
        members = {
            k for k, v in
            maximal_independent_set(A, seed=seed).to_dict().items() if v
        }
        for u, v in g.edges:
            assert not (u in members and v in members)
        for v in g.nodes:
            if v not in members:
                assert any(u in members for u in g.neighbors(v)) or \
                    g.degree(v) == 0

    def test_isolated_vertices_always_in_set(self):
        A = to_matrix(5, np.array([0, 1]), np.array([1, 0]),
                      np.ones(2, bool), T.BOOL)
        members = {k for k, v in
                   maximal_independent_set(A).to_dict().items() if v}
        assert {2, 3, 4} <= members

    def test_empty_graph(self):
        from repro.core.matrix import Matrix
        A = Matrix.new(T.BOOL, 4, 4)
        members = {k for k, v in
                   maximal_independent_set(A).to_dict().items() if v}
        assert members == {0, 1, 2, 3}


class TestKCore:
    @pytest.mark.parametrize("k", [2, 3], ids=lambda k: f"k{k}")
    def test_matches_networkx(self, k):
        A, g = _ugraph(n=40, p=0.12, seed=2)
        sub, ids = k_core(A, k)
        theirs = set(nx.k_core(g, k).nodes)
        assert set(ids.tolist()) == theirs

    def test_core_of_clique(self):
        rows, cols = np.nonzero(~np.eye(5, dtype=bool))
        A = to_matrix(5, rows, cols, np.ones(len(rows)), T.FP64)
        sub, ids = k_core(A, 4)
        assert len(ids) == 5 and sub.nvals() == 20
        _, ids5 = k_core(A, 5)
        assert len(ids5) == 0

    def test_core_numbers_match_networkx(self):
        A, g = _ugraph(n=30, p=0.15, seed=8)
        ours = {int(k): int(v)
                for k, v in core_numbers(A).to_dict().items()}
        theirs = nx.core_number(g)
        assert ours == {k: v for k, v in theirs.items()}

    def test_k_validation(self):
        A, _ = _ugraph()
        with pytest.raises(InvalidValueError):
            k_core(A, 0)


class TestClusteringCoefficient:
    @pytest.mark.parametrize("seed", [4, 12], ids=lambda s: f"seed{s}")
    def test_matches_networkx(self, seed):
        A, g = _ugraph(n=35, p=0.15, seed=seed)
        ours = {int(k): float(v)
                for k, v in
                local_clustering_coefficient(A).to_dict().items()}
        theirs = nx.clustering(g)
        for v, c in theirs.items():
            if g.degree(v) == 0:
                assert v not in ours
            else:
                assert ours[v] == pytest.approx(c), v

    def test_triangle_graph_is_all_ones(self):
        rows = np.array([0, 1, 1, 2, 2, 0])
        cols = np.array([1, 0, 2, 1, 0, 2])
        A = to_matrix(3, rows, cols, np.ones(6), T.FP64)
        lcc = local_clustering_coefficient(A).to_dict()
        assert all(float(v) == pytest.approx(1.0) for v in lcc.values())

    def test_star_graph_is_zero(self):
        rows = np.array([0, 1, 0, 2, 0, 3])
        cols = np.array([1, 0, 2, 0, 3, 0])
        A = to_matrix(4, rows, cols, np.ones(6), T.FP64)
        lcc = local_clustering_coefficient(A).to_dict()
        assert all(float(v) == 0.0 for v in lcc.values())
        assert len(lcc) == 4

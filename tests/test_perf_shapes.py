"""Performance *shape* guards — the paper's claims as CI assertions.

These are deliberately loose (≥2–3× where the benches measure 5–100×)
so they never flake on a loaded machine, but they fail loudly if a
regression ever inverts a shape the reproduction stands on:

* §II / Table IV: predefined index-unary ops beat user-defined ones;
* §II: 2.0 select beats the 1.X packed-values idiom;
* masks: the masked triangle-count formulation beats the unmasked one.
"""

import time

import numpy as np
import pytest

from repro import compat
from repro.core import indexunaryop as IU
from repro.core import types as T
from repro.core.context import WaitMode
from repro.core.matrix import Matrix
from repro.generators import rmat, to_matrix
from repro.ops.apply import apply
from repro.ops.select import select


def _best(fn, reps=3):
    best = float("inf")
    for _ in range(reps):
        t0 = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - t0)
    return best


@pytest.fixture
def graph():
    n, rows, cols, vals = rmat(11, 8, seed=5)
    return to_matrix(n, rows, cols, vals, T.FP64, no_self_loops=True)


class TestHeadlineShapes:
    def test_predefined_index_op_beats_udf(self, graph):
        """Table IV / §II: vectorized predefined ≫ per-scalar UDF."""
        udf = IU.IndexUnaryOp.new(
            lambda v, i, j, s: j <= i + s, T.BOOL, T.FP64, T.INT64,
        )

        def run(op):
            out = Matrix.new(T.FP64, graph.nrows, graph.ncols)
            select(out, None, None, op, graph, 0)
            out.wait(WaitMode.MATERIALIZE)

        t_pre = _best(lambda: run(IU.TRIL))
        t_udf = _best(lambda: run(udf))
        assert t_udf > 3 * t_pre, (
            f"predefined TRIL ({t_pre * 1e3:.2f} ms) should beat the UDF "
            f"equivalent ({t_udf * 1e3:.2f} ms) by > 3x"
        )

    def test_20_select_beats_1x_packed_idiom(self, graph):
        """§II: the packed-values workaround pays for itself."""
        packed = compat.pack_index_matrix(graph)

        def new_way():
            mid = Matrix.new(T.FP64, graph.nrows, graph.ncols)
            select(mid, None, None, IU.TRIU, graph, 1)
            out = Matrix.new(T.FP64, graph.nrows, graph.ncols)
            select(out, None, None, IU.VALUEGT[T.FP64], mid, 0.0)
            out.wait(WaitMode.MATERIALIZE)

        def old_way():
            out = compat.select_triu_value_packed_1x(packed, 0.0, T.FP64)
            out.wait(WaitMode.MATERIALIZE)

        t_new = _best(new_way)
        t_old = _best(old_way)
        assert t_old > 2 * t_new, (
            f"1.X packed idiom ({t_old * 1e3:.2f} ms) should lose to 2.0 "
            f"select ({t_new * 1e3:.2f} ms) by > 2x"
        )

    def test_predefined_apply_beats_udf(self, graph):
        udf = IU.IndexUnaryOp.new(lambda v, i, j, s: i + s,
                                  T.INT64, T.FP64, T.INT64)

        def run(op):
            out = Matrix.new(T.INT64, graph.nrows, graph.ncols)
            apply(out, None, None, op, graph, 0)
            out.wait(WaitMode.MATERIALIZE)

        t_pre = _best(lambda: run(IU.ROWINDEX[T.INT64]))
        t_udf = _best(lambda: run(udf))
        assert t_udf > 3 * t_pre

    def test_masked_triangles_beat_unmasked(self):
        """Masks exist to prune work: Sandia ≤ Burkhardt wall-clock."""
        from repro.algorithms import (
            triangle_count,
            triangle_count_burkhardt,
        )
        n, rows, cols, _ = rmat(10, 8, seed=7)
        g = to_matrix(n, rows, cols, np.ones(len(rows)), T.FP64,
                      make_undirected=True, no_self_loops=True)
        t_masked = _best(lambda: triangle_count(g), reps=2)
        t_unmasked = _best(lambda: triangle_count_burkhardt(g), reps=2)
        assert t_masked < t_unmasked, (
            f"masked {t_masked * 1e3:.1f} ms vs unmasked "
            f"{t_unmasked * 1e3:.1f} ms"
        )

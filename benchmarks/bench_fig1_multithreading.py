"""F1 — Figure 1: the two-thread pipeline with completion hand-off (§III).

Runs the exact Fig. 1 dataflow (C = AB; Esh = DC; publish; Dres = A·Esh
while thread 1 computes G = EF and then Hres = G·Esh) two ways:

* sequentially on one thread,
* as the paper's two-thread program with ``wait(COMPLETE)`` + an
  acquire/release flag.

Expected shape: the threaded run is never slower than the sum of its
serial parts by more than synchronization overhead, results are
bit-identical, and the overlap (thread 1's G = EF hiding behind thread
0's chain) yields wall-clock ≤ sequential.
"""

import threading
import time

import pytest

from benchmarks.conftest import print_table
from repro.core import types as T
from repro.core.context import WaitMode
from repro.core.matrix import Matrix
from repro.core.semiring import PLUS_TIMES_SEMIRING
from repro.core.sequence import wait
from repro.generators import random_matrix_data
from repro.ops.mxm import mxm

PT = PLUS_TIMES_SEMIRING[T.FP64]
N = 700
DENSITY = 0.01


def _mk(seed: int) -> Matrix:
    rows, cols, vals = random_matrix_data(N, N, DENSITY, seed=seed)
    m = Matrix.new(T.FP64, N, N)
    m.build(rows, cols, vals)
    m.wait()
    return m


@pytest.fixture(scope="module")
def inputs():
    return {k: _mk(s) for k, s in zip("ABDEF", range(5))}


def run_sequential(inp):
    A, B, D, E, F = (inp[k] for k in "ABDEF")
    C = Matrix.new(T.FP64, N, N)
    Esh = Matrix.new(T.FP64, N, N)
    G = Matrix.new(T.FP64, N, N)
    Dres = Matrix.new(T.FP64, N, N)
    Hres = Matrix.new(T.FP64, N, N)
    mxm(C, None, None, PT, A, B)
    mxm(Esh, None, None, PT, D, C)
    mxm(G, None, None, PT, E, F)
    mxm(Dres, None, None, PT, A, Esh)
    mxm(Hres, None, None, PT, G, Esh)
    wait(Dres, WaitMode.MATERIALIZE)
    wait(Hres, WaitMode.MATERIALIZE)
    return Dres, Hres


def run_two_threads(inp):
    A, B, D, E, F = (inp[k] for k in "ABDEF")
    flag = threading.Event()
    Esh = Matrix.new(T.FP64, N, N)
    Dres = Matrix.new(T.FP64, N, N)
    Hres = Matrix.new(T.FP64, N, N)

    def thread0():
        C = Matrix.new(T.FP64, N, N)
        mxm(C, None, None, PT, A, B)
        mxm(Esh, None, None, PT, D, C)
        wait(Esh, WaitMode.COMPLETE)
        flag.set()
        mxm(Dres, None, None, PT, A, Esh)
        wait(Dres, WaitMode.COMPLETE)

    def thread1():
        G = Matrix.new(T.FP64, N, N)
        mxm(G, None, None, PT, E, F)
        flag.wait()
        mxm(Hres, None, None, PT, G, Esh)
        wait(Hres, WaitMode.COMPLETE)

    t0 = threading.Thread(target=thread0)
    t1 = threading.Thread(target=thread1)
    t0.start(); t1.start()
    t0.join(); t1.join()
    wait(Dres, WaitMode.MATERIALIZE)
    wait(Hres, WaitMode.MATERIALIZE)
    return Dres, Hres


@pytest.mark.benchmark(group="F1-pipeline")
class TestFigOnePipeline:
    def test_sequential(self, benchmark, inputs):
        benchmark(run_sequential, inputs)

    def test_two_threads(self, benchmark, inputs):
        benchmark(run_two_threads, inputs)


def test_fig1_results_identical(inputs):
    import numpy as np
    d_seq, h_seq = run_sequential(inputs)
    d_thr, h_thr = run_two_threads(inputs)
    assert np.allclose(d_seq.to_dense(), d_thr.to_dense())
    assert np.allclose(h_seq.to_dense(), h_thr.to_dense())


def test_fig1_report(benchmark, capsys, inputs):
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    rows = []
    for label, fn in (("sequential", run_sequential),
                      ("two threads (Fig. 1)", run_two_threads)):
        best = min(
            (lambda t0=time.perf_counter(): (fn(inputs),
                                             time.perf_counter() - t0))()[1]
            for _ in range(3)
        )
        rows.append([label, f"{best * 1e3:9.1f} ms"])
    with capsys.disabled():
        print_table(
            f"Figure 1: two-thread pipeline vs sequential "
            f"(n={N}, density={DENSITY})",
            ["execution", "wall clock"], rows,
        )

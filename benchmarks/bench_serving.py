"""S1 — the multi-tenant serving layer under concurrent mixed load.

The ROADMAP's north star is GraphBLAS serving "heavy traffic from
millions of users".  This bench measures the serving stack's two
claims on a mixed workload (BFS + pagerank + triangles across four
tenants, every query logically arriving at once):

* **throughput** — the batched concurrent path (admission → coalesce →
  one planner pass per window) must beat naive one-fresh-context-per-
  query serial dispatch on total wall;
* **tail latency under load** — per-query latency measured from
  *arrival* (so the serial baseline pays realistic queue wait), p50
  and p99 compared.

Results land in ``BENCH_serving.json``; ``tools/bench_gate.py`` gates
the two ratios (``serving.nb_batched_ms / blocking_ms`` and
``serving_p99.nb_batched_ms / blocking_ms``) against the committed
baseline in ``benchmarks/BENCH_serving.json``.
"""

import asyncio
import json
import time
from pathlib import Path

import pytest

from benchmarks.conftest import print_table, rmat_graph
from repro.algorithms import bfs_levels, pagerank, triangle_count
from repro.core.context import Context, Mode
from repro.engine.stats import STATS
from repro.serve import GraphServer, GraphService, Query
from repro.serve.session import percentile

SCALE = 9
TENANTS = 4
QUERIES = 48
REPS = 2

_RESULTS: dict = {}


@pytest.fixture(scope="module", autouse=True)
def emit_results():
    yield
    if _RESULTS:
        Path("BENCH_serving.json").write_text(
            json.dumps(_RESULTS, indent=2, sort_keys=True) + "\n"
        )


def _graph():
    return rmat_graph(SCALE, undirected=True)


def _plan(i: int, n: int) -> Query:
    # The CLI's mixed load: mostly BFS (batchable), some analytics
    # (dedup-able: repeated identical pagerank/triangle submissions).
    if i % 4 == 3:
        return Query.make("triangles", "g") if i % 8 == 3 else \
            Query.make("pagerank", "g", tol=1e-6)
    return Query.make("bfs", "g", (i * 37) % n)


def _naive_dispatch(service, query: Query):
    """The pre-serving idiom: a fresh context per query, no sharing."""
    ctx = Context.new(Mode.NONBLOCKING, None, {"nthreads": 2})
    try:
        view = service.graph_view(query.graph, ctx)
        if query.kind == "bfs":
            return {int(k): int(v) for k, v in
                    bfs_levels(view, query.source).to_dict().items()}
        if query.kind == "pagerank":
            ranks, _ = pagerank(view, **dict(query.params))
            return {int(k): round(float(v), 9)
                    for k, v in ranks.to_dict().items()}
        return int(triangle_count(view))
    finally:
        ctx.free()


def _serial_run(graph, n):
    """All queries arrive at t0, drain one at a time through fresh
    contexts; latency is completion time *from arrival*."""
    service = GraphService(name="naive")
    service.register_graph("g", graph)
    latencies, values = [], []
    t0 = time.perf_counter()
    for i in range(QUERIES):
        values.append(_naive_dispatch(service, _plan(i, n)))
        latencies.append((time.perf_counter() - t0) * 1e3)
    wall = (time.perf_counter() - t0) * 1e3
    service.close()
    return wall, sorted(latencies), values


def _batched_run(graph, n):
    """The same load through the serving front door: admission,
    window coalescing (msbfs + dedup), per-tenant contexts."""
    service = GraphService(name="bench")
    service.register_graph("g", graph)
    sessions = [
        service.open_session(f"t{i}", nthreads=2, memo_capacity=32)
        for i in range(TENANTS)
    ]

    async def load():
        async with GraphServer(service, max_pending=QUERIES * 2,
                               per_tenant=QUERIES, batch_window=16) as srv:
            jobs = [
                srv.submit(sessions[i % TENANTS], _plan(i, n))
                for i in range(QUERIES)
            ]
            return await asyncio.gather(*jobs)

    before = STATS.snapshot()
    t0 = time.perf_counter()
    results = asyncio.run(load())
    wall = (time.perf_counter() - t0) * 1e3
    after = STATS.snapshot()
    values = [
        {k: round(v, 9) for k, v in r.value["ranks"].items()}
        if r.query.kind == "pagerank" else r.value
        for r in results
    ]
    latencies = sorted(r.total_ms for r in results)
    counters = {
        k: after[k] - before[k]
        for k in ("serve_batches", "serve_batched_queries")
    }
    service.close()
    return wall, latencies, values, counters


@pytest.mark.benchmark(group="S1-serving")
class TestServingThroughput:
    def test_batched_concurrent_vs_serial_dispatch(self):
        graph = _graph()
        n = graph.nrows

        serial_wall, serial_lat, serial_vals = None, None, None
        for _ in range(REPS):
            wall, lat, vals = _serial_run(graph, n)
            if serial_wall is None or wall < serial_wall:
                serial_wall, serial_lat, serial_vals = wall, lat, vals

        batch_wall, batch_lat, counters = None, None, None
        for _ in range(REPS):
            wall, lat, vals, ctr = _batched_run(graph, n)
            # Parity first: coalesced answers equal the naive oracle.
            assert vals == serial_vals, "batched serving diverged"
            if batch_wall is None or wall < batch_wall:
                batch_wall, batch_lat, counters = wall, lat, ctr

        assert counters["serve_batched_queries"] >= QUERIES // 3, \
            "window coalescing barely fired"

        _RESULTS["serving"] = {
            "blocking_ms": serial_wall,
            "nb_batched_ms": batch_wall,
            "serve_batched_queries": counters["serve_batched_queries"],
            "queries": QUERIES,
            "tenants": TENANTS,
            "qps_serial": QUERIES / (serial_wall / 1e3),
            "qps_batched": QUERIES / (batch_wall / 1e3),
        }
        _RESULTS["serving_p99"] = {
            "blocking_ms": percentile(serial_lat, 99.0),
            "nb_batched_ms": percentile(batch_lat, 99.0),
            "serial_p50_ms": percentile(serial_lat, 50.0),
            "batched_p50_ms": percentile(batch_lat, 50.0),
            "serve_batches": counters["serve_batches"],
        }
        print_table(
            f"S1  {QUERIES} mixed queries, {TENANTS} tenants "
            f"(rmat scale {SCALE})",
            ["variant", "wall ms", "p50 ms", "p99 ms", "q/s"],
            [["serial fresh-ctx", f"{serial_wall:.1f}",
              f"{percentile(serial_lat, 50.0):.1f}",
              f"{percentile(serial_lat, 99.0):.1f}",
              f"{QUERIES / (serial_wall / 1e3):.0f}"],
             ["batched serving", f"{batch_wall:.1f}",
              f"{percentile(batch_lat, 50.0):.1f}",
              f"{percentile(batch_lat, 99.0):.1f}",
              f"{QUERIES / (batch_wall / 1e3):.0f}"],
             ["serve_batches", counters["serve_batches"], "", "", ""],
             ["serve_batched_queries",
              counters["serve_batched_queries"], "", "", ""]],
        )
        # The serving contract: coalescing + per-tenant reuse must beat
        # naive serial dispatch on throughput AND tail latency.
        assert batch_wall < serial_wall, "serving lost on throughput"
        assert percentile(batch_lat, 99.0) < percentile(serial_lat, 99.0), \
            "serving lost on p99 under load"

"""T3 — Table III: import/export formats + serialization (§VII).

Regenerates the Table III format matrix as a throughput series over an
nnz sweep.  Expected shape: CSR export is nearly free (internal
storage), CSC pays a transpose, COO pays an expansion, dense pays
densification; import mirrors that, and the export *hint* is CSR.
"""

import time

import numpy as np
import pytest

from benchmarks.conftest import print_table, rmat_graph
from repro.core import types as T
from repro.formats import (
    Format,
    matrix_deserialize,
    matrix_export,
    matrix_export_hint,
    matrix_export_size,
    matrix_import,
    matrix_serialize,
    vector_export,
    vector_import,
)
from repro.core.vector import Vector

SCALE = 11
MATRIX_FORMATS = [
    Format.CSR_MATRIX,
    Format.CSC_MATRIX,
    Format.COO_MATRIX,
]


@pytest.fixture(scope="module")
def graph():
    return rmat_graph(SCALE)


@pytest.fixture(scope="module")
def exported(graph):
    return {
        fmt: matrix_export(graph, fmt)
        for fmt in MATRIX_FORMATS
    }


@pytest.mark.benchmark(group="T3-export")
class TestExport:
    @pytest.mark.parametrize("fmt", MATRIX_FORMATS, ids=lambda f: f.name)
    def test_export(self, benchmark, graph, fmt):
        benchmark(matrix_export, graph, fmt)

    def test_export_dense(self, benchmark):
        small = rmat_graph(8)
        benchmark(matrix_export, small, Format.DENSE_ROW_MATRIX)

    def test_export_size(self, benchmark, graph):
        benchmark(matrix_export_size, graph, Format.CSR_MATRIX)

    def test_export_hint(self, benchmark, graph):
        benchmark(matrix_export_hint, graph)


@pytest.mark.benchmark(group="T3-import")
class TestImport:
    @pytest.mark.parametrize("fmt", MATRIX_FORMATS, ids=lambda f: f.name)
    def test_import(self, benchmark, graph, exported, fmt):
        ip, ind, vals = exported[fmt]
        n = graph.nrows
        benchmark(matrix_import, T.FP64, n, n, ip, ind, vals, fmt)

    def test_import_dense(self, benchmark):
        small = rmat_graph(8)
        _, _, vals = matrix_export(small, Format.DENSE_ROW_MATRIX)
        n = small.nrows
        benchmark(matrix_import, T.FP64, n, n, None, None, vals,
                  Format.DENSE_ROW_MATRIX)


@pytest.mark.benchmark(group="T3-serialize")
class TestSerialize:
    def test_serialize(self, benchmark, graph):
        benchmark(matrix_serialize, graph)

    def test_deserialize(self, benchmark, graph):
        blob = matrix_serialize(graph)
        benchmark(matrix_deserialize, blob)


@pytest.mark.benchmark(group="T3-vector")
class TestVectorFormats:
    @pytest.fixture(scope="class")
    def vec(self):
        rng = np.random.default_rng(0)
        n = 1 << 16
        idx = np.flatnonzero(rng.random(n) < 0.2)
        v = Vector.new(T.FP64, n)
        v.build(idx, rng.random(len(idx)))
        v.wait()
        return v

    def test_sparse_vector_export(self, benchmark, vec):
        benchmark(vector_export, vec, Format.SPARSE_VECTOR)

    def test_dense_vector_export(self, benchmark, vec):
        benchmark(vector_export, vec, Format.DENSE_VECTOR)

    def test_sparse_vector_import(self, benchmark, vec):
        idx, vals = vector_export(vec, Format.SPARSE_VECTOR)
        benchmark(vector_import, T.FP64, vec.size, idx, vals,
                  Format.SPARSE_VECTOR)


def test_table3_report(benchmark, capsys):
    """The Table III grid: per-format import/export times over an nnz sweep."""
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)

    def timed(fn, reps=5):
        t0 = time.perf_counter()
        for _ in range(reps):
            fn()
        return (time.perf_counter() - t0) / reps * 1e3

    rows = []
    for scale in (8, 10, 12):
        g = rmat_graph(scale)
        n = g.nrows
        row = [f"scale {scale} (nnz={g.nvals()})"]
        for fmt in MATRIX_FORMATS:
            data = matrix_export(g, fmt)
            exp = timed(lambda f=fmt: matrix_export(g, f))
            imp = timed(lambda f=fmt, d=data: matrix_import(
                T.FP64, n, n, d[0], d[1], d[2], f))
            row.append(f"{exp:.2f}/{imp:.2f}")
        blob = matrix_serialize(g)
        ser = timed(lambda: matrix_serialize(g))
        deser = timed(lambda: matrix_deserialize(blob))
        row.append(f"{ser:.2f}/{deser:.2f}")
        rows.append(row)
    hint = matrix_export_hint(rmat_graph(8)).name
    with capsys.disabled():
        print_table(
            f"Table III: export/import ms per format (hint = {hint})",
            ["workload", "CSR", "CSC", "COO", "serialize"],
            rows,
        )

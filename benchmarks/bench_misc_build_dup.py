"""M2 — §IX cleanup: the optional ``dup`` in build.

Series over duplicate rates: build with dup=PLUS (fold), dup=FIRST
(keep first), and dup=NULL (detect-and-error / accept when clean).
Expected shape: the NULL-dup clean path is the cheapest (a run-length
scan instead of a reduction); folding cost grows mildly with the
duplicate rate; detection on a duplicate-bearing input costs the same
scan and raises.
"""

import time

import numpy as np
import pytest

from benchmarks.conftest import print_table
from repro.core import binaryop as B
from repro.core import types as T
from repro.core.errors import DuplicateIndexError
from repro.core.matrix import Matrix

N = 1 << 11
BASE_EDGES = 40_000


def _triples(dup_rate: float, seed: int = 7):
    rng = np.random.default_rng(seed)
    uniq = rng.choice(N * N, size=BASE_EDGES, replace=False)
    extra = rng.choice(uniq, size=int(BASE_EDGES * dup_rate)) \
        if dup_rate else np.empty(0, dtype=np.int64)
    flat = np.concatenate([uniq, extra])
    rng.shuffle(flat)
    rows, cols = np.divmod(flat.astype(np.int64), N)
    return rows, cols, rng.random(len(flat))


def _build(rows, cols, vals, dup):
    m = Matrix.new(T.FP64, N, N)
    m.build(rows, cols, vals, dup)
    m.wait()
    return m


@pytest.mark.benchmark(group="M2-build")
class TestBuildDup:
    @pytest.mark.parametrize("rate", [0.0, 0.25], ids=["clean", "dup25"])
    def test_build_dup_plus(self, benchmark, rate):
        rows, cols, vals = _triples(rate)
        benchmark(_build, rows, cols, vals, B.PLUS[T.FP64])

    @pytest.mark.parametrize("rate", [0.0, 0.25], ids=["clean", "dup25"])
    def test_build_dup_first(self, benchmark, rate):
        rows, cols, vals = _triples(rate)
        benchmark(_build, rows, cols, vals, B.FIRST[T.FP64])

    def test_build_null_dup_clean(self, benchmark):
        rows, cols, vals = _triples(0.0)
        benchmark(_build, rows, cols, vals, None)

    def test_build_null_dup_detects(self, benchmark):
        rows, cols, vals = _triples(0.25)

        def run():
            try:
                _build(rows, cols, vals, None)
            except DuplicateIndexError:
                return True
            raise AssertionError("duplicates not detected")

        benchmark(run)

    def test_build_udf_dup(self, benchmark):
        """User-defined dup pays the per-duplicate Python call."""
        rows, cols, vals = _triples(0.25)
        op = B.BinaryOp.new(lambda x, y: x + y, T.FP64, T.FP64, T.FP64)
        benchmark(_build, rows, cols, vals, op)


def test_build_dup_report(benchmark, capsys):
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)

    def timed(fn, reps=3):
        best = float("inf")
        for _ in range(reps):
            t0 = time.perf_counter()
            fn()
            best = min(best, time.perf_counter() - t0)
        return best * 1e3

    rows = []
    for rate in (0.0, 0.1, 0.25, 0.5):
        r, c, v = _triples(rate)
        t_plus = timed(lambda: _build(r, c, v, B.PLUS[T.FP64]))
        t_first = timed(lambda: _build(r, c, v, B.FIRST[T.FP64]))
        if rate == 0.0:
            t_null = timed(lambda: _build(r, c, v, None))
            null_label = f"{t_null:7.2f} (accepts)"
        else:
            def detect():
                try:
                    _build(r, c, v, None)
                except DuplicateIndexError:
                    pass
            t_null = timed(detect)
            null_label = f"{t_null:7.2f} (errors)"
        rows.append([f"dup rate {rate:4.2f}", f"{t_plus:7.2f}",
                     f"{t_first:7.2f}", null_label])
    with capsys.disabled():
        print_table(
            f"§IX: build with optional dup ({BASE_EDGES} base edges; ms)",
            ["workload", "dup=PLUS", "dup=FIRST", "dup=NULL"], rows,
        )

"""F2 — Figure 2: execution contexts driving resources (§IV).

Series: mxm wall-clock under contexts with nthreads ∈ {1, 2, 4, 8}
(the implementation-defined exec spec of GrB_Context_new), plus the
O(1) costs of context creation and GrB_Context_switch.  Expected shape:
monotone non-increasing time with more threads on a large-enough
product (NumPy kernels release the GIL), flat line for tiny inputs
where overhead dominates.
"""

import time

import pytest

from benchmarks.conftest import print_table
from repro.core import types as T
from repro.core.context import Context, Mode, context_switch
from repro.core.matrix import Matrix
from repro.core.semiring import PLUS_TIMES_SEMIRING
from repro.generators import rmat, to_matrix
from repro.ops.mxm import mxm

PT = PLUS_TIMES_SEMIRING[T.FP64]
SCALE = 12
THREADS = [1, 2, 4, 8]


def _graph_in(ctx):
    n, rows, cols, vals = rmat(SCALE, 8, seed=17)
    return to_matrix(n, rows, cols, vals, T.FP64, ctx=ctx)


def _mxm_under(ctx, a):
    c = Matrix.new(T.FP64, a.nrows, a.ncols, ctx)
    mxm(c, None, None, PT, a, a)
    c.wait()
    return c


@pytest.mark.benchmark(group="F2-threads")
class TestContextThreads:
    @pytest.mark.parametrize("nthreads", THREADS, ids=lambda n: f"n{n}")
    def test_mxm_under_context(self, benchmark, nthreads):
        ctx = Context.new(Mode.NONBLOCKING, None, {"nthreads": nthreads})
        a = _graph_in(ctx)
        benchmark(_mxm_under, ctx, a)


@pytest.mark.benchmark(group="F2-overhead")
class TestContextOverhead:
    def test_context_new(self, benchmark):
        benchmark(Context.new, Mode.NONBLOCKING, None, {"nthreads": 2})

    def test_context_switch(self, benchmark):
        c1 = Context.new(Mode.NONBLOCKING, None, None)
        c2 = Context.new(Mode.NONBLOCKING, None, None)
        m = Matrix.new(T.FP64, 8, 8, c1)
        state = [c1, c2]

        def flip():
            state.reverse()
            context_switch(m, state[0])

        benchmark(flip)

    def test_nested_context_resolution(self, benchmark):
        """Cost of resolving nthreads through a 4-deep hierarchy."""
        ctx = Context.new(Mode.NONBLOCKING, None, {"nthreads": 4})
        for _ in range(3):
            ctx = Context.new(Mode.NONBLOCKING, ctx, None)
        benchmark(lambda: ctx.nthreads)


def test_fig2_report(benchmark, capsys):
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    rows = []
    base = None
    for nthreads in THREADS:
        ctx = Context.new(Mode.NONBLOCKING, None, {"nthreads": nthreads})
        a = _graph_in(ctx)
        best = float("inf")
        for _ in range(3):
            t0 = time.perf_counter()
            _mxm_under(ctx, a)
            best = min(best, time.perf_counter() - t0)
        if base is None:
            base = best
        rows.append([f"nthreads={nthreads}", f"{best * 1e3:8.1f} ms",
                     f"{base / best:5.2f}x"])
    with capsys.disabled():
        print_table(
            f"Figure 2: mxm under per-context thread counts (RMAT scale {SCALE})",
            ["context exec spec", "wall clock", "speedup vs 1"], rows,
        )

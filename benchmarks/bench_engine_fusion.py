"""E2 — the lazy engine: blocking vs nonblocking, unfused vs fused.

The §III/§V execution freedoms only matter if they buy something.  This
bench runs the same two pipelines three ways:

* **blocking**      — every method executes inline at the call;
* **nb-unfused**    — nonblocking deferral, fusion planner disabled
  (``ENGINE_FUSION`` off): one forcing, standalone kernels;
* **nb-fused**      — full engine: the forcing fuses in-place chains
  into single-pass pipelines, hoists value-independent selects ahead of
  maps, and skips intermediate write-backs.

Pipelines:

* ``mxm → apply → select(TRIL)`` in place — the Fig. 3 shape.  Fusion
  elides the two intermediate write-backs and filters *before* the map.
* a long in-place ``apply`` chain (8 maps, alternating value and
  index-unary operators) — the pathological 1.X shape where every step
  pays a full carrier rebuild.  Standalone, each coordinate-reading
  step re-expands CSR row pointers to COO; the fused pipeline
  materializes the coordinates once and streams all eight maps.

Expected shape: nb-fused ≤ blocking on both, with the gap widest on the
apply chain; the engine stats must show fusion actually fired.
"""

import time

import pytest

from benchmarks.conftest import print_table, rmat_graph
from repro.core import binaryop as B
from repro.core import types as T
from repro.core.context import Context, Mode, WaitMode
from repro.core.indexunaryop import ROWINDEX, TRIL
from repro.core.matrix import Matrix
from repro.core.semiring import PLUS_TIMES_SEMIRING
from repro.core.unaryop import AINV
from repro.engine.stats import STATS
from repro.internals import config
from repro.ops.apply import apply
from repro.ops.mxm import mxm
from repro.ops.select import select

SCALE = 10          # mxm workload: SpGEMM dominates, small graph suffices
CHAIN_SCALE = 13    # apply workload: needs enough nnz to dwarf call overhead
APPLY_CHAIN = 8
REPS = 5


def _ctx_graph(ctx, scale=SCALE, edge_factor=8):
    base = rmat_graph(scale, edge_factor)
    r, c, v = base.extract_tuples()
    m = Matrix.new(T.FP64, base.nrows, base.ncols, ctx)
    m.build(r, c, v)
    m.wait(WaitMode.MATERIALIZE)
    return m


def _fig3_chain(ctx, a):
    c = Matrix.new(T.FP64, a.nrows, a.ncols, ctx)
    mxm(c, None, None, PLUS_TIMES_SEMIRING[T.FP64], a, a)
    apply(c, None, None, AINV[T.FP64], c)
    select(c, None, None, TRIL, c, 0)
    c.wait(WaitMode.MATERIALIZE)
    return c


def _apply_chain(ctx, a):
    c = Matrix.new(T.FP64, a.nrows, a.ncols, ctx)
    apply(c, None, None, B.TIMES[T.FP64], a, 1.0000001)
    for k in range(APPLY_CHAIN - 1):
        if k % 2:
            apply(c, None, None, B.TIMES[T.FP64], c, 1.0000001)
        else:
            apply(c, None, None, ROWINDEX[T.INT64], c, 1)
    c.wait(WaitMode.MATERIALIZE)
    return c


def _best(fn, *args):
    best = float("inf")
    out = None
    for _ in range(REPS):
        t0 = time.perf_counter()
        out = fn(*args)
        best = min(best, time.perf_counter() - t0)
    return best, out


@pytest.fixture(scope="module")
def contexts():
    bl = Context.new(Mode.BLOCKING, None, None)
    nb = Context.new(Mode.NONBLOCKING, None, None)
    return bl, nb


@pytest.mark.benchmark(group="E2-engine-fusion")
class TestEngineFusion:
    def _three_ways(self, contexts, pipeline, scale=SCALE, edge_factor=8):
        bl, nb = contexts
        a_bl = _ctx_graph(bl, scale, edge_factor)
        a_nb = _ctx_graph(nb, scale, edge_factor)
        t_blocking, r0 = _best(pipeline, bl, a_bl)
        # The result memo would serve the later reps from cache and the
        # fusion planner would (correctly) never run — this bench
        # measures fusion itself, so pin the memo off.
        with config.option("ENGINE_MEMO", False):
            with config.option("ENGINE_FUSION", False):
                t_unfused, r1 = _best(pipeline, nb, a_nb)
            STATS.reset()
            t_fused, r2 = _best(pipeline, nb, a_nb)
            snap = STATS.snapshot()
        # All three agree exactly (mode transparency).
        assert sorted(r0.to_dict()) == sorted(r1.to_dict()) == sorted(r2.to_dict())
        return t_blocking, t_unfused, t_fused, snap

    def test_fig3_mxm_apply_select(self, contexts):
        tb, tu, tf, snap = self._three_ways(contexts, _fig3_chain)
        print_table(
            "E2a  mxm → apply → select(TRIL), in place",
            ["variant", "best ms"],
            [["blocking", f"{tb * 1e3:.2f}"],
             ["nb-unfused", f"{tu * 1e3:.2f}"],
             ["nb-fused", f"{tf * 1e3:.2f}"],
             ["chains_fused", snap["chains_fused"]],
             ["selects_hoisted", snap["selects_hoisted"]]],
        )
        assert snap["chains_fused"] >= 1, "fusion never fired"
        assert snap["selects_hoisted"] >= 1, "TRIL did not hoist"
        # Loose shape guard: fusion must not lose to blocking.
        assert tf < tb * 1.10

    def test_long_apply_chain(self, contexts):
        tb, tu, tf, snap = self._three_ways(
            contexts, _apply_chain, scale=CHAIN_SCALE, edge_factor=16
        )
        print_table(
            f"E2b  {APPLY_CHAIN}-deep in-place apply chain",
            ["variant", "best ms"],
            [["blocking", f"{tb * 1e3:.2f}"],
             ["nb-unfused", f"{tu * 1e3:.2f}"],
             ["nb-fused", f"{tf * 1e3:.2f}"],
             ["nodes_fused", snap["nodes_fused"]]],
        )
        assert snap["chains_fused"] >= 1, "fusion never fired"
        assert snap["nodes_fused"] >= APPLY_CHAIN - 1
        # The whole point: one fused pass beats N inline kernels.
        assert tf < tb

"""F3 — Figure 3: the select and apply examples (§VIII).

Conformance first (the exact operator semantics of the figure on its
5-vertex-style graph), then performance series: the figure's two
operations — select(my_triu_eq) and apply(COLINDEX) — swept over RMAT
scales.  Expected shape: both scale linearly in nnz; the user-defined
select (the paper's §VIII-A example operator) tracks the UDF line of
Table IV while COLINDEX tracks the vectorized line.
"""

import time

import pytest

from benchmarks.conftest import print_table, rmat_graph
from repro.core import indexunaryop as IU
from repro.core import types as T
from repro.core.matrix import Matrix
from repro.ops.apply import apply
from repro.ops.select import select

SCALES = [8, 10, 12]


def my_triu_eq(v, i, j, s):
    """The paper's my_triu_eq_INT32, FP64-valued here."""
    return (j > i) and (v > s)


MY_TRIU = IU.IndexUnaryOp.new(my_triu_eq, T.BOOL, T.FP64, T.FP64,
                              name="my_triu_eq")


def run_fig3_select(graph):
    out = Matrix.new(T.FP64, graph.nrows, graph.ncols)
    select(out, None, None, MY_TRIU, graph, 0.0)
    out.wait()
    return out


def run_fig3_select_predefined(graph):
    """The same filter out of predefined ops: TRIU(1) then VALUEGT."""
    mid = Matrix.new(T.FP64, graph.nrows, graph.ncols)
    select(mid, None, None, IU.TRIU, graph, 1)
    out = Matrix.new(T.FP64, graph.nrows, graph.ncols)
    select(out, None, None, IU.VALUEGT[T.FP64], mid, 0.0)
    out.wait()
    return out


def run_fig3_apply(graph):
    out = Matrix.new(T.INT64, graph.nrows, graph.ncols)
    apply(out, None, None, IU.COLINDEX[T.INT64], graph, 1)
    out.wait()
    return out


def test_fig3_conformance():
    """The figure's semantics on a concrete small graph."""
    g = Matrix.new(T.FP64, 5, 5)
    rows = [0, 0, 1, 1, 2, 2, 3, 3, 4, 4]
    cols = [1, 3, 2, 4, 0, 3, 1, 4, 0, 2]
    vals = [2.0, 5.0, 1.0, 4.0, 3.0, 7.0, 6.0, 2.0, 9.0, 1.0]
    g.build(rows, cols, vals)

    sel = run_fig3_select(g)
    for (i, j), v in sel.to_dict().items():
        assert j > i and v > 0
    assert sel.to_dict() == run_fig3_select_predefined(g).to_dict()

    app = run_fig3_apply(g)
    assert app.nvals() == g.nvals()
    for (i, j), v in app.to_dict().items():
        assert v == j + 1


@pytest.mark.benchmark(group="F3-select")
class TestFigThreeSelect:
    @pytest.mark.parametrize("scale", SCALES, ids=lambda s: f"scale{s}")
    def test_select_udf(self, benchmark, scale):
        benchmark(run_fig3_select, rmat_graph(scale))

    @pytest.mark.parametrize("scale", SCALES, ids=lambda s: f"scale{s}")
    def test_select_predefined(self, benchmark, scale):
        benchmark(run_fig3_select_predefined, rmat_graph(scale))


@pytest.mark.benchmark(group="F3-apply")
class TestFigThreeApply:
    @pytest.mark.parametrize("scale", SCALES, ids=lambda s: f"scale{s}")
    def test_apply_colindex(self, benchmark, scale):
        benchmark(run_fig3_apply, rmat_graph(scale))


def test_fig3_report(benchmark, capsys):
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)

    def timed(fn, arg, reps=3):
        best = float("inf")
        for _ in range(reps):
            t0 = time.perf_counter()
            fn(arg)
            best = min(best, time.perf_counter() - t0)
        return best * 1e3

    rows = []
    for scale in SCALES:
        g = rmat_graph(scale)
        rows.append([
            f"scale {scale} (nnz={g.nvals()})",
            f"{timed(run_fig3_select, g):8.2f}",
            f"{timed(run_fig3_select_predefined, g):8.2f}",
            f"{timed(run_fig3_apply, g):8.2f}",
        ])
    with capsys.disabled():
        print_table(
            "Figure 3: select(my_triu_eq) / predefined select pipeline / "
            "apply(COLINDEX); ms",
            ["workload", "select UDF", "select predef", "apply COLINDEX"],
            rows,
        )

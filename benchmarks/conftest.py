"""Benchmark harness fixtures: library lifecycle and cached workloads.

Run with:  pytest benchmarks/ --benchmark-only

Each bench module regenerates one table/figure of the paper (see
DESIGN.md's experiment index and EXPERIMENTS.md for measured results).
Workloads are RMAT scale-free graphs and uniform random matrices at
laptop scale; the *shapes* (who wins, by what factor) are the
reproduction target, not the authors' absolute numbers.
"""

from __future__ import annotations

import pytest

from repro.core import types as T
from repro.core.context import Mode, finalize, init, is_initialized
from repro.generators import rmat, to_matrix


@pytest.fixture(scope="session", autouse=True)
def grb_lifecycle():
    if is_initialized():
        finalize()
    init(Mode.NONBLOCKING)
    yield
    if is_initialized():
        finalize()


_GRAPH_CACHE: dict = {}


def rmat_graph(scale: int, edge_factor: int = 8, t=T.FP64, *,
               undirected: bool = False, seed: int = 42):
    """Cached RMAT adjacency matrix (dedup'd, no self loops)."""
    key = (scale, edge_factor, t.name, undirected, seed)
    if key not in _GRAPH_CACHE:
        n, rows, cols, vals = rmat(scale, edge_factor, seed=seed)
        _GRAPH_CACHE[key] = to_matrix(
            n, rows, cols, vals, t,
            make_undirected=undirected, no_self_loops=True,
        )
    return _GRAPH_CACHE[key]


def print_table(title: str, headers: list[str], rows: list[list]) -> None:
    """Render a paper-style results table into the captured stdout."""
    widths = [
        max(len(str(h)), *(len(str(r[k])) for r in rows)) if rows else len(str(h))
        for k, h in enumerate(headers)
    ]
    line = "  ".join(str(h).ljust(w) for h, w in zip(headers, widths))
    print(f"\n== {title}")
    print(line)
    print("-" * len(line))
    for r in rows:
        print("  ".join(str(c).ljust(w) for c, w in zip(r, widths)))

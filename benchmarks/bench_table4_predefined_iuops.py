"""T4 — Table IV: predefined index-unary operators vs user-defined ones.

The §II performance claim in operator form: a *predefined* index-unary
operator runs vectorized, while an equivalent *user-defined* operator
pays one interpreter call per stored element (the C API's
function-pointer-per-scalar cost).  Expected shape: predefined ≫ UDF,
with the gap growing with nnz.
"""

import time

import pytest

from benchmarks.conftest import print_table, rmat_graph
from repro.core import indexunaryop as IU
from repro.core import types as T
from repro.core.matrix import Matrix
from repro.ops.apply import apply
from repro.ops.select import select

SCALE = 11

UDF_EQUIVALENTS = {
    "TRIL": (IU.TRIL, lambda v, i, j, s: j <= i + s, T.INT64),
    "TRIU": (IU.TRIU, lambda v, i, j, s: j >= i + s, T.INT64),
    "DIAG": (IU.DIAG, lambda v, i, j, s: j == i + s, T.INT64),
    "OFFDIAG": (IU.OFFDIAG, lambda v, i, j, s: j != i + s, T.INT64),
    "ROWLE": (IU.ROWLE, lambda v, i, j, s: i <= s, T.INT64),
    "COLGT": (IU.COLGT, lambda v, i, j, s: j > s, T.INT64),
    "VALUEGT": (IU.VALUEGT[T.FP64], lambda v, i, j, s: v > s, T.FP64),
    "VALUELE": (IU.VALUELE[T.FP64], lambda v, i, j, s: v <= s, T.FP64),
}


@pytest.fixture(scope="module")
def graph():
    return rmat_graph(SCALE)


def _run_select(graph, op, s):
    out = Matrix.new(graph.type, graph.nrows, graph.ncols)
    select(out, None, None, op, graph, s)
    out.wait()
    return out


@pytest.mark.benchmark(group="T4-select-predefined")
class TestPredefinedSelect:
    @pytest.mark.parametrize("name", list(UDF_EQUIVALENTS), ids=str)
    def test_predefined(self, benchmark, graph, name):
        op, _, _ = UDF_EQUIVALENTS[name]
        benchmark(_run_select, graph, op, 0)


@pytest.mark.benchmark(group="T4-select-udf")
class TestUserDefinedSelect:
    @pytest.mark.parametrize("name", ["TRIL", "VALUEGT"], ids=str)
    def test_udf(self, benchmark, graph, name):
        _, fn, s_type = UDF_EQUIVALENTS[name]
        op = IU.IndexUnaryOp.new(fn, T.BOOL, T.FP64, s_type)
        benchmark(_run_select, graph, op, 0)


@pytest.mark.benchmark(group="T4-apply")
class TestIndexApply:
    def test_predefined_rowindex(self, benchmark, graph):
        out = Matrix.new(T.INT64, graph.nrows, graph.ncols)

        def run():
            apply(out, None, None, IU.ROWINDEX[T.INT64], graph, 0)
            out.wait()

        benchmark(run)

    def test_udf_rowindex(self, benchmark, graph):
        op = IU.IndexUnaryOp.new(lambda v, i, j, s: i + s,
                                 T.INT64, T.FP64, T.INT64)
        out = Matrix.new(T.INT64, graph.nrows, graph.ncols)

        def run():
            apply(out, None, None, op, graph, 0)
            out.wait()

        benchmark(run)


def test_table4_report(benchmark, capsys, graph):
    """Table IV rows: each predefined op vs its user-defined equivalent."""
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)

    def timed(fn, reps=3):
        t0 = time.perf_counter()
        for _ in range(reps):
            fn()
        return (time.perf_counter() - t0) / reps * 1e3

    rows = []
    for name, (op, fn, s_type) in UDF_EQUIVALENTS.items():
        udf = IU.IndexUnaryOp.new(fn, T.BOOL, T.FP64, s_type)
        t_pre = timed(lambda o=op: _run_select(graph, o, 0))
        t_udf = timed(lambda o=udf: _run_select(graph, o, 0))
        rows.append([f"GrB_{name}", f"{t_pre:8.2f}", f"{t_udf:8.2f}",
                     f"{t_udf / t_pre:6.1f}x"])
    with capsys.disabled():
        print_table(
            f"Table IV: predefined vs user-defined index-unary select "
            f"(RMAT scale {SCALE}, nnz={graph.nvals()}; ms)",
            ["operator", "predefined", "user-defined", "speedup"], rows,
        )

"""S2 — the durability plane: warm restart vs cold rebuild.

A serving replica dies; how fast is the replacement *useful*?  Two
paths to the same resident graph + answered query set:

* **cold rebuild** (``blocking_ms``) — re-derive the graph from its
  edge list (``to_matrix``: dedup, symmetrize, commit) and answer the
  first query on a stone-cold service;
* **warm restart** (``nb_warm_ms``) — ``GraphService.restore`` from a
  checkpoint directory (§VII blob deserialize + journal replay, warm
  algo-memo blocks and kernel-calibration rates rehydrated), then the
  same first query.

The timed quantity is *time to first answer* — readiness is what a
replacement replica is for; steady-state query latency is identical by
construction and only adds noise.  A full mixed query set then runs
untimed on both services and must agree exactly (parity), with the
proof counters riding along: ``restored_graphs`` > 0 shows restore
actually ran, ``algo_memo_hits`` during the warm parity run shows the
rehydrated blocks were used rather than recomputed.

A second (informational, ungated) section pushes the same load through
the asyncio front door with a generous per-query deadline and reports
the deadline-miss rate — the robustness-plane SLO under batched load.

Results land in ``BENCH_recovery.json``; ``tools/bench_gate.py`` gates
``recovery.nb_warm_ms / blocking_ms`` against the committed baseline
in ``benchmarks/BENCH_recovery.json``.
"""

import asyncio
import json
import shutil
import tempfile
import time
from pathlib import Path

import pytest

from benchmarks.conftest import print_table
from repro.core import types as T
from repro.engine.stats import STATS
from repro.generators import rmat, to_matrix
from repro.serve import GraphServer, GraphService, Query

import numpy as np

SCALE = 13
QUERIES = 6
REPS = 2
DEADLINE_MS = 2_000.0

_RESULTS: dict = {}


@pytest.fixture(scope="module", autouse=True)
def emit_results():
    yield
    if _RESULTS:
        Path("BENCH_recovery.json").write_text(
            json.dumps(_RESULTS, indent=2, sort_keys=True) + "\n"
        )


def _edge_list():
    n, rows, cols, _ = rmat(SCALE, 8, seed=7)
    return n, rows, cols


def _build_graph(n, rows, cols):
    return to_matrix(n, rows, cols, np.ones(len(rows)), T.FP64,
                     make_undirected=True, no_self_loops=True)


def _plan(i: int, n: int) -> Query:
    if i % 6 == 5:
        return Query.make("pagerank", "g", tol=1e-6)
    return Query.make("bfs", "g", (i * 37) % n)


def _answer_all(service, n) -> list:
    s = service.open_session("bench", nthreads=2, memo_capacity=64)
    out = []
    for i in range(QUERIES):
        r = s.run(_plan(i, n))
        out.append({k: round(float(v), 9) for k, v in r.value["ranks"].items()}
                   if r.query.kind == "pagerank" else r.value)
    return out


def _first_answer(service, n):
    s = service.open_session("probe", nthreads=2)
    return s.run(Query.make("bfs", "g", 0)).value


def _cold_run(n, rows, cols):
    """Replica replacement the hard way: rebuild from the edge list."""
    t0 = time.perf_counter()
    service = GraphService(name="cold")
    service.register_graph("g", _build_graph(n, rows, cols))
    first = _first_answer(service, n)
    wall = (time.perf_counter() - t0) * 1e3
    values = _answer_all(service, n)  # untimed: parity material
    service.close()
    return wall, first, values


def _warm_run(ckpt: str, n):
    """Replica replacement via the durability plane."""
    before = STATS.snapshot()
    t0 = time.perf_counter()
    service = GraphService.restore(ckpt)
    first = _first_answer(service, n)
    wall = (time.perf_counter() - t0) * 1e3
    values = _answer_all(service, n)  # untimed: parity material
    after = STATS.snapshot()
    counters = {
        k: after[k] - before[k]
        for k in ("restored_graphs", "restored_blocks", "algo_memo_hits")
    }
    service.close()
    return wall, first, values, counters


def _deadline_load(ckpt: str, n):
    """The same mix through the front door under a per-query deadline."""
    service = GraphService.restore(ckpt)
    sessions = [service.open_session(f"t{i}", nthreads=2, memo_capacity=32)
                for i in range(3)]

    async def load():
        async with GraphServer(service, max_pending=QUERIES * 2,
                               per_tenant=QUERIES, batch_window=8,
                               deadline_ms=DEADLINE_MS) as srv:
            jobs = [srv.submit(sessions[i % 3], _plan(i, n))
                    for i in range(QUERIES)]
            return await asyncio.gather(*jobs, return_exceptions=True)

    results = asyncio.run(load())
    missed = sum(1 for r in results if isinstance(r, BaseException))
    service.close()
    return missed


@pytest.mark.benchmark(group="S2-recovery")
class TestWarmRestart:
    def test_warm_restart_vs_cold_rebuild(self):
        n, rows, cols = _edge_list()

        cold_wall, cold_first, cold_vals = None, None, None
        for _ in range(REPS):
            wall, first, vals = _cold_run(n, rows, cols)
            if cold_wall is None or wall < cold_wall:
                cold_wall, cold_first, cold_vals = wall, first, vals

        # Seed one checkpoint: a lived-in service (graphs + warm memo
        # blocks + calibration) compacted to disk.
        ckpt = tempfile.mkdtemp(prefix="bench-ckpt-")
        try:
            seed_svc = GraphService(name="seed", checkpoint_dir=ckpt)
            seed_svc.register_graph("g", _build_graph(n, rows, cols))
            _answer_all(seed_svc, n)
            seed_svc.checkpoint()
            seed_svc.close()

            warm_wall, counters = None, None
            for _ in range(REPS):
                wall, first, vals, ctr = _warm_run(ckpt, n)
                assert first == cold_first and vals == cold_vals, \
                    "restored replica diverged"
                if warm_wall is None or wall < warm_wall:
                    warm_wall, counters = wall, ctr

            missed = _deadline_load(ckpt, n)
        finally:
            shutil.rmtree(ckpt, ignore_errors=True)

        assert counters["restored_graphs"] >= 1, "restore never ran"
        assert counters["algo_memo_hits"] >= 1, \
            "rehydrated warm blocks were never hit"

        _RESULTS["recovery"] = {
            "blocking_ms": cold_wall,
            "nb_warm_ms": warm_wall,
            "restored_graphs": counters["restored_graphs"],
            "restored_blocks": counters["restored_blocks"],
            "algo_memo_hits": counters["algo_memo_hits"],
            "queries": QUERIES,
        }
        _RESULTS["recovery_deadlines"] = {
            "deadline_ms": DEADLINE_MS,
            "queries": QUERIES,
            "missed": missed,
            "miss_rate": missed / QUERIES,
        }
        print_table(
            f"S2  replica time-to-first-answer, {QUERIES}-query parity "
            f"(rmat scale {SCALE})",
            ["variant", "wall ms", "proof"],
            [["cold rebuild", f"{cold_wall:.1f}", ""],
             ["warm restart", f"{warm_wall:.1f}",
              f"graphs={counters['restored_graphs']} "
              f"blocks={counters['restored_blocks']} "
              f"memo_hits={counters['algo_memo_hits']}"],
             [f"deadline {DEADLINE_MS:.0f} ms", "",
              f"missed {missed}/{QUERIES}"]],
        )
        # The durability contract: restoring state must beat
        # recomputing it, and the generous deadline must be met.
        assert warm_wall < cold_wall, "warm restart lost to cold rebuild"
        assert missed == 0, "deadline misses under a generous budget"

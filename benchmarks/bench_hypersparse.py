"""S3 — the hypersparse tier: DCSR mxv at 2^30 rows + small-op batching.

Two workloads, both written to ``BENCH_hypersparse.json`` and gated by
``tools/bench_gate.py`` against the committed baseline:

* ``hypersparse_mxv`` — time-to-first-answer on a 1000-edge graph at
  2^30 vertices: build the graph, commit it, run one ``mxv``.  The
  DCSR path (``nb_dcsr_ms``) runs at the full dimension — CSR
  *cannot* represent it at all (the dense row pointer alone would be
  8 GiB) — so the forced-CSR handicap (``blocking_ms``) runs an
  equal-size edge set at 2^24 rows, a 64× smaller dimension.
  Even spotted that factor, CSR pays O(nrows) on the dense pointer
  (allocation + cumsum at assembly) while DCSR pays O(nnz log nnz);
  the acceptance bar is **≥ 10×** in DCSR's favour.  Proof counters:
  ``format_dcsr_commits`` > 0 (the policy engaged) and
  ``format_densify_fallbacks`` == 0 during the DCSR run (nothing on
  the hot path ever materialized an O(nrows) pointer).

* ``op_batching`` — many tiny independent ``mxv`` queries over one
  committed matrix, the serving-layer shape.  One-at-a-time with the
  knob off (``blocking_ms``) vs coalesced by the scheduler into
  blocked ``mxv_multi`` kernels (``nb_batched_ms``), with value parity
  asserted.  Proof counter: ``engine_batched_ops`` ≥ the query count.

Run from the repository root:

    PYTHONPATH=src python -m pytest -q benchmarks/bench_hypersparse.py
    python tools/bench_gate.py
"""

import json
import time
from pathlib import Path

import numpy as np
import pytest

from benchmarks.conftest import print_table
from repro.core import types as T
from repro.core.matrix import Matrix
from repro.core.semiring import PLUS_TIMES_SEMIRING
from repro.core.vector import Vector
from repro.engine.stats import STATS
from repro.internals import config
from repro.internals.containers import DcsrData
from repro.ops.mxm import mxv

HUGE_ROWS = 1 << 30     # the DCSR dimension (no CSR form exists)
CSR_ROWS = 1 << 24      # the forced-CSR handicap dimension (64x smaller)
NNZ = 1_000
SPEEDUP_FLOOR = 10.0    # acceptance: DCSR at 2^30 vs CSR at 2^24
N_QUERIES = 48
REPS = 3

_RESULTS: dict = {}


@pytest.fixture(scope="module", autouse=True)
def emit_results():
    yield
    if _RESULTS:
        Path("BENCH_hypersparse.json").write_text(
            json.dumps(_RESULTS, indent=2, sort_keys=True) + "\n"
        )


def _edges(nrows: int):
    rng = np.random.default_rng(1234)
    rows = np.unique(rng.integers(0, nrows, NNZ, dtype=np.int64))
    cols = rng.integers(0, nrows, len(rows), dtype=np.int64)
    vals = rng.random(len(rows)) + 0.5
    return rows, cols, vals


def _answer_once(nrows: int) -> tuple[float, Matrix, int]:
    """Edge list -> committed graph -> first mxv answer, one wall time.

    Build/commit is inside the timed region on purpose: that is where
    CSR pays its O(nrows) dense-pointer cost (allocation + cumsum),
    which is exactly the cost the hypersparse tier removes.
    """
    rows, cols, vals = _edges(nrows)
    seeds = np.unique(cols)[:200]
    ones = np.ones(len(seeds))
    t0 = time.perf_counter()
    m = Matrix.new(T.FP64, nrows, nrows)
    m.build(rows, cols, vals)
    u = Vector.new(T.FP64, nrows)
    u.build(seeds, ones)
    w = Vector.new(T.FP64, nrows)
    mxv(w, None, None, PLUS_TIMES_SEMIRING[T.FP64], m, u)
    n = w.nvals()   # forces the sequence
    wall = (time.perf_counter() - t0) * 1e3
    return wall, m, n


def _time_to_answer(nrows: int, reps: int = REPS) -> tuple[float, Matrix, int]:
    best = m = n = None
    for _ in range(reps):
        wall, m, n = _answer_once(nrows)
        if best is None or wall < best:
            best = wall
    return best, m, n


@pytest.mark.benchmark(group="S3-hypersparse")
class TestHypersparseMxv:
    def test_dcsr_vs_forced_csr(self):
        with config.option("ENGINE_MEMO", 0):   # time real work each rep
            # -- forced-CSR handicap at the largest feasible dimension --
            with config.option("FORMAT_AUTO", 0):
                csr_ms, _, csr_n = _time_to_answer(CSR_ROWS)

            # -- native DCSR at the full dimension ----------------------
            before = STATS.snapshot()
            dcsr_ms, m_d, dcsr_n = _time_to_answer(HUGE_ROWS)
            after = STATS.snapshot()

        assert csr_n > 0 and dcsr_n > 0, "a run produced an empty answer"
        carrier = m_d._capture()
        assert isinstance(carrier, DcsrData), "policy never engaged"
        # O(nnz) allocation proof: every stored array scales with the
        # entry count, none with the 2^30 row count.
        assert len(carrier.indptr) == len(carrier.row_ids) + 1 <= NNZ + 1

        dcsr_commits = after.get("format_dcsr_commits", 0) - \
            before.get("format_dcsr_commits", 0)
        densifies = after.get("format_densify_fallbacks", 0) - \
            before.get("format_densify_fallbacks", 0)
        assert dcsr_commits >= 1, "no commit ever landed on DCSR"
        assert densifies == 0, \
            "the hypersparse hot path paid an O(nrows) densify"

        speedup = csr_ms / dcsr_ms if dcsr_ms > 0 else float("inf")
        _RESULTS["hypersparse_mxv"] = {
            "blocking_ms": csr_ms,
            "nb_dcsr_ms": dcsr_ms,
            "csr_rows": CSR_ROWS,
            "dcsr_rows": HUGE_ROWS,
            "nnz": NNZ,
            "speedup": round(speedup, 2),
            "format_dcsr_commits": dcsr_commits,
            "format_densify_fallbacks": densifies,
        }
        print_table(
            f"S3  mxv on a {NNZ}-edge graph",
            ["carrier", "rows", "wall ms", "proof"],
            [["forced CSR", f"2^{CSR_ROWS.bit_length() - 1}",
              f"{csr_ms:.2f}", ""],
             ["DCSR", f"2^{HUGE_ROWS.bit_length() - 1}",
              f"{dcsr_ms:.2f}",
              f"commits={dcsr_commits} densifies={densifies} "
              f"speedup={speedup:.1f}x"]],
        )
        assert speedup >= SPEEDUP_FLOOR, (
            f"DCSR mxv at 2^30 rows is only {speedup:.1f}x the forced-CSR "
            f"run at 2^24 rows (need >= {SPEEDUP_FLOOR:.0f}x)"
        )


@pytest.mark.benchmark(group="S3-hypersparse")
class TestOpBatching:
    def _run_queries(self, m: Matrix, seeds: list[Vector]) -> tuple[float, list]:
        t0 = time.perf_counter()
        outs = []
        for u in seeds:
            w = Vector.new(T.FP64, m.nrows)
            mxv(w, None, None, PLUS_TIMES_SEMIRING[T.FP64], m, u)
            outs.append(w)
        values = [w.to_dict() for w in outs]   # forces everything
        return (time.perf_counter() - t0) * 1e3, values

    def test_batched_vs_one_at_a_time(self):
        rng = np.random.default_rng(99)
        n = 4096
        rows = rng.integers(0, n, 20_000, dtype=np.int64)
        cols = rng.integers(0, n, 20_000, dtype=np.int64)
        keep = np.unique(rows * n + cols)
        rows, cols = keep // n, keep % n
        m = Matrix.new(T.FP64, n, n)
        m.build(rows, cols, rng.random(len(rows)))
        m.wait()
        seeds = []
        for i in range(N_QUERIES):
            u = Vector.new(T.FP64, n)
            for j in rng.integers(0, n, 4):
                u.set_element(1.0, int(j))
            u.wait()
            seeds.append(u)

        serial_ms = batched_ms = None
        want = got = None
        # Result memoization would serve every repeat query from cache
        # (and memoized nodes are ineligible for batching), so switch
        # it off: each rep must run — and time — real kernels.
        with config.option("ENGINE_MEMO", 0):
            for _ in range(REPS):
                with config.option("ENGINE_OP_BATCH", 0):
                    wall, want = self._run_queries(m, seeds)
                if serial_ms is None or wall < serial_ms:
                    serial_ms = wall
                before = STATS.snapshot()
                wall, got = self._run_queries(m, seeds)
                batched = STATS.snapshot().get("engine_batched_ops", 0) - \
                    before.get("engine_batched_ops", 0)
                if batched_ms is None or wall < batched_ms:
                    batched_ms = wall
                assert got == want, "batched results diverged from serial"
        assert batched >= 2, "the scheduler never coalesced a batch"

        _RESULTS["op_batching"] = {
            "blocking_ms": serial_ms,
            "nb_batched_ms": batched_ms,
            "queries": N_QUERIES,
            "engine_batched_ops": batched,
        }
        print_table(
            f"S3  {N_QUERIES} independent mxv queries over one graph",
            ["path", "wall ms", "proof"],
            [["one-at-a-time", f"{serial_ms:.1f}", ""],
             ["coalesced", f"{batched_ms:.1f}",
              f"batched_ops={batched} "
              f"({serial_ms / batched_ms:.2f}x)"]],
        )
        assert batched_ms < serial_ms * 1.05, \
            "coalescing lost to one-at-a-time dispatch"

"""D1 — the distributed future (§IV / Conclusion), simulated.

Series over rank counts p ∈ {1, 2, 4, 8}: distributed mxv and BFS on a
row-block layout, reporting wall clock *and* the hardware-independent
metric — communication volume.  Expected shapes: per-rank local work
drops ~1/p, allgather volume grows with p (the 1-D SpMV trade), and
results stay bit-identical to single-node execution.
"""

import time

import numpy as np
import pytest

from benchmarks.conftest import print_table
from repro.core import types as T
from repro.core.context import default_context
from repro.core.semiring import PLUS_TIMES_SEMIRING
from repro.distributed import (
    Cluster,
    DistMatrix,
    DistVector,
    RankHome,
    dist_bfs_levels,
    dist_mxv,
)
from repro.generators import rmat

SCALE = 11
RANKS = [1, 2, 4, 8]


@pytest.fixture(scope="module")
def triples():
    n, rows, cols, vals = rmat(SCALE, 8, seed=33)
    keep = rows != cols
    return n, rows[keep], cols[keep], vals[keep]


def _dup():
    from repro.core.binaryop import MAX
    return MAX[T.FP64]


def run_dist_mxv(triples, p: int):
    n, rows, cols, vals = triples
    x = np.ones(n)
    cluster = Cluster(p)
    top = default_context()

    def prog(comm):
        home = RankHome.create(comm.rank, top)
        a = DistMatrix.from_triples(home, n, n, comm.size, T.FP64,
                                    rows, cols, vals, _dup())
        u = DistVector.from_global_dense(home, x, comm.size, T.FP64)
        w = dist_mxv(comm, a, u, PLUS_TIMES_SEMIRING[T.FP64])
        return w.local.nvals()

    results = cluster.run(prog)
    return sum(results), cluster.stats.snapshot()


def run_dist_bfs(triples, p: int):
    n, rows, cols, _ = triples
    cluster = Cluster(p)
    top = default_context()
    from repro.core.binaryop import LOR

    def prog(comm):
        home = RankHome.create(comm.rank, top)
        a = DistMatrix.from_triples(home, n, n, comm.size, T.BOOL,
                                    rows, cols, np.ones(len(rows), bool),
                                    LOR[T.BOOL])
        lv = dist_bfs_levels(comm, a, 0)
        return lv.local.nvals()

    results = cluster.run(prog)
    return sum(results), cluster.stats.snapshot()


@pytest.mark.benchmark(group="D1-mxv")
class TestDistMxv:
    @pytest.mark.parametrize("p", RANKS, ids=lambda p: f"p{p}")
    def test_dist_mxv(self, benchmark, triples, p):
        benchmark(run_dist_mxv, triples, p)


@pytest.mark.benchmark(group="D1-bfs")
class TestDistBfs:
    @pytest.mark.parametrize("p", [1, 4], ids=lambda p: f"p{p}")
    def test_dist_bfs(self, benchmark, triples, p):
        benchmark(run_dist_bfs, triples, p)


def test_distributed_report(benchmark, capsys, triples):
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    rows_out = []
    base_nvals = None
    for p in RANKS:
        t0 = time.perf_counter()
        nvals, stats = run_dist_mxv(triples, p)
        wall = (time.perf_counter() - t0) * 1e3
        if base_nvals is None:
            base_nvals = nvals
        assert nvals == base_nvals, "distributed result diverged"
        rows_out.append([
            f"p={p}", f"{wall:8.1f} ms", f"{stats['bytes'] / 1e6:8.3f} MB",
            f"{stats['collectives']:4d}",
        ])
    with capsys.disabled():
        print_table(
            f"Distributed mxv (simulated ranks, RMAT scale {SCALE}; "
            f"result nvals={base_nvals} at every p)",
            ["ranks", "wall clock", "comm volume", "collectives"],
            rows_out,
        )

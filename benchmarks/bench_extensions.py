"""E1 — the hypersparse extension: tall-matrix operations stay O(nnz).

The spec-core CSR carrier caps row counts (dense row pointer); the
hypersparse extension stores only non-empty rows.  These benches show
the operations a 2^58-row matrix supports run at the cost of its *nnz*,
not its nrows — the property the format exists for.
"""

import numpy as np
import pytest

from benchmarks.conftest import print_table
from repro.core import types as T
from repro.core.indexunaryop import ROWGT
from repro.core.monoid import PLUS_MONOID
from repro.core.semiring import PLUS_TIMES_SEMIRING
from repro.core.unaryop import AINV
from repro.core.vector import Vector
from repro.extensions import HyperMatrix

TALL = 1 << 58
NNZ = 20_000
NCOLS = 64


@pytest.fixture(scope="module")
def tall():
    rng = np.random.default_rng(7)
    rows = np.unique(rng.integers(0, TALL, NNZ * 2))[:NNZ]
    cols = rng.integers(0, NCOLS, len(rows))
    vals = rng.random(len(rows))
    return HyperMatrix.from_triples(T.FP64, TALL, NCOLS, rows, cols, vals)


@pytest.fixture(scope="module")
def dense_u():
    u = Vector.new(T.FP64, NCOLS)
    u.build(np.arange(NCOLS), np.ones(NCOLS))
    u.wait()
    return u


@pytest.mark.benchmark(group="E1-hypersparse")
class TestHypersparseOps:
    def test_build(self, benchmark):
        rng = np.random.default_rng(1)
        rows = np.unique(rng.integers(0, TALL, NNZ))
        cols = rng.integers(0, NCOLS, len(rows))
        vals = rng.random(len(rows))
        benchmark(HyperMatrix.from_triples, T.FP64, TALL, NCOLS,
                  rows, cols, vals)

    def test_mxv(self, benchmark, tall, dense_u):
        benchmark(tall.mxv, dense_u, PLUS_TIMES_SEMIRING[T.FP64])

    def test_select_rowgt(self, benchmark, tall):
        benchmark(tall.select, ROWGT, TALL // 2)

    def test_apply(self, benchmark, tall):
        benchmark(tall.apply, AINV[T.FP64])

    def test_reduce_rows(self, benchmark, tall):
        benchmark(tall.reduce_rows, PLUS_MONOID[T.FP64])


def test_extensions_report(benchmark, capsys, tall, dense_u):
    import time
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)

    def timed(fn, reps=3):
        best = float("inf")
        for _ in range(reps):
            t0 = time.perf_counter()
            fn()
            best = min(best, time.perf_counter() - t0)
        return best * 1e3

    rows = [
        ["mxv", f"{timed(lambda: tall.mxv(dense_u, PLUS_TIMES_SEMIRING[T.FP64])):8.2f}"],
        ["select(ROWGT, 2^57)", f"{timed(lambda: tall.select(ROWGT, TALL // 2)):8.2f}"],
        ["apply(AINV)", f"{timed(lambda: tall.apply(AINV[T.FP64])):8.2f}"],
        ["reduce rows", f"{timed(lambda: tall.reduce_rows(PLUS_MONOID[T.FP64])):8.2f}"],
    ]
    with capsys.disabled():
        print_table(
            f"Hypersparse extension: 2^58-row matrix, {tall.nvals()} nnz "
            f"(ms — O(nnz), independent of nrows)",
            ["operation", "ms"], rows,
        )

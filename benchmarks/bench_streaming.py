"""S4 — streaming delta ingest + incremental recomputation.

Two workloads, both written to ``BENCH_streaming.json`` and gated by
``tools/bench_gate.py`` against the committed baseline:

* ``streaming_pagerank`` — a small edge delta lands on a scale-12 RMAT
  graph that already has a converged pagerank.  Cold (``blocking_ms``,
  ``ENGINE_DELTA=0``): the write drops every memo block and the next
  pagerank rebuilds its pattern/degree blocks and iterates from the
  uniform vector.  Warm (``nb_warm_ms``): the delta tier patches the
  blocks from the write set and the iteration restarts from the prior
  fixpoint, converging in a handful of sweeps.  The fixpoint is unique
  for ``0 < damping < 1`` so both answers agree within ``tol``; the
  acceptance bar is **≥ 3×** in the warm path's favour.  Proof
  counter: ``memo_delta_patches`` (the patch tier actually fired).

* ``streaming_ingest`` — sustained edge ingest into a served graph
  with warm pagerank queries interleaved.  One-at-a-time
  ``mutate_graph`` per edge (``blocking_ms``) pays a full carrier
  merge, a publish, and a generation bump per edge; buffered
  ``ingest_edges`` (``nb_batched_ms``) commits the same edge stream in
  query-boundary flushes — one carrier build and one journal record
  per batch, with a flush before each query so both paths answer over
  identical graph states (read-your-writes).  Final graphs are
  asserted identical.  Proof counter: ``ingest_batches``.  The result
  rows also report sustained edges/sec for both paths.

Run from the repository root:

    PYTHONPATH=src python -m pytest -q benchmarks/bench_streaming.py
    python tools/bench_gate.py
"""

import json
import time
from pathlib import Path

import numpy as np
import pytest

from benchmarks.conftest import print_table, rmat_graph
from repro.algorithms import pagerank
from repro.core import types as T
from repro.core.matrix import Matrix
from repro.engine.stats import STATS
from repro.internals import config

SCALE = 13              # 8192 vertices, ~edge_factor*8192 edges
DELTA_EDGES = 8         # the streamed write: tiny vs the graph
TOL = 3e-4
WARM_SPEEDUP_FLOOR = 3.0
N_STREAM = 384          # edges ingested by the sustained-ingest workload
QUERY_EVERY = 48        # warm query cadence during ingest
INGEST_N = 1024         # served graph: 2^10 vertices
REPS = 3

_RESULTS: dict = {}


@pytest.fixture(scope="module", autouse=True)
def emit_results():
    yield
    if _RESULTS:
        Path("BENCH_streaming.json").write_text(
            json.dumps(_RESULTS, indent=2, sort_keys=True) + "\n"
        )


def _delta(n: int, k: int, seed: int):
    rng = np.random.default_rng(seed)
    return (rng.integers(0, n, k, dtype=np.int64),
            rng.integers(0, n, k, dtype=np.int64),
            rng.random(k) + 0.5)


@pytest.mark.benchmark(group="S4-streaming")
class TestStreamingPagerank:
    def test_warm_delta_vs_cold_rebuild(self):
        base = rmat_graph(SCALE, 8, undirected=True)
        carrier = base._capture()
        n = carrier.nrows

        warm_ms = cold_ms = None
        iters_warm = iters_cold = 0
        patched = 0
        d_warm = d_cold = None
        for rep in range(REPS):
            rows, cols, vals = _delta(n, DELTA_EDGES, seed=7000 + rep)

            # -- warm: converged ranks already stored, delta patches --
            m = Matrix.from_data(carrier, base.context)
            pagerank(m, tol=TOL)              # prime (not timed)
            before = STATS.snapshot()
            m.update_batch(rows, cols, vals)
            t0 = time.perf_counter()
            r_w, iters_warm = pagerank(m, tol=TOL)
            wall = (time.perf_counter() - t0) * 1e3
            patched = max(
                patched,
                STATS.snapshot().get("memo_delta_patches", 0)
                - before.get("memo_delta_patches", 0),
            )
            if warm_ms is None or wall < warm_ms:
                warm_ms, d_warm = wall, r_w.to_dict()
            post = m._capture()

            # -- cold: same post-delta graph, tier off, fresh uid --
            with config.option("ENGINE_DELTA", 0):
                mc = Matrix.from_data(post, base.context)
                t0 = time.perf_counter()
                r_c, iters_cold = pagerank(mc, tol=TOL)
                wall = (time.perf_counter() - t0) * 1e3
            if cold_ms is None or wall < cold_ms:
                cold_ms, d_cold = wall, r_c.to_dict()

        assert patched >= 1, "the delta patch tier never fired"
        assert set(d_warm) == set(d_cold)
        worst = max(abs(d_warm[k] - d_cold[k]) for k in d_warm)
        assert worst < 10 * TOL, f"warm/cold ranks diverged by {worst}"

        speedup = cold_ms / warm_ms if warm_ms > 0 else float("inf")
        _RESULTS["streaming_pagerank"] = {
            "blocking_ms": cold_ms,
            "nb_warm_ms": warm_ms,
            "vertices": n,
            "delta_edges": DELTA_EDGES,
            "iters_cold": iters_cold,
            "iters_warm": iters_warm,
            "speedup": round(speedup, 2),
            "memo_delta_patches": patched,
        }
        print_table(
            f"S4  pagerank after an {DELTA_EDGES}-edge delta "
            f"(scale-{SCALE} RMAT, tol={TOL:g})",
            ["path", "wall ms", "iters", "proof"],
            [["cold rebuild", f"{cold_ms:.2f}", iters_cold, ""],
             ["warm delta", f"{warm_ms:.2f}", iters_warm,
              f"patches={patched} speedup={speedup:.1f}x"]],
        )
        assert speedup >= WARM_SPEEDUP_FLOOR, (
            f"warm-delta pagerank is only {speedup:.1f}x the cold rebuild "
            f"(need >= {WARM_SPEEDUP_FLOOR:.0f}x)"
        )


@pytest.mark.benchmark(group="S4-streaming")
class TestStreamingIngest:
    def _base_edges(self):
        rng = np.random.default_rng(42)
        rows = rng.integers(0, INGEST_N, 6000, dtype=np.int64)
        cols = rng.integers(0, INGEST_N, 6000, dtype=np.int64)
        keep = rows != cols
        return rows[keep], cols[keep], np.ones(int(keep.sum()))

    def _service(self):
        from repro.core.context import Mode
        from repro.serve.service import GraphService

        svc = GraphService(Mode.NONBLOCKING, name="bench-stream")
        rows, cols, vals = self._base_edges()
        from repro.core.binaryop import SECOND

        m = Matrix.new(T.FP64, INGEST_N, INGEST_N, svc.root)
        m.build(rows, cols, vals, dup=SECOND[T.FP64])
        svc.register_graph("g", m)
        return svc

    def _stream(self, svc, batched: bool) -> float:
        """Ingest N_STREAM edges with warm queries interleaved; wall ms.

        The batched path flushes before each query — read-your-writes
        at query boundaries — so both paths answer over the *same*
        graph state at the same points in the stream, and the batched
        path's queries restart warm through the delta-patched view
        exactly like the per-edge path's do.
        """
        rows, cols, vals = _delta(INGEST_N, N_STREAM, seed=4242)
        sess = svc.open_session("bench-tenant")
        t0 = time.perf_counter()
        for i in range(N_STREAM):
            if batched:
                svc.ingest_edges("g", [rows[i]], [cols[i]], [vals[i]])
            else:
                svc.mutate_graph("g", [rows[i]], [cols[i]], [vals[i]])
            if (i + 1) % QUERY_EVERY == 0:
                if batched:
                    svc.flush_ingest()
                pagerank(sess.view("g"), tol=TOL)
        svc.flush_ingest()
        wall = (time.perf_counter() - t0) * 1e3
        sess.close()
        return wall

    def test_batched_ingest_vs_per_edge_mutate(self):
        serial_ms = batched_ms = None
        batches = 0
        final_serial = final_batched = None
        for _ in range(REPS):
            svc = self._service()
            wall = self._stream(svc, batched=False)
            if serial_ms is None or wall < serial_ms:
                serial_ms = wall
            final_serial = svc._graphs["g"]
            svc.close()

            svc = self._service()
            before = STATS.snapshot()
            with config.option("INGEST_BATCH", 128):
                wall = self._stream(svc, batched=True)
            batches = max(
                batches,
                STATS.snapshot().get("ingest_batches", 0)
                - before.get("ingest_batches", 0),
            )
            if batched_ms is None or wall < batched_ms:
                batched_ms = wall
            final_batched = svc._graphs["g"]
            svc.close()

        assert batches >= 1, "buffered ingest never committed a batch"
        np.testing.assert_array_equal(
            final_serial.row_indices(), final_batched.row_indices())
        np.testing.assert_array_equal(
            final_serial.col_indices, final_batched.col_indices)
        np.testing.assert_array_equal(
            final_serial.values, final_batched.values)

        eps_serial = N_STREAM / (serial_ms / 1e3)
        eps_batched = N_STREAM / (batched_ms / 1e3)
        _RESULTS["streaming_ingest"] = {
            "blocking_ms": serial_ms,
            "nb_batched_ms": batched_ms,
            "edges": N_STREAM,
            "queries": N_STREAM // QUERY_EVERY,
            "edges_per_sec_serial": round(eps_serial),
            "edges_per_sec_batched": round(eps_batched),
            "ingest_batches": batches,
        }
        print_table(
            f"S4  {N_STREAM} streamed edges + "
            f"{N_STREAM // QUERY_EVERY} warm queries",
            ["path", "wall ms", "edges/s", "proof"],
            [["per-edge mutate", f"{serial_ms:.1f}", f"{eps_serial:,.0f}", ""],
             ["buffered ingest", f"{batched_ms:.1f}", f"{eps_batched:,.0f}",
              f"batches={batches} "
              f"({serial_ms / batched_ms:.2f}x)"]],
        )
        assert batched_ms < serial_ms, \
            "buffered ingest lost to per-edge mutation"

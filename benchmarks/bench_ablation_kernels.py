"""AB1 — ablations of the kernel design choices DESIGN.md calls out.

* masked-SpGEMM push-down on vs off (the reason ``C⟨L⟩ = L·Lᵀ`` wins);
* FIRST/SECOND/ONEB multiply shortcuts on vs off;
* ESC SpGEMM row-partitioning across context thread counts.

Expected shapes: push-down wins and its advantage grows with mask
selectivity; shortcuts shave the gather of the ignored operand; thread
scaling is modest-but-real (NumPy releases the GIL in kernels).
"""

import time

import pytest

from benchmarks.conftest import print_table, rmat_graph
from repro.core import types as T
from repro.core.indexunaryop import TRIL
from repro.core.matrix import Matrix
from repro.core.semiring import (
    MIN_FIRST_SEMIRING,
    PLUS_SECOND_SEMIRING,
    PLUS_TIMES_SEMIRING,
)
from repro.internals import config
from repro.ops.mxm import mxm
from repro.ops.select import select

SCALE = 10


@pytest.fixture(scope="module")
def tri_inputs():
    """Triangle-counting shaped workload: L and the structural mask L."""
    g = rmat_graph(SCALE, undirected=True)
    low = Matrix.new(T.FP64, g.nrows, g.ncols)
    select(low, None, None, TRIL, g, -1)
    low.wait()
    return low


def _masked_mxm(low, pushdown: bool):
    from repro.core.descriptor import DESC_S
    with config.option("MASK_PUSHDOWN", pushdown):
        c = Matrix.new(T.FP64, low.nrows, low.ncols)
        mxm(c, low, None, PLUS_TIMES_SEMIRING[T.FP64], low, low, desc=DESC_S)
        c.wait()
    return c


def _plain_mxm(a, semiring, shortcuts: bool):
    with config.option("MULT_SHORTCUTS", shortcuts):
        c = Matrix.new(T.FP64, a.nrows, a.ncols)
        mxm(c, None, None, semiring, a, a)
        c.wait()
    return c


@pytest.mark.benchmark(group="AB1-mask-pushdown")
class TestMaskPushdown:
    def test_pushdown_on(self, benchmark, tri_inputs):
        benchmark(_masked_mxm, tri_inputs, True)

    def test_pushdown_off(self, benchmark, tri_inputs):
        benchmark(_masked_mxm, tri_inputs, False)


def _bfs(pushdown: bool):
    from repro.algorithms import bfs_levels
    g = rmat_graph(12, 16, T.BOOL, undirected=True)
    import numpy as np
    src = int(np.bincount(g.extract_tuples()[0], minlength=g.nrows).argmax())
    with config.option("MASK_PUSHDOWN", pushdown):
        return bfs_levels(g, src).nvals()


@pytest.mark.benchmark(group="AB1-bfs-complement-pushdown")
class TestComplementPushdown:
    """BFS's DESC_RSC vxm: the visited set as a complemented mask."""

    def test_bfs_pushdown_on(self, benchmark):
        benchmark(_bfs, True)

    def test_bfs_pushdown_off(self, benchmark):
        benchmark(_bfs, False)


@pytest.mark.benchmark(group="AB1-mult-shortcuts")
class TestMultShortcuts:
    @pytest.mark.parametrize(
        "name,sr",
        [("min_first", MIN_FIRST_SEMIRING), ("plus_second", PLUS_SECOND_SEMIRING)],
        ids=["min_first", "plus_second"],
    )
    def test_shortcut_on(self, benchmark, name, sr):
        benchmark(_plain_mxm, rmat_graph(SCALE), sr[T.FP64], True)

    @pytest.mark.parametrize(
        "name,sr",
        [("min_first", MIN_FIRST_SEMIRING), ("plus_second", PLUS_SECOND_SEMIRING)],
        ids=["min_first", "plus_second"],
    )
    def test_shortcut_off(self, benchmark, name, sr):
        benchmark(_plain_mxm, rmat_graph(SCALE), sr[T.FP64], False)


def test_ablation_report(benchmark, capsys, tri_inputs):
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)

    def timed(fn, reps=3):
        best = float("inf")
        for _ in range(reps):
            t0 = time.perf_counter()
            fn()
            best = min(best, time.perf_counter() - t0)
        return best * 1e3

    on = timed(lambda: _masked_mxm(tri_inputs, True))
    off = timed(lambda: _masked_mxm(tri_inputs, False))
    rows = [["masked mxm (tri-count shape)", f"{on:8.2f}", f"{off:8.2f}",
             f"{off / on:5.2f}x"]]
    g = rmat_graph(SCALE)
    for label, sr in (("min.first mxm", MIN_FIRST_SEMIRING[T.FP64]),
                      ("plus.second mxm", PLUS_SECOND_SEMIRING[T.FP64])):
        s_on = timed(lambda: _plain_mxm(g, sr, True))
        s_off = timed(lambda: _plain_mxm(g, sr, False))
        rows.append([label, f"{s_on:8.2f}", f"{s_off:8.2f}",
                     f"{s_off / s_on:5.2f}x"])
    b_on = timed(lambda: _bfs(True))
    b_off = timed(lambda: _bfs(False))
    rows.append(["BFS (complement push-down)", f"{b_on:8.2f}",
                 f"{b_off:8.2f}", f"{b_off / b_on:5.2f}x"])
    with capsys.disabled():
        print_table(
            f"Kernel ablations (RMAT scale {SCALE}; ms)",
            ["kernel", "optimized", "ablated", "win"], rows,
        )

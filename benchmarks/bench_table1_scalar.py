"""T1 — Table I: GrB_Scalar manipulation methods (§VI).

Regenerates Table I as a micro-benchmark: each method must be O(1) and
cheap; the GrB_Scalar extract path must not pay the NO_VALUE test
overhead the typed path pays (that is the §VI argument for scalars).
"""

import pytest

from repro.core import types as T
from repro.core.errors import NoValue
from repro.core.scalar import Scalar


@pytest.fixture
def full_scalar():
    s = Scalar.new(T.FP64)
    s.set_element(2.5)
    s.wait()
    return s


@pytest.mark.benchmark(group="T1-scalar")
class TestTableOneMethods:
    def test_scalar_new(self, benchmark):
        benchmark(Scalar.new, T.FP64)

    def test_scalar_dup(self, benchmark, full_scalar):
        benchmark(full_scalar.dup)

    def test_scalar_clear(self, benchmark, full_scalar):
        benchmark(full_scalar.clear)

    def test_scalar_nvals(self, benchmark, full_scalar):
        benchmark(full_scalar.nvals)

    def test_scalar_set_element(self, benchmark, full_scalar):
        benchmark(full_scalar.set_element, 3.25)

    def test_scalar_extract_element(self, benchmark, full_scalar):
        benchmark(full_scalar.extract_element)

    def test_scalar_extract_missing_via_typed_path(self, benchmark):
        """The 1.X-style flow: test-and-branch on NO_VALUE every call."""
        empty = Scalar.new(T.FP64)
        empty.wait()

        def typed_extract():
            try:
                return empty.extract_element()
            except NoValue:
                return None

        benchmark(typed_extract)

    def test_scalar_extract_missing_via_scalar_path(self, benchmark):
        """§VI flow: extract into a GrB_Scalar — emptiness is state, not
        a control-flow event."""
        from repro.core.vector import Vector
        v = Vector.new(T.FP64, 4)
        v.wait()
        out = Scalar.new(T.FP64)

        benchmark(v.extract_element, 2, out)


def test_table1_report(benchmark, capsys):
    """Print the Table I surface with per-method timing."""
    import time

    from benchmarks.conftest import print_table

    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    rows = []
    methods = {
        "GrB_Scalar_new": lambda: Scalar.new(T.FP64),
        "GrB_Scalar_dup": None,
        "GrB_Scalar_clear": None,
        "GrB_Scalar_nvals": None,
        "GrB_Scalar_setElement": None,
        "GrB_Scalar_extractElement": None,
    }
    s = Scalar.new(T.FP64)
    s.set_element(1.0)
    s.wait()
    methods["GrB_Scalar_dup"] = s.dup
    methods["GrB_Scalar_clear"] = lambda: s.dup().clear()
    methods["GrB_Scalar_nvals"] = s.nvals
    methods["GrB_Scalar_setElement"] = lambda: s.set_element(2.0)
    methods["GrB_Scalar_extractElement"] = s.extract_element
    reps = 20000
    for name, fn in methods.items():
        t0 = time.perf_counter()
        for _ in range(reps):
            fn()
        per_call = (time.perf_counter() - t0) / reps
        rows.append([name, f"{per_call * 1e6:8.2f} us"])
    with capsys.disabled():
        print_table("Table I: GrB_Scalar manipulation methods",
                    ["method", "time/call"], rows)

"""E3 — planner mask pushdown and CSE on BFS-shaped workloads.

PR-3's planner pushes a masked consumer's key filter down into the
producing mxm-family kernel, so off-mask products die *before* the
SpGEMM sort/compress phase, and hash-conses textually repeated
subexpressions so the duplicate publishes the shared result instead of
recomputing it.  This bench measures both on the shape that motivates
them — BFS over a scale-free graph, where the complemented "visited"
mask kills the vast majority of products by the middle levels:

* **masked mxm** — ``C = A ⊕.⊗ A`` then ``C⟨¬V, s, r⟩ = C`` in place,
  with a dense visited set V.  Three ways: blocking, nonblocking with
  ``ENGINE_PUSHDOWN`` off (write-back filtering only), and the full
  planner.  The pushed run must beat both.
* **masked vxm sweep** — an actual BFS frontier expansion loop
  (``DESC_RSC``), exercising the complemented-mask fast path inside
  the kernel (sorted-key ``searchsorted`` membership, empty-complement
  keep-all skip).
* **repeated subexpression** — ``(A ⊕.⊗ A) + (A ⊕.⊗ A)``: CSE runs the
  product once; the duplicate costs one commit.
* **repeated forcing** (PR-4) — the same ``C = A ⊕.⊗ A`` submitted and
  forced over and over: the cross-forcing result memo runs the kernel
  once and republishes the committed carrier thereafter.
* **masked eWiseMult over mxm** (PR-4) — ``C = A ⊕.⊗ A`` then
  ``C⟨¬V, s, r⟩ = C .* B`` in place: the planner pushes the mask filter
  through the compute-form eWise consumer into the SpGEMM kernel.
* **repeated algorithm** (PR-5) — ``local_clustering_coefficient``
  called over and over on the unchanged graph: the algo-block memo
  serves the masked SpGEMM (closed wedges) and the degree vector from
  the context cache, so a warm call submits only the cheap vector
  arithmetic.

The pre-existing workloads pin ``ENGINE_MEMO`` off around their
nonblocking runs: they assert exact kernel counts per repetition, which
the memo deliberately breaks (that is its whole point) — the memo has
its own workload instead.

Results land in ``BENCH_planner.json`` (CI's perf-smoke artifact;
``tools/bench_gate.py`` compares it against the committed baseline) and
the planner/kernel spans in ``BENCH_planner_trace.json``.
"""

import json
import time
from pathlib import Path

import numpy as np
import pytest

from benchmarks.conftest import print_table, rmat_graph
from repro.core import binaryop as B
from repro.core import types as T
from repro.core.context import Context, Mode, WaitMode
from repro.core.descriptor import DESC_RSC
from repro.core.matrix import Matrix
from repro.core.semiring import LOR_LAND_SEMIRING_BOOL, PLUS_TIMES_SEMIRING
from repro.core.unaryop import IDENTITY
from repro.core.vector import Vector
from repro.engine.stats import STATS
from repro.internals import config
from repro.ops.apply import apply
from repro.ops.assign import assign
from repro.ops.ewise import ewise_add, ewise_mult
from repro.ops.mxm import mxm, vxm

SCALE = 10
EDGE_FACTOR = 8
VISITED_DENSITY = 0.9   # mid-BFS: most vertices already visited
REPS = 5

_RESULTS: dict = {}


@pytest.fixture(scope="module", autouse=True)
def emit_results():
    yield
    if _RESULTS:
        Path("BENCH_planner.json").write_text(
            json.dumps(_RESULTS, indent=2, sort_keys=True) + "\n"
        )
        STATS.write_trace("BENCH_planner_trace.json")


def _ctx_graph(ctx, scale=SCALE, edge_factor=EDGE_FACTOR):
    base = rmat_graph(scale, edge_factor)
    r, c, v = base.extract_tuples()
    m = Matrix.new(T.FP64, base.nrows, base.ncols, ctx)
    m.build(r, c, v)
    m.wait(WaitMode.MATERIALIZE)
    return m


def _visited_mask(ctx, n, density=VISITED_DENSITY, seed=7):
    rng = np.random.default_rng(seed)
    d = rng.random((n, n)) < density
    r, c = np.nonzero(d)
    m = Matrix.new(T.BOOL, n, n, ctx)
    m.build(r, c, np.ones(len(r), bool))
    m.wait(WaitMode.MATERIALIZE)
    return m


def _best(fn, *args):
    best = float("inf")
    out = None
    for _ in range(REPS):
        t0 = time.perf_counter()
        out = fn(*args)
        best = min(best, time.perf_counter() - t0)
    return best, out


def _masked_product(ctx, a, visited):
    """C = A ⊕.⊗ A, then keep only the *unvisited* positions, in place —
    the planner's pushdown shape."""
    c = Matrix.new(T.FP64, a.nrows, a.ncols, ctx)
    mxm(c, None, None, PLUS_TIMES_SEMIRING[T.FP64], a, a)
    apply(c, visited, None, IDENTITY[T.FP64], c, DESC_RSC)
    c.wait(WaitMode.MATERIALIZE)
    return c


def _dup_sum(ctx, a):
    x1 = Matrix.new(T.FP64, a.nrows, a.ncols, ctx)
    mxm(x1, None, None, PLUS_TIMES_SEMIRING[T.FP64], a, a)
    x2 = Matrix.new(T.FP64, a.nrows, a.ncols, ctx)
    mxm(x2, None, None, PLUS_TIMES_SEMIRING[T.FP64], a, a)
    s = Matrix.new(T.FP64, a.nrows, a.ncols, ctx)
    ewise_add(s, None, None, B.PLUS[T.FP64], x1, x2)
    s.wait(WaitMode.MATERIALIZE)
    return s


def _forced_product(ctx, a):
    """One submit + force of ``C = A ⊕.⊗ A`` into a fresh output — the
    cross-forcing memo's hit shape when repeated."""
    c = Matrix.new(T.FP64, a.nrows, a.ncols, ctx)
    mxm(c, None, None, PLUS_TIMES_SEMIRING[T.FP64], a, a)
    c.wait(WaitMode.MATERIALIZE)
    return c


def _masked_ewise_product(ctx, a, visited):
    """C = A ⊕.⊗ A, then C⟨¬V, s, r⟩ = C .* A in place — the eWise
    consumer pushdown shape (PR-4)."""
    c = Matrix.new(T.FP64, a.nrows, a.ncols, ctx)
    mxm(c, None, None, PLUS_TIMES_SEMIRING[T.FP64], a, a)
    ewise_mult(c, visited, None, B.TIMES[T.FP64], c, a, DESC_RSC)
    c.wait(WaitMode.MATERIALIZE)
    return c


def _lcc_once(ctx, a):
    from repro.algorithms.lcc import local_clustering_coefficient
    out = local_clustering_coefficient(a)
    out.wait(WaitMode.MATERIALIZE)
    return out


def _bfs_sweep(ctx, a, source=0):
    levels = Vector.new(T.INT64, a.nrows, ctx)
    frontier = Vector.new(T.BOOL, a.nrows, ctx)
    frontier.set_element(True, source)
    depth = 0
    while frontier.nvals():
        assign(levels, frontier, None, depth, None)
        vxm(frontier, levels, None, LOR_LAND_SEMIRING_BOOL, frontier, a,
            desc=DESC_RSC)
        depth += 1
    return levels


@pytest.fixture(scope="module")
def contexts():
    bl = Context.new(Mode.BLOCKING, None, None)
    nb = Context.new(Mode.NONBLOCKING, None, None)
    return bl, nb


@pytest.mark.benchmark(group="E3-planner")
class TestMaskedMxm:
    def test_masked_mxm_pushdown(self, contexts):
        bl, nb = contexts
        a_bl, a_nb = _ctx_graph(bl), _ctx_graph(nb)
        v_bl = _visited_mask(bl, a_bl.nrows)
        v_nb = _visited_mask(nb, a_nb.nrows)

        t_blocking, r0 = _best(_masked_product, bl, a_bl, v_bl)
        with config.option("ENGINE_MEMO", False):
            with config.option("ENGINE_PUSHDOWN", False):
                t_unpushed, r1 = _best(_masked_product, nb, a_nb, v_nb)
            STATS.reset()
            t_pushed, r2 = _best(_masked_product, nb, a_nb, v_nb)
            snap = STATS.snapshot()

        assert sorted(r0.to_dict()) == sorted(r1.to_dict()) \
            == sorted(r2.to_dict())
        assert snap["masks_pushed"] >= 1, "pushdown never fired"

        _RESULTS["masked_mxm"] = {
            "blocking_ms": t_blocking * 1e3,
            "nb_unpushed_ms": t_unpushed * 1e3,
            "nb_pushed_ms": t_pushed * 1e3,
            "masks_pushed": snap["masks_pushed"],
        }
        print_table(
            "E3a  C⟨¬visited, s, r⟩ = A ⊕.⊗ A, in place",
            ["variant", "best ms"],
            [["blocking", f"{t_blocking * 1e3:.2f}"],
             ["nb-unpushed", f"{t_unpushed * 1e3:.2f}"],
             ["nb-pushed", f"{t_pushed * 1e3:.2f}"],
             ["masks_pushed", snap["masks_pushed"]]],
        )
        # The perf contract: filtering before sort/compress must beat
        # filtering at write-back, in either execution mode.
        assert t_pushed < t_blocking, "pushdown lost to blocking"
        assert t_pushed < t_unpushed, "pushdown lost to unpushed nonblocking"

    def test_bfs_vxm_complemented_mask(self, contexts):
        bl, nb = contexts
        a_bl, a_nb = _ctx_graph(bl), _ctx_graph(nb)
        t_blocking, l0 = _best(_bfs_sweep, bl, a_bl)
        t_nb, l1 = _best(_bfs_sweep, nb, a_nb)
        assert sorted(l0.to_dict().items()) == sorted(l1.to_dict().items())
        _RESULTS["bfs_vxm"] = {
            "blocking_ms": t_blocking * 1e3,
            "nonblocking_ms": t_nb * 1e3,
            "levels": len(l0.to_dict()),
        }
        print_table(
            "E3b  BFS sweep (vxm, DESC_RSC complemented mask)",
            ["variant", "best ms"],
            [["blocking", f"{t_blocking * 1e3:.2f}"],
             ["nonblocking", f"{t_nb * 1e3:.2f}"]],
        )
        # Loose guard: the nonblocking engine must not tax the hot loop.
        # The planner's fixed per-forcing cost is amortized poorly here
        # (each BFS level forces a two-node subgraph whose kernels run
        # in tens of microseconds), so the ratio is noisy on fast
        # machines; guard against an egregious tax only.
        assert t_nb < t_blocking * 1.5

    def test_repeated_subexpression_cse(self, contexts):
        bl, nb = contexts
        a_bl, a_nb = _ctx_graph(bl), _ctx_graph(nb)
        t_blocking, r0 = _best(_dup_sum, bl, a_bl)
        with config.option("ENGINE_MEMO", False):
            with config.option("ENGINE_CSE", False):
                t_nocse, r1 = _best(_dup_sum, nb, a_nb)
            STATS.reset()
            t_cse, r2 = _best(_dup_sum, nb, a_nb)
            snap = STATS.snapshot()
        assert sorted(r0.to_dict()) == sorted(r1.to_dict()) \
            == sorted(r2.to_dict())
        assert snap["cse_reused"] >= 1, "CSE never fired"
        assert snap["kernel_count"].get("mxm") == REPS, \
            "duplicate product was recomputed"
        _RESULTS["dup_subexpression"] = {
            "blocking_ms": t_blocking * 1e3,
            "nb_no_cse_ms": t_nocse * 1e3,
            "nb_cse_ms": t_cse * 1e3,
            "cse_reused": snap["cse_reused"],
        }
        print_table(
            "E3c  (A ⊕.⊗ A) + (A ⊕.⊗ A): shared subexpression",
            ["variant", "best ms"],
            [["blocking", f"{t_blocking * 1e3:.2f}"],
             ["nb-no-cse", f"{t_nocse * 1e3:.2f}"],
             ["nb-cse", f"{t_cse * 1e3:.2f}"],
             ["cse_reused", snap["cse_reused"]]],
        )
        assert t_cse < t_blocking, "CSE lost to blocking"

    def test_repeated_forcing_memo(self, contexts):
        bl, nb = contexts
        a_bl, a_nb = _ctx_graph(bl), _ctx_graph(nb)
        t_blocking, r0 = _best(_forced_product, bl, a_bl)
        with config.option("ENGINE_MEMO", False):
            t_nomemo, r1 = _best(_forced_product, nb, a_nb)
        STATS.reset()
        t_memo, r2 = _best(_forced_product, nb, a_nb)
        snap = STATS.snapshot()
        assert sorted(r0.to_dict()) == sorted(r1.to_dict()) \
            == sorted(r2.to_dict())
        assert snap["memo_reused"] >= REPS - 1, "memo never republished"
        assert snap["kernel_count"].get("mxm", 0) <= 1, \
            "memo hit still re-ran the kernel"
        _RESULTS["repeated_forcing"] = {
            "blocking_ms": t_blocking * 1e3,
            "nb_no_memo_ms": t_nomemo * 1e3,
            "nb_memo_ms": t_memo * 1e3,
            "memo_reused": snap["memo_reused"],
        }
        print_table(
            "E3d  C = A ⊕.⊗ A re-submitted ×5: cross-forcing memo",
            ["variant", "best ms"],
            [["blocking", f"{t_blocking * 1e3:.2f}"],
             ["nb-no-memo", f"{t_nomemo * 1e3:.2f}"],
             ["nb-memo", f"{t_memo * 1e3:.2f}"],
             ["memo_reused", snap["memo_reused"]]],
        )
        # A republish is one commit, not one SpGEMM.
        assert t_memo < t_blocking, "memo lost to blocking"
        assert t_memo < t_nomemo, "memo lost to memo-less nonblocking"

    def test_masked_ewise_over_mxm_pushdown(self, contexts):
        bl, nb = contexts
        a_bl, a_nb = _ctx_graph(bl), _ctx_graph(nb)
        v_bl = _visited_mask(bl, a_bl.nrows)
        v_nb = _visited_mask(nb, a_nb.nrows)
        t_blocking, r0 = _best(_masked_ewise_product, bl, a_bl, v_bl)
        with config.option("ENGINE_MEMO", False):
            with config.option("ENGINE_PUSHDOWN", False):
                t_unpushed, r1 = _best(_masked_ewise_product, nb, a_nb, v_nb)
            STATS.reset()
            t_pushed, r2 = _best(_masked_ewise_product, nb, a_nb, v_nb)
            snap = STATS.snapshot()
        assert sorted(r0.to_dict()) == sorted(r1.to_dict()) \
            == sorted(r2.to_dict())
        assert snap["masks_pushed"] >= 1, "eWise pushdown never fired"
        _RESULTS["masked_ewise"] = {
            "blocking_ms": t_blocking * 1e3,
            "nb_unpushed_ms": t_unpushed * 1e3,
            "nb_pushed_ms": t_pushed * 1e3,
            "masks_pushed": snap["masks_pushed"],
        }
        print_table(
            "E3e  C⟨¬visited, s, r⟩ = (A ⊕.⊗ A) .* A, in place",
            ["variant", "best ms"],
            [["blocking", f"{t_blocking * 1e3:.2f}"],
             ["nb-unpushed", f"{t_unpushed * 1e3:.2f}"],
             ["nb-pushed", f"{t_pushed * 1e3:.2f}"],
             ["masks_pushed", snap["masks_pushed"]]],
        )
        assert t_pushed < t_blocking, "eWise pushdown lost to blocking"

    def test_repeated_algorithm_memo(self, contexts):
        bl, nb = contexts
        a_bl, a_nb = _ctx_graph(bl), _ctx_graph(nb)
        # Cold baselines: the algo-block memo off, so every call pays
        # the full setup (pattern + degree + closed-wedge SpGEMM).
        with config.option("ENGINE_ALGO_MEMO", False):
            t_blocking, r0 = _best(_lcc_once, bl, a_bl)
            t_cold, r1 = _best(_lcc_once, nb, a_nb)
        # Warm: prime the memo once, then measure pure-hit calls.
        _lcc_once(nb, a_nb)
        STATS.reset()
        t_warm, r2 = _best(_lcc_once, nb, a_nb)
        snap = STATS.snapshot()
        assert sorted(r0.to_dict()) == sorted(r1.to_dict()) \
            == sorted(r2.to_dict())
        assert snap["algo_memo_hits"] >= 2 * REPS, "algo memo never hit"
        assert snap["algo_memo_misses"] == 0, "warm call still built a block"
        assert snap["kernel_count"].get("mxm", 0) == 0, \
            "warm lcc still ran the closed-wedge SpGEMM"
        _RESULTS["repeated_algorithm"] = {
            "blocking_ms": t_blocking * 1e3,
            "nb_cold_ms": t_cold * 1e3,
            "nb_warm_ms": t_warm * 1e3,
            "algo_memo_hits": snap["algo_memo_hits"],
        }
        print_table(
            "E3f  lcc(A) re-called ×5: memoized building blocks",
            ["variant", "best ms"],
            [["blocking", f"{t_blocking * 1e3:.2f}"],
             ["nb-cold", f"{t_cold * 1e3:.2f}"],
             ["nb-warm", f"{t_warm * 1e3:.2f}"],
             ["algo_memo_hits", snap["algo_memo_hits"]]],
        )
        # The §III incremental-evaluation contract: a repeated call on
        # an unchanged graph skips its SpGEMM-dominated setup outright.
        assert t_warm * 5 < t_blocking, "warm lcc not 5x faster than blocking"
        assert t_warm < t_cold, "warm lcc lost to cold nonblocking"

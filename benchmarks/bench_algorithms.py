"""A1 — the algorithm layer: LAGraph-style workloads end to end.

Exercises the whole stack (semirings, masks, select, index apply) the
way the paper's ecosystem uses it, on RMAT and mesh graphs.  Also the
ablation DESIGN.md calls out: triangle counting with the Fig. 3 masked
L·Lᵀ formulation vs the unmasked Burkhardt formulation — the masked
variant must win (that is *why* masks are in the API).
"""

import time

import numpy as np
import pytest

from benchmarks.conftest import print_table, rmat_graph
from repro.algorithms import (
    betweenness_centrality,
    bfs_levels,
    bfs_parents,
    connected_components,
    k_truss,
    local_clustering_coefficient,
    maximal_independent_set,
    pagerank,
    sssp,
    triangle_count,
    triangle_count_burkhardt,
)
from repro.core import types as T
from repro.generators import grid_2d, to_matrix

SCALE = 10


@pytest.fixture(scope="module")
def social():
    return rmat_graph(SCALE, undirected=True)


@pytest.fixture(scope="module")
def social_bool():
    return rmat_graph(SCALE, t=T.BOOL, undirected=True)


@pytest.fixture(scope="module")
def mesh():
    n, rows, cols, _ = grid_2d(40)
    return to_matrix(n, rows, cols, np.ones(len(rows)), T.BOOL)


@pytest.mark.benchmark(group="A1-traversal")
class TestTraversals:
    def test_bfs_levels_rmat(self, benchmark, social_bool):
        benchmark(bfs_levels, social_bool, 0)

    def test_bfs_parents_rmat(self, benchmark, social_bool):
        benchmark(bfs_parents, social_bool, 0)

    def test_bfs_levels_mesh(self, benchmark, mesh):
        benchmark(bfs_levels, mesh, 0)

    def test_sssp_rmat(self, benchmark, social):
        benchmark(sssp, social, 0, max_iters=32)


@pytest.mark.benchmark(group="A1-analytics")
class TestAnalytics:
    def test_triangles_masked_sandia(self, benchmark, social):
        benchmark(triangle_count, social)

    def test_triangles_unmasked_burkhardt(self, benchmark, social):
        benchmark(triangle_count_burkhardt, social)

    def test_connected_components(self, benchmark, social_bool):
        benchmark(connected_components, social_bool, max_iters=64)

    def test_pagerank(self, benchmark, social):
        benchmark(pagerank, social, tol=1e-6, max_iters=50)

    def test_ktruss(self, benchmark, social):
        benchmark(k_truss, social, 4, max_iters=16)

    def test_betweenness_sampled(self, benchmark, social):
        benchmark(betweenness_centrality, social, list(range(8)))

    def test_mis(self, benchmark, social_bool):
        benchmark(maximal_independent_set, social_bool, seed=1)

    def test_clustering_coefficient(self, benchmark, social):
        benchmark(local_clustering_coefficient, social)

    def test_multi_source_bfs_batch16(self, benchmark, social_bool):
        from repro.algorithms import msbfs_levels
        benchmark(msbfs_levels, social_bool, list(range(16)))

    def test_sparse_dnn(self, benchmark):
        import numpy as np
        from repro.algorithms import random_sparse_network, \
            sparse_dnn_inference
        from repro.core.binaryop import PLUS
        from repro.core.matrix import Matrix
        from repro.core import types as T
        weights, biases = random_sparse_network(512, 6, seed=1)
        rng = np.random.default_rng(0)
        y0 = Matrix.new(T.FP64, 32, 512)
        rows = np.repeat(np.arange(32), 10)
        cols = rng.integers(0, 512, 320)
        y0.build(rows, cols, np.ones(320), PLUS[T.FP64])
        y0.wait()
        benchmark(sparse_dnn_inference, y0, weights, biases)


def test_algorithms_report(benchmark, capsys, social, social_bool, mesh):
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)

    def timed(fn, reps=2):
        best = float("inf")
        out = None
        for _ in range(reps):
            t0 = time.perf_counter()
            out = fn()
            best = min(best, time.perf_counter() - t0)
        return best * 1e3, out

    tri = triangle_count(social)
    tri_b = triangle_count_burkhardt(social)
    assert tri == tri_b

    t_bfs, lv = timed(lambda: bfs_levels(social_bool, 0))
    t_par, _ = timed(lambda: bfs_parents(social_bool, 0))
    t_sssp, _ = timed(lambda: sssp(social, 0, max_iters=32))
    t_tri, _ = timed(lambda: triangle_count(social))
    t_trib, _ = timed(lambda: triangle_count_burkhardt(social))
    t_cc, cc = timed(lambda: connected_components(social_bool, max_iters=64))
    t_pr, pr = timed(lambda: pagerank(social, tol=1e-6, max_iters=50))

    rows = [
        ["BFS levels", f"{t_bfs:9.1f}", f"reached {lv.nvals()} vertices"],
        ["BFS parents (ROWINDEX apply)", f"{t_par:9.1f}", "valid tree"],
        ["SSSP (min.+)", f"{t_sssp:9.1f}", ""],
        ["triangles masked L·Lᵀ (Fig.3 TRIL)", f"{t_tri:9.1f}",
         f"{tri} triangles"],
        ["triangles unmasked A²⊙A", f"{t_trib:9.1f}",
         f"masked is {t_trib / t_tri:4.1f}x faster"],
        ["connected components", f"{t_cc:9.1f}",
         f"{len(set(int(v) for v in cc.to_dict().values()))} components"],
        ["pagerank", f"{t_pr:9.1f}", f"{pr[1]} iterations"],
    ]
    with capsys.disabled():
        print_table(
            f"Algorithm layer on RMAT scale {SCALE} "
            f"({social.nvals()} edges)",
            ["algorithm", "ms", "notes"], rows,
        )

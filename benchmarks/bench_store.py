"""S3 — the persistent warm-start store: cold process vs warm process.

CI (and any replacement replica) pays the same tax on every run: the
first ``pagerank`` / ``triangle_count`` on a freshly-ingested graph
re-derives the setup blocks (pattern matrix, degree vector, lower
triangle) that the previous run already computed.  The warm-start store
(:mod:`repro.store`) persists those blocks content-addressed on disk,
so a *new process* — simulated here by a fresh ``Context``, whose memo
and uids share nothing with the seeding run — serves them without
submitting a single setup kernel:

* **cold start** (``blocking_ms``) — store disabled, fresh context:
  first pagerank + triangle count pay full setup;
* **warm start** (``nb_warm_ms``) — store attached and seeded (by an
  untimed pass, so the first CI run gates the same quantity as every
  later one), fresh context: setup blocks come off disk.

Both sides time *algorithms only*, from a committed graph: the store
accelerates derived-block setup, not edge ingest — the graph build is
identical work on both sides and only adds noise to the ratio.  Parity
is asserted bit-exactly (ranks, iteration count, triangle count), with
``store_hits`` riding along as the proof counter.

Results land in ``BENCH_store.json``; ``tools/bench_gate.py`` gates
``store.nb_warm_ms / blocking_ms`` against the committed baseline in
``benchmarks/BENCH_store.json``.
"""

import json
import shutil
import tempfile
import time
from pathlib import Path

import numpy as np
import pytest

from benchmarks.conftest import print_table
from repro.algorithms import pagerank, triangle_count
from repro.core import types as T
from repro.core.context import Context, Mode
from repro.engine.stats import STATS
from repro.generators import rmat, to_matrix
from repro.internals import config

SCALE = 13
TOL = 1e-6
REPS = 2

_RESULTS: dict = {}


@pytest.fixture(scope="module", autouse=True)
def emit_results():
    yield
    if _RESULTS:
        Path("BENCH_store.json").write_text(
            json.dumps(_RESULTS, indent=2, sort_keys=True) + "\n"
        )


def _edge_list():
    n, rows, cols, _ = rmat(SCALE, 8, seed=7)
    return n, rows, cols


def _graph(n, rows, cols, ctx):
    return to_matrix(n, rows, cols, np.ones(len(rows)), T.FP64,
                     make_undirected=True, no_self_loops=True, ctx=ctx)


def _first_answers(n, rows, cols):
    """Fresh context, committed graph, then the timed section: the
    first pagerank and triangle count a new process would serve."""
    ctx = Context.new(Mode.NONBLOCKING, None, None)
    a = _graph(n, rows, cols, ctx)
    before = STATS.snapshot()
    t0 = time.perf_counter()
    ranks, iters = pagerank(a, tol=TOL)
    tris = triangle_count(a)
    wall = (time.perf_counter() - t0) * 1e3
    after = STATS.snapshot()
    counters = {k: after[k] - before[k]
                for k in ("store_hits", "store_misses", "store_stores",
                          "algo_memo_misses", "algo_memo_hits")}
    values = (
        {int(i): round(float(v), 12) for i, v in ranks.to_dict().items()},
        int(iters), int(tris),
    )
    return wall, values, counters


@pytest.mark.benchmark(group="S3-store")
class TestWarmStartStore:
    def test_warm_process_vs_cold_process(self):
        n, rows, cols = _edge_list()

        cold_wall, cold_vals = None, None
        with config.option("STORE_ENABLE", False):
            for _ in range(REPS):
                wall, vals, _ctr = _first_answers(n, rows, cols)
                if cold_wall is None or wall < cold_wall:
                    cold_wall, cold_vals = wall, vals

        # When CI restored a store (REPRO_STORE_DIR, actions/cache), use
        # it: the graph is deterministic, so its content-addressed keys
        # are stable across runs and the seeding pass itself starts
        # warm.  Without one, a throwaway directory keeps the run
        # hermetic.
        root = config.STORE_DIR or tempfile.mkdtemp(prefix="bench-store-")
        scratch = not config.STORE_DIR
        try:
            with config.option("STORE_ENABLE", True), \
                    config.option("STORE_DIR", root):
                # Untimed seeding pass: the "previous run" that leaves
                # the store populated.  Doing it in-run keeps the gated
                # ratio identical on a first (empty-cache) CI run.
                _first_answers(n, rows, cols)

                warm_wall, counters = None, None
                for _ in range(REPS):
                    wall, vals, ctr = _first_answers(n, rows, cols)
                    assert vals == cold_vals, "warm process diverged"
                    if warm_wall is None or wall < warm_wall:
                        warm_wall, counters = wall, ctr
        finally:
            if scratch:
                shutil.rmtree(root, ignore_errors=True)

        # Proof: the blocks really came off disk, none were rebuilt.
        assert counters["store_hits"] >= 3, "store never served a block"
        assert counters["algo_memo_misses"] == 0, \
            "a setup block was rebuilt despite the warm store"

        _RESULTS["store"] = {
            "blocking_ms": cold_wall,
            "nb_warm_ms": warm_wall,
            **counters,
        }
        print_table(
            f"S3  first-answer setup, pagerank+triangles "
            f"(rmat scale {SCALE})",
            ["variant", "wall ms", "proof"],
            [["cold process", f"{cold_wall:.1f}", ""],
             ["warm process", f"{warm_wall:.1f}",
              f"store_hits={counters['store_hits']} "
              f"rebuilds={counters['algo_memo_misses']}"]],
        )
        # The store's contract: starting warm must beat starting cold.
        assert warm_wall < cold_wall, "warm start lost to cold start"

"""T2 — Table II: GrB_Scalar variants of the extended methods (§VI).

Measures each Table II variant against its typed counterpart.  The
paper's claim is semantic uniformity at negligible cost: the scalar
variants should sit within a small constant factor of the typed ones,
while changing the *behaviour* exactly as §VI specifies (empty instead
of identity, deferred extraction).
"""

import time

import pytest

from benchmarks.conftest import print_table, rmat_graph
from repro.core import binaryop as B
from repro.core import monoid as M
from repro.core import types as T
from repro.core.indexunaryop import VALUEGT
from repro.core.matrix import Matrix
from repro.core.scalar import Scalar
from repro.core.vector import Vector
from repro.ops.apply import apply
from repro.ops.assign import assign
from repro.ops.reduce import reduce, reduce_scalar
from repro.ops.select import select

SCALE = 10


@pytest.fixture(scope="module")
def graph():
    return rmat_graph(SCALE)


@pytest.mark.benchmark(group="T2-reduce")
class TestReduceVariants:
    def test_reduce_typed(self, benchmark, graph):
        benchmark(reduce_scalar, M.PLUS_MONOID[T.FP64], graph)

    def test_reduce_grb_scalar_monoid(self, benchmark, graph):
        s = Scalar.new(T.FP64)

        def run():
            reduce(s, None, M.PLUS_MONOID[T.FP64], graph)
            return s.extract_element()

        benchmark(run)

    def test_reduce_grb_scalar_binop(self, benchmark, graph):
        """The new BinaryOp-reducer variant (§VI)."""
        s = Scalar.new(T.FP64)

        def run():
            reduce(s, None, B.PLUS[T.FP64], graph)
            return s.extract_element()

        benchmark(run)


@pytest.mark.benchmark(group="T2-element")
class TestElementVariants:
    def test_extract_element_typed(self, benchmark, graph):
        rows, cols, _ = graph.extract_tuples()
        i, j = int(rows[0]), int(cols[0])
        benchmark(graph.extract_element, i, j)

    def test_extract_element_grb_scalar(self, benchmark, graph):
        rows, cols, _ = graph.extract_tuples()
        i, j = int(rows[0]), int(cols[0])
        out = Scalar.new(T.FP64)
        benchmark(graph.extract_element, i, j, out)

    def test_set_element_typed(self, benchmark):
        m = Matrix.new(T.FP64, 64, 64)
        benchmark(m.set_element, 1.5, 3, 4)

    def test_set_element_grb_scalar(self, benchmark):
        m = Matrix.new(T.FP64, 64, 64)
        s = Scalar.new(T.FP64)
        s.set_element(1.5)
        s.wait()
        benchmark(m.set_element, s, 3, 4)


@pytest.mark.benchmark(group="T2-ops")
class TestOperationVariants:
    def test_apply_bind_typed_scalar(self, benchmark, graph):
        out = Matrix.new(T.FP64, graph.nrows, graph.ncols)

        def run():
            apply(out, None, None, B.TIMES[T.FP64], graph, 2.0)
            out.wait()

        benchmark(run)

    def test_apply_bind_grb_scalar(self, benchmark, graph):
        out = Matrix.new(T.FP64, graph.nrows, graph.ncols)
        s = Scalar.new(T.FP64)
        s.set_element(2.0)
        s.wait()

        def run():
            apply(out, None, None, B.TIMES[T.FP64], graph, s)
            out.wait()

        benchmark(run)

    def test_select_typed_scalar(self, benchmark, graph):
        out = Matrix.new(T.FP64, graph.nrows, graph.ncols)

        def run():
            select(out, None, None, VALUEGT[T.FP64], graph, 0.5)
            out.wait()

        benchmark(run)

    def test_select_grb_scalar(self, benchmark, graph):
        out = Matrix.new(T.FP64, graph.nrows, graph.ncols)
        s = Scalar.new(T.FP64)
        s.set_element(0.5)
        s.wait()

        def run():
            select(out, None, None, VALUEGT[T.FP64], graph, s)
            out.wait()

        benchmark(run)

    def test_assign_typed_scalar(self, benchmark, graph):
        out = Vector.new(T.FP64, graph.nrows)

        def run():
            assign(out, None, None, 1.0, None)
            out.wait()

        benchmark(run)

    def test_assign_grb_scalar(self, benchmark, graph):
        out = Vector.new(T.FP64, graph.nrows)
        s = Scalar.new(T.FP64)
        s.set_element(1.0)
        s.wait()

        def run():
            assign(out, None, None, s, None)
            out.wait()

        benchmark(run)


def test_table2_report(benchmark, capsys, graph):
    """Table II rows: typed vs GrB_Scalar variant timings + semantics."""
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)

    def timed(fn, reps=30):
        t0 = time.perf_counter()
        for _ in range(reps):
            fn()
        return (time.perf_counter() - t0) / reps * 1e3

    s = Scalar.new(T.FP64)
    out_m = Matrix.new(T.FP64, graph.nrows, graph.ncols)
    sg = Scalar.new(T.FP64)
    sg.set_element(0.5)
    sg.wait()
    rows = [
        ["reduce (monoid)", f"{timed(lambda: reduce_scalar(M.PLUS_MONOID[T.FP64], graph)):.3f} ms",
         f"{timed(lambda: (reduce(s, None, M.PLUS_MONOID[T.FP64], graph), s.nvals())):.3f} ms"],
        ["reduce (binop — new)", "n/a (needs identity)",
         f"{timed(lambda: (reduce(s, None, B.PLUS[T.FP64], graph), s.nvals())):.3f} ms"],
        ["select s-arg", f"{timed(lambda: (select(out_m, None, None, VALUEGT[T.FP64], graph, 0.5), out_m.wait())):.3f} ms",
         f"{timed(lambda: (select(out_m, None, None, VALUEGT[T.FP64], graph, sg), out_m.wait())):.3f} ms"],
    ]
    # semantics: empty reduce
    empty = Matrix.new(T.FP64, 4, 4)
    s_e = Scalar.new(T.FP64)
    reduce(s_e, None, M.PLUS_MONOID[T.FP64], empty)
    rows.append(["empty-reduce result",
                 f"identity ({reduce_scalar(M.PLUS_MONOID[T.FP64], empty)})",
                 f"empty scalar (nvals={s_e.nvals()})"])
    with capsys.disabled():
        print_table(
            f"Table II: typed vs GrB_Scalar variants (RMAT scale {SCALE}, "
            f"nvals={graph.nvals()})",
            ["method", "typed variant", "GrB_Scalar variant"], rows,
        )

"""M1 — the §II motivation, measured: index-aware ops vs the 1.X idioms.

Three implementations of the same two index-aware computations
(strict-upper-triangle extraction, replace-values-with-row-index):

1. **1.X packed** — indices stored in the values array (storage and
   bandwidth doubled), user-defined operators unpack per element;
   includes the packing pass, which 1.X programs had to run whenever
   the pattern changed.
2. **2.0 UDF** — an ``IndexUnaryOp.new`` operator: no packed storage,
   but still one function call per stored element.
3. **2.0 predefined** — ``GrB_TRIU``/``GrB_ROWINDEX``: vectorized.

Expected shape (the paper's claim): predefined ≫ UDF ≥ 1.X packed,
with 1.X also paying ~2x storage.  This is the headline reproduction.
"""

import time

import pytest

from benchmarks.conftest import print_table, rmat_graph
from repro import compat
from repro.core import indexunaryop as IU
from repro.core import types as T
from repro.core.matrix import Matrix
from repro.ops.apply import apply
from repro.ops.select import select

SCALES = [8, 10, 12]


# -- the three select idioms -------------------------------------------------

def select_1x_packed(graph):
    packed = compat.pack_index_matrix(graph)
    return compat.select_triu_value_packed_1x(packed, 0.0, T.FP64)


def select_20_udf(graph):
    op = IU.IndexUnaryOp.new(
        lambda v, i, j, s: (j > i) and (v > s), T.BOOL, T.FP64, T.FP64,
    )
    out = Matrix.new(T.FP64, graph.nrows, graph.ncols)
    select(out, None, None, op, graph, 0.0)
    out.wait()
    return out


def select_20_predefined(graph):
    mid = Matrix.new(T.FP64, graph.nrows, graph.ncols)
    select(mid, None, None, IU.TRIU, graph, 1)
    out = Matrix.new(T.FP64, graph.nrows, graph.ncols)
    select(out, None, None, IU.VALUEGT[T.FP64], mid, 0.0)
    out.wait()
    return out


# -- the three apply idioms ----------------------------------------------------

def apply_1x_packed(graph):
    packed = compat.pack_index_matrix(graph)
    return compat.apply_rowindex_packed_1x(packed, 0)


def apply_20_udf(graph):
    op = IU.IndexUnaryOp.new(lambda v, i, j, s: i + s, T.INT64, T.FP64,
                             T.INT64)
    out = Matrix.new(T.INT64, graph.nrows, graph.ncols)
    apply(out, None, None, op, graph, 0)
    out.wait()
    return out


def apply_20_predefined(graph):
    out = Matrix.new(T.INT64, graph.nrows, graph.ncols)
    apply(out, None, None, IU.ROWINDEX[T.INT64], graph, 0)
    out.wait()
    return out


def test_all_three_idioms_agree():
    g = rmat_graph(8)
    a = select_1x_packed(g).to_dict()
    b = select_20_udf(g).to_dict()
    c = select_20_predefined(g).to_dict()
    assert a == b == c
    x = apply_1x_packed(g).to_dict()
    y = apply_20_udf(g).to_dict()
    z = apply_20_predefined(g).to_dict()
    assert x == y == z


@pytest.mark.benchmark(group="M1-select")
class TestSelectIdioms:
    @pytest.mark.parametrize("scale", [10], ids=lambda s: f"scale{s}")
    def test_1x_packed(self, benchmark, scale):
        benchmark(select_1x_packed, rmat_graph(scale))

    @pytest.mark.parametrize("scale", [10], ids=lambda s: f"scale{s}")
    def test_20_udf(self, benchmark, scale):
        benchmark(select_20_udf, rmat_graph(scale))

    @pytest.mark.parametrize("scale", [10], ids=lambda s: f"scale{s}")
    def test_20_predefined(self, benchmark, scale):
        benchmark(select_20_predefined, rmat_graph(scale))


@pytest.mark.benchmark(group="M1-apply")
class TestApplyIdioms:
    @pytest.mark.parametrize("scale", [10], ids=lambda s: f"scale{s}")
    def test_1x_packed(self, benchmark, scale):
        benchmark(apply_1x_packed, rmat_graph(scale))

    @pytest.mark.parametrize("scale", [10], ids=lambda s: f"scale{s}")
    def test_20_udf(self, benchmark, scale):
        benchmark(apply_20_udf, rmat_graph(scale))

    @pytest.mark.parametrize("scale", [10], ids=lambda s: f"scale{s}")
    def test_20_predefined(self, benchmark, scale):
        benchmark(apply_20_predefined, rmat_graph(scale))


def test_motivation_report(benchmark, capsys):
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)

    def timed(fn, g, reps=3):
        best = float("inf")
        for _ in range(reps):
            t0 = time.perf_counter()
            fn(g)
            best = min(best, time.perf_counter() - t0)
        return best * 1e3

    sel_rows, app_rows = [], []
    for scale in SCALES:
        g = rmat_graph(scale)
        label = f"scale {scale} (nnz={g.nvals()})"
        t1 = timed(select_1x_packed, g)
        t2 = timed(select_20_udf, g)
        t3 = timed(select_20_predefined, g)
        sel_rows.append([label, f"{t1:9.2f}", f"{t2:9.2f}", f"{t3:9.2f}",
                         f"{t1 / t3:6.1f}x"])
        t1 = timed(apply_1x_packed, g)
        t2 = timed(apply_20_udf, g)
        t3 = timed(apply_20_predefined, g)
        app_rows.append([label, f"{t1:9.2f}", f"{t2:9.2f}", f"{t3:9.2f}",
                         f"{t1 / t3:6.1f}x"])

    # storage overhead of the 1.X packed representation
    g = rmat_graph(10)
    plain_bytes = g.nvals() * 8
    packed = compat.pack_index_matrix(g)
    packed_bytes = g.nvals() * 8 * 3   # (i, j, v) per element
    with capsys.disabled():
        print_table(
            "§II motivation — select: 1.X packed vs 2.0 UDF vs 2.0 "
            "predefined (ms)",
            ["workload", "1.X packed", "2.0 UDF", "2.0 predef",
             "1.X/predef"],
            sel_rows,
        )
        print_table(
            "§II motivation — apply(rowindex): same three idioms (ms)",
            ["workload", "1.X packed", "2.0 UDF", "2.0 predef",
             "1.X/predef"],
            app_rows,
        )
        print(f"\n1.X values-array storage: {packed_bytes} bytes vs "
              f"{plain_bytes} bytes plain "
              f"({packed_bytes / plain_bytes:.1f}x, the 'stored and "
              f"streamed twice' cost of §II; packed nvals="
              f"{packed.nvals()})")

#!/usr/bin/env python3
"""Multi-tenant graph serving behind a thin HTTP shim.

The ROADMAP's north star is GraphBLAS serving "heavy traffic from
millions of users"; this demo is that story in miniature.  A
:class:`repro.serve.GraphService` hosts one resident graph, three
tenants get sessions on their own §IV child contexts (worker share,
memo quota, fault domain), and a hand-rolled asyncio HTTP front end
translates ``GET /query?...`` into submissions on the
:class:`repro.serve.GraphServer` front door:

* concurrent BFS requests from different tenants coalesce into one
  multi-source (msbfs) submission through a single planner pass;
* overload is shed with HTTP 503 carrying the §V-typed
  ``GrB_INSUFFICIENT_SPACE`` rejection instead of queueing forever;
* per-tenant stats come back from the hierarchical contexts;
* on shutdown the service checkpoints to disk (§VII blobs + journal)
  and a fresh process-worth of state is rebuilt via
  ``GraphService.restore`` — warm restart with answer parity.

Run:  python examples/serve_demo.py
"""

import asyncio
import json
import shutil
import tempfile
import urllib.parse

import numpy as np

from repro import grb
from repro.algorithms import bfs_levels
from repro.generators import rmat, to_matrix
from repro.serve import (
    GraphServer,
    GraphService,
    Query,
    ServiceOverloadError,
)

HOST = "127.0.0.1"


def build_graph():
    n, rows, cols, _ = rmat(8, 8, seed=11)
    return n, to_matrix(n, rows, cols, np.ones(len(rows)), grb.FP64,
                        make_undirected=True, no_self_loops=True)


def make_app(service, server, sessions):
    """An asyncio stream handler speaking just enough HTTP/1.1."""

    async def respond(writer, status: int, payload: dict) -> None:
        body = json.dumps(payload).encode()
        reason = {200: "OK", 400: "Bad Request",
                  503: "Service Unavailable"}.get(status, "OK")
        writer.write(
            f"HTTP/1.1 {status} {reason}\r\n"
            f"Content-Type: application/json\r\n"
            f"Content-Length: {len(body)}\r\n"
            f"Connection: close\r\n\r\n".encode() + body
        )
        await writer.drain()
        writer.close()

    async def handle(reader, writer):
        request = await reader.readline()
        while (await reader.readline()).strip():
            pass  # drain headers; the shim only needs the request line
        try:
            _, target, _ = request.decode().split(" ", 2)
        except ValueError:
            await respond(writer, 400, {"error": "bad request line"})
            return
        url = urllib.parse.urlsplit(target)
        qs = dict(urllib.parse.parse_qsl(url.query))
        if url.path == "/graphs":
            await respond(writer, 200, service.graphs())
            return
        if url.path != "/query":
            await respond(writer, 400, {"error": f"no route {url.path}"})
            return
        tenant = qs.get("tenant", "anon")
        session = sessions.get(tenant)
        if session is None:
            session = sessions[tenant] = service.open_session(
                tenant, nthreads=2, memo_capacity=16
            )
        try:
            query = Query.make(
                qs.get("kind", "bfs"), qs.get("graph", "demo"),
                int(qs["source"]) if "source" in qs else None,
            )
            result = await server.submit(session, query)
        except ServiceOverloadError as exc:
            await respond(writer, 503, {
                "error": "GrB_INSUFFICIENT_SPACE",
                "transient": True, "reason": exc.reason,
            })
            return
        except Exception as exc:
            await respond(writer, 400, {"error": str(exc)})
            return
        value = result.value
        if isinstance(value, dict) and result.query.kind == "bfs":
            value = {str(k): v for k, v in value.items()}
        await respond(writer, 200, {
            "tenant": result.tenant, "batched": result.batched,
            "latency_ms": round(result.total_ms, 3), "value": value,
        })

    return handle


async def http_get(port: int, path: str) -> tuple[int, dict]:
    reader, writer = await asyncio.open_connection(HOST, port)
    writer.write(f"GET {path} HTTP/1.1\r\nHost: {HOST}\r\n\r\n".encode())
    await writer.drain()
    status_line = await reader.readline()
    status = int(status_line.split()[1])
    length = 0
    while True:
        line = await reader.readline()
        if not line.strip():
            break
        name, _, val = line.decode().partition(":")
        if name.strip().lower() == "content-length":
            length = int(val)
    body = json.loads(await reader.readexactly(length))
    writer.close()
    return status, body


async def main() -> None:
    grb.init(grb.Mode.NONBLOCKING)
    n, graph = build_graph()
    ckpt_dir = tempfile.mkdtemp(prefix="serve-ckpt-")
    service = GraphService(checkpoint_dir=ckpt_dir)
    meta = service.register_graph("demo", graph)
    print(f"resident graph: {meta['nrows']} vertices, {meta['nvals']} edges")
    sessions = {}
    async with GraphServer(service, max_pending=32, per_tenant=4,
                           batch_window=8) as server:
        http = await asyncio.start_server(
            make_app(service, server, sessions), HOST, 0
        )
        port = http.sockets[0].getsockname()[1]
        print(f"http shim listening on {HOST}:{port}")

        # Concurrent mixed load across three tenants: the BFS requests
        # coalesce into multi-source submissions.
        paths = [
            f"/query?tenant=t{i % 3}&kind=bfs&graph=demo&source={i * 17 % n}"
            for i in range(9)
        ] + ["/query?tenant=t0&kind=triangles&graph=demo"]
        answers = await asyncio.gather(
            *(http_get(port, p) for p in paths)
        )
        ok = sum(1 for s, _ in answers if s == 200)
        batched = sum(1 for s, b in answers if s == 200 and b.get("batched"))
        print(f"mixed load: {ok}/{len(answers)} served, {batched} batched")

        # Parity: the HTTP answer must equal a direct library call.
        status, body = await http_get(
            port, "/query?tenant=t1&kind=bfs&graph=demo&source=3"
        )
        oracle = {str(k): int(v) for k, v in bfs_levels(graph, 3)
                  .to_dict().items()}
        assert status == 200 and body["value"] == oracle
        print("bfs over http matches the direct library call")

        # Overload: one tenant fires 12 concurrent requests into a
        # per-tenant cap of 4 — the excess is shed with the §V-typed
        # transient rejection, mapped to HTTP 503.
        flood = await asyncio.gather(
            *(http_get(port,
                       f"/query?tenant=t2&kind=bfs&graph=demo&source={i}")
              for i in range(12))
        )
        shed = [b for s, b in flood if s == 503]
        assert all(b["error"] == "GrB_INSUFFICIENT_SPACE" for b in shed)
        print(f"overload: {len(shed)} queries shed with "
              f"GrB_INSUFFICIENT_SPACE (transient; client may retry)")

        # Deadlines: an impossible per-query budget expires while the
        # query is queued and surfaces the transient GrB_TIMEOUT.
        from repro.core.errors import TimeoutExpiredError

        t1 = sessions["t1"]
        try:
            await server.submit(
                t1, Query.make("pagerank", "demo", deadline_ms=0.01)
            )
            raise AssertionError("deadline did not fire")
        except TimeoutExpiredError as exc:
            print(f"deadline: {exc.info.name} (transient={exc.transient})")

        http.close()
        await http.wait_closed()

    print("per-tenant stats:")
    for tenant, snap in sorted(service.tenant_stats().items()):
        print(f"  {tenant:<8} completed={snap.get('queries_completed', 0)} "
              f"batched={snap.get('queries_batched', 0)} "
              f"p99={snap.get('latency_p99_ms', 0.0):.1f} ms")

    # Durability: checkpoint the live service, then rebuild a "new
    # process" from the directory and check it serves the same answers.
    manifest = service.checkpoint()
    print(f"checkpoint gen {manifest['gen']}: "
          f"{len(manifest['graphs'])} graphs, "
          f"{len(manifest['blocks'])} warm blocks -> {ckpt_dir}")
    service.close()
    restored = GraphService.restore(ckpt_dir)
    s = restored.open_session("t-restore", nthreads=2)
    warm = s.run(Query.make("bfs", "demo", source=3)).value
    assert {str(k): int(v) for k, v in warm.items()} == oracle
    print("restored service answers match the pre-restart oracle")
    restored.close()
    shutil.rmtree(ckpt_dir, ignore_errors=True)
    grb.finalize()
    print("serve demo: OK")


if __name__ == "__main__":
    asyncio.run(main())

#!/usr/bin/env python3
"""Quickstart: the GraphBLAS 2.0 surface in one sitting.

Covers: init/finalize, building a matrix (with the §IX optional-dup
rule), mxm over a semiring, the new GrB_Scalar (§VI), select and
index-apply (§VIII), import/export (§VII-A), serialization (§VII-B),
and wait/error (§III, §V).

Run:  python examples/quickstart.py
"""

import numpy as np

from repro import grb


def main() -> None:
    grb.init(grb.Mode.NONBLOCKING)

    # -- build a small weighted digraph -----------------------------------
    #     0 →(1.5) 1 →(2.5) 2
    #     0 →(0.5) 2,  2 →(3.0) 0
    A = grb.Matrix.new(grb.FP64, 3, 3)
    A.build([0, 0, 1, 2], [1, 2, 2, 0], [1.5, 0.5, 2.5, 3.0], dup=None)
    print("A =\n", A.to_dense())

    # -- matrix multiply over the arithmetic semiring ----------------------
    C = grb.Matrix.new(grb.FP64, 3, 3)
    grb.mxm(C, None, None, grb.PLUS_TIMES_SEMIRING[grb.FP64], A, A)
    grb.wait(C, grb.WaitMode.MATERIALIZE)   # §V: no more deferred errors
    print("A @ A =\n", C.to_dense())

    # -- GrB_Scalar: reduce the whole matrix (empty stays empty, §VI) ------
    total = grb.Scalar.new(grb.FP64)
    grb.reduce(total, None, grb.PLUS_MONOID[grb.FP64], A)
    print("sum(A) =", total.extract_element())

    empty = grb.Matrix.new(grb.FP64, 3, 3)
    empty_sum = grb.Scalar.new(grb.FP64)
    grb.reduce(empty_sum, None, grb.PLUS_MONOID[grb.FP64], empty)
    print("reduce(empty matrix) -> nvals =", empty_sum.nvals(), "(empty scalar)")

    # -- select: keep the strict upper triangle (§VIII-C) ------------------
    U = grb.Matrix.new(grb.FP64, 3, 3)
    grb.select(U, None, None, grb.TRIU, A, 1)
    print("triu(A, 1) =\n", U.to_dense())

    # -- index apply: replace weights with source vertex ids (§VIII-B) -----
    S = grb.Matrix.new(grb.INT64, 3, 3)
    grb.apply(S, None, None, grb.ROWINDEX_INT64, A, 0)
    print("rowindex(A) =\n", S.to_dense())

    # -- export to CSR, the three-call protocol (§VII-A) -------------------
    sizes = grb.matrix_export_size(A, grb.Format.CSR_MATRIX)
    indptr = np.empty(sizes[0], dtype=np.int64)
    indices = np.empty(sizes[1], dtype=np.int64)
    values = np.empty(sizes[2], dtype=np.float64)
    grb.matrix_export(A, grb.Format.CSR_MATRIX, indptr, indices, values)
    print("CSR indptr:", indptr, " indices:", indices, " values:", values)
    print("export hint:", grb.matrix_export_hint(A).name)

    # -- opaque serialization round-trip (§VII-B) ---------------------------
    blob = grb.matrix_serialize(A)
    A2 = grb.matrix_deserialize(blob)
    assert np.allclose(A2.to_dense(), A.to_dense())
    print(f"serialized {A2.nvals()} values into {len(blob)} opaque bytes")

    # -- the deferred error model (§V) --------------------------------------
    bad = grb.Matrix.new(grb.FP64, 2, 2)
    bad.build([0, 0], [0, 0], [1.0, 2.0], dup=None)   # duplicate + NULL dup
    try:
        grb.wait(bad, grb.WaitMode.MATERIALIZE)      # error surfaces here
    except grb.DuplicateIndexError:
        print("deferred execution error surfaced at wait():",
              grb.error_string(bad))

    grb.finalize()


if __name__ == "__main__":
    main()

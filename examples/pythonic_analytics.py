#!/usr/bin/env python3
"""Domain scenario: network analytics in the pygraphblas style.

The paper cites pygraphblas [12] — a Pythonic binding over GraphBLAS —
as part of the implementation ecosystem.  This script runs an analytics
session through this repo's equivalent layers: the LAGraph-style
``Graph`` wrapper (cached degrees/transpose/symmetry) and the operator
overloading of :mod:`repro.pythonic`, all of which lower onto the same
spec operations the C-style examples call.

Run:  python examples/pythonic_analytics.py
"""

import numpy as np

from repro import grb
from repro.core.semiring import MIN_PLUS_SEMIRING
from repro.generators import rmat
from repro.lagraph import Graph
from repro.pythonic import PM, PV, semiring


def main() -> None:
    grb.init(grb.Mode.NONBLOCKING)

    # -- LAGraph-style property graph ----------------------------------------
    n, rows, cols, vals = rmat(9, 8, seed=5)
    g = Graph.from_edges(rows, cols, None, n, kind="undirected",
                         no_self_loops=True)
    print(f"graph: {g!r}")
    deg = g.out_degree()
    _, dvals = deg.extract_tuples()
    print(f"degrees: max={dvals.max()}, mean={dvals.mean():.2f}; "
          f"symmetric={g.is_symmetric()}, self-loops={g.nself_loops()}")
    print(f"triangles: {g.triangle_count()}")
    comp = g.connected_components()
    ncomp = len(set(int(v) for v in comp.to_dict().values()))
    print(f"components: {ncomp}")

    # -- Pythonic one-liners over the same data -------------------------------
    A = PM(g.a)
    two_hop = (A @ A).nvals
    common = (A @ A * A).nvals     # wedges that close (triangle support)
    print(f"2-hop pairs: {two_hop}; closed-wedge entries: {common}")

    # Weighted SSSP as iterated (d min.+ A) | d, pygraphblas style:
    wdict = {}
    for i, j, v in zip(rows, cols, (vals * 100).astype(int)):
        if i != j:
            w = 1.0 + (int(v) % 5)
            wdict[(int(i), int(j))] = w
            wdict[(int(j), int(i))] = w
    W = PM.from_dict(wdict, n, n)
    source = int(np.argmax(np.bincount(rows, minlength=n)))  # a hub
    d = PV.from_dict({source: 0.0}, n)
    with semiring(MIN_PLUS_SEMIRING[grb.FP64]):
        for _ in range(24):
            nxt = (d @ W) | d
            if nxt.to_dict() == d.to_dict():
                break
            d = nxt
    dd = d.to_dict()
    far = max(dd.items(), key=lambda kv: kv[1])
    print(f"sssp from hub {source}: reached {len(dd)} vertices; "
          f"farthest {far[0]} at distance {float(far[1]):.0f}")

    # Slicing and masks, operator style:
    hubs = [int(i) for i, v in zip(*deg.extract_tuples()) if v >= dvals.max()]
    sub = A[hubs, hubs]
    print(f"hub subgraph on {len(hubs)} top-degree vertices: "
          f"{sub.nvals} internal edges")

    grb.finalize()


if __name__ == "__main__":
    main()

#!/usr/bin/env python3
"""Figure 2, exercised: hierarchical execution contexts (§IV).

Builds the context tree the paper motivates — a top-level context with
nested per-workload contexts carrying implementation-defined execution
specs (ours: thread counts) — then shows that

* objects are created *in* a context (the new constructor argument),
* all objects in one method call must share a context (mixing is an
  API error),
* ``GrB_Context_switch`` re-homes an object so it can participate,
* a context's ``nthreads`` drives row-partitioned parallel mxm, and
* freeing a context invalidates it (and ``GrB_finalize`` frees all).

Run:  python examples/fig2_context_hierarchy.py
"""

import time


from repro import grb
from repro.capi import (
    GrB_Context_new,
    GrB_Context_switch,
    GrB_Matrix_new,
    GrB_NONBLOCKING,
    GrB_PLUS_TIMES_SEMIRING_FP64,
    GrB_finalize,
    GrB_init,
    GrB_mxm,
    GrB_wait,
)
from repro.generators import rmat, to_matrix

SCALE, EDGE_FACTOR = 10, 8


def timed_mxm(ctx, label: str) -> float:
    n, rows, cols, vals = rmat(SCALE, EDGE_FACTOR, seed=7)
    A = to_matrix(n, rows, cols, vals, grb.FP64, ctx=ctx)
    C = GrB_Matrix_new(grb.FP64, n, n, ctx)
    start = time.perf_counter()
    GrB_mxm(C, None, None, GrB_PLUS_TIMES_SEMIRING_FP64, A, A)
    GrB_wait(C)
    elapsed = time.perf_counter() - start
    print(f"  {label:<28s} nthreads={ctx.nthreads:<2d} "
          f"mxm: {elapsed * 1e3:8.1f} ms  (nvals={C.nvals()})")
    return elapsed


def main() -> None:
    top = GrB_init(GrB_NONBLOCKING)

    # A nested context per workload, as Fig. 2's API supports.  The
    # exec argument is implementation-defined (§IV); ours documents
    # {"nthreads": int, "chunk_rows": int}.
    serial_ctx = GrB_Context_new(GrB_NONBLOCKING, None, {"nthreads": 1})
    wide_ctx = GrB_Context_new(GrB_NONBLOCKING, None, {"nthreads": 4})
    # Hierarchy: a child inherits unset keys from its ancestors.
    child_ctx = GrB_Context_new(GrB_NONBLOCKING, wide_ctx, {})
    print("context tree: top ->",
          f"[serial(n=1), wide(n=4) -> child(inherits n={child_ctx.nthreads})]")

    print("per-context execution:")
    timed_mxm(serial_ctx, "serial context")
    timed_mxm(wide_ctx, "wide context")
    timed_mxm(child_ctx, "child (inherits threads)")

    # -- the shared-context rule -------------------------------------------
    A = GrB_Matrix_new(grb.FP64, 4, 4, serial_ctx)
    B = GrB_Matrix_new(grb.FP64, 4, 4, wide_ctx)
    C = GrB_Matrix_new(grb.FP64, 4, 4, serial_ctx)
    try:
        GrB_mxm(C, None, None, GrB_PLUS_TIMES_SEMIRING_FP64, A, B)
    except grb.InvalidValueError as exc:
        print("\nmixing contexts is rejected, as §IV requires:")
        print("  ", exc)

    # -- GrB_Context_switch fixes it ----------------------------------------
    GrB_Context_switch(B, serial_ctx)
    GrB_mxm(C, None, None, GrB_PLUS_TIMES_SEMIRING_FP64, A, B)
    GrB_wait(C)
    print("after GrB_Context_switch(B, serial_ctx): mxm succeeds")

    # -- freeing -------------------------------------------------------------
    wide_ctx.free()
    try:
        GrB_Matrix_new(grb.FP64, 2, 2, wide_ctx)
    except grb.UninitializedObjectError:
        print("freed context behaves as uninitialized (§IV)")

    GrB_finalize()
    print("GrB_finalize freed every context:",
          "top freed" if top.is_freed else "top alive?!")


if __name__ == "__main__":
    main()

#!/usr/bin/env python3
"""Figure 3, reproduced: index-unary operators with select and apply.

The paper's Fig. 3 shows a weighted digraph whose adjacency matrix is
run through (a) a *select* with a user-defined operator that keeps
strict-upper-triangle entries greater than a scalar ``s``, and (b) an
*apply* with the predefined COLINDEX operator that replaces each stored
value with its column index plus ``s``.

The figure's exact edge weights are in the (graphical) figure, not the
paper text, so this script uses a representative 5-vertex weighted
graph and runs the paper's exact operator code — including the
user-defined ``my_triu_eq_INT32`` from §VIII-A, transcribed verbatim
from its C form.

Run:  python examples/fig3_select_apply.py
"""


from repro.capi import (
    GrB_BOOL,
    # The paper's snippet names GrB_COLINDEX_UINT64T; the ratified spec
    # settled on INT32/INT64 outputs for the index operators (Table IV
    # rows produce signed indices), so INT64 is the faithful stand-in.
    GrB_COLINDEX_INT64 as GrB_COLINDEX_UINT64T,  # noqa: N811 - paper name
    GrB_INT32,
    GrB_IndexUnaryOp_new,
    GrB_Matrix_new,
    GrB_NONBLOCKING,
    GrB_apply,
    GrB_finalize,
    GrB_init,
    GrB_select,
)


# The paper's user-defined operator (§VIII-A), C signature
#     void my_triu_eq_INT32(void *out, const void *in,
#                           GrB_Index *indices, GrB_Index n, const void *s)
# becomes fn(value, i, j, s) in the Python binding:
def my_triu_eq_INT32(value, i, j, s):
    return (j > i) and (int(value) > int(s))   # j > i  and  a_ij > s


def main() -> None:
    GrB_init(GrB_NONBLOCKING)

    # (a) a weighted digraph and its adjacency matrix
    A = GrB_Matrix_new(GrB_INT32, 5, 5)
    rows = [0, 0, 1, 1, 2, 2, 3, 3, 4, 4]
    cols = [1, 3, 2, 4, 0, 3, 1, 4, 0, 2]
    vals = [2, 5, 1, 4, 3, 7, 6, 2, 9, 1]
    A.build(rows, cols, vals, None)
    print("A =\n", A.to_dense(), sep="")

    # (b) build the select operator exactly as §VIII-A does
    myTriuEqINT32 = GrB_IndexUnaryOp_new(
        my_triu_eq_INT32, GrB_BOOL, GrB_INT32, GrB_INT32,
    )

    # (c) select: keep strict-upper entries with a_ij > s (s = 0 as in
    # the paper's call:  GrB_apply(C, GrB_NULL, GrB_NULL, myTriuEqINT32,
    # A, 0UL, GrB_NULL) — the 2.0 operation is GrB_select)
    C_sel = GrB_Matrix_new(GrB_INT32, 5, 5)
    GrB_select(C_sel, None, None, myTriuEqINT32, A, 0)
    print("\nselect(my_triu_eq, s=0):\n", C_sel.to_dense(), sep="")
    kept = C_sel.to_dict()
    assert all(j > i and v > 0 for (i, j), v in kept.items())

    # (d) apply: replace each stored value with its column index + s,
    # the paper's call:
    #   GrB_apply(C, GrB_NULL, GrB_NULL, GrB_COLINDEX_UINT64T, A, 1UL, ...)
    C_app = GrB_Matrix_new(GrB_INT32, 5, 5)
    GrB_apply(C_app, None, None, GrB_COLINDEX_UINT64T, A, 1)
    print("\napply(COLINDEX, s=1):\n", C_app.to_dense(), sep="")
    for (i, j), v in C_app.to_dict().items():
        assert v == j + 1

    # Structure is preserved by apply, filtered by select:
    assert C_app.nvals() == A.nvals()
    assert C_sel.nvals() < A.nvals()
    print("\nselect kept", C_sel.nvals(), "of", A.nvals(), "entries;",
          "apply preserved all", C_app.nvals())

    GrB_finalize()


if __name__ == "__main__":
    main()

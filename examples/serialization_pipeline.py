#!/usr/bin/env python3
"""Domain scenario: a distributed-style hand-off via serialize (§VII-B).

The paper motivates the serialize API with distributed applications
that "extract data in an arbitrary, opaque, serialized stream of bytes
which can easily be sent over the wire."  This script plays both ends
of that wire inside one process: a *producer* builds per-partition
matrices and serializes them; a *consumer* deserializes, stitches the
partitions back together with ``assign``, and verifies the result.  The
import/export path (§VII-A) then moves the same data through the
non-opaque CSR/COO formats for comparison.

Run:  python examples/serialization_pipeline.py
"""

import numpy as np

from repro import grb
from repro.generators import rmat, to_matrix


def produce_partitions(n_parts: int, scale: int):
    """Producer: build the graph, slice it into row blocks, serialize."""
    n, rows, cols, vals = rmat(scale, 8, seed=23)
    A = to_matrix(n, rows, cols, vals, grb.FP64)
    bounds = np.linspace(0, n, n_parts + 1, dtype=np.int64)
    blobs = []
    for k in range(n_parts):
        lo, hi = int(bounds[k]), int(bounds[k + 1])
        part = grb.Matrix.new(grb.FP64, hi - lo, n)
        grb.extract(part, None, None, A, np.arange(lo, hi), None)
        size = grb.matrix_serialize_size(part)
        buf = bytearray(size)                       # caller-owned buffer
        grb.matrix_serialize(part, buf)
        blobs.append((lo, hi, bytes(buf[:size])))
    return A, n, blobs


def consume_partitions(n: int, blobs) -> grb.Matrix:
    """Consumer: deserialize the row blocks and reassemble with assign."""
    full = grb.Matrix.new(grb.FP64, n, n)
    for lo, hi, blob in blobs:
        part = grb.matrix_deserialize(blob)
        grb.assign(full, None, None, part, np.arange(lo, hi), None)
    grb.wait(full)
    return full


def main() -> None:
    grb.init(grb.Mode.NONBLOCKING)

    A, n, blobs = produce_partitions(n_parts=4, scale=8)
    wire_bytes = sum(len(b) for _, _, b in blobs)
    print(f"producer: {len(blobs)} partitions, {wire_bytes} bytes on the wire")

    B = consume_partitions(n, blobs)
    assert B.nvals() == A.nvals()
    assert np.allclose(B.to_dense(), A.to_dense())
    print(f"consumer: reassembled {B.nvals()} values — bit-identical")

    # -- corruption is detected, not silently accepted ---------------------
    lo, hi, blob = blobs[0]
    corrupt = bytearray(blob)
    corrupt[len(corrupt) // 2] ^= 0xFF
    try:
        grb.matrix_deserialize(bytes(corrupt))
    except grb.InvalidObjectError as exc:
        print("corrupted stream rejected:", exc)

    # -- same hand-off through the non-opaque COO format (§VII-A) ----------
    ip, ind, vals = grb.matrix_export(A, grb.Format.COO_MATRIX)
    # Table III: for COO, indptr carries column indices, indices rows.
    C = grb.matrix_import(grb.FP64, n, n, ip, ind, vals, grb.Format.COO_MATRIX)
    assert np.allclose(C.to_dense(), A.to_dense())
    coo_bytes = ip.nbytes + ind.nbytes + vals.nbytes
    print(f"COO round-trip ok; non-opaque size {coo_bytes} bytes vs "
          f"opaque {grb.matrix_serialize_size(A)} bytes")

    grb.finalize()


if __name__ == "__main__":
    main()

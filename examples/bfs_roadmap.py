#!/usr/bin/env python3
"""Domain scenario: BFS levels and parents on a road-network-like mesh.

A 2-D grid stands in for a road network (planar, bounded degree — the
opposite regime from the RMAT social graph).  BFS levels use the
boolean semiring with complemented structural masks; BFS parents
showcase §VIII's ``apply(ROWINDEX)``, which under 1.X required packing
vertex ids into the values array.

Run:  python examples/bfs_roadmap.py [side]
"""

import sys
import time

import numpy as np

from repro import grb
from repro.algorithms import bfs_levels, bfs_parents, connected_components, sssp
from repro.generators import grid_2d, to_matrix


def main() -> None:
    side = int(sys.argv[1]) if len(sys.argv) > 1 else 48
    grb.init(grb.Mode.NONBLOCKING)

    n, rows, cols, vals = grid_2d(side, seed=3)
    A = to_matrix(n, rows, cols, np.ones(len(rows)), grb.BOOL)
    Aw = to_matrix(n, rows, cols, 1.0 + vals, grb.FP64)
    print(f"grid {side}x{side}: {n} vertices, {A.nvals()} edges")

    t0 = time.perf_counter()
    levels = bfs_levels(A, 0)
    t_lv = time.perf_counter() - t0
    idx, lv = levels.extract_tuples()
    # On a grid, BFS level from corner (0,0) is the Manhattan distance.
    r, c = np.divmod(idx, side)
    assert np.array_equal(lv, r + c), "grid BFS levels must be L1 distances"
    print(f"bfs_levels: eccentricity(corner) = {lv.max()} "
          f"(expected {2 * (side - 1)}), {t_lv * 1e3:.1f} ms")

    t0 = time.perf_counter()
    parents = bfs_parents(A, 0)
    t_par = time.perf_counter() - t0
    pidx, pvals = parents.extract_tuples()
    assert len(pidx) == n, "grid is connected: every vertex gets a parent"
    # Verify the parent tree: each parent is one BFS level above its child.
    lv_dense = np.empty(n, dtype=np.int64)
    lv_dense[idx] = lv
    child_lv = lv_dense[pidx]
    parent_lv = lv_dense[pvals]
    non_root = pidx != 0
    assert np.all(parent_lv[non_root] == child_lv[non_root] - 1)
    print(f"bfs_parents: valid BFS tree over {len(pidx)} vertices, "
          f"{t_par * 1e3:.1f} ms")

    dist = sssp(Aw, 0)
    didx, dvals = dist.extract_tuples()
    print(f"sssp: farthest weighted distance = {dvals.max():.2f}")

    labels = connected_components(A)
    _, comp = labels.extract_tuples()
    print(f"connected components: {len(set(comp.tolist()))} (expected 1)")

    grb.finalize()


if __name__ == "__main__":
    main()

#!/usr/bin/env python3
"""Figure 1, reproduced: two threads sharing a matrix with completion.

The paper's Fig. 1 program (OpenMP + C) has thread 0 compute a shared
matrix ``Esh``, force it COMPLETE with ``GrB_wait``, and raise a flag
with release semantics; thread 1 spins on the flag with acquire
semantics and then consumes ``Esh``.  Python's ``threading.Event`` has
exactly the acquire/release publication guarantee the paper requires of
the host language, so the structure maps line for line:

====================================  ===================================
paper (C + OpenMP)                    this script (Python)
====================================  ===================================
#pragma omp parallel / id 0,1         two threading.Thread workers
GrB_mxm(C, A, B); GrB_mxm(Esh, D, C)  same calls, capi spelling
GrB_wait(Esh, GrB_COMPLETE)           GrB_wait(Esh, GrB_COMPLETE)
atomic write release flag = 1         flag.set()
atomic read acquire (spin)            flag.wait()
GrB_mxm(Hres, G, Esh)                 same
GrB_wait on Dres / Hres               same
====================================  ===================================

The final Dres/Hres are checked against a sequential execution of the
same sequence — the thread-safety contract of §III.

Run:  python examples/fig1_two_thread_pipeline.py
"""

import threading

import numpy as np

from repro.capi import (
    GrB_COMPLETE,
    GrB_FP64,
    GrB_MATERIALIZE,
    GrB_Matrix_new,
    GrB_NONBLOCKING,
    GrB_PLUS_TIMES_SEMIRING_FP64,
    GrB_finalize,
    GrB_init,
    GrB_mxm,
    GrB_wait,
)
from repro.generators import random_matrix_data

N = 64


def load_and_initialize(seed: int):
    """The paper's user-written Load_and_initialize (not shown there)."""
    rows, cols, vals = random_matrix_data(N, N, 0.05, seed=seed)
    m = GrB_Matrix_new(GrB_FP64, N, N)
    m.build(rows, cols, vals, None)
    return m


def main() -> None:
    GrB_init(GrB_NONBLOCKING)

    flag = threading.Event()          # the synchronization flag
    Esh = GrB_Matrix_new(GrB_FP64, N, N)   # shared between threads
    Hres = GrB_Matrix_new(GrB_FP64, N, N)
    Dres = GrB_Matrix_new(GrB_FP64, N, N)

    def thread0() -> None:
        A = load_and_initialize(1)
        B = load_and_initialize(2)
        D = load_and_initialize(3)
        C = GrB_Matrix_new(GrB_FP64, N, N)

        GrB_mxm(C, None, None, GrB_PLUS_TIMES_SEMIRING_FP64, A, B)
        GrB_mxm(Esh, None, None, GrB_PLUS_TIMES_SEMIRING_FP64, D, C)

        GrB_wait(Esh, GrB_COMPLETE)   # Esh is complete: safe to publish

        flag.set()                    # release-store of flag = 1

        GrB_mxm(Dres, None, None, GrB_PLUS_TIMES_SEMIRING_FP64, A, Esh)
        GrB_wait(Dres, GrB_COMPLETE)

    def thread1() -> None:
        E = load_and_initialize(4)
        F = load_and_initialize(5)
        G = GrB_Matrix_new(GrB_FP64, N, N)

        GrB_mxm(G, None, None, GrB_PLUS_TIMES_SEMIRING_FP64, E, F)

        flag.wait()                   # acquire-load spin on flag

        GrB_mxm(Hres, None, None, GrB_PLUS_TIMES_SEMIRING_FP64, G, Esh)
        GrB_wait(Hres, GrB_COMPLETE)

    t0 = threading.Thread(target=thread0, name="id0")
    t1 = threading.Thread(target=thread1, name="id1")
    t0.start()
    t1.start()
    t0.join()
    t1.join()                         # the implied barrier of Fig. 1

    # Dres and Hres are available at this point (paper, line 54).
    GrB_wait(Dres, GrB_MATERIALIZE)
    GrB_wait(Hres, GrB_MATERIALIZE)

    # -- verify against a sequential execution of the same sequence -------
    A, B, D = (load_and_initialize(s) for s in (1, 2, 3))
    E, F = (load_and_initialize(s) for s in (4, 5))
    C = GrB_Matrix_new(GrB_FP64, N, N)
    Es = GrB_Matrix_new(GrB_FP64, N, N)
    G = GrB_Matrix_new(GrB_FP64, N, N)
    Dref = GrB_Matrix_new(GrB_FP64, N, N)
    Href = GrB_Matrix_new(GrB_FP64, N, N)
    GrB_mxm(C, None, None, GrB_PLUS_TIMES_SEMIRING_FP64, A, B)
    GrB_mxm(Es, None, None, GrB_PLUS_TIMES_SEMIRING_FP64, D, C)
    GrB_mxm(G, None, None, GrB_PLUS_TIMES_SEMIRING_FP64, E, F)
    GrB_mxm(Dref, None, None, GrB_PLUS_TIMES_SEMIRING_FP64, A, Es)
    GrB_mxm(Href, None, None, GrB_PLUS_TIMES_SEMIRING_FP64, G, Es)

    assert np.allclose(Dres.to_dense(), Dref.to_dense())
    assert np.allclose(Hres.to_dense(), Href.to_dense())
    print(f"two-thread pipeline matches sequential execution "
          f"(Dres nvals={Dres.nvals()}, Hres nvals={Hres.nvals()})")

    GrB_finalize()


if __name__ == "__main__":
    main()

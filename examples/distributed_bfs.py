#!/usr/bin/env python3
"""Domain scenario: the distributed future of §IV, simulated.

The paper's conclusion points the GraphBLAS at distributed systems,
with ``GrB_Context`` as the resource-scoping mechanism.  This script
runs an SPMD program on a simulated 4-rank cluster (ranks are threads;
the communicator counts every byte): the adjacency matrix is scattered
into row blocks, each block lives in a *nested per-rank context* under
the top-level context — exactly the MPI-outer/threads-inner hierarchy
§IV describes — and a level-synchronous BFS runs with one allgather per
level.  The result is checked against the single-node BFS.

Run:  python examples/distributed_bfs.py
"""

import numpy as np

from repro import grb
from repro.algorithms import bfs_levels
from repro.core.context import default_context
from repro.core.semiring import PLUS_TIMES_SEMIRING
from repro.distributed import (
    Cluster,
    DistMatrix,
    DistVector,
    RankHome,
    dist_bfs_levels,
    dist_mxv,
)
from repro.generators import rmat, to_matrix

SCALE, RANKS = 10, 4


def main() -> None:
    grb.init(grb.Mode.NONBLOCKING)

    n, rows, cols, _ = rmat(SCALE, 8, seed=99)
    keep = rows != cols
    rows, cols = rows[keep], cols[keep]
    print(f"RMAT scale {SCALE}: {n} vertices, {len(rows)} edges, "
          f"{RANKS} simulated ranks")

    cluster = Cluster(RANKS)
    top = default_context()

    def spmd_program(comm):
        # Each rank nests its own context under the cluster's (§IV):
        # two local threads per rank — the hierarchy the paper sketches.
        home = RankHome.create(comm.rank, top, nthreads=2)
        a = DistMatrix.from_triples(
            home, n, n, comm.size, grb.BOOL,
            rows, cols, np.ones(len(rows), dtype=bool),
            grb.LOR[grb.BOOL],
        )
        comm.barrier()
        levels = dist_bfs_levels(comm, a, 0)
        # Also one distributed SpMV to exercise the numeric path.
        af = DistMatrix.from_triples(
            home, n, n, comm.size, grb.FP64,
            rows, cols, np.ones(len(rows)), grb.MAX[grb.FP64],
        )
        ones = DistVector.from_global_dense(home, np.ones(n), comm.size,
                                            grb.FP64)
        deg = dist_mxv(comm, af, ones, PLUS_TIMES_SEMIRING[grb.FP64])
        return levels.local_tuples(), deg.local.nvals(), a.local_nvals()

    results = cluster.run(spmd_program)

    got = {}
    for (idx, vals), _, local_nnz in results:
        got.update({int(i): int(v) for i, v in zip(idx, vals)})
    stats = cluster.stats.snapshot()
    print(f"per-rank edge blocks: {[r[2] for r in results]}")
    print(f"communication: {stats['messages']} messages, "
          f"{stats['bytes'] / 1e3:.1f} KB, {stats['collectives']} collectives")

    # single-node reference
    A = to_matrix(n, rows, cols, np.ones(len(rows), dtype=bool), grb.BOOL)
    expected = {int(k): int(v) for k, v in bfs_levels(A, 0).to_dict().items()}
    assert got == expected
    print(f"distributed BFS levels match single-node BFS "
          f"({len(got)} reached vertices, max level "
          f"{max(got.values()) if got else 0})")

    grb.finalize()


if __name__ == "__main__":
    main()

#!/usr/bin/env python3
"""Domain scenario: triangle census of a scale-free social network.

The motivating workload class of the GraphBLAS line of work: count
triangles (a clustering proxy) on an RMAT graph.  The 2.0 ``select``
makes the lower-triangle extraction a single call (Fig. 3's idiom); the
same census under GraphBLAS 1.X needs the extract-filter-build
round-trip, which this script also runs for comparison — the §II
motivation made concrete.

Run:  python examples/triangle_census.py [scale]
"""

import sys
import time

import numpy as np

from repro import grb
from repro.algorithms import triangle_count, triangle_count_burkhardt
from repro.compat import extract_filter_build_select
from repro.generators import rmat, to_matrix


def main() -> None:
    scale = int(sys.argv[1]) if len(sys.argv) > 1 else 9
    grb.init(grb.Mode.NONBLOCKING)

    n, rows, cols, vals = rmat(scale, 8, seed=11)
    A = to_matrix(n, rows, cols, np.ones(len(rows)), grb.FP64,
                  make_undirected=True, no_self_loops=True)
    print(f"RMAT scale={scale}: {A.nrows} vertices, {A.nvals()} directed edges")

    t0 = time.perf_counter()
    tri = triangle_count(A)
    t_sandia = time.perf_counter() - t0

    t0 = time.perf_counter()
    tri_b = triangle_count_burkhardt(A)
    t_burk = time.perf_counter() - t0

    assert tri == tri_b, (tri, tri_b)
    print(f"triangles = {tri}")
    print(f"  masked L·Lᵀ (select TRIL):     {t_sandia * 1e3:8.1f} ms")
    print(f"  unmasked A²⊙A (Burkhardt):     {t_burk * 1e3:8.1f} ms")

    # -- the 1.X way to get L: copy everything out and back ----------------
    t0 = time.perf_counter()
    L_1x = extract_filter_build_select(
        A, lambda v, i, j: j < i  # strict lower triangle
    )
    t_1x = time.perf_counter() - t0

    t0 = time.perf_counter()
    L_20 = grb.Matrix.new(grb.FP64, n, n)
    grb.select(L_20, None, None, grb.TRIL, A, -1)
    grb.wait(L_20)
    t_20 = time.perf_counter() - t0

    assert L_1x.nvals() == L_20.nvals()
    print(f"lower-triangle extraction: 1.X round-trip {t_1x * 1e3:6.1f} ms "
          f"vs 2.0 select {t_20 * 1e3:6.1f} ms")

    grb.finalize()


if __name__ == "__main__":
    main()

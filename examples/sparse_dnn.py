#!/usr/bin/env python3
"""Domain scenario: sparse DNN inference (the Graph Challenge workload).

The GraphBLAS community's flagship *non-graph* application: push a
sparse activation batch through sparse layers where each layer is one
``mxm`` + bias ``apply`` + **ReLU as §VIII's select(VALUEGT, 0)**.  The
same building blocks that count triangles run a neural network — the
generality argument of building on semiring linear algebra.

Run:  python examples/sparse_dnn.py [neurons] [layers]
"""

import sys
import time

import numpy as np

from repro import grb
from repro.algorithms import random_sparse_network, sparse_dnn_inference
from repro.core.binaryop import PLUS


def main() -> None:
    neurons = int(sys.argv[1]) if len(sys.argv) > 1 else 1024
    layers = int(sys.argv[2]) if len(sys.argv) > 2 else 8
    batch = 64

    grb.init(grb.Mode.NONBLOCKING)

    weights, biases = random_sparse_network(neurons, layers, fanin=8, seed=7)
    wnnz = sum(w.nvals() for w in weights)
    print(f"network: {layers} layers x {neurons} neurons, "
          f"{wnnz} total weights (fan-out 8)")

    rng = np.random.default_rng(1)
    per_row = max(4, neurons // 64)
    y0 = grb.Matrix.new(grb.FP64, batch, neurons)
    rows = np.repeat(np.arange(batch), per_row)
    cols = rng.integers(0, neurons, batch * per_row)
    y0.build(rows, cols, np.ones(batch * per_row), PLUS[grb.FP64])
    print(f"input batch: {batch} samples, {y0.nvals()} active inputs "
          f"({100 * y0.nvals() / (batch * neurons):.1f}% dense)")

    t0 = time.perf_counter()
    out = sparse_dnn_inference(y0, weights, biases, cap=1.0)
    elapsed = time.perf_counter() - t0

    _, _, vals = out.extract_tuples()
    density = 100 * out.nvals() / (batch * neurons)
    print(f"inference: {elapsed * 1e3:.1f} ms "
          f"({wnnz * batch / max(elapsed, 1e-9) / 1e6:.1f} M weight-ops/s "
          f"upper bound)")
    print(f"output: {out.nvals()} activations ({density:.1f}% dense), "
          f"values in ({vals.min():.3f}, {vals.max():.3f}]"
          if len(vals) else "output: batch fully inactive")

    # classify: winner neuron per sample = row argmax via reduce
    from repro.core.monoid import MAX_MONOID
    from repro.core.vector import Vector
    from repro.ops.reduce import reduce_to_vector
    strongest = Vector.new(grb.FP64, batch)
    reduce_to_vector(strongest, None, None, MAX_MONOID[grb.FP64], out)
    print(f"per-sample max activation present for "
          f"{strongest.nvals()}/{batch} samples")

    grb.finalize()


if __name__ == "__main__":
    main()

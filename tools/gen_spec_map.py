#!/usr/bin/env python3
"""Generate docs/spec_mapping.md: every GrB_* symbol this repo provides.

Walks :mod:`repro.capi` (the C-spelled polymorphic surface) and
:mod:`repro.capi_typed` (the nonpolymorphic variants), groups symbols by
kind, and writes a reference table so a reader of the 2.0 spec can find
each name.  Run after changing the API surface:

    python tools/gen_spec_map.py
"""

from __future__ import annotations

import sys
from collections import defaultdict
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))


def classify(name: str, obj) -> str:
    from repro.core.binaryop import BinaryOp
    from repro.core.descriptor import Descriptor
    from repro.core.indexunaryop import IndexUnaryOp
    from repro.core.monoid import Monoid
    from repro.core.semiring import Semiring
    from repro.core.types import Type
    from repro.core.unaryop import UnaryOp

    if isinstance(obj, Type):
        return "types"
    if isinstance(obj, UnaryOp):
        return "unary operators"
    if isinstance(obj, BinaryOp):
        return "binary operators"
    if isinstance(obj, IndexUnaryOp):
        return "index-unary operators (Table IV)"
    if isinstance(obj, Monoid):
        return "monoids"
    if isinstance(obj, Semiring):
        return "semirings"
    if isinstance(obj, Descriptor):
        return "descriptors"
    if callable(obj):
        if "_setElement_" in name or "_extractElement_" in name or \
                name.split("_")[-1] in (
                    "BOOL", "INT8", "INT16", "INT32", "INT64", "UINT8",
                    "UINT16", "UINT32", "UINT64", "FP32", "FP64"):
            return "nonpolymorphic typed variants (§VI)"
        return "methods and operations"
    return "constants and enums"


#: Hand-written mapping of the §III/§V execution-semantics rows to the
#: modules that implement them (kept here so regeneration preserves it).
EXEC_SECTION = """
## execution semantics (§III / §V)

The spec rows that are *behaviour*, not symbols, and where each lives:

| spec row | meaning | implementation |
|---|---|---|
| §III blocking mode | every method executes before it returns | `core/sequence.py` (submit + immediate force) |
| §III nonblocking mode | methods may be delayed, reordered, optimized | `engine/dag.py` nodes + `engine/fusion.py::plan_subgraph` planner |
| §III "optimize" freedom: common subexpressions | a repeated pending subexpression may execute once | `engine/passes/cse.py` hash-cons over `dag.structural_key`; shared result republished via `engine/txn.py` |
| §III "optimize" freedom: masked products | `C⟨M⟩ = A ⊕.⊗ B` may skip off-mask products entirely | `engine/passes/pushdown.py` → `internals/mxm.py` `mask_keys` filter (§VIII `GrB_STRUCTURE`/`GrB_COMP` honoured in-kernel) |
| §III "optimize" freedom: masked eWise consumers | a masked `eWiseMult` (or intersect-shaped `eWiseAdd`) over a pending product filters inside the producer | `ops/ewise.py` push targets → `engine/passes/pushdown.py` → `internals/ewise.py` intersect `mask_keys` filter |
| §III "optimize" freedom: chain fusion | producer chains may run as one pass | `engine/passes/fuse.py` + `internals/applyselect.py` pipelines |
| §III "optimize" freedom: cross-call reuse | a re-submitted computation over unchanged inputs may republish its committed result | `engine/memo.py` per-Context LRU keyed on `dag.memo_key` (uid+version inputs); consulted in `engine/passes/cse.py`, republished via `engine/txn.py` |
| §III optimization arbitration | conflicting rewrites decided by estimated kernel savings | `engine/passes/cost.py` nnz-based model calibrated from `engine/stats.py` kernel spans; `cost:` trace instants; adaptive fusion veto + SpGEMM partition sizing (`COST_ADAPTIVE_*`) |
| §III amortized algorithm setup | repeated algorithm calls on an unchanged graph reuse their pure preprocessing | `algorithms/_blocks.py` memoized building blocks (`("algo", kind, (uid, version), params)` keys) in the per-Context `engine/memo.py` cache with cost-weighted eviction (`MEMO_EVICTION`); republished via `engine/txn.py` |
| §VIII masked-kernel fast paths | complemented/structural mask filters at kernel entry | `internals/mxm.py` (`in_sorted` membership, empty-complement keep-all) + `internals/maskaccum.py` memoized mask keys |
| §III "sequence of methods that define an object" | per-object defining sequence | sequence edges (`Node.prev`) threaded through `engine/dag.py` |
| §V forcing call | a read/`wait` completes exactly the pending subgraph it observes | `engine/scheduler.py::force` (topological, per-Context threads) |
| §V `GrB_wait(COMPLETE)` | errors surfaced; execution may stay deferred | `engine/scheduler.py::chain_complete_safe` |
| §V `GrB_wait(MATERIALIZE)` | object fully computed | `core/sequence.py` delegating to `force` |
| §V deferred execution errors | raise at the forcing call, once; API errors never deferred | `engine/scheduler.py` failure recording + `ops/*` eager validation |
| §V error string | thread-safe `GrB_error` text survives the deferral | owner `_err` set by `engine/scheduler.py::_record_failure` |
| §V failed-op output state | output keeps its last-materialized value | transactional commit gate `engine/txn.py::commit` (validate, then one reference store) |
| §V transient execution errors | `GrB_OUT_OF_MEMORY` / `GrB_INSUFFICIENT_SPACE` may succeed on re-invocation | `faults/retry.py::with_retry` (bounded retry, exponential backoff) around every node evaluation |
| §V persistent faults | exhaust the ladder, then defer like any execution error | scheduler/parallel/cluster degradation: `Context.is_degraded`, serial mxm fallback, `Cluster.run_resilient` |
| §V fault observability | error handling must be testable deterministically | `faults/plane.py` seeded site injection (incl. `planner.*` pass-boundary sites) + `Context.engine_stats()` fault counters |
| §V optimization transparency on failure | an optimized chain that fails re-runs unoptimized with exact deferred-error state | `engine/scheduler.py::_run_deoptimized_fallback` (unfuse, strip pushed masks, recompute filtered producers clean) |
| §IV multi-tenant serving on hierarchical contexts | N resident graphs served to sessions on child contexts, each with its own worker share, memo quota, and fault domain | `serve/` (`GraphService`/`Session` zero-copy per-tenant views, `AdmissionController` typed `GrB_INSUFFICIENT_SPACE` load shedding, `batch.py` msbfs/dedup window coalescing, `server.py` asyncio front door); per-tenant rollups in `engine/stats.py::ContextStats`, domain-scoped chaos in `faults/plane.py` |
| §V query deadlines | an expired query stops cooperatively, surfaces a transient `GrB_TIMEOUT`, and leaves outputs last-materialized | `engine/cancel.py` `CancelToken` checked at every kernel/pass boundary (`scheduler.py`, `fusion.py`); `core/errors.py::TimeoutExpiredError` (`Info.TIMEOUT`), admission slot freed in `serve/server.py` |
| §V per-tenant circuit breakers | a failure-streaking tenant is shed typed/transient, probed half-open, and auto-restored on recovery | `serve/health.py` (`CircuitBreaker`, `HealthMonitor`, `TenantBreakerOpenError`); outcome recording in `serve/service.py::_record_outcome`, `Context.restore()` on recovery |
| §II opaque objects: format freedom | the implementation may carry a matrix in any internal format; hypersparse graphs stored O(nnz) | `internals/containers.py` (`DcsrData` doubly-compressed carrier, `choose_mat_format` policy, `FORMAT_AUTO`/`FORMAT_DCSR_*` knobs); `internals/dispatch.py` (kernel family, format) registry with counted `as_csr` densify fallback; `engine/passes/cost.py::commit_format` migration at the `engine/txn.py` commit gate; format-tagged memo keys + `algorithms/_blocks.py` policy fingerprint; `formats/serialize.py` v3 kind-3 DCSR blobs (v2 still read) |
| §III "optimize" freedom: small-op batching | many independent pending `mxv` over one committed matrix may run as one kernel | `engine/opbatch.py` batch-key registry → `engine/scheduler.py::_run_batch` → `internals/mxm.py` `mxv_multi` (one pass over A for k vectors, failure-transparent surrender); `ENGINE_OP_BATCH` ablation knob |
| §VII checkpoint/journal durability | resident graphs snapshot as opaque versioned blobs; acknowledged mutations journaled before publish; warm restart replays journal-over-snapshot | `serve/recovery.py` (`CheckpointStore`, CRC-framed WAL, digest-keyed §VII blobs via `formats/serialize.py::carrier_serialize`, atomic `MANIFEST.json`); `GraphService.checkpoint()/restore()` with warm algo-memo blocks + `engine/passes/cost.py` calibration priors |
| §III "optimize" freedom: incremental recomputation | a small write may update derived results from the write set instead of recomputing | `internals/stream.py` `WriteDelta` positional merge (`Matrix.update_batch`, journal-replay parity via `serve/recovery.py::apply_edges`); `engine/memo.py::patch` delta-patched blocks under `algorithms/delta.py` rules with `engine/passes/cost.py::should_delta_patch` arbitration; warm-fixpoint pagerank/components/triangles (`algorithms/_blocks.py` `"warm:"` blocks); `GraphService.ingest_edges` buffered batch commit + `Session.view` in-place forward patching; `ENGINE_DELTA` ablation knob |
| §VII cross-process warm start | serialized state is process-independent: a fresh process (replica, CI run) may serve another process's committed algorithm blocks and calibration instead of recomputing them | `store/` content-addressed on-disk tier (`store/store.py` CRC-framed §VII blobs, LRU-by-atime eviction under `STORE_MAX_BYTES`, corrupt-entry quarantine-as-miss; `store/tier.py` `blake2b(graph digest, kind, params, format fingerprint, serialization version)` keys); second-tier probe + cost-gated store-behind in `engine/memo.py`; calibration sidecar seeding `engine/passes/cost.py` rates/partition samples + memo-admission EWMA; attached via `REPRO_STORE_DIR` / `GraphService(store_dir=)` / CLI `--store-dir`; `REPRO_STORE` ablation knob, `store.read`/`store.write` fault sites |
"""


def main() -> int:
    from repro import capi, capi_typed

    groups: dict[str, list[str]] = defaultdict(list)
    for name in sorted(capi.__all__):
        groups[classify(name, getattr(capi, name))].append(name)
    typed = [n for n in sorted(capi_typed.__all__) if n.startswith("GrB_")]
    groups["nonpolymorphic typed variants (§VI)"].extend(typed)

    out = Path(__file__).resolve().parent.parent / "docs" / "spec_mapping.md"
    out.parent.mkdir(exist_ok=True)
    with open(out, "w") as fh:
        fh.write("# GraphBLAS 2.0 symbol map\n\n")
        fh.write("Every `GrB_*` symbol provided by this implementation, "
                 "auto-generated by `tools/gen_spec_map.py`.  The "
                 "polymorphic names live in `repro.capi`; the "
                 "nonpolymorphic typed variants in `repro.capi_typed`; "
                 "Pythonic spellings in `repro.grb`.\n")
        fh.write(EXEC_SECTION)
        total = 0
        order = [
            "constants and enums", "types", "unary operators",
            "binary operators", "index-unary operators (Table IV)",
            "monoids", "semirings", "descriptors",
            "methods and operations",
            "nonpolymorphic typed variants (§VI)",
        ]
        for group in order:
            names = groups.get(group, [])
            if not names:
                continue
            total += len(names)
            fh.write(f"\n## {group} ({len(names)})\n\n")
            for k in range(0, len(names), 4):
                row = names[k:k + 4]
                fh.write("| " + " | ".join(f"`{n}`" for n in row) + " |\n")
                if k == 0:
                    fh.write("|" + "---|" * len(row) + "\n")
        fh.write(f"\n---\n\n{total} symbols total.\n")
    print(f"wrote {out} ({total} symbols)")
    return 0


if __name__ == "__main__":
    from repro.core.context import Mode, init

    init(Mode.NONBLOCKING)
    raise SystemExit(main())

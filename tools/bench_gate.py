#!/usr/bin/env python3
"""Perf regression gate over the planner benchmark results.

``benchmarks/bench_masked_mxm.py`` writes ``BENCH_planner.json`` with
wall times for each planner workload in blocking and nonblocking mode.
Raw milliseconds are machine-dependent, so the gate compares the
*ratio* of each optimized nonblocking path to the blocking run from the
same file — a machine-independent measure of what the planner buys —
against the committed baseline ratios in
``benchmarks/BENCH_planner.json``:

* ``masked_mxm.nb_pushed_ms / blocking_ms``   — mask pushdown
* ``dup_subexpression.nb_cse_ms / blocking_ms`` — hash-consing (CSE)
* ``repeated_algorithm.nb_warm_ms / blocking_ms`` — algo-block memo

``benchmarks/bench_serving.py`` additionally writes
``BENCH_serving.json`` (throughput and tail latency of the multi-tenant
serving layer vs naive one-context-per-query serial dispatch); when
that file is present two more ratios are gated against the committed
``benchmarks/BENCH_serving.json``:

* ``serving.nb_batched_ms / blocking_ms``     — batched throughput
* ``serving_p99.nb_batched_ms / blocking_ms`` — p99 latency under load

``benchmarks/bench_recovery.py`` writes ``BENCH_recovery.json``
(replica time-to-first-answer: warm restart from a checkpoint vs cold
rebuild from the edge list); when present one more ratio is gated
against the committed ``benchmarks/BENCH_recovery.json``:

* ``recovery.nb_warm_ms / blocking_ms``       — durability-plane restart

``benchmarks/bench_hypersparse.py`` writes ``BENCH_hypersparse.json``
(time-to-first-answer on a 2^30-row graph, DCSR vs a forced-CSR
handicap at 2^24 rows, plus small-op batching of independent mxv
queries); when present two more ratios are gated against the committed
``benchmarks/BENCH_hypersparse.json``:

* ``hypersparse_mxv.nb_dcsr_ms / blocking_ms`` — hypersparse carrier
* ``op_batching.nb_batched_ms / blocking_ms``  — small-op coalescing

``benchmarks/bench_streaming.py`` writes ``BENCH_streaming.json``
(pagerank after a small edge delta, warm delta-patched restart vs
``ENGINE_DELTA=0`` cold rebuild, plus sustained edge ingest with
buffered batches vs per-edge mutation); when present two more ratios
are gated against the committed ``benchmarks/BENCH_streaming.json``:

* ``streaming_pagerank.nb_warm_ms / blocking_ms``   — warm fixpoint
* ``streaming_ingest.nb_batched_ms / blocking_ms``  — batched ingest

``benchmarks/bench_store.py`` writes ``BENCH_store.json`` (pagerank
time-to-first-answer in a fresh context backed by a seeded on-disk
warm-start store vs the same cold start with the store disabled); when
present one more ratio is gated against the committed
``benchmarks/BENCH_store.json``:

* ``store.nb_warm_ms / blocking_ms``          — persistent warm start

The gate fails (exit 1) when a fresh ratio regresses more than the
tolerance (default 25%) over the baseline ratio, or when the workload's
optimizer counters show the optimization did not fire at all.  Run from
the repository root after the benchmarks:

    PYTHONPATH=src python -m pytest -q benchmarks/bench_masked_mxm.py
    python tools/bench_gate.py

CI's perf-smoke job runs exactly this pair.

``--append-history PATH`` additionally records this run's ratios in a
persistent JSON history (CI keeps it in an actions cache keyed across
runs) and applies the **drift rule**: a single run inside the 25%
tolerance can still be the fourth small regression in a row, so the
gate also fails when a ratio's last ``--drift-window`` recorded values
are monotonically non-decreasing AND the newest is more than
``--drift-limit`` (default 10%) above the oldest — slow creep that the
per-run tolerance is blind to.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

#: (workload, optimized-ms key, counter that proves the rewrite fired)
GATED = (
    ("masked_mxm", "nb_pushed_ms", "masks_pushed"),
    ("dup_subexpression", "nb_cse_ms", "cse_reused"),
    ("repeated_algorithm", "nb_warm_ms", "algo_memo_hits"),
    ("serving", "nb_batched_ms", "serve_batched_queries"),
    ("serving_p99", "nb_batched_ms", "serve_batches"),
    ("recovery", "nb_warm_ms", "restored_graphs"),
    ("hypersparse_mxv", "nb_dcsr_ms", "format_dcsr_commits"),
    ("op_batching", "nb_batched_ms", "engine_batched_ops"),
    ("streaming_pagerank", "nb_warm_ms", "memo_delta_patches"),
    ("streaming_ingest", "nb_batched_ms", "ingest_batches"),
    ("store", "nb_warm_ms", "store_hits"),
)

#: workloads sourced from the serving bench (BENCH_serving.json) rather
#: than the planner bench — gated only when its results are present
SERVING_WORKLOADS = ("serving", "serving_p99")

#: workloads sourced from the recovery bench (BENCH_recovery.json) —
#: gated only when its results are present
RECOVERY_WORKLOADS = ("recovery",)

#: workloads sourced from the hypersparse bench
#: (BENCH_hypersparse.json) — gated only when its results are present
HYPERSPARSE_WORKLOADS = ("hypersparse_mxv", "op_batching")

#: workloads sourced from the streaming bench (BENCH_streaming.json) —
#: gated only when its results are present
STREAMING_WORKLOADS = ("streaming_pagerank", "streaming_ingest")

#: workloads sourced from the warm-start store bench (BENCH_store.json)
#: — gated only when its results are present
STORE_WORKLOADS = ("store",)


def _ratio(results: dict, workload: str, key: str) -> float:
    entry = results[workload]
    blocking = float(entry["blocking_ms"])
    if blocking <= 0:
        raise ValueError(f"{workload}: nonpositive blocking_ms")
    return float(entry[key]) / blocking


def check(fresh: dict, baseline: dict, tolerance: float,
          gated=GATED) -> list[str]:
    """Return a list of human-readable failures (empty = gate passes)."""
    failures = []
    for workload, key, counter in gated:
        if workload not in fresh:
            failures.append(f"{workload}: missing from fresh results")
            continue
        if workload not in baseline:
            failures.append(f"{workload}: missing from baseline")
            continue
        fired = int(fresh[workload].get(counter, 0))
        if fired < 1:
            failures.append(
                f"{workload}: {counter}={fired} — the optimization never fired"
            )
        r_fresh = _ratio(fresh, workload, key)
        r_base = _ratio(baseline, workload, key)
        limit = r_base * (1.0 + tolerance)
        verdict = "ok" if r_fresh <= limit else "REGRESSED"
        print(
            f"  {workload:>20s}.{key}: {r_fresh:.3f}x blocking "
            f"(baseline {r_base:.3f}x, limit {limit:.3f}x) {verdict}"
        )
        if r_fresh > limit:
            failures.append(
                f"{workload}: {key} is {r_fresh:.3f}x blocking, "
                f"worse than baseline {r_base:.3f}x by more than "
                f"{tolerance:.0%}"
            )
    return failures


def fresh_ratios(fresh: dict, gated=GATED) -> dict[str, float]:
    """The gated ratios of one benchmark run, keyed ``workload.key``."""
    out = {}
    for workload, key, _ in gated:
        if workload in fresh:
            out[f"{workload}.{key}"] = _ratio(fresh, workload, key)
    return out


def append_history(history: dict, ratios: dict[str, float]) -> dict:
    """Append one run's ratios to the history structure (in place).

    The history is ``{"runs": [{"workload.key": ratio, ...}, ...]}`` —
    one dict per gate invocation, oldest first.
    """
    runs = history.setdefault("runs", [])
    runs.append({k: round(float(v), 6) for k, v in ratios.items()})
    return history


def check_drift(history: dict, window: int = 5,
                limit: float = 0.10) -> list[str]:
    """Return drift failures over the recorded history.

    A metric drifts when its last ``window`` recorded ratios are
    monotonically non-decreasing and the newest exceeds the oldest by
    more than ``limit``.  Fewer than ``window`` recordings, any dip in
    the window, or total growth within ``limit`` all pass — the rule
    only fires on sustained one-directional creep.
    """
    failures = []
    runs = history.get("runs", [])
    for workload, key, _ in GATED:
        metric = f"{workload}.{key}"
        series = [r[metric] for r in runs if metric in r]
        if len(series) < window:
            continue
        tail = series[-window:]
        monotonic = all(b >= a for a, b in zip(tail, tail[1:]))
        if monotonic and tail[-1] > tail[0] * (1.0 + limit):
            failures.append(
                f"{metric}: drifted {tail[0]:.3f}x -> {tail[-1]:.3f}x "
                f"over the last {window} runs (monotonic, "
                f"+{(tail[-1] / tail[0] - 1.0):.0%} > {limit:.0%})"
            )
    return failures


def _load_history(path: Path) -> dict:
    """The persisted ratio history, or a fresh one.

    The first CI run restores nothing (or an empty file from a cache
    miss), and a corrupted cache can restore *anything* — none of which
    should fail the gate before a single ratio is compared.  Any
    unreadable, non-object, or wrong-shape payload starts a new history
    with a printed notice; only a well-formed ``{"runs": [dict, ...]}``
    is carried forward.
    """
    try:
        history = json.loads(path.read_text())
    except OSError:
        print(f"bench_gate: no history at {path} — starting fresh")
        return {}
    except ValueError:
        print(f"bench_gate: unparseable history at {path} — starting fresh")
        return {}
    if not isinstance(history, dict):
        print(f"bench_gate: malformed history at {path} "
              f"(not an object) — starting fresh")
        return {}
    runs = history.get("runs", [])
    if not (isinstance(runs, list) and all(isinstance(r, dict) for r in runs)):
        print(f"bench_gate: malformed history at {path} "
              f"(bad \"runs\") — starting fresh")
        return {}
    return history


def main(argv: list[str] | None = None) -> int:
    p = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    p.add_argument(
        "--fresh", type=Path, default=Path("BENCH_planner.json"),
        help="results from the benchmark run under test",
    )
    p.add_argument(
        "--baseline", type=Path,
        default=Path(__file__).resolve().parent.parent
        / "benchmarks" / "BENCH_planner.json",
        help="committed baseline results",
    )
    p.add_argument(
        "--fresh-serving", type=Path, default=Path("BENCH_serving.json"),
        help="results from the serving benchmark run under test "
             "(serving workloads are skipped when the file is absent)",
    )
    p.add_argument(
        "--baseline-serving", type=Path,
        default=Path(__file__).resolve().parent.parent
        / "benchmarks" / "BENCH_serving.json",
        help="committed serving baseline results",
    )
    p.add_argument(
        "--fresh-recovery", type=Path, default=Path("BENCH_recovery.json"),
        help="results from the recovery benchmark run under test "
             "(recovery workloads are skipped when the file is absent)",
    )
    p.add_argument(
        "--baseline-recovery", type=Path,
        default=Path(__file__).resolve().parent.parent
        / "benchmarks" / "BENCH_recovery.json",
        help="committed recovery baseline results",
    )
    p.add_argument(
        "--fresh-hypersparse", type=Path,
        default=Path("BENCH_hypersparse.json"),
        help="results from the hypersparse benchmark run under test "
             "(hypersparse workloads are skipped when the file is absent)",
    )
    p.add_argument(
        "--baseline-hypersparse", type=Path,
        default=Path(__file__).resolve().parent.parent
        / "benchmarks" / "BENCH_hypersparse.json",
        help="committed hypersparse baseline results",
    )
    p.add_argument(
        "--fresh-streaming", type=Path,
        default=Path("BENCH_streaming.json"),
        help="results from the streaming benchmark run under test "
             "(streaming workloads are skipped when the file is absent)",
    )
    p.add_argument(
        "--baseline-streaming", type=Path,
        default=Path(__file__).resolve().parent.parent
        / "benchmarks" / "BENCH_streaming.json",
        help="committed streaming baseline results",
    )
    p.add_argument(
        "--fresh-store", type=Path,
        default=Path("BENCH_store.json"),
        help="results from the warm-start store benchmark run under test "
             "(store workloads are skipped when the file is absent)",
    )
    p.add_argument(
        "--baseline-store", type=Path,
        default=Path(__file__).resolve().parent.parent
        / "benchmarks" / "BENCH_store.json",
        help="committed warm-start store baseline results",
    )
    p.add_argument(
        "--tolerance", type=float, default=0.25,
        help="allowed relative regression of each ratio (default 0.25)",
    )
    p.add_argument(
        "--append-history", type=Path, default=None, metavar="PATH",
        help="append this run's ratios to a persistent JSON history and "
             "fail on sustained drift (see module docstring)",
    )
    p.add_argument(
        "--drift-window", type=int, default=5,
        help="history length the drift rule inspects (default 5)",
    )
    p.add_argument(
        "--drift-limit", type=float, default=0.10,
        help="allowed total growth across the drift window (default 0.10)",
    )
    args = p.parse_args(argv)

    try:
        fresh = json.loads(args.fresh.read_text())
    except OSError as exc:
        print(f"bench_gate: cannot read fresh results: {exc}", file=sys.stderr)
        return 2
    try:
        baseline = json.loads(args.baseline.read_text())
    except OSError as exc:
        print(f"bench_gate: cannot read baseline: {exc}", file=sys.stderr)
        return 2

    gated = GATED
    if args.fresh_serving.exists():
        try:
            fresh.update(json.loads(args.fresh_serving.read_text()))
            baseline.update(json.loads(args.baseline_serving.read_text()))
        except OSError as exc:
            print(f"bench_gate: cannot read serving results: {exc}",
                  file=sys.stderr)
            return 2
    else:
        print(f"bench_gate: {args.fresh_serving} absent — "
              f"serving workloads not gated this run")
        gated = tuple(g for g in gated if g[0] not in SERVING_WORKLOADS)

    if args.fresh_recovery.exists():
        try:
            fresh.update(json.loads(args.fresh_recovery.read_text()))
            baseline.update(json.loads(args.baseline_recovery.read_text()))
        except OSError as exc:
            print(f"bench_gate: cannot read recovery results: {exc}",
                  file=sys.stderr)
            return 2
    else:
        print(f"bench_gate: {args.fresh_recovery} absent — "
              f"recovery workloads not gated this run")
        gated = tuple(g for g in gated if g[0] not in RECOVERY_WORKLOADS)

    if args.fresh_hypersparse.exists():
        try:
            fresh.update(json.loads(args.fresh_hypersparse.read_text()))
            baseline.update(
                json.loads(args.baseline_hypersparse.read_text()))
        except OSError as exc:
            print(f"bench_gate: cannot read hypersparse results: {exc}",
                  file=sys.stderr)
            return 2
    else:
        print(f"bench_gate: {args.fresh_hypersparse} absent — "
              f"hypersparse workloads not gated this run")
        gated = tuple(g for g in gated if g[0] not in HYPERSPARSE_WORKLOADS)

    if args.fresh_streaming.exists():
        try:
            fresh.update(json.loads(args.fresh_streaming.read_text()))
            baseline.update(
                json.loads(args.baseline_streaming.read_text()))
        except OSError as exc:
            print(f"bench_gate: cannot read streaming results: {exc}",
                  file=sys.stderr)
            return 2
    else:
        print(f"bench_gate: {args.fresh_streaming} absent — "
              f"streaming workloads not gated this run")
        gated = tuple(g for g in gated if g[0] not in STREAMING_WORKLOADS)

    if args.fresh_store.exists():
        try:
            fresh.update(json.loads(args.fresh_store.read_text()))
            baseline.update(json.loads(args.baseline_store.read_text()))
        except OSError as exc:
            print(f"bench_gate: cannot read store results: {exc}",
                  file=sys.stderr)
            return 2
    else:
        print(f"bench_gate: {args.fresh_store} absent — "
              f"store workloads not gated this run")
        gated = tuple(g for g in gated if g[0] not in STORE_WORKLOADS)

    print(f"bench_gate: {args.fresh} vs {args.baseline} "
          f"(tolerance {args.tolerance:.0%})")
    failures = check(fresh, baseline, args.tolerance, gated)

    if args.append_history is not None:
        history = _load_history(args.append_history)
        append_history(history, fresh_ratios(fresh, gated))
        args.append_history.parent.mkdir(parents=True, exist_ok=True)
        args.append_history.write_text(
            json.dumps(history, indent=2, sort_keys=True) + "\n"
        )
        n_runs = len(history["runs"])
        drift = check_drift(history, args.drift_window, args.drift_limit)
        print(f"bench_gate: history {args.append_history} now holds "
              f"{n_runs} run(s); drift rule "
              f"({args.drift_window}-run window, {args.drift_limit:.0%}): "
              f"{len(drift)} failure(s)")
        failures.extend(drift)

    if failures:
        for f in failures:
            print(f"bench_gate: FAIL: {f}", file=sys.stderr)
        return 1
    print("bench_gate: all gated ratios within tolerance")
    return 0


if __name__ == "__main__":
    sys.exit(main())

#!/usr/bin/env python3
"""Perf regression gate over the planner benchmark results.

``benchmarks/bench_masked_mxm.py`` writes ``BENCH_planner.json`` with
wall times for each planner workload in blocking and nonblocking mode.
Raw milliseconds are machine-dependent, so the gate compares the
*ratio* of each optimized nonblocking path to the blocking run from the
same file — a machine-independent measure of what the planner buys —
against the committed baseline ratios in
``benchmarks/BENCH_planner.json``:

* ``masked_mxm.nb_pushed_ms / blocking_ms``   — mask pushdown
* ``dup_subexpression.nb_cse_ms / blocking_ms`` — hash-consing (CSE)

The gate fails (exit 1) when a fresh ratio regresses more than the
tolerance (default 25%) over the baseline ratio, or when the workload's
optimizer counters show the optimization did not fire at all.  Run from
the repository root after the benchmarks:

    PYTHONPATH=src python -m pytest -q benchmarks/bench_masked_mxm.py
    python tools/bench_gate.py

CI's perf-smoke job runs exactly this pair.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

#: (workload, optimized-ms key, counter that proves the rewrite fired)
GATED = (
    ("masked_mxm", "nb_pushed_ms", "masks_pushed"),
    ("dup_subexpression", "nb_cse_ms", "cse_reused"),
)


def _ratio(results: dict, workload: str, key: str) -> float:
    entry = results[workload]
    blocking = float(entry["blocking_ms"])
    if blocking <= 0:
        raise ValueError(f"{workload}: nonpositive blocking_ms")
    return float(entry[key]) / blocking


def check(fresh: dict, baseline: dict, tolerance: float) -> list[str]:
    """Return a list of human-readable failures (empty = gate passes)."""
    failures = []
    for workload, key, counter in GATED:
        if workload not in fresh:
            failures.append(f"{workload}: missing from fresh results")
            continue
        if workload not in baseline:
            failures.append(f"{workload}: missing from baseline")
            continue
        fired = int(fresh[workload].get(counter, 0))
        if fired < 1:
            failures.append(
                f"{workload}: {counter}={fired} — the optimization never fired"
            )
        r_fresh = _ratio(fresh, workload, key)
        r_base = _ratio(baseline, workload, key)
        limit = r_base * (1.0 + tolerance)
        verdict = "ok" if r_fresh <= limit else "REGRESSED"
        print(
            f"  {workload:>20s}.{key}: {r_fresh:.3f}x blocking "
            f"(baseline {r_base:.3f}x, limit {limit:.3f}x) {verdict}"
        )
        if r_fresh > limit:
            failures.append(
                f"{workload}: {key} is {r_fresh:.3f}x blocking, "
                f"worse than baseline {r_base:.3f}x by more than "
                f"{tolerance:.0%}"
            )
    return failures


def main(argv: list[str] | None = None) -> int:
    p = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    p.add_argument(
        "--fresh", type=Path, default=Path("BENCH_planner.json"),
        help="results from the benchmark run under test",
    )
    p.add_argument(
        "--baseline", type=Path,
        default=Path(__file__).resolve().parent.parent
        / "benchmarks" / "BENCH_planner.json",
        help="committed baseline results",
    )
    p.add_argument(
        "--tolerance", type=float, default=0.25,
        help="allowed relative regression of each ratio (default 0.25)",
    )
    args = p.parse_args(argv)

    try:
        fresh = json.loads(args.fresh.read_text())
    except OSError as exc:
        print(f"bench_gate: cannot read fresh results: {exc}", file=sys.stderr)
        return 2
    try:
        baseline = json.loads(args.baseline.read_text())
    except OSError as exc:
        print(f"bench_gate: cannot read baseline: {exc}", file=sys.stderr)
        return 2

    print(f"bench_gate: {args.fresh} vs {args.baseline} "
          f"(tolerance {args.tolerance:.0%})")
    failures = check(fresh, baseline, args.tolerance)
    if failures:
        for f in failures:
            print(f"bench_gate: FAIL: {f}", file=sys.stderr)
        return 1
    print("bench_gate: all gated ratios within tolerance")
    return 0


if __name__ == "__main__":
    sys.exit(main())

"""``GrB_``-prefixed aliases mirroring the C spelling of the 2.0 API.

This module lets programs read like the paper's figures::

    from repro.capi import *

    GrB_init(GrB_NONBLOCKING)
    A = GrB_Matrix_new(GrB_FP64, 4, 4)
    GrB_mxm(C, GrB_NULL, GrB_NULL, GrB_PLUS_TIMES_SEMIRING_FP64, A, B)
    GrB_wait(Esh, GrB_COMPLETE)
    GrB_finalize()

Only the *spelling* differs from :mod:`repro.grb`: C out-parameters
become return values, ``GrB_Info`` codes become exceptions, and
``GrB_NULL`` is ``None``.  ``GrB_error`` returns the string directly
(the C version fills a ``char**``).
"""

from __future__ import annotations

from typing import Any

from . import grb as _g
from .core import binaryop as _binaryop
from .core import indexunaryop as _indexunaryop
from .core import monoid as _monoid
from .core import semiring as _semiring
from .core import unaryop as _unaryop
from .core.context import Context as _Context
from .core.context import Mode as _Mode
from .core.context import WaitMode as _WaitMode

GrB_NULL = None
GrB_ALL = None

GrB_BLOCKING = _Mode.BLOCKING
GrB_NONBLOCKING = _Mode.NONBLOCKING
GrB_COMPLETE = _WaitMode.COMPLETE
GrB_MATERIALIZE = _WaitMode.MATERIALIZE

GrB_Type = _g.Type
GrB_Matrix = _g.Matrix
GrB_Vector = _g.Vector
GrB_Scalar = _g.Scalar
GrB_Descriptor = _g.Descriptor
GrB_Context = _Context
GrB_Info = _g.Info
GrB_Format = _g.Format

GrB_init = _g.init
GrB_finalize = _g.finalize
GrB_getVersion = _g.get_version
GrB_wait = _g.wait
GrB_error = _g.error_string


def GrB_Context_new(mode, parent=None, exec=None):  # noqa: A002 - spec name
    """``GrB_Context_new(&ctx, mode, parent, exec)`` (Fig. 2)."""
    return _Context.new(mode, parent, exec)


GrB_Context_switch = _g.context_switch


def GrB_Matrix_new(d, nrows, ncols, ctx=None):
    return _g.Matrix.new(d, nrows, ncols, ctx)


def GrB_Vector_new(d, nsize, ctx=None):
    return _g.Vector.new(d, nsize, ctx)


def GrB_Scalar_new(d, ctx=None):
    return _g.Scalar.new(d, ctx)


def GrB_Scalar_dup(s):
    return s.dup()


def GrB_Scalar_clear(s):
    s.clear()


def GrB_Scalar_nvals(s):
    return s.nvals()


def GrB_Scalar_setElement(s, value):
    s.set_element(value)


def GrB_Scalar_extractElement(s):
    return s.extract_element()


def GrB_Matrix_dup(a):
    return a.dup()


def GrB_Vector_dup(v):
    return v.dup()


def GrB_Matrix_build(c, rows, cols, vals, dup=None):
    c.build(rows, cols, vals, dup)


def GrB_Vector_build(w, idx, vals, dup=None):
    w.build(idx, vals, dup)


def GrB_Matrix_setElement(c, value, i, j):
    c.set_element(value, i, j)


def GrB_Vector_setElement(w, value, i):
    w.set_element(value, i)


def GrB_Matrix_extractElement(c, i, j, out=None):
    return c.extract_element(i, j, out)


def GrB_Vector_extractElement(w, i, out=None):
    return w.extract_element(i, out)


def GrB_Matrix_extractTuples(c):
    return c.extract_tuples()


def GrB_Vector_extractTuples(w):
    return w.extract_tuples()


def GrB_Matrix_removeElement(c, i, j):
    c.remove_element(i, j)


def GrB_Vector_removeElement(w, i):
    w.remove_element(i)


def GrB_Matrix_clear(c):
    c.clear()


def GrB_Vector_clear(w):
    w.clear()


def GrB_Matrix_nvals(c):
    return c.nvals()


def GrB_Vector_nvals(w):
    return w.nvals()


def GrB_Matrix_nrows(c):
    return c.nrows


def GrB_Matrix_ncols(c):
    return c.ncols


def GrB_Vector_size(w):
    return w.size


def GrB_Matrix_resize(c, nrows, ncols):
    c.resize(nrows, ncols)


def GrB_Vector_resize(w, n):
    w.resize(n)


def GrB_Matrix_diag(v, k=0):
    return _g.Matrix.diag(v, k)


def GrB_free(obj: Any) -> None:
    obj.free()


GrB_Type_new = _g.Type.new
GrB_UnaryOp_new = _unaryop.UnaryOp.new
GrB_BinaryOp_new = _binaryop.BinaryOp.new
GrB_IndexUnaryOp_new = _indexunaryop.IndexUnaryOp.new
GrB_Monoid_new = _monoid.Monoid.new
GrB_Semiring_new = _semiring.Semiring.new
GrB_Descriptor_new = _g.Descriptor.new

GrB_mxm = _g.mxm
GrB_mxv = _g.mxv
GrB_vxm = _g.vxm
GrB_eWiseAdd = _g.ewise_add
GrB_eWiseMult = _g.ewise_mult
GrB_extract = _g.extract
GrB_assign = _g.assign
GrB_Row_assign = _g.assign_row
GrB_Col_assign = _g.assign_col
GrB_apply = _g.apply
GrB_select = _g.select
GrB_reduce = _g.reduce
GrB_transpose = _g.transpose
GrB_kronecker = _g.kronecker

GrB_Matrix_import = _g.matrix_import
GrB_Matrix_export = _g.matrix_export
GrB_Matrix_exportSize = _g.matrix_export_size
GrB_Matrix_exportHint = _g.matrix_export_hint
GrB_Vector_import = _g.vector_import
GrB_Vector_export = _g.vector_export
GrB_Vector_exportSize = _g.vector_export_size
GrB_Vector_exportHint = _g.vector_export_hint
GrB_Matrix_serialize = _g.matrix_serialize
GrB_Matrix_serializeSize = _g.matrix_serialize_size
GrB_Matrix_deserialize = _g.matrix_deserialize
GrB_Vector_serialize = _g.vector_serialize
GrB_Vector_serializeSize = _g.vector_serialize_size
GrB_Vector_deserialize = _g.vector_deserialize

# Re-export every predefined typed operator / monoid / semiring under its
# C name (GrB_PLUS_INT32, GrB_TRIL, GrB_PLUS_TIMES_SEMIRING_FP64, ...).
_PREDEF_MODULES = (_unaryop, _binaryop, _indexunaryop, _monoid, _semiring)
for _mod in _PREDEF_MODULES:
    for _name in _mod.__all__:
        _obj = getattr(_mod, _name, None)
        if _obj is None:
            continue
        globals()[f"GrB_{_name}"] = _obj

from .core import types as _types  # noqa: E402

for _t in _types.PREDEFINED_TYPES:
    globals()[_t.name] = _t  # GrB_BOOL, GrB_INT8, ... carry the prefix already

from .core.descriptor import (  # noqa: E402,F401
    DESC_C as GrB_DESC_C,
    DESC_R as GrB_DESC_R,
    DESC_RC as GrB_DESC_RC,
    DESC_RS as GrB_DESC_RS,
    DESC_RSC as GrB_DESC_RSC,
    DESC_RT0 as GrB_DESC_RT0,
    DESC_RT0T1 as GrB_DESC_RT0T1,
    DESC_RT1 as GrB_DESC_RT1,
    DESC_S as GrB_DESC_S,
    DESC_SC as GrB_DESC_SC,
    DESC_T0 as GrB_DESC_T0,
    DESC_T0T1 as GrB_DESC_T0T1,
    DESC_T1 as GrB_DESC_T1,
)

__all__ = [name for name in globals() if name.startswith("GrB_")]

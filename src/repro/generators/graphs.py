"""Reproducible synthetic graph generators.

The paper's ecosystem (LAGraph, GAP, Graph500) evaluates on scale-free
RMAT graphs, uniform random graphs, and meshes.  These generators cover
those families deterministically (seeded ``numpy.random.Generator``),
emitting either raw COO triples or built :class:`~repro.core.matrix.Matrix`
objects.
"""

from __future__ import annotations

from typing import Any

import numpy as np

from ..core import binaryop as _b
from ..core import types as _t
from ..core.context import Context
from ..core.matrix import Matrix
from ..core.types import Type

__all__ = [
    "rmat",
    "erdos_renyi",
    "grid_2d",
    "path_graph",
    "ring_graph",
    "random_matrix_data",
    "to_matrix",
]

_INT = np.int64


def rmat(
    scale: int,
    edge_factor: int = 8,
    *,
    a: float = 0.57,
    b: float = 0.19,
    c: float = 0.19,
    seed: int = 42,
    weights: str = "uniform",
) -> tuple[int, np.ndarray, np.ndarray, np.ndarray]:
    """Kronecker/RMAT generator (Graph500 parameters by default).

    Returns ``(n, rows, cols, values)`` with ``n = 2**scale`` vertices
    and ``edge_factor * n`` directed edges (duplicates possible —
    callers pick a ``dup`` policy, which exercises the §IX build rule).
    """
    rng = np.random.default_rng(seed)
    n = 1 << scale
    m = edge_factor * n
    rows = np.zeros(m, dtype=_INT)
    cols = np.zeros(m, dtype=_INT)
    ab = a + b
    c_norm = c / (1.0 - ab)
    a_norm = a / ab
    for bit in range(scale):
        r_bit = rng.random(m) > ab
        c_bit = rng.random(m) > np.where(r_bit, c_norm, a_norm)
        rows |= r_bit.astype(_INT) << bit
        cols |= c_bit.astype(_INT) << bit
    perm = rng.permutation(n)
    rows = perm[rows]
    cols = perm[cols]
    values = _weights(rng, m, weights)
    return n, rows, cols, values


def erdos_renyi(
    n: int, p: float, *, seed: int = 42, weights: str = "uniform"
) -> tuple[int, np.ndarray, np.ndarray, np.ndarray]:
    """G(n, p) via geometric skipping (memory O(m), not O(n^2))."""
    rng = np.random.default_rng(seed)
    total = n * n
    expected = int(total * p * 1.2) + 16
    positions = []
    pos = -1
    remaining = expected
    while True:
        gaps = rng.geometric(p, size=max(remaining, 1024))
        steps = np.cumsum(gaps)
        batch = pos + steps
        batch = batch[batch < total]
        positions.append(batch)
        if len(batch) < len(steps):
            break
        pos = int(batch[-1]) if len(batch) else pos
        remaining = 1024
    flat = np.concatenate(positions).astype(_INT)
    rows, cols = np.divmod(flat, n)
    values = _weights(rng, len(flat), weights)
    return n, rows, cols, values


def grid_2d(
    side: int, *, seed: int = 42, weights: str = "uniform"
) -> tuple[int, np.ndarray, np.ndarray, np.ndarray]:
    """4-neighbour 2-D mesh (both edge directions), side x side vertices."""
    n = side * side
    idx = np.arange(n, dtype=_INT)
    r, c = np.divmod(idx, side)
    srcs, dsts = [], []
    for dr, dc in ((0, 1), (1, 0), (0, -1), (-1, 0)):
        ok = (0 <= r + dr) & (r + dr < side) & (0 <= c + dc) & (c + dc < side)
        srcs.append(idx[ok])
        dsts.append((r[ok] + dr) * side + (c[ok] + dc))
    rows = np.concatenate(srcs)
    cols = np.concatenate(dsts)
    rng = np.random.default_rng(seed)
    return n, rows, cols, _weights(rng, len(rows), weights)


def path_graph(n: int) -> tuple[int, np.ndarray, np.ndarray, np.ndarray]:
    """Directed path 0 → 1 → ... → n-1 with unit weights."""
    rows = np.arange(n - 1, dtype=_INT)
    cols = rows + 1
    return n, rows, cols, np.ones(n - 1)


def ring_graph(n: int) -> tuple[int, np.ndarray, np.ndarray, np.ndarray]:
    """Directed ring with unit weights."""
    rows = np.arange(n, dtype=_INT)
    cols = (rows + 1) % n
    return n, rows, cols, np.ones(n)


def random_matrix_data(
    nrows: int,
    ncols: int,
    density: float,
    *,
    seed: int = 42,
    weights: str = "uniform",
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Uniform random rectangular sparse matrix triples (no duplicates)."""
    rng = np.random.default_rng(seed)
    m = int(nrows * ncols * density)
    flat = rng.choice(nrows * ncols, size=min(m, nrows * ncols), replace=False)
    rows, cols = np.divmod(flat.astype(_INT), ncols)
    return rows, cols, _weights(rng, len(flat), weights)


def _weights(rng: np.random.Generator, m: int, kind: str) -> np.ndarray:
    if kind == "uniform":
        return rng.random(m)
    if kind == "ones":
        return np.ones(m)
    if kind == "int":
        return rng.integers(1, 256, size=m).astype(np.float64)
    raise ValueError(f"unknown weight kind {kind!r}")


def to_matrix(
    n: int,
    rows: np.ndarray,
    cols: np.ndarray,
    values: Any,
    t: Type = _t.FP64,
    *,
    ncols: int | None = None,
    dedup: bool = True,
    make_undirected: bool = False,
    no_self_loops: bool = False,
    ctx: Context | None = None,
) -> Matrix:
    """Build a :class:`Matrix` from generator triples.

    ``dedup=True`` folds duplicate edges with PLUS for float domains /
    FIRST-like semantics via PLUS for BOOL (keeps the pattern).
    """
    rows = np.asarray(rows, dtype=_INT)
    cols = np.asarray(cols, dtype=_INT)
    values = np.asarray(values)
    if no_self_loops:
        keep = rows != cols
        rows, cols, values = rows[keep], cols[keep], values[keep]
    if make_undirected:
        rows, cols = np.concatenate([rows, cols]), np.concatenate([cols, rows])
        values = np.concatenate([values, values])
    a = Matrix.new(t, n, ncols if ncols is not None else n, ctx)
    dup = None
    if dedup:
        dup = _b.MAX[t] if t in _b.MAX else _b.LOR[t]
    a.build(rows, cols, values, dup)
    a.wait()
    return a

"""Graph workload generators for examples, tests, and benchmarks."""

from .graphs import (
    erdos_renyi,
    grid_2d,
    path_graph,
    random_matrix_data,
    ring_graph,
    rmat,
    to_matrix,
)

__all__ = [
    "erdos_renyi",
    "grid_2d",
    "path_graph",
    "ring_graph",
    "rmat",
    "random_matrix_data",
    "to_matrix",
]

"""Distributed containers: 1-D row-block matrices and block vectors.

The layout the distributed-GraphBLAS considerations paper [3] starts
from: matrix rows are partitioned into contiguous blocks, one per rank;
vectors are partitioned conformally.  Each rank's local block is an
ordinary :class:`~repro.core.matrix.Matrix` bound to a *rank context*
nested under a shared cluster context — demonstrating exactly the
hierarchical-context role §IV designs for ("a top level distributed
execution using MPI with multithreaded execution on each node").
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..core.context import Context
from ..core.errors import DimensionMismatchError
from ..core.matrix import Matrix
from ..core.types import Type
from ..core.vector import Vector

__all__ = ["block_bounds", "RankHome", "DistMatrix", "DistVector"]


def block_bounds(n: int, size: int) -> np.ndarray:
    """Partition ``range(n)`` into ``size`` contiguous blocks."""
    return np.linspace(0, n, size + 1, dtype=np.int64)


@dataclass(frozen=True)
class RankHome:
    """A rank's execution home: its nested context under the cluster."""

    rank: int
    context: Context

    @classmethod
    def create(cls, rank: int, cluster_ctx: Context,
               nthreads: int = 1) -> "RankHome":
        ctx = Context.new(
            cluster_ctx.mode, cluster_ctx, {"nthreads": nthreads},
            name=f"rank{rank}",
        )
        return cls(rank, ctx)


class DistVector:
    """A vector partitioned conformally with row blocks."""

    def __init__(self, home: RankHome, size: int, nranks: int, t: Type,
                 local: Vector | None = None):
        self.home = home
        self.size = size
        self.nranks = nranks
        self.type = t
        self.bounds = block_bounds(size, nranks)
        lo, hi = self.range
        self.local = local if local is not None else Vector.new(
            t, int(hi - lo), home.context)
        if self.local.size != hi - lo:
            raise DimensionMismatchError(
                f"local block has size {self.local.size}, want {hi - lo}"
            )

    @property
    def range(self) -> tuple[int, int]:
        r = self.home.rank
        return int(self.bounds[r]), int(self.bounds[r + 1])

    def local_tuples(self) -> tuple[np.ndarray, np.ndarray]:
        """(global indices, values) of this rank's stored elements."""
        idx, vals = self.local.extract_tuples()
        return idx + self.range[0], vals

    @classmethod
    def from_global_dense(cls, home: RankHome, dense: np.ndarray,
                          nranks: int, t: Type) -> "DistVector":
        bounds = block_bounds(len(dense), nranks)
        lo, hi = int(bounds[home.rank]), int(bounds[home.rank + 1])
        chunk = dense[lo:hi]
        idx = np.flatnonzero(chunk != 0)
        v = Vector.new(t, hi - lo, home.context)
        if len(idx):
            v.build(idx, chunk[idx])
        v.wait()
        return cls(home, len(dense), nranks, t, v)


class DistMatrix:
    """A matrix in 1-D row-block distribution."""

    def __init__(self, home: RankHome, nrows: int, ncols: int, nranks: int,
                 t: Type, local: Matrix | None = None):
        self.home = home
        self.nrows = nrows
        self.ncols = ncols
        self.nranks = nranks
        self.type = t
        self.bounds = block_bounds(nrows, nranks)
        lo, hi = self.row_range
        self.local = local if local is not None else Matrix.new(
            t, int(hi - lo), ncols, home.context)
        if (self.local.nrows, self.local.ncols) != (hi - lo, ncols):
            raise DimensionMismatchError("local block shape mismatch")

    @property
    def row_range(self) -> tuple[int, int]:
        r = self.home.rank
        return int(self.bounds[r]), int(self.bounds[r + 1])

    @classmethod
    def from_triples(
        cls,
        home: RankHome,
        nrows: int,
        ncols: int,
        nranks: int,
        t: Type,
        rows: np.ndarray,
        cols: np.ndarray,
        vals: np.ndarray,
        dup=None,
    ) -> "DistMatrix":
        """Scatter global COO triples onto this rank's row block."""
        bounds = block_bounds(nrows, nranks)
        lo, hi = int(bounds[home.rank]), int(bounds[home.rank + 1])
        mine = (rows >= lo) & (rows < hi)
        local = Matrix.new(t, hi - lo, ncols, home.context)
        local.build(rows[mine] - lo, cols[mine], np.asarray(vals)[mine], dup)
        local.wait()
        return cls(home, nrows, ncols, nranks, t, local)

    def local_nvals(self) -> int:
        return self.local.nvals()

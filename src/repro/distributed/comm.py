"""An in-process, MPI-shaped communicator for the distributed simulation.

The paper's conclusion: "our work will shift to enhancements to the
GraphBLAS to support execution on distributed systems", with
``GrB_Context`` as the scoping mechanism (§IV explicitly lists MPI
communicators among future context resources).  We do not have a
cluster, so per the reproduction's substitution rule we simulate one:
*ranks are threads*, point-to-point channels are queues, and the
collectives (barrier, bcast, allgather, allreduce) are implemented on
top — with **byte and message counters**, because communication volume
is the metric a distributed-GraphBLAS evaluation reports and it is
hardware-independent.

The semantics preserved: SPMD execution, rank-addressed messaging, and
collective synchronization — exactly what a future MPI-backed
implementation would sit on.

Fault tolerance (the §V resilience ladder applied to the wire):

* **Timeouts everywhere** — ``recv`` and every collective wait at most
  ``COMM_TIMEOUT`` seconds (:mod:`repro.internals.config`); a dead or
  wedged peer surfaces as ``GrB_PANIC`` instead of deadlocking the
  process.  A dropped message (fault site ``comm.drop``) therefore
  also ends as a timeout on the receiving side.
* **Injection sites** — ``comm.send`` / ``comm.recv`` /
  ``comm.collective`` / ``comm.barrier`` visit the fault plane inside
  the transient-retry guard, and ``comm.slow`` simulates a straggling
  link at collective entry.
* **Cluster health** — any rank error marks the :class:`Cluster`
  unhealthy; :meth:`Cluster.run_resilient` retries transient failures
  on a revived cluster with backoff and **degrades to single-process
  execution** (the caller's ``local_fallback``) when the cluster stays
  broken, mirroring the engine's parallel→serial degradation.
"""

from __future__ import annotations

import queue
import threading
import time
from dataclasses import dataclass, field
from typing import Any, Callable

import numpy as np

from ..core.errors import ExecutionError, InvalidValueError, PanicError
from ..engine.stats import STATS
from ..faults.plane import is_transient, should_drop
from ..faults.retry import guard
from ..internals import config

__all__ = ["CommStats", "Communicator", "Cluster"]


def _payload_bytes(obj: Any) -> int:
    """Approximate wire size of a message payload."""
    if isinstance(obj, np.ndarray):
        return obj.nbytes
    if isinstance(obj, (bytes, bytearray)):
        return len(obj)
    if isinstance(obj, (list, tuple)):
        return sum(_payload_bytes(x) for x in obj)
    if isinstance(obj, dict):
        return sum(_payload_bytes(v) for v in obj.values())
    return 8  # scalar-ish


def _timeout_panic(what: str, timeout: float) -> PanicError:
    STATS.bump("comm_timeouts")
    exc = PanicError(
        f"{what} timed out after {timeout:g}s — peer rank presumed dead"
    )
    exc.comm_timeout = True
    return exc


@dataclass
class CommStats:
    """Aggregate communication counters for one cluster run."""

    messages: int = 0
    bytes: int = 0
    collectives: int = 0
    drops: int = 0
    timeouts: int = 0
    _lock: threading.Lock = field(default_factory=threading.Lock,
                                  repr=False)

    def record(self, nbytes: int) -> None:
        with self._lock:
            self.messages += 1
            self.bytes += nbytes

    def record_collective(self) -> None:
        with self._lock:
            self.collectives += 1

    def record_drop(self) -> None:
        with self._lock:
            self.drops += 1

    def record_timeout(self) -> None:
        with self._lock:
            self.timeouts += 1

    def snapshot(self) -> dict:
        with self._lock:
            return {
                "messages": self.messages,
                "bytes": self.bytes,
                "collectives": self.collectives,
                "drops": self.drops,
                "timeouts": self.timeouts,
            }


class Communicator:
    """One rank's endpoint: send/recv plus collectives.

    Every blocking entry point takes an optional ``timeout`` (seconds);
    ``None`` means the process-wide ``COMM_TIMEOUT`` config default.
    """

    def __init__(self, rank: int, size: int, shared: "_Shared"):
        self.rank = rank
        self.size = size
        self._shared = shared

    @staticmethod
    def _timeout(timeout: float | None) -> float:
        if timeout is None:
            return float(config.get_option("COMM_TIMEOUT"))
        return float(timeout)

    # -- point to point ------------------------------------------------------

    def send(self, dest: int, payload: Any, tag: int = 0) -> None:
        if not (0 <= dest < self.size):
            raise InvalidValueError(f"rank {dest} out of range")
        guard("comm.send", rank=self.rank, dest=dest)
        self._shared.stats.record(_payload_bytes(payload))
        if should_drop("comm.drop", rank=self.rank, dest=dest):
            # The wire ate it: bytes were spent, nothing arrives.  The
            # receiver's timeout turns this into a PanicError there.
            self._shared.stats.record_drop()
            return
        self._shared.queues[dest].put((self.rank, tag, payload))

    def recv(
        self,
        source: int | None = None,
        tag: int | None = None,
        timeout: float | None = None,
    ) -> Any:
        """Receive the next matching message (simple ordered matching).

        Raises :class:`PanicError` when no matching message arrives
        within the timeout — the dead-rank detector.
        """
        guard("comm.recv", rank=self.rank)
        timeout = self._timeout(timeout)
        stash = self._shared.stashes[self.rank]
        for k, (src, t, payload) in enumerate(stash):
            if (source is None or src == source) and (tag is None or t == tag):
                del stash[k]
                return payload
        deadline = time.monotonic() + timeout
        while True:
            remaining = deadline - time.monotonic()
            try:
                if remaining <= 0:
                    raise queue.Empty
                src, t, payload = self._shared.queues[self.rank].get(
                    timeout=remaining
                )
            except queue.Empty:
                self._shared.stats.record_timeout()
                raise _timeout_panic(
                    f"rank {self.rank}: recv(source={source}, tag={tag})",
                    timeout,
                ) from None
            if (source is None or src == source) and (tag is None or t == tag):
                return payload
            stash.append((src, t, payload))

    # -- collectives ------------------------------------------------------------

    def _sync(self, what: str, timeout: float | None) -> None:
        """One barrier generation with dead-rank detection."""
        timeout = self._timeout(timeout)
        try:
            self._shared.barrier.wait(timeout)
        except threading.BrokenBarrierError:
            self._shared.stats.record_timeout()
            raise _timeout_panic(
                f"rank {self.rank}: {what}", timeout
            ) from None

    def barrier(self, timeout: float | None = None) -> None:
        guard("comm.barrier", rank=self.rank)
        self._shared.stats.record_collective()
        self._sync("barrier", timeout)

    def bcast(self, payload: Any, root: int = 0,
              timeout: float | None = None) -> Any:
        guard("comm.collective", rank=self.rank, op="bcast")
        self._shared.stats.record_collective()
        slot = self._shared.blackboard
        if self.rank == root:
            self._shared.stats.record(_payload_bytes(payload) * (self.size - 1))
            slot["bcast"] = payload
        self._sync("bcast", timeout)
        out = slot["bcast"]
        self._sync("bcast", timeout)
        return out

    def allgather(self, payload: Any, timeout: float | None = None) -> list[Any]:
        """Every rank contributes; every rank gets the full list."""
        guard("comm.collective", rank=self.rank, op="allgather")
        self._shared.stats.record_collective()
        self._shared.stats.record(_payload_bytes(payload) * (self.size - 1))
        slot = self._shared.blackboard.setdefault("allgather", {})
        with self._shared.bb_lock:
            slot[self.rank] = payload
        self._sync("allgather", timeout)
        out = [slot[r] for r in range(self.size)]
        self._sync("allgather", timeout)
        if self.rank == 0:
            slot.clear()
        self._sync("allgather", timeout)
        return out

    def allreduce(self, value: Any, op: Callable[[Any, Any], Any],
                  timeout: float | None = None) -> Any:
        parts = self.allgather(value, timeout=timeout)
        acc = parts[0]
        for p in parts[1:]:
            acc = op(acc, p)
        return acc


class _Shared:
    def __init__(self, size: int, stats: CommStats | None = None):
        self.queues = [queue.Queue() for _ in range(size)]
        self.stashes: list[list] = [[] for _ in range(size)]
        self.barrier = threading.Barrier(size)
        self.blackboard: dict = {}
        self.bb_lock = threading.Lock()
        self.stats = stats if stats is not None else CommStats()


class Cluster:
    """An SPMD launcher: ``cluster.run(fn)`` calls ``fn(comm)`` per rank.

    The simulated analogue of ``mpiexec -n <size>``; exceptions raised
    on any rank propagate to the caller (with every rank joined first).
    A failed run marks the cluster *unhealthy*; :meth:`revive` rebuilds
    the wire state (queues, barrier, blackboard — counters survive) and
    :meth:`run_resilient` automates retry + single-process degradation.
    """

    def __init__(self, size: int):
        if size < 1:
            raise InvalidValueError("cluster size must be >= 1")
        self.size = size
        self._shared = _Shared(size)
        self._healthy = True

    @property
    def stats(self) -> CommStats:
        return self._shared.stats

    @property
    def healthy(self) -> bool:
        """False once any rank of a run raised (until :meth:`revive`)."""
        return self._healthy

    def revive(self) -> None:
        """Rebuild the wire state after a failure (fresh queues/barrier;
        communication counters carry over)."""
        self._shared = _Shared(self.size, stats=self._shared.stats)
        self._healthy = True

    def run(self, fn: Callable[[Communicator], Any]) -> list[Any]:
        """Run ``fn`` on every rank; returns per-rank results."""
        results: list[Any] = [None] * self.size
        errors: list[BaseException] = []

        def worker(rank: int) -> None:
            comm = Communicator(rank, self.size, self._shared)
            try:
                results[rank] = fn(comm)
            except BaseException as exc:  # noqa: BLE001 - rethrown below
                errors.append(exc)
                # Unblock peers stuck in a collective or a recv.
                self._shared.barrier.abort()

        threads = [
            threading.Thread(target=worker, args=(r,), name=f"rank{r}")
            for r in range(self.size)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        self._shared.barrier.reset()
        if errors:
            self._healthy = False
            # Prefer the root cause over the timeout PanicErrors the
            # abort provoked on peer ranks.
            primary = [e for e in errors
                       if not getattr(e, "comm_timeout", False)]
            raise (primary or errors)[0]
        return results

    def run_resilient(
        self,
        fn: Callable[[Communicator], Any],
        local_fallback: Callable[[], Any] | None = None,
    ) -> Any:
        """``run(fn)`` with the full resilience ladder.

        Transient failures retry on a revived cluster with exponential
        backoff (``RETRY_MAX`` / ``RETRY_BASE_DELAY``); a persistent
        failure — or an already-unhealthy cluster — degrades to
        ``local_fallback()`` (single-process execution) when one is
        provided, else propagates.
        """
        def degrade(exc: BaseException | None) -> Any:
            if local_fallback is None:
                if exc is not None:
                    raise exc
                raise PanicError(
                    "cluster is unhealthy and no local fallback was given"
                )
            STATS.bump("degraded_local")
            return local_fallback()

        if not self._healthy:
            return degrade(None)
        attempt = 0
        while True:
            try:
                result = self.run(fn)
            except ExecutionError as exc:
                if (not is_transient(exc)
                        or attempt >= config.get_option("RETRY_MAX")):
                    if is_transient(exc):
                        STATS.bump("retries_exhausted")
                    return degrade(exc)
                time.sleep(
                    config.get_option("RETRY_BASE_DELAY") * (2 ** attempt)
                )
                attempt += 1
                STATS.bump("retries")
                self.revive()
                continue
            if attempt:
                STATS.bump("retries_recovered")
            return result

"""An in-process, MPI-shaped communicator for the distributed simulation.

The paper's conclusion: "our work will shift to enhancements to the
GraphBLAS to support execution on distributed systems", with
``GrB_Context`` as the scoping mechanism (§IV explicitly lists MPI
communicators among future context resources).  We do not have a
cluster, so per the reproduction's substitution rule we simulate one:
*ranks are threads*, point-to-point channels are queues, and the
collectives (barrier, bcast, allgather, allreduce) are implemented on
top — with **byte and message counters**, because communication volume
is the metric a distributed-GraphBLAS evaluation reports and it is
hardware-independent.

The semantics preserved: SPMD execution, rank-addressed messaging, and
collective synchronization — exactly what a future MPI-backed
implementation would sit on.
"""

from __future__ import annotations

import queue
import threading
from dataclasses import dataclass, field
from typing import Any, Callable

import numpy as np

from ..core.errors import InvalidValueError

__all__ = ["CommStats", "Communicator", "Cluster"]


def _payload_bytes(obj: Any) -> int:
    """Approximate wire size of a message payload."""
    if isinstance(obj, np.ndarray):
        return obj.nbytes
    if isinstance(obj, (bytes, bytearray)):
        return len(obj)
    if isinstance(obj, (list, tuple)):
        return sum(_payload_bytes(x) for x in obj)
    if isinstance(obj, dict):
        return sum(_payload_bytes(v) for v in obj.values())
    return 8  # scalar-ish


@dataclass
class CommStats:
    """Aggregate communication counters for one cluster run."""

    messages: int = 0
    bytes: int = 0
    collectives: int = 0
    _lock: threading.Lock = field(default_factory=threading.Lock,
                                  repr=False)

    def record(self, nbytes: int) -> None:
        with self._lock:
            self.messages += 1
            self.bytes += nbytes

    def record_collective(self) -> None:
        with self._lock:
            self.collectives += 1

    def snapshot(self) -> dict:
        with self._lock:
            return {
                "messages": self.messages,
                "bytes": self.bytes,
                "collectives": self.collectives,
            }


class Communicator:
    """One rank's endpoint: send/recv plus collectives."""

    def __init__(self, rank: int, size: int, shared: "_Shared"):
        self.rank = rank
        self.size = size
        self._shared = shared

    # -- point to point ------------------------------------------------------

    def send(self, dest: int, payload: Any, tag: int = 0) -> None:
        if not (0 <= dest < self.size):
            raise InvalidValueError(f"rank {dest} out of range")
        self._shared.stats.record(_payload_bytes(payload))
        self._shared.queues[dest].put((self.rank, tag, payload))

    def recv(self, source: int | None = None, tag: int | None = None) -> Any:
        """Receive the next matching message (simple ordered matching)."""
        stash = self._shared.stashes[self.rank]
        for k, (src, t, payload) in enumerate(stash):
            if (source is None or src == source) and (tag is None or t == tag):
                del stash[k]
                return payload
        while True:
            src, t, payload = self._shared.queues[self.rank].get()
            if (source is None or src == source) and (tag is None or t == tag):
                return payload
            stash.append((src, t, payload))

    # -- collectives ------------------------------------------------------------

    def barrier(self) -> None:
        self._shared.stats.record_collective()
        self._shared.barrier.wait()

    def bcast(self, payload: Any, root: int = 0) -> Any:
        self._shared.stats.record_collective()
        slot = self._shared.blackboard
        if self.rank == root:
            self._shared.stats.record(_payload_bytes(payload) * (self.size - 1))
            slot["bcast"] = payload
        self._shared.barrier.wait()
        out = slot["bcast"]
        self._shared.barrier.wait()
        return out

    def allgather(self, payload: Any) -> list[Any]:
        """Every rank contributes; every rank gets the full list."""
        self._shared.stats.record_collective()
        self._shared.stats.record(_payload_bytes(payload) * (self.size - 1))
        slot = self._shared.blackboard.setdefault("allgather", {})
        with self._shared.bb_lock:
            slot[self.rank] = payload
        self._shared.barrier.wait()
        out = [slot[r] for r in range(self.size)]
        self._shared.barrier.wait()
        if self.rank == 0:
            slot.clear()
        self._shared.barrier.wait()
        return out

    def allreduce(self, value: Any, op: Callable[[Any, Any], Any]) -> Any:
        parts = self.allgather(value)
        acc = parts[0]
        for p in parts[1:]:
            acc = op(acc, p)
        return acc


class _Shared:
    def __init__(self, size: int):
        self.queues = [queue.Queue() for _ in range(size)]
        self.stashes: list[list] = [[] for _ in range(size)]
        self.barrier = threading.Barrier(size)
        self.blackboard: dict = {}
        self.bb_lock = threading.Lock()
        self.stats = CommStats()


class Cluster:
    """An SPMD launcher: ``cluster.run(fn)`` calls ``fn(comm)`` per rank.

    The simulated analogue of ``mpiexec -n <size>``; exceptions raised
    on any rank propagate to the caller (with every rank joined first).
    """

    def __init__(self, size: int):
        if size < 1:
            raise InvalidValueError("cluster size must be >= 1")
        self.size = size
        self._shared = _Shared(size)

    @property
    def stats(self) -> CommStats:
        return self._shared.stats

    def run(self, fn: Callable[[Communicator], Any]) -> list[Any]:
        """Run ``fn`` on every rank; returns per-rank results."""
        results: list[Any] = [None] * self.size
        errors: list[BaseException] = []

        def worker(rank: int) -> None:
            comm = Communicator(rank, self.size, self._shared)
            try:
                results[rank] = fn(comm)
            except BaseException as exc:  # noqa: BLE001 - rethrown below
                errors.append(exc)
                # Unblock peers stuck in a collective.
                self._shared.barrier.abort()

        threads = [
            threading.Thread(target=worker, args=(r,), name=f"rank{r}")
            for r in range(self.size)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        self._shared.barrier.reset()
        if errors:
            raise errors[0]
        return results

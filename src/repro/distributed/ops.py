"""Distributed operations over row-block matrices (simulated cluster).

The communication patterns are the textbook ones a future
MPI-backed GraphBLAS would use on a 1-D layout:

* ``dist_mxv`` — allgather the input vector, multiply locally
  (communication O(n) per rank, the classic SpMV trade).
* ``dist_vxm`` — multiply locally against the local row block,
  allreduce the partial output vectors with the semiring's ⊕.
* ``dist_mxm`` — broadcast B (replicated-B SUMMA degenerate case for a
  1-D layout), multiply locally; each rank keeps its C row block.
* ``dist_bfs_levels`` — level-synchronous BFS with an allgathered
  frontier per step.

Each takes the rank's :class:`~repro.distributed.comm.Communicator`
explicitly, SPMD style.
"""

from __future__ import annotations

import numpy as np

from ..core import types as T
from ..core.matrix import Matrix
from ..core.semiring import LOR_LAND_SEMIRING_BOOL, Semiring
from ..core.vector import Vector
from ..ops.mxm import mxm, mxv
from .comm import Communicator
from .dist import DistMatrix, DistVector

__all__ = ["dist_mxv", "dist_vxm", "dist_mxm", "dist_bfs_levels"]


def _gather_vector(comm: Communicator, u: DistVector) -> Vector:
    """Allgather a distributed vector into a full local copy."""
    idx, vals = u.local_tuples()
    parts = comm.allgather((idx, vals))
    all_idx = np.concatenate([p[0] for p in parts])
    all_vals = np.concatenate([p[1] for p in parts])
    full = Vector.new(u.type, u.size, u.home.context)
    if len(all_idx):
        full.build(all_idx, all_vals)
    full.wait()
    return full


def dist_mxv(
    comm: Communicator,
    a: DistMatrix,
    u: DistVector,
    semiring: Semiring,
) -> DistVector:
    """w = A ⊕.⊗ u with w distributed like A's rows."""
    full_u = _gather_vector(comm, u)
    lo, hi = a.row_range
    w_local = Vector.new(semiring.out_type, hi - lo, a.home.context)
    mxv(w_local, None, None, semiring, a.local, full_u)
    w_local.wait()
    return DistVector(a.home, a.nrows, a.nranks, semiring.out_type, w_local)


def dist_vxm(
    comm: Communicator,
    u: DistVector,
    a: DistMatrix,
    semiring: Semiring,
) -> DistVector:
    """w' = u' ⊕.⊗ A; partials allreduced with the semiring's ⊕."""
    from ..ops.mxm import vxm as _vxm

    # Local contribution: my u block against my row block.
    partial = Vector.new(semiring.out_type, a.ncols, a.home.context)
    lo, hi = a.row_range
    u_idx, u_vals = u.local.extract_tuples()
    u_as_rows = Vector.new(u.type, a.local.nrows, a.home.context)
    if len(u_idx):
        u_as_rows.build(u_idx, u_vals)
    u_as_rows.wait()
    _vxm(partial, None, None, semiring, u_as_rows, a.local)
    partial.wait()

    idx, vals = partial.extract_tuples()
    parts = comm.allgather((idx, vals))
    merged: dict[int, object] = {}
    add = semiring.add.op.scalar
    for p_idx, p_vals in parts:
        for i, v in zip(p_idx, p_vals):
            i = int(i)
            merged[i] = add(merged[i], v) if i in merged else v
    # Keep my conformal block of the result.
    out = DistVector(u.home, a.ncols, a.nranks, semiring.out_type)
    blo, bhi = out.range
    keys = sorted(k for k in merged if blo <= k < bhi)
    local = Vector.new(semiring.out_type, bhi - blo, u.home.context)
    if keys:
        local.build([k - blo for k in keys], [merged[k] for k in keys])
    local.wait()
    return DistVector(u.home, a.ncols, a.nranks, semiring.out_type, local)


def dist_mxm(
    comm: Communicator,
    a: DistMatrix,
    b: DistMatrix,
    semiring: Semiring,
) -> DistMatrix:
    """C = A ⊕.⊗ B with C row-distributed like A (B gathered)."""
    rows, cols, vals = b.local.extract_tuples()
    lo_b, _ = b.row_range
    parts = comm.allgather((rows + lo_b, cols, vals))
    full_b = Matrix.new(b.type, b.nrows, b.ncols, a.home.context)
    all_rows = np.concatenate([p[0] for p in parts])
    all_cols = np.concatenate([p[1] for p in parts])
    all_vals = np.concatenate([p[2] for p in parts])
    if len(all_rows):
        full_b.build(all_rows, all_cols, all_vals)
    full_b.wait()

    lo, hi = a.row_range
    c_local = Matrix.new(semiring.out_type, hi - lo, b.ncols, a.home.context)
    mxm(c_local, None, None, semiring, a.local, full_b)
    c_local.wait()
    return DistMatrix(a.home, a.nrows, b.ncols, a.nranks,
                      semiring.out_type, c_local)


def dist_bfs_levels(
    comm: Communicator,
    a: DistMatrix,
    source: int,
) -> DistVector:
    """Level-synchronous distributed BFS over the boolean semiring.

    Each step: allgather the frontier, expand against the local row
    block of Aᵀ (i.e. mxv on the local rows), mask out visited, next.
    Communication per step is O(frontier), the 1-D BFS pattern.
    """
    from ..ops.mxm import vxm as _vxm

    lo, hi = a.row_range
    frontier_global: np.ndarray = np.array([source], dtype=np.int64)
    visited = np.zeros(a.nrows, dtype=bool)
    visited[source] = True
    depth = 0
    level_entries: dict[int, int] = {source: 0} if lo <= source < hi else {}
    while True:
        # Successors of the frontier vertices that live in my row block:
        # w' = f'_local ⊕.⊗ A_local  (columns are global).
        mine = frontier_global[(frontier_global >= lo) & (frontier_global < hi)]
        f_local = Vector.new(T.BOOL, hi - lo, a.home.context)
        if len(mine):
            f_local.build(mine - lo, np.ones(len(mine), bool))
        f_local.wait()
        succ_local = Vector.new(T.BOOL, a.ncols, a.home.context)
        _vxm(succ_local, None, None, LOR_LAND_SEMIRING_BOOL, f_local, a.local)
        idx, _ = succ_local.extract_tuples()
        fresh = idx[~visited[idx]] if len(idx) else idx
        parts = comm.allgather(fresh)
        next_frontier = np.unique(np.concatenate(parts)) if parts else \
            np.empty(0, dtype=np.int64)
        depth += 1
        if len(next_frontier) == 0:
            break
        visited[next_frontier] = True
        for v in next_frontier:
            if lo <= v < hi:
                level_entries[int(v)] = depth
        frontier_global = next_frontier

    local = Vector.new(T.INT64, hi - lo, a.home.context)
    if level_entries:
        keys = sorted(level_entries)
        local.build([k - lo for k in keys], [level_entries[k] for k in keys])
    local.wait()
    return DistVector(a.home, a.nrows, a.nranks, T.INT64, local)

"""Distributed-execution simulation (the paper's stated next step).

§IV designs ``GrB_Context`` "to prepare for a future version of the
GraphBLAS that supports distributed computing" and the conclusion
commits to it.  This package simulates that future on one machine —
ranks as threads, an MPI-shaped :class:`~.comm.Communicator` with
byte/message accounting, row-block-distributed containers whose local
blocks live in per-rank nested contexts, and the canonical 1-D
distributed operations (mxv / vxm / mxm / BFS).

See DESIGN.md's substitution table: real MPI hardware → in-process
ranks; wall-clock is not the reproduction target here, communication
*volume* and semantic equivalence with single-node execution are.
"""

from .comm import Cluster, Communicator, CommStats
from .dist import DistMatrix, DistVector, RankHome, block_bounds
from .ops import dist_bfs_levels, dist_mxm, dist_mxv, dist_vxm

__all__ = [
    "Cluster",
    "Communicator",
    "CommStats",
    "DistMatrix",
    "DistVector",
    "RankHome",
    "block_bounds",
    "dist_bfs_levels",
    "dist_mxm",
    "dist_mxv",
    "dist_vxm",
]

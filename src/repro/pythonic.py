"""A Pythonic veneer over the C-shaped API (the pygraphblas [12] style).

The paper's reference list includes pygraphblas, "a Python API for
GraphBLAS and LAGraph" — idiomatic operator overloading layered on the
spec operations.  This module provides that layer *on top of* the
faithful API (never bypassing it), so Python users can write

    with semiring(MIN_PLUS_SEMIRING[FP64]):
        d = d @ A | d            # one SSSP relaxation

while every expression lowers onto the same ``ops`` entry points the
C-style programs use.

Surface:

* ``PM(A)`` / ``PV(v)`` wrap a Matrix/Vector (zero copy — same object).
* ``A @ B``, ``A @ v``, ``v @ A`` — mxm/mxv/vxm under the ambient
  semiring (default PLUS_TIMES of the promoted domain).
* ``A + B`` (eWiseAdd), ``A * B`` (eWiseMult), ``A | B`` (eWiseAdd with
  the ambient semiring's ⊕), unary ``-A`` (apply AINV), ``abs(A)``.
* ``A.T`` — transposed result (materialized).
* ``A[i, j]`` / ``v[i]`` element reads (``KeyError``-free: returns
  ``None`` when absent); ``A[i, j] = x`` writes; ``del A[i, j]``.
* ``A[I, J]`` extract; ``A[I, J] = B`` assign (slices and lists).
* ``A.select(op, s)``, ``A.apply(op[, s])``, ``A.reduce(monoid)``.
* ``semiring(sr)`` — context manager setting the ambient semiring
  (thread-local, nestable).
"""

from __future__ import annotations

import threading
from typing import Any

import numpy as np

from .core import types as _t
from .core.binaryop import BinaryOp
from .core.errors import NoValue
from .core.indexunaryop import IndexUnaryOp
from .core.matrix import Matrix
from .core.monoid import Monoid
from .core.semiring import PLUS_TIMES_SEMIRING, Semiring
from .core.types import Type, common_type
from .core.unaryop import ABS, AINV
from .core.vector import Vector
from .ops.apply import apply as _apply
from .ops.assign import assign as _assign
from .ops.ewise import ewise_add as _ewise_add
from .ops.ewise import ewise_mult as _ewise_mult
from .ops.extract import extract as _extract
from .ops.mxm import mxm as _mxm
from .ops.mxm import mxv as _mxv
from .ops.mxm import vxm as _vxm
from .ops.reduce import reduce_scalar as _reduce_scalar
from .ops.select import select as _select
from .ops.transpose import transpose as _transpose

__all__ = ["PM", "PV", "semiring", "current_semiring"]

_ambient = threading.local()


class semiring:
    """Context manager: set the ambient semiring for ``@`` and ``|``."""

    def __init__(self, sr: Semiring):
        self.sr = sr

    def __enter__(self) -> "semiring":
        stack = getattr(_ambient, "stack", None)
        if stack is None:
            stack = _ambient.stack = []
        stack.append(self.sr)
        return self

    def __exit__(self, *exc) -> bool:
        _ambient.stack.pop()
        return False


def current_semiring(t: Type) -> Semiring:
    """The ambient semiring, defaulting to PLUS_TIMES over ``t``."""
    stack = getattr(_ambient, "stack", None)
    if stack:
        return stack[-1]
    if t.is_bool:
        from .core.semiring import LOR_LAND_SEMIRING_BOOL
        return LOR_LAND_SEMIRING_BOOL
    return PLUS_TIMES_SEMIRING[t]


def _promote(a: Type, b: Type) -> Type:
    return common_type(a, b)


def _resolve_indices(key, limit: int):
    """Slice/list/int → (index list or None-for-ALL, output length)."""
    if isinstance(key, slice):
        if key == slice(None):
            return None, limit
        idx = np.arange(*key.indices(limit), dtype=np.int64)
        return idx, len(idx)
    if isinstance(key, (list, np.ndarray)):
        idx = np.asarray(key, dtype=np.int64)
        return idx, len(idx)
    raise TypeError(f"unsupported index {key!r}")


class PV:
    """Pythonic wrapper around a :class:`Vector` (shares the object)."""

    __slots__ = ("v",)

    def __init__(self, v: Vector):
        self.v = v

    # -- construction helpers ------------------------------------------------

    @classmethod
    def new(cls, t: Type, size: int) -> "PV":
        return cls(Vector.new(t, size))

    @classmethod
    def from_dict(cls, d: dict, size: int, t: Type = _t.FP64) -> "PV":
        v = Vector.new(t, size)
        if d:
            v.build(list(d.keys()), list(d.values()))
        return cls(v)

    # -- introspection ---------------------------------------------------------

    @property
    def size(self) -> int:
        return self.v.size

    @property
    def type(self) -> Type:
        return self.v.type

    @property
    def nvals(self) -> int:
        return self.v.nvals()

    def to_dict(self) -> dict:
        return self.v.to_dict()

    def __len__(self) -> int:
        return self.v.size

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"PV({self.v!r})"

    # -- element / slice access -----------------------------------------------

    def __getitem__(self, key):
        if isinstance(key, (int, np.integer)):
            try:
                return self.v.extract_element(int(key))
            except NoValue:
                return None
        idx, n = _resolve_indices(key, self.v.size)
        out = Vector.new(self.v.type, n, self.v.context)
        _extract(out, None, None, self.v, idx)
        return PV(out)

    def __setitem__(self, key, value) -> None:
        if isinstance(key, (int, np.integer)):
            self.v.set_element(value, int(key))
            return
        idx, n = _resolve_indices(key, self.v.size)
        if isinstance(value, PV):
            _assign(self.v, None, None, value.v, idx)
        else:
            _assign(self.v, None, None, value, idx)

    def __delitem__(self, key) -> None:
        self.v.remove_element(int(key))

    # -- algebra -------------------------------------------------------------

    def __matmul__(self, other):
        if isinstance(other, PM):
            sr = current_semiring(_promote(self.type, other.type))
            out = Vector.new(sr.out_type, other.m.ncols, self.v.context)
            _vxm(out, None, None, sr, self.v, other.m)
            return PV(out)
        return NotImplemented

    def _ewise(self, other: "PV", op: BinaryOp) -> "PV":
        out = Vector.new(op.out_type, self.v.size, self.v.context)
        _ewise_add(out, None, None, op, self.v, other.v)
        return PV(out)

    def __add__(self, other):
        if isinstance(other, PV):
            from .core.binaryop import PLUS
            return self._ewise(other, PLUS[_promote(self.type, other.type)])
        return NotImplemented

    def __or__(self, other):
        if isinstance(other, PV):
            sr = current_semiring(_promote(self.type, other.type))
            return self._ewise(other, sr.add.op)
        return NotImplemented

    def __mul__(self, other):
        if isinstance(other, PV):
            from .core.binaryop import TIMES
            t = _promote(self.type, other.type)
            out = Vector.new(t, self.v.size, self.v.context)
            _ewise_mult(out, None, None, TIMES[t], self.v, other.v)
            return PV(out)
        if isinstance(other, (int, float, np.number)):
            from .core.binaryop import TIMES
            out = Vector.new(self.type, self.v.size, self.v.context)
            _apply(out, None, None, TIMES[self.type], self.v, other)
            return PV(out)
        return NotImplemented

    __rmul__ = __mul__

    def __neg__(self) -> "PV":
        out = Vector.new(self.type, self.v.size, self.v.context)
        _apply(out, None, None, AINV[self.type], self.v)
        return PV(out)

    def __abs__(self) -> "PV":
        out = Vector.new(self.type, self.v.size, self.v.context)
        _apply(out, None, None, ABS[self.type], self.v)
        return PV(out)

    # -- named operations -----------------------------------------------------

    def select(self, op: IndexUnaryOp, s: Any = 0) -> "PV":
        out = Vector.new(self.type, self.v.size, self.v.context)
        _select(out, None, None, op, self.v, s)
        return PV(out)

    def apply(self, op, s: Any = None) -> "PV":
        out_t = op.out_type
        out = Vector.new(out_t, self.v.size, self.v.context)
        if s is None:
            _apply(out, None, None, op, self.v)
        else:
            _apply(out, None, None, op, self.v, s)
        return PV(out)

    def reduce(self, monoid: Monoid) -> Any:
        return _reduce_scalar(monoid, self.v)

    def wait(self) -> "PV":
        self.v.wait()
        return self


class PM:
    """Pythonic wrapper around a :class:`Matrix` (shares the object)."""

    __slots__ = ("m",)

    def __init__(self, m: Matrix):
        self.m = m

    # -- construction ----------------------------------------------------------

    @classmethod
    def new(cls, t: Type, nrows: int, ncols: int) -> "PM":
        return cls(Matrix.new(t, nrows, ncols))

    @classmethod
    def from_dict(cls, d: dict, nrows: int, ncols: int,
                  t: Type = _t.FP64) -> "PM":
        m = Matrix.new(t, nrows, ncols)
        if d:
            rows, cols = zip(*d.keys())
            m.build(list(rows), list(cols), list(d.values()))
        return cls(m)

    # -- introspection ----------------------------------------------------------

    @property
    def shape(self) -> tuple[int, int]:
        return self.m.shape

    @property
    def type(self) -> Type:
        return self.m.type

    @property
    def nvals(self) -> int:
        return self.m.nvals()

    def to_dict(self) -> dict:
        return self.m.to_dict()

    def to_dense(self) -> np.ndarray:
        return self.m.to_dense()

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"PM({self.m!r})"

    # -- element / slice access ----------------------------------------------------

    def __getitem__(self, key):
        if not (isinstance(key, tuple) and len(key) == 2):
            raise TypeError("matrix indexing needs [rows, cols]")
        ki, kj = key
        if isinstance(ki, (int, np.integer)) and isinstance(kj, (int, np.integer)):
            try:
                return self.m.extract_element(int(ki), int(kj))
            except NoValue:
                return None
        if isinstance(ki, (int, np.integer)):
            # one row as a vector: transpose trick per the spec idiom
            from .core.descriptor import DESC_T0
            out = Vector.new(self.type, self.m.ncols, self.m.context)
            _extract(out, None, None, self.m, None, int(ki), desc=DESC_T0)
            return PV(out)
        if isinstance(kj, (int, np.integer)):
            out_len = _resolve_indices(ki, self.m.nrows)[1]
            idx = _resolve_indices(ki, self.m.nrows)[0]
            out = Vector.new(self.type, out_len, self.m.context)
            _extract(out, None, None, self.m, idx, int(kj))
            return PV(out)
        ridx, nr = _resolve_indices(ki, self.m.nrows)
        cidx, nc = _resolve_indices(kj, self.m.ncols)
        out = Matrix.new(self.type, nr, nc, self.m.context)
        _extract(out, None, None, self.m, ridx, cidx)
        return PM(out)

    def __setitem__(self, key, value) -> None:
        ki, kj = key
        if isinstance(ki, (int, np.integer)) and isinstance(kj, (int, np.integer)):
            self.m.set_element(value, int(ki), int(kj))
            return
        ridx, _ = _resolve_indices(ki, self.m.nrows)
        cidx, _ = _resolve_indices(kj, self.m.ncols)
        if isinstance(value, PM):
            _assign(self.m, None, None, value.m, ridx, cidx)
        else:
            _assign(self.m, None, None, value, ridx, cidx)

    def __delitem__(self, key) -> None:
        ki, kj = key
        self.m.remove_element(int(ki), int(kj))

    # -- algebra ---------------------------------------------------------------

    @property
    def T(self) -> "PM":
        out = Matrix.new(self.type, self.m.ncols, self.m.nrows,
                         self.m.context)
        _transpose(out, None, None, self.m)
        return PM(out)

    def __matmul__(self, other):
        if isinstance(other, PM):
            sr = current_semiring(_promote(self.type, other.type))
            out = Matrix.new(sr.out_type, self.m.nrows, other.m.ncols,
                             self.m.context)
            _mxm(out, None, None, sr, self.m, other.m)
            return PM(out)
        if isinstance(other, PV):
            sr = current_semiring(_promote(self.type, other.type))
            out = Vector.new(sr.out_type, self.m.nrows, self.m.context)
            _mxv(out, None, None, sr, self.m, other.v)
            return PV(out)
        return NotImplemented

    def _ewise(self, other: "PM", op: BinaryOp, *, union: bool) -> "PM":
        out = Matrix.new(op.out_type, self.m.nrows, self.m.ncols,
                         self.m.context)
        fn = _ewise_add if union else _ewise_mult
        fn(out, None, None, op, self.m, other.m)
        return PM(out)

    def __add__(self, other):
        if isinstance(other, PM):
            from .core.binaryop import PLUS
            return self._ewise(other, PLUS[_promote(self.type, other.type)],
                               union=True)
        return NotImplemented

    def __or__(self, other):
        if isinstance(other, PM):
            sr = current_semiring(_promote(self.type, other.type))
            return self._ewise(other, sr.add.op, union=True)
        return NotImplemented

    def __mul__(self, other):
        if isinstance(other, PM):
            from .core.binaryop import TIMES
            return self._ewise(other, TIMES[_promote(self.type, other.type)],
                               union=False)
        if isinstance(other, (int, float, np.number)):
            from .core.binaryop import TIMES
            out = Matrix.new(self.type, self.m.nrows, self.m.ncols,
                             self.m.context)
            _apply(out, None, None, TIMES[self.type], self.m, other)
            return PM(out)
        return NotImplemented

    __rmul__ = __mul__

    def __neg__(self) -> "PM":
        out = Matrix.new(self.type, self.m.nrows, self.m.ncols,
                         self.m.context)
        _apply(out, None, None, AINV[self.type], self.m)
        return PM(out)

    def __abs__(self) -> "PM":
        out = Matrix.new(self.type, self.m.nrows, self.m.ncols,
                         self.m.context)
        _apply(out, None, None, ABS[self.type], self.m)
        return PM(out)

    # -- named operations ---------------------------------------------------------

    def select(self, op: IndexUnaryOp, s: Any = 0) -> "PM":
        out = Matrix.new(self.type, self.m.nrows, self.m.ncols,
                         self.m.context)
        _select(out, None, None, op, self.m, s)
        return PM(out)

    def apply(self, op, s: Any = None) -> "PM":
        out = Matrix.new(op.out_type, self.m.nrows, self.m.ncols,
                         self.m.context)
        if s is None:
            _apply(out, None, None, op, self.m)
        else:
            _apply(out, None, None, op, self.m, s)
        return PM(out)

    def reduce(self, monoid: Monoid) -> Any:
        return _reduce_scalar(monoid, self.m)

    def wait(self) -> "PM":
        self.m.wait()
        return self

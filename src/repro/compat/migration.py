"""The 1.X → 2.0 backwards-compatibility breaks, documented and shimmed.

The paper calls 2.0 a *major* release because a small number of changes
violate backwards compatibility.  This module records each break as
data (so tests can assert the list is honest) and provides shims that
emulate the 1.X behaviour on top of the 2.0 implementation where that
is possible.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Iterable

from ..core.monoid import Monoid
from ..core.sequence import OpaqueObject
from ..core.context import WaitMode

__all__ = ["OneXBehaviour", "incompatibilities", "INCOMPATIBILITIES"]


@dataclass(frozen=True)
class OneXBehaviour:
    """One backwards-compatibility break between 1.X and 2.0."""

    area: str
    onex: str
    twozero: str
    paper_section: str


INCOMPATIBILITIES: tuple[OneXBehaviour, ...] = (
    OneXBehaviour(
        area="wait",
        onex="GrB_wait(void) completed every object in the program",
        twozero="GrB_wait(obj, GrB_COMPLETE | GrB_MATERIALIZE) is per-object "
        "and takes a wait mode",
        paper_section="III / V",
    ),
    OneXBehaviour(
        area="error model",
        onex="GrB_error() returned a global string for the last error on "
        "the calling thread",
        twozero="GrB_error(&str, obj) is per-object and thread safe; "
        "execution errors may be deferred until a materializing wait",
        paper_section="V",
    ),
    OneXBehaviour(
        area="build dup",
        onex="the dup binary operator was a required argument of build",
        twozero="dup is optional; GrB_NULL dup makes duplicate indices an "
        "execution error",
        paper_section="IX",
    ),
    OneXBehaviour(
        area="enumerations",
        onex="enum members had unspecified values (opaque)",
        twozero="every spec enumeration fixes explicit values so programs "
        "link against any conforming library",
        paper_section="IX",
    ),
    OneXBehaviour(
        area="reduce to scalar",
        onex="reducing an empty container returned the monoid identity "
        "into a typed output",
        twozero="the GrB_Scalar variant returns an *empty* scalar, and a "
        "plain associative BinaryOp is accepted as the reducer",
        paper_section="VI",
    ),
    OneXBehaviour(
        area="constructors",
        onex="GrB_Matrix_new / GrB_Vector_new took no context",
        twozero="constructors take an optional GrB_Context; all objects in "
        "a method call must share a context",
        paper_section="IV",
    ),
    OneXBehaviour(
        area="multithreading",
        onex="calling GraphBLAS from multiple threads was unspecified",
        twozero="implementations must be thread safe; cross-thread sharing "
        "requires completion plus a host-language synchronized-with edge",
        paper_section="III",
    ),
)


def incompatibilities() -> tuple[OneXBehaviour, ...]:
    """The documented 1.X → 2.0 breaks (stable, test-asserted)."""
    return INCOMPATIBILITIES


def wait_all_1x(objects: Iterable[OpaqueObject]) -> None:
    """Emulate 1.X ``GrB_wait(void)`` over an explicit object set.

    2.0 removed the program-global wait; the closest faithful shim
    materializes every object the caller still holds.
    """
    for obj in objects:
        obj.wait(WaitMode.MATERIALIZE)


def reduce_scalar_1x(monoid: Monoid, container: Any) -> Any:
    """1.X reduce-to-scalar: empty containers yield the monoid identity."""
    from ..ops.reduce import reduce_scalar

    return reduce_scalar(monoid, container)

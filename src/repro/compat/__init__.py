"""GraphBLAS 1.X compatibility idioms and migration helpers.

Two roles:

* :mod:`.onex` implements the 1.X-era *workarounds* for index-aware
  computation that §II of the paper uses to motivate GraphBLAS 2.0 —
  packing indices into the values array and unpacking them with
  user-defined operators, or round-tripping through
  extractTuples/filter/build.  These are the baselines the motivation
  benchmark (``benchmarks/bench_motivation_indices.py``) measures
  against the 2.0 ``select``/``apply``-with-``IndexUnaryOp`` path.
* :mod:`.migration` documents and shims the backwards-compatibility
  breaks that make 2.0 a major release.
"""

from .migration import OneXBehaviour, incompatibilities
from .onex import (
    apply_colindex_packed_1x,
    apply_rowindex_packed_1x,
    extract_filter_build_select,
    pack_index_matrix,
    select_triu_value_packed_1x,
    unpack_index_matrix,
)

__all__ = [
    "OneXBehaviour",
    "incompatibilities",
    "pack_index_matrix",
    "unpack_index_matrix",
    "select_triu_value_packed_1x",
    "apply_colindex_packed_1x",
    "apply_rowindex_packed_1x",
    "extract_filter_build_select",
]

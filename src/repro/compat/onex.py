"""GraphBLAS 1.X idioms for index-aware computation (§II baselines).

Before 2.0, operators and semirings could not see element indices.  The
paper (§II): *"Whenever a graph algorithm needs indices, those index
values were stored in the values array.  During the computation, these
index values were unpacked from the values array.  Clearly this is
inefficient in terms of storage and bandwidth as the same information
is stored and streamed twice … More importantly … it requires
user-defined operators and semirings just to be able to unpack the
index values … because of a function pointer call required for each
scalar operation."*

This module implements exactly that pattern so it can be measured:

* :func:`pack_index_matrix` rebuilds A with values ``(i, j, a_ij)`` —
  the doubled storage/bandwidth;
* the ``*_packed_1x`` operations run a **user-defined operator per
  stored element** to unpack and compute — the function-pointer cost;
* :func:`extract_filter_build_select` is the other 1.X workaround:
  round-trip the data out of the opaque object, filter in user code,
  and rebuild.

Equivalent 2.0 one-liners: ``select(C, …, TRIU/VALUEGT, A, s)`` and
``apply(C, …, COLINDEX_INT64, A, s)``.
"""

from __future__ import annotations

from typing import Any

import numpy as np

from ..core import types as _t
from ..core.context import Context
from ..core.indexunaryop import IndexUnaryOp
from ..core.matrix import Matrix
from ..core.types import Type
from ..core.unaryop import UnaryOp
from ..ops.apply import apply as _apply
from ..ops.select import select as _select

__all__ = [
    "PACKED_TYPE",
    "pack_index_matrix",
    "unpack_index_matrix",
    "select_triu_value_packed_1x",
    "apply_colindex_packed_1x",
    "apply_rowindex_packed_1x",
    "extract_filter_build_select",
]

#: The user-defined domain holding (row, col, value) triples — the
#: "indices stored in the values array" of §II.
PACKED_TYPE = Type.new("Packed_IJV", size=24)


def pack_index_matrix(a: Matrix, ctx: Context | None = None) -> Matrix:
    """Rebuild ``a`` with values ``(i, j, a_ij)`` (storage doubled).

    This is the 1.X preprocessing step; its cost is part of what the
    2.0 index-unary operations eliminate.
    """
    rows, cols, vals = a.extract_tuples()
    packed = Matrix.new(PACKED_TYPE, a.nrows, a.ncols, ctx)
    triples = np.empty(len(vals), dtype=object)
    # Per-element packing: in C this is the user's packing loop.
    for k in range(len(vals)):
        triples[k] = (int(rows[k]), int(cols[k]), vals[k])
    packed.build(rows, cols, triples, None)
    return packed


def unpack_index_matrix(packed: Matrix, t: Type, ctx: Context | None = None) -> Matrix:
    """Recover a plain-valued matrix from a packed one (UDF per element)."""
    unpack = UnaryOp.new(lambda ijv: ijv[2], t, PACKED_TYPE, name="unpack_value")
    out = Matrix.new(t, packed.nrows, packed.ncols, ctx)
    _apply(out, None, None, unpack, packed)
    return out


def select_triu_value_packed_1x(
    packed: Matrix, s: Any, t: Type, ctx: Context | None = None
) -> Matrix:
    """1.X emulation of Fig. 3's select: keep strict-upper entries > s.

    Pipeline: a user-defined unary op unpacks each (i, j, v) triple and
    either passes the triple through or flags it; a second user-defined
    select-like pass cannot exist in 1.X, so the filtered pattern is
    realized by extracting the boolean decisions and using them as a
    *valued mask* — the closest 1.X rendering of a functional mask.
    """
    decide = IndexUnaryOp.new(
        lambda ijv, i, j, _s: (ijv[1] > ijv[0]) and (ijv[2] > _s),
        _t.BOOL, PACKED_TYPE, _t.FP64, name="triu_gt_packed",
    )
    # In 1.X the decision op would be a plain UnaryOp; IndexUnaryOp.new
    # with ignored indices keeps the same per-element call shape while
    # flowing through one code path.  Crucially the *indices used in the
    # predicate* come from the packed values, not the operator arguments.
    kept = Matrix.new(PACKED_TYPE, packed.nrows, packed.ncols, ctx)
    _select(kept, None, None, decide, packed, 0.0 if s is None else s)
    return unpack_index_matrix(kept, t, ctx)


def apply_colindex_packed_1x(
    packed: Matrix, s: int, ctx: Context | None = None
) -> Matrix:
    """1.X emulation of ``apply(COLINDEX, A, s)`` via packed values."""
    unpack_col = UnaryOp.new(
        lambda ijv, _s=int(s): ijv[1] + _s, _t.INT64, PACKED_TYPE,
        name="unpack_colindex",
    )
    out = Matrix.new(_t.INT64, packed.nrows, packed.ncols, ctx)
    _apply(out, None, None, unpack_col, packed)
    return out


def apply_rowindex_packed_1x(
    packed: Matrix, s: int, ctx: Context | None = None
) -> Matrix:
    """1.X emulation of ``apply(ROWINDEX, A, s)`` via packed values."""
    unpack_row = UnaryOp.new(
        lambda ijv, _s=int(s): ijv[0] + _s, _t.INT64, PACKED_TYPE,
        name="unpack_rowindex",
    )
    out = Matrix.new(_t.INT64, packed.nrows, packed.ncols, ctx)
    _apply(out, None, None, unpack_row, packed)
    return out


def extract_filter_build_select(
    a: Matrix,
    predicate,
    ctx: Context | None = None,
) -> Matrix:
    """The other 1.X select workaround: extractTuples → filter → build.

    ``predicate(values, rows, cols) -> bool array`` runs in user space —
    the data leaves the opaque object entirely (copy out, copy back),
    which is the bandwidth cost 2.0's ``select`` avoids.
    """
    rows, cols, vals = a.extract_tuples()
    keep = np.asarray(predicate(vals, rows, cols), dtype=bool)
    out = Matrix.new(a.type, a.nrows, a.ncols, ctx)
    out.build(rows[keep], cols[keep], vals[keep], None)
    return out

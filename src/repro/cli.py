"""Command-line interface: ``python -m repro <command>``.

Release-grade libraries ship a small CLI for smoke-testing an install
and poking at data files without writing a script:

* ``info``        — version, spec level, predefined-object census.
* ``mm-info F``   — header + shape/nnz/degree stats of a MatrixMarket file.
* ``demo NAME``   — run a built-in algorithm demo on a generated graph
  (``bfs``, ``triangles``, ``pagerank``, ``sssp``, ``components``).
* ``selftest``    — a fast end-to-end exercise of every subsystem.
* ``serve``       — host a demo graph behind the multi-tenant serving
  layer (:mod:`repro.serve`), push a scripted mixed query load through
  the asyncio front door, and print per-tenant stats on shutdown.

``--engine-stats`` (global flag) dumps the lazy-engine counters — nodes
built/forced/fused, CSE hits, pushed masks, per-kernel wall time —
after the command runs, answering "did nonblocking mode actually
optimize anything?".  ``--trace-out PATH`` writes the engine's planner
and kernel spans as Chrome trace JSON for chrome://tracing / Perfetto.

``--chaos SEED`` (global flag) runs the command under low-probability
transient fault injection (:mod:`repro.faults`): kernels randomly fail
with retryable errors and the resilience machinery must recover every
one — results stay exact.  ``--chaos-rate`` tunes the per-site
injection probability; an injection summary prints afterwards.
"""

from __future__ import annotations

import argparse
import sys
import time
from typing import Sequence

import numpy as np

__all__ = ["main", "build_parser"]


def build_parser() -> argparse.ArgumentParser:
    p = argparse.ArgumentParser(
        prog="repro",
        description="Pure-Python GraphBLAS 2.0 (IPDPSW 2021 reproduction)",
    )
    p.add_argument(
        "--engine-stats", action="store_true",
        help="dump lazy-engine counters and kernel timings after the command",
    )
    p.add_argument(
        "--trace-out", metavar="PATH", default=None,
        help="write the engine's planner/kernel spans as Chrome trace "
             "JSON (load in chrome://tracing or Perfetto)",
    )
    p.add_argument(
        "--no-result-cache", action="store_true",
        help="disable the cross-forcing result memo (ablation; same as "
             "REPRO_RESULT_CACHE=0)",
    )
    p.add_argument(
        "--store-dir", metavar="DIR", default=None,
        help="attach the persistent warm-start store rooted at DIR "
             "(same as REPRO_STORE_DIR): memoized algo blocks and "
             "kernel calibration persist across runs, so repeating a "
             "demo/serve command starts warm",
    )
    p.add_argument(
        "--chaos", type=int, metavar="SEED", default=None,
        help="run under deterministic transient fault injection with this "
             "seed (results must still be exact)",
    )
    p.add_argument(
        "--chaos-rate", type=float, metavar="P", default=0.05,
        help="per-site injection probability for --chaos (default 0.05)",
    )
    sub = p.add_subparsers(dest="command", required=True)

    sub.add_parser("info", help="version and capability summary")

    mm = sub.add_parser("mm-info", help="describe a MatrixMarket file")
    mm.add_argument("path")

    demo = sub.add_parser("demo", help="run an algorithm demo")
    demo.add_argument(
        "name",
        choices=["bfs", "triangles", "pagerank", "sssp", "components"],
    )
    demo.add_argument("--scale", type=int, default=9,
                      help="RMAT scale (default 9)")
    demo.add_argument("--seed", type=int, default=42)

    sub.add_parser("selftest", help="fast end-to-end smoke test")

    serve = sub.add_parser(
        "serve", help="host a demo graph through the serving layer"
    )
    serve.add_argument("--scale", type=int, default=8,
                       help="RMAT scale of the hosted graph (default 8)")
    serve.add_argument("--seed", type=int, default=42)
    serve.add_argument("--tenants", type=int, default=3,
                       help="concurrent tenant sessions (default 3)")
    serve.add_argument("--queries", type=int, default=24,
                       help="total queries in the scripted load (default 24)")
    serve.add_argument(
        "--deadline-ms", type=float, default=None, metavar="MS",
        help="per-query deadline; expired queries fail with the "
             "transient GrB_TIMEOUT (default: QUERY_DEADLINE_MS knob)",
    )
    serve.add_argument(
        "--checkpoint-dir", metavar="DIR", default=None,
        help="durability plane: warm-restart from DIR when it holds a "
             "checkpoint, journal mutations to it while serving, and "
             "write a fresh checkpoint on shutdown",
    )
    return p


def _cmd_info(out) -> int:
    import repro
    from repro.core import binaryop, indexunaryop, monoid, semiring, unaryop
    from repro.core.context import get_version
    from repro.core.types import PREDEFINED_TYPES

    major, minor = get_version()
    out.write(f"repro {repro.__version__} — GraphBLAS C API "
              f"{major}.{minor} (pure Python)\n")
    out.write(f"  predefined types:      {len(PREDEFINED_TYPES)}\n")
    out.write(f"  unary op families:     "
              f"{len(unaryop.PREDEFINED_UNARY_FAMILIES)}\n")
    out.write(f"  binary op families:    "
              f"{len(binaryop.PREDEFINED_BINARY_FAMILIES)}\n")
    out.write(f"  index-unary families:  "
              f"{len(indexunaryop.PREDEFINED_INDEXUNARY)}\n")
    out.write(f"  monoid families:       {len(monoid.PREDEFINED_MONOIDS)}\n")
    out.write(f"  semiring families:     "
              f"{len(semiring.PREDEFINED_SEMIRINGS)} (+4 boolean)\n")
    return 0


def _cmd_mm_info(path: str, out) -> int:
    from repro.io import mmread

    m = mmread(path)
    out.write(f"{path}: {m.nrows} x {m.ncols}, nvals={m.nvals()}, "
              f"domain={m.type.name}\n")
    rows, cols, vals = m.extract_tuples()
    if len(rows):
        deg = np.bincount(rows, minlength=m.nrows)
        out.write(f"  out-degree: max={deg.max()}, mean={deg.mean():.2f}\n")
        if not m.type.is_bool:
            out.write(f"  values: min={vals.min()}, max={vals.max()}\n")
        loops = int((rows == cols).sum())
        out.write(f"  self-loops: {loops}\n")
    return 0


def _cmd_demo(name: str, scale: int, seed: int, out) -> int:
    from repro import algorithms as alg
    from repro.core import types as T
    from repro.generators import rmat, to_matrix

    n, rows, cols, vals = rmat(scale, 8, seed=seed)
    undirected = name in ("triangles", "components")
    a = to_matrix(
        n, rows, cols,
        np.ones(len(rows)) if name != "sssp" else 1.0 + (vals * 9),
        T.BOOL if name in ("bfs", "components") else T.FP64,
        make_undirected=undirected, no_self_loops=True,
    )
    out.write(f"RMAT scale {scale}: {n} vertices, {a.nvals()} edges\n")
    t0 = time.perf_counter()
    if name == "bfs":
        lv = alg.bfs_levels(a, 0)
        idx, depths = lv.extract_tuples()
        result = (f"reached {len(idx)} vertices, "
                  f"max depth {depths.max() if len(depths) else 0}")
    elif name == "triangles":
        result = f"{alg.triangle_count(a)} triangles"
    elif name == "pagerank":
        ranks, iters = alg.pagerank(a)
        top = max(ranks.to_dict().items(), key=lambda kv: kv[1])
        result = f"{iters} iterations; top vertex {top[0]}"
    elif name == "sssp":
        d = alg.sssp(a, 0, max_iters=64)
        result = f"reached {d.nvals()} vertices"
    else:
        cc = alg.connected_components(a)
        ncomp = len(set(int(v) for v in cc.to_dict().values()))
        result = f"{ncomp} components"
    elapsed = (time.perf_counter() - t0) * 1e3
    out.write(f"{name}: {result}  ({elapsed:.1f} ms)\n")
    return 0


def _cmd_selftest(out) -> int:
    from repro import grb
    from repro.algorithms import triangle_count
    from repro.generators import rmat, to_matrix

    checks = 0
    # core round trip
    a = grb.Matrix.new(grb.FP64, 3, 3)
    a.build([0, 1, 2], [1, 2, 0], [1.0, 2.0, 3.0])
    c = grb.Matrix.new(grb.FP64, 3, 3)
    grb.mxm(c, None, None, grb.PLUS_TIMES_SEMIRING[grb.FP64], a, a)
    grb.wait(c)
    assert c.nvals() == 3
    checks += 1
    # select + apply (§VIII)
    u = grb.Matrix.new(grb.FP64, 3, 3)
    grb.select(u, None, None, grb.TRIU, a, 1)
    r = grb.Matrix.new(grb.INT64, 3, 3)
    grb.apply(r, None, None, grb.ROWINDEX_INT64, a, 0)
    assert r.nvals() == a.nvals()
    checks += 1
    # serialize round trip (§VII)
    blob = grb.matrix_serialize(a)
    assert grb.matrix_deserialize(blob).nvals() == a.nvals()
    checks += 1
    # error model (§V / §IX)
    bad = grb.Matrix.new(grb.FP64, 2, 2)
    bad.build([0, 0], [0, 0], [1.0, 2.0], dup=None)
    try:
        grb.wait(bad)
        raise AssertionError("duplicate not detected")
    except grb.DuplicateIndexError:
        checks += 1
    # an algorithm end to end
    n, rows, cols, _ = rmat(7, 8, seed=1)
    g = to_matrix(n, rows, cols, np.ones(len(rows)), grb.FP64,
                  make_undirected=True, no_self_loops=True)
    assert triangle_count(g) >= 0
    checks += 1
    out.write(f"selftest: {checks}/5 subsystem checks passed\n")
    return 0


def _cmd_serve(
    scale: int,
    seed: int,
    tenants: int,
    queries: int,
    out,
    *,
    deadline_ms: float | None = None,
    checkpoint_dir: str | None = None,
) -> int:
    import asyncio

    from repro.core import types as T
    from repro.generators import rmat, to_matrix
    from repro.serve import CheckpointStore, GraphServer, GraphService, Query

    if checkpoint_dir and CheckpointStore(checkpoint_dir).has_state():
        service = GraphService.restore(checkpoint_dir)
        meta = service.graphs()["demo"]
        out.write(f"warm restart from {checkpoint_dir}\n")
    else:
        n_, rows, cols, _ = rmat(scale, 8, seed=seed)
        graph = to_matrix(n_, rows, cols, np.ones(len(rows)), T.FP64,
                          make_undirected=True, no_self_loops=True)
        service = GraphService(checkpoint_dir=checkpoint_dir)
        meta = service.register_graph("demo", graph)
    n = meta["nrows"]
    out.write(f"serving graph 'demo': {meta['nrows']} vertices, "
              f"{meta['nvals']} edges\n")
    sessions = [
        service.open_session(f"tenant-{i}", nthreads=2, memo_capacity=16)
        for i in range(max(1, tenants))
    ]

    def plan(i: int) -> Query:
        # Mixed load: mostly BFS (batchable), some analytics.
        if i % 4 == 3:
            return Query.make("triangles", "demo") if i % 8 == 3 else \
                Query.make("pagerank", "demo", tol=1e-6)
        return Query.make("bfs", "demo", (i * 37) % n)

    async def run_load() -> list:
        async with GraphServer(
            service, batch_window=8, deadline_ms=deadline_ms
        ) as server:
            jobs = [
                server.submit(sessions[i % len(sessions)], plan(i))
                for i in range(max(1, queries))
            ]
            return await asyncio.gather(*jobs, return_exceptions=True)

    t0 = time.perf_counter()
    results = asyncio.run(run_load())
    wall = time.perf_counter() - t0
    ok = sum(1 for r in results if not isinstance(r, BaseException))
    batched = sum(
        1 for r in results
        if not isinstance(r, BaseException) and r.batched
    )
    out.write(f"served {ok}/{len(results)} queries in {wall * 1e3:.1f} ms "
              f"({ok / wall:.0f} q/s, {batched} batched)\n")
    out.write("per-tenant stats:\n")
    for tenant, snap in sorted(service.tenant_stats().items()):
        out.write(
            f"  {tenant:<12} completed={snap.get('queries_completed', 0)} "
            f"batched={snap.get('queries_batched', 0)} "
            f"kernels={snap.get('kernels', 0)} "
            f"kernel_ms={snap.get('kernel_time_ms', 0.0):.1f} "
            f"p99_ms={snap.get('latency_p99_ms', 0.0):.1f} "
            f"memo={snap.get('memo_entries', 0)} "
            f"degraded={snap.get('degraded', False)}\n"
        )
    if checkpoint_dir:
        manifest = service.checkpoint()
        if manifest is not None:
            out.write(
                f"checkpoint gen {manifest['gen']} -> "
                f"{checkpoint_dir} ({len(manifest['graphs'])} graphs, "
                f"{len(manifest.get('blocks', []))} warm blocks)\n"
            )
    service.close()
    return 0 if ok == len(results) else 1


def main(argv: Sequence[str] | None = None, out=None) -> int:
    out = out if out is not None else sys.stdout
    args = build_parser().parse_args(argv)

    from repro.core.context import Mode, finalize, init, is_initialized

    owned = not is_initialized()
    if owned:
        init(Mode.NONBLOCKING)
    memo_was = None
    if args.no_result_cache:
        from repro.internals import config

        memo_was = config.get_option("ENGINE_MEMO")
        config.set_option("ENGINE_MEMO", False)
    store_was = None
    if args.store_dir:
        from repro.internals import config

        store_was = config.set_option("STORE_DIR", args.store_dir)
    if args.chaos is not None:
        from repro import faults

        faults.enable_chaos(args.chaos, rate=args.chaos_rate)
    try:
        if args.command == "info":
            return _cmd_info(out)
        if args.command == "mm-info":
            return _cmd_mm_info(args.path, out)
        if args.command == "demo":
            return _cmd_demo(args.name, args.scale, args.seed, out)
        if args.command == "selftest":
            return _cmd_selftest(out)
        if args.command == "serve":
            return _cmd_serve(
                args.scale, args.seed, args.tenants, args.queries, out,
                deadline_ms=args.deadline_ms,
                checkpoint_dir=args.checkpoint_dir,
            )
        return 2  # pragma: no cover - argparse enforces choices
    finally:
        if args.engine_stats:
            from repro.engine.stats import STATS

            out.write(STATS.format() + "\n")
        if args.trace_out:
            from repro.engine.stats import STATS

            n = STATS.write_trace(args.trace_out)
            out.write(f"wrote {n} trace events to {args.trace_out}\n")
        if args.chaos is not None:
            from repro.faults import PLANE

            out.write(PLANE.format() + "\n")
            PLANE.disable()
        if memo_was is not None:
            from repro.internals import config

            config.set_option("ENGINE_MEMO", memo_was)
        if store_was is not None:
            # Calibration learned this run warms the next one.
            from repro.internals import config
            from repro.store import tier as store_tier

            store_tier.save_calibration()
            config.set_option("STORE_DIR", store_was)
        if owned and is_initialized():
            finalize()

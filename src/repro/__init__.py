"""repro — a pure-Python implementation of the GraphBLAS 2.0 C API.

Reproduction of *Introduction to GraphBLAS 2.0* (Brock, Buluç, Mattson,
McMillan, Moreira; IPDPSW 2021).  The package implements the full 2.0
surface: opaque Scalar/Vector/Matrix containers, the operation set with
masks/accumulators/descriptors, hierarchical execution contexts,
nonblocking sequences with ``wait(COMPLETE|MATERIALIZE)``, the two-tier
error model, Table III import/export, opaque serialization, and the
§VIII index-aware operations (``IndexUnaryOp``, index ``apply``,
``select``).

Quick start::

    from repro import grb

    grb.init(grb.Mode.NONBLOCKING)
    A = grb.Matrix.new(grb.FP64, 4, 4)
    A.build([0, 1, 2], [1, 2, 3], [1.0, 2.0, 3.0])
    L = grb.Matrix.new(grb.FP64, 4, 4)
    grb.select(L, None, None, grb.TRIL, A, 0)
    grb.wait(L)
    grb.finalize()
"""

from .core import (  # noqa: I001 - core must initialize before faults
    Context,
    Matrix,
    Mode,
    Scalar,
    Vector,
    WaitMode,
    finalize,
    init,
)
from . import faults, grb

# Chaos mode: REPRO_CHAOS_SEED in the environment activates
# low-probability transient fault injection for the whole process (the
# CI chaos job sets it; see repro.faults.plane.configure_from_env).
faults.configure_from_env()

__version__ = "2.0.0"

__all__ = [
    "faults",
    "grb",
    "Context",
    "Matrix",
    "Mode",
    "Scalar",
    "Vector",
    "WaitMode",
    "finalize",
    "init",
    "__version__",
]

"""repro — a pure-Python implementation of the GraphBLAS 2.0 C API.

Reproduction of *Introduction to GraphBLAS 2.0* (Brock, Buluç, Mattson,
McMillan, Moreira; IPDPSW 2021).  The package implements the full 2.0
surface: opaque Scalar/Vector/Matrix containers, the operation set with
masks/accumulators/descriptors, hierarchical execution contexts,
nonblocking sequences with ``wait(COMPLETE|MATERIALIZE)``, the two-tier
error model, Table III import/export, opaque serialization, and the
§VIII index-aware operations (``IndexUnaryOp``, index ``apply``,
``select``).

Quick start::

    from repro import grb

    grb.init(grb.Mode.NONBLOCKING)
    A = grb.Matrix.new(grb.FP64, 4, 4)
    A.build([0, 1, 2], [1, 2, 3], [1.0, 2.0, 3.0])
    L = grb.Matrix.new(grb.FP64, 4, 4)
    grb.select(L, None, None, grb.TRIL, A, 0)
    grb.wait(L)
    grb.finalize()
"""

from . import grb
from .core import (
    Context,
    Matrix,
    Mode,
    Scalar,
    Vector,
    WaitMode,
    finalize,
    init,
)

__version__ = "2.0.0"

__all__ = [
    "grb",
    "Context",
    "Matrix",
    "Mode",
    "Scalar",
    "Vector",
    "WaitMode",
    "finalize",
    "init",
    "__version__",
]

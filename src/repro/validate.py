"""Introspection and validation utilities (the ``GxB_fprint`` niche).

SuiteSparse ships ``GxB_*_fprint`` for debugging opaque objects; a
reproduction needs the same affordance.  :func:`describe` renders any
GraphBLAS object human-readably (without forcing deferred sequences
unless asked); :func:`check_object` verifies the internal invariants of
a container and raises ``INVALID_OBJECT`` on corruption — the check
``deserialize`` runs on untrusted bytes, exposed for everything.
"""

from __future__ import annotations

import io
from typing import Any

from .core.context import Context
from .core.descriptor import Descriptor
from .core.errors import InvalidObjectError
from .core.matrix import Matrix
from .core.scalar import Scalar
from .core.vector import Vector

__all__ = ["describe", "check_object"]

_PREVIEW = 8


def _fmt_entries(pairs, limit=_PREVIEW) -> str:
    def plain(v):
        return v.item() if hasattr(v, "item") else v

    shown = ", ".join(f"{k}: {plain(v)!r}" for k, v in pairs[:limit])
    more = f", … (+{len(pairs) - limit})" if len(pairs) > limit else ""
    return f"{{{shown}{more}}}"


def describe(obj: Any, *, force: bool = False) -> str:
    """A readable multi-line description of a GraphBLAS object.

    With ``force=False`` (default) a pending nonblocking sequence is
    reported as pending rather than executed — describing an object
    must not change the program's completion behaviour.
    """
    out = io.StringIO()

    if isinstance(obj, Matrix):
        out.write(f"GrB_Matrix  {obj.type.name}  "
                  f"{obj.nrows} x {obj.ncols}\n")
        _describe_opaque(obj, out, force)
        if force or obj.is_materialized:
            pairs = sorted(obj.to_dict().items())
            out.write(f"  nvals: {len(pairs)}\n")
            out.write(f"  entries: {_fmt_entries(pairs)}\n")
    elif isinstance(obj, Vector):
        out.write(f"GrB_Vector  {obj.type.name}  size {obj.size}\n")
        _describe_opaque(obj, out, force)
        if force or obj.is_materialized:
            pairs = sorted(obj.to_dict().items())
            out.write(f"  nvals: {len(pairs)}\n")
            out.write(f"  entries: {_fmt_entries(pairs)}\n")
    elif isinstance(obj, Scalar):
        out.write(f"GrB_Scalar  {obj.type.name}\n")
        _describe_opaque(obj, out, force)
        if force or obj.is_materialized:
            n = obj.nvals()
            out.write(f"  nvals: {n}\n")
            if n:
                out.write(f"  value: {obj.extract_element()!r}\n")
    elif isinstance(obj, Descriptor):
        out.write(f"GrB_Descriptor  {obj!r}\n")
    elif isinstance(obj, Context):
        out.write(f"GrB_Context  {obj!r}\n")
        out.write(f"  depth: {obj.depth}\n")
        out.write(f"  effective nthreads: {obj.nthreads}\n")
    else:
        out.write(f"{type(obj).__name__}  {obj!r}\n")
    return out.getvalue()


def _describe_opaque(obj, out: io.StringIO, force: bool) -> None:
    labels = obj._sequence_labels()
    pending = len(labels)
    out.write(f"  context: {obj.context!r}\n")
    if pending and not force:
        out.write(f"  state: {pending} pending method(s) "
                  "(nonblocking; pass force=True to complete)\n")
        shown = ", ".join(labels[:6]) + (" …" if pending > 6 else "")
        out.write(f"  sequence: [{shown}]\n")
    else:
        out.write("  state: complete")
        out.write(" / materialized\n" if obj.is_materialized else "\n")
    err = obj.error()
    if err:
        out.write(f"  last error: {err}\n")


def check_object(obj: Any) -> None:
    """Validate a container's internal invariants (forces the sequence).

    Raises :class:`InvalidObjectError` when the internal representation
    is inconsistent — the analogue of a failed ``GxB_Matrix_check``.
    """
    if isinstance(obj, (Matrix, Vector)):
        data = obj._capture()
        try:
            data.check()
        except AssertionError as exc:
            raise InvalidObjectError(f"invalid {type(obj).__name__}: {exc}")
        return
    if isinstance(obj, Scalar):
        data = obj._capture()
        if data.present not in (True, False):
            raise InvalidObjectError("scalar presence flag corrupt")
        return
    raise InvalidObjectError(f"cannot check object of type {type(obj).__name__}")

"""Extensions beyond the 2.0 spec core (SuiteSparse-``GxB`` style).

Clearly separated from the conformant surface: nothing here is required
by the specification, and nothing in ``repro.core``/``repro.ops``
depends on it.
"""

from .hypersparse import HyperMatrix

__all__ = ["HyperMatrix"]

"""Hypersparse matrices — an extension beyond the 2.0 spec core.

The canonical CSR carrier stores a dense row pointer, which caps row
counts at :data:`repro.internals.containers.MAX_NROWS` (a 2^60-row
matrix would need an exabyte of indptr).  Real implementations solve
this with a *hypersparse* format that stores only non-empty rows —
SuiteSparse's ``GxB_HYPERSPARSE``.  This module provides that as a
layered extension: a :class:`HyperMatrix` keeps

* ``row_ids`` — the sorted global ids of non-empty rows, and
* ``compact`` — an ordinary :class:`~repro.core.matrix.Matrix` with one
  row per non-empty global row,

and implements the operation subset tall workloads need (mxm, mxv,
vxm, select, apply, reduce, transpose, extract-tuples) by running the
existing spec operations on the compact matrix and translating row
coordinates at the boundary.  Everything reuses the tested kernels —
no second kernel stack to trust.
"""

from __future__ import annotations

from typing import Any, Sequence

import numpy as np

from ..core import types as _t
from ..core.binaryop import BinaryOp
from ..core.context import Context
from ..core.errors import (
    DimensionMismatchError,
    InvalidIndexError,
    InvalidValueError,
    NoValue,
)
from ..core.indexunaryop import IndexUnaryOp
from ..core.matrix import Matrix
from ..core.monoid import Monoid
from ..core.semiring import Semiring
from ..core.types import Type
from ..core.unaryop import UnaryOp
from ..core.vector import Vector
from ..ops.apply import apply as _apply
from ..ops.mxm import mxm as _mxm
from ..ops.mxm import mxv as _mxv
from ..ops.mxm import vxm as _vxm
from ..ops.reduce import reduce_scalar as _reduce_scalar
from ..ops.reduce import reduce_to_vector as _reduce_to_vector
from ..ops.select import select as _select

__all__ = ["HyperMatrix"]

_INT = np.int64


class HyperMatrix:
    """A matrix with up to 2^60 rows, storing only non-empty ones."""

    def __init__(self, t: Type, nrows: int, ncols: int,
                 ctx: Context | None = None):
        if nrows < 0 or ncols < 0:
            raise InvalidValueError("shape must be >= 0")
        self.type = t
        self.nrows = int(nrows)
        self.ncols = int(ncols)
        self._ctx = ctx
        self.row_ids = np.empty(0, dtype=_INT)
        self.compact = Matrix.new(t, 0, ncols, ctx)

    # -- construction ------------------------------------------------------------

    @classmethod
    def from_triples(
        cls,
        t: Type,
        nrows: int,
        ncols: int,
        rows: Sequence[int],
        cols: Sequence[int],
        values: Sequence[Any],
        dup: BinaryOp | None = None,
        ctx: Context | None = None,
    ) -> "HyperMatrix":
        rows = np.asarray(rows, dtype=_INT)
        cols = np.asarray(cols, dtype=_INT)
        if len(rows) and (rows.min() < 0 or rows.max() >= nrows):
            raise InvalidIndexError("row index out of range")
        out = cls(t, nrows, ncols, ctx)
        if len(rows) == 0:
            return out
        out.row_ids = np.unique(rows)
        compact_rows = np.searchsorted(out.row_ids, rows)
        out.compact = Matrix.new(t, len(out.row_ids), ncols, ctx)
        out.compact.build(compact_rows, cols, values, dup)
        out.compact.wait()
        return out

    @classmethod
    def _wrap(cls, nrows: int, row_ids: np.ndarray, compact: Matrix,
              ctx: Context | None = None) -> "HyperMatrix":
        out = cls.__new__(cls)
        out.type = compact.type
        out.nrows = nrows
        out.ncols = compact.ncols
        out._ctx = ctx
        out.row_ids = row_ids
        out.compact = compact
        out._prune()
        return out

    def _prune(self) -> None:
        """Drop compact rows that became empty (keeps row_ids exact)."""
        d = self.compact._capture()
        lens = d.row_lengths()
        if (lens > 0).all():
            return
        keep = np.flatnonzero(lens > 0).astype(_INT)
        self.row_ids = self.row_ids[keep]
        from ..ops.extract import extract as _extract
        sub = Matrix.new(self.type, len(keep), self.ncols, self._ctx)
        _extract(sub, None, None, self.compact, keep, None)
        sub.wait()
        self.compact = sub

    # -- introspection ------------------------------------------------------------

    def nvals(self) -> int:
        return self.compact.nvals()

    @property
    def shape(self) -> tuple[int, int]:
        return (self.nrows, self.ncols)

    @property
    def nonempty_rows(self) -> int:
        return len(self.row_ids)

    def extract_tuples(self) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        r, c, v = self.compact.extract_tuples()
        return self.row_ids[r], c, v

    def to_dict(self) -> dict:
        r, c, v = self.extract_tuples()
        return {(int(i), int(j)): val for i, j, val in zip(r, c, v)}

    def extract_element(self, i: int, j: int):
        if not (0 <= i < self.nrows and 0 <= j < self.ncols):
            raise InvalidIndexError(f"({i}, {j}) out of range")
        pos = int(np.searchsorted(self.row_ids, i))
        if pos >= len(self.row_ids) or self.row_ids[pos] != i:
            raise NoValue(f"no element at ({i}, {j})")
        return self.compact.extract_element(pos, j)

    # -- operations (each reuses the spec ops on the compact form) -------------

    def mxv(self, u: Vector, semiring: Semiring) -> dict:
        """w = A ⊕.⊗ u, returned as {global row: value}."""
        if u.size != self.ncols:
            raise DimensionMismatchError("mxv inner dimension")
        w = Vector.new(semiring.out_type, self.compact.nrows, self._ctx)
        _mxv(w, None, None, semiring, self.compact, u)
        idx, vals = w.extract_tuples()
        return {int(self.row_ids[i]): v for i, v in zip(idx, vals)}

    def vxm(self, entries: dict, semiring: Semiring) -> Vector:
        """w' = u' ⊕.⊗ A for a {global row: value} input pattern."""
        u = Vector.new(semiring.in1_type, self.compact.nrows, self._ctx)
        keys = sorted(k for k in entries if k in set(self.row_ids.tolist()))
        if keys:
            pos = np.searchsorted(self.row_ids, np.asarray(keys, dtype=_INT))
            u.build(pos, [entries[k] for k in keys])
        u.wait()
        w = Vector.new(semiring.out_type, self.ncols, self._ctx)
        _vxm(w, None, None, semiring, u, self.compact)
        w.wait()
        return w

    def mxm_same_rows(self, b: Matrix, semiring: Semiring) -> "HyperMatrix":
        """C = A ⊕.⊗ B where B is an ordinary (ncols x k) matrix."""
        if b.nrows != self.ncols:
            raise DimensionMismatchError("mxm inner dimension")
        c = Matrix.new(semiring.out_type, self.compact.nrows, b.ncols,
                       self._ctx)
        _mxm(c, None, None, semiring, self.compact, b)
        c.wait()
        return HyperMatrix._wrap(self.nrows, self.row_ids.copy(), c,
                                 self._ctx)

    def select(self, op: IndexUnaryOp, s: Any) -> "HyperMatrix":
        """Positional selects see *global* row indices.

        Implemented with a user-shaped operator that translates the
        compact row back to its global id before calling ``op``.
        """
        row_ids = self.row_ids

        def global_fn(v, i, j, sc):
            return bool(op.scalar(v, int(row_ids[i]), j, sc))

        translated = IndexUnaryOp.new(
            global_fn, _t.BOOL,
            op.in_type if op.in_type is not None else self.type,
            op.s_type, name=f"hyper<{op.name}>",
        )
        out = Matrix.new(self.type, self.compact.nrows, self.ncols, self._ctx)
        _select(out, None, None, translated, self.compact, s)
        out.wait()
        return HyperMatrix._wrap(self.nrows, self.row_ids.copy(), out,
                                 self._ctx)

    def apply(self, op: UnaryOp) -> "HyperMatrix":
        out = Matrix.new(op.out_type, self.compact.nrows, self.ncols,
                         self._ctx)
        _apply(out, None, None, op, self.compact)
        out.wait()
        return HyperMatrix._wrap(self.nrows, self.row_ids.copy(), out,
                                 self._ctx)

    def reduce_rows(self, monoid: Monoid) -> dict:
        """Row sums as {global row: value} (only non-empty rows appear)."""
        w = Vector.new(monoid.type, self.compact.nrows, self._ctx)
        _reduce_to_vector(w, None, None, monoid, self.compact)
        idx, vals = w.extract_tuples()
        return {int(self.row_ids[i]): v for i, v in zip(idx, vals)}

    def reduce_scalar(self, monoid: Monoid):
        return _reduce_scalar(monoid, self.compact)

    def transpose_to_matrix(self) -> Matrix:
        """Aᵀ as an ordinary matrix (valid: ncols becomes the row count).

        Only legal when ``ncols`` is within the ordinary CSR limit —
        the tall-and-skinny case hypersparse exists for.
        """
        from ..internals.containers import check_nrows_limit
        check_nrows_limit(self.ncols)
        r, c, v = self.extract_tuples()
        out = Matrix.new(self.type, self.ncols, self.nrows, self._ctx)
        out.build(c, r, v, None)
        out.wait()
        return out

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (f"HyperMatrix({self.type.name}, {self.nrows} x {self.ncols}, "
                f"{self.nonempty_rows} stored rows, nvals={self.nvals()})")

"""Flat GraphBLAS namespace — the Python rendering of ``GraphBLAS.h``.

One import gives the whole 2.0 surface::

    from repro import grb

    grb.init(grb.Mode.NONBLOCKING)
    A = grb.Matrix.new(grb.FP64, 4, 4)
    ...
    grb.mxm(C, None, None, grb.PLUS_TIMES_SEMIRING[grb.FP64], A, B)
    grb.wait(C, grb.WaitMode.MATERIALIZE)
    grb.finalize()

Predefined operators are exported both as polymorphic families
(``grb.PLUS[grb.INT32]``) and as monomorphic spec names
(``grb.PLUS_INT32``); see :mod:`repro.capi` for ``GrB_``-prefixed
aliases that mirror C spelling exactly.
"""

from .core import binaryop as _binaryop
from .core import indexunaryop as _indexunaryop
from .core import monoid as _monoid
from .core import semiring as _semiring
from .core import types as _types
from .core import unaryop as _unaryop
from .core.binaryop import *  # noqa: F401,F403
from .core.context import (  # noqa: F401
    Context,
    Mode,
    WaitMode,
    context_switch,
    default_context,
    finalize,
    get_version,
    init,
    is_initialized,
)
from .core.descriptor import *  # noqa: F401,F403
from .core.descriptor import DescField, Descriptor, DescValue  # noqa: F401
from .core.errors import *  # noqa: F401,F403
from .core.indexunaryop import *  # noqa: F401,F403
from .core.info import Info  # noqa: F401
from .core.matrix import Matrix  # noqa: F401
from .core.monoid import *  # noqa: F401,F403
from .core.scalar import Scalar  # noqa: F401
from .core.semiring import *  # noqa: F401,F403
from .core.sequence import error_string, wait  # noqa: F401
from .core.types import (  # noqa: F401
    BOOL,
    FP32,
    FP64,
    INT8,
    INT16,
    INT32,
    INT64,
    UINT8,
    UINT16,
    UINT32,
    UINT64,
    Type,
)
from .core.unaryop import *  # noqa: F401,F403
from .core.vector import Vector  # noqa: F401
from .formats import (  # noqa: F401
    Format,
    matrix_deserialize,
    matrix_export,
    matrix_export_hint,
    matrix_export_size,
    matrix_import,
    matrix_serialize,
    matrix_serialize_size,
    vector_deserialize,
    vector_export,
    vector_export_hint,
    vector_export_size,
    vector_import,
    vector_serialize,
    vector_serialize_size,
)
from .ops import (  # noqa: F401
    ALL,
    apply,
    assign,
    assign_col,
    assign_row,
    ewise_add,
    ewise_mult,
    extract,
    kronecker,
    mxm,
    mxv,
    reduce,
    reduce_scalar,
    reduce_to_vector,
    select,
    transpose,
    vxm,
)

# Polymorphic operator families under their bare names.
UnaryOp = _unaryop.UnaryOp
BinaryOp = _binaryop.BinaryOp
IndexUnaryOp = _indexunaryop.IndexUnaryOp
Monoid = _monoid.Monoid
Semiring = _semiring.Semiring

#: ``GrB_NULL`` — descriptor/mask/accum "not provided".
NULL = None

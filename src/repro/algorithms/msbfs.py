"""Multi-source BFS — batched frontiers as a matrix (mxm-based).

Running k BFS traversals at once turns the frontier into a k×n boolean
matrix and each step into **one masked mxm** — the batching that makes
algorithms like betweenness centrality and all-pairs distance viable in
the linear-algebraic formulation.  A direct showcase of why the
GraphBLAS is built around matrix-matrix multiply rather than per-vertex
loops.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from ..core import types as T
from ..core.descriptor import DESC_RSC, DESC_S
from ..core.errors import InvalidIndexError, InvalidValueError
from ..core.matrix import Matrix
from ..core.semiring import LOR_LAND_SEMIRING_BOOL
from ..ops.assign import assign
from ..ops.mxm import mxm

__all__ = ["msbfs_levels", "all_pairs_levels"]


def msbfs_levels(a: Matrix, sources: Sequence[int]) -> Matrix:
    """Levels(s, v) = BFS depth of v from sources[s] (k×n INT64 matrix).

    One masked mxm per level, shared across all k traversals:

        F⟨¬Levels, replace⟩ = F ⊕.⊗ A      (boolean semiring)
    """
    n = a.nrows
    sources = [int(s) for s in sources]
    if not sources:
        raise InvalidValueError("msbfs needs at least one source")
    for s in sources:
        if not (0 <= s < n):
            raise InvalidIndexError(f"source {s} out of range [0, {n})")
    k = len(sources)
    from ._blocks import pattern_matrix
    # Memoized: all_pairs_levels calls this once per batch on the same
    # graph, so batches after the first reuse the cached pattern.
    pat = pattern_matrix(a, T.BOOL)

    levels = Matrix.new(T.INT64, k, n, a.context)
    frontier = Matrix.new(T.BOOL, k, n, a.context)
    frontier.build(np.arange(k), np.asarray(sources),
                   np.ones(k, dtype=bool), dup=None)

    depth = 0
    while frontier.nvals():
        # Stamp the current frontier's depth into Levels.
        assign(levels, frontier, None, depth, None, None, desc=DESC_S)
        # Expand all k frontiers with one boolean mxm, keeping only
        # vertices not yet levelled (complemented structural mask).
        mxm(frontier, levels, None, LOR_LAND_SEMIRING_BOOL, frontier, pat,
            desc=DESC_RSC)
        depth += 1
    return levels


def all_pairs_levels(a: Matrix, *, batch: int = 32) -> Matrix:
    """All-pairs BFS levels (n×n INT64), in source batches.

    Equivalent to n single-source BFS runs; batching amortizes each
    level step into one mxm per batch.
    """
    n = a.nrows
    if batch < 1:
        raise InvalidValueError("batch must be >= 1")
    out = Matrix.new(T.INT64, n, n, a.context)
    for lo in range(0, n, batch):
        srcs = list(range(lo, min(lo + batch, n)))
        block = msbfs_levels(a, srcs)
        assign(out, None, None, block, srcs, None)
    out.wait()
    return out

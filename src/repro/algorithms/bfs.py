"""Breadth-first search in the language of linear algebra.

Two LAGraph-style variants:

* :func:`bfs_levels` — frontier expansion with the boolean
  LOR_LAND semiring, masked by the set of visited vertices.
* :func:`bfs_parents` — demonstrates the 2.0 index operations (§VIII):
  the frontier's values are replaced by *their own indices* with
  ``apply(ROWINDEX)``, so a MIN_FIRST vxm propagates the smallest
  parent id to each newly discovered vertex.  Under GraphBLAS 1.X this
  required packing indices into values by hand (see
  :mod:`repro.compat.onex`).
"""

from __future__ import annotations

import numpy as np

from ..core import types as _t
from ..core.descriptor import DESC_RSC, DESC_S
from ..core.errors import InvalidIndexError
from ..core.indexunaryop import ROWINDEX
from ..core.matrix import Matrix
from ..core.semiring import LOR_LAND_SEMIRING_BOOL, MIN_FIRST_SEMIRING
from ..core.vector import Vector
from ..ops.apply import apply
from ..ops.assign import assign
from ..ops.mxm import vxm

__all__ = ["bfs_levels", "bfs_parents"]


def bfs_levels(a: Matrix, source: int) -> Vector:
    """Level of every reachable vertex (source = 0), INT64.

    ``a`` is a (possibly directed) boolean-interpretable adjacency
    matrix; edge (i, j) means i → j.
    """
    n = a.nrows
    if not (0 <= source < n):
        raise InvalidIndexError(f"source {source} out of range [0, {n})")
    from ._blocks import pattern_matrix
    pat = pattern_matrix(a, _t.BOOL)   # memoized structure block
    levels = Vector.new(_t.INT64, n, a.context)
    frontier = Vector.new(_t.BOOL, n, a.context)
    frontier.set_element(True, source)
    depth = 0
    while frontier.nvals():
        # Record the current frontier's depth.
        assign(levels, frontier, None, depth, None, desc=DESC_S)
        # Expand, discarding anything already levelled.
        vxm(frontier, levels, None, LOR_LAND_SEMIRING_BOOL, frontier, pat,
            desc=DESC_RSC)
        depth += 1
    return levels


def bfs_parents(a: Matrix, source: int) -> Vector:
    """Parent of every reachable vertex (source's parent is itself).

    Uses ``apply(ROWINDEX)`` so the frontier carries vertex ids as
    values — the §VIII pattern replacing the 1.X pack/unpack idiom.
    """
    n = a.nrows
    if not (0 <= source < n):
        raise InvalidIndexError(f"source {source} out of range [0, {n})")
    from ._blocks import pattern_matrix
    pat = pattern_matrix(a, _t.BOOL)   # MIN_FIRST ignores matrix values
    parents = Vector.new(_t.INT64, n, a.context)
    parents.set_element(source, source)
    # frontier values: the id of the vertex that discovered the entry.
    frontier = Vector.new(_t.INT64, n, a.context)
    frontier.set_element(source, source)
    while frontier.nvals():
        # frontier(i) <- i  : each frontier vertex offers itself as parent.
        apply(frontier, None, None, ROWINDEX[_t.INT64], frontier, 0)
        # candidates = frontier min.first A, masked to undiscovered vertices.
        vxm(frontier, parents, None, MIN_FIRST_SEMIRING[_t.INT64], frontier,
            pat, desc=DESC_RSC)
        # record the new parents
        assign(parents, frontier, None, frontier, None, desc=DESC_S)
    return parents


def _dense_levels(levels: Vector, n: int) -> np.ndarray:
    """Testing helper: levels as dense array with -1 for unreached."""
    out = np.full(n, -1, dtype=np.int64)
    idx, vals = levels.extract_tuples()
    out[idx] = vals
    return out

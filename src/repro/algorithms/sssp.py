"""Single-source shortest paths: Bellman–Ford over the MIN_PLUS semiring."""

from __future__ import annotations

from ..core import types as _t
from ..core.errors import InvalidIndexError, InvalidValueError
from ..core.matrix import Matrix
from ..core.semiring import MIN_PLUS_SEMIRING
from ..core.vector import Vector
from ..ops.ewise import ewise_add
from ..core.binaryop import MIN
from ..ops.mxm import vxm

__all__ = ["sssp"]


def sssp(a: Matrix, source: int, *, max_iters: int | None = None) -> Vector:
    """Distances from ``source`` over non-negative edge weights (FP64).

    Classic algebraic Bellman–Ford: relax ``d ← d min.+ A`` until the
    distance vector reaches a fixpoint (at most n-1 relaxations on a
    negative-cycle-free graph).
    """
    n = a.nrows
    if not (0 <= source < n):
        raise InvalidIndexError(f"source {source} out of range [0, {n})")
    if max_iters is not None and max_iters < 1:
        raise InvalidValueError("max_iters must be >= 1")
    limit = max_iters if max_iters is not None else n - 1

    # No memoized structure block here on purpose: MIN_PLUS *reads the
    # edge weights*, so there is no pure pattern-of-a preprocessing step
    # to cache (unlike the counting/boolean algorithms in this package).
    dist = Vector.new(_t.FP64, n, a.context)
    dist.set_element(0.0, source)
    for _ in range(max(limit, 1)):
        prev = dist.dup()
        # dist = min(dist, dist min.+ A)
        relaxed = Vector.new(_t.FP64, n, a.context)
        vxm(relaxed, None, None, MIN_PLUS_SEMIRING[_t.FP64], dist, a)
        ewise_add(dist, None, None, MIN[_t.FP64], dist, relaxed)
        if _vectors_equal(prev, dist):
            break
    return dist


def _vectors_equal(u: Vector, v: Vector) -> bool:
    ui, uv = u.extract_tuples()
    vi, vv = v.extract_tuples()
    if len(ui) != len(vi):
        return False
    return bool((ui == vi).all() and (uv == vv).all())

"""Triangle counting — the flagship use of the new ``select`` (§VIII, Fig. 3).

The Sandia algorithm: with L the strict lower triangle of the symmetric
adjacency matrix, the triangle count is ``sum(L .* (L @ Lᵀ))`` —
computed as a masked mxm.  Extracting L is exactly the paper's Fig. 3
``select(TRIL)`` example; under 1.X it needed the extract/filter/build
round-trip (:func:`repro.compat.onex.extract_filter_build_select`).

:func:`triangle_count_burkhardt` gives the simpler (more expensive)
``sum(A² .* A) / 6`` formulation as a cross-check and as the baseline
the masked variant is benchmarked against.
"""

from __future__ import annotations

import time

from ..core import types as _t
from ..core.descriptor import DESC_S
from ..core.matrix import Matrix
from ..core.monoid import PLUS_MONOID
from ..core.semiring import PLUS_TIMES_SEMIRING
from ..ops.mxm import mxm
from ..ops.reduce import reduce_scalar

__all__ = ["triangle_count", "triangle_count_burkhardt"]


def _pattern(a: Matrix) -> Matrix:
    """INT64 pattern copy of a (memoized across calls on unchanged a)."""
    from ._blocks import pattern_matrix

    return pattern_matrix(a, _t.INT64)


def triangle_count(a: Matrix) -> int:
    """Triangles in the undirected graph with symmetric pattern ``a``.

    Sandia variant: L = tril(A, -1); count = sum(L .* (L Lᵀ)).

    Incremental (``ENGINE_DELTA``): the count is stored as a warm block
    when the pattern is symmetric; a batched delta write updates it
    exactly (wedge closures on the delta) so the next call returns
    without running the masked mxm at all.
    """
    from . import _blocks, delta as _delta
    from ._blocks import lower_triangle

    warm = _blocks.load_warm(a, "triangles", ())
    if warm is not None:
        return int(warm[0])
    t0 = time.perf_counter()

    def build_wedges():
        low = lower_triangle(a, _t.INT64, -1)        # Fig. 3 idiom
        c = Matrix.new(_t.INT64, a.nrows, a.ncols, a.context)
        # C⟨L,structure⟩ = L ⊕.⊗ Lᵀ — mask prunes the product to wedges
        # that close a triangle.
        mxm(c, low, None, PLUS_TIMES_SEMIRING[_t.INT64], low, low,
            desc=_DESC_ST1)
        return c

    # The wedge matrix is by far the most expensive pure derivative of
    # ``a`` in the whole algorithm suite — exactly what the block memo
    # (and, through it, the persistent warm-start store) is for.
    c = _blocks.memoized_matrix(a, "wedges", build_wedges)
    total = int(reduce_scalar(PLUS_MONOID[_t.INT64], c))
    try:
        if _delta.pattern_symmetric(a._capture()):
            _blocks.store_warm(
                a, "triangles", total,
                meta={"base_nnz": a.nvals()},
                cost_ms=(time.perf_counter() - t0) * 1e3,
            )
    except Exception:
        pass  # best-effort: warmth must never fail the algorithm
    return total


def triangle_count_burkhardt(a: Matrix) -> int:
    """Burkhardt variant: sum(A² .* A) / 6 — unmasked baseline."""
    pat = _pattern(a)
    sq = Matrix.new(_t.INT64, a.nrows, a.ncols, a.context)
    mxm(sq, pat, None, PLUS_TIMES_SEMIRING[_t.INT64], pat, pat, desc=DESC_S)
    total = reduce_scalar(PLUS_MONOID[_t.INT64], sq)
    return int(total) // 6


# structural mask + transposed second input
from ..core.descriptor import Descriptor as _Descriptor  # noqa: E402

_DESC_ST1 = _Descriptor(structure=True, tran1=True)._freeze()

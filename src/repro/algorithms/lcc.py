"""Local clustering coefficients via masked mxm.

``lcc(v) = closed wedges at v / possible wedges at v``: the numerator
is the row sum of ``(A·A)⊙A`` (each triangle at v closes two ordered
wedges), the denominator ``deg(v)·(deg(v)−1)``.  One masked mxm plus
two reductions — Fig. 3's masked-product idiom again.
"""

from __future__ import annotations

from ..core import types as T
from ..core.binaryop import DIV, MINUS, TIMES
from ..core.descriptor import DESC_S
from ..core.matrix import Matrix
from ..core.monoid import PLUS_MONOID
from ..core.semiring import PLUS_TIMES_SEMIRING
from ..core.vector import Vector
from ..ops.apply import apply
from ..ops.assign import assign
from ..ops.ewise import ewise_mult
from ..ops.mxm import mxm
from ..ops.reduce import reduce_to_vector

__all__ = ["local_clustering_coefficient"]


def local_clustering_coefficient(a: Matrix) -> Vector:
    """lcc per vertex for an undirected simple graph pattern ``a``.

    Every vertex with at least one edge gets an entry; vertices in no
    triangle (including degree-1 vertices) get 0.
    """
    from . import _blocks

    n = a.nrows

    # Closed wedges: row sums of (pat·pat) masked to pat's structure —
    # the dominant cost of the whole algorithm (one masked SpGEMM), so
    # it is memoized as a building block: a repeated lcc call on the
    # unchanged graph skips the product entirely.
    def _closed_wedges():
        pat_ = _blocks.pattern_matrix(a, T.FP64)
        closed_m = Matrix.new(T.FP64, n, n, a.context)
        mxm(closed_m, pat_, None, PLUS_TIMES_SEMIRING[T.FP64], pat_, pat_,
            desc=DESC_S)
        closed_ = Vector.new(T.FP64, n, a.context)
        reduce_to_vector(closed_, None, None, PLUS_MONOID[T.FP64], closed_m)
        return closed_

    closed = _blocks.memoized_vector(a, "lcc_closed", _closed_wedges)

    # possible wedges: deg·(deg−1).
    deg = _blocks.degree_vector(a, T.FP64)
    deg_m1 = Vector.new(T.FP64, n, a.context)
    apply(deg_m1, None, None, MINUS[T.FP64], deg, 1.0)
    possible = Vector.new(T.FP64, n, a.context)
    ewise_mult(possible, None, None, TIMES[T.FP64], deg, deg_m1)

    # A closed wedge implies degree >= 2, so the intersection below
    # never divides by zero.
    lcc = Vector.new(T.FP64, n, a.context)
    ewise_mult(lcc, None, None, DIV[T.FP64], closed, possible)

    # Densify over the vertex set with edges: 0 baseline, lcc on top.
    out = Vector.new(T.FP64, n, a.context)
    assign(out, deg, None, 0.0, None, desc=DESC_S)
    assign(out, lcc, None, lcc, None, desc=DESC_S)
    return out

"""Maximal independent set — Luby's algorithm in the language of masks.

Each round: candidates draw random scores; a candidate joins the set
when its score beats every candidate neighbour's (computed with one
MAX_SECOND mxv); winners and their neighbours leave the candidate pool.
Classic GraphBLAS demo of valued masks + complemented masks.
"""

from __future__ import annotations

import numpy as np

from ..core import types as T
from ..core.binaryop import GT, LOR
from ..core.descriptor import DESC_RS, DESC_RSC, DESC_S
from ..core.matrix import Matrix
from ..core.semiring import LOR_LAND_SEMIRING_BOOL, MAX_SECOND_SEMIRING
from ..core.vector import Vector
from ..ops.assign import assign
from ..ops.ewise import ewise_add, ewise_mult
from ..ops.mxm import mxv

__all__ = ["maximal_independent_set"]


def maximal_independent_set(a: Matrix, *, seed: int = 42) -> Vector:
    """A maximal independent set of the undirected pattern of ``a``.

    Returns a BOOL vector with ``True`` at member vertices.  Vertices
    with self-loops are treated as their own neighbours (never chosen
    unless isolated in the loop-free pattern).
    """
    n = a.nrows
    from ._blocks import pattern_matrix
    pat = pattern_matrix(a, T.BOOL)   # both semirings ignore edge values
    rng = np.random.default_rng(seed)
    iset = Vector.new(T.BOOL, n, a.context)
    candidates = Vector.new(T.BOOL, n, a.context)
    candidates.build(np.arange(n), np.ones(n, dtype=bool))

    max_rounds = 4 * int(np.log2(n + 1)) + 16
    for _ in range(max_rounds):
        cand_idx, _ = candidates.extract_tuples()
        if len(cand_idx) == 0:
            break
        # Random scores on candidates (strictly positive).
        scores = Vector.new(T.FP64, n, a.context)
        scores.build(cand_idx, rng.random(len(cand_idx)) + 1e-9)
        # Best score among candidate neighbours of each vertex.
        nbr_best = Vector.new(T.FP64, n, a.context)
        mxv(nbr_best, candidates, None, MAX_SECOND_SEMIRING[T.FP64],
            pat, scores, desc=DESC_RS)
        # Winners: candidates whose score beats all candidate neighbours
        # (vertices with no candidate neighbour win outright).
        winners = Vector.new(T.BOOL, n, a.context)
        ewise_mult(winners, None, None, GT[T.FP64], scores, nbr_best)
        # Candidates absent from nbr_best have no candidate neighbours:
        lonely = Vector.new(T.BOOL, n, a.context)
        assign(lonely, scores, None, True, None, desc=DESC_S)
        assign(lonely, nbr_best, None, False, None, desc=DESC_S)
        winners_full = Vector.new(T.BOOL, n, a.context)
        ewise_add(winners_full, None, None, LOR[T.BOOL], winners, lonely)
        # keep only true entries
        true_w = Vector.new(T.BOOL, n, a.context)
        from ..core.indexunaryop import VALUEEQ
        from ..ops.select import select
        select(true_w, None, None, VALUEEQ[T.BOOL], winners_full, True)
        if true_w.nvals() == 0:
            continue
        # Add winners to the set.
        assign(iset, true_w, None, True, None, desc=DESC_S)
        # Remove winners and their neighbours from the candidate pool.
        nbrs = Vector.new(T.BOOL, n, a.context)
        mxv(nbrs, None, None, LOR_LAND_SEMIRING_BOOL, pat, true_w)
        removed = Vector.new(T.BOOL, n, a.context)
        ewise_add(removed, None, None, LOR[T.BOOL], true_w, nbrs)
        # candidates ← candidates, masked off the removed set.
        survivors = Vector.new(T.BOOL, n, a.context)
        assign(survivors, removed, None, candidates, None, desc=DESC_RSC)
        candidates = survivors
    return iset

"""Memoized algorithm building blocks (§III amortized setup).

Every algorithm in this package starts by deriving the same handful of
pure values from its input graph — a pattern (weights-erased) copy of
the adjacency matrix, its degree vector, a strict lower triangle, a
normalized flow matrix — and until now re-ran those kernels on *every*
call.  The per-Context result memo (:mod:`repro.engine.memo`) already
knows how to cache committed carriers keyed on versioned handle
identity, so this module routes the building blocks through it: the
first ``pagerank(a)`` materializes and stores each block, the second
call on an unchanged ``a`` wraps the cached carriers in fresh handles
and submits **zero setup kernels**.

Soundness is inherited from the memo's machinery:

* keys embed ``(a._uid, a._version)``, so any write to the graph makes
  every cached block unreachable (and the eager ``invalidate_handle``
  path drops the entries outright);
* ``GrB_free(a)`` releases the entries via ``release_handle``;
* entries live in the graph's own context memo, so a hit can never
  cross a context/mode boundary;
* a hit republishes through the transactional commit gate
  (:mod:`repro.engine.txn`) exactly like the scheduler's memo path —
  cached carriers cannot dodge the fault plane (or the commit-time
  format policy: a cached block repacks CSR↔DCSR on republish if the
  policy says so), and a rejected commit falls back to rebuilding;
* keys embed the storage-format policy fingerprint (``FORMAT_AUTO``
  and its thresholds), so flipping the hypersparse knobs — the CI
  ablation rows do this — invalidates every structurally-keyed block
  instead of serving a carrier shaped under the other policy.

Cost-weighted eviction keeps the expensive blocks around: each store
records the measured build time, so a wedge-count matrix does not get
evicted to make room for a degree vector.

``ENGINE_ALGO_MEMO=0`` (or ``ENGINE_MEMO=0``) disables the plumbing
entirely — every block builds fresh, byte-identical to the pre-memo
behavior.
"""

from __future__ import annotations

import time
from typing import Callable

from ..core import types as T
from ..core.binaryop import ONEB
from ..core.context import WaitMode
from ..core.indexunaryop import TRIL
from ..core.matrix import Matrix
from ..core.monoid import PLUS_MONOID
from ..core.vector import Vector
from ..engine import txn
from ..engine.stats import STATS
from ..faults.retry import with_retry
from ..internals import config
from ..ops.apply import apply
from ..ops.reduce import reduce_to_vector
from ..ops.select import select

__all__ = [
    "memoized_matrix", "memoized_vector",
    "pattern_matrix", "degree_vector", "lower_triangle",
    "load_warm", "store_warm",
]


def _memo_for(a):
    """The graph's context memo, or ``None`` when the algo-memo plumbing
    is off (knobs, freed context, no versioned identity)."""
    if not (config.ENGINE_ALGO_MEMO and config.ENGINE_MEMO):
        return None
    ctx = a.context
    if ctx is None or ctx.is_freed:
        return None
    return ctx.result_memo()


def _format_fingerprint() -> tuple:
    """The knob state :func:`choose_mat_format` decides under — part of
    every block key, so a policy flip invalidates structural entries."""
    return (
        1 if config.FORMAT_AUTO else 0,
        int(config.FORMAT_DCSR_MIN_ROWS),
        int(config.FORMAT_DCSR_FACTOR),
    )


def _ensure_store_digest(a) -> None:
    """Register *a*'s content digest with the warm-start store tier
    (:mod:`repro.store`), so this graph's block keys can be derived on
    disk and a fresh process computing the same graph finds them.
    No-op without an active store; one dict probe per later call."""
    if not (config.STORE_ENABLE and config.STORE_DIR):
        return
    try:
        from ..store import tier

        tier.ensure_digest(a)
    except Exception:
        pass  # best-effort, like the block stores themselves


def _key(a, kind: str, params: tuple) -> tuple:
    # The "algo" discriminator keeps these keys disjoint from the
    # expression keys (dag.memo_key tuples start with "op"/"stages").
    with a._lock:
        vkey = (a._uid, a._version)
    return ("algo", kind, vkey, params, _format_fingerprint())


def _cached(a, kind: str, params: tuple, build: Callable, wrap: Callable):
    """The memoized-block protocol shared by matrix and vector blocks.

    Hit: republish the cached carrier through the commit gate and wrap
    it in a fresh handle — no ops are submitted, no kernels run.  Miss:
    run the builder, force it, and store the committed carrier with the
    measured build time as its eviction score.
    """
    memo = _memo_for(a)
    if memo is None:
        return build()
    _ensure_store_digest(a)
    key = _key(a, kind, params)
    cached = memo.lookup(key)
    if cached is not None:
        try:
            committed = with_retry(
                lambda: txn.commit(f"algo:{kind}", cached), f"algo:{kind}"
            )
            STATS.bump("memo_hits")
            STATS.bump("memo_reused")
            STATS.bump("algo_memo_hits")
            STATS.instant(
                f"algo-memo:{kind}", "memo",
                {"kind": kind, "graph_uid": key[2][0],
                 "nvals": getattr(committed, "nvals", None)},
            )
            return wrap(committed, a.context)
        except Exception:
            # Commit gate rejected the republish (injected fault or
            # corrupt carrier): rebuild as if the entry never existed.
            STATS.bump("algo_memo_fallbacks")
    STATS.bump("algo_memo_misses")
    t0 = time.perf_counter()
    out = build()
    out.wait(WaitMode.MATERIALIZE)
    built_ms = (time.perf_counter() - t0) * 1e3
    with a._lock:
        deps = (a._uid,)
    try:
        memo.store(key, out._data, deps, owner_uid=None, cost_ms=built_ms)
        STATS.bump("algo_memo_stores")
    except Exception:
        pass  # best-effort: a failed store must not fail the algorithm
    return out


def memoized_matrix(a, kind: str, build: Callable, params: tuple = ()):
    """A matrix-valued building block of graph *a*, served from the
    context result memo when *a* is unchanged since it was built."""
    return _cached(a, kind, params, build, Matrix.from_data)


def memoized_vector(a, kind: str, build: Callable, params: tuple = ()):
    """Vector-valued twin of :func:`memoized_matrix`."""
    return _cached(a, kind, params, build, Vector.from_data)


# -- warm fixpoints (ENGINE_DELTA) -------------------------------------------
#
# A warm block is an algorithm's *result* (prior rank vector, component
# labels, triangle count) stored so the next run on a delta-mutated
# graph can start from it instead of cold.  Values are ``(payload,
# meta)`` tuples under kind ``"warm:<algo>"`` — the same versioned
# "algo" keys as the building blocks, so a plain write drops them and
# a batched delta write routes them through the patch rules in
# :mod:`repro.algorithms.delta`.  The ``warm:`` prefix also tells the
# serving layer's checkpoint walk to skip them (tuple values are not
# serializable carriers).


def load_warm(a, kind: str, params: tuple = ()):
    """The stored ``(payload, meta)`` warm entry for *kind*, or ``None``.

    Only entries the delta tier carried across a write (meta
    ``patched=True``, set by the ``warm:*`` patch rules) are served:
    the entry a cold run stored for its *own* version is not a restart
    seed, so repeated calls on an unchanged graph keep their exact
    cold iteration counts and kernel schedule.
    """
    if not config.ENGINE_DELTA:
        return None
    memo = _memo_for(a)
    if memo is None:
        return None
    entry = memo.lookup(_key(a, "warm:" + kind, params))
    if entry is None or not entry[1].get("patched"):
        return None
    STATS.bump("algo_warm_hits")
    STATS.instant(
        f"algo-warm:{kind}", "memo",
        {"kind": kind, "stale": entry[1].get("stale", 0)},
    )
    return entry


def store_warm(
    a, kind: str, payload, meta: dict | None = None,
    params: tuple = (), cost_ms: float = 0.0,
) -> None:
    """Record an algorithm result as the warm seed for the next run."""
    if not config.ENGINE_DELTA:
        return
    memo = _memo_for(a)
    if memo is None:
        return
    with a._lock:
        deps = (a._uid,)
    try:
        memo.store(
            _key(a, "warm:" + kind, params),
            (payload, dict(meta or {})),
            deps, owner_uid=None, cost_ms=max(0.0, float(cost_ms)),
        )
        STATS.bump("algo_warm_stores")
    except Exception:
        pass  # best-effort, like the building-block stores


# -- the shared blocks --------------------------------------------------------


def pattern_matrix(a, out_type=T.FP64):
    """Weights-erased copy of ``a``: every stored entry becomes 1.

    The universal first step of pattern algorithms (pagerank, triangle
    counting, k-core, BFS structure) — and for value-carrying semirings
    like PLUS_TIMES the step that makes path *counting* correct on
    weighted graphs.
    """
    def build():
        pat = Matrix.new(out_type, a.nrows, a.ncols, a.context)
        apply(pat, None, None, ONEB[out_type], a, 1)
        return pat

    return memoized_matrix(a, "pattern", build, (out_type.name,))


def degree_vector(a, out_type=T.FP64):
    """Row degrees of ``a``'s pattern (nested block: the pattern itself
    memoizes independently, so a degree miss can still hit it)."""
    def build():
        pat = pattern_matrix(a, out_type)
        deg = Vector.new(out_type, a.nrows, a.context)
        reduce_to_vector(deg, None, None, PLUS_MONOID[out_type], pat)
        return deg

    return memoized_vector(a, "degree", build, (out_type.name,))


def lower_triangle(a, out_type=T.INT64, k: int = -1):
    """Strict (``k=-1``) lower triangle of ``a``'s pattern — the Fig. 3
    ``select(TRIL)`` idiom the Sandia triangle count starts from."""
    def build():
        pat = pattern_matrix(a, out_type)
        low = Matrix.new(out_type, a.nrows, a.ncols, a.context)
        select(low, None, None, TRIL, pat, k)
        return low

    return memoized_matrix(a, "tril", build, (out_type.name, k))

"""Markov clustering (MCL) — flow simulation by expansion and inflation.

Van Dongen's graph clustering algorithm is a pure matrix-iteration
workload:

* **expansion** — ``M ← M ⊕.⊗ M`` (flow spreads along paths),
* **inflation** — entrywise power + column re-normalization (strong
  flows strengthen, weak flows decay),
* **pruning** — drop entries below a threshold (§VIII's ``select`` with
  VALUEGE keeps the iteration sparse — the exact role the paper assigns
  to the operation).

Clusters are the connected components of the converged flow pattern.
"""

from __future__ import annotations

import numpy as np

from ..core import types as T
from ..core.binaryop import BinaryOp, PLUS
from ..core.descriptor import DESC_T0
from ..core.errors import InvalidValueError
from ..core.indexunaryop import VALUEGE
from ..core.matrix import Matrix
from ..core.monoid import PLUS_MONOID
from ..core.semiring import PLUS_TIMES_SEMIRING
from ..core.unaryop import MINV
from ..core.vector import Vector
from ..ops.apply import apply
from ..ops.mxm import mxm
from ..ops.reduce import reduce_to_vector
from ..ops.select import select

__all__ = ["markov_clustering"]


def _column_normalize(m: Matrix) -> Matrix:
    """Scale columns to sum 1: M · diag(1 / colsum)."""
    n = m.ncols
    colsum = Vector.new(T.FP64, n, m.context)
    reduce_to_vector(colsum, None, None, PLUS_MONOID[T.FP64], m, desc=DESC_T0)
    inv = Vector.new(T.FP64, n, m.context)
    apply(inv, None, None, MINV[T.FP64], colsum)
    d = Matrix.diag(inv)
    out = Matrix.new(T.FP64, m.nrows, n, m.context)
    mxm(out, None, None, PLUS_TIMES_SEMIRING[T.FP64], m, d)
    return out


def markov_clustering(
    a: Matrix,
    *,
    inflation: float = 2.0,
    prune: float = 1e-4,
    max_iters: int = 60,
    tol: float = 1e-8,
) -> tuple[dict[int, int], Matrix]:
    """Cluster the undirected graph ``a``; returns (labels, flow matrix).

    ``labels`` maps every vertex to its cluster id (the smallest vertex
    id in its cluster).  Self-loops are added (the standard MCL
    regularization) before normalization.
    """
    if inflation <= 1.0:
        raise InvalidValueError("inflation must be > 1")
    if not (0.0 < prune < 1.0):
        raise InvalidValueError("prune threshold must be in (0, 1)")
    n = a.nrows

    # M0: pattern + self loops, column-normalized — the normalized
    # adjacency building block, memoized across calls on unchanged a.
    from . import _blocks

    def _m0():
        from ..ops.assign import assign
        from ..ops.ewise import ewise_add

        m0 = _blocks.pattern_matrix(a, T.FP64)
        eye = Vector.new(T.FP64, n, a.context)
        assign(eye, None, None, 1.0, None)
        looped = Matrix.new(T.FP64, n, n, a.context)
        ewise_add(looped, None, None, PLUS[T.FP64], m0, Matrix.diag(eye))
        return _column_normalize(looped)

    m = _blocks.memoized_matrix(a, "mcl_m0", _m0)

    power = BinaryOp.new(lambda x, r: float(x) ** float(r),
                         T.FP64, T.FP64, T.FP64, "pow")

    prev = None
    for _ in range(max_iters):
        # expansion
        sq = Matrix.new(T.FP64, n, n, a.context)
        mxm(sq, None, None, PLUS_TIMES_SEMIRING[T.FP64], m, m)
        # inflation
        infl = Matrix.new(T.FP64, n, n, a.context)
        apply(infl, None, None, power, sq, inflation)
        infl = _column_normalize(infl)
        # pruning (renormalize afterwards so columns stay stochastic)
        kept = Matrix.new(T.FP64, n, n, a.context)
        select(kept, None, None, VALUEGE[T.FP64], infl, prune)
        m = _column_normalize(kept)
        cur = m.to_dict()
        if prev is not None and _converged(prev, cur, tol):
            break
        prev = cur

    # Clusters: components of the symmetrized converged pattern.
    rows, cols, _ = m.extract_tuples()
    sym = Matrix.new(T.BOOL, n, n, a.context)
    if len(rows):
        from ..core.binaryop import LOR
        sym.build(
            np.concatenate([rows, cols]), np.concatenate([cols, rows]),
            np.ones(2 * len(rows), dtype=bool), LOR[T.BOOL],
        )
    from .components import connected_components
    comp = connected_components(sym)
    labels = {int(k): int(v) for k, v in comp.to_dict().items()}
    return labels, m


def _converged(prev: dict, cur: dict, tol: float) -> bool:
    if set(prev) != set(cur):
        return False
    return all(abs(prev[k] - cur[k]) <= tol for k in cur)

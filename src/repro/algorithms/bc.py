"""Betweenness centrality — algebraic Brandes (LAGraph-style).

Forward phase: BFS waves carry *shortest-path counts* (σ) under
PLUS_TIMES, masked by the set of already-discovered vertices.  Backward
phase: dependencies δ flow back one wave at a time,

    δ(v) = Σ_{w ∈ succ(v)} σ(v)/σ(w) · (1 + δ(w)),

expressed as an mxv against the wave-masked quotient vector.  This is
the workload that stresses masks, accumulators, and eWise arithmetic
together — the reason BC is a standard GraphBLAS showcase.
"""

from __future__ import annotations

from typing import Iterable, Sequence

import numpy as np

from ..core import types as T
from ..core.binaryop import DIV, PLUS, TIMES
from ..core.descriptor import DESC_RS, DESC_RSC, DESC_S
from ..core.errors import InvalidIndexError
from ..core.matrix import Matrix
from ..core.semiring import PLUS_TIMES_SEMIRING
from ..core.vector import Vector
from ..ops.assign import assign
from ..ops.ewise import ewise_add, ewise_mult
from ..ops.mxm import mxv, vxm

__all__ = ["betweenness_centrality"]


def _bc_from_source(a: Matrix, source: int) -> Vector:
    """Unnormalized dependency scores δ for one source vertex.

    ``a`` must already be a pattern (all-ones) matrix: σ counts *paths*,
    so PLUS_TIMES must multiply 1s, not edge weights.
    """
    n = a.nrows
    sr = PLUS_TIMES_SEMIRING[T.FP64]

    # -- forward: sigma per BFS wave ---------------------------------------
    paths = Vector.new(T.FP64, n, a.context)       # σ accumulated
    paths.set_element(1.0, source)
    frontier = Vector.new(T.FP64, n, a.context)    # σ of current wave
    frontier.set_element(1.0, source)
    waves: list[Vector] = [frontier.dup()]
    while True:
        # next wave: path counts through the frontier, undiscovered only
        vxm(frontier, paths, None, sr, frontier, a, desc=DESC_RSC)
        if frontier.nvals() == 0:
            break
        assign(paths, frontier, PLUS[T.FP64], frontier, None, desc=DESC_S)
        waves.append(frontier.dup())

    # -- backward: dependency accumulation -----------------------------------
    delta = Vector.new(T.FP64, n, a.context)       # dense-ish over reached
    idx, _ = paths.extract_tuples()
    if len(idx):
        delta.build(idx, np.zeros(len(idx)))
    for d in range(len(waves) - 1, 0, -1):
        wave = waves[d]
        # t(w) = (1 + δ(w)) / σ(w) over wave d
        t = Vector.new(T.FP64, n, a.context)
        assign(t, wave, None, 1.0, None, desc=DESC_S)      # 1 on the wave
        ewise_add(t, wave, None, PLUS[T.FP64], t, delta, desc=DESC_RS)
        ewise_mult(t, None, None, DIV[T.FP64], t, wave)    # ÷ σ (wave vals)
        # pull to predecessors: r = A · t
        r = Vector.new(T.FP64, n, a.context)
        mxv(r, waves[d - 1], None, sr, a, t, desc=DESC_RS)
        # δ(v) += σ(v) · r(v) on wave d-1
        contrib = Vector.new(T.FP64, n, a.context)
        ewise_mult(contrib, None, None, TIMES[T.FP64], waves[d - 1], r)
        ewise_add(delta, None, None, PLUS[T.FP64], delta, contrib)
    return delta



def betweenness_centrality(
    a: Matrix,
    sources: Sequence[int] | None = None,
) -> Vector:
    """Betweenness (unnormalized) accumulated over ``sources``.

    ``sources=None`` uses every vertex (exact BC); a subset gives the
    standard sampled approximation.  Endpoint vertices are excluded, as
    in Brandes.
    """
    n = a.nrows
    srcs: Iterable[int] = range(n) if sources is None else sources
    # One memoized pattern shared by every source (and by repeated BC
    # calls on the unchanged graph); also keeps σ correct when the
    # input carries non-unit edge weights.
    from ._blocks import pattern_matrix
    pat = pattern_matrix(a, T.FP64)
    total = Vector.new(T.FP64, n, a.context)
    zeros = np.zeros(n)
    total.build(np.arange(n), zeros)
    for s in srcs:
        if not (0 <= s < n):
            raise InvalidIndexError(f"source {s} out of range [0, {n})")
        delta = _bc_from_source(pat, int(s))
        # exclude the source's own entry (endpoints don't count)
        delta.remove_element(int(s))
        ewise_add(total, None, None, PLUS[T.FP64], total, delta)
    return total

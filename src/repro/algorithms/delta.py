"""Delta patch rules: update memoized blocks from a write set.

When a batched write (:meth:`repro.core.matrix.Matrix.update_batch`)
advances a graph handle, the memo's delta tier
(:func:`repro.engine.memo.patch_handle_blocks`) asks this module for a
rule per cached-block kind.  A rule takes ``(value, params, delta)`` —
the cached entry's value, the key's params tuple, and the
:class:`~repro.internals.stream.WriteDelta` — and returns the patched
value, or ``None`` to decline (the entry then drops and the next run
rebuilds cold).  Rules run under the memo lock: pure array code only,
no memo re-entry, no forcing.

Two block families are patchable:

* **Building blocks** (``pattern``/``degree``/``tril``) are *exact*
  merges: a genuinely-new edge is by construction absent from every
  derived pattern of the old graph, so the patch is an insert-only
  positional merge (plus a per-row count bump for degrees).  A
  value-only overwrite leaves all three untouched.
* **Warm fixpoints** (``warm:pagerank``/``warm:components``/
  ``warm:triangles``, stored by the algorithms themselves via
  :func:`repro.algorithms._blocks.store_warm`):

  - pagerank *carries* the prior rank vector across the write
    (tracking accumulated staleness in ``meta``) — the next call
    restarts iteration from it and converges in a handful of sweeps;
  - components re-merges only the labels touching delta endpoints
    (union-find with min-root union; exact because old labels are
    component minima — requires the old graph symmetric, checked at
    store time, and the new-edge set symmetric, checked here);
  - triangles adds the delta's wedge closures exactly: ``ΔT = T1 + T2
    + T3/3`` over triangles with one, two, or three new undirected
    edges.

Every rule defers to :func:`repro.engine.passes.cost.should_delta_patch`
so a delta past the rebuild-is-cheaper threshold drops the entry
instead (the cold fallback the acceptance criteria demand).
"""

from __future__ import annotations

from collections import defaultdict

import numpy as np

from ..engine import memo as _memo
from ..engine.passes import cost
from ..internals.containers import VecData, pair_keys
from ..internals.stream import insert_edges

__all__ = ["resolve_patch", "pattern_symmetric"]

_INT = np.int64


def pattern_symmetric(d) -> bool:
    """True when carrier *d*'s structure equals its transpose's.

    The store-time precondition for the undirected warm rules; O(nnz)
    plus one sort, paid once per cold run that records a warm entry.
    """
    if d.nrows != d.ncols:
        return False
    r = d.row_indices()
    c = d.col_indices
    k1 = pair_keys(r, c, d.ncols)
    k2 = np.sort(pair_keys(c, r, d.ncols))
    return bool(np.array_equal(k1, k2))


def _ones(t, n: int) -> np.ndarray:
    return t.coerce_array(np.ones(n))


# -- building-block rules -----------------------------------------------------


def _patch_pattern(value, params, delta):
    new_r, new_c = delta.new_edges()
    if len(new_r) == 0:
        return value  # value-only overwrite: the pattern is unchanged
    if not cost.should_delta_patch("pattern", delta.n, delta.base.nvals):
        return None
    return insert_edges(value, new_r, new_c, _ones(value.type, len(new_r)))


def _patch_degree(value, params, delta):
    new_r, _ = delta.new_edges()
    if len(new_r) == 0:
        return value
    if not cost.should_delta_patch("degree", delta.n, delta.base.nvals):
        return None
    t = value.type
    uniq, counts = np.unique(new_r, return_counts=True)
    merged = np.union1d(value.indices, uniq).astype(_INT)
    out = np.zeros(len(merged), dtype=t.np_dtype)
    out[np.searchsorted(merged, value.indices)] = value.values
    out[np.searchsorted(merged, uniq)] += counts.astype(t.np_dtype)
    return VecData(value.size, t, merged, t.coerce_array(out))


def _patch_tril(value, params, delta):
    new_r, new_c = delta.new_edges()
    if len(new_r) == 0:
        return value
    if not cost.should_delta_patch("tril", delta.n, delta.base.nvals):
        return None
    k = int(params[1]) if len(params) > 1 else -1
    keep = new_c <= new_r + k  # the TRIL keep condition (Table IV)
    return insert_edges(
        value, new_r[keep], new_c[keep], _ones(value.type, int(keep.sum()))
    )


# -- warm-fixpoint rules ------------------------------------------------------


def _patch_warm_pagerank(value, params, delta):
    payload, meta = value
    n_new = delta.n_new
    if n_new == 0:
        return value
    stale = int(meta.get("stale", 0)) + n_new
    base_nnz = int(meta.get("base_nnz", delta.base.nvals))
    # Staleness accumulates across writes: pagerank carries the vector
    # as a *seed*, so the gate is on total drift since convergence,
    # not just this delta.
    if not cost.should_delta_patch("warm:pagerank", stale, base_nnz):
        return None
    return (payload, {**meta, "stale": stale})


def _patch_warm_components(value, params, delta):
    payload, meta = value
    new_r, new_c = delta.new_edges()
    if len(new_r) == 0:
        return value
    if payload.nvals != payload.size:  # labels must be dense
        return None
    if not delta.new_symmetric():
        return None
    if not cost.should_delta_patch(
        "warm:components", delta.n, delta.base.nvals
    ):
        return None
    labels = payload.values
    # Union-find over the *labels* at delta endpoints.  Old labels are
    # component minima, and min-root union keeps every root the minimum
    # of its merged set — so relabelling to the root reproduces the
    # cold fixpoint exactly.
    parent: dict = {}

    def find(x):
        root = x
        while parent.get(root, root) != root:
            root = parent[root]
        while parent.get(x, x) != x:
            parent[x], x = root, parent[x]
        return root

    endpoint_labels = labels[new_r]
    other_labels = labels[new_c]
    for la, lb in zip(endpoint_labels.tolist(), other_labels.tolist()):
        ra, rb = find(la), find(lb)
        if ra != rb:
            if ra < rb:
                parent[rb] = ra
            else:
                parent[ra] = rb
    mapping = {}
    for lab in set(endpoint_labels.tolist()) | set(other_labels.tolist()):
        root = find(lab)
        if root != lab:
            mapping[lab] = root
    if not mapping:
        return value  # intra-component edges only
    keys = np.sort(np.fromiter(mapping, dtype=_INT, count=len(mapping)))
    roots = np.fromiter((mapping[k] for k in keys.tolist()), dtype=_INT,
                        count=len(keys))
    pos = np.searchsorted(keys, labels)
    safe = np.minimum(pos, len(keys) - 1)
    hit = keys[safe] == labels
    new_labels = labels.copy()
    new_labels[hit] = roots[safe[hit]]
    return (
        VecData(payload.size, payload.type, payload.indices, new_labels),
        meta,
    )


def _patch_warm_triangles(value, params, delta):
    count, meta = value
    new_r, new_c = delta.new_edges()
    if len(new_r) == 0:
        return value
    if not delta.new_symmetric():
        return None
    base = delta.base
    if not cost.should_delta_patch("warm:triangles", delta.n, base.nvals):
        return None
    # Undirected new edges, one orientation each.
    und = [
        (int(u), int(v))
        for u, v in zip(new_r.tolist(), new_c.tolist()) if u < v
    ]
    new_set = set(und)
    row_cache: dict = {}

    def row(u):
        cols = row_cache.get(u)
        if cols is None:
            cols = base.row_slice(u)[0]
            row_cache[u] = cols
        return cols

    # T1: triangles closing a new edge with two *old* edges — the wedge
    # count |N_old(u) ∩ N_old(v)| per new undirected edge.  (The base is
    # symmetric by the store-time precondition, so rows are neighbor
    # sets; (u,v) itself is new and hence absent from both rows.)
    t1 = 0
    for u, v in und:
        t1 += len(np.intersect1d(row(u), row(v), assume_unique=True))
    # T2/T3: triangles with two or three new edges, enumerated over the
    # (small, cost-gated) new-edge adjacency.  A two-new triangle is
    # counted exactly once (at its shared vertex); an all-new triangle
    # three times (once per vertex), hence the /3.
    nbrs: dict = defaultdict(list)
    for u, v in und:
        nbrs[u].append(v)
        nbrs[v].append(u)
    t2 = 0
    t3_threefold = 0
    for _x, adjacent in nbrs.items():
        adjacent = sorted(adjacent)
        for i in range(len(adjacent)):
            cols_y = None
            for j in range(i + 1, len(adjacent)):
                y, z = adjacent[i], adjacent[j]
                if (y, z) in new_set:
                    t3_threefold += 1
                else:
                    if cols_y is None:
                        cols_y = row(y)
                    p = int(np.searchsorted(cols_y, z))
                    if p < len(cols_y) and cols_y[p] == z:
                        t2 += 1
    return (int(count) + t1 + t2 + t3_threefold // 3, meta)


def _mark_patched(rule):
    """Wrap a warm rule so a surviving entry's meta carries
    ``patched=True``: only a block that actually crossed a write may
    seed a warm restart (:func:`.._blocks.load_warm` skips unflagged
    entries), so reruns on an unchanged graph stay cold — same
    iteration counts and kernel schedule as before the delta tier."""
    def wrapped(value, params, delta):
        out = rule(value, params, delta)
        if out is None:
            return None
        payload, meta = out
        return (payload, {**meta, "patched": True})
    return wrapped


_RULES = {
    "pattern": _patch_pattern,
    "degree": _patch_degree,
    "tril": _patch_tril,
    "warm:pagerank": _mark_patched(_patch_warm_pagerank),
    "warm:components": _mark_patched(_patch_warm_components),
    "warm:triangles": _mark_patched(_patch_warm_triangles),
}


def resolve_patch(kind: str):
    """The patch rule for a block kind, or ``None`` (→ drop)."""
    return _RULES.get(kind)


# Installing the resolver is what turns the memo's delta tier on; until
# this module is imported (the algorithms package pulls it in) no
# patchable entries exist and delta writes degrade to plain drops.
_memo.register_patch_resolver(resolve_patch)

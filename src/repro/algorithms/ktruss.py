"""k-truss — iterated support counting with masked mxm plus ``select``.

The k-truss of a graph is the maximal subgraph where every edge lies in
at least k−2 triangles.  The algebraic loop alternates a masked
``C⟨A,structure⟩ = A ⊕.⊗ A`` (per-edge triangle support) with the 2.0
``select(VALUEGE, k-2)`` to drop under-supported edges — the second
flagship use of §VIII's functional input mask after Fig. 3.
"""

from __future__ import annotations

from ..core import types as _t
from ..core.errors import InvalidValueError
from ..core.indexunaryop import VALUEGE
from ..core.matrix import Matrix
from ..core.semiring import PLUS_TIMES_SEMIRING
from ..core.descriptor import DESC_RS
from ..ops.mxm import mxm
from ..ops.select import select

__all__ = ["k_truss"]


def k_truss(a: Matrix, k: int, *, max_iters: int | None = None) -> Matrix:
    """The k-truss of the undirected pattern of ``a`` (INT64 support).

    Returns a matrix whose stored entries are the surviving edges with
    their triangle-support counts.
    """
    if k < 3:
        raise InvalidValueError(f"k-truss needs k >= 3, got {k}")
    from ._blocks import pattern_matrix

    n = a.nrows
    # Memoized seed; the loop's select writes go to fresh carriers, so
    # the cached pattern stays valid for the next k_truss call.
    c = pattern_matrix(a, _t.INT64)

    limit = max_iters if max_iters is not None else n
    last_nvals = c.nvals()
    for _ in range(max(limit, 1)):
        support = Matrix.new(_t.INT64, n, n, a.context)
        mxm(support, c, None, PLUS_TIMES_SEMIRING[_t.INT64], c, c,
            desc=DESC_RS)
        # unmasked, unaccumulated select fully replaces c's content
        select(c, None, None, VALUEGE[_t.INT64], support, k - 2)
        nvals = c.nvals()
        if nvals == last_nvals:
            break
        last_nvals = nvals
    return c

"""Sparse deep neural network inference (the GraphChallenge workload).

Beyond graphs, the GraphBLAS community's flagship non-graph workload is
sparse DNN inference (IEEE HPEC Graph Challenge): each layer is

    Y ← ReLU(Y ⊕.⊗ W  + b),   entries clipped to [0, cap]

which maps one-to-one onto 2.0 operations: ``mxm`` over PLUS_TIMES,
``apply`` with a bound PLUS for the bias, and — the §VIII showcase —
ReLU as ``select(VALUEGT, 0)`` with saturation via ``apply(MIN)``.
Implementing it here demonstrates that the index-aware operations carry
a real non-graph workload, exactly the generality argument the
GraphBLAS makes.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from ..core import types as T
from ..core.binaryop import MIN, PLUS
from ..core.errors import InvalidValueError
from ..core.indexunaryop import VALUEGT
from ..core.matrix import Matrix
from ..core.semiring import PLUS_TIMES_SEMIRING
from ..ops.apply import apply
from ..ops.mxm import mxm
from ..ops.select import select

__all__ = ["sparse_dnn_inference", "random_sparse_network"]


def sparse_dnn_inference(
    y0: Matrix,
    weights: Sequence[Matrix],
    biases: Sequence[float],
    *,
    cap: float | None = 32.0,
) -> Matrix:
    """Feed ``y0`` (batch × neurons) through sparse layers with ReLU.

    ``biases[k]`` is the uniform bias of layer k (the GraphChallenge
    convention); ``cap`` saturates activations (None disables).
    Returns the final activation matrix (stored entries are the
    positive activations — ReLU zeros are *not* stored, keeping the
    batch sparse, which is the entire point of the workload).
    """
    if len(weights) != len(biases):
        raise InvalidValueError("need one bias per layer")
    y = y0
    n = y0.ncols
    sr = PLUS_TIMES_SEMIRING[T.FP64]
    for w, b in zip(weights, biases):
        if w.nrows != n or w.ncols != n:
            raise InvalidValueError(
                f"layer weight must be {n}x{n}, got {w.nrows}x{w.ncols}"
            )
        z = Matrix.new(T.FP64, y.nrows, n, y.context)
        mxm(z, None, None, sr, y, w)
        if b:
            apply(z, None, None, PLUS[T.FP64], z, float(b))
        # ReLU: keep strictly-positive activations (select drops the rest).
        relu = Matrix.new(T.FP64, y.nrows, n, y.context)
        select(relu, None, None, VALUEGT[T.FP64], z, 0.0)
        if cap is not None:
            apply(relu, None, None, MIN[T.FP64], relu, float(cap))
        y = relu
    return y


def random_sparse_network(
    neurons: int,
    layers: int,
    fanin: int = 8,
    *,
    seed: int = 42,
    weight: float = 1.0,
    bias: float = -0.5,
) -> tuple[list[Matrix], list[float]]:
    """A synthetic fixed-fan-out network in a *stable* regime.

    Each neuron feeds ``fanin`` random downstream neurons with weight
    ``weight``; the negative ``bias`` kills zero-input positions, which
    is exactly what keeps the batch sparse in early layers.  With the
    defaults (unit weights, bias −0.5, cap 1.0 in the inference call)
    activations are bounded in (0, cap] and the active set grows like a
    BFS closure over the network's fan-in graph — a deterministic,
    bounded workload suited to correctness- and shape-testing.

    (The real Graph Challenge networks — RadixNet — are engineered to
    hold the active fraction constant; any i.i.d. random network is
    bistable between dying out and densifying, so we pick the stable
    side and document it.)
    """
    if fanin > neurons:
        raise InvalidValueError("fanin cannot exceed neuron count")
    rng = np.random.default_rng(seed)
    weights: list[Matrix] = []
    biases: list[float] = []
    from ..core.binaryop import PLUS as _PLUS
    for _ in range(layers):
        rows = np.repeat(np.arange(neurons, dtype=np.int64), fanin)
        cols = rng.integers(0, neurons, size=neurons * fanin)
        vals = np.full(neurons * fanin, float(weight))
        w = Matrix.new(T.FP64, neurons, neurons)
        w.build(rows, cols, vals, _PLUS[T.FP64])
        w.wait()
        weights.append(w)
        biases.append(float(bias))
    return weights, biases

"""Connected components by algebraic min-label propagation.

Every vertex starts labelled with its own id (an ``apply(ROWINDEX)``
over a dense vector — the §VIII index idiom again); labels then flow
along edges under the MIN_SECOND/MIN semiring until a fixpoint.  On an
undirected graph the result labels each component by its smallest
vertex id.
"""

from __future__ import annotations

import time

from ..core import types as _t
from ..core.binaryop import MIN
from ..core.indexunaryop import ROWINDEX
from ..core.matrix import Matrix
from ..core.semiring import MIN_FIRST_SEMIRING
from ..core.vector import Vector
from ..ops.apply import apply
from ..ops.assign import assign
from ..ops.ewise import ewise_add
from ..ops.mxm import vxm

__all__ = ["connected_components"]


def connected_components(a: Matrix, *, max_iters: int | None = None) -> Vector:
    """Component labels (INT64) for the undirected pattern of ``a``.

    Incremental (``ENGINE_DELTA``): the converged labels are stored as
    a warm block when the pattern is symmetric (the precondition under
    which the delta rule's label union-find is exact); after a batched
    delta write the patched labels are returned directly — zero
    propagation sweeps.  ``max_iters`` caps truncate the fixpoint, so
    only unbounded runs use warmth.
    """
    n = a.nrows
    from . import _blocks, delta as _delta
    if max_iters is None:
        warm = _blocks.load_warm(a, "components", ())
        if warm is not None:
            return Vector.from_data(warm[0], a.context)
    t0 = time.perf_counter()
    pat = _blocks.pattern_matrix(a, _t.BOOL)  # MIN_FIRST ignores values
    labels = Vector.new(_t.INT64, n, a.context)
    assign(labels, None, None, 0, None)           # densify
    apply(labels, None, None, ROWINDEX[_t.INT64], labels, 0)

    limit = max_iters if max_iters is not None else n
    for _ in range(max(limit, 1)):
        prev_idx, prev_vals = labels.extract_tuples()
        incoming = Vector.new(_t.INT64, n, a.context)
        vxm(incoming, None, None, MIN_FIRST_SEMIRING[_t.INT64], labels, pat)
        ewise_add(labels, None, None, MIN[_t.INT64], labels, incoming)
        idx, vals = labels.extract_tuples()
        if len(idx) == len(prev_idx) and (vals == prev_vals).all():
            break
    if max_iters is None:
        try:
            if _delta.pattern_symmetric(a._capture()):
                _blocks.store_warm(
                    a, "components", labels._capture(),
                    meta={"base_nnz": a.nvals()},
                    cost_ms=(time.perf_counter() - t0) * 1e3,
                )
        except Exception:
            pass  # best-effort: warmth must never fail the algorithm
    return labels

"""LAGraph-style graph algorithms built on the public GraphBLAS API.

The paper positions LAGraph [10] as the algorithm layer above the
GraphBLAS; this package plays that role for the reproduction, and its
implementations deliberately lean on the 2.0 features: ``select`` for
triangle extraction (Fig. 3), ``apply(ROWINDEX)`` for parent/label
propagation (§VIII), masks + descriptors throughout.
"""

from . import delta as _delta  # noqa: F401 — installs the memo patch rules
from .bc import betweenness_centrality
from .bfs import bfs_levels, bfs_parents
from .components import connected_components
from .dnn import random_sparse_network, sparse_dnn_inference
from .kcore import core_numbers, k_core
from .ktruss import k_truss
from .lcc import local_clustering_coefficient
from .mcl import markov_clustering
from .mis import maximal_independent_set
from .msbfs import all_pairs_levels, msbfs_levels
from .pagerank import pagerank
from .sssp import sssp
from .triangles import triangle_count, triangle_count_burkhardt

__all__ = [
    "betweenness_centrality",
    "bfs_levels",
    "bfs_parents",
    "connected_components",
    "core_numbers",
    "sparse_dnn_inference",
    "random_sparse_network",
    "k_core",
    "k_truss",
    "local_clustering_coefficient",
    "markov_clustering",
    "maximal_independent_set",
    "msbfs_levels",
    "all_pairs_levels",
    "pagerank",
    "sssp",
    "triangle_count",
    "triangle_count_burkhardt",
]

"""k-core decomposition by iterated degree filtering.

The k-core is the maximal subgraph where every vertex has degree ≥ k.
Algebraically: row-reduce the pattern for degrees, ``select`` the
surviving vertex set, restrict the matrix, repeat to fixpoint — another
§VIII select workload (VALUEGE on the degree vector).
"""

from __future__ import annotations

import numpy as np

from ..core import types as T
from ..core.errors import InvalidValueError
from ..core.indexunaryop import VALUEGE
from ..core.matrix import Matrix
from ..core.monoid import PLUS_MONOID
from ..core.vector import Vector
from ..ops.extract import extract
from ..ops.reduce import reduce_to_vector
from ..ops.select import select

__all__ = ["k_core", "core_numbers"]


def k_core(a: Matrix, k: int) -> tuple[Matrix, np.ndarray]:
    """The k-core of the undirected pattern of ``a``.

    Returns ``(subgraph, vertex_ids)``: the induced adjacency matrix of
    the core (compacted) and the original ids of its vertices.
    """
    if k < 1:
        raise InvalidValueError(f"k-core needs k >= 1, got {k}")
    from ._blocks import pattern_matrix

    n = a.nrows
    # Memoized: ``core_numbers`` calls this once per k on the same
    # graph, so every call after the first starts from the cached
    # pattern carrier instead of re-running the apply.
    pat = pattern_matrix(a, T.INT64)
    ids = np.arange(n, dtype=np.int64)

    while True:
        m = pat.nrows
        if m == 0:
            break
        deg = Vector.new(T.INT64, m, a.context)
        reduce_to_vector(deg, None, None, PLUS_MONOID[T.INT64], pat)
        survivors = Vector.new(T.INT64, m, a.context)
        select(survivors, None, None, VALUEGE[T.INT64], deg, k)
        keep, _ = survivors.extract_tuples()
        if len(keep) == m:
            break
        sub = Matrix.new(T.INT64, len(keep), len(keep), a.context)
        extract(sub, None, None, pat, keep, keep)
        sub.wait()
        pat = sub
        ids = ids[keep]
    return pat, ids


def core_numbers(a: Matrix) -> Vector:
    """Core number of every vertex (largest k with v in the k-core)."""
    n = a.nrows
    core = Vector.new(T.INT64, n, a.context)
    core.build(np.arange(n), np.zeros(n, dtype=np.int64))
    k = 1
    while True:
        sub, ids = k_core(a, k)
        if len(ids) == 0:
            break
        for v in ids:
            core.set_element(k, int(v))
        k += 1
    core.wait()
    return core

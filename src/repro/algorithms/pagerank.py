"""PageRank via repeated vxm over PLUS_TIMES (LAGraph-style)."""

from __future__ import annotations

import time

import numpy as np

from ..core import types as _t
from ..core.binaryop import DIV, PLUS, TIMES
from ..core.errors import InvalidValueError
from ..core.matrix import Matrix
from ..core.monoid import PLUS_MONOID
from ..core.semiring import PLUS_TIMES_SEMIRING
from ..core.vector import Vector
from ..ops.apply import apply
from ..ops.ewise import ewise_add, ewise_mult
from ..ops.mxm import vxm
from ..ops.reduce import reduce_scalar

__all__ = ["pagerank"]


def pagerank(
    a: Matrix,
    damping: float = 0.85,
    tol: float = 1e-6,
    max_iters: int = 100,
) -> tuple[Vector, int]:
    """(ranks, iterations) for the directed graph ``a``.

    Sinks (zero out-degree vertices) have their rank mass redistributed
    uniformly, the standard correction.  Iteration is
    ``r ← (1-d)/n + d·(rᵀ D⁻¹ A + sink_mass/n)`` until the L1 change
    drops below ``tol``.

    Incremental (``ENGINE_DELTA``): the converged ranks are stored as a
    warm block; after a batched delta write the next call seeds the
    iteration from the prior fixpoint instead of the uniform vector and
    converges in a handful of sweeps.  The fixpoint is unique for
    ``0 < damping < 1``, so warm and cold runs agree to within ``tol``.
    """
    if not (0.0 < damping < 1.0):
        raise InvalidValueError(f"damping must be in (0, 1), got {damping}")
    if max_iters < 1:
        raise InvalidValueError("max_iters must be >= 1")
    n = a.nrows
    ctx = a.context
    t0 = time.perf_counter()

    # Pattern matrix (weights ignored) and out-degrees (row sums) —
    # memoized building blocks: a repeated pagerank on an unchanged
    # graph wraps the cached carriers and runs zero setup kernels.
    from . import _blocks
    pat = _blocks.pattern_matrix(a, _t.FP64)
    deg = _blocks.degree_vector(a, _t.FP64)

    from ..ops.assign import assign
    warm = _blocks.load_warm(a, "pagerank", (float(damping),))
    if warm is not None:
        r = Vector.from_data(warm[0], ctx)
    else:
        # r0 = 1/n everywhere
        r = Vector.new(_t.FP64, n, ctx)
        assign(r, None, None, 1.0 / n, None)

    teleport = (1.0 - damping) / n
    iters = 0
    for iters in range(1, max_iters + 1):
        # w = r / deg on vertices with outgoing edges
        w = Vector.new(_t.FP64, n, ctx)
        ewise_mult(w, None, None, DIV[_t.FP64], r, deg)
        # rank actually propagated = sum over non-sink of r; sinks keep r
        propagated = Vector.new(_t.FP64, n, ctx)
        vxm(propagated, None, None, PLUS_TIMES_SEMIRING[_t.FP64], w, pat)
        r_sum = reduce_scalar(PLUS_MONOID[_t.FP64], r)
        nonsink_sum = reduce_scalar(
            PLUS_MONOID[_t.FP64],
            _masked_copy(r, deg),
        )
        sink_mass = r_sum - nonsink_sum
        base = teleport + damping * sink_mass / n

        r_new = Vector.new(_t.FP64, n, ctx)
        assign(r_new, None, None, base, None)
        apply(propagated, None, None, TIMES[_t.FP64], propagated, damping)
        ewise_add(r_new, None, None, PLUS[_t.FP64], r_new, propagated)

        delta = _l1_delta(r, r_new)
        r = r_new
        if delta < tol:
            break
    try:
        _blocks.store_warm(
            a, "pagerank", r._capture(),
            meta={"stale": 0, "base_nnz": a.nvals()},
            params=(float(damping),),
            cost_ms=(time.perf_counter() - t0) * 1e3,
        )
    except Exception:
        pass  # best-effort: warmth must never fail the algorithm
    return r, iters


def _masked_copy(r: Vector, mask: Vector) -> Vector:
    """r restricted to the structure of ``mask``."""
    from ..core.descriptor import DESC_RS
    out = Vector.new(r.type, r.size, r.context)
    from ..ops.assign import assign
    assign(out, mask, None, r, None, desc=DESC_RS)
    return out


def _l1_delta(u: Vector, v: Vector) -> float:
    ui, uv = u.extract_tuples()
    vi, vv = v.extract_tuples()
    du = np.zeros(u.size)
    dv = np.zeros(v.size)
    du[ui] = uv
    dv[vi] = vv
    return float(np.abs(du - dv).sum())

"""The store's memo-tier adapter: keys, digests, activation, seeding.

The per-Context result memo keys algorithm blocks on ``(uid, version)``
— process-local identities.  To survive a restart the key must name
*content*, so this module maintains a registry mapping each live
graph's ``(uid, version)`` to the digest of its serialized carrier
(:func:`ensure_digest`, called by :mod:`repro.algorithms._blocks`
before any block lookup), and derives the on-disk key as::

    blake2b(json([graph digest, block kind, params,
                  format-policy fingerprint, serialization version]))

Every ingredient that could change the cached bytes' meaning is in the
key: a mutated graph gets a new digest, a flipped format-policy knob a
new fingerprint, a serialization bump a new version — all of which
turn stale entries into clean misses instead of wrong answers.

Two deliberate exclusions keep exactness gates intact:

* ``warm:*`` fixpoint entries never persist — their payloads are
  ``(payload, meta)`` tuples whose PR-9 ``patched`` flag says "this
  came across a delta"; a fresh process has no delta lineage, so it
  must re-run cold (and does: :func:`store_key` returns ``None``).
* params/fingerprints that do not round-trip through JSON make the
  key ``None`` — unkeyable means unpersisted, never misfiled.

Activation is process-wide and config-driven: :func:`active_store`
opens (and caches) the :class:`~repro.store.store.WarmStore` rooted at
the ``STORE_DIR`` knob when ``STORE_ENABLE`` is on, seeding the
cost-model rates, partition throughput samples, and memo-admission
EWMA from the calibration sidecar the first time each directory is
opened.
"""

from __future__ import annotations

import hashlib
import json
import threading

from ..engine import memo as _memo
from ..engine.stats import STATS
from ..formats.serialize import (
    SERIALIZATION_VERSION,
    blob_digest,
    carrier_serialize,
)
from ..internals import config
from ..internals.containers import DcsrData, MatData, VecData
from .store import WarmStore

__all__ = [
    "active_store", "activate", "ensure_digest", "digest_for",
    "store_key", "probe", "persist", "save_calibration",
]

_STATE_LOCK = threading.Lock()
#: graph uid -> (version, content digest of its serialized carrier).
#: Uids are monotonic and never reused, so a stale mapping can only be
#: an *old version* of the same handle — and versions are checked.
_DIGESTS: dict[int, tuple[int, str]] = {}
#: The open store for the current ``STORE_DIR``, re-keyed when the
#: knob changes (tests and the CLI flip it).
_ACTIVE: tuple[str, WarmStore] | None = None
#: Directories whose calibration sidecar has been seeded this process.
_SEEDED_DIRS: set[str] = set()


def active_store() -> WarmStore | None:
    """The process's warm-start store, or ``None`` when disabled."""
    if not config.STORE_ENABLE:
        return None
    root = str(config.STORE_DIR or "")
    if not root:
        return None
    global _ACTIVE
    with _STATE_LOCK:
        if _ACTIVE is not None and _ACTIVE[0] == root:
            return _ACTIVE[1]
        store = WarmStore(root)
        _ACTIVE = (root, store)
        seed = root not in _SEEDED_DIRS
        if seed:
            _SEEDED_DIRS.add(root)
    if seed:
        _seed_calibration(store)
    return store


def activate(root: str) -> WarmStore | None:
    """Point the process at the store rooted at *root* (sets the
    ``STORE_DIR`` knob) and open it.  Explicit spelling of what
    ``REPRO_STORE_DIR`` does at import time."""
    config.set_option("STORE_DIR", str(root))
    return active_store()


def _seed_calibration(store: WarmStore) -> None:
    """First open of a store directory: install its persisted
    calibration as warm priors (replaced by live measurements, cleared
    by a stats reset — same contract as checkpoint rehydration)."""
    data = store.load_calibration()
    if not data:
        return
    from ..engine.passes import cost

    rates = data.get("rates")
    if isinstance(rates, dict):
        cost.seed_calibration(rates)
    partitions = data.get("partitions")
    if isinstance(partitions, dict):
        cost.seed_partition_samples(partitions)
    admission = data.get("admission")
    if isinstance(admission, dict):
        _memo.seed_admission(admission)
    STATS.instant("store:calibration-seeded", "store",
                  {"root": str(store.root)})


def save_calibration() -> bool:
    """Persist the live calibration state into the active store's
    sidecar (no-op without one).  Called by ``GraphService`` at
    checkpoint/close and by the CLI on exit."""
    store = active_store()
    if store is None:
        return False
    from ..engine.passes import cost

    return store.save_calibration({
        "rates": cost.export_calibration(),
        "partitions": cost.export_partition_samples(),
        "admission": _memo.export_admission(),
    })


# -- digests ------------------------------------------------------------------


def ensure_digest(a) -> None:
    """Register graph *a*'s content digest so its block keys can be
    derived.  Serializes the committed carrier once per (uid, version)
    — later calls are one dict probe."""
    with a._lock:
        uid, version = a._uid, a._version
    with _STATE_LOCK:
        known = _DIGESTS.get(uid)
        if known is not None and known[0] == version:
            return
    try:
        digest = blob_digest(carrier_serialize(a._capture()))
    except Exception:
        return
    with a._lock:
        if a._version != version:
            return  # written mid-capture: the new version re-registers
    with _STATE_LOCK:
        _DIGESTS[uid] = (version, digest)


def digest_for(uid: int, version: int) -> str | None:
    """The registered content digest of handle *uid* at *version*."""
    with _STATE_LOCK:
        known = _DIGESTS.get(uid)
    if known is None or known[0] != version:
        return None
    return known[1]


# -- key derivation -----------------------------------------------------------


def store_key(key: tuple) -> str | None:
    """The on-disk key for a memo key, or ``None`` when not persistable.

    Only versioned algorithm-block keys with a registered graph digest
    qualify; ``warm:*`` fixpoints and non-JSON params never do.
    """
    if not (isinstance(key, tuple) and len(key) == 5 and key[0] == "algo"):
        return None
    _, kind, vkey, params, fp = key
    if not isinstance(kind, str) or kind.startswith("warm:"):
        return None
    if not (isinstance(vkey, tuple) and len(vkey) == 2):
        return None
    digest = digest_for(vkey[0], vkey[1])
    if digest is None:
        return None
    try:
        canonical = json.dumps(
            [digest, kind, list(params), list(fp), SERIALIZATION_VERSION],
            separators=(",", ":"),
        )
    except (TypeError, ValueError):
        return None
    return hashlib.blake2b(canonical.encode(), digest_size=16).hexdigest()


# -- the memo adapter ---------------------------------------------------------


def probe(key: tuple):
    """Second-tier lookup: ``(carrier, cost_ms)`` from disk, or
    ``None``.  Called by :meth:`ResultMemo.lookup` on an in-memory
    miss; the caller re-inserts the hit through its normal store path
    so the commit gate and format policy see it like any other entry."""
    store = active_store()
    if store is None:
        return None
    khex = store_key(key)
    if khex is None:
        return None
    return store.get(khex)


def persist(key: tuple, carrier, cost_ms: float = 0.0) -> bool:
    """Store-behind: serialize a just-memoized block to disk.

    Gated by the same cost-weighted admission idea as the in-memory
    memo: once a republish overhead has been measured, a block cheaper
    to rebuild than to republish is not worth disk space either.
    """
    store = active_store()
    if store is None:
        return False
    if not isinstance(carrier, (MatData, DcsrData, VecData)):
        return False
    khex = store_key(key)
    if khex is None:
        return False
    if store.contains(khex):
        return True
    if (config.get_option("MEMO_ADMISSION")
            and 0.0 < cost_ms < _memo.commit_overhead_ms()):
        STATS.bump("store_admission_skips")
        STATS.instant(
            "store:admission-skip", "store",
            {"cost_ms": round(float(cost_ms), 6),
             "overhead_ms": round(_memo.commit_overhead_ms(), 6)},
        )
        return False
    try:
        blob = carrier_serialize(carrier)
    except Exception:
        return False
    return store.put(khex, blob, cost_ms)

"""Persistent warm-start store (cross-process §VII cache tier).

PR 7's checkpoint/journal plane makes one *deployment* durable; this
package makes warm state durable across *processes that never met*: a
content-addressed on-disk store of committed algorithm blocks
(serialized as the same opaque §VII v3 blobs checkpoints use) plus a
calibration sidecar (kernel rates, SpGEMM partition throughput,
memo-admission EWMA), keyed so that any fresh process computing over a
graph with the same content — a restarted replica, the next CLI run,
tomorrow's CI job restoring an actions cache — starts warm.

Layered as a *second tier under the result memo*: a memo miss probes
the store before rebuilding cold, and a memo store writes behind to
disk; a store hit re-enters through the memo's normal path, so the
transactional commit gate, fault plane, and format policy treat it
exactly like an in-memory hit.  ``REPRO_STORE=0`` ablates the whole
tier.

See :mod:`repro.store.store` (the directory format and concurrency
story) and :mod:`repro.store.tier` (keys, digests, memo adapter).
"""

from .store import WarmStore
from .tier import activate, active_store, save_calibration

__all__ = ["WarmStore", "activate", "active_store", "save_calibration"]

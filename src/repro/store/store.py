"""The on-disk warm-start store: content-addressed §VII blobs + sidecar.

One directory holds everything a fresh process needs to start warm::

    <root>/
      entries/<keyhex>.grb    one committed carrier per store key
      calibration.json        cost-model rates / partition throughput /
                              memo-admission EWMA (atomic JSON)
      .lock                   advisory eviction lock

Entry framing is a thin envelope over the existing opaque §VII stream
(:func:`repro.formats.serialize.carrier_serialize`)::

    magic(4)=RWST | version(u16) | crc32(u32) | header-length(u32)
    | header(json: cost_ms) | carrier blob

The CRC covers header + blob, and the blob inside carries its own §VII
checksum — a torn or bit-flipped entry fails one of the two and is
**treated as a miss**: counted (``store_corrupt``), traced
(``store:corrupt`` instant), unlinked best-effort, never an error on
the hot path.

Concurrency story (CI's parallel jobs share one of these via the
actions cache, and a serving replica may host many sessions):

* **writers** stage into a unique temp file and ``os.replace`` it —
  readers see the old entry, the new entry, or no entry, never bytes
  in between;
* **content-addressed keys** make concurrent writers of the same key
  idempotent (last rename wins with identical bytes);
* **eviction** runs under a non-blocking ``fcntl`` advisory lock on
  ``.lock`` — at most one evictor at a time, and a reader that loses
  the race to an unlink just misses (cold rebuild, by design).
"""

from __future__ import annotations

import itertools
import json
import os
import struct
import zlib
from pathlib import Path

from ..engine.stats import STATS
from ..faults.plane import maybe_inject
from ..formats.serialize import carrier_deserialize
from ..internals import config

__all__ = ["WarmStore"]

_ENTRY_MAGIC = b"RWST"
_ENTRY_VERSION = 1
_ENTRY_PREFIX = struct.Struct("<4sHII")  # magic, version, crc32, hdrlen
_ENTRY_SUFFIX = ".grb"
_CALIBRATION_FORMAT = 1

#: Per-process temp-name disambiguator (plus the pid, so processes
#: sharing a store never stage into each other's temp files).
_TMP_COUNTER = itertools.count()


class WarmStore:
    """Digest-keyed carrier entries + one calibration sidecar, on disk.

    Every method is total: filesystem errors, corrupt bytes, and
    injected ``store.*`` faults degrade to a miss (``get``), a skipped
    persist (``put``), or a skipped save — the warm-start tier can make
    a process faster, never incorrect or broken.
    """

    def __init__(self, root: str):
        self.root = Path(root)
        self.entries_dir = self.root / "entries"

    # -- entries --------------------------------------------------------------

    def _entry_path(self, key: str) -> Path:
        return self.entries_dir / f"{key}{_ENTRY_SUFFIX}"

    def contains(self, key: str) -> bool:
        """Cheap existence probe (no decode, no fault site)."""
        try:
            return self._entry_path(key).exists()
        except OSError:
            return False

    def get(self, key: str):
        """The ``(carrier, cost_ms)`` stored under *key*, or ``None``.

        A hit refreshes the entry's atime (the LRU eviction signal —
        explicitly, since many filesystems mount ``noatime``).
        """
        path = self._entry_path(key)
        try:
            maybe_inject("store.read", key=key)
        except Exception:
            # An injected read fault is a miss, not corruption: the
            # cold-rebuild path below the memo handles it.
            STATS.bump("store_misses")
            return None
        try:
            data = path.read_bytes()
        except OSError:
            STATS.bump("store_misses")
            return None
        try:
            if len(data) < _ENTRY_PREFIX.size:
                raise ValueError("entry truncated")
            magic, version, crc, hdrlen = _ENTRY_PREFIX.unpack_from(data, 0)
            if magic != _ENTRY_MAGIC or version != _ENTRY_VERSION:
                raise ValueError("entry envelope unrecognized")
            payload = data[_ENTRY_PREFIX.size:]
            if (zlib.crc32(payload) & 0xFFFFFFFF) != crc:
                raise ValueError("entry checksum mismatch")
            if hdrlen > len(payload):
                raise ValueError("entry header truncated")
            header = json.loads(payload[:hdrlen].decode())
            if not isinstance(header, dict):
                raise ValueError("entry header not an object")
            carrier = carrier_deserialize(payload[hdrlen:])
            cost_ms = max(0.0, float(header.get("cost_ms", 0.0)))
        except Exception as exc:
            self._quarantine(path, exc)
            return None
        try:
            os.utime(path)
        except OSError:
            pass
        STATS.bump("store_hits")
        STATS.instant("store:hit", "store",
                      {"key": key, "cost_ms": round(cost_ms, 6)})
        return carrier, cost_ms

    def _quarantine(self, path: Path, exc: Exception) -> None:
        """A corrupt entry degrades to a miss: count it, trace it, and
        drop the bytes so the next probe is a clean miss."""
        STATS.bump("store_corrupt")
        STATS.bump("store_misses")
        STATS.instant("store:corrupt", "store",
                      {"entry": path.name, "error": str(exc)[:200]})
        try:
            path.unlink()
        except OSError:
            pass

    def put(self, key: str, blob: bytes, cost_ms: float = 0.0) -> bool:
        """Persist a serialized carrier under *key* (atomic; idempotent
        for content-addressed keys).  Returns whether the entry is now
        on disk — ``False`` means the store-behind was skipped, which
        is always safe."""
        path = self._entry_path(key)
        tmp = None
        try:
            maybe_inject("store.write", key=key)
            if path.exists():
                return True
            header = json.dumps(
                {"cost_ms": round(max(0.0, float(cost_ms)), 6)},
                separators=(",", ":"),
            ).encode()
            payload = header + bytes(blob)
            crc = zlib.crc32(payload) & 0xFFFFFFFF
            framed = _ENTRY_PREFIX.pack(
                _ENTRY_MAGIC, _ENTRY_VERSION, crc, len(header)
            ) + payload
            self.entries_dir.mkdir(parents=True, exist_ok=True)
            tmp = self.entries_dir / (
                f".tmp-{os.getpid()}-{next(_TMP_COUNTER)}-{key}"
            )
            tmp.write_bytes(framed)
            os.replace(tmp, path)
        except Exception:
            if tmp is not None:
                try:
                    tmp.unlink()
                except OSError:
                    pass
            return False
        STATS.bump("store_stores")
        self.evict()
        return True

    # -- LRU-by-atime eviction ------------------------------------------------

    def evict(self, max_bytes: int | None = None) -> int:
        """Delete least-recently-used entries until the store fits the
        byte budget; returns how many entries were evicted.

        Runs under a *non-blocking* advisory lock — when another
        process is already evicting, this one skips (the budget is
        eventually enforced, and blocking a hot-path ``put`` on a
        sibling's unlink loop would be worse).
        """
        if max_bytes is None:
            max_bytes = int(config.get_option("STORE_MAX_BYTES"))
        if max_bytes <= 0:
            return 0
        try:
            entries = [
                (p, p.stat())
                for p in self.entries_dir.glob(f"*{_ENTRY_SUFFIX}")
            ]
        except OSError:
            return 0
        total = sum(st.st_size for _, st in entries)
        if total <= max_bytes:
            return 0
        evicted = 0
        lock_fd = None
        try:
            import fcntl

            self.root.mkdir(parents=True, exist_ok=True)
            lock_fd = os.open(self.root / ".lock", os.O_CREAT | os.O_RDWR)
            try:
                fcntl.flock(lock_fd, fcntl.LOCK_EX | fcntl.LOCK_NB)
            except OSError:
                return 0  # a sibling evictor holds the lock
            entries.sort(key=lambda e: e[1].st_atime)
            for path, st in entries:
                if total <= max_bytes:
                    break
                try:
                    path.unlink()
                except OSError:
                    continue
                total -= st.st_size
                evicted += 1
        except Exception:
            pass
        finally:
            if lock_fd is not None:
                try:
                    os.close(lock_fd)
                except OSError:
                    pass
        if evicted:
            STATS.bump("store_evictions", evicted)
            STATS.instant("store:evict", "store",
                          {"evicted": evicted, "kept_bytes": int(total),
                           "max_bytes": int(max_bytes)})
        return evicted

    def total_bytes(self) -> int:
        """Bytes currently held by store entries (best effort)."""
        try:
            return sum(
                p.stat().st_size
                for p in self.entries_dir.glob(f"*{_ENTRY_SUFFIX}")
            )
        except OSError:
            return 0

    def entry_count(self) -> int:
        try:
            return sum(
                1 for _ in self.entries_dir.glob(f"*{_ENTRY_SUFFIX}")
            )
        except OSError:
            return 0

    # -- calibration sidecar --------------------------------------------------

    def save_calibration(self, payload: dict) -> bool:
        """Atomically write the calibration sidecar (kernel rates,
        partition throughput samples, memo-admission EWMA)."""
        try:
            body = json.dumps(
                {"format": _CALIBRATION_FORMAT, **payload},
                indent=2, sort_keys=True,
            ) + "\n"
            self.root.mkdir(parents=True, exist_ok=True)
            tmp = self.root / f".tmp-cal-{os.getpid()}-{next(_TMP_COUNTER)}"
            tmp.write_text(body)
            os.replace(tmp, self.root / "calibration.json")
        except Exception:
            return False
        return True

    def load_calibration(self) -> dict | None:
        """The persisted calibration payload, or ``None`` (absent,
        corrupt, or an unknown format — all equally cold starts)."""
        try:
            data = json.loads((self.root / "calibration.json").read_text())
        except Exception:
            return None
        if not isinstance(data, dict) or \
                data.get("format") != _CALIBRATION_FORMAT:
            return None
        return data

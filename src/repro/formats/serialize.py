"""Opaque serialization of GraphBLAS containers (§VII-B).

The byte stream is deliberately *opaque*: the spec allows each
implementation its own encoding (ours is versioned, checksummed, and
compact) and only guarantees that the same implementation can
deserialize what it serialized.  The three-call protocol mirrors C:

1. ``matrix_serialize_size(A)`` — bytes needed for the buffer;
2. ``matrix_serialize(A, buf)`` — fill a user buffer (or return fresh
   bytes when ``buf`` is ``None``); a too-small buffer is the
   INSUFFICIENT_SPACE error;
3. ``matrix_deserialize(data)`` — reconstruct; corruption and
   version/type mismatches raise INVALID_OBJECT.

Layout (little-endian):

    magic(4) | version(u16) | kind(u8) | flags(u8) | crc32(u32)
    | header-length(u32) | header(json) | payload arrays

The checksum covers the kind/flags bytes *and* the payload, so no
single-field corruption can redirect decoding (fuzz-tested).  Values of
user-defined types are refused — UDT payloads are arbitrary Python
objects, and shipping them through an opaque byte stream would require
pickle, which must never run on untrusted input.
"""

from __future__ import annotations

import json
import struct
import zlib

import numpy as np

from ..core.context import Context
from ..core.errors import InsufficientSpaceError, InvalidObjectError
from ..core.matrix import Matrix
from ..core.types import Type, from_name
from ..core.vector import Vector
from ..internals.containers import DcsrData, MatData, VecData

__all__ = [
    "matrix_serialize_size",
    "matrix_serialize",
    "matrix_deserialize",
    "vector_serialize_size",
    "vector_serialize",
    "vector_deserialize",
    "carrier_serialize",
    "carrier_deserialize",
    "blob_digest",
    "SERIALIZATION_VERSION",
]

_MAGIC = b"RGRB"
# v2: CSR matrix + vector kinds.  v3 adds the hypersparse DCSR matrix
# kind (tagged section with a compressed row pointer); v2 blobs still
# load, so checkpoints taken before the hypersparse tier replay as-is.
_VERSION = 3
_SUPPORTED_VERSIONS = frozenset({2, 3})
#: Public alias of the current stream version — part of every
#: warm-start store key (:mod:`repro.store`), so bumping the format
#: silently invalidates every persisted entry instead of asking an old
#: blob to deserialize under new rules.
SERIALIZATION_VERSION = _VERSION
_KIND_MATRIX = 1
_KIND_VECTOR = 2
_KIND_DCSR_MATRIX = 3

_PREFIX = struct.Struct("<4sHBBII")  # magic, version, kind, flags, crc, hdrlen


def _encode_values(t: Type, values: np.ndarray) -> tuple[bytes, int]:
    if t.is_udt or values.dtype == object:
        raise InvalidObjectError(
            "user-defined-type values do not serialize (opaque streams "
            "must never require unpickling untrusted data); use "
            "import/export with your own encoding instead"
        )
    return np.ascontiguousarray(values).tobytes(), 0


def _decode_values(t: Type, raw: bytes, n: int, flags: int) -> np.ndarray:
    expected = n * t.np_dtype.itemsize
    if len(raw) < expected:
        raise InvalidObjectError("serialized values truncated")
    return np.frombuffer(raw, dtype=t.np_dtype, count=n).copy()


def _pack(kind: int, header: dict, arrays: list[bytes], flags: int) -> bytes:
    hdr = json.dumps(header, separators=(",", ":")).encode()
    payload = hdr + b"".join(arrays)
    # The checksum covers kind + flags + payload so no field flip can
    # redirect decoding undetected.
    crc = zlib.crc32(bytes([kind, flags]) + payload) & 0xFFFFFFFF
    return _PREFIX.pack(_MAGIC, _VERSION, kind, flags, crc, len(hdr)) + payload


def _unpack(data: bytes, expect_kind: int) -> tuple[dict, bytes, int]:
    if len(data) < _PREFIX.size:
        raise InvalidObjectError("serialized stream truncated")
    magic, version, kind, flags, crc, hdrlen = _PREFIX.unpack_from(data, 0)
    if magic != _MAGIC:
        raise InvalidObjectError("not a serialized GraphBLAS object")
    if version not in _SUPPORTED_VERSIONS:
        raise InvalidObjectError(
            f"serialization version {version} not in supported "
            f"{sorted(_SUPPORTED_VERSIONS)}"
        )
    payload = bytes(data[_PREFIX.size:])
    if (zlib.crc32(bytes([kind, flags]) + payload) & 0xFFFFFFFF) != crc:
        raise InvalidObjectError("serialized stream corrupt (checksum)")
    if kind != expect_kind:
        raise InvalidObjectError("serialized object kind mismatch")
    try:
        header = json.loads(payload[:hdrlen].decode())
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        raise InvalidObjectError(f"serialized header corrupt: {exc}") from None
    if not isinstance(header, dict):
        raise InvalidObjectError("serialized header corrupt (not an object)")
    return header, payload[hdrlen:], flags


def _resolve_type(header: dict) -> Type:
    try:
        return from_name(header["type"])
    except Exception as exc:
        raise InvalidObjectError(f"serialized header invalid: {exc}") from None


def _header_int(header: dict, key: str, lo: int = 0) -> int:
    """Fetch a non-negative integer header field, defensively.

    Reachable only from *crafted* blobs (mutations fail the checksum
    first), but crafted input must still get INVALID_OBJECT, never a
    stray TypeError.
    """
    value = header.get(key)
    if not isinstance(value, int) or isinstance(value, bool) or value < lo:
        raise InvalidObjectError(f"serialized header field {key!r} invalid")
    return value


# ---------------------------------------------------------------------------
# Matrix
# ---------------------------------------------------------------------------

def _matrix_blob(A: Matrix) -> bytes:
    d = A._capture()
    if isinstance(d, DcsrData):
        return _dcsr_data_blob(d)
    return _mat_data_blob(d)


def _mat_data_blob(d: MatData) -> bytes:
    vals, flags = _encode_values(d.type, d.values)
    header = {
        "type": d.type.name,
        "nrows": d.nrows,
        "ncols": d.ncols,
        "nvals": d.nvals,
        "indptr_len": len(d.indptr),
        "values_len": len(vals),
    }
    if d.type.is_udt:
        raise InvalidObjectError(
            "user-defined types serialize only within one process image; "
            "register a cast or use import/export for portability"
        )
    arrays = [
        np.ascontiguousarray(d.indptr).tobytes(),
        np.ascontiguousarray(d.col_indices).tobytes(),
        vals,
    ]
    return _pack(_KIND_MATRIX, header, arrays, flags)


def _dcsr_data_blob(d: DcsrData) -> bytes:
    """Hypersparse section (kind 3): the header carries ``nrr`` (count
    of nonempty rows) and the payload ships the compressed row list —
    O(nnz) bytes regardless of ``nrows``, which can exceed 2^32."""
    if d.type.is_udt:
        raise InvalidObjectError(
            "user-defined types serialize only within one process image; "
            "register a cast or use import/export for portability"
        )
    vals, flags = _encode_values(d.type, d.values)
    header = {
        "type": d.type.name,
        "nrows": d.nrows,
        "ncols": d.ncols,
        "nvals": d.nvals,
        "nrr": len(d.row_ids),
        "values_len": len(vals),
    }
    arrays = [
        np.ascontiguousarray(d.row_ids).tobytes(),
        np.ascontiguousarray(d.indptr).tobytes(),
        np.ascontiguousarray(d.col_indices).tobytes(),
        vals,
    ]
    return _pack(_KIND_DCSR_MATRIX, header, arrays, flags)


def matrix_serialize_size(A: Matrix) -> int:
    """``GrB_Matrix_serializeSize`` — bytes needed for the blob."""
    return len(_matrix_blob(A))


def matrix_serialize(A: Matrix, buf: bytearray | None = None) -> bytes:
    """``GrB_Matrix_serialize`` — into ``buf`` or a fresh bytes object."""
    blob = _matrix_blob(A)
    if buf is None:
        return blob
    if len(buf) < len(blob):
        raise InsufficientSpaceError(
            f"buffer has {len(buf)} bytes, need {len(blob)}"
        )
    buf[: len(blob)] = blob
    return bytes(buf[: len(blob)])


def matrix_deserialize(data: bytes, ctx: Context | None = None) -> Matrix:
    """``GrB_Matrix_deserialize`` — reconstruct a matrix from a blob."""
    return Matrix.from_data(_mat_like_from(data), ctx)


def _mat_like_from(data: bytes) -> MatData | DcsrData:
    """Either matrix section, chosen by the self-identifying kind byte
    (still covered by the checksum — a flipped kind byte is corruption,
    not a format switch)."""
    if len(data) >= _PREFIX.size and \
            _PREFIX.unpack_from(data, 0)[2] == _KIND_DCSR_MATRIX:
        return _dcsr_data_from(data)
    return _mat_data_from(data)


def _mat_data_from(data: bytes) -> MatData:
    header, body, flags = _unpack(data, _KIND_MATRIX)
    t = _resolve_type(header)
    nrows = _header_int(header, "nrows")
    ncols = _header_int(header, "ncols")
    nvals = _header_int(header, "nvals")
    ilen = _header_int(header, "indptr_len")
    vlen = _header_int(header, "values_len")
    if (ilen + nvals) * 8 + vlen > len(body):
        raise InvalidObjectError("serialized matrix body truncated")
    off = 0
    indptr = np.frombuffer(body, dtype=np.int64, count=ilen, offset=off).copy()
    off += ilen * 8
    cols = np.frombuffer(body, dtype=np.int64, count=nvals, offset=off).copy()
    off += nvals * 8
    values = _decode_values(t, body[off: off + vlen], nvals, flags)
    data_ = MatData(nrows, ncols, t, indptr, cols, values)
    try:
        data_.check()
    except AssertionError as exc:
        raise InvalidObjectError(f"deserialized matrix invalid: {exc}") from None
    return data_


def _dcsr_data_from(data: bytes) -> DcsrData:
    header, body, flags = _unpack(data, _KIND_DCSR_MATRIX)
    t = _resolve_type(header)
    nrows = _header_int(header, "nrows")
    ncols = _header_int(header, "ncols")
    nvals = _header_int(header, "nvals")
    nrr = _header_int(header, "nrr")
    vlen = _header_int(header, "values_len")
    if (nrr + (nrr + 1) + nvals) * 8 + vlen > len(body):
        raise InvalidObjectError("serialized matrix body truncated")
    off = 0
    row_ids = np.frombuffer(body, dtype=np.int64, count=nrr, offset=off).copy()
    off += nrr * 8
    indptr = np.frombuffer(body, dtype=np.int64, count=nrr + 1, offset=off).copy()
    off += (nrr + 1) * 8
    cols = np.frombuffer(body, dtype=np.int64, count=nvals, offset=off).copy()
    off += nvals * 8
    values = _decode_values(t, body[off: off + vlen], nvals, flags)
    data_ = DcsrData(nrows, ncols, t, row_ids, indptr, cols, values)
    try:
        data_.check()
    except AssertionError as exc:
        raise InvalidObjectError(f"deserialized matrix invalid: {exc}") from None
    return data_


# ---------------------------------------------------------------------------
# Vector
# ---------------------------------------------------------------------------

def _vector_blob(u: Vector) -> bytes:
    return _vec_data_blob(u._capture())


def _vec_data_blob(d: VecData) -> bytes:
    if d.type.is_udt:
        raise InvalidObjectError(
            "user-defined types serialize only within one process image"
        )
    vals, flags = _encode_values(d.type, d.values)
    header = {
        "type": d.type.name,
        "size": d.size,
        "nvals": d.nvals,
        "values_len": len(vals),
    }
    arrays = [np.ascontiguousarray(d.indices).tobytes(), vals]
    return _pack(_KIND_VECTOR, header, arrays, flags)


def vector_serialize_size(u: Vector) -> int:
    """``GrB_Vector_serializeSize``."""
    return len(_vector_blob(u))


def vector_serialize(u: Vector, buf: bytearray | None = None) -> bytes:
    """``GrB_Vector_serialize``."""
    blob = _vector_blob(u)
    if buf is None:
        return blob
    if len(buf) < len(blob):
        raise InsufficientSpaceError(
            f"buffer has {len(buf)} bytes, need {len(blob)}"
        )
    buf[: len(blob)] = blob
    return bytes(buf[: len(blob)])


def vector_deserialize(data: bytes, ctx: Context | None = None) -> Vector:
    """``GrB_Vector_deserialize``."""
    return Vector.from_data(_vec_data_from(data), ctx)


def _vec_data_from(data: bytes) -> VecData:
    header, body, flags = _unpack(data, _KIND_VECTOR)
    t = _resolve_type(header)
    size = _header_int(header, "size")
    nvals = _header_int(header, "nvals")
    vlen = _header_int(header, "values_len")
    if nvals * 8 + vlen > len(body):
        raise InvalidObjectError("serialized vector body truncated")
    indices = np.frombuffer(body, dtype=np.int64, count=nvals).copy()
    values = _decode_values(t, body[nvals * 8: nvals * 8 + vlen], nvals, flags)
    data_ = VecData(size, t, indices, values)
    try:
        data_.check()
    except AssertionError as exc:
        raise InvalidObjectError(f"deserialized vector invalid: {exc}") from None
    return data_


# ---------------------------------------------------------------------------
# Carriers (the durability plane's handle-free entry points)
# ---------------------------------------------------------------------------

def carrier_serialize(d: MatData | DcsrData | VecData) -> bytes:
    """Serialize a committed carrier directly (no handle, no context).

    Same opaque §VII stream as :func:`matrix_serialize` /
    :func:`vector_serialize` — a checkpoint blob of a resident graph is
    byte-identical to serializing a handle wrapping the same carrier.
    """
    if isinstance(d, MatData):
        return _mat_data_blob(d)
    if isinstance(d, DcsrData):
        return _dcsr_data_blob(d)
    if isinstance(d, VecData):
        return _vec_data_blob(d)
    raise InvalidObjectError(
        f"cannot serialize carrier of type {type(d).__name__}"
    )


def carrier_deserialize(data: bytes) -> MatData | DcsrData | VecData:
    """Reconstruct a carrier from a §VII stream (kind self-identified)."""
    if len(data) >= _PREFIX.size:
        kind = _PREFIX.unpack_from(data, 0)[2]
        if kind == _KIND_VECTOR:
            return _vec_data_from(data)
    return _mat_like_from(data)


def blob_digest(blob: bytes) -> str:
    """Content digest of a serialized blob (checkpoint store keys)."""
    import hashlib

    return hashlib.blake2b(blob, digest_size=16).hexdigest()

"""Data transfer (§VII): Table III import/export and opaque serialization."""

from .formats import MATRIX_FORMATS, VECTOR_FORMATS, Format
from .import_export import (
    matrix_export,
    matrix_export_hint,
    matrix_export_size,
    matrix_import,
    vector_export,
    vector_export_hint,
    vector_export_size,
    vector_import,
)
from .serialize import (
    matrix_deserialize,
    matrix_serialize,
    matrix_serialize_size,
    vector_deserialize,
    vector_serialize,
    vector_serialize_size,
)

__all__ = [
    "Format",
    "MATRIX_FORMATS",
    "VECTOR_FORMATS",
    "matrix_import",
    "matrix_export",
    "matrix_export_size",
    "matrix_export_hint",
    "vector_import",
    "vector_export",
    "vector_export_size",
    "vector_export_hint",
    "matrix_serialize",
    "matrix_serialize_size",
    "matrix_deserialize",
    "vector_serialize",
    "vector_serialize_size",
    "vector_deserialize",
]

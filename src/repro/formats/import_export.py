"""Import/export between GraphBLAS containers and Table III formats (§VII-A).

The export flow mirrors the three-call C protocol:

1. ``matrix_export_size(A, format)`` returns the lengths of the three
   output arrays so the caller can allocate them with any allocator
   (malloc, a memory-mapped file, …).
2. The caller allocates (or lets us allocate, the Python convenience).
3. ``matrix_export(A, format, indptr=, indices=, values=)`` fills the
   arrays.  Supplying too-small arrays is the INSUFFICIENT_SPACE error.

``matrix_export_hint(A)`` reports the format the implementation can
export most cheaply — ours is CSR (the internal storage), so the hint is
always ``Format.CSR_MATRIX`` for matrices and ``Format.SPARSE_VECTOR``
for vectors; a conforming implementation may instead refuse with
``GrB_NO_VALUE`` (we expose that path for testing via ``refuse=True``).

Table III deliberately contains only *non-opaque* exchange formats, and
their row pointers are dense in ``nrows`` — there is no hypersparse row
in the table.  A matrix the engine carries as DCSR therefore densifies
at this boundary (``DcsrData.to_csr``): cheap below ``MAX_NROWS``, and
past it the defined ``GrB_OUT_OF_MEMORY`` — the exchange format itself
cannot represent such a matrix.  Round-tripping hypersparse data keeps
O(nnz) cost only through the opaque §VII-B serialization, which has a
DCSR blob kind.  Imports are format-agnostic: the assembly funnel
re-applies the engine's format policy, so importing a huge sparse COO
lands on the DCSR carrier automatically.
"""

from __future__ import annotations

from typing import Any

import numpy as np

from ..core.context import Context
from ..core.errors import (
    DimensionMismatchError,
    InsufficientSpaceError,
    InvalidValueError,
    NoValue,
)
from ..core.matrix import Matrix
from ..core.types import Type
from ..core.vector import Vector
from ..internals.build import build_matrix, build_vector
from ..internals.containers import DcsrData, VecData, mat_from_coo
from .formats import MATRIX_FORMATS, VECTOR_FORMATS, Format

__all__ = [
    "matrix_import",
    "matrix_export",
    "matrix_export_size",
    "matrix_export_hint",
    "vector_import",
    "vector_export",
    "vector_export_size",
    "vector_export_hint",
]

_INT = np.int64


def _check_format(fmt: Format, allowed, what: str) -> Format:
    fmt = Format(fmt)
    if fmt not in allowed:
        raise InvalidValueError(f"{fmt.name} is not a {what} format")
    return fmt


# ---------------------------------------------------------------------------
# Matrix import
# ---------------------------------------------------------------------------

def matrix_import(
    t: Type,
    nrows: int,
    ncols: int,
    indptr: Any,
    indices: Any,
    values: Any,
    fmt: Format,
    ctx: Context | None = None,
) -> Matrix:
    """``GrB_Matrix_import`` — construct a matrix from external arrays.

    The arrays follow Table III (see :mod:`.formats`).  Input arrays
    are copied — the new object owns its data, as the C API requires of
    import (the caller's arrays remain the caller's).
    """
    fmt = _check_format(fmt, MATRIX_FORMATS, "matrix")
    values = np.asarray(values)

    if fmt == Format.CSR_MATRIX:
        indptr = np.asarray(indptr, dtype=_INT)
        cols = np.asarray(indices, dtype=_INT)
        if len(indptr) != nrows + 1:
            raise DimensionMismatchError("CSR indptr must have nrows+1 entries")
        if indptr[-1] != len(cols) or len(cols) != len(values):
            raise InvalidValueError("CSR indptr/indices/values are inconsistent")
        rows = np.repeat(np.arange(nrows, dtype=_INT), np.diff(indptr))
        # Rows need not be sorted by column on import (Table III).
        data = mat_from_coo(nrows, ncols, t, rows, cols, t.coerce_array(values))
    elif fmt == Format.CSC_MATRIX:
        indptr = np.asarray(indptr, dtype=_INT)
        rows = np.asarray(indices, dtype=_INT)
        if len(indptr) != ncols + 1:
            raise DimensionMismatchError("CSC indptr must have ncols+1 entries")
        if indptr[-1] != len(rows) or len(rows) != len(values):
            raise InvalidValueError("CSC indptr/indices/values are inconsistent")
        cols = np.repeat(np.arange(ncols, dtype=_INT), np.diff(indptr))
        data = mat_from_coo(nrows, ncols, t, rows, cols, t.coerce_array(values))
    elif fmt == Format.COO_MATRIX:
        # Table III: indptr carries the COLUMN indices, indices the ROW
        # indices, in any order; duplicates are invalid for import.
        cols = np.asarray(indptr, dtype=_INT)
        rows = np.asarray(indices, dtype=_INT)
        if not (len(rows) == len(cols) == len(values)):
            raise InvalidValueError("COO arrays must have equal length")
        data = build_matrix(nrows, ncols, t, rows, cols, values, None)
    elif fmt in (Format.DENSE_ROW_MATRIX, Format.DENSE_COL_MATRIX):
        if values.size != nrows * ncols:
            raise DimensionMismatchError(
                f"dense import needs nrows*ncols={nrows * ncols} values, "
                f"got {values.size}"
            )
        order = "C" if fmt == Format.DENSE_ROW_MATRIX else "F"
        dense = np.reshape(values, (nrows, ncols), order=order)
        rows, cols = np.divmod(np.arange(nrows * ncols, dtype=_INT), ncols)
        data = mat_from_coo(
            nrows, ncols, t, rows, cols,
            t.coerce_array(np.ascontiguousarray(dense).reshape(-1)),
            presorted=True,
        )
    else:  # pragma: no cover - exhaustive above
        raise InvalidValueError(f"unhandled format {fmt!r}")

    return Matrix.from_data(data, ctx)


# ---------------------------------------------------------------------------
# Matrix export
# ---------------------------------------------------------------------------

def matrix_export_size(A: Matrix, fmt: Format) -> tuple[int, int, int]:
    """``GrB_Matrix_exportSize`` → (len(indptr), len(indices), len(values))."""
    fmt = _check_format(fmt, MATRIX_FORMATS, "matrix")
    d = A._capture()
    nnz = d.nvals
    if fmt == Format.CSR_MATRIX:
        return (d.nrows + 1, nnz, nnz)
    if fmt == Format.CSC_MATRIX:
        return (d.ncols + 1, nnz, nnz)
    if fmt == Format.COO_MATRIX:
        return (nnz, nnz, nnz)
    return (0, 0, d.nrows * d.ncols)


def matrix_export_hint(A: Matrix, *, refuse: bool = False) -> Format:
    """``GrB_Matrix_exportHint`` — cheapest export format.

    Our storage is CSR, so the hint is CSR.  ``refuse=True`` exercises
    the spec-sanctioned refusal path (``GrB_NO_VALUE``), raised as
    :class:`NoValue` in the exception-style API.
    """
    A._check_valid()
    if refuse:
        raise NoValue("implementation declines to provide a hint")
    return Format.CSR_MATRIX


def _fill(target: np.ndarray | None, source: np.ndarray, what: str) -> np.ndarray:
    """Fill a caller-allocated array, or hand back ``source`` directly."""
    if target is None:
        return source
    target = np.asarray(target)
    if target.size < source.size:
        raise InsufficientSpaceError(
            f"{what} array has {target.size} slots, need {source.size}"
        )
    target[: source.size] = source
    return target


def matrix_export(
    A: Matrix,
    fmt: Format,
    indptr: np.ndarray | None = None,
    indices: np.ndarray | None = None,
    values: np.ndarray | None = None,
) -> tuple[np.ndarray | None, np.ndarray | None, np.ndarray]:
    """``GrB_Matrix_export`` — write the matrix in format ``fmt``.

    Pass pre-allocated arrays to mirror the C flow (sized per
    ``matrix_export_size``), or ``None`` to let the library allocate.
    Returns ``(indptr, indices, values)`` with unused slots ``None``.
    """
    fmt = _check_format(fmt, MATRIX_FORMATS, "matrix")
    d = A._capture()

    if fmt == Format.CSR_MATRIX:
        # Table III's CSR has a dense nrows+1 pointer: a hypersparse
        # carrier must densify here, and past the CSR row limit that
        # raises the documented resource error (no CSR form exists).
        if isinstance(d, DcsrData):
            d = d.to_csr()
        return (
            _fill(indptr, d.indptr, "indptr"),
            _fill(indices, d.col_indices, "indices"),
            _fill(values, d.values, "values"),
        )
    if fmt == Format.CSC_MATRIX:
        tr = d.transpose()
        if isinstance(tr, DcsrData):
            tr = tr.to_csr()
        return (
            _fill(indptr, tr.indptr, "indptr"),
            _fill(indices, tr.col_indices, "indices"),
            _fill(values, tr.values, "values"),
        )
    if fmt == Format.COO_MATRIX:
        rows = d.row_indices()
        return (
            _fill(indptr, d.col_indices, "indptr"),   # Table III: cols here
            _fill(indices, rows, "indices"),          # Table III: rows here
            _fill(values, d.values, "values"),
        )
    dense = d.to_dense()
    flat = dense.reshape(-1, order="C" if fmt == Format.DENSE_ROW_MATRIX else "F")
    return (None, None, _fill(values, flat, "values"))


# ---------------------------------------------------------------------------
# Vector import / export
# ---------------------------------------------------------------------------

def vector_import(
    t: Type,
    size: int,
    indices: Any,
    values: Any,
    fmt: Format,
    ctx: Context | None = None,
) -> Vector:
    """``GrB_Vector_import``."""
    fmt = _check_format(fmt, VECTOR_FORMATS, "vector")
    values = np.asarray(values)
    if fmt == Format.SPARSE_VECTOR:
        idx = np.asarray(indices, dtype=_INT)
        if len(idx) != len(values):
            raise InvalidValueError("sparse vector indices/values length mismatch")
        data = build_vector(size, t, idx, values, None)
    else:
        if values.size != size:
            raise DimensionMismatchError(
                f"dense vector import needs {size} values, got {values.size}"
            )
        data = VecData(
            size, t, np.arange(size, dtype=_INT),
            t.coerce_array(values.reshape(-1)),
        )
    return Vector.from_data(data, ctx)


def vector_export_size(u: Vector, fmt: Format) -> tuple[int, int]:
    """``GrB_Vector_exportSize`` → (len(indices), len(values))."""
    fmt = _check_format(fmt, VECTOR_FORMATS, "vector")
    d: VecData = u._capture()
    if fmt == Format.SPARSE_VECTOR:
        return (d.nvals, d.nvals)
    return (0, d.size)


def vector_export_hint(u: Vector, *, refuse: bool = False) -> Format:
    """``GrB_Vector_exportHint``."""
    u._check_valid()
    if refuse:
        raise NoValue("implementation declines to provide a hint")
    return Format.SPARSE_VECTOR


def vector_export(
    u: Vector,
    fmt: Format,
    indices: np.ndarray | None = None,
    values: np.ndarray | None = None,
) -> tuple[np.ndarray | None, np.ndarray]:
    """``GrB_Vector_export``."""
    fmt = _check_format(fmt, VECTOR_FORMATS, "vector")
    d: VecData = u._capture()
    if fmt == Format.SPARSE_VECTOR:
        return (
            _fill(indices, d.indices, "indices"),
            _fill(values, d.values, "values"),
        )
    return (None, _fill(values, d.to_dense(), "values"))

"""``GrB_Format`` — the non-opaque data formats of Table III (§VII-A).

Section IX requires enumeration members to carry explicit values so
programs link consistently across implementations; the values here are
fixed and serialized into the opaque byte stream as well.

Note the paper's Table III parameter conventions, kept faithfully:

* ``CSR_MATRIX``  — indptr[nrows+1], indices = column indices, values.
  Elements of a row are *not* required to be sorted by column.
* ``CSC_MATRIX``  — indptr[ncols+1], indices = row indices, values.
* ``COO_MATRIX``  — **indptr = column indices**, **indices = row
  indices** (sic — that is how Table III assigns the three parameter
  slots), values; no ordering requirement.
* ``DENSE_ROW_MATRIX`` / ``DENSE_COL_MATRIX`` — indptr and indices
  unused (may be None); values has nrows·ncols entries, element (i, j)
  at ``i*ncols + j`` (row) or ``i + j*nrows`` (col).
* ``SPARSE_VECTOR`` — indices + values of equal length.
* ``DENSE_VECTOR`` — values of length size; indices unused.
"""

from __future__ import annotations

import enum

__all__ = ["Format", "MATRIX_FORMATS", "VECTOR_FORMATS"]


class Format(enum.IntEnum):
    """``GrB_Format`` with explicit values (§IX)."""

    CSR_MATRIX = 0
    CSC_MATRIX = 1
    COO_MATRIX = 2
    DENSE_ROW_MATRIX = 3
    DENSE_COL_MATRIX = 4
    SPARSE_VECTOR = 5
    DENSE_VECTOR = 6


MATRIX_FORMATS = frozenset(
    {
        Format.CSR_MATRIX,
        Format.CSC_MATRIX,
        Format.COO_MATRIX,
        Format.DENSE_ROW_MATRIX,
        Format.DENSE_COL_MATRIX,
    }
)

VECTOR_FORMATS = frozenset({Format.SPARSE_VECTOR, Format.DENSE_VECTOR})

"""Expression-DAG nodes for nonblocking-mode execution (§III, §V).

The paper defines an object's *sequence* as the ordered method calls
that define it; nonblocking mode lets the implementation defer,
reorder, and optimize that sequence.  This module is the deferred
representation: every deferred method becomes a :class:`Node` holding

* a **sequence edge** (``prev``) to the node that produced the output
  object's previous state — this is the per-object program order the
  spec requires us to preserve observationally, and
* **data edges** (``inputs``) to the producers of the input carriers —
  these are the cross-object dependencies that make the per-object
  thunk list of the old runtime a genuine DAG, so ``wait``/value-reads
  force exactly the needed subgraph and independent subgraphs can run
  concurrently (scheduler) or fuse into single-pass kernels (fusion).

A :class:`Source` is the capture of an input at call time: either a
concrete immutable carrier (the input was materialized) or a reference
to the producing node (the input itself had a pending sequence).
Either way the capture is a snapshot — later mutations of the input
object append *new* nodes and never change what was captured, which
preserves the sequence-snapshot semantics the old runtime got from
forcing inputs eagerly.

Nodes come in two shapes:

* **thunk nodes** (element methods, build, clear…) transform the
  previous carrier directly: ``result = thunk(prev)``.
* **op nodes** (the operations layer) split into ``T = compute(datas)``
  (or a list of fusable *stages* over one pipe input) followed by
  ``result = writeback(prev, T, datas)`` — the standard mask/accum
  write-back.  The split is what fusion exploits: a *pure* write-back
  (no mask, no complement, no accumulator) is just a domain cast, so
  the node's result is independent of ``prev`` and the node can be
  absorbed into its sole consumer.
"""

from __future__ import annotations

import threading
from typing import Any, Callable, Sequence

from ..core.errors import PanicError
from .stats import STATS

__all__ = [
    "PENDING", "DONE", "FAILED", "ELIDED",
    "Source", "Node", "MaskInfo", "GRAPH_LOCK",
    "source_identity", "structural_key", "memo_key",
]

# Node states.
PENDING = 0   # not yet executed
DONE = 1      # executed; ``result`` holds the carrier
FAILED = 2    # execution error; ``exc`` set, ``result`` = pre-failure carrier
ELIDED = 3    # absorbed into a consumer's fused pipeline; never ran alone

#: Guards graph wiring (node/source creation, ref counting) and fusion
#: planning.  Held only for cheap pointer work — never while a kernel runs.
GRAPH_LOCK = threading.Lock()


class Source:
    """A captured operation input: concrete carrier or producing node.

    ``vkey`` is the *versioned identity* of the captured handle at
    capture time — ``(handle uid, handle version)`` for a data capture
    made through ``OpaqueObject._prev_source``.  Handle uids are drawn
    from a monotonic counter (never reused, unlike ``id()``) and the
    version advances on every write, so equal vkeys imply the very same
    committed carrier.  This is what the cross-forcing result memo keys
    on; captures made without a vkey are simply memo-ineligible.
    """

    __slots__ = ("node", "data", "vkey")

    def __init__(self, node: "Node | None", data: Any,
                 vkey: tuple | None = None):
        self.node = node
        self.data = data
        self.vkey = vkey

    @classmethod
    def of_data(cls, data: Any, vkey: tuple | None = None) -> "Source":
        return cls(None, data, vkey)

    @classmethod
    def of_node(cls, node: "Node") -> "Source":
        """Reference a pending node's future result (bumps its refcount)."""
        with GRAPH_LOCK:
            node.nrefs += 1
        return cls(node, None)

    def resolve(self) -> Any:
        """The carrier this source stands for (producer must have run)."""
        if self.node is None:
            return self.data
        if self.node.state == ELIDED:
            raise PanicError(
                "internal engine error: read of a fused-away node "
                f"({self.node.label})"
            )
        return self.node.result


class MaskInfo:
    """Write-back metadata an op submits for the planner's benefit.

    The write-back closure itself is opaque to the engine; this record
    is what lets the pushdown pass reason about it: which mask source
    filters the output, whether it is complemented/structural, whether
    REPLACE clears unwritten positions, and whether an accumulator
    reads the previous state.
    """

    __slots__ = ("source", "complement", "structure", "replace", "has_accum")

    def __init__(
        self,
        source: "Source | None",
        *,
        complement: bool = False,
        structure: bool = False,
        replace: bool = False,
        has_accum: bool = False,
    ):
        self.source = source
        self.complement = complement
        self.structure = structure
        self.replace = replace
        self.has_accum = has_accum


class Node:
    """One deferred method invocation in the expression DAG."""

    __slots__ = (
        "__weakref__",  # the small-op batch registry tracks nodes weakly
        "kind", "label", "owner", "prev", "inputs",
        "thunk", "compute", "writeback", "stages", "pipe_input",
        "out_type", "pure", "complete_safe",
        "opkey", "cse_safe", "mask_info", "pushable", "push_targets",
        "batch_key", "batch_compute",
        "state", "result", "exc", "exc_raised", "nrefs",
        "plan", "alias_of", "pushed_mask", "pushed_into",
        "memo_result", "memo_entry",
    )

    def __init__(
        self,
        *,
        kind: str,
        label: str,
        owner: Any,
        prev: Source,
        inputs: Sequence[Source] = (),
        thunk: Callable[[Any], Any] | None = None,
        compute: Callable[[list], Any] | None = None,
        writeback: Callable[[Any, Any, list], Any] | None = None,
        stages: list | None = None,
        pipe_input: int = 0,
        out_type: Any = None,
        pure: bool = False,
        complete_safe: bool = False,
        opkey: tuple | None = None,
        cse_safe: bool = False,
        mask_info: MaskInfo | None = None,
        pushable: bool = False,
        push_targets: tuple | None = None,
        batch_key: tuple | None = None,
        batch_compute: Callable | None = None,
    ):
        self.kind = kind
        self.label = label
        self.owner = owner
        self.prev = prev
        self.inputs = list(inputs)
        self.thunk = thunk
        self.compute = compute
        self.writeback = writeback
        self.stages = stages
        self.pipe_input = pipe_input
        self.out_type = out_type
        self.pure = pure
        self.complete_safe = complete_safe
        self.opkey = opkey
        self.cse_safe = cse_safe
        self.mask_info = mask_info
        self.pushable = pushable
        self.push_targets = push_targets
        # Small-op batching (scheduler): nodes sharing an equal
        # ``batch_key`` compute independent single-vector products over
        # the *same* committed matrix; ``batch_compute(carrier, us)``
        # is the blocked multi-vector kernel that runs them together.
        self.batch_key = batch_key
        self.batch_compute = batch_compute
        self.state = PENDING
        self.result: Any = None
        self.exc: BaseException | None = None
        self.exc_raised = False
        self.nrefs = 0
        self.plan = None       # FusionPlan (fuse pass) for absorbing consumers
        self.alias_of = None   # representative Node (CSE pass)
        self.pushed_mask = None  # (mask Source, complement, structure)
        self.pushed_into = None  # producer Node our mask was pushed into
        self.memo_result = None  # cached carrier to republish (memo hit)
        self.memo_entry = None   # (memo key, dep uids) for post-run store
        STATS.bump("nodes_built")

    # -- graph helpers -------------------------------------------------------

    def dep_nodes(self) -> list["Node"]:
        """Producer nodes this node waits on (sequence + data edges)."""
        deps = []
        if self.prev.node is not None:
            deps.append(self.prev.node)
        for s in self.inputs:
            if s.node is not None:
                deps.append(s.node)
        return deps

    def refs_to(self, other: "Node") -> int:
        """How many of this node's sources reference *other*."""
        n = 1 if self.prev.node is other else 0
        return n + sum(1 for s in self.inputs if s.node is other)

    def pipe_source(self) -> Source | None:
        """The source a stage-form node pipelines over (else ``None``)."""
        if self.stages is None:
            return None
        return self.inputs[self.pipe_input]

    def is_fusable_producer(self) -> bool:
        """Could this node be absorbed into a consumer?  (Needs purity —
        its write-back must be a plain cast — plus a structured body.)"""
        return self.pure and (self.stages is not None or self.compute is not None)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        st = {PENDING: "pending", DONE: "done",
              FAILED: "failed", ELIDED: "elided"}[self.state]
        return f"Node({self.label}, {st}, refs={self.nrefs})"


# -- structural identity (hash-consing support) -------------------------------
#
# Two pending nodes compute the same value when they run the same pure
# operation over the same captured inputs.  ``structural_key`` derives a
# stable, hashable identity for that statement: the node kind, an
# operation key (the op layer's ``opkey``, or a key derived from the
# stage list), the output domain, and the *identity* of each captured
# input.  Carriers are immutable once published and node results are
# written exactly once, so ``id()`` is a sound identity for both — equal
# keys imply equal results.  The CSE pass hash-conses on these keys; the
# optional ``canon`` map routes input identities through already-found
# aliases so transitive duplicates (f(g(a)) vs f(g'(a)) with g ≡ g')
# still collide.


def _data_format(data: Any) -> str | None:
    """Storage-format tag of a captured matrix carrier (``None`` for
    vectors/scalars).  Keys that carry it distinguish the same logical
    content held in different tiers — a format auto-switch on commit
    then misses instead of republishing a carrier of the old shape."""
    if getattr(data, "row_ids", None) is not None:
        return "dcsr"
    if getattr(data, "indptr", None) is not None:
        return "csr"
    return None


def source_identity(src: Source, canon: dict[int, int] | None = None) -> tuple:
    """Hashable identity of a captured input."""
    if src.node is not None:
        nid = id(src.node)
        if canon is not None:
            nid = canon.get(nid, nid)
        return ("n", nid)
    return ("d", id(src.data), _data_format(src.data))


def _scalar_key(s: Any) -> tuple:
    """Value-based key for bound scalars when hashable, else identity."""
    if isinstance(s, (bool, int, float, complex, str, bytes, type(None))):
        return (type(s).__name__, s)
    item = getattr(s, "item", None)  # 0-d numpy scalars
    if callable(item):
        try:
            return (type(s).__name__, item())
        except Exception:
            pass
    return ("id", id(s))


def _stage_key(stage: tuple) -> tuple | None:
    """Key for one pipeline stage; ``None`` marks it non-consable."""
    kind = stage[0]
    if kind == "transpose":
        return ("transpose",)
    if kind == "cast":
        return ("cast", id(stage[1]))
    op = stage[1]
    if not getattr(op, "is_builtin", False):
        return None  # user-defined op: no determinism guarantee
    if kind == "unary":
        return ("unary", id(op), id(stage[2]))
    if kind == "select":
        return ("select", id(op), _scalar_key(stage[2]))
    if kind in ("bind1st", "bind2nd", "index"):
        return (kind, id(op), _scalar_key(stage[2]), id(stage[3]))
    return None


def structural_key(
    node: Node, canon: dict[int, int] | None = None
) -> tuple | None:
    """Stable identity of the value *node* computes, or ``None`` when
    the node must not be hash-consed (impure, thunk-form, user-defined
    op, or an op the layer didn't describe)."""
    if not node.pure or node.thunk is not None:
        return None
    if node.opkey is not None:
        if not node.cse_safe:
            return None
        base: tuple = ("op", node.opkey)
    elif node.stages is not None:
        skeys = []
        for stage in node.stages:
            sk = _stage_key(stage)
            if sk is None:
                return None
            skeys.append(sk)
        base = ("stages", tuple(skeys))
    else:
        return None
    return (
        node.kind, base, id(node.out_type),
        tuple(source_identity(s, canon) for s in node.inputs),
    )


# -- cross-forcing identity (result-memo support) -----------------------------
#
# ``structural_key`` identifies a statement *within one forcing* via
# ``id()``-based input identities, which are only stable while the
# captured objects are alive.  The result memo outlives a forcing, so it
# keys on *versioned handle identities* instead: each data capture made
# through the sequence layer carries ``(uid, version)`` (``Source.vkey``)
# where the uid is never reused and the version advances on every write.
# A pending input recurses into its producing node — its sources are
# snapshots too — so whole re-submitted chains collide.  Equal memo keys
# therefore imply the same pure computation over the same committed
# carrier contents, across forcings and across output objects.


def memo_key(node: Node) -> tuple[tuple, frozenset] | None:
    """Cross-forcing identity of the value *node* computes, plus the
    handle uids the cached entry depends on — or ``None`` when the node
    must not be memoized (impure, thunk-form, user-defined op, or any
    input captured without a versioned identity)."""
    if not node.pure or node.thunk is not None:
        return None
    if node.opkey is not None:
        if not node.cse_safe:
            return None
        base: tuple = ("op", node.opkey)
    elif node.stages is not None:
        skeys = []
        for stage in node.stages:
            sk = _stage_key(stage)
            if sk is None:
                return None
            skeys.append(sk)
        base = ("stages", tuple(skeys))
    else:
        return None
    deps: set = set()
    idents = []
    for src in node.inputs:
        if src.node is not None:
            sub = memo_key(src.node)
            if sub is None:
                return None
            idents.append(("n", sub[0]))
            deps.update(sub[1])
        elif src.vkey is not None:
            idents.append(("d", src.vkey, _data_format(src.data)))
            deps.add(src.vkey[0])
        else:
            return None  # anonymous capture: no cross-forcing identity
    return (
        (node.kind, base, id(node.out_type), tuple(idents)),
        frozenset(deps),
    )

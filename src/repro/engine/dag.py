"""Expression-DAG nodes for nonblocking-mode execution (§III, §V).

The paper defines an object's *sequence* as the ordered method calls
that define it; nonblocking mode lets the implementation defer,
reorder, and optimize that sequence.  This module is the deferred
representation: every deferred method becomes a :class:`Node` holding

* a **sequence edge** (``prev``) to the node that produced the output
  object's previous state — this is the per-object program order the
  spec requires us to preserve observationally, and
* **data edges** (``inputs``) to the producers of the input carriers —
  these are the cross-object dependencies that make the per-object
  thunk list of the old runtime a genuine DAG, so ``wait``/value-reads
  force exactly the needed subgraph and independent subgraphs can run
  concurrently (scheduler) or fuse into single-pass kernels (fusion).

A :class:`Source` is the capture of an input at call time: either a
concrete immutable carrier (the input was materialized) or a reference
to the producing node (the input itself had a pending sequence).
Either way the capture is a snapshot — later mutations of the input
object append *new* nodes and never change what was captured, which
preserves the sequence-snapshot semantics the old runtime got from
forcing inputs eagerly.

Nodes come in two shapes:

* **thunk nodes** (element methods, build, clear…) transform the
  previous carrier directly: ``result = thunk(prev)``.
* **op nodes** (the operations layer) split into ``T = compute(datas)``
  (or a list of fusable *stages* over one pipe input) followed by
  ``result = writeback(prev, T, datas)`` — the standard mask/accum
  write-back.  The split is what fusion exploits: a *pure* write-back
  (no mask, no complement, no accumulator) is just a domain cast, so
  the node's result is independent of ``prev`` and the node can be
  absorbed into its sole consumer.
"""

from __future__ import annotations

import threading
from typing import Any, Callable, Sequence

from ..core.errors import PanicError
from .stats import STATS

__all__ = [
    "PENDING", "DONE", "FAILED", "ELIDED",
    "Source", "Node", "GRAPH_LOCK",
]

# Node states.
PENDING = 0   # not yet executed
DONE = 1      # executed; ``result`` holds the carrier
FAILED = 2    # execution error; ``exc`` set, ``result`` = pre-failure carrier
ELIDED = 3    # absorbed into a consumer's fused pipeline; never ran alone

#: Guards graph wiring (node/source creation, ref counting) and fusion
#: planning.  Held only for cheap pointer work — never while a kernel runs.
GRAPH_LOCK = threading.Lock()


class Source:
    """A captured operation input: concrete carrier or producing node."""

    __slots__ = ("node", "data")

    def __init__(self, node: "Node | None", data: Any):
        self.node = node
        self.data = data

    @classmethod
    def of_data(cls, data: Any) -> "Source":
        return cls(None, data)

    @classmethod
    def of_node(cls, node: "Node") -> "Source":
        """Reference a pending node's future result (bumps its refcount)."""
        with GRAPH_LOCK:
            node.nrefs += 1
        return cls(node, None)

    def resolve(self) -> Any:
        """The carrier this source stands for (producer must have run)."""
        if self.node is None:
            return self.data
        if self.node.state == ELIDED:
            raise PanicError(
                "internal engine error: read of a fused-away node "
                f"({self.node.label})"
            )
        return self.node.result


class Node:
    """One deferred method invocation in the expression DAG."""

    __slots__ = (
        "kind", "label", "owner", "prev", "inputs",
        "thunk", "compute", "writeback", "stages", "pipe_input",
        "out_type", "pure", "complete_safe",
        "state", "result", "exc", "exc_raised", "nrefs", "plan",
    )

    def __init__(
        self,
        *,
        kind: str,
        label: str,
        owner: Any,
        prev: Source,
        inputs: Sequence[Source] = (),
        thunk: Callable[[Any], Any] | None = None,
        compute: Callable[[list], Any] | None = None,
        writeback: Callable[[Any, Any, list], Any] | None = None,
        stages: list | None = None,
        pipe_input: int = 0,
        out_type: Any = None,
        pure: bool = False,
        complete_safe: bool = False,
    ):
        self.kind = kind
        self.label = label
        self.owner = owner
        self.prev = prev
        self.inputs = list(inputs)
        self.thunk = thunk
        self.compute = compute
        self.writeback = writeback
        self.stages = stages
        self.pipe_input = pipe_input
        self.out_type = out_type
        self.pure = pure
        self.complete_safe = complete_safe
        self.state = PENDING
        self.result: Any = None
        self.exc: BaseException | None = None
        self.exc_raised = False
        self.nrefs = 0
        self.plan = None  # set by fusion: FusionPlan for absorbed producers
        STATS.bump("nodes_built")

    # -- graph helpers -------------------------------------------------------

    def dep_nodes(self) -> list["Node"]:
        """Producer nodes this node waits on (sequence + data edges)."""
        deps = []
        if self.prev.node is not None:
            deps.append(self.prev.node)
        for s in self.inputs:
            if s.node is not None:
                deps.append(s.node)
        return deps

    def refs_to(self, other: "Node") -> int:
        """How many of this node's sources reference *other*."""
        n = 1 if self.prev.node is other else 0
        return n + sum(1 for s in self.inputs if s.node is other)

    def pipe_source(self) -> Source | None:
        """The source a stage-form node pipelines over (else ``None``)."""
        if self.stages is None:
            return None
        return self.inputs[self.pipe_input]

    def is_fusable_producer(self) -> bool:
        """Could this node be absorbed into a consumer?  (Needs purity —
        its write-back must be a plain cast — plus a structured body.)"""
        return self.pure and (self.stages is not None or self.compute is not None)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        st = {PENDING: "pending", DONE: "done",
              FAILED: "failed", ELIDED: "elided"}[self.state]
        return f"Node({self.label}, {st}, refs={self.nrefs})"

"""Planner driver: the multi-pass optimizing pipeline (§III/§V).

Nonblocking mode lets the implementation *optimize* the sequence of
method calls, not just defer it.  This module used to be a single
monolithic rewrite pass; it is now a thin driver over the staged
pipeline in :mod:`repro.engine.passes`:

``normalize`` (canonicalize stage lists, compute structural keys) →
``cse`` (hash-cons identical pending subtrees so a repeated
subexpression runs its kernel once, and consult the context's
cross-forcing result memo) → ``cost`` (arbitrate pushdown-vs-fusion
conflicts by estimated kernel savings) → ``pushdown`` (absorb a masked
consumer's filter into the producing mxm/mxv/vxm/eWiseMult kernel) →
``fuse`` (absorb producer chains into single-pass pipelines) →
``schedule`` (commit all decisions onto the nodes).

Each pass is a pure function over one shared immutable
:class:`~repro.engine.passes.ir.PlanIR`; the driver runs the sequence
under ``GRAPH_LOCK`` (planning reads refcounts and tails), records a
trace span per pass, and gives the fault plane a ``planner.<pass>``
site at every boundary.  A faulting pass is *skipped* — the previous
IR is still valid, the forcing proceeds without that pass's rewrites,
and ``planner_pass_failures`` counts the skip.  Because decisions only
take effect in the terminal schedule pass, a skipped schedule degrades
cleanly to plain unoptimized execution.

:class:`FusionPlan` and :func:`optimize_stages` (the stage-list
peephole: transpose pairs cancel, value-independent selects hoist
ahead of maps) live here unchanged — the passes import them.
"""

from __future__ import annotations

import time

from ..faults.plane import armed, maybe_inject
from . import cancel
from .dag import GRAPH_LOCK, PENDING, Node, Source
from .stats import STATS

__all__ = ["FusionPlan", "plan_subgraph", "plan_fusion", "optimize_stages"]

#: Stage kinds that neither read coordinates nor change structure; these
#: commute with transposition and with structural filters.
_VALUE_ONLY = {"unary", "bind1st", "bind2nd", "cast"}
#: Stage kinds that map values (possibly from coordinates) 1:1.
_MAP_KINDS = {"unary", "bind1st", "bind2nd", "index", "cast"}


class FusionPlan:
    """Execution recipe for a consumer that absorbed its producers.

    ``head`` — an absorbed non-stage producer (mxm/eWise/…) whose
    ``compute`` seeds the pipeline, else ``None`` and ``start`` is the
    source (carrier or executed node) the pipeline begins from.
    ``stages`` — the fused, optimized stage list ending with the
    consumer's own stages; the consumer's write-back runs afterwards.
    ``chain`` — the absorbed producers in execution order (furthest
    upstream first), kept so a failing fused kernel can transparently
    fall back to unfused execution with exact §V failure state.
    """

    __slots__ = ("head", "start", "stages", "chain")

    def __init__(
        self,
        head: Node | None,
        start: Source | None,
        stages: list,
        chain: list,
    ):
        self.head = head
        self.start = start
        self.stages = stages
        self.chain = chain


def _is_value_independent_select(stage) -> bool:
    return stage[0] == "select" and not stage[1].uses_value


def optimize_stages(stages: list) -> tuple[list, int, int]:
    """Elide transpose pairs and hoist value-independent selects.

    Returns ``(stages, selects_hoisted, transposes_elided)``.
    """
    stages = list(stages)

    # Cancel ('transpose', …, 'transpose') pairs separated only by value
    # maps (which commute with transposition; coordinate-reading stages
    # between the pair pin it in place).
    elided = 0
    changed = True
    while changed:
        changed = False
        for i, st in enumerate(stages):
            if st[0] != "transpose":
                continue
            j = i + 1
            while j < len(stages) and stages[j][0] in _VALUE_ONLY:
                j += 1
            if j < len(stages) and stages[j][0] == "transpose":
                stages = stages[:i] + stages[i + 1:j] + stages[j + 1:]
                elided += 1
                changed = True
                break

    # Within each transpose-free segment, move selects whose predicate
    # reads only coordinates ahead of the maps: the surviving set is
    # identical (maps are structure-preserving and the predicate ignores
    # values), but the maps then run on fewer stored entries.
    hoisted = 0
    out: list = []
    seg: list = []

    def _flush() -> None:
        nonlocal hoisted
        front = [s for s in seg if _is_value_independent_select(s)]
        rest = [s for s in seg if not _is_value_independent_select(s)]
        seen_map = False
        for s in seg:
            if _is_value_independent_select(s):
                hoisted += seen_map
            elif s[0] in _MAP_KINDS:
                seen_map = True
        out.extend(front)
        out.extend(rest)

    for st in stages:
        if st[0] == "transpose":
            _flush()
            seg = []
            out.append(st)
        else:
            seg.append(st)
    _flush()
    return out, hoisted, elided


# -- the pass pipeline --------------------------------------------------------


def _passes():
    from .passes import cost, cse, fuse, normalize, pushdown, schedule

    return (
        ("normalize", normalize.run),
        ("cse", cse.run),
        ("cost", cost.run),
        ("pushdown", pushdown.run),
        ("fuse", fuse.run),
        ("schedule", schedule.run),
    )


def _memo_worthwhile(node: Node) -> bool:
    """Cheap pre-filter: could a one-node forcing hit the result memo?

    Mirrors :func:`~repro.engine.dag.memo_key` eligibility without
    building the key — impure, thunk-form, and user-defined-op nodes
    (BFS hot-loop shapes are masked, hence impure) still skip the
    pipeline entirely and pay zero planning overhead.
    """
    if not node.pure or node.thunk is not None or node.owner is None:
        return False
    if node.opkey is not None:
        return node.cse_safe
    return node.stages is not None


def plan_subgraph(nodes: list) -> None:
    """Run the full planner pipeline over one forcing's pending subgraph.

    *nodes* is the subgraph in topological order.  On return the nodes
    carry whatever decisions survived: ``alias_of`` on CSE duplicates,
    ``pushed_mask``/``pushed_into`` on pushdown pairs, ``plan`` on
    fusion consumers and ELIDED on their absorbed producers.  Planner
    faults never fail the forcing — the affected pass is skipped.
    """
    from ..internals import config
    from .passes.ir import PlanIR

    if len(nodes) < 2:
        # Every rewrite pass needs at least a producer/consumer (or
        # duplicate) pair; a one-node forcing only goes through the
        # pipeline when the cross-forcing memo could serve it — a
        # re-submitted ``C = A ⊕.⊗ A`` is exactly a one-node forcing.
        # BFS inner loops (masked, impure nodes) still skip and pay
        # zero planning overhead.
        if not nodes:
            return
        if not (config.ENGINE_MEMO and _memo_worthwhile(nodes[0])):
            return
    elif not any(
        n.state == PENDING and (n.pure or n.stages is not None)
        for n in nodes
    ):
        # Every rewrite needs a pure pending node (CSE duplicate, memo
        # candidate, pushdown/fusion producer) or a stage-form consumer
        # to absorb into; an all-impure compute subgraph — the masked
        # assign + masked vxm pair a BFS inner loop forces every level —
        # cannot be optimized by any pass, so skip the pipeline and its
        # fixed per-forcing cost entirely.
        return

    from .passes import cost

    ir = PlanIR.initial(nodes)
    with GRAPH_LOCK:
        for name, pass_fn in _passes():
            # Pass boundary = cancellation boundary.  Deliberately
            # outside the try below: a tripped deadline must propagate,
            # not be absorbed as a planner-pass failure.
            cancel.checkpoint(f"planner.{name}")
            t0 = time.perf_counter()
            fusions_before = len(ir.fusions)
            try:
                with armed():  # the skip below is this site's recovery
                    maybe_inject(f"planner.{name}", nodes=len(nodes))
                ir = pass_fn(ir)
            except Exception:
                STATS.bump("planner_pass_failures")
            elapsed = time.perf_counter() - t0
            if name == "fuse" and len(ir.fusions) > fusions_before:
                # Feed the adaptive cost model the measured bookkeeping
                # of actually constructing chains, so it can veto
                # fusions whose saving is smaller than this very cost.
                cost.record_plan_overhead(
                    elapsed, len(ir.fusions) - fusions_before,
                )
            STATS.span(
                f"planner.{name}", "planner", t0, elapsed,
                {"nodes": len(ir.nodes), "aliases": len(ir.aliases),
                 "pushdowns": len(ir.pushdowns), "fusions": len(ir.fusions)},
            )


def plan_fusion(nodes: list) -> None:
    """Backwards-compatible alias for :func:`plan_subgraph`."""
    plan_subgraph(nodes)

"""Kernel fusion over the expression DAG (§III/§V optimization freedom).

Nonblocking mode lets the implementation *optimize* the sequence of
method calls, not just defer it.  This pass runs on the pending
subgraph collected by a forcing call, before anything executes, and
rewrites chains of operations into single fused pipelines:

* ``apply`` → ``apply`` and ``apply``/``select`` chains collapse into
  one pass over the stored values — no intermediate carrier, no
  intermediate mask/accumulator write-back.
* ``select`` after ``eWiseMult``/``mxm`` (or any *pure* producer, e.g.
  ``reduce``/``extract``) filters the kernel's result before it is ever
  materialized as an object state.
* Transpose pairs separated only by value maps cancel (the
  double-transpose a descriptor chain can produce is elided outright).
* Value-independent selects (``TRIL``, ``ROWLE`` … — ``uses_value`` is
  false) are hoisted ahead of value maps, so the maps touch only the
  entries that survive: filter-before-map.

Legality: a producer is absorbed only when (1) its write-back is *pure*
(no mask, no complement, no accumulator — the write-back is a plain
domain cast, so its result is independent of the output's prior state),
(2) **every** reference to it comes from the absorbing consumer (its
global refcount equals the consumer's pipe-input reference plus, for a
pure consumer, the sequence edge), and (3) it is no longer the tail of
its owner's sequence, i.e. a later method already overwrote the owner
and the intermediate state can never be observed by a read or a future
capture.  Condition (3) is what makes fusion safe under the sequence
semantics: tails can only advance, so a node that is not a tail now can
never be captured again.
"""

from __future__ import annotations

from .dag import GRAPH_LOCK, PENDING, Node, Source
from .stats import STATS

__all__ = ["FusionPlan", "plan_fusion", "optimize_stages"]

#: Stage kinds that neither read coordinates nor change structure; these
#: commute with transposition and with structural filters.
_VALUE_ONLY = {"unary", "bind1st", "bind2nd", "cast"}
#: Stage kinds that map values (possibly from coordinates) 1:1.
_MAP_KINDS = {"unary", "bind1st", "bind2nd", "index", "cast"}


class FusionPlan:
    """Execution recipe for a consumer that absorbed its producers.

    ``head`` — an absorbed non-stage producer (mxm/eWise/…) whose
    ``compute`` seeds the pipeline, else ``None`` and ``start`` is the
    source (carrier or executed node) the pipeline begins from.
    ``stages`` — the fused, optimized stage list ending with the
    consumer's own stages; the consumer's write-back runs afterwards.
    ``chain`` — the absorbed producers in execution order (furthest
    upstream first), kept so a failing fused kernel can transparently
    fall back to unfused execution with exact §V failure state.
    """

    __slots__ = ("head", "start", "stages", "chain")

    def __init__(
        self,
        head: Node | None,
        start: Source | None,
        stages: list,
        chain: list,
    ):
        self.head = head
        self.start = start
        self.stages = stages
        self.chain = chain


def _is_value_independent_select(stage) -> bool:
    return stage[0] == "select" and not stage[1].uses_value


def optimize_stages(stages: list) -> tuple[list, int, int]:
    """Elide transpose pairs and hoist value-independent selects.

    Returns ``(stages, selects_hoisted, transposes_elided)``.
    """
    stages = list(stages)

    # Cancel ('transpose', …, 'transpose') pairs separated only by value
    # maps (which commute with transposition; coordinate-reading stages
    # between the pair pin it in place).
    elided = 0
    changed = True
    while changed:
        changed = False
        for i, st in enumerate(stages):
            if st[0] != "transpose":
                continue
            j = i + 1
            while j < len(stages) and stages[j][0] in _VALUE_ONLY:
                j += 1
            if j < len(stages) and stages[j][0] == "transpose":
                stages = stages[:i] + stages[i + 1:j] + stages[j + 1:]
                elided += 1
                changed = True
                break

    # Within each transpose-free segment, move selects whose predicate
    # reads only coordinates ahead of the maps: the surviving set is
    # identical (maps are structure-preserving and the predicate ignores
    # values), but the maps then run on fewer stored entries.
    hoisted = 0
    out: list = []
    seg: list = []

    def _flush() -> None:
        nonlocal hoisted
        front = [s for s in seg if _is_value_independent_select(s)]
        rest = [s for s in seg if not _is_value_independent_select(s)]
        seen_map = False
        for s in seg:
            if _is_value_independent_select(s):
                hoisted += seen_map
            elif s[0] in _MAP_KINDS:
                seen_map = True
        out.extend(front)
        out.extend(rest)

    for st in stages:
        if st[0] == "transpose":
            _flush()
            seg = []
            out.append(st)
        else:
            seg.append(st)
    _flush()
    return out, hoisted, elided


def _absorbable(consumer: Node, x: Node) -> bool:
    """May *consumer* absorb producer *x*?  (Caller holds GRAPH_LOCK.)"""
    if x.state != PENDING or not x.is_fusable_producer():
        return False
    # The intermediate value must be unobservable: a later method must
    # already have overwritten the owner (tails only move forward).
    if x.owner is not None and getattr(x.owner, "_tail", None) is x:
        return False
    # Every reference to x must come from this consumer, and only via
    # the pipe input (plus the sequence edge when the consumer's
    # write-back is pure and therefore never reads it).
    allowed = 1 + (1 if consumer.prev.node is x else 0)
    if consumer.prev.node is x and not consumer.pure:
        return False
    refs = consumer.refs_to(x)
    return refs == allowed and x.nrefs == refs


def plan_fusion(nodes: list) -> None:
    """Attach fusion plans to stage-form consumers in *nodes*.

    *nodes* is the pending subgraph in topological order.  Consumers are
    visited in reverse order so the downstream end of a chain absorbs as
    far upstream as legality allows; absorbed producers are flagged
    ELIDED and become no-ops for the scheduler (their dependency edges
    still order the graph).
    """
    from .dag import ELIDED  # late import to keep constants in one place
    from ..internals import config

    if not config.ENGINE_FUSION:
        return
    in_graph = set(nodes)
    with GRAPH_LOCK:
        for y in reversed(nodes):
            if y.state != PENDING or y.stages is None:
                continue
            chain: list[Node] = []
            stages = list(y.stages)
            consumer = y
            src = y.inputs[y.pipe_input]
            head: Node | None = None
            while True:
                x = src.node
                if (
                    x is None
                    or x not in in_graph
                    or not _absorbable(consumer, x)
                ):
                    break
                if x.stages is not None:
                    chain.append(x)
                    stages = (
                        list(x.stages) + [("cast", x.out_type)] + stages
                    )
                    consumer = x
                    src = x.inputs[x.pipe_input]
                    continue
                # Non-stage pure producer (mxm, eWise, reduce, …): it
                # seeds the pipeline and the chain ends here.
                chain.append(x)
                head = x
                break
            if not chain:
                continue
            stages, hoisted, elided = optimize_stages(stages)
            y.plan = FusionPlan(
                head, None if head is not None else src, stages,
                list(reversed(chain)),
            )
            for x in chain:
                x.state = ELIDED
            STATS.bump("chains_fused")
            STATS.bump("nodes_fused", len(chain))
            if hoisted:
                STATS.bump("selects_hoisted", hoisted)
            if elided:
                STATS.bump("transposes_elided", elided)

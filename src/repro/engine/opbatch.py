"""Small-op batching registry (the scheduler's coalescing layer).

Serving and analytics workloads submit many *tiny* independent
operations over the same committed graph — one ``mxv`` per query
source, one per seed set, one per algorithm restart.  Each costs a full
kernel entry: A's row-stream expansion, commit bookkeeping, stats
spans.  For a hypersparse or large matrix the shared structure work
dwarfs the per-vector math, so the engine coalesces them: pending
unmasked ``mxv`` nodes over the *same* committed matrix and semiring
share an equal ``Node.batch_key``, and when the scheduler reaches the
first of them it claims the rest of the group and runs one blocked
multi-vector kernel (``Node.batch_compute`` →
:func:`~repro.internals.mxm.mxv_multi`) instead of N single ones.

This module is only the *registry*: a process-wide map from batch key
to the weakly-held set of pending candidate nodes.  Weak references
keep registration free of lifetime obligations — a node that runs
normally, fails, is fused away, or whose owner is collected simply
stops qualifying; nothing here pins it.  Claiming is the scheduler's
transaction: claimed peers leave the group before any kernel runs, and
a failed batch attempt *surrenders* them back so every node still runs
(singly) through the normal §V path.

Gated by the ``ENGINE_OP_BATCH`` knob (the scheduler checks it at claim
time, so the CI ablation row disables coalescing without touching
submission).
"""

from __future__ import annotations

import threading
import weakref

from .dag import DONE, PENDING, Node

__all__ = ["register", "claim_peers", "surrender", "BATCH_CAP"]

#: Most peers one batch claims (bounds the blocked kernel's working set
#: and the damage radius of a mid-batch fault).
BATCH_CAP = 64

_LOCK = threading.Lock()
#: batch key -> weakly-held pending candidate nodes.
_GROUPS: dict[tuple, "weakref.WeakSet[Node]"] = {}


def register(node: Node) -> None:
    """Enroll a freshly submitted batchable node (sequence layer)."""
    if node.batch_key is None:
        return
    with _LOCK:
        group = _GROUPS.get(node.batch_key)
        if group is None:
            group = _GROUPS[node.batch_key] = weakref.WeakSet()
        group.add(node)


def surrender(node: Node) -> None:
    """Return a claimed-but-unrun peer to its group (batch run failed);
    it will execute singly through the normal scheduler path."""
    register(node)


def _plain(n: Node) -> bool:
    """Only *plain* pending nodes may ride a batch: any planner
    decoration (CSE alias, fused pipeline, memo republish, pushed mask)
    has its own execution path with its own fallback semantics."""
    return (
        n.state == PENDING
        and n.alias_of is None
        and n.plan is None
        and n.memo_result is None
        and n.pushed_mask is None
        and n.pushed_into is None
    )


def claim_peers(node: Node) -> list[Node]:
    """Atomically claim *node*'s ready batch peers (and drop stale
    group entries).  A claimed peer is out of the registry for good —
    the scheduler either completes it or surrenders it back."""
    key = node.batch_key
    if key is None:
        return []
    with _LOCK:
        group = _GROUPS.get(key)
        if not group:
            _GROUPS.pop(key, None)
            return []
        peers: list[Node] = []
        stale: list[Node] = []
        for n in list(group):
            if n.state != PENDING:
                stale.append(n)
                continue
            if n is node:
                continue
            if len(peers) < BATCH_CAP and _plain(n) and all(
                d.state == DONE for d in n.dep_nodes()
            ):
                peers.append(n)
        for n in stale:
            group.discard(n)
        for n in peers:
            group.discard(n)
        group.discard(node)
        if not group:
            _GROUPS.pop(key, None)
        return peers
